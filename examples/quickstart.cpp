/**
 * @file
 * Quickstart: build a Compressionless-Routing torus, send a few
 * messages through the public API, and run some synthetic traffic.
 *
 *   ./quickstart [preset=<name>] [key=value ...]
 *   e.g. ./quickstart k=16 load=0.2
 *        ./quickstart preset=fcr_noisy
 */

#include <cstdio>

#include "src/core/experiment.hh"
#include "src/core/network.hh"
#include "src/core/presets.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;

    // 1. Describe the network: an 8-ary 2-cube torus running fully
    //    adaptive minimal routing with NO virtual channels — the
    //    configuration that plain wormhole routing cannot run without
    //    deadlocking. Compressionless Routing makes it safe.
    SimConfig cfg;
    cfg.topology = TopologyKind::Torus;
    cfg.radixK = 8;
    cfg.dimensionsN = 2;
    cfg.numVcs = 1;
    cfg.bufferDepth = 2;
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = ProtocolKind::Cr;
    cfg.injectionRate = 0.2;
    cfg.messageLength = 16;
    cfg.timeout = 16;
    cfg = configFromArgs(cfg, argc, argv);
    cfg.validate();
    std::printf("network: %s\n\n", cfg.summary().c_str());

    // 2. Point-to-point messages through the explicit API.
    Network net(cfg);
    net.setTrafficEnabled(false);
    const MsgId a = net.sendMessage(0, 27, 16);
    const MsgId b = net.sendMessage(5, 60, 16);
    while (!net.isDelivered(a) || !net.isDelivered(b))
        net.tick();
    for (MsgId id : {a, b}) {
        const DeliveredMessage* d = net.deliveryRecord(id);
        std::printf("message %llu: %u -> %u, latency %llu cycles, "
                    "%u attempt(s)\n",
                    static_cast<unsigned long long>(id), d->src,
                    d->dst,
                    static_cast<unsigned long long>(d->deliveredAt -
                                                    d->createdAt),
                    d->attempts);
    }

    // 3. Steady-state synthetic traffic through the experiment
    //    harness: warmup, measure, drain, summarize.
    const RunResult r = runExperiment(cfg);
    std::printf("\nuniform traffic at %.2f flits/node/cycle:\n",
                r.offeredLoad);
    std::printf("  avg latency       %.1f cycles (p99 %.0f)\n",
                r.avgLatency, r.p99Latency);
    std::printf("  accepted load     %.3f payload flits/node/cycle\n",
                r.acceptedThroughput);
    std::printf("  kills per message %.4f (CR deadlock recovery)\n",
                r.killsPerMessage);
    std::printf("  pad overhead      %.1f%% of wire flits\n",
                100.0 * r.padOverhead);
    std::printf("  order violations  %llu, duplicates %llu\n",
                static_cast<unsigned long long>(r.orderViolations),
                static_cast<unsigned long long>(
                    r.duplicateDeliveries));
    return 0;
}
