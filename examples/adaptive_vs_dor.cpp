/**
 * @file
 * Head-to-head: adaptive Compressionless Routing vs dimension-order
 * routing with equal resources, across traffic patterns — the
 * scenario the paper's introduction motivates (adaptive routing pays
 * off most on non-uniform traffic, and CR provides it without
 * virtual-channel cost).
 *
 *   ./adaptive_vs_dor [key=value ...]
 */

#include <cstdio>

#include "src/core/experiment.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;

    SimConfig base;
    base.topology = TopologyKind::Torus;
    base.radixK = 8;
    base.dimensionsN = 2;
    base.numVcs = 2;
    base.bufferDepth = 2;
    base.messageLength = 16;
    base.timeout = 8;
    base.warmupCycles = 1000;
    base.measureCycles = 5000;
    base.hotspotFraction = 0.05;  // 20% melts any 8x8 sink.
    base.applyArgs(argc, argv);

    const TrafficPattern patterns[] = {TrafficPattern::Uniform,
                                       TrafficPattern::Transpose,
                                       TrafficPattern::BitComplement,
                                       TrafficPattern::Tornado,
                                       TrafficPattern::Hotspot};

    std::printf("%-16s %6s  %12s  %12s  %9s\n", "pattern", "load",
                "CR latency", "DOR latency", "CR gain");
    for (TrafficPattern p : patterns) {
        for (double load : {0.10, 0.20, 0.30}) {
            SimConfig cr = base;
            cr.pattern = p;
            cr.injectionRate = load;
            cr.routing = RoutingKind::MinimalAdaptive;
            cr.protocol = ProtocolKind::Cr;
            const RunResult rc = runExperiment(cr);

            SimConfig dor = cr;
            dor.routing = RoutingKind::DimensionOrder;
            dor.protocol = ProtocolKind::None;
            const RunResult rd = runExperiment(dor);

            auto fmt = [](const RunResult& r) {
                return r.drained ? r.avgLatency : -1.0;
            };
            const double lc = fmt(rc), ld = fmt(rd);
            char gain[32];
            if (lc > 0 && ld > 0)
                std::snprintf(gain, sizeof gain, "%8.2fx", ld / lc);
            else
                std::snprintf(gain, sizeof gain, "%9s", "sat");
            std::printf("%-16s %6.2f  %12.1f  %12.1f  %s\n",
                        toString(p).c_str(), load, lc, ld, gain);
        }
    }
    std::printf(
        "\n(-1.0 marks saturated points that did not drain.)\n"
        "Reading: CR wins big where adaptivity helps (uniform and "
        "transpose near\nsaturation); DOR keeps an edge at low load "
        "(CR pays padding) and on\nbit-complement, whose "
        "diameter-length paths maximize CR's pad overhead —\nthe "
        "trade the paper's padding analysis predicts.\n");
    return 0;
}
