/**
 * @file
 * The motivating demonstration: fully adaptive wormhole routing on a
 * torus with no virtual channels deadlocks under load; the identical
 * network under Compressionless Routing keeps running, because the
 * source detects every potential deadlock as an injection stall and
 * kills/retries the worm.
 *
 *   ./deadlock_demo [key=value ...]
 */

#include <cstdio>
#include <iostream>

#include "src/core/network.hh"

namespace {

crnet::SimConfig
baseConfig()
{
    crnet::SimConfig cfg;
    cfg.topology = crnet::TopologyKind::Torus;
    cfg.radixK = 8;
    cfg.dimensionsN = 2;
    cfg.numVcs = 1;
    cfg.bufferDepth = 2;
    cfg.routing = crnet::RoutingKind::MinimalAdaptive;
    cfg.injectionRate = 0.8;
    cfg.messageLength = 32;
    cfg.timeout = 32;
    cfg.deadlockThreshold = 2000;
    cfg.seed = 12345;
    return cfg;
}

} // namespace

int
main(int argc, char** argv)
{
    using namespace crnet;

    std::printf("8x8 torus, minimal fully-adaptive routing, 1 VC, "
                "heavy load (0.8 flits/node/cycle)\n\n");

    {
        SimConfig cfg = baseConfig();
        cfg.protocol = ProtocolKind::None;
        cfg.applyArgs(argc, argv);
        Network net(cfg);
        std::printf("[plain wormhole]     running");
        bool deadlocked = false;
        while (!deadlocked && net.now() < 50000) {
            net.run(2500);
            std::printf(".");
            std::fflush(stdout);
            deadlocked = net.deadlocked();
        }
        if (deadlocked) {
            std::printf("\n[plain wormhole]     DEADLOCK at cycle "
                        "%llu: no flit has moved for %llu cycles; "
                        "%llu messages delivered, then silence.\n",
                        static_cast<unsigned long long>(net.now()),
                        static_cast<unsigned long long>(
                            cfg.deadlockThreshold),
                        static_cast<unsigned long long>(
                            net.stats().messagesDelivered.value()));
            std::printf("\nWhere the worms wedged:\n");
            net.dumpOccupancy(std::cout);
        } else {
            std::printf("\n[plain wormhole]     survived %llu cycles "
                        "(try a higher load or another seed)\n",
                        static_cast<unsigned long long>(net.now()));
        }
    }

    {
        SimConfig cfg = baseConfig();
        cfg.protocol = ProtocolKind::Cr;
        cfg.applyArgs(argc, argv);
        Network net(cfg);
        std::printf("\n[compressionless]    running");
        for (int epoch = 0; epoch < 20; ++epoch) {
            net.run(2500);
            std::printf(".");
            std::fflush(stdout);
            if (net.deadlocked()) {
                std::printf("\n[compressionless]    unexpected "
                            "deadlock — this is a bug\n");
                return 1;
            }
        }
        const NetworkStats& s = net.stats();
        std::printf("\n[compressionless]    healthy after %llu "
                    "cycles: %llu delivered, %llu potential "
                    "deadlocks detected and recovered (kills), "
                    "0 lost.\n",
                    static_cast<unsigned long long>(net.now()),
                    static_cast<unsigned long long>(
                        s.messagesDelivered.value()),
                    static_cast<unsigned long long>(
                        s.sourceKills.value()));
    }
    return 0;
}
