/**
 * @file
 * Fault-tolerant Compressionless Routing in action: transient flit
 * corruption and hard link failures, end to end.
 *
 * Scenario 1: a noisy network (random per-flit-hop corruption). FCR
 * detects every hit at the receiver, withholds flow control, lets the
 * source timeout kill the worm, and retransmits — nothing corrupted
 * is ever delivered. Plain CR on the same network delivers garbage.
 *
 * Scenario 2: a link is cut mid-run between two explicit messages.
 * Retries route adaptively around the dead link (with bounded
 * misrouting when every minimal first hop is gone).
 *
 *   ./fault_tolerance_demo [key=value ...]
 */

#include <cstdio>

#include "src/core/network.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;

    // --- Scenario 1: transient noise -------------------------------
    SimConfig cfg;
    cfg.topology = TopologyKind::Torus;
    cfg.radixK = 8;
    cfg.dimensionsN = 2;
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = ProtocolKind::Fcr;
    cfg.injectionRate = 0.1;
    cfg.messageLength = 16;
    cfg.timeout = 32;
    cfg.transientFaultRate = 5e-4;
    cfg.applyArgs(argc, argv);

    std::printf("scenario 1: transient faults at %.0e per flit-hop, "
                "load %.2f\n\n",
                cfg.transientFaultRate, cfg.injectionRate);
    for (ProtocolKind proto : {ProtocolKind::Fcr, ProtocolKind::Cr}) {
        SimConfig c = cfg;
        c.protocol = proto;
        Network net(c);
        net.run(20000);
        const NetworkStats& s = net.stats();
        std::printf("  [%s] faults injected %llu | delivered %llu | "
                    "corrupted deliveries %llu | retries %llu\n",
                    toString(proto).c_str(),
                    static_cast<unsigned long long>(
                        net.faults().corruptionsInjected()),
                    static_cast<unsigned long long>(
                        s.messagesDelivered.value()),
                    static_cast<unsigned long long>(
                        s.corruptedDeliveries.value()),
                    static_cast<unsigned long long>(
                        s.sourceKills.value()));
    }

    // --- Scenario 2: a hard link failure ---------------------------
    std::printf("\nscenario 2: cutting both x-links out of node 0, "
                "then sending 0 -> 4\n\n");
    SimConfig hard = cfg;
    hard.transientFaultRate = 0.0;
    hard.injectionRate = 0.0;
    hard.misrouteAfterRetries = 2;
    hard.misrouteBudget = 4;
    hard.backoff = BackoffScheme::Static;
    hard.backoffGap = 8;
    Network net(hard);
    net.setTrafficEnabled(false);

    const MsgId before = net.sendMessage(0, 4, 16);
    while (!net.isDelivered(before))
        net.tick();
    std::printf("  before the cut: delivered in %llu cycles, "
                "%u attempt(s)\n",
                static_cast<unsigned long long>(
                    net.deliveryRecord(before)->deliveredAt -
                    net.deliveryRecord(before)->createdAt),
                net.deliveryRecord(before)->attempts);

    // Node 4 = (4,0): distance 4 in +x or -x. Cut both x-links at
    // node 0 so NO minimal first hop survives.
    net.faults().killDirectedLink(0, makePort(0, Direction::Plus));
    net.faults().killDirectedLink(0, makePort(0, Direction::Minus));

    const MsgId after = net.sendMessage(0, 4, 16);
    Cycle guard = net.now() + 100000;
    while (!net.isDelivered(after) && net.now() < guard)
        net.tick();
    if (!net.isDelivered(after)) {
        std::printf("  after the cut: NOT delivered — bug\n");
        return 1;
    }
    const DeliveredMessage* d = net.deliveryRecord(after);
    std::printf("  after the cut:  delivered in %llu cycles, "
                "%u attempt(s), %llu misroute hops — the retry went "
                "around via y\n",
                static_cast<unsigned long long>(d->deliveredAt -
                                                d->createdAt),
                d->attempts,
                static_cast<unsigned long long>(
                    net.stats().router.misrouteHops.value()));
    return 0;
}
