/**
 * @file
 * All-to-all personalized exchange — the collective every
 * message-passing runtime builds on. Each node sends one message to
 * every other node; the run is complete when every node has received
 * from everyone.
 *
 * Why it showcases CR: the exchange floods the network far past any
 * sustainable load, creating potential deadlock situations by the
 * hundreds; CR absorbs all of them with kill/retry while the software
 * layer above needs no sequence numbers, acknowledgements or
 * retransmission buffers — exactly the "simpler software
 * communication layers" the paper's conclusion claims.
 *
 *   ./all_to_all [key=value ...]
 */

#include <cstdio>
#include <vector>

#include "src/core/network.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;

    SimConfig cfg;
    cfg.topology = TopologyKind::Torus;
    cfg.radixK = 8;
    cfg.dimensionsN = 2;
    cfg.numVcs = 2;
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = ProtocolKind::Cr;
    cfg.messageLength = 16;
    cfg.timeout = 8;
    cfg.maxPendingPerNode = 1u << 20;  // The exchange queues N-1 each.
    cfg.applyArgs(argc, argv);
    cfg.validate();

    Network net(cfg);
    net.setTrafficEnabled(false);
    const NodeId n = net.topology().numNodes();

    // Queue the full exchange. Staggered destination order (src+1,
    // src+2, ...) is the classic schedule that avoids everyone
    // hammering node 0 first.
    std::vector<MsgId> ids;
    ids.reserve(static_cast<std::size_t>(n) * (n - 1));
    for (NodeId src = 0; src < n; ++src)
        for (NodeId step = 1; step < n; ++step)
            ids.push_back(net.sendMessage(src, (src + step) % n,
                                          cfg.messageLength));
    std::printf("all-to-all on %u nodes: %zu messages of %u flits\n",
                n, ids.size(), cfg.messageLength);

    const Cycle limit = 3000000;
    std::size_t done = 0;
    while (done < ids.size() && net.now() < limit) {
        net.run(1000);
        done = 0;
        for (MsgId id : ids)
            done += net.isDelivered(id);
        if (net.now() % 10000 == 0) {
            std::printf("  t=%-8llu delivered %zu/%zu (kills so far: "
                        "%llu)\n",
                        static_cast<unsigned long long>(net.now()),
                        done, ids.size(),
                        static_cast<unsigned long long>(
                            net.stats().sourceKills.value()));
        }
    }
    if (done != ids.size()) {
        std::printf("FAILED: only %zu/%zu delivered\n", done,
                    ids.size());
        return 1;
    }

    const NetworkStats& s = net.stats();
    const double flits = static_cast<double>(ids.size()) *
                         cfg.messageLength;
    std::printf("\ncomplete at cycle %llu\n",
                static_cast<unsigned long long>(net.now()));
    std::printf("  effective bandwidth  %.3f payload flits/node/"
                "cycle\n",
                flits / static_cast<double>(n) /
                    static_cast<double>(net.now()));
    std::printf("  deadlocks recovered  %llu kills (%.2f per "
                "message)\n",
                static_cast<unsigned long long>(
                    s.sourceKills.value()),
                static_cast<double>(s.sourceKills.value()) /
                    static_cast<double>(ids.size()));
    std::printf("  order violations     %llu, duplicates %llu, "
                "corrupted %llu\n",
                static_cast<unsigned long long>(
                    s.orderViolations.value()),
                static_cast<unsigned long long>(
                    s.duplicateDeliveries.value()),
                static_cast<unsigned long long>(
                    s.corruptedDeliveries.value()));
    return 0;
}
