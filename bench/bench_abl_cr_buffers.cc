/**
 * @file
 * Ablation — buffer depth under CR. DESIGN.md calls out the paper's
 * claim that the right CR buffer organization is many shallow (2-flit)
 * VC buffers: deeper buffers enlarge the path's flit capacity, which
 * enlarges the padding, which wastes bandwidth — with no compensating
 * gain, because CR recovers from blocking instead of riding it out in
 * buffers.
 *
 * Expected shape: at fixed load and VC count, latency and pad
 * overhead both *rise* monotonically with CR buffer depth.
 */

#include "bench/bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    SimConfig base = baseConfig();
    base.applyArgs(argc, argv);

    Table t("Ablation: CR buffer depth (2 VCs, 16-flit messages)");
    t.setHeader({"depth", "lat@0.15", "lat@0.30", "pad_overhead",
                 "kills/msg@0.30"});
    const std::vector<std::uint32_t> depths = {1, 2, 4, 8, 16};
    std::vector<SimConfig> points;
    points.reserve(2 * depths.size());
    for (std::uint32_t depth : depths) {
        SimConfig lo = base;
        lo.bufferDepth = depth;
        lo.injectionRate = 0.15;
        points.push_back(lo);
        SimConfig hi = lo;
        hi.injectionRate = 0.30;
        points.push_back(hi);
    }
    const std::vector<RunResult> results = sweep(points);

    for (std::size_t di = 0; di < depths.size(); ++di) {
        const RunResult& rlo = results[2 * di];
        const RunResult& rhi = results[2 * di + 1];
        t.addRow({Table::cell(std::uint64_t{depths[di]}),
                  latencyCell(rlo), latencyCell(rhi),
                  Table::cell(rhi.padOverhead, 3),
                  Table::cell(rhi.killsPerMessage, 3)});
    }
    emit(t);
    std::printf("expected shape: monotonically worse with depth — the "
                "opposite of DOR,\nwhere FIFO depth helps. This is why "
                "Fig. 14 fixes CR at 2-flit buffers.\n");
    timingFooter();
    return 0;
}
