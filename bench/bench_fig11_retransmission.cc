/**
 * @file
 * Fig. 11 — static retransmission gaps vs. the dynamic (binary
 * exponential backoff) scheme.
 *
 * Paper setup: CR network, kill timeout fixed at 32 cycles; average
 * message latency vs. offered load for several fixed retransmission
 * gaps (dashed lines in the paper) against the dynamic scheme (solid
 * line). Expected shape: the dynamic scheme tracks the best static
 * gap at every load; small static gaps blow up near saturation
 * (kill storms), large ones waste time at low loads.
 */

#include "bench/bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    SimConfig base = baseConfig();
    base.timeout = 32;  // The paper fixes the kill timeout here.
    base.applyArgs(argc, argv);

    const std::vector<Cycle> static_gaps = {0, 8, 16, 32, 64};
    const auto loads = defaultLoads();

    Table t("Fig. 11: avg latency vs load, static gaps vs dynamic "
            "backoff (timeout=32)");
    std::vector<std::string> header = {"load"};
    for (Cycle g : static_gaps)
        header.push_back("static_" + std::to_string(g));
    header.push_back("dynamic");
    header.push_back("dyn_kills/msg");
    t.setHeader(header);

    // One flat batch — every (load, gap) cell plus the dynamic
    // column — fanned out by the parallel engine, row-major.
    const std::size_t cols = static_gaps.size() + 1;
    std::vector<SimConfig> points;
    points.reserve(loads.size() * cols);
    for (double load : loads) {
        for (Cycle gap : static_gaps) {
            SimConfig cfg = base;
            cfg.injectionRate = load;
            cfg.backoff = BackoffScheme::Static;
            cfg.backoffGap = gap;
            points.push_back(cfg);
        }
        SimConfig dyn = base;
        dyn.injectionRate = load;
        dyn.backoff = BackoffScheme::Exponential;
        dyn.backoffGap = 8;
        points.push_back(dyn);
    }
    const std::vector<RunResult> results = sweep(points);

    for (std::size_t li = 0; li < loads.size(); ++li) {
        std::vector<std::string> row = {Table::cell(loads[li], 2)};
        for (std::size_t gi = 0; gi < static_gaps.size(); ++gi)
            row.push_back(latencyCell(results[li * cols + gi]));
        const RunResult& r = results[li * cols + static_gaps.size()];
        row.push_back(latencyCell(r));
        row.push_back(Table::cell(r.killsPerMessage, 3));
        t.addRow(row);
    }
    emit(t);
    std::printf("note: '*' marks points that did not drain within the "
                "budget (saturated);\n"
                "      expected shape: dynamic tracks the best static "
                "gap across all loads.\n");
    timingFooter();
    return 0;
}
