/**
 * @file
 * Monte-Carlo dynamic-fault campaign: N seeded trials with links
 * dying at random cycles under load, verified against the delivery
 * ledger.
 *
 * Expected shape: FCR keeps a 100%-accounted ledger in every trial
 * (each accepted message delivered exactly once or explicitly
 * refused), with zero deadlocks; delivery rate stays near 1.0 and the
 * post-fault latency transient is modest. CR accounts everything too
 * but may deliver corrupted payloads under a transient burst.
 *
 * Extra args (before the usual key=value config overrides):
 *   trials=N        number of seeded trials (default 100)
 *   seed_base=S     seed of trial 0 (default 1)
 *   journal=PATH    crash-resume journal (docs/ROBUSTNESS.md); a
 *                   restarted campaign replays completed trials and
 *                   runs only the missing ones
 *   trial_retries=N watchdog re-runs before quarantining a trial
 *                   that exhausts its drain budget (default 1)
 */

#include <cstdlib>
#include <cstring>

#include "bench/bench_common.hh"
#include "src/fault/campaign.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    CampaignConfig cc;
    cc.base = baseConfig();
    cc.base.protocol = ProtocolKind::Fcr;
    cc.base.injectionRate = 0.15;
    cc.base.timeout = 32;
    cc.base.maxRetries = 0;  // Retry forever; refusal needs a cap.
    // Misrouting is required under dynamic faults: a link death can
    // leave (src,dst) pairs with no live minimal path.
    cc.base.misrouteAfterRetries = 1;
    cc.base.misrouteBudget = 4;
    cc.base.dynamicLinkKills = 2;

    // Campaign-only args, consumed before the SimConfig overrides.
    std::vector<char*> rest = {argv[0]};
    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "trials=", 7) == 0)
            cc.trials = static_cast<std::uint32_t>(
                std::strtoul(argv[i] + 7, nullptr, 10));
        else if (std::strncmp(argv[i], "seed_base=", 10) == 0)
            cc.seedBase = std::strtoull(argv[i] + 10, nullptr, 10);
        else if (std::strncmp(argv[i], "journal=", 8) == 0)
            cc.journalPath = argv[i] + 8;
        else if (std::strncmp(argv[i], "trial_retries=", 14) == 0)
            cc.trialRetries = static_cast<std::uint32_t>(
                std::strtoul(argv[i] + 14, nullptr, 10));
        else
            rest.push_back(argv[i]);
    }
    cc.base.applyArgs(static_cast<int>(rest.size()), rest.data());

    std::vector<TrialOutcome> trials;
    const CampaignSummary s = runCampaign(cc, &trials);
    record(s);
    suiteTotals().jobs = resolveJobs(cc.base.jobs);

    Table t("Dynamic-fault campaign (" +
            std::to_string(cc.trials) + " trials, load 0.15)");
    t.setHeader({"trials", "accounted", "deadlocks", "quarantined",
                 "resumed", "accepted", "delivered", "refused",
                 "pending", "dups", "delivery_rate", "pre_lat",
                 "post_lat", "recovery_mean", "recovery_max"});
    t.addRow({Table::cell(std::uint64_t{s.trials}),
              Table::cell(std::uint64_t{s.accountedTrials}),
              Table::cell(std::uint64_t{s.deadlockedTrials}),
              Table::cell(std::uint64_t{s.quarantinedTrials}),
              Table::cell(std::uint64_t{s.resumedTrials}),
              Table::cell(s.accepted), Table::cell(s.delivered),
              Table::cell(s.refused), Table::cell(s.pending),
              Table::cell(s.duplicates),
              Table::cell(s.deliveryRate, 4),
              Table::cell(s.meanPreFaultLatency, 1),
              Table::cell(s.meanPostFaultLatency, 1),
              Table::cell(s.meanRecoveryCycles, 0),
              Table::cell(std::uint64_t{s.maxRecoveryCycles})});
    emit(t);

    // Per-trial rows for post-processing (tools/extract_csv.py writes
    // them to <bench>__trials.csv).
    std::cout << "campaign-trials:\n";
    std::cout << "trial,seed,accepted,delivered,refused,pending,dups,"
              << "fault_events,flits_lost,rcv_timeouts,first_fault,"
              << "pre_lat,post_lat,recovery,deadlocked,accounted,"
              << "cycles,quarantined,budget_retries\n";
    for (const TrialOutcome& tr : trials) {
        std::cout << tr.trial << ',' << tr.seed << ',' << tr.accepted
                  << ',' << tr.delivered << ',' << tr.refused << ','
                  << tr.pendingAtEnd << ',' << tr.duplicates << ','
                  << tr.faultEvents << ',' << tr.flitsLost << ','
                  << tr.receiverTimeouts << ',' << tr.firstFaultAt
                  << ',' << tr.preFaultLatency << ','
                  << tr.postFaultLatency << ',' << tr.recoveryCycles
                  << ',' << (tr.deadlocked ? 1 : 0) << ','
                  << (tr.fullyAccounted ? 1 : 0) << ',' << tr.cyclesRun
                  << ',' << (tr.quarantined ? 1 : 0) << ','
                  << tr.budgetRetries << "\n";
    }
    std::cout << "\n";

    // Representative trial telemetry: replay trial 0's exact
    // configuration (same seed, same fault draws) with interval
    // sampling on, so the campaign output carries one recovery curve
    // alongside the aggregate rows.
    SimConfig rep = cc.base;
    rep.seed = cc.seedBase;
    rep.sampleInterval = 250;
    const RunResult rr = runOne(rep);
    std::printf("representative trial (seed %llu):\n",
                static_cast<unsigned long long>(rep.seed));
    emitTimeSeries(rr);

    std::printf("expected shape: accounted == trials, zero deadlocks, "
                "zero pending, zero dups;\ndelivery rate ~1.0 with a "
                "bounded post-fault latency transient.\n");
    timingFooter();
    return s.accountedTrials == s.trials ? 0 : 1;
}
