/**
 * @file
 * Sec. 7 — alternate timeout schemes: source-based (stall counter and
 * I_min progress bound) vs the path-wide scheme where every router
 * kills worms that stall near it, plus the BBN-Butterfly-style
 * drop-at-block discipline from the related work (Sec. 8), where a
 * router rejects any header blocked in front of it.
 *
 * Expected shape: the two source-based schemes track each other; the
 * router-driven schemes misread ordinary congestion as deadlock,
 * producing many more kills per message (the paper's "unnecessary
 * message kills"), with drop-at-block the most trigger-happy.
 */

#include "bench/bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    SimConfig base = baseConfig();
    base.timeout = 16;
    base.applyArgs(argc, argv);

    const std::vector<double> loads = {0.15, 0.30, 0.45};

    Table t("Timeout schemes: latency and kills/msg (timeout=16)");
    t.setHeader({"load", "src_stall_lat", "kills", "src_imin_lat",
                 "kills ", "path_wide_lat", "kills  ",
                 "drop_at_block_lat", "kills   "});

    const std::vector<TimeoutScheme> schemes = {
        TimeoutScheme::SourceStall, TimeoutScheme::SourceImin,
        TimeoutScheme::PathWide, TimeoutScheme::DropAtBlock};
    std::vector<SimConfig> points;
    points.reserve(loads.size() * schemes.size());
    for (double load : loads) {
        for (auto scheme : schemes) {
            SimConfig cfg = base;
            cfg.injectionRate = load;
            cfg.timeoutScheme = scheme;
            points.push_back(cfg);
        }
    }
    const std::vector<RunResult> results = sweep(points);

    for (std::size_t li = 0; li < loads.size(); ++li) {
        std::vector<std::string> row = {Table::cell(loads[li], 2)};
        for (std::size_t si = 0; si < schemes.size(); ++si) {
            const RunResult& r = results[li * schemes.size() + si];
            row.push_back(latencyCell(r));
            row.push_back(Table::cell(r.killsPerMessage, 3));
        }
        t.addRow(row);
    }
    emit(t);
    std::printf("expected shape: path-wide kills/msg far above the "
                "source-based schemes,\nwith worse latency; the two "
                "source schemes track each other.\n");
    timingFooter();
    return 0;
}
