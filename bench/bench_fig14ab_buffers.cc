/**
 * @file
 * Fig. 14(a,b) — CR vs DOR with equal virtual channels, sweeping the
 * DOR FIFO depth; two message lengths.
 *
 * Paper setup: both get 2 VCs. CR keeps 2-flit buffers (deeper CR
 * buffers only add padding); DOR's FIFO depth is swept over
 * {2,4,8,16}. Expected shape: CR with 2-flit buffers matches or beats
 * DOR with 16-flit FIFOs — the paper's headline "equal resources"
 * claim — and saturates at a visibly higher load.
 */

#include "bench/bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    SimConfig base = baseConfig();
    base.applyArgs(argc, argv);

    const std::vector<std::uint32_t> dor_depths = {2, 4, 8, 16};
    const auto loads = defaultLoads();

    for (std::uint32_t msg_len : {16u, 32u}) {
        Table t("Fig. 14(" + std::string(msg_len == 16 ? "a" : "b") +
                "): avg latency vs load, " + std::to_string(msg_len) +
                "-flit messages, 2 VCs each");
        std::vector<std::string> header = {"load", "CR_d2"};
        for (auto d : dor_depths)
            header.push_back("DOR_d" + std::to_string(d));
        header.push_back("CR_thr");
        header.push_back("DOR16_thr");
        t.setHeader(header);

        for (double load : loads) {
            std::vector<std::string> row = {Table::cell(load, 2)};

            SimConfig cr = base;
            cr.injectionRate = load;
            cr.messageLength = msg_len;
            cr.timeout = msg_len / cr.numVcs;
            const RunResult rcr = runExperiment(cr);
            row.push_back(latencyCell(rcr));

            RunResult rdor16{};
            for (auto depth : dor_depths) {
                SimConfig dor = base;
                dor.injectionRate = load;
                dor.messageLength = msg_len;
                dor.routing = RoutingKind::DimensionOrder;
                dor.protocol = ProtocolKind::None;
                dor.bufferDepth = depth;
                const RunResult r = runExperiment(dor);
                if (depth == 16)
                    rdor16 = r;
                row.push_back(latencyCell(r));
            }
            row.push_back(Table::cell(rcr.acceptedThroughput, 3));
            row.push_back(Table::cell(rdor16.acceptedThroughput, 3));
            t.addRow(row);
        }
        emit(t);
    }
    std::printf("expected shape: CR with 2-flit buffers ~ DOR with "
                "16-flit FIFOs, and CR\nsaturates at higher load than "
                "every DOR depth.\n");
    return 0;
}
