/**
 * @file
 * Fig. 14(a,b) — CR vs DOR with equal virtual channels, sweeping the
 * DOR FIFO depth; two message lengths.
 *
 * Paper setup: both get 2 VCs. CR keeps 2-flit buffers (deeper CR
 * buffers only add padding); DOR's FIFO depth is swept over
 * {2,4,8,16}. Expected shape: CR with 2-flit buffers matches or beats
 * DOR with 16-flit FIFOs — the paper's headline "equal resources"
 * claim — and saturates at a visibly higher load.
 */

#include "bench/bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    SimConfig base = baseConfig();
    base.applyArgs(argc, argv);

    const std::vector<std::uint32_t> dor_depths = {2, 4, 8, 16};
    const auto loads = defaultLoads();

    for (std::uint32_t msg_len : {16u, 32u}) {
        Table t("Fig. 14(" + std::string(msg_len == 16 ? "a" : "b") +
                "): avg latency vs load, " + std::to_string(msg_len) +
                "-flit messages, 2 VCs each");
        std::vector<std::string> header = {"load", "CR_d2"};
        for (auto d : dor_depths)
            header.push_back("DOR_d" + std::to_string(d));
        header.push_back("CR_thr");
        header.push_back("DOR16_thr");
        t.setHeader(header);

        // Row-major batch: per load, one CR point then each DOR depth.
        const std::size_t cols = 1 + dor_depths.size();
        std::vector<SimConfig> points;
        points.reserve(loads.size() * cols);
        for (double load : loads) {
            SimConfig cr = base;
            cr.injectionRate = load;
            cr.messageLength = msg_len;
            cr.timeout = msg_len / cr.numVcs;
            points.push_back(cr);
            for (auto depth : dor_depths) {
                SimConfig dor = base;
                dor.injectionRate = load;
                dor.messageLength = msg_len;
                dor.routing = RoutingKind::DimensionOrder;
                dor.protocol = ProtocolKind::None;
                dor.bufferDepth = depth;
                points.push_back(dor);
            }
        }
        const std::vector<RunResult> results = sweep(points);

        for (std::size_t li = 0; li < loads.size(); ++li) {
            std::vector<std::string> row = {
                Table::cell(loads[li], 2)};
            const RunResult& rcr = results[li * cols];
            row.push_back(latencyCell(rcr));
            for (std::size_t di = 0; di < dor_depths.size(); ++di)
                row.push_back(
                    latencyCell(results[li * cols + 1 + di]));
            const RunResult& rdor16 =
                results[li * cols + dor_depths.size()];
            row.push_back(Table::cell(rcr.acceptedThroughput, 3));
            row.push_back(Table::cell(rdor16.acceptedThroughput, 3));
            t.addRow(row);
        }
        emit(t);
    }
    std::printf("expected shape: CR with 2-flit buffers ~ DOR with "
                "16-flit FIFOs, and CR\nsaturates at higher load than "
                "every DOR depth.\n");
    timingFooter();
    return 0;
}
