/**
 * @file
 * Ablation — padding slack. The padding rule computes the exact path
 * flit capacity; `padSlack` is the safety margin on top. More slack
 * means longer wires (more wasted bandwidth); the correctness
 * invariants must hold at every setting, including zero slack
 * (capacity is exact in this simulator).
 *
 * Expected shape: latency and pad overhead grow mildly with slack;
 * committed == delivered at every point.
 */

#include "bench/bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    SimConfig base = baseConfig();
    base.injectionRate = 0.25;
    base.applyArgs(argc, argv);

    Table t("Ablation: pad slack (CR, load 0.25)");
    t.setHeader({"slack", "avg_lat", "pad_overhead", "kills/msg",
                 "drained"});
    const std::vector<std::uint32_t> slacks = {0, 2, 8, 16, 32};
    std::vector<SimConfig> points;
    points.reserve(slacks.size());
    for (std::uint32_t slack : slacks) {
        SimConfig cfg = base;
        cfg.padSlack = slack;
        points.push_back(cfg);
    }
    const std::vector<RunResult> results = sweep(points);

    for (std::size_t si = 0; si < slacks.size(); ++si) {
        const RunResult& r = results[si];
        t.addRow({Table::cell(std::uint64_t{slacks[si]}),
                  latencyCell(r), Table::cell(r.padOverhead, 3),
                  Table::cell(r.killsPerMessage, 3),
                  r.drained ? "yes" : "NO"});
    }
    emit(t);
    std::printf("expected shape: mild monotone cost with slack; "
                "everything drains even at 0\n(the capacity model is "
                "exact), so 2 is purely defensive.\n");
    timingFooter();
    return 0;
}
