/**
 * @file
 * Engine scaling on giant networks: intra-run sharding (`shards=`)
 * splits one network's tick across worker threads, so a single
 * 64k-node torus — a size where a load sweep would otherwise take
 * hours — ticks in parallel while staying bit-identical to shards=1
 * (tests/test_shard.cc, docs/PERFORMANCE.md).
 *
 * Two curves per network size:
 *   - flit-events/sec at shards = 1, 2, 4 (same seed, same traffic;
 *     the speedup column is events/sec relative to shards=1), and
 *   - resident memory per node (peak-RSS growth over the process
 *     baseline divided by node count — the SoA router pools keep this
 *     flat as the network grows).
 *
 * Expected shape: sharding loses below ~1k nodes (barrier cost beats
 * the per-shard work) and wins increasingly above 4k nodes; memory
 * per node stays roughly constant across sizes.
 */

#include <chrono>

#include "bench/bench_common.hh"
#include "src/core/network.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    SimConfig base = baseConfig();
    base.topology = TopologyKind::Torus;
    base.dimensionsN = 2;
    base.injectionRate = 0.1;
    base.messageLength = 8;
    base.profileEnabled = false;  // Keep the hot loop unperturbed.
    base.applyArgs(argc, argv);

    // Ascending sizes: 1k, 4k, 16k, 64k nodes. Peak RSS only grows,
    // so measuring after each size (one network alive at a time)
    // attributes the peak to the largest-so-far network.
    const std::vector<std::uint32_t> radixes = {32, 64, 128, 256};
    const Cycle warmup = 200;
    const Cycle timed = 400;
    const long rssBaseKb = peakRssKb();

    Table t("Giant-network scaling: one run sharded across threads "
            "(torus, CR, load 0.1)");
    t.setHeader({"nodes", "shards", "wall_s", "flit_events",
                 "Mev_per_s", "speedup", "node_kb"});

    double speedup4kPlus = 0.0;  // Best 4-shard speedup at >= 4k.
    for (std::uint32_t k : radixes) {
        double baseRate = 0.0;
        long sizeRssKb = 0;
        for (unsigned shards : {1u, 2u, 4u}) {
            SimConfig cfg = base;
            cfg.radixK = k;
            cfg.shards = shards;
            const auto nodes = cfg.numNodes();

            Network net(cfg);
            net.run(warmup);
            const std::uint64_t before =
                net.stats().flitsInjected.value() +
                net.stats().router.flitsForwarded.value() +
                net.stats().flitsConsumed.value();
            const auto start = std::chrono::steady_clock::now();
            net.run(timed);
            const double wall =
                std::chrono::duration<double>(
                    std::chrono::steady_clock::now() - start)
                    .count();
            const std::uint64_t events =
                net.stats().flitsInjected.value() +
                net.stats().router.flitsForwarded.value() +
                net.stats().flitsConsumed.value() - before;
            record(1, wall, events);
            suiteTotals().shards = shards;

            const double rate = static_cast<double>(events) / wall;
            if (shards == 1) {
                baseRate = rate;
                sizeRssKb = peakRssKb() - rssBaseKb;
            }
            const double speedup = rate / baseRate;
            if (shards == 4 && nodes >= 4096)
                speedup4kPlus = std::max(speedup4kPlus, speedup);
            t.addRow({Table::cell(nodes),
                      Table::cell(std::uint64_t{shards}),
                      Table::cell(wall, 3), Table::cell(events),
                      Table::cell(rate / 1e6, 2),
                      Table::cell(speedup, 2),
                      Table::cell(static_cast<double>(sizeRssKb) /
                                      static_cast<double>(nodes),
                                  2)});
        }
    }
    emit(t);
    std::printf("expected shape: sharding pays off past ~4k nodes "
                "(best 4-shard speedup there: %.2fx)\nwhile memory "
                "per node stays flat — the SoA pools scale linearly.\n",
                speedup4kPlus);
    timingFooter();
    return 0;
}
