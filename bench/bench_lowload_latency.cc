/**
 * @file
 * Zero-load latency — the left edge of the paper's latency/throughput
 * curves (Figs. 10-12), sampled at offered loads well below
 * saturation where contention is rare and latency approaches the
 * no-load bound (hop count + serialization + padding overhead).
 *
 * Expected shape: latency is flat across these loads and CR pays its
 * constant padding tax over an unprotected network; kills/msg is ~0
 * because timeouts only misfire under congestion.
 *
 * This regime is also the active-set scheduler's best case — most
 * components are asleep on most cycles — so the bench doubles as the
 * perf-report sweep for scheduler speedup at low load (see
 * docs/PERFORMANCE.md and tools/bench_report.py).
 */

#include "bench/bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    SimConfig base = baseConfig();
    // Low loads deliver few messages per cycle; stretch the window so
    // every point still averages over thousands of deliveries.
    base.measureCycles = 20000;
    base.applyArgs(argc, argv);

    const std::vector<double> loads = {0.01, 0.02, 0.04, 0.08};
    const std::vector<ProtocolKind> protos = {ProtocolKind::Cr,
                                              ProtocolKind::Fcr};

    Table t("Zero-load latency: avg latency (kills/msg) by offered "
            "load");
    std::vector<std::string> header = {"protocol"};
    for (double load : loads)
        header.push_back("load_" + Table::cell(load, 2));
    t.setHeader(header);

    std::vector<SimConfig> points;
    points.reserve(protos.size() * loads.size());
    for (ProtocolKind proto : protos) {
        for (double load : loads) {
            SimConfig cfg = base;
            cfg.protocol = proto;
            cfg.injectionRate = load;
            points.push_back(cfg);
        }
    }
    const std::vector<RunResult> results = sweep(points);

    for (std::size_t pi = 0; pi < protos.size(); ++pi) {
        std::vector<std::string> row = {toString(protos[pi])};
        for (std::size_t li = 0; li < loads.size(); ++li) {
            const RunResult& r = results[pi * loads.size() + li];
            row.push_back(latencyCell(r) + " (" +
                          Table::cell(r.killsPerMessage, 2) + ")");
        }
        t.addRow(row);
    }
    emit(t);
    timingFooter();
    return 0;
}
