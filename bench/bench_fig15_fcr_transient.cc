/**
 * @file
 * Sec. 6.2 — FCR performance under a range of transient fault rates.
 *
 * Expected shape: latency and delivered throughput degrade gracefully
 * as the per-flit-hop fault rate grows (each detected fault costs one
 * kill + one retransmission); corrupted deliveries stay at exactly
 * zero at every rate — FCR's nonstop fault-tolerance guarantee. A CR
 * column shows the contrast: same faults, corrupted data reaching
 * software.
 */

#include "bench/bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    SimConfig base = baseConfig();
    base.protocol = ProtocolKind::Fcr;
    base.injectionRate = 0.15;
    base.timeout = 32;
    base.applyArgs(argc, argv);

    const std::vector<double> rates = {0.0,    1e-5, 3e-5, 1e-4,
                                       3e-4,   1e-3, 3e-3};

    Table t("FCR under transient faults (load 0.15): latency, "
            "retries, delivery integrity");
    t.setHeader({"fault_rate", "FCR_lat", "FCR_thr", "attempts",
                 "refusals", "FCR_corrupt_deliv", "CR_corrupt_deliv"});

    // Row-major batch: (FCR, CR) per fault rate.
    std::vector<SimConfig> points;
    points.reserve(2 * rates.size());
    for (double rate : rates) {
        SimConfig fcr = base;
        fcr.transientFaultRate = rate;
        points.push_back(fcr);

        SimConfig cr = base;
        cr.protocol = ProtocolKind::Cr;
        cr.transientFaultRate = rate;
        points.push_back(cr);
    }
    const std::vector<RunResult> results = sweep(points);

    for (std::size_t ri = 0; ri < rates.size(); ++ri) {
        const double rate = rates[ri];
        const RunResult& rf = results[2 * ri];
        const RunResult& rc = results[2 * ri + 1];

        t.addRow({Table::cell(rate, 5), latencyCell(rf),
                  Table::cell(rf.acceptedThroughput, 3),
                  Table::cell(rf.avgAttempts, 3),
                  Table::cell(rf.refusals),
                  Table::cell(rf.corruptedDeliveries),
                  Table::cell(rc.corruptedDeliveries)});
    }
    emit(t);
    std::printf("expected shape: FCR corrupted deliveries = 0 at every "
                "rate; latency grows\ngracefully; plain CR lets "
                "corrupted messages through.\n");

    // Recovery trace: one FCR run where two links die mid-measurement
    // and are repaired shortly after. The interval-sampled time
    // series (see docs/OBSERVABILITY.md) shows the kill-rate spike at
    // the fault window and throughput recovering once retries drain;
    // the heatmap shows which channels absorbed the detour traffic.
    SimConfig rec = base;
    rec.transientFaultRate = 0.0;
    rec.dynamicLinkKills = 2;
    rec.faultWindowStart = rec.warmupCycles + 1500;
    rec.faultWindowEnd = rec.faultWindowStart + 1;
    rec.linkRepairAfter = 1000;
    rec.sampleInterval = 250;
    rec.heatmapEnabled = true;
    const RunResult rr = runOne(rec);
    std::printf("recovery run: faults at cycle %llu, repair after "
                "%llu cycles, kills=%llu\n",
                static_cast<unsigned long long>(rec.faultWindowStart),
                static_cast<unsigned long long>(rec.linkRepairAfter),
                static_cast<unsigned long long>(rr.totalKills));
    emitTimeSeries(rr);
    emitHeatmap(rr);

    timingFooter();
    return 0;
}
