/**
 * @file
 * Sec. 6.2 — FCR performance under a range of transient fault rates.
 *
 * Expected shape: latency and delivered throughput degrade gracefully
 * as the per-flit-hop fault rate grows (each detected fault costs one
 * kill + one retransmission); corrupted deliveries stay at exactly
 * zero at every rate — FCR's nonstop fault-tolerance guarantee. A CR
 * column shows the contrast: same faults, corrupted data reaching
 * software.
 */

#include "bench/bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    SimConfig base = baseConfig();
    base.protocol = ProtocolKind::Fcr;
    base.injectionRate = 0.15;
    base.timeout = 32;
    base.applyArgs(argc, argv);

    const std::vector<double> rates = {0.0,    1e-5, 3e-5, 1e-4,
                                       3e-4,   1e-3, 3e-3};

    Table t("FCR under transient faults (load 0.15): latency, "
            "retries, delivery integrity");
    t.setHeader({"fault_rate", "FCR_lat", "FCR_thr", "attempts",
                 "refusals", "FCR_corrupt_deliv", "CR_corrupt_deliv"});

    // Row-major batch: (FCR, CR) per fault rate.
    std::vector<SimConfig> points;
    points.reserve(2 * rates.size());
    for (double rate : rates) {
        SimConfig fcr = base;
        fcr.transientFaultRate = rate;
        points.push_back(fcr);

        SimConfig cr = base;
        cr.protocol = ProtocolKind::Cr;
        cr.transientFaultRate = rate;
        points.push_back(cr);
    }
    const std::vector<RunResult> results = sweep(points);

    for (std::size_t ri = 0; ri < rates.size(); ++ri) {
        const double rate = rates[ri];
        const RunResult& rf = results[2 * ri];
        const RunResult& rc = results[2 * ri + 1];

        t.addRow({Table::cell(rate, 5), latencyCell(rf),
                  Table::cell(rf.acceptedThroughput, 3),
                  Table::cell(rf.avgAttempts, 3),
                  Table::cell(rf.refusals),
                  Table::cell(rf.corruptedDeliveries),
                  Table::cell(rc.corruptedDeliveries)});
    }
    emit(t);
    std::printf("expected shape: FCR corrupted deliveries = 0 at every "
                "rate; latency grows\ngracefully; plain CR lets "
                "corrupted messages through.\n");
    timingFooter();
    return 0;
}
