/**
 * @file
 * Latency distribution and variance — the delivery-guarantee
 * discussion: CR's retransmissions add a latency tail (some messages
 * are killed repeatedly), visible in the upper percentiles and the
 * variance, and bounded in practice by the backoff.
 *
 * Also sweeps a bimodal length mix (after Kim & Chien's bimodal
 * traffic study) to show the effect of long messages on the short
 * messages' tail.
 */

#include "bench/bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    SimConfig base = baseConfig();
    base.applyArgs(argc, argv);

    Table t("Latency distribution (CR, uniform, 16-flit messages)");
    t.setHeader({"load", "mean", "stddev", "p50", "p95", "p99", "max",
                 "kills/msg", "max_attempts_seen"});
    const std::vector<double> uni_loads = {0.10, 0.25, 0.40, 0.50};
    std::vector<SimConfig> points;
    points.reserve(uni_loads.size());
    for (double load : uni_loads) {
        SimConfig cfg = base;
        cfg.injectionRate = load;
        points.push_back(cfg);
    }
    const std::vector<RunResult> results = sweep(points);

    for (std::size_t li = 0; li < uni_loads.size(); ++li) {
        const RunResult& r = results[li];
        t.addRow({Table::cell(uni_loads[li], 2),
                  Table::cell(r.avgLatency, 1),
                  Table::cell(r.latencyStddev, 1),
                  Table::cell(r.p50Latency, 0),
                  Table::cell(r.p95Latency, 0),
                  Table::cell(r.p99Latency, 0),
                  Table::cell(r.maxLatency, 0),
                  Table::cell(r.killsPerMessage, 3),
                  Table::cell(r.avgAttempts, 2)});
    }
    emit(t);

    Table b("Bimodal traffic: 90% 8-flit / 10% 64-flit messages");
    b.setHeader({"load", "mean", "stddev", "p95", "p99",
                 "kills/msg"});
    const std::vector<double> bi_loads = {0.10, 0.25, 0.40};
    std::vector<SimConfig> bi_points;
    bi_points.reserve(bi_loads.size());
    for (double load : bi_loads) {
        SimConfig cfg = base;
        cfg.injectionRate = load;
        cfg.messageLength = 8;
        cfg.messageLengthB = 64;
        cfg.bimodalFracB = 0.10;
        cfg.timeout = 16;
        bi_points.push_back(cfg);
    }
    const std::vector<RunResult> bi_results = sweep(bi_points);

    for (std::size_t li = 0; li < bi_loads.size(); ++li) {
        const RunResult& r = bi_results[li];
        b.addRow({Table::cell(bi_loads[li], 2),
                  Table::cell(r.avgLatency, 1),
                  Table::cell(r.latencyStddev, 1),
                  Table::cell(r.p95Latency, 0),
                  Table::cell(r.p99Latency, 0),
                  Table::cell(r.killsPerMessage, 3)});
    }
    emit(b);
    std::printf("expected shape: tails (p99, max) grow faster than the "
                "mean as kills appear;\nbimodal mixes lengthen the "
                "short messages' tail.\n");
    timingFooter();
    return 0;
}
