/**
 * @file
 * Padding-overhead analysis: the cost CR/FCR pays for its guarantees,
 * across message lengths, network sizes and buffer depths.
 *
 * Two parts:
 *   1. analytic wire lengths straight from the padding rule
 *      (worst-case path = network diameter);
 *   2. measured mean pad fraction from uniform-traffic simulations
 *      (actual paths are shorter than the diameter).
 *
 * Expected shape: overhead shrinks as messages grow and rises with
 * network size and buffer depth; FCR pays roughly one full network
 * depth more than CR; the overhead is independent of the VC count.
 */

#include "bench/bench_common.hh"
#include "src/nic/padding.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    SimConfig base = baseConfig();
    base.injectionRate = 0.1;
    base.applyArgs(argc, argv);

    Table a("Analytic pad fraction at the network diameter "
            "(pads+tail)/wire");
    a.setHeader({"msg_len", "k8_d2_CR", "k8_d2_FCR", "k16_d2_CR",
                 "k16_d2_FCR", "k8_d8_CR", "k8_d8_FCR"});
    for (std::uint32_t len : {4u, 8u, 16u, 32u, 64u, 128u}) {
        auto frac = [&](ProtocolKind p, std::uint32_t k,
                        std::uint32_t depth) {
            const std::uint32_t hops = 2 * (k / 2);  // 2D diameter.
            const std::uint32_t wire = wireLength(p, len, hops, depth,
                                                  base.padSlack);
            return Table::cell(
                static_cast<double>(wire - len) / wire, 3);
        };
        a.addRow({Table::cell(std::uint64_t{len}),
                  frac(ProtocolKind::Cr, 8, 2),
                  frac(ProtocolKind::Fcr, 8, 2),
                  frac(ProtocolKind::Cr, 16, 2),
                  frac(ProtocolKind::Fcr, 16, 2),
                  frac(ProtocolKind::Cr, 8, 8),
                  frac(ProtocolKind::Fcr, 8, 8)});
    }
    emit(a);

    Table m("Measured mean pad fraction, uniform traffic at load 0.1");
    m.setHeader({"msg_len", "CR_1vc", "CR_4vc", "FCR_1vc"});
    const std::vector<std::uint32_t> lens = {8, 16, 32, 64};
    std::vector<SimConfig> points;
    points.reserve(3 * lens.size());
    for (std::uint32_t len : lens) {
        auto mkPoint = [&](ProtocolKind p, std::uint32_t vcs) {
            SimConfig cfg = base;
            cfg.messageLength = len;
            cfg.protocol = p;
            cfg.numVcs = vcs;
            cfg.timeout = std::max<Cycle>(4, len / vcs);
            return cfg;
        };
        points.push_back(mkPoint(ProtocolKind::Cr, 1));
        points.push_back(mkPoint(ProtocolKind::Cr, 4));
        points.push_back(mkPoint(ProtocolKind::Fcr, 1));
    }
    const std::vector<RunResult> results = sweep(points);

    for (std::size_t li = 0; li < lens.size(); ++li) {
        m.addRow({Table::cell(std::uint64_t{lens[li]}),
                  Table::cell(results[3 * li].padOverhead, 3),
                  Table::cell(results[3 * li + 1].padOverhead, 3),
                  Table::cell(results[3 * li + 2].padOverhead, 3)});
    }
    emit(m);
    std::printf("expected shape: overhead falls with message length, "
                "rises with network size\nand buffer depth, is equal "
                "at 1 and 4 VCs, and FCR > CR throughout.\n");
    timingFooter();
    return 0;
}
