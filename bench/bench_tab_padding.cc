/**
 * @file
 * Padding-overhead analysis: the cost CR/FCR pays for its guarantees,
 * across message lengths, network sizes and buffer depths.
 *
 * Two parts:
 *   1. analytic wire lengths straight from the padding rule
 *      (worst-case path = network diameter);
 *   2. measured mean pad fraction from uniform-traffic simulations
 *      (actual paths are shorter than the diameter).
 *
 * Expected shape: overhead shrinks as messages grow and rises with
 * network size and buffer depth; FCR pays roughly one full network
 * depth more than CR; the overhead is independent of the VC count.
 */

#include "bench/bench_common.hh"
#include "src/nic/padding.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    SimConfig base = baseConfig();
    base.injectionRate = 0.1;
    base.applyArgs(argc, argv);

    Table a("Analytic pad fraction at the network diameter "
            "(pads+tail)/wire");
    a.setHeader({"msg_len", "k8_d2_CR", "k8_d2_FCR", "k16_d2_CR",
                 "k16_d2_FCR", "k8_d8_CR", "k8_d8_FCR"});
    for (std::uint32_t len : {4u, 8u, 16u, 32u, 64u, 128u}) {
        auto frac = [&](ProtocolKind p, std::uint32_t k,
                        std::uint32_t depth) {
            const std::uint32_t hops = 2 * (k / 2);  // 2D diameter.
            const std::uint32_t wire = wireLength(p, len, hops, depth,
                                                  base.padSlack);
            return Table::cell(
                static_cast<double>(wire - len) / wire, 3);
        };
        a.addRow({Table::cell(std::uint64_t{len}),
                  frac(ProtocolKind::Cr, 8, 2),
                  frac(ProtocolKind::Fcr, 8, 2),
                  frac(ProtocolKind::Cr, 16, 2),
                  frac(ProtocolKind::Fcr, 16, 2),
                  frac(ProtocolKind::Cr, 8, 8),
                  frac(ProtocolKind::Fcr, 8, 8)});
    }
    emit(a);

    Table m("Measured mean pad fraction, uniform traffic at load 0.1");
    m.setHeader({"msg_len", "CR_1vc", "CR_4vc", "FCR_1vc"});
    for (std::uint32_t len : {8u, 16u, 32u, 64u}) {
        auto measured = [&](ProtocolKind p, std::uint32_t vcs) {
            SimConfig cfg = base;
            cfg.messageLength = len;
            cfg.protocol = p;
            cfg.numVcs = vcs;
            cfg.timeout = std::max<Cycle>(4, len / vcs);
            return Table::cell(runExperiment(cfg).padOverhead, 3);
        };
        m.addRow({Table::cell(std::uint64_t{len}),
                  measured(ProtocolKind::Cr, 1),
                  measured(ProtocolKind::Cr, 4),
                  measured(ProtocolKind::Fcr, 1)});
    }
    emit(m);
    std::printf("expected shape: overhead falls with message length, "
                "rises with network size\nand buffer depth, is equal "
                "at 1 and 4 VCs, and FCR > CR throughout.\n");
    return 0;
}
