/**
 * @file
 * Shared scaffolding for the per-figure/table benchmark harnesses.
 *
 * Every bench binary accepts `key=value` overrides (see
 * SimConfig::set) so the paper-scale network (k=16) can be requested
 * explicitly: the default k=8 keeps the full suite fast while
 * preserving every qualitative result.
 */

#ifndef CRNET_BENCH_BENCH_COMMON_HH
#define CRNET_BENCH_BENCH_COMMON_HH

#include <cstdio>
#include <iostream>
#include <vector>

#include "src/core/experiment.hh"
#include "src/sim/config.hh"
#include "src/sim/table.hh"

namespace crnet::bench {

/** The evaluation baseline network: 8-ary 2-cube torus, 16-flit msgs. */
inline SimConfig
baseConfig()
{
    SimConfig cfg;
    cfg.topology = TopologyKind::Torus;
    cfg.radixK = 8;
    cfg.dimensionsN = 2;
    cfg.numVcs = 2;
    cfg.bufferDepth = 2;
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = ProtocolKind::Cr;
    cfg.messageLength = 16;
    cfg.timeout = 8;  // message length / VCs, the paper's setting.
    cfg.warmupCycles = 1000;
    cfg.measureCycles = 5000;
    cfg.drainCycles = 60000;
    cfg.seed = 20260706;
    return cfg;
}

/** Offered loads swept by the latency/throughput figures. */
inline std::vector<double>
defaultLoads()
{
    return {0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45,
            0.50};
}

/** Format a latency for a cell ("-" once the point failed to drain). */
inline std::string
latencyCell(const RunResult& r)
{
    if (r.deadlocked)
        return "deadlock";
    if (!r.drained)
        return ">" + Table::cell(r.avgLatency, 0) + "*";
    return Table::cell(r.avgLatency, 1);
}

/** Print and also emit CSV below the table for post-processing. */
inline void
emit(const Table& table)
{
    table.print(std::cout);
    std::cout << "\ncsv:\n";
    table.printCsv(std::cout);
    std::cout << "\n";
}

} // namespace crnet::bench

#endif // CRNET_BENCH_BENCH_COMMON_HH
