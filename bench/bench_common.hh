/**
 * @file
 * Shared scaffolding for the per-figure/table benchmark harnesses.
 *
 * Every bench binary accepts `key=value` overrides (see
 * SimConfig::set) so the paper-scale network (k=16) can be requested
 * explicitly: the default k=8 keeps the full suite fast while
 * preserving every qualitative result.
 */

#ifndef CRNET_BENCH_BENCH_COMMON_HH
#define CRNET_BENCH_BENCH_COMMON_HH

#include <sys/resource.h>

#include <chrono>
#include <cstdio>
#include <iostream>
#include <vector>

#include "src/core/experiment.hh"
#include "src/core/timeseries.hh"
#include "src/fault/campaign.hh"
#include "src/sim/config.hh"
#include "src/sim/parallel.hh"
#include "src/sim/table.hh"

namespace crnet::bench {

/** The evaluation baseline network: 8-ary 2-cube torus, 16-flit msgs. */
inline SimConfig
baseConfig()
{
    SimConfig cfg;
    cfg.topology = TopologyKind::Torus;
    cfg.radixK = 8;
    cfg.dimensionsN = 2;
    cfg.numVcs = 2;
    cfg.bufferDepth = 2;
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = ProtocolKind::Cr;
    cfg.messageLength = 16;
    cfg.timeout = 8;  // message length / VCs, the paper's setting.
    cfg.warmupCycles = 1000;
    cfg.measureCycles = 5000;
    cfg.drainCycles = 60000;
    cfg.seed = 20260706;
    // Benches self-profile by default (`profile:` footer). Off the
    // results path: stats/traces are byte-identical either way, and
    // CI byte-diff steps strip the footer like `timing:`.
    cfg.profileEnabled = true;
    return cfg;
}

/** Offered loads swept by the latency/throughput figures. */
inline std::vector<double>
defaultLoads()
{
    return {0.05, 0.10, 0.15, 0.20, 0.25, 0.30, 0.35, 0.40, 0.45,
            0.50};
}

/** Format a latency for a cell ("-" once the point failed to drain). */
inline std::string
latencyCell(const RunResult& r)
{
    if (r.deadlocked)
        return "deadlock";
    if (!r.drained)
        return ">" + Table::cell(r.avgLatency, 0) + "*";
    return Table::cell(r.avgLatency, 1);
}

/** Print and also emit CSV below the table for post-processing. */
inline void
emit(const Table& table)
{
    table.print(std::cout);
    std::cout << "\ncsv:\n";
    table.printCsv(std::cout);
    std::cout << "\n";
}

/**
 * Emit a run's time-series below the table, framed by a `timeseries:`
 * marker that tools/extract_csv.py collects like `csv:` blocks.
 */
inline void
emitTimeSeries(const RunResult& r)
{
    if (r.timeseries.empty())
        return;
    std::cout << "timeseries:\n";
    writeTimeSeriesCsv(std::cout, r.timeseries);
    std::cout << "\n";
}

/** Same for the channel heatmap (`heatmap:` marker). */
inline void
emitHeatmap(const RunResult& r)
{
    if (r.heatmap == nullptr)
        return;
    std::cout << "heatmap:\n";
    writeHeatmapCsv(std::cout, *r.heatmap);
    std::cout << "\n";
}

/**
 * Cumulative engine-work totals behind the bench timing footer.
 * Every experiment a bench runs should flow through sweep()/runOne()
 * or be record()ed, so the footer reflects the whole process.
 */
struct SuiteTotals
{
    std::size_t runs = 0;          //!< Simulations executed.
    double wallSeconds = 0.0;      //!< Engine wall-clock (batch spans).
    std::uint64_t flitEvents = 0;  //!< Total data-flit events.
    unsigned jobs = 1;             //!< Worker threads last used.
    unsigned shards = 1;           //!< Intra-run shards last used.
    ProfileData profile;           //!< Merged self-profiles.
};

inline SuiteTotals&
suiteTotals()
{
    static SuiteTotals totals;
    return totals;
}

/** Fold a finished batch into the process totals. */
inline void
record(std::size_t runs, double wall_seconds,
       std::uint64_t flit_events)
{
    SuiteTotals& t = suiteTotals();
    t.runs += runs;
    t.wallSeconds += wall_seconds;
    t.flitEvents += flit_events;
}

inline void
record(const ReplicatedResult& r)
{
    record(r.replications, r.wallSeconds, r.flitEvents);
    suiteTotals().profile.merge(r.profile);
}

inline void
record(const SaturationResult& r)
{
    record(r.probes, r.wallSeconds, r.flitEvents);
    suiteTotals().profile.merge(r.profile);
}

inline void
record(const CampaignSummary& s)
{
    record(s.trials, s.wallSeconds, s.flitEvents);
    suiteTotals().profile.merge(s.profile);
}

/**
 * Run a batch of independent configuration points through the
 * parallel engine (`jobs=` override / CRNET_JOBS; sequential by
 * default), timing the batch for the footer. Results come back in
 * input order, bit-identical to a sequential run.
 */
inline std::vector<RunResult>
sweep(const std::vector<SimConfig>& points)
{
    const auto start = std::chrono::steady_clock::now();
    std::vector<RunResult> out = runMany(points);
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start)
                            .count();
    std::uint64_t flit_events = 0;
    for (const RunResult& r : out) {
        flit_events += r.flitEvents;
        suiteTotals().profile.merge(r.profile);
    }
    suiteTotals().jobs =
        resolveJobs(points.empty() ? 0 : points.front().jobs);
    suiteTotals().shards =
        resolveShards(points.empty() ? 0 : points.front().shards);
    record(points.size(), wall, flit_events);
    return out;
}

/** Run one point through sweep() so it counts toward the footer. */
inline RunResult
runOne(const SimConfig& cfg)
{
    return sweep({cfg}).front();
}

/**
 * Machine-parseable wall-clock footer (one line, no commas — the
 * `csv:` block scanner stops at it). tools/bench_report.py collects
 * these into BENCH_pr3.json to track the perf trajectory.
 */
/** Process peak resident set in kB (getrusage; 0 when unavailable). */
inline long
peakRssKb()
{
    struct rusage ru = {};
    if (getrusage(RUSAGE_SELF, &ru) != 0)
        return 0;
    return ru.ru_maxrss;  // Linux reports kilobytes.
}

inline void
timingFooter()
{
    const SuiteTotals& t = suiteTotals();
    const double wall = t.wallSeconds > 0.0 ? t.wallSeconds : 1e-9;
    std::printf("timing: runs=%zu wall_s=%.3f sims_per_s=%.2f "
                "flit_events=%llu flit_events_per_s=%.3e jobs=%u "
                "shards=%u cores=%u peak_rss_kb=%ld\n",
                t.runs, t.wallSeconds,
                static_cast<double>(t.runs) / wall,
                static_cast<unsigned long long>(t.flitEvents),
                static_cast<double>(t.flitEvents) / wall, t.jobs,
                t.shards, hardwareJobs(), peakRssKb());
    // Self-profiler footer (same one-line no-comma contract as
    // `timing:`). Always printed — CI asserts its presence — with
    // enabled=0 and zeros when the bench ran with profile=0.
    const ProfileData& p = t.profile;
    std::printf(
        "profile: enabled=%d runs=%zu warmup_s=%.3f measure_s=%.3f "
        "drain_s=%.3f ticks=%llu sampled=%llu stride=%u "
        "tick_deliver_s=%.3f tick_generate_s=%.3f "
        "tick_injectors_s=%.3f tick_routers_s=%.3f "
        "tick_receivers_s=%.3f tick_audit_s=%.3f tick_sample_s=%.3f "
        "tick_quiet_s=%.3f quiet_spans=%llu quiet_cycles=%llu\n",
        p.enabled ? 1 : 0, t.runs, p.warmupSeconds, p.measureSeconds,
        p.drainSeconds, static_cast<unsigned long long>(p.ticks),
        static_cast<unsigned long long>(p.sampledTicks), p.stride,
        p.tickSeconds(TickPhase::Deliver),
        p.tickSeconds(TickPhase::Generate),
        p.tickSeconds(TickPhase::Injectors),
        p.tickSeconds(TickPhase::Routers),
        p.tickSeconds(TickPhase::Receivers),
        p.tickSeconds(TickPhase::Audit),
        p.tickSeconds(TickPhase::Sample),
        p.tickSeconds(TickPhase::Quiet),
        static_cast<unsigned long long>(p.quietSpans),
        static_cast<unsigned long long>(p.quietCycles));
}

} // namespace crnet::bench

#endif // CRNET_BENCH_BENCH_COMMON_HH
