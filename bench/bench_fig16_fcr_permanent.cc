/**
 * @file
 * FCR with permanent link faults: performance and delivery as dead
 * links accumulate.
 *
 * Expected shape: latency rises gently with the number of dead links
 * (paths lengthen, retries around blocked minimal routes appear) and
 * every message is still delivered uncorrupted — FCR's permanent
 * fault tolerance via adaptive retry + bounded misrouting.
 */

#include "bench/bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    SimConfig base = baseConfig();
    base.protocol = ProtocolKind::Fcr;
    base.injectionRate = 0.10;
    base.timeout = 32;
    base.misrouteAfterRetries = 2;
    base.misrouteBudget = 4;
    base.applyArgs(argc, argv);

    const std::vector<std::uint32_t> fault_counts = {0, 1, 2, 4, 8,
                                                     12};

    Table t("FCR with permanent link faults (load 0.10)");
    t.setHeader({"dead_links", "avg_lat", "p99_lat", "attempts",
                 "kills", "misroute_hops", "delivered", "failed",
                 "corrupt"});

    std::vector<SimConfig> points;
    points.reserve(fault_counts.size());
    for (auto faults : fault_counts) {
        SimConfig cfg = base;
        cfg.permanentLinkFaults = faults;
        points.push_back(cfg);
    }
    const std::vector<RunResult> results = sweep(points);

    for (std::size_t fi = 0; fi < fault_counts.size(); ++fi) {
        const RunResult& r = results[fi];
        t.addRow({Table::cell(std::uint64_t{fault_counts[fi]}),
                  latencyCell(r),
                  Table::cell(r.p99Latency, 0),
                  Table::cell(r.avgAttempts, 3),
                  Table::cell(r.totalKills),
                  Table::cell(r.misrouteHops),
                  Table::cell(r.deliveredMeasured),
                  Table::cell(r.measuredMessages - r.deliveredMeasured),
                  Table::cell(r.corruptedDeliveries)});
    }
    emit(t);
    std::printf("expected shape: graceful latency growth, zero "
                "failures, zero corruption;\nmisrouting appears once "
                "faults block whole minimal-path sets.\n");
    timingFooter();
    return 0;
}
