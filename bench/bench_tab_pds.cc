/**
 * @file
 * PDS estimate — how often do potential deadlock situations actually
 * arise? (The paper's recovery-vs-prevention argument.)
 *
 * Following the paper's methodology: deadlocks cannot be counted
 * directly (one deadlock ends the simulation), so we run Duato's
 * deadlock-free algorithm — adaptive VCs plus dimension-order escape
 * VCs — and count how often messages must fall back to the escape
 * channels. Each escape entry is a conservative proxy for one
 * potential deadlock situation. CR's own kill counter is shown next
 * to it: both measure "how often would recovery actually be
 * exercised".
 *
 * Expected shape: PDS are rare at low/medium load and only become
 * common near saturation — so paying for prevention (virtual
 * channels) on every cycle is wasteful when recovery (CR kills) is
 * cheap and rare.
 */

#include "bench/bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    SimConfig base = baseConfig();
    base.applyArgs(argc, argv);

    Table t("PDS estimate: Duato escape-channel usage vs CR kills");
    t.setHeader({"load", "duato_escapes", "escapes/msg", "cr_kills",
                 "kills/msg", "duato_lat", "cr_lat"});

    const auto loads = defaultLoads();
    std::vector<SimConfig> points;
    points.reserve(2 * loads.size());
    for (double load : loads) {
        SimConfig duato = base;
        duato.injectionRate = load;
        duato.routing = RoutingKind::Duato;
        duato.protocol = ProtocolKind::None;
        duato.numVcs = 3;  // 2 escape (dateline) + 1 adaptive.
        points.push_back(duato);

        SimConfig cr = base;
        cr.injectionRate = load;
        points.push_back(cr);
    }
    const std::vector<RunResult> results = sweep(points);

    for (std::size_t li = 0; li < loads.size(); ++li) {
        const double load = loads[li];
        const RunResult& rd = results[2 * li];
        const RunResult& rc = results[2 * li + 1];

        const double dmsgs =
            rd.deliveredMeasured ? static_cast<double>(
                                       rd.deliveredMeasured)
                                 : 1.0;
        const double cmsgs =
            rc.deliveredMeasured ? static_cast<double>(
                                       rc.deliveredMeasured)
                                 : 1.0;
        t.addRow({Table::cell(load, 2),
                  Table::cell(rd.escapeAllocations),
                  Table::cell(static_cast<double>(
                                  rd.escapeAllocations) / dmsgs, 3),
                  Table::cell(rc.totalKills),
                  Table::cell(static_cast<double>(rc.totalKills) /
                                  cmsgs, 3),
                  latencyCell(rd), latencyCell(rc)});
    }
    emit(t);
    std::printf("expected shape: escapes/msg and kills/msg both stay "
                "near zero until the\nnetwork approaches saturation, "
                "then climb steeply.\n");
    timingFooter();
    return 0;
}
