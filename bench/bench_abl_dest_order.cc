/**
 * @file
 * Ablation — what does order preservation cost? CR preserves
 * per-(src,dst) order by never starting a message while an earlier
 * message to the same destination is unfinished. Disabling the gate
 * lets worms to one destination race (and lets killed messages be
 * overtaken), which the receivers then observe as pairSeq violations.
 *
 * Expected shape: without the gate, throughput/latency changes are
 * small at uniform traffic (same-destination conflicts are rare), but
 * order violations become nonzero — the guarantee is cheap, which is
 * the paper's point in claiming it.
 */

#include "bench/bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    SimConfig base = baseConfig();
    base.numVcs = 4;   // Several worms in flight per node.
    base.timeout = 16; // Above the VC service period (see E4 note).
    base.applyArgs(argc, argv);

    Table t("Ablation: per-destination order gate (CR, 4 VCs)");
    t.setHeader({"load", "gated_lat", "gated_viol", "free_lat",
                 "free_viol", "free_thr_gain%"});
    const std::vector<double> loads = {0.15, 0.30, 0.45};
    std::vector<SimConfig> points;
    points.reserve(2 * loads.size());
    for (double load : loads) {
        SimConfig gated = base;
        gated.injectionRate = load;
        gated.enforceDestOrder = true;
        points.push_back(gated);

        SimConfig free_cfg = base;
        free_cfg.injectionRate = load;
        free_cfg.enforceDestOrder = false;
        points.push_back(free_cfg);
    }
    const std::vector<RunResult> results = sweep(points);

    for (std::size_t li = 0; li < loads.size(); ++li) {
        const double load = loads[li];
        const RunResult& rg = results[2 * li];
        const RunResult& rf = results[2 * li + 1];

        const double gain = rg.acceptedThroughput > 0
            ? 100.0 * (rf.acceptedThroughput - rg.acceptedThroughput) /
                  rg.acceptedThroughput
            : 0.0;
        t.addRow({Table::cell(load, 2), latencyCell(rg),
                  Table::cell(rg.orderViolations), latencyCell(rf),
                  Table::cell(rf.orderViolations),
                  Table::cell(gain, 1)});
    }
    emit(t);
    std::printf("expected shape: gated runs report zero violations; "
                "ungated runs report\nsome, for little or no "
                "throughput gain.\n");
    timingFooter();
    return 0;
}
