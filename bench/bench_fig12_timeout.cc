/**
 * @file
 * Timeout sensitivity — average latency and kill rate vs. the
 * source-timeout value (the knob Sec. 7's timeout-scheme discussion
 * turns).
 *
 * Expected shape: very small timeouts misclassify ordinary congestion
 * as potential deadlock and kill aggressively (latency inflated by
 * retransmissions); very large timeouts leave true PDS undetected for
 * long stretches (latency inflated by blocking). A broad sweet spot
 * sits near the message service time.
 */

#include "bench/bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    SimConfig base = baseConfig();
    base.applyArgs(argc, argv);

    const std::vector<Cycle> timeouts = {4, 8, 16, 32, 64, 128, 256};
    const std::vector<double> loads = {0.20, 0.35, 0.45};

    Table t("Timeout sensitivity: avg latency (kills/msg) by source "
            "timeout");
    std::vector<std::string> header = {"timeout"};
    for (double load : loads)
        header.push_back("load_" + Table::cell(load, 2));
    t.setHeader(header);

    // All (timeout, load) cells as one parallel batch, row-major.
    std::vector<SimConfig> points;
    points.reserve(timeouts.size() * loads.size());
    for (Cycle to : timeouts) {
        for (double load : loads) {
            SimConfig cfg = base;
            cfg.timeout = to;
            cfg.injectionRate = load;
            points.push_back(cfg);
        }
    }
    const std::vector<RunResult> results = sweep(points);

    for (std::size_t ti = 0; ti < timeouts.size(); ++ti) {
        std::vector<std::string> row = {
            Table::cell(std::uint64_t{timeouts[ti]})};
        for (std::size_t li = 0; li < loads.size(); ++li) {
            const RunResult& r = results[ti * loads.size() + li];
            row.push_back(latencyCell(r) + " (" +
                          Table::cell(r.killsPerMessage, 2) + ")");
        }
        t.addRow(row);
    }
    emit(t);
    timingFooter();
    return 0;
}
