/**
 * @file
 * Fig. 14(c,d) — CR vs DOR over a range of virtual channels at a
 * fixed total buffer budget.
 *
 * Paper setup: DOR gets a fixed amount of total buffer space per
 * physical channel, so more VCs mean shallower FIFOs (virtual lanes
 * on top of the 2 dateline classes); CR uses 2-flit buffers per VC
 * throughout (deeper buffers only add padding). Expected shape: VCs
 * help DOR more than FIFO depth did (Dally's virtual-channel result),
 * but CR stays ahead; CR's padding overhead is independent of the VC
 * count.
 */

#include "bench/bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    SimConfig base = baseConfig();
    base.applyArgs(argc, argv);

    const std::uint32_t dor_budget = 16;  // Flits per physical channel.
    const std::vector<std::uint32_t> vc_counts = {2, 4, 8};
    const auto loads = defaultLoads();

    for (std::uint32_t msg_len : {16u, 32u}) {
        Table t("Fig. 14(" + std::string(msg_len == 16 ? "c" : "d") +
                "): avg latency vs load, " + std::to_string(msg_len) +
                "-flit messages, DOR budget " +
                std::to_string(dor_budget) + " flits/channel");
        std::vector<std::string> header = {"load"};
        for (auto v : vc_counts) {
            header.push_back("CR_" + std::to_string(v) + "vc");
            header.push_back("DOR_" + std::to_string(v) + "vc_d" +
                             std::to_string(dor_budget / v));
        }
        header.push_back("CR2_pad");
        header.push_back("CR8_pad");
        t.setHeader(header);

        // Row-major batch: per load, (CR, DOR) for each VC count.
        const std::size_t cols = 2 * vc_counts.size();
        std::vector<SimConfig> points;
        points.reserve(loads.size() * cols);
        for (double load : loads) {
            for (auto vcs : vc_counts) {
                SimConfig cr = base;
                cr.injectionRate = load;
                cr.messageLength = msg_len;
                cr.numVcs = vcs;
                cr.bufferDepth = 2;
                // The paper sets timeout = len/VCs for its I_min-style
                // detector (which divides progress by the sharing
                // factor). Our stall counter measures full-buffer
                // time directly, whose no-block baseline is the VC
                // service period (~VCs cycles), so a flat timeout of
                // one message length keeps false kills rare at every
                // VC count. See EXPERIMENTS.md E4.
                cr.timeout = msg_len;
                points.push_back(cr);

                SimConfig dor = base;
                dor.injectionRate = load;
                dor.messageLength = msg_len;
                dor.routing = RoutingKind::DimensionOrder;
                dor.protocol = ProtocolKind::None;
                dor.numVcs = vcs;
                dor.bufferDepth = dor_budget / vcs;
                points.push_back(dor);
            }
        }
        const std::vector<RunResult> results = sweep(points);

        for (std::size_t li = 0; li < loads.size(); ++li) {
            std::vector<std::string> row = {
                Table::cell(loads[li], 2)};
            double pad2 = 0.0, pad8 = 0.0;
            for (std::size_t vi = 0; vi < vc_counts.size(); ++vi) {
                const RunResult& rcr =
                    results[li * cols + 2 * vi];
                row.push_back(latencyCell(rcr));
                if (vc_counts[vi] == 2)
                    pad2 = rcr.padOverhead;
                if (vc_counts[vi] == 8)
                    pad8 = rcr.padOverhead;
                row.push_back(
                    latencyCell(results[li * cols + 2 * vi + 1]));
            }
            row.push_back(Table::cell(pad2, 3));
            row.push_back(Table::cell(pad8, 3));
            t.addRow(row);
        }
        emit(t);
    }
    std::printf("expected shape: DOR gains more from VCs than from "
                "deep FIFOs but trails CR;\nCR pad overhead is the "
                "same at 2 and 8 VCs (depth-determined).\n");
    timingFooter();
    return 0;
}
