/**
 * @file
 * Deep networks (the paper's "Network Depth" discussion, Sec. 7):
 * when physical channels are long (multi-cycle wires), the network
 * holds more flits, so CR must pad more — the one regime the paper
 * flags as unfavorable for CR. DOR, by contrast, only pays the extra
 * pipeline latency.
 *
 * Expected shape: at channel latency 1 CR wins the usual way; as the
 * wires deepen, CR's pad fraction climbs and its advantage narrows —
 * quantifying the paper's own caveat. (Both schemes need buffer depth
 * ~2L+1 to cover the credit round trip; we scale depth with latency
 * for both so the comparison isolates the padding effect.)
 */

#include "bench/bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    SimConfig base = baseConfig();
    base.timeout = 64;
    base.applyArgs(argc, argv);

    Table t("Deep networks: CR vs DOR as channel latency grows "
            "(16-flit messages)");
    t.setHeader({"chan_lat", "depth", "CR_lat@0.15", "DOR_lat@0.15",
                 "CR_lat@0.30", "DOR_lat@0.30", "CR_pad"});

    for (std::uint32_t lat : {1u, 2u, 4u, 8u}) {
        const std::uint32_t depth = 2 * lat + 1;
        std::vector<std::string> row = {
            Table::cell(std::uint64_t{lat}),
            Table::cell(std::uint64_t{depth})};
        double pad = 0.0;
        for (double load : {0.15, 0.30}) {
            SimConfig cr = base;
            cr.channelLatency = lat;
            cr.bufferDepth = depth;
            cr.injectionRate = load;
            const RunResult rc = runExperiment(cr);
            row.push_back(latencyCell(rc));
            pad = rc.padOverhead;

            SimConfig dor = base;
            dor.channelLatency = lat;
            dor.bufferDepth = depth;
            dor.injectionRate = load;
            dor.routing = RoutingKind::DimensionOrder;
            dor.protocol = ProtocolKind::None;
            row.push_back(latencyCell(runExperiment(dor)));
        }
        row.push_back(Table::cell(pad, 3));
        t.addRow(row);
    }
    emit(t);
    std::printf("expected shape: CR's pad fraction climbs with wire "
                "depth and its margin\nover DOR narrows — the paper's "
                "own 'deep networks' caveat, quantified.\n");
    return 0;
}
