/**
 * @file
 * Deep networks (the paper's "Network Depth" discussion, Sec. 7):
 * when physical channels are long (multi-cycle wires), the network
 * holds more flits, so CR must pad more — the one regime the paper
 * flags as unfavorable for CR. DOR, by contrast, only pays the extra
 * pipeline latency.
 *
 * Expected shape: at channel latency 1 CR wins the usual way; as the
 * wires deepen, CR's pad fraction climbs and its advantage narrows —
 * quantifying the paper's own caveat. (Both schemes need buffer depth
 * ~2L+1 to cover the credit round trip; we scale depth with latency
 * for both so the comparison isolates the padding effect.)
 */

#include "bench/bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    SimConfig base = baseConfig();
    base.timeout = 64;
    base.applyArgs(argc, argv);

    Table t("Deep networks: CR vs DOR as channel latency grows "
            "(16-flit messages)");
    t.setHeader({"chan_lat", "depth", "CR_lat@0.15", "DOR_lat@0.15",
                 "CR_lat@0.30", "DOR_lat@0.30", "CR_pad"});

    const std::vector<std::uint32_t> lats = {1, 2, 4, 8};
    const std::vector<double> loads = {0.15, 0.30};
    std::vector<SimConfig> points;
    points.reserve(lats.size() * loads.size() * 2);
    for (std::uint32_t lat : lats) {
        const std::uint32_t depth = 2 * lat + 1;
        for (double load : loads) {
            SimConfig cr = base;
            cr.channelLatency = lat;
            cr.bufferDepth = depth;
            cr.injectionRate = load;
            points.push_back(cr);

            SimConfig dor = cr;
            dor.routing = RoutingKind::DimensionOrder;
            dor.protocol = ProtocolKind::None;
            points.push_back(dor);
        }
    }
    const std::vector<RunResult> results = sweep(points);

    const std::size_t cols = 2 * loads.size();  // (CR, DOR) per load.
    for (std::size_t ti = 0; ti < lats.size(); ++ti) {
        std::vector<std::string> row = {
            Table::cell(std::uint64_t{lats[ti]}),
            Table::cell(std::uint64_t{2 * lats[ti] + 1})};
        double pad = 0.0;
        for (std::size_t li = 0; li < loads.size(); ++li) {
            const RunResult& rc = results[ti * cols + 2 * li];
            const RunResult& rd = results[ti * cols + 2 * li + 1];
            row.push_back(latencyCell(rc));
            row.push_back(latencyCell(rd));
            pad = rc.padOverhead;
        }
        row.push_back(Table::cell(pad, 3));
        t.addRow(row);
    }
    emit(t);
    std::printf("expected shape: CR's pad fraction climbs with wire "
                "depth and its margin\nover DOR narrows — the paper's "
                "own 'deep networks' caveat, quantified.\n");
    timingFooter();
    return 0;
}
