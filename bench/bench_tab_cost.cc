/**
 * @file
 * Implementation-complexity table (paper Sec. 5): router cycle time
 * and area for CR and the alternatives, from the structural cost
 * model after Chien's router cost model.
 *
 * Expected shape: the CR router (1 VC, adaptive, kill support) cycles
 * as fast as — or faster than — the 2-VC dateline DOR router, and
 * clearly faster than VC-rich adaptive designs (Duato 3VC/8VC); CR's
 * extra logic lands in area (router control + NIC), not on the
 * data-path cycle time.
 */

#include <cstdio>
#include <iostream>

#include "src/cost/router_cost.hh"
#include "src/sim/table.hh"

int
main()
{
    using namespace crnet;

    struct Design
    {
        const char* name;
        RouterCostParams p;
    };

    auto mk = [](RoutingKind r, std::uint32_t vcs, ProtocolKind prot,
                 std::uint32_t depth = 2) {
        RouterCostParams p;
        p.dims = 2;
        p.numVcs = vcs;
        p.bufferDepth = depth;
        p.flitBits = 16;
        p.routing = r;
        p.protocol = prot;
        return p;
    };

    const Design designs[] = {
        {"DOR mesh (1 VC)",
         mk(RoutingKind::DimensionOrder, 1, ProtocolKind::None)},
        {"DOR torus (2 VC dateline)",
         mk(RoutingKind::DimensionOrder, 2, ProtocolKind::None)},
        {"DOR torus (2 VC, 16-deep FIFO)",
         mk(RoutingKind::DimensionOrder, 2, ProtocolKind::None, 16)},
        {"CR adaptive (1 VC)",
         mk(RoutingKind::MinimalAdaptive, 1, ProtocolKind::Cr)},
        {"CR adaptive (2 VC)",
         mk(RoutingKind::MinimalAdaptive, 2, ProtocolKind::Cr)},
        {"FCR adaptive (1 VC)",
         mk(RoutingKind::MinimalAdaptive, 1, ProtocolKind::Fcr)},
        {"Duato adaptive (3 VC)",
         mk(RoutingKind::Duato, 3, ProtocolKind::None)},
        {"Duato adaptive (8 VC)",
         mk(RoutingKind::Duato, 8, ProtocolKind::None)},
        {"Turn-model west-first (1 VC)",
         mk(RoutingKind::WestFirst, 1, ProtocolKind::None)},
    };

    Table t("Router implementation complexity (structural model "
            "after Chien [7])");
    t.setHeader({"design", "route", "vc_alloc", "switch", "flow",
                 "cycle", "cycle_ns", "router_gates", "nic_gates"});
    for (const Design& d : designs) {
        const RouterCost c = estimateRouterCost(d.p);
        t.addRow({d.name, Table::cell(c.routingDelay, 1),
                  Table::cell(c.vcAllocDelay, 1),
                  Table::cell(c.switchDelay, 1),
                  Table::cell(c.flowControlDelay, 1),
                  Table::cell(c.cycleTime, 1),
                  Table::cell(c.cycleTimeNs, 2),
                  Table::cell(c.routerGates, 0),
                  Table::cell(c.nicGates, 0)});
    }
    t.print(std::cout);
    std::cout << "\ncsv:\n";
    t.printCsv(std::cout);
    std::printf("\nexpected shape: CR (1 VC) cycle <= DOR torus (2 VC) "
                "cycle < Duato 3VC < Duato 8VC;\nCR/FCR costs appear "
                "as area (router control, NIC), not cycle time.\n");
    return 0;
}
