/**
 * @file
 * Paper-scale spot check: the 16-ary 2-cube (256 nodes) the paper
 * actually simulated. The default suite runs at k=8 for speed; this
 * bench re-verifies the headline shapes at the paper's own size —
 * the CR-vs-DOR crossover, CR's saturation advantage, and the
 * adversarial tornado pattern where deterministic routing cannot
 * balance the ring load but adaptive CR can.
 *
 * Expected shape: same as E3 at k=8 — DOR slightly ahead at trickle
 * loads, CR ahead from the crossover on, and a widened gap on
 * tornado.
 */

#include "bench/bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    SimConfig base = baseConfig();
    base.radixK = 16;       // The paper's network.
    base.messageLength = 32;  // Fig. 14(b)'s length: at 256 nodes,
                              // 16-flit messages are ~50% padding and
                              // saturate by load 0.2 (see E9).
    base.timeout = 64;        // Scales with the longer paths.
    base.measureCycles = 4000;
    base.drainCycles = 40000;
    base.applyArgs(argc, argv);

    const std::vector<double> loads = {0.05, 0.10, 0.15, 0.20};
    for (TrafficPattern pattern :
         {TrafficPattern::Uniform, TrafficPattern::Tornado}) {
        Table t("Paper scale (16-ary 2-cube): CR vs DOR, " +
                toString(pattern) + " traffic");
        t.setHeader({"load", "CR_lat", "DOR_lat", "CR_thr",
                     "DOR_thr", "CR_kills/msg"});
        std::vector<SimConfig> points;
        points.reserve(2 * loads.size());
        for (double load : loads) {
            SimConfig cr = base;
            cr.pattern = pattern;
            cr.injectionRate = load;
            points.push_back(cr);

            SimConfig dor = cr;
            dor.routing = RoutingKind::DimensionOrder;
            dor.protocol = ProtocolKind::None;
            points.push_back(dor);
        }
        const std::vector<RunResult> results = sweep(points);

        for (std::size_t li = 0; li < loads.size(); ++li) {
            const RunResult& rc = results[2 * li];
            const RunResult& rd = results[2 * li + 1];
            t.addRow({Table::cell(loads[li], 2), latencyCell(rc),
                      latencyCell(rd),
                      Table::cell(rc.acceptedThroughput, 3),
                      Table::cell(rd.acceptedThroughput, 3),
                      Table::cell(rc.killsPerMessage, 3)});
        }
        emit(t);
    }
    std::printf("expected shape: identical orderings to the k=8 "
                "suite, confirming the\ndownscaled default network "
                "preserves the paper's qualitative results.\n");
    timingFooter();
    return 0;
}
