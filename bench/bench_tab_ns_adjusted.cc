/**
 * @file
 * Cycle-time-adjusted comparison — the paper's actual argument,
 * assembled from both halves of this repo: the simulator gives
 * latency in router cycles, the cost model gives the cycle time each
 * router design can clock at. Multiplying them compares what the
 * designs deliver in *nanoseconds*.
 *
 * Expected shape (the paper's claim): CR beats DOR in wall-clock
 * terms everywhere past low load, because its router clocks slightly
 * faster AND it routes adaptively.
 *
 * Honest extension: against Duato's 3-VC adaptive router (which the
 * paper argued would lose on clock speed), our simulator shows Duato
 * holding a wide winning band even after paying ~40% on the clock —
 * CR's padding and kill/retry costs outweigh the VC-allocation delay
 * at these VC counts. That is, in miniature, why VC-based deadlock
 * *prevention* ultimately superseded kill-based *recovery*; see
 * EXPERIMENTS.md.
 */

#include "bench/bench_common.hh"
#include "src/cost/router_cost.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    SimConfig base = baseConfig();
    base.applyArgs(argc, argv);

    struct Design
    {
        const char* name;
        RoutingKind routing;
        ProtocolKind protocol;
        std::uint32_t vcs;
    };
    const Design designs[] = {
        {"CR_2vc", RoutingKind::MinimalAdaptive, ProtocolKind::Cr, 2},
        {"DOR_2vc", RoutingKind::DimensionOrder, ProtocolKind::None,
         2},
        {"Duato_3vc", RoutingKind::Duato, ProtocolKind::None, 3},
    };

    // Cycle time per design from the structural cost model.
    double ns_per_cycle[3];
    for (int i = 0; i < 3; ++i) {
        RouterCostParams p;
        p.dims = base.dimensionsN;
        p.numVcs = designs[i].vcs;
        p.bufferDepth = base.bufferDepth;
        p.routing = designs[i].routing;
        p.protocol = designs[i].protocol;
        ns_per_cycle[i] = estimateRouterCost(p).cycleTimeNs;
    }

    Table t("Cycle-time-adjusted latency (ns) — simulator cycles x "
            "cost-model clock");
    t.setHeader({"load", "CR_2vc(3.5ns)", "DOR_2vc(4.2ns)",
                 "Duato_3vc(4.9ns)", "best"});
    const auto loads = defaultLoads();
    std::vector<SimConfig> points;
    points.reserve(3 * loads.size());
    for (double load : loads) {
        for (int i = 0; i < 3; ++i) {
            SimConfig cfg = base;
            cfg.routing = designs[i].routing;
            cfg.protocol = designs[i].protocol;
            cfg.numVcs = designs[i].vcs;
            cfg.injectionRate = load;
            if (designs[i].protocol == ProtocolKind::Cr)
                cfg.timeout = 32;  // CR's best setting (see E2).
            points.push_back(cfg);
        }
    }
    const std::vector<RunResult> results = sweep(points);

    for (std::size_t li = 0; li < loads.size(); ++li) {
        std::vector<std::string> row = {Table::cell(loads[li], 2)};
        double best = 1e18;
        int best_i = -1;
        for (int i = 0; i < 3; ++i) {
            const RunResult& r = results[3 * li + i];
            if (!r.drained || r.deadlocked) {
                row.push_back("sat");
                continue;
            }
            const double ns = r.avgLatency * ns_per_cycle[i];
            row.push_back(Table::cell(ns, 0));
            if (ns < best) {
                best = ns;
                best_i = i;
            }
        }
        row.push_back(best_i < 0 ? "-" : designs[best_i].name);
        t.addRow(row);
    }
    emit(t);
    std::printf("expected shape: CR beats DOR in ns past low load "
                "(the paper's claim).\nHonest extension: Duato's 3-VC "
                "router survives its clock penalty here —\nthe "
                "history-shaped caveat EXPERIMENTS.md discusses.\n");
    timingFooter();
    return 0;
}
