/**
 * @file
 * google-benchmark microbenchmarks for the simulation engine itself:
 * how fast do the primitives and the whole-network tick run. These
 * guard the simulator's own performance (a slow engine quietly
 * shrinks every experiment).
 */

#include <benchmark/benchmark.h>

#include "src/core/network.hh"
#include "src/nic/injector.hh"
#include "src/sim/checksum.hh"
#include "src/sim/rng.hh"

namespace {

using namespace crnet;

void
BM_RngNext(benchmark::State& state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.next());
}
BENCHMARK(BM_RngNext);

void
BM_RngBelow(benchmark::State& state)
{
    Rng rng(1);
    for (auto _ : state)
        benchmark::DoNotOptimize(rng.below(13));
}
BENCHMARK(BM_RngBelow);

void
BM_Crc8(benchmark::State& state)
{
    std::uint64_t x = 0x0123456789abcdefULL;
    for (auto _ : state) {
        benchmark::DoNotOptimize(crc8(x));
        ++x;
    }
}
BENCHMARK(BM_Crc8);

void
BM_NetworkTickIdle(benchmark::State& state)
{
    SimConfig cfg;
    cfg.radixK = static_cast<std::uint32_t>(state.range(0));
    cfg.dimensionsN = 2;
    cfg.injectionRate = 0.0;
    Network net(cfg);
    net.setTrafficEnabled(false);
    for (auto _ : state)
        net.tick();
    state.SetItemsProcessed(state.iterations() *
                            cfg.numNodes());
}
BENCHMARK(BM_NetworkTickIdle)->Arg(4)->Arg(8)->Arg(16);

void
BM_NetworkTickLoaded(benchmark::State& state)
{
    SimConfig cfg;
    cfg.radixK = static_cast<std::uint32_t>(state.range(0));
    cfg.dimensionsN = 2;
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = ProtocolKind::Cr;
    cfg.injectionRate = 0.3;
    Network net(cfg);
    net.run(500);  // Warm the network up to steady state.
    for (auto _ : state)
        net.tick();
    state.SetItemsProcessed(state.iterations() * cfg.numNodes());
}
BENCHMARK(BM_NetworkTickLoaded)->Arg(8)->Arg(16);

void
BM_InjectorNextEventCycle(benchmark::State& state)
{
    // A deep backoff queue: the incremental notBefore minimum keeps
    // the reschedule probe O(1) however deep the queue gets (it used
    // to rescan every pending message).
    SimConfig cfg;
    const auto depth = static_cast<std::uint32_t>(state.range(0));
    cfg.maxPendingPerNode = depth;
    TorusTopology topo(8, 2);
    FaultModel faults(topo, 0.0, Rng(1));
    MinimalAdaptiveRouting algo(topo, faults, cfg.numVcs);
    NetworkStats stats;
    Injector inj(0, cfg, topo, algo, &stats, Rng(2));
    for (std::uint32_t i = 0; i < depth; ++i) {
        PendingMessage m;
        m.id = i + 1;
        m.src = 0;
        m.dst = static_cast<NodeId>(1 + i % 63);
        m.payloadLen = 8;
        m.notBefore = 1000 + i;
        inj.enqueue(m);
    }
    for (auto _ : state)
        benchmark::DoNotOptimize(inj.nextEventCycle(0));
}
BENCHMARK(BM_InjectorNextEventCycle)->Arg(1)->Arg(64)->Arg(4096);

void
BM_RouterTickBusy(benchmark::State& state)
{
    // One router under synthetic pressure: heads keep arriving.
    SimConfig cfg;
    cfg.radixK = 8;
    cfg.dimensionsN = 2;
    TorusTopology topo(8, 2);
    FaultModel faults(topo, 0.0, Rng(1));
    MinimalAdaptiveRouting algo(topo, faults, cfg.numVcs);
    RouterStats stats;
    Router router(9, cfg, algo, &stats, Rng(2));
    Cycle now = 0;
    MsgId msg = 0;
    for (auto _ : state) {
        if (router.vcIdle(0, 0)) {
            Flit h;
            h.type = FlitType::Head;
            h.msg = ++msg;
            h.dst = 12;
            router.acceptFlit(0, 0, h);
        }
        router.tick(now++);
        for (const SentFlit& f : router.sentFlits) {
            if (f.outPort < router.networkPorts())
                router.acceptCredit(f.outPort, f.vc);
        }
        // Terminate worms immediately: feed tails.
        if (!router.vcIdle(0, 0)) {
            Flit t;
            t.type = FlitType::Tail;
            t.msg = msg;
            t.seq = 1;
            t.dst = 12;
            router.acceptFlit(0, 0, t);
        }
    }
}
BENCHMARK(BM_RouterTickBusy);

} // namespace

BENCHMARK_MAIN();
