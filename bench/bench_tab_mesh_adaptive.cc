/**
 * @file
 * Mesh adaptive-routing panorama: every deadlock-free mesh scheme in
 * the repo vs CR, on the traffic patterns that reward adaptivity.
 *
 * Columns: DOR (deterministic baseline), west-first and
 * negative-first (turn model: partial adaptivity, no VCs),
 * planar-adaptive (the paper authors' earlier scheme: full plane
 * adaptivity, 3 VCs), and CR (full adaptivity, no VCs, recovery).
 *
 * Expected shape: adaptivity pays on transpose (DOR degrades first);
 * turn-model schemes are asymmetric (west-first is weak for
 * traffic that needs late west turns).
 *
 * Honest finding: on *meshes* CR is the weakest scheme at uniform
 * traffic — its padding scales with the mesh's long diameter paths
 * while turn-model routing gets deadlock-free adaptivity for zero
 * VCs and zero padding. CR's case is toroidal networks, where
 * every VC-free alternative disappears; this bench shows the
 * boundary of the paper's claims rather than contradicting them.
 */

#include "bench/bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    SimConfig base = baseConfig();
    base.topology = TopologyKind::Mesh;
    base.timeout = 16;
    base.applyArgs(argc, argv);

    struct Scheme
    {
        const char* name;
        RoutingKind routing;
        ProtocolKind protocol;
        std::uint32_t vcs;
    };
    const Scheme schemes[] = {
        {"DOR_1vc", RoutingKind::DimensionOrder, ProtocolKind::None,
         1},
        {"WestFirst_1vc", RoutingKind::WestFirst, ProtocolKind::None,
         1},
        {"NegFirst_1vc", RoutingKind::NegativeFirst,
         ProtocolKind::None, 1},
        {"PAR_3vc", RoutingKind::PlanarAdaptive, ProtocolKind::None,
         3},
        {"CR_1vc", RoutingKind::MinimalAdaptive, ProtocolKind::Cr, 1},
    };

    const std::size_t n_schemes = std::size(schemes);
    const std::vector<double> loads = {0.05, 0.10, 0.15,
                                       0.20, 0.25, 0.30};
    for (TrafficPattern pattern :
         {TrafficPattern::Uniform, TrafficPattern::Transpose}) {
        Table t("Mesh adaptive panorama: avg latency, " +
                toString(pattern) + " traffic");
        std::vector<std::string> header = {"load"};
        for (const Scheme& s : schemes)
            header.push_back(s.name);
        t.setHeader(header);

        std::vector<SimConfig> points;
        points.reserve(loads.size() * n_schemes);
        for (double load : loads) {
            for (const Scheme& s : schemes) {
                SimConfig cfg = base;
                cfg.pattern = pattern;
                cfg.injectionRate = load;
                cfg.routing = s.routing;
                cfg.protocol = s.protocol;
                cfg.numVcs = s.vcs;
                points.push_back(cfg);
            }
        }
        const std::vector<RunResult> results = sweep(points);

        for (std::size_t li = 0; li < loads.size(); ++li) {
            std::vector<std::string> row = {Table::cell(loads[li], 2)};
            for (std::size_t si = 0; si < n_schemes; ++si)
                row.push_back(
                    latencyCell(results[li * n_schemes + si]));
            t.addRow(row);
        }
        emit(t);
    }
    std::printf("reading: turn-model adaptivity wins on transpose; "
                "CR trails on meshes\n(padding over long mesh "
                "diameters) — CR's home turf is the torus, where\n"
                "no VC-free alternative exists. See EXPERIMENTS.md.\n");
    timingFooter();
    return 0;
}
