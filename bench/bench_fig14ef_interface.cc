/**
 * @file
 * Fig. 14(e,f) — network-interface bandwidth: single vs multiple
 * source/sink channels.
 *
 * Paper setup: CR vs DOR with one injection/ejection channel per node
 * (a-d used that), then with multiple channels (as in the Intel
 * iWarp). CR timeout = message length / VCs. Expected shape: CR's
 * peak throughput is interface-limited; with multiple source and sink
 * channels its advantage over DOR widens further.
 */

#include "bench/bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    SimConfig base = baseConfig();
    base.applyArgs(argc, argv);

    const std::vector<std::uint32_t> channels = {1, 2, 4};
    const std::vector<double> loads = {0.2, 0.4, 0.6, 0.8, 1.0};

    Table t("Fig. 14(e,f): accepted throughput (payload flits/node/"
            "cycle) vs offered load");
    std::vector<std::string> header = {"load"};
    for (auto ch : channels) {
        header.push_back("CR_" + std::to_string(ch) + "ch");
        header.push_back("DOR_" + std::to_string(ch) + "ch");
    }
    t.setHeader(header);

    // Row-major batch: per load, (CR, DOR) for each channel width.
    const std::size_t cols = 2 * channels.size();
    std::vector<SimConfig> points;
    points.reserve(loads.size() * cols);
    for (double load : loads) {
        for (auto ch : channels) {
            SimConfig cr = base;
            cr.injectionRate = load;
            cr.injectionChannels = ch;
            cr.ejectionChannels = ch;
            points.push_back(cr);

            SimConfig dor = base;
            dor.injectionRate = load;
            dor.injectionChannels = ch;
            dor.ejectionChannels = ch;
            dor.routing = RoutingKind::DimensionOrder;
            dor.protocol = ProtocolKind::None;
            dor.bufferDepth = 2;
            points.push_back(dor);
        }
    }
    const std::vector<RunResult> results = sweep(points);

    for (std::size_t li = 0; li < loads.size(); ++li) {
        std::vector<std::string> row = {Table::cell(loads[li], 2)};
        for (std::size_t ci = 0; ci < channels.size(); ++ci) {
            row.push_back(Table::cell(
                results[li * cols + 2 * ci].acceptedThroughput, 3));
            row.push_back(Table::cell(
                results[li * cols + 2 * ci + 1].acceptedThroughput,
                3));
        }
        t.addRow(row);
    }
    emit(t);

    // Companion latency table at a fixed sub-saturation load.
    Table lt("Fig. 14(e,f) companion: avg latency at load 0.4");
    lt.setHeader({"channels", "CR", "DOR"});
    std::vector<SimConfig> companion;
    for (auto ch : channels) {
        SimConfig cr = base;
        cr.injectionRate = 0.4;
        cr.injectionChannels = ch;
        cr.ejectionChannels = ch;
        companion.push_back(cr);
        SimConfig dor = cr;
        dor.routing = RoutingKind::DimensionOrder;
        dor.protocol = ProtocolKind::None;
        companion.push_back(dor);
    }
    const std::vector<RunResult> cres = sweep(companion);
    for (std::size_t ci = 0; ci < channels.size(); ++ci) {
        lt.addRow({Table::cell(std::uint64_t{channels[ci]}),
                   latencyCell(cres[2 * ci]),
                   latencyCell(cres[2 * ci + 1])});
    }
    emit(lt);
    std::printf("expected shape: CR peak throughput rises with "
                "interface channels and\nstays above DOR at every "
                "width.\n");
    timingFooter();
    return 0;
}
