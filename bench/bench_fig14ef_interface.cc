/**
 * @file
 * Fig. 14(e,f) — network-interface bandwidth: single vs multiple
 * source/sink channels.
 *
 * Paper setup: CR vs DOR with one injection/ejection channel per node
 * (a-d used that), then with multiple channels (as in the Intel
 * iWarp). CR timeout = message length / VCs. Expected shape: CR's
 * peak throughput is interface-limited; with multiple source and sink
 * channels its advantage over DOR widens further.
 */

#include "bench/bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    SimConfig base = baseConfig();
    base.applyArgs(argc, argv);

    const std::vector<std::uint32_t> channels = {1, 2, 4};
    const std::vector<double> loads = {0.2, 0.4, 0.6, 0.8, 1.0};

    Table t("Fig. 14(e,f): accepted throughput (payload flits/node/"
            "cycle) vs offered load");
    std::vector<std::string> header = {"load"};
    for (auto ch : channels) {
        header.push_back("CR_" + std::to_string(ch) + "ch");
        header.push_back("DOR_" + std::to_string(ch) + "ch");
    }
    t.setHeader(header);

    for (double load : loads) {
        std::vector<std::string> row = {Table::cell(load, 2)};
        for (auto ch : channels) {
            SimConfig cr = base;
            cr.injectionRate = load;
            cr.injectionChannels = ch;
            cr.ejectionChannels = ch;
            const RunResult rcr = runExperiment(cr);
            row.push_back(Table::cell(rcr.acceptedThroughput, 3));

            SimConfig dor = base;
            dor.injectionRate = load;
            dor.injectionChannels = ch;
            dor.ejectionChannels = ch;
            dor.routing = RoutingKind::DimensionOrder;
            dor.protocol = ProtocolKind::None;
            dor.bufferDepth = 2;
            const RunResult rd = runExperiment(dor);
            row.push_back(Table::cell(rd.acceptedThroughput, 3));
        }
        t.addRow(row);
    }
    emit(t);

    // Companion latency table at a fixed sub-saturation load.
    Table lt("Fig. 14(e,f) companion: avg latency at load 0.4");
    lt.setHeader({"channels", "CR", "DOR"});
    for (auto ch : channels) {
        SimConfig cr = base;
        cr.injectionRate = 0.4;
        cr.injectionChannels = ch;
        cr.ejectionChannels = ch;
        SimConfig dor = cr;
        dor.routing = RoutingKind::DimensionOrder;
        dor.protocol = ProtocolKind::None;
        lt.addRow({Table::cell(std::uint64_t{ch}),
                   latencyCell(runExperiment(cr)),
                   latencyCell(runExperiment(dor))});
    }
    emit(lt);
    std::printf("expected shape: CR peak throughput rises with "
                "interface channels and\nstays above DOR at every "
                "width.\n");
    return 0;
}
