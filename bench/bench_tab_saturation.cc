/**
 * @file
 * Saturation-throughput summary: the single number the paper's
 * conclusions lean on, per routing/protocol, across message lengths —
 * with replicated runs and indicative 95% intervals at a fixed
 * near-saturation load.
 *
 * Expected shape: CR's saturation load and its accepted throughput at
 * a deep operating point exceed DOR's at equal resources; Duato (the
 * VC-based adaptive baseline) lands between them but needs 3 VCs to
 * exist at all.
 */

#include "bench/bench_common.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;
    using namespace crnet::bench;

    SimConfig base = baseConfig();
    base.applyArgs(argc, argv);

    struct Row
    {
        const char* name;
        RoutingKind routing;
        ProtocolKind protocol;
        std::uint32_t vcs;
    };
    const Row rows[] = {
        {"CR  (adaptive, 2vc)", RoutingKind::MinimalAdaptive,
         ProtocolKind::Cr, 2},
        {"DOR (2vc dateline)", RoutingKind::DimensionOrder,
         ProtocolKind::None, 2},
        {"Duato (3vc)", RoutingKind::Duato, ProtocolKind::None, 3},
    };

    for (std::uint32_t msg_len : {16u, 32u}) {
        Table t("Saturation summary, " + std::to_string(msg_len) +
                "-flit messages (sat load via binary search; "
                "throughput at load 0.45, 5 seeds)");
        t.setHeader({"design", "sat_load", "thr@0.45", "thr_ci95",
                     "lat@0.45", "lat_ci95", "kills/msg"});
        for (const Row& row : rows) {
            SimConfig cfg = base;
            cfg.routing = row.routing;
            cfg.protocol = row.protocol;
            cfg.numVcs = row.vcs;
            cfg.messageLength = msg_len;
            cfg.timeout = msg_len;
            SimConfig fast = cfg;
            fast.measureCycles = 2500;
            fast.drainCycles = 20000;
            const SaturationResult sat =
                findSaturation(fast, 0.05, 0.95, 0.02, 1500.0);
            record(sat);
            // belowRange: even the lower probe failed health — the
            // design saturates before load 0.05.
            const std::string sat_cell = sat.belowRange
                ? "<" + Table::cell(sat.load, 2)
                : Table::cell(sat.load, 2);

            SimConfig deep = cfg;
            deep.injectionRate = 0.45;
            const ReplicatedResult rep = runReplicated(deep, 5);
            record(rep);
            t.addRow({row.name, sat_cell,
                      Table::cell(rep.meanThroughput, 3),
                      Table::cell(rep.throughputCi95, 3),
                      Table::cell(rep.meanLatency, 0),
                      Table::cell(rep.latencyCi95, 0),
                      Table::cell(rep.meanKillsPerMessage, 3)});
        }
        emit(t);
    }
    // Warm-start forking (docs/ROBUSTNESS.md): replicate the deep CR
    // operating point cold (every replication pays its own warmup)
    // and warm (one warmup, snapshot, fork + reseed), and report the
    // measured wall-clock win. The machine-parseable footer is picked
    // up by tools/extract_csv.py.
    {
        SimConfig deep = base;
        deep.routing = RoutingKind::MinimalAdaptive;
        deep.protocol = ProtocolKind::Cr;
        deep.numVcs = 2;
        deep.messageLength = 16;
        deep.timeout = 16;
        deep.injectionRate = 0.45;
        const ReplicatedResult cold = runReplicated(deep, 5);
        const ReplicatedResult warmed = runReplicatedWarm(deep, 5);
        record(cold);
        record(warmed);
        const double speedup = warmed.wallSeconds > 0.0
            ? cold.wallSeconds / warmed.wallSeconds
            : 0.0;
        std::printf("warm-start forking (5 reps, CR 16-flit @0.45): "
                    "cold %.3fs, warm %.3fs (%.2fx); warm latency "
                    "%.0f +- %.0f vs cold %.0f +- %.0f\n",
                    cold.wallSeconds, warmed.wallSeconds, speedup,
                    warmed.meanLatency, warmed.latencyCi95,
                    cold.meanLatency, cold.latencyCi95);
        std::printf("warmstart: cold_s=%.6f warm_s=%.6f speedup=%.4f "
                    "cold_lat=%.4f warm_lat=%.4f\n",
                    cold.wallSeconds, warmed.wallSeconds, speedup,
                    cold.meanLatency, warmed.meanLatency);
    }

    std::printf("expected shape: CR saturation load > Duato > DOR; "
                "intervals small enough\nthat the ordering is not "
                "noise.\n");
    suiteTotals().jobs = resolveJobs(base.jobs);
    timingFooter();
    return 0;
}
