#!/usr/bin/env python3
"""crnet-analyze: annotation-driven whole-program static analysis.

Enforces, on every path of the call graph rooted at the annotated
entry points (src/core/annotations.hh), the properties the runtime
suite only spot-checks:

  alloc          No heap allocation reachable from a CRNET_HOT_PATH
                 root: `new`, malloc-family calls, make_unique/
                 make_shared, or allocating std container methods.
  unordered-iter No iteration over std::unordered_map/unordered_set
                 reachable from a CRNET_RESULT_AFFECTING root —
                 hash order must never feed a reported result.
  wallclock      No wall-clock/time source (time(), gettimeofday(),
                 clock_gettime(), std::chrono::*_clock) anywhere in
                 src/ outside the bench timing shim
                 (src/sim/walltime.hh). Whole-tree rule.
  global-state   No mutable namespace-scope or function-local-static
                 state in src/ outside registered singletons.
                 Whole-tree rule.

CRNET_ALLOW(rule, reason) suppresses one rule inside the annotated
function (or variable) and stops propagation of that rule through it.
The reason string is mandatory; an empty reason is itself a violation
(rule `allow-missing-reason`).

Frontends (--frontend, default `auto`):

  clang     Invokes `clang++ -fsyntax-only -Xclang -ast-dump=json`
            per translation unit and reads annotations/calls out of
            the AST. Used when a clang binary is on PATH.
  internal  A self-contained C++ tokenizer + declaration scanner, no
            toolchain dependency. Recognizes the CRNET_* macros
            textually. This is the frontend CI gates on: it produces
            identical reports on any host.

auto picks clang when available, internal otherwise. Both frontends
share the call-graph, propagation and reporting core, so a report
line always reads `file:line: rule: detail [chain: root -> ... -> fn]`.

Exit status: 0 = clean, 1 = violations reported, 2 = usage/toolchain
error.
"""

from __future__ import annotations

import argparse
import json
import re
import shutil
import subprocess
import sys
from collections import deque
from dataclasses import dataclass, field
from pathlib import Path

# --------------------------------------------------------------------------
# Model
# --------------------------------------------------------------------------

RULES = ("alloc", "unordered-iter", "wallclock", "global-state")

# Annotation name -> rule it roots.
ROOT_RULE = {"hot_path": "alloc", "result_affecting": "unordered-iter"}

CPP_KEYWORDS = {
    "if", "for", "while", "switch", "return", "sizeof", "alignof",
    "catch", "throw", "new", "delete", "static_assert", "decltype",
    "noexcept", "alignas", "case", "default", "do", "else", "goto",
    "typedef", "using", "template", "typename", "operator", "co_await",
    "co_return", "co_yield", "requires", "concept", "explicit",
    "static_cast", "dynamic_cast", "const_cast", "reinterpret_cast",
    "defined", "public", "private", "protected", "assert",
}

UNORDERED_TYPES = {
    "unordered_map", "unordered_set",
    "unordered_multimap", "unordered_multiset",
}

# Free functions that allocate.
ALLOC_CALLS = {
    "malloc", "calloc", "realloc", "aligned_alloc", "strdup",
    "make_unique", "make_shared", "to_string",
}

# std container methods that can allocate. Only counted when the call
# does not resolve to a function defined in this repository.
ALLOC_METHODS = {
    "push_back", "emplace_back", "push_front", "emplace_front",
    "emplace", "insert", "resize", "reserve", "assign", "append",
    "push", "substr", "str",
}

# Wall-clock sources (rule `wallclock`).
WALLCLOCK_NAMES = {
    "system_clock", "steady_clock", "high_resolution_clock",
    "gettimeofday", "clock_gettime", "timespec_get", "localtime",
    "gmtime", "mktime",
}
# `time(`/`clock(` only when std:: or :: qualified (bare names are too
# common as locals/members).
WALLCLOCK_QUALIFIED_ONLY = {"time", "clock"}


@dataclass
class Primitive:
    """A potential violation site inside one function."""
    rule: str
    file: str
    line: int
    detail: str


@dataclass
class CallSite:
    name: str                  # bare callee name
    recv: str | None = None    # receiver class, when statically known


@dataclass
class FunctionInfo:
    qname: str                 # Class::name or ns-qualified bare name
    cls: str | None
    name: str
    file: str
    line: int
    annotations: set = field(default_factory=set)
    allows: dict = field(default_factory=dict)   # rule -> reason
    calls: list = field(default_factory=list)    # [CallSite]
    primitives: list = field(default_factory=list)

    def merge(self, other: "FunctionInfo") -> None:
        """Fold a redefinition/declaration of the same function in."""
        self.annotations |= other.annotations
        for rule, reason in other.allows.items():
            self.allows.setdefault(rule, reason)
        self.calls.extend(other.calls)
        self.primitives.extend(other.primitives)


@dataclass
class GlobalVar:
    """Mutable namespace-scope state found outside any function."""
    name: str
    file: str
    line: int
    allows: dict = field(default_factory=dict)


@dataclass
class Program:
    functions: dict = field(default_factory=dict)  # qname -> FunctionInfo
    globals: list = field(default_factory=list)    # [GlobalVar]

    def add_function(self, fn: FunctionInfo) -> None:
        if fn.qname in self.functions:
            self.functions[fn.qname].merge(fn)
        else:
            self.functions[fn.qname] = fn


# --------------------------------------------------------------------------
# Tokenizer (internal frontend)
# --------------------------------------------------------------------------

@dataclass
class Tok:
    kind: str   # id | str | num | punct
    text: str
    line: int


TOKEN_RE = re.compile(
    r"""(?P<ws>\s+)
      | (?P<comment>//[^\n]*|/\*.*?\*/)
      | (?P<str>"(?:[^"\\\n]|\\.)*"|'(?:[^'\\\n]|\\.)*')
      | (?P<num>\.?\d(?:[\w.]|[eEpP][+-])*)
      | (?P<id>[A-Za-z_]\w*)
      | (?P<punct>->|::|<<|>>|<=|>=|==|!=|&&|\|\||[-+*/%&|^!~<>=.,;:?(){}\[\]#\\])
    """,
    re.VERBOSE | re.DOTALL,
)


def strip_preprocessor(text: str) -> str:
    """Blank out preprocessor directives, preserving line numbers."""
    out = []
    i, n = 0, len(text)
    at_line_start = True
    while i < n:
        c = text[i]
        if at_line_start and c == "#":
            # Consume through backslash continuations.
            j = i
            while j < n:
                nl = text.find("\n", j)
                if nl < 0:
                    j = n
                    break
                k = nl - 1
                while k >= j and text[k] in " \t\r":
                    k -= 1
                if k >= j and text[k] == "\\":
                    j = nl + 1
                    continue
                j = nl
                break
            out.append("".join(ch if ch == "\n" else " "
                               for ch in text[i:j]))
            i = j
            at_line_start = True
            continue
        if c == "\n":
            at_line_start = True
        elif c not in " \t\r":
            at_line_start = False
        out.append(c)
        i += 1
    return "".join(out)


def tokenize(text: str) -> list:
    toks = []
    line = 1
    pos = 0
    for m in TOKEN_RE.finditer(text):
        if m.start() != pos:
            # Unrecognized byte; skip it (keeps the scanner total).
            line += text.count("\n", pos, m.start())
        pos = m.end()
        frag = m.group(0)
        if m.lastgroup == "ws" or m.lastgroup == "comment":
            line += frag.count("\n")
            continue
        toks.append(Tok(m.lastgroup, frag, line))
        line += frag.count("\n")
    return toks


def skip_angle(toks: list, i: int) -> int:
    """From toks[i] == '<', return index past the matching '>'."""
    depth = 0
    while i < len(toks):
        t = toks[i].text
        if t == "<":
            depth += 1
        elif t == ">":
            depth -= 1
            if depth == 0:
                return i + 1
        elif t == ">>":
            depth -= 2
            if depth <= 0:
                return i + 1
        elif t in (";", "{", "}"):
            return i  # Not a template argument list after all.
        i += 1
    return i


def match_forward(toks: list, i: int, opener: str, closer: str) -> int:
    """Return index past the token matching toks[i] == opener."""
    depth = 0
    while i < len(toks):
        t = toks[i].text
        if t == opener:
            depth += 1
        elif t == closer:
            depth -= 1
            if depth == 0:
                return i + 1
        i += 1
    return i


# --------------------------------------------------------------------------
# Internal frontend: declaration index (pass 1)
# --------------------------------------------------------------------------

class DeclIndex:
    """Cross-file name knowledge for the internal frontend."""

    def __init__(self) -> None:
        self.unordered_aliases: set = set()     # using X = unordered_*
        self.unordered_names: set = set()       # members/vars of such
        self.unordered_returning: set = set()   # fns returning them
        self.wallclock_aliases: set = set()     # using X = *_clock
        self.classes: set = set()
        self.member_types: dict = {}            # member name -> class

    def scan_aliases(self, toks: list) -> None:
        for i, t in enumerate(toks):
            if (t.text == "using" and i + 2 < len(toks)
                    and toks[i + 1].kind == "id"
                    and toks[i + 2].text == "="):
                j = i + 3
                while j < len(toks) and toks[j].text != ";":
                    if toks[j].text in UNORDERED_TYPES:
                        self.unordered_aliases.add(toks[i + 1].text)
                        break
                    if toks[j].text in WALLCLOCK_NAMES:
                        self.wallclock_aliases.add(toks[i + 1].text)
                        break
                    j += 1

    def scan(self, toks: list) -> None:
        unordered_like = UNORDERED_TYPES | self.unordered_aliases
        i = 0
        while i < len(toks):
            t = toks[i]
            if t.kind == "id" and t.text in ("class", "struct"):
                if i + 1 < len(toks) and toks[i + 1].kind == "id":
                    self.classes.add(toks[i + 1].text)
            if t.kind == "id" and t.text in unordered_like:
                j = i + 1
                if j < len(toks) and toks[j].text == "<":
                    j = skip_angle(toks, j)
                while j < len(toks) and toks[j].text in ("&", "*",
                                                         "const"):
                    j += 1
                if j < len(toks) and toks[j].kind == "id":
                    name = toks[j].text
                    nxt = toks[j + 1].text if j + 1 < len(toks) else ""
                    if nxt == "(":
                        self.unordered_returning.add(name)
                    elif nxt in (";", "=", "{"):
                        self.unordered_names.add(name)
                i = j
                continue
            i += 1

    def scan_members(self, toks: list) -> None:
        """Map member/var names to element classes (Foo x_; or
        vector<unique_ptr<Foo>> xs_;) for receiver resolution."""
        i = 0
        while i < len(toks) - 1:
            t = toks[i]
            if (t.kind == "id" and toks[i + 1].text in (";", "=", "{")
                    and i >= 1):
                # Walk the declaration backwards collecting candidate
                # class names until a statement boundary.
                j = i - 1
                cls = None
                steps = 0
                while j >= 0 and steps < 24:
                    tj = toks[j]
                    if tj.text in (";", "{", "}", "(", ")", "return"):
                        break
                    if tj.kind == "id" and tj.text in self.classes:
                        cls = tj.text
                        break
                    j -= 1
                    steps += 1
                if cls is not None:
                    self.member_types.setdefault(t.text, cls)
            i += 1


# --------------------------------------------------------------------------
# Internal frontend: function extraction (pass 2)
# --------------------------------------------------------------------------

ANNOTATION_MACROS = {
    "CRNET_HOT_PATH": "hot_path",
    "CRNET_RESULT_AFFECTING": "result_affecting",
}


def parse_string_args(toks: list, i: int) -> tuple:
    """Parse CRNET_ALLOW(...) args from toks[i] == '('. Returns
    ((rule, reason), index past ')'). Adjacent literals concatenate."""
    end = match_forward(toks, i, "(", ")")
    args, cur, have = [], "", False
    for t in toks[i + 1:end - 1]:
        if t.kind == "str":
            cur += t.text[1:-1]
            have = True
        elif t.text == ",":
            args.append(cur if have else None)
            cur, have = "", False
    args.append(cur if have else None)
    rule = args[0] if len(args) >= 1 else None
    reason = args[1] if len(args) >= 2 else None
    return (rule, reason), end


def gather_qname(toks: list, i: int) -> tuple:
    """Walk backwards from the name token at i, collecting a
    Qualified::name. Returns (qname, cls, bare, start_index)."""
    parts = [toks[i].text]
    j = i
    while j - 2 >= 0 and toks[j - 1].text == "::" \
            and toks[j - 2].kind == "id":
        parts.insert(0, toks[j - 2].text)
        j -= 2
    if j - 1 >= 0 and toks[j - 1].text == "~":
        parts[-1] = "~" + parts[-1] if len(parts) == 1 else parts[-1]
    cls = parts[-2] if len(parts) >= 2 else None
    return "::".join(parts), cls, parts[-1], j


def body_start(toks: list, close_paren: int) -> int | None:
    """Given the index just past a signature's ')', return the index
    of the body '{', or None when this is not a definition."""
    i = close_paren
    n = len(toks)
    while i < n:
        t = toks[i].text
        if t == "{":
            return i
        if t in ("const", "noexcept", "override", "final", "&", "&&",
                 "mutable"):
            i += 1
            continue
        if t == "->":  # trailing return type
            i += 1
            while i < n and toks[i].text not in ("{", ";"):
                if toks[i].text == "<":
                    i = skip_angle(toks, i)
                else:
                    i += 1
            continue
        if t == "(":   # noexcept(...) operand
            i = match_forward(toks, i, "(", ")")
            continue
        if t == ":":   # ctor member-init list
            i += 1
            while i < n:
                tt = toks[i].text
                if tt == "(":
                    i = match_forward(toks, i, "(", ")")
                elif tt == "<":
                    i = skip_angle(toks, i)
                elif tt == "{":
                    prev = toks[i - 1].text
                    if prev == ")" or prev == "}":
                        return i
                    if toks[i - 1].kind == "id" or prev == ">":
                        i = match_forward(toks, i, "{", "}")
                    else:
                        return i
                elif tt == ";":
                    return None
                elif tt == "," or toks[i].kind in ("id", "str", "num") \
                        or tt in ("::", ".", "&", "*", "-", "+"):
                    i += 1
                else:
                    return None
            return None
        return None if t != ";" else None
    return None


class InternalFrontend:
    """Tokenizer-based extraction, no toolchain required."""

    def __init__(self, root: Path, src_files: list) -> None:
        self.root = root
        self.files = src_files
        self.index = DeclIndex()
        self.program = Program()

    def run(self) -> Program:
        toks_by_file = {}
        for path in self.files:
            text = strip_preprocessor(
                path.read_text(encoding="utf-8", errors="replace"))
            toks_by_file[path] = tokenize(text)
        for toks in toks_by_file.values():
            self.index.scan_aliases(toks)
        for toks in toks_by_file.values():
            self.index.scan(toks)
            self.index.scan_members(toks)
        for path, toks in toks_by_file.items():
            self._scan_file(path, toks)
        return self.program

    # -- declaration walk ------------------------------------------------

    def _scan_file(self, path: Path, toks: list) -> None:
        rel = str(path.relative_to(self.root))
        n = len(toks)
        i = 0
        scopes = []   # ("ns"|"class", name, brace_depth_at_entry)
        depth = 0
        pending_annotations: set = set()
        pending_allows: dict = {}
        stmt_start = 0  # token index where the current statement began

        def clear_pending():
            pending_annotations.clear()
            pending_allows.clear()

        while i < n:
            t = toks[i]
            if t.kind == "id" and t.text in ANNOTATION_MACROS:
                pending_annotations.add(ANNOTATION_MACROS[t.text])
                i += 1
                continue
            if t.kind == "id" and t.text == "CRNET_ALLOW":
                if i + 1 < n and toks[i + 1].text == "(":
                    (rule, reason), i = parse_string_args(toks, i + 1)
                    pending_allows[rule or ""] = reason
                    continue
                i += 1
                continue
            if t.kind == "id" and t.text in ("namespace",):
                if i + 1 < n and toks[i + 1].kind == "id" \
                        and toks[i + 2].text == "{":
                    scopes.append(("ns", toks[i + 1].text, depth))
                    depth += 1
                    i += 3
                elif i + 1 < n and toks[i + 1].text == "{":
                    scopes.append(("ns", "", depth))
                    depth += 1
                    i += 2
                else:
                    i += 1
                stmt_start = i
                continue
            if t.kind == "id" and t.text in ("class", "struct") \
                    and i + 1 < n and toks[i + 1].kind == "id":
                name = toks[i + 1].text
                j = i + 2
                while j < n and toks[j].text not in ("{", ";"):
                    if toks[j].text == "<":
                        j = skip_angle(toks, j)
                    else:
                        j += 1
                if j < n and toks[j].text == "{":
                    scopes.append(("class", name, depth))
                    depth += 1
                    i = j + 1
                else:
                    i = j + 1
                stmt_start = i
                clear_pending()
                continue
            if t.text == "{":
                depth += 1
                i += 1
                stmt_start = i
                clear_pending()
                continue
            if t.text == "}":
                depth -= 1
                while scopes and scopes[-1][2] == depth:
                    scopes.pop()
                i += 1
                stmt_start = i
                clear_pending()
                continue
            if t.text == ";":
                self._maybe_global_var(rel, toks, stmt_start, i,
                                       scopes, pending_allows)
                i += 1
                stmt_start = i
                clear_pending()
                continue
            if t.text == "(" and i >= 1 and toks[i - 1].kind == "id" \
                    and toks[i - 1].text not in CPP_KEYWORDS:
                close = match_forward(toks, i, "(", ")")
                body = body_start(toks, close)
                qname, cls, bare, _ = gather_qname(toks, i - 1)
                if cls is None:
                    for kind, nm, _d in reversed(scopes):
                        if kind == "class":
                            cls = nm
                            qname = f"{cls}::{bare}"
                            break
                if body is not None:
                    fn = FunctionInfo(qname, cls, bare, rel,
                                      toks[i - 1].line)
                    fn.annotations |= pending_annotations
                    fn.allows.update(pending_allows)
                    clear_pending()
                    body_end = match_forward(toks, body, "{", "}")
                    self._scan_body(fn, toks, body, body_end)
                    self.program.add_function(fn)
                    i = body_end
                    stmt_start = i
                    continue
                # Declaration only: attach annotations by name.
                if pending_annotations or pending_allows:
                    fn = FunctionInfo(qname, cls, bare, rel,
                                      toks[i - 1].line)
                    fn.annotations |= pending_annotations
                    fn.allows.update(pending_allows)
                    clear_pending()
                    self.program.add_function(fn)
                i = close
                continue
            i += 1

    def _maybe_global_var(self, rel: str, toks: list, start: int,
                          end: int, scopes: list,
                          allows: dict) -> None:
        """Statement [start, end) at namespace scope ending in ';' —
        flag `static`/`thread_local` non-const data definitions."""
        if any(kind == "class" for kind, _n, _d in scopes):
            return
        stmt = toks[start:end]
        words = {t.text for t in stmt}
        if not ({"static", "thread_local"} & words):
            return
        if {"const", "constexpr", "constinit", "consteval"} & words:
            return
        if "(" in {t.text for t in stmt}:
            return  # Function declaration/definition artifact.
        name, line = None, toks[start].line if stmt else 0
        for j in range(len(stmt) - 1, -1, -1):
            if stmt[j].kind == "id" and stmt[j].text not in (
                    "static", "thread_local"):
                name, line = stmt[j].text, stmt[j].line
                break
            if stmt[j].text in ("=", "{"):
                continue
        if name is None:
            return
        self.program.globals.append(
            GlobalVar(name, rel, line, dict(allows)))

    # -- body walk -------------------------------------------------------

    def _scan_body(self, fn: FunctionInfo, toks: list, body: int,
                   body_end: int) -> None:
        idx = self.index
        unordered_like = idx.unordered_names
        i = body + 1
        while i < body_end:
            t = toks[i]
            if t.kind != "id" and t.text not in ("::",):
                if t.text == "::" :
                    pass
                i += 1
                continue
            txt = t.text

            # Nested CRNET_ALLOW inside a body applies to the whole
            # enclosing function (scoped suppression).
            if txt == "CRNET_ALLOW" and i + 1 < body_end \
                    and toks[i + 1].text == "(":
                (rule, reason), i = parse_string_args(toks, i + 1)
                fn.allows.setdefault(rule or "", reason)
                continue

            # `new` expression.
            if txt == "new":
                fn.primitives.append(Primitive(
                    "alloc", fn.file, t.line, "operator new"))
                i += 1
                continue

            # Function-local static state.
            if txt in ("static", "thread_local"):
                j = i + 1
                const_like = False
                while j < body_end and toks[j].text not in (";", "=",
                                                            "{", "("):
                    if toks[j].text in ("const", "constexpr",
                                        "constinit"):
                        const_like = True
                    j += 1
                if not const_like and j < body_end \
                        and toks[j].text != "(":
                    fn.primitives.append(Primitive(
                        "global-state", fn.file, t.line,
                        f"function-local {txt} state"))
                i += 1
                continue

            # Wall-clock sources.
            if txt in WALLCLOCK_NAMES or txt in idx.wallclock_aliases:
                fn.primitives.append(Primitive(
                    "wallclock", fn.file, t.line, f"{txt}"))
                i += 1
                continue
            if txt in WALLCLOCK_QUALIFIED_ONLY and i >= 1 \
                    and toks[i - 1].text == "::" \
                    and i + 1 < body_end and toks[i + 1].text == "(":
                fn.primitives.append(Primitive(
                    "wallclock", fn.file, t.line, f"{txt}()"))
                i += 1
                continue

            # Range-for over an unordered container.
            if txt == "for" and i + 1 < body_end \
                    and toks[i + 1].text == "(":
                close = match_forward(toks, i + 1, "(", ")")
                colon = None
                depth = 0
                for j in range(i + 2, close - 1):
                    tj = toks[j].text
                    if tj in ("(", "[", "{"):
                        depth += 1
                    elif tj in (")", "]", "}"):
                        depth -= 1
                    elif tj == ":" and depth == 0 \
                            and toks[j - 1].text != ":" \
                            and (j + 1 >= close
                                 or toks[j + 1].text != ":"):
                        colon = j
                        break
                if colon is not None:
                    range_toks = toks[colon + 1:close - 1]
                    hit = self._unordered_expr(range_toks)
                    if hit is not None:
                        fn.primitives.append(Primitive(
                            "unordered-iter", fn.file, t.line,
                            f"range-for over unordered "
                            f"container '{hit}'"))
                i = colon + 1 if colon is not None else close
                continue

            # Member or free call.
            if i + 1 < body_end and toks[i + 1].text == "(":
                recv_name = None
                accessor = toks[i - 1].text if i >= 1 else ""
                if accessor in (".", "->") and i >= 2 \
                        and toks[i - 2].kind == "id":
                    recv_name = toks[i - 2].text
                elif accessor == "::" and i >= 2 \
                        and toks[i - 2].kind == "id":
                    recv_name = toks[i - 2].text

                # begin/cbegin start an iteration; bare end()/cend()
                # calls are overwhelmingly `it != x.end()` guards after
                # a point lookup (find), which is order-independent.
                if txt in ("begin", "cbegin") \
                        and recv_name in unordered_like:
                    fn.primitives.append(Primitive(
                        "unordered-iter", fn.file, t.line,
                        f"iterator over unordered container "
                        f"'{recv_name}'"))
                    i += 1
                    continue
                if txt in CPP_KEYWORDS:
                    i += 1
                    continue
                if txt in ALLOC_CALLS:
                    fn.primitives.append(Primitive(
                        "alloc", fn.file, t.line, f"{txt}()"))
                    i += 1
                    continue
                recv_cls = None
                if recv_name is not None:
                    if recv_name in idx.classes:
                        recv_cls = recv_name
                    else:
                        recv_cls = idx.member_types.get(recv_name)
                fn.calls.append(CallSite(txt, recv_cls))
                if accessor in (".", "->") and txt in ALLOC_METHODS \
                        and recv_cls is None:
                    fn.primitives.append(Primitive(
                        "alloc", fn.file, t.line,
                        f".{txt}() container growth"))
                i += 1
                continue
            i += 1

    def _unordered_expr(self, toks: list) -> str | None:
        idx = self.index
        for j, t in enumerate(toks):
            if t.kind != "id":
                continue
            if t.text in idx.unordered_names:
                return t.text
            if t.text in idx.unordered_returning \
                    and j + 1 < len(toks) and toks[j + 1].text == "(":
                return t.text + "()"
        return None


# --------------------------------------------------------------------------
# Clang frontend
# --------------------------------------------------------------------------

ANNOT_SRC_RE = re.compile(
    r"CRNET_(HOT_PATH|RESULT_AFFECTING)|CRNET_ALLOW\s*\(")


class ClangFrontend:
    """Extraction via `clang++ -Xclang -ast-dump=json` per TU.

    Reads the crnet::* annotate attributes straight out of the AST.
    Attribute payloads absent from the JSON (older clang) are
    recovered by re-reading the CRNET_* macro invocation at the
    attribute's expansion location in the source file.
    """

    def __init__(self, root: Path, src_files: list,
                 clangxx: str) -> None:
        self.root = root
        self.clangxx = clangxx
        self.tus = [p for p in src_files if p.suffix == ".cc"]
        if not self.tus:  # Header-only tree (fixtures).
            self.tus = list(src_files)
        self.program = Program()
        self.src_cache: dict = {}

    def run(self) -> Program:
        for tu in self.tus:
            ast = self._dump(tu)
            if ast is not None:
                self._walk_tu(ast)
        return self.program

    def _dump(self, tu: Path):
        cmd = [self.clangxx, "-x", "c++", "-std=c++20",
               "-fsyntax-only", "-I", str(self.root),
               "-Xclang", "-ast-dump=json", str(tu)]
        try:
            proc = subprocess.run(cmd, capture_output=True, text=True,
                                  timeout=600)
        except (OSError, subprocess.TimeoutExpired) as exc:
            print(f"crnet_analyze: clang failed on {tu}: {exc}",
                  file=sys.stderr)
            return None
        if not proc.stdout:
            print(f"crnet_analyze: no AST for {tu}:\n{proc.stderr}",
                  file=sys.stderr)
            return None
        try:
            return json.loads(proc.stdout)
        except json.JSONDecodeError as exc:
            print(f"crnet_analyze: bad AST JSON for {tu}: {exc}",
                  file=sys.stderr)
            return None

    # -- helpers ---------------------------------------------------------

    def _source_at(self, path: str, offset: int) -> str:
        text = self.src_cache.get(path)
        if text is None:
            try:
                text = Path(path).read_text(encoding="utf-8",
                                            errors="replace")
            except OSError:
                text = ""
            self.src_cache[path] = text
        return text[offset:offset + 400]

    @staticmethod
    def _loc(node: dict) -> tuple:
        loc = node.get("loc", {})
        spelling = loc.get("spellingLoc", loc)
        exp = loc.get("expansionLoc", loc)
        return (exp.get("file") or spelling.get("file"),
                exp.get("line") or spelling.get("line") or 0,
                exp.get("offset"))

    def _annotation_of(self, attr: dict, cur_file: str) -> tuple:
        """Decode an AnnotateAttr into ('hot_path'|... , None) or
        ('allow', (rule, reason))."""
        # Newer clang embeds the annotation text.
        value = attr.get("annotation") or attr.get("value")
        if value is None:
            rng = attr.get("range", {}).get("begin", {})
            exp = rng.get("expansionLoc", rng)
            off = exp.get("offset")
            path = exp.get("file") or cur_file
            if off is not None and path:
                frag = self._source_at(path, off)
                m = ANNOT_SRC_RE.search(frag)
                if m is None:
                    return (None, None)
                if m.group(1) == "HOT_PATH":
                    return ("hot_path", None)
                if m.group(1) == "RESULT_AFFECTING":
                    return ("result_affecting", None)
                strs = re.findall(r'"((?:[^"\\]|\\.)*)"',
                                  frag[m.start():])
                if not strs:
                    return ("allow", ("", None))
                rule = strs[0]
                reason = "".join(strs[1:]) if len(strs) > 1 else None
                return ("allow", (rule, reason))
            return (None, None)
        if value.startswith("crnet::allow:"):
            rest = value[len("crnet::allow:"):]
            rule, _, reason = rest.partition(":")
            return ("allow", (rule, reason or None))
        if value == "crnet::hot_path":
            return ("hot_path", None)
        if value == "crnet::result_affecting":
            return ("result_affecting", None)
        return (None, None)

    # -- AST walk --------------------------------------------------------

    FN_KINDS = {"FunctionDecl", "CXXMethodDecl", "CXXConstructorDecl",
                "CXXDestructorDecl", "CXXConversionDecl"}

    def _walk_tu(self, ast: dict) -> None:
        self._walk_decls(ast.get("inner", []), [], None)

    def _walk_decls(self, nodes: list, ctx: list,
                    cur_file_holder) -> None:
        cur_file = cur_file_holder
        for node in nodes:
            kind = node.get("kind")
            f, _l, _o = self._loc(node)
            if f:
                cur_file = f
            if kind == "NamespaceDecl":
                self._walk_decls(node.get("inner", []),
                                 ctx + [node.get("name", "")],
                                 cur_file)
            elif kind in ("CXXRecordDecl", "ClassTemplateDecl"):
                name = node.get("name", "")
                self._walk_decls(node.get("inner", []),
                                 ctx + [name] if name else ctx,
                                 cur_file)
            elif kind == "FunctionTemplateDecl":
                self._walk_decls(node.get("inner", []), ctx, cur_file)
            elif kind in self.FN_KINDS:
                self._take_function(node, ctx, cur_file)
            elif kind == "VarDecl":
                self._take_global(node, ctx, cur_file)
            elif kind == "LinkageSpecDecl":
                self._walk_decls(node.get("inner", []), ctx, cur_file)

    def _in_repo(self, path: str | None) -> bool:
        if not path:
            return False
        try:
            Path(path).resolve().relative_to(self.root.resolve())
            return True
        except ValueError:
            return False

    def _relname(self, path: str) -> str:
        try:
            return str(Path(path).resolve().relative_to(
                self.root.resolve()))
        except ValueError:
            return path

    def _take_global(self, node: dict, ctx: list,
                     cur_file: str) -> None:
        f, line, _ = self._loc(node)
        path = f or cur_file
        if not self._in_repo(path):
            return
        qt = node.get("type", {}).get("qualType", "")
        if "const" in qt.split() or node.get("constexpr"):
            return
        if node.get("storageClass") == "extern":
            return
        allows = {}
        for sub in node.get("inner", []):
            if sub.get("kind") == "AnnotateAttr":
                akind, payload = self._annotation_of(sub, path)
                if akind == "allow" and payload is not None:
                    allows[payload[0]] = payload[1]
        self.program.globals.append(GlobalVar(
            node.get("name", "?"), self._relname(path), line, allows))

    def _take_function(self, node: dict, ctx: list,
                       cur_file: str) -> None:
        f, line, _ = self._loc(node)
        path = f or cur_file
        if not self._in_repo(path):
            return
        name = node.get("name", "")
        if not name:
            return
        cls = ctx[-1] if ctx and ctx[-1] and ctx[-1] != "crnet" \
            else None
        qname = f"{cls}::{name}" if cls else name
        fn = FunctionInfo(qname, cls, name, self._relname(path), line)
        body = None
        for sub in node.get("inner", []):
            skind = sub.get("kind")
            if skind == "AnnotateAttr":
                akind, payload = self._annotation_of(sub, path)
                if akind == "allow" and payload is not None:
                    fn.allows[payload[0]] = payload[1]
                elif akind is not None:
                    fn.annotations.add(akind)
            elif skind == "CompoundStmt":
                body = sub
        if body is not None:
            self._walk_stmt(body, fn)
        if body is not None or fn.annotations or fn.allows:
            self.program.add_function(fn)

    def _walk_stmt(self, node: dict, fn: FunctionInfo) -> None:
        kind = node.get("kind")
        _f, line, _ = self._loc(node)
        qt = node.get("type", {}).get("qualType", "")

        if kind == "CXXNewExpr":
            fn.primitives.append(Primitive(
                "alloc", fn.file, line or fn.line, "operator new"))
        elif kind == "CXXForRangeStmt":
            for sub in node.get("inner", []):
                sqt = sub.get("type", {}).get("qualType", "")
                if "unordered_" in sqt:
                    fn.primitives.append(Primitive(
                        "unordered-iter", fn.file, line or fn.line,
                        "range-for over unordered container"))
                    break
        elif kind in ("CallExpr", "CXXMemberCallExpr",
                      "CXXOperatorCallExpr"):
            callee, recv_qt = self._callee_of(node)
            if callee:
                if callee in ALLOC_CALLS or (
                        callee in ALLOC_METHODS
                        and ("std::" in recv_qt
                             or "basic_string" in recv_qt)):
                    fn.primitives.append(Primitive(
                        "alloc", fn.file, line or fn.line,
                        f"{callee}()"))
                elif callee in WALLCLOCK_NAMES | {"time", "clock"} \
                        and "crnet" not in recv_qt:
                    pass  # flagged via DeclRefExpr below
                # begin/cbegin only: bare end()/cend() is almost
                # always an `it != x.end()` guard after find().
                if callee in ("begin", "cbegin") \
                        and "unordered_" in recv_qt:
                    fn.primitives.append(Primitive(
                        "unordered-iter", fn.file, line or fn.line,
                        "iterator over unordered container"))
                if callee not in ALLOC_METHODS | ALLOC_CALLS:
                    recv_cls = None
                    m = re.search(r"(?:crnet::)?(\w+)\s*$",
                                  recv_qt.split("<")[0]) \
                        if recv_qt else None
                    if m:
                        recv_cls = m.group(1)
                    fn.calls.append(CallSite(callee, recv_cls))
        elif kind == "DeclRefExpr":
            ref = node.get("referencedDecl", {})
            rname = ref.get("name", "")
            if rname in WALLCLOCK_NAMES or (
                    rname in WALLCLOCK_QUALIFIED_ONLY
                    and ref.get("kind") == "FunctionDecl"):
                fn.primitives.append(Primitive(
                    "wallclock", fn.file, line or fn.line, rname))
            if "unordered_" in qt and rname:
                pass
        elif kind == "DeclStmt":
            for sub in node.get("inner", []):
                if sub.get("kind") == "VarDecl" and \
                        sub.get("storageClass") == "static":
                    sqt = sub.get("type", {}).get("qualType", "")
                    if "const" not in sqt.split():
                        _sf, sline, _so = self._loc(sub)
                        fn.primitives.append(Primitive(
                            "global-state", fn.file,
                            sline or fn.line,
                            "function-local static state"))
        for sub in node.get("inner", []):
            if isinstance(sub, dict):
                self._walk_stmt(sub, fn)

    @staticmethod
    def _callee_of(node: dict) -> tuple:
        """Best-effort (callee name, receiver qualType)."""
        inner = node.get("inner", [])
        if not inner:
            return ("", "")
        recv_qt = ""
        if node.get("kind") == "CXXMemberCallExpr":
            me = inner[0]
            while me and me.get("kind") not in ("MemberExpr",):
                sub = me.get("inner", [])
                me = sub[0] if sub else None
            if me:
                base = me.get("inner", [])
                if base:
                    recv_qt = base[0].get("type", {}) \
                                     .get("qualType", "")
                name = me.get("name", "")
                return (name, recv_qt)
        stack = [inner[0]]
        while stack:
            cur = stack.pop()
            if cur.get("kind") == "DeclRefExpr":
                return (cur.get("referencedDecl", {}).get("name", ""),
                        recv_qt)
            if cur.get("kind") == "MemberExpr":
                return (cur.get("name", ""), recv_qt)
            stack.extend(cur.get("inner", []))
        return ("", "")


# --------------------------------------------------------------------------
# Propagation + reporting core (shared by both frontends)
# --------------------------------------------------------------------------

@dataclass
class Violation:
    file: str
    line: int
    rule: str
    detail: str
    chain: list

    def render(self) -> str:
        s = f"{self.file}:{self.line}: {self.rule}: {self.detail}"
        if self.chain:
            s += " [chain: " + " -> ".join(self.chain) + "]"
        return s


def build_call_index(program: Program) -> dict:
    by_name: dict = {}
    for fn in program.functions.values():
        by_name.setdefault(fn.name, []).append(fn.qname)
    return by_name


def edge_targets(program: Program, by_name: dict,
                 call: CallSite) -> list:
    if call.recv is not None:
        q = f"{call.recv}::{call.name}"
        if q in program.functions:
            return [q]
    return by_name.get(call.name, [])


def propagate(program: Program, rule: str,
              annotation: str) -> list:
    by_name = build_call_index(program)
    roots = [fn.qname for fn in program.functions.values()
             if annotation in fn.annotations]
    parent: dict = {}
    queue = deque()
    for r in roots:
        parent[r] = None
        queue.append(r)
    violations = []
    seen_sites: set = set()
    while queue:
        q = queue.popleft()
        fn = program.functions[q]
        if rule in fn.allows:
            continue  # Suppressed: do not report, do not descend.
        for prim in fn.primitives:
            if prim.rule != rule:
                continue
            site = (prim.file, prim.line, prim.rule)
            if site in seen_sites:
                continue
            seen_sites.add(site)
            chain = []
            cur = q
            while cur is not None:
                chain.append(cur)
                cur = parent[cur]
            violations.append(Violation(
                prim.file, prim.line, rule, prim.detail,
                list(reversed(chain))))
        for call in fn.calls:
            for tgt in edge_targets(program, by_name, call):
                if tgt not in parent:
                    parent[tgt] = q
                    queue.append(tgt)
    return violations


def whole_tree(program: Program, rule: str) -> list:
    violations = []
    for fn in program.functions.values():
        if rule in fn.allows:
            continue
        for prim in fn.primitives:
            if prim.rule == rule:
                violations.append(Violation(
                    prim.file, prim.line, rule, prim.detail,
                    [fn.qname]))
    return violations


def global_state_violations(program: Program) -> list:
    violations = whole_tree(program, "global-state")
    for var in program.globals:
        if "global-state" in var.allows:
            continue
        violations.append(Violation(
            var.file, var.line, "global-state",
            f"mutable namespace-scope state '{var.name}'", []))
    return violations


def allow_reason_violations(program: Program) -> list:
    violations = []
    for fn in program.functions.values():
        for rule, reason in fn.allows.items():
            if not rule or rule not in RULES:
                violations.append(Violation(
                    fn.file, fn.line, "allow-missing-reason",
                    f"CRNET_ALLOW with unknown rule "
                    f"'{rule or '<empty>'}' on {fn.qname}", []))
            elif not (reason or "").strip():
                violations.append(Violation(
                    fn.file, fn.line, "allow-missing-reason",
                    f"CRNET_ALLOW(\"{rule}\") on {fn.qname} has no "
                    f"reason string", []))
    for var in program.globals:
        for rule, reason in var.allows.items():
            if rule in RULES and not (reason or "").strip():
                violations.append(Violation(
                    var.file, var.line, "allow-missing-reason",
                    f"CRNET_ALLOW(\"{rule}\") on '{var.name}' has "
                    f"no reason string", []))
    return violations


def analyze(program: Program) -> list:
    violations = []
    violations += propagate(program, "alloc", "hot_path")
    violations += propagate(program, "unordered-iter",
                            "result_affecting")
    violations += whole_tree(program, "wallclock")
    violations += global_state_violations(program)
    violations += allow_reason_violations(program)
    violations.sort(key=lambda v: (v.file, v.line, v.rule, v.detail))
    return violations


# --------------------------------------------------------------------------
# Driver
# --------------------------------------------------------------------------

def collect_sources(root: Path) -> list:
    src = root / "src"
    if not src.is_dir():
        return []
    return sorted(p for p in src.rglob("*")
                  if p.suffix in (".cc", ".hh", ".cpp", ".hpp", ".h")
                  and p.is_file())


def main(argv: list) -> int:
    ap = argparse.ArgumentParser(
        prog="crnet_analyze.py",
        description="Annotation-driven static analysis over src/.")
    ap.add_argument("root", nargs="?", default=".",
                    help="repository root (contains src/)")
    ap.add_argument("--frontend", choices=("auto", "internal",
                                           "clang"),
                    default="auto")
    ap.add_argument("--report", metavar="FILE",
                    help="also write the report to FILE")
    args = ap.parse_args(argv[1:])

    root = Path(args.root).resolve()
    files = collect_sources(root)
    if not files:
        print(f"crnet_analyze: no C++ sources under {root}/src",
              file=sys.stderr)
        return 2

    frontend = args.frontend
    clangxx = shutil.which("clang++") or shutil.which("clang")
    if frontend == "auto":
        frontend = "clang" if clangxx else "internal"
    if frontend == "clang" and not clangxx:
        print("crnet_analyze: --frontend=clang but no clang++ on "
              "PATH", file=sys.stderr)
        return 2

    if frontend == "clang":
        program = ClangFrontend(root, files, clangxx).run()
    else:
        program = InternalFrontend(root, files).run()

    violations = analyze(program)
    lines = [v.render() for v in violations]
    summary = (f"crnet_analyze: frontend={frontend}, "
               f"{len(files)} files, "
               f"{len(program.functions)} functions, "
               f"{len(violations)} violation(s)")
    out = "\n".join(lines + [summary]) + "\n"
    sys.stdout.write(out)
    if args.report:
        Path(args.report).write_text(out, encoding="utf-8")
    return 1 if violations else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
