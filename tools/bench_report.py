#!/usr/bin/env python3
"""Measure the cycle engine and emit BENCH_pr10.json.

Every crnet bench ends with machine-parseable footers:

  timing: runs=N wall_s=S sims_per_s=R flit_events=E \
      flit_events_per_s=F jobs=J shards=K cores=C peak_rss_kb=M
  profile: enabled=1 runs=N warmup_s=... measure_s=... drain_s=... \
      tick_deliver_s=... tick_routers_s=... quiet_cycles=...

The `profile:` footer is the self-profiler's per-phase wall-time
attribution (docs/OBSERVABILITY.md); it is parsed into a `profile`
dict on every leg so phase-level trends ride along with the headline
throughput numbers. `peak_rss_kb` (v5) is the process peak resident
set, so memory scaling rides along too.

This script runs a selection of benches five ways per bench —

  sweep_jobs1    exhaustive per-node scheduler, sequential
  active_jobs1   active-set scheduler (the default), sequential
  event_jobs1    skip-ahead event scheduler, sequential
  active_jobsN   active-set scheduler under the parallel engine
  active_shards4 active-set scheduler, one run sharded 4 ways

— parses the footers, checks that every leg reports identical
flit_events (the schedulers are bit-identical and both the parallel
engine and intra-run sharding are deterministic, so any difference is
a correctness bug, not noise), and writes a JSON report recording
per-bench wall-clock, throughput, peak RSS, the scheduler speedups
(active vs sweep, event vs active), the parallel speedup and the
shard speedup, together with the host core count so the numbers are
interpretable.

Unless --quick is given, the report also runs bench_tab_giant_scale
once and records its scaling curve — flit-events/sec and resident
kB/node at shards 1/2/4 across network sizes up to a 64k-node torus —
under a top-level "giant_scale" key.

With --baseline the report's headline throughput (active_jobs1, the
default configuration) is compared against an earlier report —
v1 (BENCH_pr3.json), v2 (BENCH_pr5.json), v3 (BENCH_pr8.json),
v4 (BENCH_pr9.json) or v5 — and the script fails if any bench present
in both regressed by more than --max-regression. Phase-level
comparisons (per-phase seconds per flit event vs a v4+ baseline) are
advisory: they print warnings but never fail the run, and a baseline
from before the profiler existed simply skips them.

Usage:
  tools/bench_report.py [--build-dir build] [--jobs N]
                        [--out BENCH_pr10.json] [--quick]
                        [--baseline BENCH_pr9.json]
                        [--max-regression 0.15]

The default bench set covers a mid-load sweep, the dynamic-fault
campaign, and the zero-load-latency sweep (the active scheduler's
best case); --quick shrinks the simulated spans so the report
finishes in a couple of minutes on one core.
"""

import argparse
import json
import os
import re
import subprocess
import sys

SCHEMA = "crnet-bench-report-v5"

# (bench binary, extra args). The overrides shrink simulated spans so
# report generation stays cheap; all runs of one bench use identical
# configs, so every comparison is apples-to-apples.
DEFAULT_BENCHES = [
    ("bench_fig12_timeout", []),
    ("bench_campaign_dynamic", ["trials=32", "seed_base=1"]),
    ("bench_lowload_latency", []),
]
QUICK_ARGS = {
    "bench_fig12_timeout": ["measure=1000", "drain=10000"],
    "bench_campaign_dynamic": ["trials=16", "seed_base=1"],
    "bench_lowload_latency": ["measure=4000"],
}

FOOTER_RE = re.compile(r"^timing: (.+)$", re.M)
PROFILE_RE = re.compile(r"^profile: (.+)$", re.M)

# Self-profiler phases compared against a v4 baseline (seconds keys in
# the `profile:` footer). Advisory only — see the module docstring.
PROFILE_PHASES = [
    "warmup_s", "measure_s", "drain_s", "tick_deliver_s",
    "tick_generate_s", "tick_injectors_s", "tick_routers_s",
    "tick_receivers_s", "tick_audit_s", "tick_sample_s",
    "tick_quiet_s",
]


def parse_kv(line):
    """Parse one `key=value key=value ...` footer line into a dict."""
    fields = {}
    for token in line.split():
        key, _, value = token.partition("=")
        try:
            fields[key] = int(value)
        except ValueError:
            try:
                fields[key] = float(value)
            except ValueError:
                fields[key] = value
    return fields


def parse_footer(output):
    """Return the parsed key=value dict of the last timing footer."""
    matches = FOOTER_RE.findall(output)
    if not matches:
        return None
    return parse_kv(matches[-1])


def run_bench(path, args, sched, jobs, shards=1):
    """Run one bench configuration; return its parsed footer.

    The self-profiler footer, when present, is attached under the
    "profile" key (absent on binaries from before the profiler — the
    report degrades gracefully rather than failing).
    """
    cmd = [path] + args + [f"sched={sched}", f"jobs={jobs}",
                           f"shards={shards}"]
    print(f"  $ {' '.join(cmd)}", file=sys.stderr)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        print(proc.stdout[-2000:], file=sys.stderr)
        print(proc.stderr[-2000:], file=sys.stderr)
        raise SystemExit(f"{path} exited {proc.returncode}")
    footer = parse_footer(proc.stdout)
    if footer is None:
        raise SystemExit(f"{path}: no 'timing:' footer in output")
    profiles = PROFILE_RE.findall(proc.stdout)
    if profiles:
        footer["profile"] = parse_kv(profiles[-1])
    return footer


def parse_csv_block(output):
    """Parse the bench's `csv:` block into a list of row dicts."""
    lines = output.splitlines()
    try:
        start = lines.index("csv:") + 1
    except ValueError:
        return []
    header = None
    rows = []
    for line in lines[start:]:
        if not line.strip():
            break
        cells = [c.strip() for c in line.split(",")]
        if header is None:
            header = cells
            continue
        row = {}
        for key, value in zip(header, cells):
            try:
                row[key] = int(value)
            except ValueError:
                try:
                    row[key] = float(value)
                except ValueError:
                    row[key] = value
        rows.append(row)
    return rows


def run_giant(path):
    """Run bench_tab_giant_scale once; return footer + scaling curve.

    The curve holds one row per (network size, shard count) with
    flit-events/sec, speedup vs shards=1 at the same size, and
    resident kB/node — the memory and throughput scaling data behind
    docs/PERFORMANCE.md's sharding guidance.
    """
    print("bench_tab_giant_scale (scaling curve):", file=sys.stderr)
    print(f"  $ {path}", file=sys.stderr)
    proc = subprocess.run([path], capture_output=True, text=True)
    if proc.returncode != 0:
        print(proc.stdout[-2000:], file=sys.stderr)
        print(proc.stderr[-2000:], file=sys.stderr)
        raise SystemExit(f"{path} exited {proc.returncode}")
    footer = parse_footer(proc.stdout)
    if footer is None:
        raise SystemExit(f"{path}: no 'timing:' footer in output")
    curve = parse_csv_block(proc.stdout)
    for row in curve:
        if row.get("shards") == 4:
            print(f"  {row.get('nodes'):>6} nodes: "
                  f"{row.get('speedup')}x at 4 shards, "
                  f"{row.get('node_kb')} kB/node", file=sys.stderr)
    return {"timing": footer, "curve": curve}


def print_profile_breakdown(footer):
    """Print the self-profiler's per-phase share of bench wall time."""
    prof = footer.get("profile")
    if not prof or not prof.get("enabled"):
        return
    tick_keys = [k for k in PROFILE_PHASES if k.startswith("tick_")]
    total = sum(prof.get(k) or 0.0 for k in tick_keys)
    if total <= 0.0:
        return
    shares = sorted(((prof.get(k) or 0.0, k) for k in tick_keys),
                    reverse=True)
    top = ", ".join(f"{k[len('tick_'):-2]} {100.0 * s / total:.0f}%"
                    for s, k in shares[:4] if s > 0.0)
    print(f"  profile: {top}", file=sys.stderr)


def compare_profiles(name, footer, baseline_leg, tolerance):
    """Advisory per-phase comparison against a v4 baseline leg.

    Compares each phase's seconds per flit event; prints a warning for
    phases that slowed by more than `tolerance` but never fails the
    run. Silently skips when either side predates the profiler.
    """
    prof = footer.get("profile")
    base_prof = (baseline_leg or {}).get("profile")
    if not prof or not base_prof:
        if prof and baseline_leg is not None:
            print("  profile vs baseline: (baseline has no profile "
                  "data; skipping phase comparison)", file=sys.stderr)
        return
    events = footer.get("flit_events") or 0
    base_events = baseline_leg.get("flit_events") or 0
    if not events or not base_events:
        return
    for key in PROFILE_PHASES:
        now_s = prof.get(key)
        base_s = base_prof.get(key)
        if not isinstance(now_s, (int, float)) or \
                not isinstance(base_s, (int, float)) or base_s <= 0.0:
            continue
        now_per = now_s / events
        base_per = base_s / base_events
        # Sub-millisecond phases are all noise; don't warn on them.
        if now_s < 0.05 and base_s < 0.05:
            continue
        if now_per > base_per * (1.0 + tolerance):
            print(f"  WARNING: {name} phase {key} slowed "
                  f"{now_per / base_per:.2f}x vs baseline "
                  "(advisory only)", file=sys.stderr)


def baseline_fps(baseline, name):
    """Headline flit_events_per_s of one bench in a prior report.

    Understands the v1 schema (one scheduler: benches[name].jobs1)
    and the v2/v3 schemas (benches[name].active_jobs1). Returns None
    when the bench is absent (e.g. added after the baseline was
    recorded).
    """
    bench = baseline.get("benches", {}).get(name)
    if bench is None:
        return None
    entry = bench.get("active_jobs1") or bench.get("jobs1")
    if entry is None:
        return None
    return entry.get("flit_events_per_s")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build",
                    help="CMake build dir holding bench/ binaries")
    ap.add_argument("--jobs", type=int,
                    default=min(8, os.cpu_count() or 1),
                    help="parallel job count to compare against jobs=1")
    ap.add_argument("--out", default="BENCH_pr10.json")
    ap.add_argument("--quick", action="store_true",
                    help="shrink simulated spans for a fast report")
    ap.add_argument("--giant", action="store_true",
                    help="run the giant-scale curve even with --quick "
                         "(baseline comparisons need --quick spans to "
                         "match a --quick baseline, but the committed "
                         "report still wants the scaling curve)")
    ap.add_argument("--baseline",
                    help="prior report (v1-v5) to compare against")
    ap.add_argument("--max-regression", type=float, default=0.15,
                    help="max tolerated headline throughput loss "
                         "vs --baseline (fraction, default 0.15)")
    opts = ap.parse_args()

    baseline = None
    if opts.baseline:
        # Read up front so --baseline and --out may name the same file.
        with open(opts.baseline, encoding="utf-8") as f:
            baseline = json.load(f)

    report = {
        "schema": SCHEMA,
        "cpu_cores": os.cpu_count() or 1,
        "jobs_parallel": opts.jobs,
        "benches": {},
    }
    regressions = []
    for name, args in DEFAULT_BENCHES:
        path = os.path.join(opts.build_dir, "bench", name)
        if not os.path.exists(path):
            raise SystemExit(f"missing bench binary: {path} "
                             "(build the repo first)")
        if opts.quick:
            args = QUICK_ARGS.get(name, args)
        print(f"{name}:", file=sys.stderr)
        sweep1 = run_bench(path, args, "sweep", 1)
        active1 = run_bench(path, args, "active", 1)
        event1 = run_bench(path, args, "event", 1)
        # The parallel leg only means something with a second worker
        # (and at jobs=1 its dict key would collide with active_jobs1).
        activeN = (run_bench(path, args, "active", opts.jobs)
                   if opts.jobs > 1 else None)
        activeS = run_bench(path, args, "active", 1, shards=4)
        footers = [sweep1, active1, event1, activeS] + (
            [activeN] if activeN else [])
        events = {f["flit_events"] for f in footers}
        if len(events) != 1:
            raise SystemExit(
                f"{name}: flit_events differ across configurations "
                f"({sorted(events)}) — scheduler-identity or "
                "parallel-determinism violation")
        sched_speedup = (active1["flit_events_per_s"] /
                         sweep1["flit_events_per_s"]
                         if sweep1["flit_events_per_s"] else 0.0)
        event_speedup = (event1["flit_events_per_s"] /
                         active1["flit_events_per_s"]
                         if active1["flit_events_per_s"] else 0.0)
        shard_speedup = (active1["wall_s"] / activeS["wall_s"]
                         if activeS["wall_s"] > 0 else 0.0)
        report["benches"][name] = {
            "args": args,
            "sweep_jobs1": sweep1,
            "active_jobs1": active1,
            "event_jobs1": event1,
            "active_shards4": activeS,
            "sched_speedup": round(sched_speedup, 3),
            "event_speedup": round(event_speedup, 3),
            "shard_speedup": round(shard_speedup, 3),
        }
        print(f"  scheduler speedup (active/sweep): "
              f"{sched_speedup:.2f}x", file=sys.stderr)
        print(f"  skip-ahead speedup (event/active): "
              f"{event_speedup:.2f}x", file=sys.stderr)
        print(f"  shard speedup at shards=4: {shard_speedup:.2f}x "
              f"({report['cpu_cores']} core(s) available)",
              file=sys.stderr)
        print_profile_breakdown(active1)
        if activeN is not None:
            par_speedup = (active1["wall_s"] / activeN["wall_s"]
                           if activeN["wall_s"] > 0 else 0.0)
            report["benches"][name][f"active_jobs{opts.jobs}"] = activeN
            report["benches"][name]["parallel_speedup"] = (
                round(par_speedup, 3))
            print(f"  parallel speedup at jobs={opts.jobs}: "
                  f"{par_speedup:.2f}x ({report['cpu_cores']} "
                  "core(s) available)", file=sys.stderr)

        if baseline is not None:
            base_fps = baseline_fps(baseline, name)
            if base_fps:
                ratio = active1["flit_events_per_s"] / base_fps
                report["benches"][name]["vs_baseline"] = round(ratio, 3)
                print(f"  vs baseline: {ratio:.2f}x", file=sys.stderr)
                if ratio < 1.0 - opts.max_regression:
                    regressions.append((name, ratio))
            else:
                print("  vs baseline: (not in baseline)",
                      file=sys.stderr)
            base_bench = baseline.get("benches", {}).get(name) or {}
            compare_profiles(name, active1,
                             base_bench.get("active_jobs1"),
                             opts.max_regression)

    if opts.giant or not opts.quick:
        giant = os.path.join(opts.build_dir, "bench",
                             "bench_tab_giant_scale")
        if os.path.exists(giant):
            report["giant_scale"] = run_giant(giant)
        else:
            print("(bench_tab_giant_scale not built; skipping the "
                  "scaling curve)", file=sys.stderr)

    with open(opts.out, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"wrote {opts.out}", file=sys.stderr)

    if regressions:
        for name, ratio in regressions:
            print(f"REGRESSION: {name} at {ratio:.2f}x of baseline "
                  f"(tolerance {1.0 - opts.max_regression:.2f}x)",
                  file=sys.stderr)
        raise SystemExit(1)


if __name__ == "__main__":
    main()
