#!/usr/bin/env python3
"""Measure the parallel experiment engine and emit BENCH_pr3.json.

Every crnet bench ends with a machine-parseable footer:

  timing: runs=N wall_s=S sims_per_s=R flit_events=E \
      flit_events_per_s=F jobs=J cores=C

This script runs a selection of benches twice — sequentially (jobs=1)
and with the parallel engine (jobs=N, default min(8, cpu_count)) —
parses the footers, and writes a JSON report recording per-bench
wall-clock, throughput, and the parallel speedup, together with the
host core count so the numbers are interpretable (speedup is bounded
by the physical cores actually available).

Usage:
  tools/bench_report.py [--build-dir build] [--jobs N]
                        [--out BENCH_pr3.json] [--quick]

The default bench set covers one load-sweep bench and the fault
campaign; --quick shrinks the simulated spans so the report finishes
in about a minute on one core.
"""

import argparse
import json
import os
import re
import subprocess
import sys

SCHEMA = "crnet-bench-report-v1"

# (bench binary, extra args). The overrides shrink simulated spans so
# report generation stays cheap; both settings use identical configs,
# so the speedup comparison is apples-to-apples.
DEFAULT_BENCHES = [
    ("bench_fig12_timeout", []),
    ("bench_campaign_dynamic", ["trials=32", "seed_base=1"]),
]
QUICK_ARGS = {
    "bench_fig12_timeout": ["measure=1000", "drain=10000"],
    "bench_campaign_dynamic": ["trials=16", "seed_base=1"],
}

FOOTER_RE = re.compile(r"^timing: (.+)$", re.M)


def parse_footer(output):
    """Return the parsed key=value dict of the last timing footer."""
    matches = FOOTER_RE.findall(output)
    if not matches:
        return None
    fields = {}
    for token in matches[-1].split():
        key, _, value = token.partition("=")
        try:
            fields[key] = int(value)
        except ValueError:
            try:
                fields[key] = float(value)
            except ValueError:
                fields[key] = value
    return fields


def run_bench(path, args, jobs):
    """Run one bench at a job count; return its parsed footer."""
    cmd = [path] + args + [f"jobs={jobs}"]
    print(f"  $ {' '.join(cmd)}", file=sys.stderr)
    proc = subprocess.run(cmd, capture_output=True, text=True)
    if proc.returncode != 0:
        print(proc.stdout[-2000:], file=sys.stderr)
        print(proc.stderr[-2000:], file=sys.stderr)
        raise SystemExit(f"{path} exited {proc.returncode}")
    footer = parse_footer(proc.stdout)
    if footer is None:
        raise SystemExit(f"{path}: no 'timing:' footer in output")
    return footer


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--build-dir", default="build",
                    help="CMake build dir holding bench/ binaries")
    ap.add_argument("--jobs", type=int,
                    default=min(8, os.cpu_count() or 1),
                    help="parallel job count to compare against jobs=1")
    ap.add_argument("--out", default="BENCH_pr3.json")
    ap.add_argument("--quick", action="store_true",
                    help="shrink simulated spans for a fast report")
    opts = ap.parse_args()

    report = {
        "schema": SCHEMA,
        "cpu_cores": os.cpu_count() or 1,
        "jobs_parallel": opts.jobs,
        "benches": {},
    }
    for name, args in DEFAULT_BENCHES:
        path = os.path.join(opts.build_dir, "bench", name)
        if not os.path.exists(path):
            raise SystemExit(f"missing bench binary: {path} "
                             "(build the repo first)")
        if opts.quick:
            args = QUICK_ARGS.get(name, args)
        print(f"{name}:", file=sys.stderr)
        seq = run_bench(path, args, 1)
        par = run_bench(path, args, opts.jobs)
        if seq["flit_events"] != par["flit_events"]:
            raise SystemExit(
                f"{name}: flit_events differ between jobs=1 "
                f"({seq['flit_events']}) and jobs={opts.jobs} "
                f"({par['flit_events']}) — determinism violation")
        speedup = (seq["wall_s"] / par["wall_s"]
                   if par["wall_s"] > 0 else 0.0)
        report["benches"][name] = {
            "args": args,
            "jobs1": seq,
            f"jobs{opts.jobs}": par,
            "speedup": round(speedup, 3),
        }
        print(f"  speedup at jobs={opts.jobs}: {speedup:.2f}x "
              f"({report['cpu_cores']} core(s) available)",
              file=sys.stderr)

    with open(opts.out, "w", encoding="utf-8") as f:
        json.dump(report, f, indent=2)
        f.write("\n")
    print(f"wrote {opts.out}", file=sys.stderr)


if __name__ == "__main__":
    main()
