#!/usr/bin/env python3
"""Split a bench_output.txt into per-table CSV files.

Every crnet bench prints each results table twice: once aligned for
reading, once as CSV after a `csv:` marker. This script walks the
combined output of the whole suite and writes each CSV block to
  <outdir>/<bench>__<nn>.csv
so the numbers can be plotted or diffed without re-running anything.

Usage:
  tools/extract_csv.py bench_output.txt [outdir]   (default: bench_csv/)
"""

import os
import re
import sys


def split_benches(text):
    """Yield (bench_name, body) for each '===== name =====' section."""
    parts = re.split(r"^===== (.+?) =====$", text, flags=re.M)
    # parts[0] is any preamble; then alternating name, body.
    for i in range(1, len(parts) - 1, 2):
        yield parts[i].strip(), parts[i + 1]


def csv_blocks(body, marker="csv:"):
    """Yield consecutive CSV line blocks following `marker` lines."""
    lines = body.splitlines()
    i = 0
    while i < len(lines):
        if lines[i].strip() == marker:
            block = []
            i += 1
            while i < len(lines) and "," in lines[i]:
                block.append(lines[i])
                i += 1
            if block:
                yield "\n".join(block) + "\n"
        else:
            i += 1


def kv_lines(body, marker):
    """Yield dicts parsed from single-line `marker key=v key=v` rows.

    Used for the `warmstart:` footer bench_tab_saturation prints after
    its cold-vs-warm replication comparison (docs/ROBUSTNESS.md): one
    line of key=value pairs rather than a multi-row CSV block.
    """
    for line in body.splitlines():
        line = line.strip()
        if not line.startswith(marker):
            continue
        row = {}
        for tok in line[len(marker):].split():
            if "=" in tok:
                k, _, v = tok.partition("=")
                row[k] = v
        if row:
            yield row


def kv_csv(rows):
    """Render a list of same-keyed dicts as one CSV block."""
    keys = list(rows[0].keys())
    out = [",".join(keys)]
    out += [",".join(r.get(k, "") for k in keys) for r in rows]
    return "\n".join(out) + "\n"


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    src = sys.argv[1]
    outdir = sys.argv[2] if len(sys.argv) > 2 else "bench_csv"
    with open(src, encoding="utf-8", errors="replace") as f:
        text = f.read()

    os.makedirs(outdir, exist_ok=True)
    written = 0
    for bench, body in split_benches(text):
        safe = re.sub(r"[^A-Za-z0-9_.-]", "_", bench)
        for n, block in enumerate(csv_blocks(body)):
            path = os.path.join(outdir, f"{safe}__{n:02d}.csv")
            with open(path, "w", encoding="utf-8") as out:
                out.write(block)
            written += 1
        # Fault campaigns also emit one row per trial after a
        # `campaign-trials:` marker; keep those in their own file.
        for n, block in enumerate(csv_blocks(body, "campaign-trials:")):
            path = os.path.join(outdir, f"{safe}__trials{n:02d}.csv")
            with open(path, "w", encoding="utf-8") as out:
                out.write(block)
            written += 1
        # Interval-sampled telemetry (`timeseries:`) and channel-heat
        # snapshots (`heatmap:`) — see docs/OBSERVABILITY.md.
        for n, block in enumerate(csv_blocks(body, "timeseries:")):
            path = os.path.join(outdir, f"{safe}__ts{n:02d}.csv")
            with open(path, "w", encoding="utf-8") as out:
                out.write(block)
            written += 1
        for n, block in enumerate(csv_blocks(body, "heatmap:")):
            path = os.path.join(outdir, f"{safe}__heatmap{n:02d}.csv")
            with open(path, "w", encoding="utf-8") as out:
                out.write(block)
            written += 1
        # Warm-start comparison footers (`warmstart: cold_s=... ...`)
        # collapse into a single CSV per bench so speedups can be
        # tracked across runs (docs/ROBUSTNESS.md).
        warm = list(kv_lines(body, "warmstart:"))
        if warm:
            path = os.path.join(outdir, f"{safe}__warmstart.csv")
            with open(path, "w", encoding="utf-8") as out:
                out.write(kv_csv(warm))
            written += 1
    print(f"wrote {written} CSV files to {outdir}/")


if __name__ == "__main__":
    main()
