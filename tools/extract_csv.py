#!/usr/bin/env python3
"""Split a bench_output.txt into per-table CSV files.

Every crnet bench prints each results table twice: once aligned for
reading, once as CSV after a `csv:` marker. This script walks the
combined output of the whole suite and writes each CSV block to
  <outdir>/<bench>__<nn>.csv
so the numbers can be plotted or diffed without re-running anything.
Single-line key=value footers (`warmstart:`, `profile:`) become
one-row CSVs the same way.

Given a live-status JSON file instead (the `status=` config key;
schema crnet-status-v1, docs/OBSERVABILITY.md), the recent-units
trial table inside it is written to <outdir>/<stem>__status.csv.

Usage:
  tools/extract_csv.py bench_output.txt [outdir]   (default: bench_csv/)
  tools/extract_csv.py status.json [outdir]
"""

import json
import os
import re
import sys


def split_benches(text):
    """Yield (bench_name, body) for each '===== name =====' section."""
    parts = re.split(r"^===== (.+?) =====$", text, flags=re.M)
    # parts[0] is any preamble; then alternating name, body.
    for i in range(1, len(parts) - 1, 2):
        yield parts[i].strip(), parts[i + 1]


def csv_blocks(body, marker="csv:"):
    """Yield consecutive CSV line blocks following `marker` lines."""
    lines = body.splitlines()
    i = 0
    while i < len(lines):
        if lines[i].strip() == marker:
            block = []
            i += 1
            while i < len(lines) and "," in lines[i]:
                block.append(lines[i])
                i += 1
            if block:
                yield "\n".join(block) + "\n"
        else:
            i += 1


def kv_lines(body, marker):
    """Yield dicts parsed from single-line `marker key=v key=v` rows.

    Used for the `warmstart:` footer bench_tab_saturation prints after
    its cold-vs-warm replication comparison (docs/ROBUSTNESS.md): one
    line of key=value pairs rather than a multi-row CSV block.
    """
    for line in body.splitlines():
        line = line.strip()
        if not line.startswith(marker):
            continue
        row = {}
        for tok in line[len(marker):].split():
            if "=" in tok:
                k, _, v = tok.partition("=")
                row[k] = v
        if row:
            yield row


def kv_csv(rows):
    """Render a list of same-keyed dicts as one CSV block."""
    keys = list(rows[0].keys())
    out = [",".join(keys)]
    out += [",".join(r.get(k, "") for k in keys) for r in rows]
    return "\n".join(out) + "\n"


def status_csv(src, outdir):
    """Write a crnet-status-v1 file's trial table as one CSV file."""
    with open(src, encoding="utf-8") as f:
        status = json.load(f)
    schema = status.get("schema", "")
    if schema != "crnet-status-v1":
        sys.exit(f"{src}: unrecognized status schema {schema!r} "
                 "(expected crnet-status-v1)")
    os.makedirs(outdir, exist_ok=True)
    units = status.get("recent_units", [])
    keys = ["unit", "seed", "ok", "deadlocked", "quarantined",
            "accepted", "delivered", "cycles"]
    stem = re.sub(r"[^A-Za-z0-9_.-]", "_",
                  os.path.splitext(os.path.basename(src))[0])
    path = os.path.join(outdir, f"{stem}__status.csv")
    with open(path, "w", encoding="utf-8") as out:
        out.write(",".join(keys) + "\n")
        for u in units:
            out.write(",".join(str(u.get(k, "")) for k in keys) + "\n")
    print(f"wrote 1 CSV file to {outdir}/ "
          f"({len(units)} trial rows from {src})")


def main():
    if len(sys.argv) < 2:
        sys.exit(__doc__)
    src = sys.argv[1]
    outdir = sys.argv[2] if len(sys.argv) > 2 else "bench_csv"
    if src.endswith(".json"):
        status_csv(src, outdir)
        return
    with open(src, encoding="utf-8", errors="replace") as f:
        text = f.read()

    os.makedirs(outdir, exist_ok=True)
    written = 0
    for bench, body in split_benches(text):
        safe = re.sub(r"[^A-Za-z0-9_.-]", "_", bench)
        for n, block in enumerate(csv_blocks(body)):
            path = os.path.join(outdir, f"{safe}__{n:02d}.csv")
            with open(path, "w", encoding="utf-8") as out:
                out.write(block)
            written += 1
        # Fault campaigns also emit one row per trial after a
        # `campaign-trials:` marker; keep those in their own file.
        for n, block in enumerate(csv_blocks(body, "campaign-trials:")):
            path = os.path.join(outdir, f"{safe}__trials{n:02d}.csv")
            with open(path, "w", encoding="utf-8") as out:
                out.write(block)
            written += 1
        # Interval-sampled telemetry (`timeseries:`) and channel-heat
        # snapshots (`heatmap:`) — see docs/OBSERVABILITY.md.
        for n, block in enumerate(csv_blocks(body, "timeseries:")):
            path = os.path.join(outdir, f"{safe}__ts{n:02d}.csv")
            with open(path, "w", encoding="utf-8") as out:
                out.write(block)
            written += 1
        for n, block in enumerate(csv_blocks(body, "heatmap:")):
            path = os.path.join(outdir, f"{safe}__heatmap{n:02d}.csv")
            with open(path, "w", encoding="utf-8") as out:
                out.write(block)
            written += 1
        # Warm-start comparison footers (`warmstart: cold_s=... ...`)
        # collapse into a single CSV per bench so speedups can be
        # tracked across runs (docs/ROBUSTNESS.md).
        warm = list(kv_lines(body, "warmstart:"))
        if warm:
            path = os.path.join(outdir, f"{safe}__warmstart.csv")
            with open(path, "w", encoding="utf-8") as out:
                out.write(kv_csv(warm))
            written += 1
        # Self-profiler footers (`profile: warmup_s=... ...`) — one
        # row per footer so the per-phase wall-time attribution can be
        # tracked alongside the results (docs/OBSERVABILITY.md).
        prof = list(kv_lines(body, "profile:"))
        if prof:
            path = os.path.join(outdir, f"{safe}__profile.csv")
            with open(path, "w", encoding="utf-8") as out:
                out.write(kv_csv(prof))
            written += 1
    print(f"wrote {written} CSV files to {outdir}/")


if __name__ == "__main__":
    main()
