#!/usr/bin/env python3
"""Style and portability lint for the crnet tree.

Run as `crnet_lint.py [repo-root]`; registered as the `lint` ctest so a
plain `ctest` run enforces the rules. Checks, over src/ (and where
noted, the whole C++ tree):

  * randomness goes through src/sim/rng.hh — no raw rand()/random()/
    std::mt19937 anywhere else (reproducibility: every experiment is
    seeded through SimConfig);
  * output goes through src/sim/log.hh — no printf/fprintf/puts/
    perror/std::cout/std::cerr/std::clog in src/ outside log.hh
    (library code must not write to the terminal behind the
    simulation's back), and no raw abort() — panic() aborts after
    reporting, in every build type;
  * include guards are CRNET_<PATH>_<FILE>_HH, matching the file's
    location under src/;
  * no assert() in protocol code — invariants use panic(), which fires
    in every build type (assert is compiled out under NDEBUG, and a
    protocol violation is never acceptable in release runs).

Exit status 0 = clean, 1 = violations (printed one per line,
file:line: message), 2 = usage error.
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

CPP_SUFFIXES = {".cc", ".hh", ".cpp", ".hpp", ".h"}

RAW_RANDOM = re.compile(
    r"\b(?:std::)?mt19937(?:_64)?\b"          # engine type, any use
    r"|\b(?:std::)?(?:rand|srand|random)\s*\("  # C PRNG calls
)
RAW_OUTPUT = re.compile(
    r"\b(?:printf|fprintf|puts|perror"          # C stdio
    r"|std::cout|std::cerr|std::clog)\b"        # iostream globals
    r"|\b(?:std::)?abort\s*\("                  # bypasses panic()
)
RAW_ASSERT = re.compile(r"(?<![\w.])assert\s*\(")
GUARD_IFNDEF = re.compile(r"^#ifndef\s+(\w+)\s*$", re.MULTILINE)


def strip_comments_and_strings(text: str) -> str:
    """Blank out comments and string/char literals, keeping line numbers."""
    out = []
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            out.append(" " * (j - i))
            i = j
        elif c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n if j < 0 else j + 2
            out.append("".join(ch if ch == "\n" else " " for ch in text[i:j]))
            i = j
        elif c in "\"'":
            quote = c
            j = i + 1
            while j < n:
                if text[j] == "\\":
                    j += 2
                    continue
                if text[j] == quote or text[j] == "\n":
                    j += 1
                    break
                j += 1
            out.append(quote + " " * (j - i - 1))
            i = j
        else:
            out.append(c)
            i += 1
    return "".join(out)


def expected_guard(rel: Path) -> str:
    parts = [p.upper().replace("-", "_").replace(".", "_") for p in rel.parts]
    return "CRNET_" + "_".join(parts)


def find_line(text: str, match_start: int) -> int:
    return text.count("\n", 0, match_start) + 1


def lint_file(root: Path, path: Path, problems: list[str]) -> None:
    rel = path.relative_to(root)
    raw = path.read_text(encoding="utf-8", errors="replace")
    code = strip_comments_and_strings(raw)
    in_src = rel.parts[0] == "src"

    for m in RAW_RANDOM.finditer(code):
        if rel == Path("src/sim/rng.hh"):
            break
        problems.append(
            f"{rel}:{find_line(code, m.start())}: raw randomness "
            f"({m.group(0).rstrip('(').strip()}); use src/sim/rng.hh"
        )

    if in_src and rel.name != "log.hh":
        for m in RAW_OUTPUT.finditer(code):
            problems.append(
                f"{rel}:{find_line(code, m.start())}: direct output "
                f"({m.group(0)}); use src/sim/log.hh"
            )

    if in_src:
        for m in RAW_ASSERT.finditer(code):
            problems.append(
                f"{rel}:{find_line(code, m.start())}: assert() in "
                "protocol code; use panic() (active in all builds)"
            )

    if in_src and path.suffix in {".hh", ".hpp", ".h"}:
        m = GUARD_IFNDEF.search(code)
        want = expected_guard(rel.relative_to("src"))
        if m is None:
            problems.append(f"{rel}:1: missing include guard ({want})")
        elif m.group(1) != want:
            problems.append(
                f"{rel}:{find_line(code, m.start())}: include guard "
                f"{m.group(1)} should be {want}"
            )


#: (sample line, regex, should_match) triples exercising each pattern.
#: Kept next to the regexes so adding a pattern without a self-test
#: case is an obvious omission in review.
SELF_TEST_CASES = [
    # RAW_OUTPUT positives.
    ('printf("x");', RAW_OUTPUT, True),
    ('std::fprintf(stderr, "x");', RAW_OUTPUT, True),
    ('puts("x");', RAW_OUTPUT, True),
    ('perror("open");', RAW_OUTPUT, True),
    ("std::cout << x;", RAW_OUTPUT, True),
    ("std::cerr << x;", RAW_OUTPUT, True),
    ("std::clog << x;", RAW_OUTPUT, True),
    ("abort();", RAW_OUTPUT, True),
    ("std::abort();", RAW_OUTPUT, True),
    # RAW_OUTPUT negatives: member/identifier lookalikes.
    ("inj.acceptAbort(ch, vc, msg);", RAW_OUTPUT, False),
    ("void onAbort(MsgId msg);", RAW_OUTPUT, False),
    ("int sprintf_like = 0;", RAW_OUTPUT, False),
    ("bool aborted = worm.aborted();", RAW_OUTPUT, False),
    ("// std::cout in a comment survives stripping upstream",
     RAW_OUTPUT, True),  # self-test feeds raw lines; stripping is
                         # exercised by the comment case below.
    # RAW_RANDOM.
    ("std::mt19937 gen(seed);", RAW_RANDOM, True),
    ("int r = rand();", RAW_RANDOM, True),
    ("srand(42);", RAW_RANDOM, True),
    ("Rng rng(seed);", RAW_RANDOM, False),
    ("randomize_later();", RAW_RANDOM, False),
    # RAW_ASSERT.
    ("assert(x > 0);", RAW_ASSERT, True),
    ("static_assert(sizeof(x) == 4);", RAW_ASSERT, False),
    ("myassert(x);", RAW_ASSERT, False),
]


def self_test() -> int:
    """Check every pattern against its embedded samples."""
    failures = 0
    for line, pattern, want in SELF_TEST_CASES:
        got = pattern.search(line) is not None
        if got != want:
            failures += 1
            print(f"FAIL [{pattern.pattern[:40]}...] "
                  f"matched={got} expected={want}: {line}")
    # Comment/string stripping must hide matches from the scanners.
    stripped = strip_comments_and_strings(
        '// std::cout\n"std::cerr"\nstd::clog << x;\n')
    hits = [m.group(0) for m in RAW_OUTPUT.finditer(stripped)]
    if hits != ["std::clog"]:
        failures += 1
        print(f"FAIL stripping: expected only std::clog, got {hits}")
    if failures:
        print(f"crnet_lint --self-test: {failures} case(s) failed")
        return 1
    print(f"crnet_lint --self-test: "
          f"{len(SELF_TEST_CASES) + 1} cases passed")
    return 0


def main(argv: list[str]) -> int:
    if len(argv) == 2 and argv[1] == "--self-test":
        return self_test()
    if len(argv) > 2:
        print("usage: crnet_lint.py [repo-root | --self-test]",
              file=sys.stderr)
        return 2
    root = Path(argv[1]).resolve() if len(argv) == 2 else Path.cwd()
    if not (root / "src").is_dir():
        print(f"crnet_lint: no src/ under {root}", file=sys.stderr)
        return 2

    problems: list[str] = []
    scanned = 0
    for top in ("src", "tests", "bench", "examples", "tools"):
        base = root / top
        if not base.is_dir():
            continue
        for path in sorted(base.rglob("*")):
            if path.suffix in CPP_SUFFIXES and path.is_file():
                lint_file(root, path, problems)
                scanned += 1

    for p in problems:
        print(p)
    print(f"crnet_lint: {scanned} files scanned, "
          f"{len(problems)} problem(s)")
    return 1 if problems else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
