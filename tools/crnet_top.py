#!/usr/bin/env python3
"""Terminal dashboard for a live crnet campaign/sweep status file.

Long campaigns report liveness through the `status=` config key: the
engine atomically rewrites a small JSON file (schema crnet-status-v1,
docs/OBSERVABILITY.md) every few wall-seconds. This tool tails that
file and renders a top-style view: overall progress with an ETA,
per-worker activity, the last few completed trials and fault events,
and the process-wide telemetry counters.

Stdlib only; works over any transport that shows you the file (local
disk, sshfs, a synced artifact directory). The writes are atomic, so
a read never sees a torn file — at worst the file does not exist yet.

Usage:
  tools/crnet_top.py status.json              # refresh until done
  tools/crnet_top.py status.json --once       # render once and exit
  tools/crnet_top.py status.json --interval 5
"""

import argparse
import json
import sys
import time

BAR_WIDTH = 40


def load_status(path):
    """Read and parse the status file; None when absent/unreadable."""
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError):
        return None


def fmt_duration(seconds):
    if seconds is None or seconds < 0:
        return "--:--"
    seconds = int(seconds)
    if seconds >= 3600:
        return f"{seconds // 3600}h{(seconds % 3600) // 60:02d}m"
    return f"{seconds // 60}m{seconds % 60:02d}s"


def progress_bar(done, total):
    if total <= 0:
        return "[" + "?" * BAR_WIDTH + "]"
    filled = int(BAR_WIDTH * min(done, total) / total)
    return "[" + "#" * filled + "-" * (BAR_WIDTH - filled) + "]"


def render(status, path):
    """Return the dashboard for one status snapshot as a string."""
    lines = []
    kind = status.get("kind", "?")
    state = status.get("state", "?")
    total = status.get("total", 0)
    done = status.get("done", 0)
    wall = status.get("wall_seconds")
    eta = status.get("eta_seconds")
    lines.append(f"crnet {kind} — {path}")
    lines.append(
        f"{progress_bar(done, total)} {done}/{total} {state}"
        f"  elapsed {fmt_duration(wall)}"
        + ("" if state == "done" else f"  eta {fmt_duration(eta)}"))

    ratio = status.get("delivery_ratio")
    parts = []
    if ratio is not None:
        parts.append(f"delivery {100.0 * ratio:.2f}%")
    for key in ("resumed", "quarantined", "deadlocked"):
        value = status.get(key, 0)
        if value:
            parts.append(f"{key} {value}")
    parts.append(f"jobs {status.get('jobs', '?')}")
    lines.append("  ".join(parts))

    active = status.get("active", [])
    if active:
        lines.append("")
        lines.append("active:")
        for slot in active:
            lines.append(f"  unit {slot.get('unit', '?'):>5}  "
                         f"{slot.get('phase', '?'):<8} "
                         f"cycle {slot.get('cycle', 0)}")

    units = status.get("recent_units", [])
    if units:
        lines.append("")
        lines.append(f"{'unit':>6} {'seed':>10} {'ok':>3} "
                     f"{'accepted':>9} {'delivered':>9} {'cycles':>9}")
        for u in units[-8:]:
            flags = "ok" if u.get("ok") else (
                "qu" if u.get("quarantined") else (
                    "dl" if u.get("deadlocked") else "!!"))
            lines.append(f"{u.get('unit', 0):>6} {u.get('seed', 0):>10} "
                         f"{flags:>3} {u.get('accepted', 0):>9} "
                         f"{u.get('delivered', 0):>9} "
                         f"{u.get('cycles', 0):>9}")

    faults = status.get("recent_fault_events", [])
    if faults:
        lines.append("")
        lines.append("recent fault events:")
        for ev in faults[-6:]:
            lines.append(f"  unit {ev.get('unit', '?'):>5}  "
                         f"@{ev.get('at', 0):<10} "
                         f"{ev.get('kind', '?')}")

    metrics = status.get("metrics", {})
    shard_lines = render_shards(metrics)
    if shard_lines:
        lines.append("")
        lines.extend(shard_lines)
    if metrics:
        lines.append("")
        lines.append("telemetry:")
        for name in sorted(metrics):
            if name.startswith("sched.shard_ticks."):
                continue  # Summarized in the sharding section.
            lines.append(f"  {name:<32} {metrics[name]}")
    return "\n".join(lines)


def render_shards(metrics):
    """Summarize the intra-run sharding gauges, if any.

    `sched.shard_ticks.<s>` gauges count component ticks each shard
    worker performed; `sched.shard_barrier_wait_nanos` accumulates the
    main thread's wait at the per-cycle barrier. A well-balanced run
    shows near-equal tick shares; a lopsided bar means the node-range
    split does not match where the traffic is (docs/PERFORMANCE.md).
    """
    ticks = {}
    for name, value in metrics.items():
        if name.startswith("sched.shard_ticks."):
            try:
                ticks[int(name.rsplit(".", 1)[1])] = value
            except ValueError:
                continue
    if not ticks:
        return []
    lines = [f"sharding ({len(ticks)} shards):"]
    total = sum(ticks.values())
    for shard in sorted(ticks):
        share = ticks[shard] / total if total else 0.0
        bar = "#" * int(20 * share)
        lines.append(f"  shard {shard:>3}  {ticks[shard]:>14} ticks "
                     f"{100.0 * share:5.1f}% {bar}")
    wait = metrics.get("sched.shard_barrier_wait_nanos")
    if wait is not None:
        lines.append(f"  barrier wait {wait / 1e6:.1f} ms total")
    return lines


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("status", help="path to the status=<path> file")
    ap.add_argument("--interval", type=float, default=2.0,
                    help="refresh period in seconds (default 2)")
    ap.add_argument("--once", action="store_true",
                    help="render one snapshot and exit (CI mode)")
    opts = ap.parse_args()

    while True:
        status = load_status(opts.status)
        if status is None:
            if opts.once:
                sys.exit(f"{opts.status}: not readable yet")
            print(f"waiting for {opts.status} ...", file=sys.stderr)
        else:
            if not opts.once:
                # Clear screen + home; plain ANSI, no curses needed.
                sys.stdout.write("\x1b[2J\x1b[H")
            print(render(status, opts.status))
            sys.stdout.flush()
            if opts.once or status.get("state") == "done":
                return
        time.sleep(opts.interval)


if __name__ == "__main__":
    try:
        main()
    except BrokenPipeError:
        # Piped into head/less that exited; not an error.
        sys.exit(0)
    except KeyboardInterrupt:
        sys.exit(130)
