/**
 * @file
 * Unit tests for Duato's adaptive routing with escape channels.
 */

#include <gtest/gtest.h>

#include "src/routing/routing.hh"

namespace crnet {
namespace {

Flit
headTo(NodeId dst)
{
    Flit f;
    f.type = FlitType::Head;
    f.msg = 1;
    f.dst = dst;
    return f;
}

class DuatoTorusTest : public ::testing::Test
{
  protected:
    DuatoTorusTest()
        : topo(8, 2), faults(topo, 0.0, Rng(1)),
          algo(topo, faults, 3), rng(7)
    {
    }

    TorusTopology topo;
    FaultModel faults;
    DuatoRouting algo;
    Rng rng;
};

TEST_F(DuatoTorusTest, TwoEscapeVcsOnTorus)
{
    EXPECT_EQ(algo.numEscapeVcs(), 2u);
    EXPECT_TRUE(algo.isEscapeVc(0));
    EXPECT_TRUE(algo.isEscapeVc(1));
    EXPECT_FALSE(algo.isEscapeVc(2));
}

TEST_F(DuatoTorusTest, AdaptiveFirstEscapeLast)
{
    std::vector<Candidate> out;
    algo.candidates(0, headTo(2 + 3 * 8), out, rng);
    // 2 minimal ports x 1 adaptive VC + 1 escape.
    ASSERT_EQ(out.size(), 3u);
    EXPECT_FALSE(out[0].escape);
    EXPECT_FALSE(out[1].escape);
    EXPECT_TRUE(out[2].escape);
    // Adaptive candidates use only non-escape VCs.
    EXPECT_GE(out[0].vc, algo.numEscapeVcs());
    EXPECT_GE(out[1].vc, algo.numEscapeVcs());
    // Escape candidate uses an escape VC on the DOR port.
    EXPECT_LT(out[2].vc, algo.numEscapeVcs());
    EXPECT_EQ(out[2].port, makePort(0, Direction::Plus));
}

TEST_F(DuatoTorusTest, EscapeVcFollowsDatelineClass)
{
    std::vector<Candidate> out;
    // Path 6 -> 1 (+x) crosses the dateline later: escape class 0.
    algo.candidates(6, headTo(1), out, rng);
    ASSERT_FALSE(out.empty());
    const Candidate esc0 = out.back();
    EXPECT_TRUE(esc0.escape);
    EXPECT_EQ(esc0.vc, 0u);

    out.clear();
    // At 7 the +x hop is the dateline: escape class 1.
    algo.candidates(7, headTo(1), out, rng);
    const Candidate esc1 = out.back();
    EXPECT_TRUE(esc1.escape);
    EXPECT_EQ(esc1.vc, 1u);
}

TEST_F(DuatoTorusTest, EscapeAlwaysPresentOnHealthyNetwork)
{
    for (NodeId src = 0; src < topo.numNodes(); src += 3) {
        for (NodeId dst = 0; dst < topo.numNodes(); dst += 7) {
            if (src == dst)
                continue;
            std::vector<Candidate> out;
            algo.candidates(src, headTo(dst), out, rng);
            ASSERT_FALSE(out.empty());
            EXPECT_TRUE(out.back().escape)
                << "escape missing from " << src << " to " << dst;
        }
    }
}

TEST_F(DuatoTorusTest, TooFewVcsIsFatal)
{
    EXPECT_DEATH(DuatoRouting(topo, faults, 2), "Duato");
}

TEST(DuatoMesh, OneEscapeVcSuffices)
{
    MeshTopology topo(4, 2);
    FaultModel faults(topo, 0.0, Rng(1));
    DuatoRouting algo(topo, faults, 2);
    EXPECT_EQ(algo.numEscapeVcs(), 1u);
    Rng rng(3);
    std::vector<Candidate> out;
    Flit h;
    h.type = FlitType::Head;
    h.dst = 15;
    algo.candidates(0, h, out, rng);
    ASSERT_FALSE(out.empty());
    EXPECT_TRUE(out.back().escape);
    EXPECT_EQ(out.back().vc, 0u);
}

TEST(DuatoMesh, SelfDeadlockFree)
{
    MeshTopology topo(4, 2);
    FaultModel faults(topo, 0.0, Rng(1));
    DuatoRouting algo(topo, faults, 2);
    EXPECT_TRUE(algo.selfDeadlockFree());
}

} // namespace
} // namespace crnet
