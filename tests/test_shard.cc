/**
 * @file
 * Shard-equivalence suite: intra-run network sharding (SimConfig::
 * shards) is an execution knob, so shards=K must be bit-identical to
 * shards=1 on every observable output — run summaries, time series,
 * heatmaps, trace files, campaign aggregates and snapshot payloads —
 * under every scheduler. Any divergence means a shard worker raced on
 * shared state or a serial replay ran out of node order (see
 * docs/PERFORMANCE.md for the boundary-exchange argument).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/experiment.hh"
#include "src/core/network.hh"
#include "src/fault/campaign.hh"
#include "src/sim/snapshot.hh"
#include "src/sim/trace.hh"

namespace crnet {
namespace {

SimConfig
baseCfg()
{
    SimConfig cfg;
    cfg.radixK = 4;
    cfg.dimensionsN = 2;
    cfg.numVcs = 2;
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = ProtocolKind::Cr;
    cfg.timeout = 8;
    cfg.injectionRate = 0.1;
    cfg.messageLength = 8;
    cfg.warmupCycles = 300;
    cfg.measureCycles = 1500;
    cfg.drainCycles = 30000;
    cfg.seed = 11;
    return cfg;
}

/** Field-by-field RunResult comparison (excluding wall clock). */
void
expectSameResult(const RunResult& a, const RunResult& b)
{
    EXPECT_EQ(a.offeredLoad, b.offeredLoad);
    EXPECT_EQ(a.acceptedThroughput, b.acceptedThroughput);
    EXPECT_EQ(a.avgLatency, b.avgLatency);
    EXPECT_EQ(a.netLatency, b.netLatency);
    EXPECT_EQ(a.p50Latency, b.p50Latency);
    EXPECT_EQ(a.p95Latency, b.p95Latency);
    EXPECT_EQ(a.p99Latency, b.p99Latency);
    EXPECT_EQ(a.maxLatency, b.maxLatency);
    EXPECT_EQ(a.latencyStddev, b.latencyStddev);
    EXPECT_EQ(a.avgAttempts, b.avgAttempts);
    EXPECT_EQ(a.killsPerMessage, b.killsPerMessage);
    EXPECT_EQ(a.padOverhead, b.padOverhead);
    EXPECT_EQ(a.measuredMessages, b.measuredMessages);
    EXPECT_EQ(a.deliveredMeasured, b.deliveredMeasured);
    EXPECT_EQ(a.totalKills, b.totalKills);
    EXPECT_EQ(a.pathWideKills, b.pathWideKills);
    EXPECT_EQ(a.escapeAllocations, b.escapeAllocations);
    EXPECT_EQ(a.misrouteHops, b.misrouteHops);
    EXPECT_EQ(a.corruptions, b.corruptions);
    EXPECT_EQ(a.corruptedDeliveries, b.corruptedDeliveries);
    EXPECT_EQ(a.orderViolations, b.orderViolations);
    EXPECT_EQ(a.duplicateDeliveries, b.duplicateDeliveries);
    EXPECT_EQ(a.refusals, b.refusals);
    EXPECT_EQ(a.deadlocked, b.deadlocked);
    EXPECT_EQ(a.drained, b.drained);
    EXPECT_EQ(a.cyclesRun, b.cyclesRun);
    EXPECT_EQ(a.latencyOverflow, b.latencyOverflow);
    EXPECT_EQ(a.flitEvents, b.flitEvents);
    EXPECT_EQ(a.timeseries, b.timeseries);
    ASSERT_EQ(a.heatmap != nullptr, b.heatmap != nullptr);
    if (a.heatmap != nullptr) {
        EXPECT_EQ(a.heatmap->occupancyIntegral,
                  b.heatmap->occupancyIntegral);
        EXPECT_EQ(a.heatmap->blockedCycles, b.heatmap->blockedCycles);
        EXPECT_EQ(a.heatmap->forwarded, b.heatmap->forwarded);
    }
}

/** Run `cfg` at shards 1, 2 and 4; require identical results. */
void
expectShardsAgree(SimConfig cfg)
{
    cfg.shards = 1;
    const RunResult one = runExperiment(cfg);
    cfg.shards = 2;
    const RunResult two = runExperiment(cfg);
    cfg.shards = 4;
    const RunResult four = runExperiment(cfg);
    expectSameResult(two, one);
    expectSameResult(four, one);
    // A run that moved no flits proves nothing.
    EXPECT_GT(one.flitEvents, 0u);
}

TEST(Shard, ShardsMatchUnshardedActive)
{
    SimConfig cfg = baseCfg();
    cfg.sched = SchedulerKind::Active;
    cfg.sampleInterval = 100;
    cfg.heatmapEnabled = true;
    expectShardsAgree(cfg);
}

TEST(Shard, ShardsMatchUnshardedSweep)
{
    SimConfig cfg = baseCfg();
    cfg.sched = SchedulerKind::Sweep;
    cfg.sampleInterval = 100;
    cfg.heatmapEnabled = true;
    expectShardsAgree(cfg);
}

TEST(Shard, ShardsMatchUnshardedEvent)
{
    SimConfig cfg = baseCfg();
    cfg.sched = SchedulerKind::Event;
    cfg.sampleInterval = 100;
    cfg.heatmapEnabled = true;
    expectShardsAgree(cfg);
}

TEST(Shard, ShardsMatchUnshardedMidLoadCr)
{
    // Mid load exercises kills, retries and the give-up path, whose
    // ledger/sink callbacks ride the deferred-stats outboxes.
    SimConfig cfg = baseCfg();
    cfg.injectionRate = 0.3;
    expectShardsAgree(cfg);
}

TEST(Shard, ShardsMatchUnshardedFcrWithTransientFaults)
{
    SimConfig cfg = baseCfg();
    cfg.protocol = ProtocolKind::Fcr;
    cfg.transientFaultRate = 2e-4;
    cfg.injectionRate = 0.15;
    expectShardsAgree(cfg);
}

TEST(Shard, ShardsMatchUnshardedDynamicFaults)
{
    SimConfig cfg = baseCfg();
    cfg.protocol = ProtocolKind::Fcr;
    cfg.dynamicLinkKills = 2;
    cfg.linkRepairAfter = 800;
    cfg.maxRetries = 40;
    cfg.injectionRate = 0.08;
    cfg.sampleInterval = 200;
    expectShardsAgree(cfg);
}

TEST(Shard, ShardsMatchUnshardedDeepChannels)
{
    SimConfig cfg = baseCfg();
    cfg.channelLatency = 4;
    cfg.timeout = 32;
    expectShardsAgree(cfg);
}

TEST(Shard, UnevenRangesAndClampToNodeCount)
{
    // 16 nodes / 3 shards = uneven contiguous ranges; shards above
    // the node count clamp instead of creating empty workers.
    SimConfig cfg = baseCfg();
    cfg.shards = 1;
    const RunResult one = runExperiment(cfg);
    cfg.shards = 3;
    const RunResult three = runExperiment(cfg);
    cfg.shards = 64;  // > numNodes: clamps to 16.
    const RunResult many = runExperiment(cfg);
    expectSameResult(three, one);
    expectSameResult(many, one);
}

TEST(Shard, TraceFilesAreByteIdentical)
{
    auto slurp = [](const std::string& path) {
        std::ifstream in(path);
        std::ostringstream os;
        os << in.rdbuf();
        return os.str();
    };
    auto runTraced = [&](std::uint32_t shards, const std::string& tag) {
        SimConfig cfg = baseCfg();
        cfg.shards = shards;
        cfg.injectionRate = 0.12;
        cfg.warmupCycles = 100;
        cfg.measureCycles = 600;
        cfg.traceFile = ::testing::TempDir() + "crnet_shard_" + tag;
        (void)runExperiment(cfg);
        const std::string text = slurp(cfg.traceFile + ".jsonl");
        std::remove((cfg.traceFile + ".jsonl").c_str());
        std::remove((cfg.traceFile + ".json").c_str());
        return text;
    };
    const std::string one = runTraced(1, "one");
    const std::string two = runTraced(2, "two");
    const std::string four = runTraced(4, "four");
    EXPECT_FALSE(one.empty());
    EXPECT_EQ(two, one);
    EXPECT_EQ(four, one);
}

TEST(Shard, WatchFilterAdoptionSurvivesSharding)
{
    // The pair-adoption path mutates the tracer's shared watch set,
    // which is why staged events replay through record() serially.
    auto slurp = [](const std::string& path) {
        std::ifstream in(path);
        std::ostringstream os;
        os << in.rdbuf();
        return os.str();
    };
    auto runWatched = [&](std::uint32_t shards,
                          const std::string& tag) {
        SimConfig cfg = baseCfg();
        cfg.shards = shards;
        cfg.injectionRate = 0.2;
        cfg.warmupCycles = 100;
        cfg.measureCycles = 600;
        cfg.watchSpec = "0-15,3-12";
        cfg.traceFile = ::testing::TempDir() + "crnet_watch_" + tag;
        (void)runExperiment(cfg);
        const std::string text = slurp(cfg.traceFile + ".jsonl");
        std::remove((cfg.traceFile + ".jsonl").c_str());
        std::remove((cfg.traceFile + ".json").c_str());
        return text;
    };
    const std::string one = runWatched(1, "one");
    const std::string four = runWatched(4, "four");
    EXPECT_FALSE(one.empty());
    EXPECT_EQ(four, one);
}

TEST(Shard, CampaignAggregatesMatch)
{
    CampaignConfig cc;
    cc.base = baseCfg();
    cc.base.protocol = ProtocolKind::Fcr;
    cc.base.dynamicLinkKills = 1;
    cc.base.maxRetries = 40;
    cc.base.injectionRate = 0.08;
    cc.trials = 3;
    cc.seedBase = 7;

    cc.base.shards = 1;
    std::vector<TrialOutcome> oneTrials;
    const CampaignSummary one = runCampaign(cc, &oneTrials);
    cc.base.shards = 4;
    std::vector<TrialOutcome> fourTrials;
    const CampaignSummary four = runCampaign(cc, &fourTrials);

    EXPECT_EQ(four.trials, one.trials);
    EXPECT_EQ(four.accountedTrials, one.accountedTrials);
    EXPECT_EQ(four.deadlockedTrials, one.deadlockedTrials);
    EXPECT_EQ(four.accepted, one.accepted);
    EXPECT_EQ(four.delivered, one.delivered);
    EXPECT_EQ(four.refused, one.refused);
    EXPECT_EQ(four.pending, one.pending);
    EXPECT_EQ(four.duplicates, one.duplicates);
    EXPECT_EQ(four.faultEvents, one.faultEvents);
    EXPECT_EQ(four.deliveryRate, one.deliveryRate);
    EXPECT_EQ(four.meanPreFaultLatency, one.meanPreFaultLatency);
    EXPECT_EQ(four.meanPostFaultLatency, one.meanPostFaultLatency);
    EXPECT_EQ(four.meanRecoveryCycles, one.meanRecoveryCycles);
    EXPECT_EQ(four.maxRecoveryCycles, one.maxRecoveryCycles);
    EXPECT_EQ(four.flitEvents, one.flitEvents);

    ASSERT_EQ(fourTrials.size(), oneTrials.size());
    for (std::size_t i = 0; i < oneTrials.size(); ++i) {
        EXPECT_EQ(fourTrials[i].delivered, oneTrials[i].delivered);
        EXPECT_EQ(fourTrials[i].cyclesRun, oneTrials[i].cyclesRun);
        EXPECT_EQ(fourTrials[i].flitEvents, oneTrials[i].flitEvents);
        EXPECT_EQ(fourTrials[i].receiverTimeouts,
                  oneTrials[i].receiverTimeouts);
    }
}

TEST(Shard, FingerprintIsShardAgnostic)
{
    SimConfig a = baseCfg();
    SimConfig b = baseCfg();
    a.shards = 1;
    b.shards = 4;
    EXPECT_EQ(configFingerprint(a), configFingerprint(b));
}

TEST(Shard, SnapshotRoundTripsAcrossShardCounts)
{
    // Save under shards=4, restore under shards=1 (and vice versa):
    // the payload carries no shard state, so both continuations must
    // end byte-identical to an uninterrupted unsharded run.
    SimConfig cfg = baseCfg();
    cfg.sampleInterval = 100;

    auto warmed = [&](std::uint32_t shards) {
        SimConfig c = cfg;
        c.shards = shards;
        auto net = std::make_unique<Network>(c);
        net->run(400);
        return net;
    };
    auto finish = [](Network& net) {
        net.setMeasuring(false);
        net.setTrafficEnabled(false);
        net.run(600);
        return captureSnapshot(net).payload;
    };

    // Uninterrupted unsharded baseline.
    auto base = warmed(1);
    const auto straight = finish(*base);

    // shards=4 -> snapshot -> shards=1 continuation.
    auto sharded = warmed(4);
    const Snapshot mid = captureSnapshot(*sharded);
    SimConfig c1 = cfg;
    c1.shards = 1;
    Network cont1(c1);
    ASSERT_EQ(restoreSnapshot(cont1, mid), "");
    const auto hopped41 = finish(cont1);

    // shards=1 -> snapshot -> shards=4 continuation.
    auto plain = warmed(1);
    const Snapshot mid1 = captureSnapshot(*plain);
    SimConfig c4 = cfg;
    c4.shards = 4;
    Network cont4(c4);
    ASSERT_EQ(restoreSnapshot(cont4, mid1), "");
    const auto hopped14 = finish(cont4);

    EXPECT_EQ(hopped41, straight);
    EXPECT_EQ(hopped14, straight);
}

TEST(Shard, ConfigKeyRoundTripsAndValidates)
{
    SimConfig cfg;
    EXPECT_EQ(cfg.shards, 0u);  // 0 = resolve via CRNET_SHARDS else 1.
    cfg.set("shards", "4");
    EXPECT_EQ(cfg.shards, 4u);
    cfg.shards = 2000;
    EXPECT_DEATH(cfg.validate(), "shards");
}

} // namespace
} // namespace crnet
