/**
 * @file
 * Tests for the named configuration presets: each must validate, be
 * discoverable, and actually run.
 */

#include <gtest/gtest.h>

#include "src/core/experiment.hh"
#include "src/core/presets.hh"

namespace crnet {
namespace {

TEST(Presets, AllRegisteredPresetsValidate)
{
    ASSERT_FALSE(allPresets().empty());
    for (const Preset& p : allPresets()) {
        SCOPED_TRACE(p.name);
        EXPECT_FALSE(p.name.empty());
        EXPECT_FALSE(p.description.empty());
        p.config.validate();
    }
}

TEST(Presets, NamesAreUnique)
{
    const auto& presets = allPresets();
    for (std::size_t i = 0; i < presets.size(); ++i)
        for (std::size_t j = i + 1; j < presets.size(); ++j)
            EXPECT_NE(presets[i].name, presets[j].name);
}

TEST(Presets, LookupRoundTrips)
{
    for (const Preset& p : allPresets()) {
        EXPECT_TRUE(presetExists(p.name));
        const SimConfig cfg = presetConfig(p.name);
        EXPECT_EQ(cfg.summary(), p.config.summary());
    }
    EXPECT_FALSE(presetExists("no_such_preset"));
}

TEST(Presets, UnknownNameIsFatal)
{
    EXPECT_DEATH(presetConfig("no_such_preset"), "unknown preset");
}

TEST(Presets, ConfigFromArgsAppliesPresetThenOverrides)
{
    const char* argv_c[] = {"prog", "preset=fcr_noisy", "k=4",
                            "load=0.05"};
    SimConfig cfg = configFromArgs(SimConfig{}, 4,
                                   const_cast<char**>(argv_c));
    EXPECT_EQ(cfg.protocol, ProtocolKind::Fcr);
    EXPECT_EQ(cfg.radixK, 4u);           // Override wins.
    EXPECT_DOUBLE_EQ(cfg.injectionRate, 0.05);
    EXPECT_GT(cfg.transientFaultRate, 0.0);  // From the preset.
}

TEST(Presets, ConfigFromArgsWithoutPresetActsLikeApplyArgs)
{
    const char* argv_c[] = {"prog", "k=6"};
    SimConfig cfg = configFromArgs(SimConfig{}, 2,
                                   const_cast<char**>(argv_c));
    EXPECT_EQ(cfg.radixK, 6u);
}

TEST(Presets, HeadlinePresetRunsHealthy)
{
    SimConfig cfg = presetConfig("cr_headline");
    cfg.injectionRate = 0.15;
    cfg.warmupCycles = 300;
    cfg.measureCycles = 1500;
    const RunResult r = runExperiment(cfg);
    EXPECT_TRUE(r.drained);
    EXPECT_FALSE(r.deadlocked);
    EXPECT_EQ(r.orderViolations, 0u);
}

TEST(Presets, FcrNoisyPresetKeepsIntegrity)
{
    SimConfig cfg = presetConfig("fcr_noisy");
    cfg.warmupCycles = 300;
    cfg.measureCycles = 1500;
    const RunResult r = runExperiment(cfg);
    EXPECT_GT(r.deliveredMeasured, 0u);
    EXPECT_EQ(r.corruptedDeliveries, 0u);
}

TEST(Presets, DeadlockDemoPresetActuallyDeadlocks)
{
    Network net(presetConfig("deadlock_demo"));
    bool deadlocked = false;
    for (Cycle i = 0; i < 20000 && !deadlocked; ++i) {
        net.tick();
        deadlocked = net.deadlocked();
    }
    EXPECT_TRUE(deadlocked);
}

} // namespace
} // namespace crnet
