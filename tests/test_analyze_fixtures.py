#!/usr/bin/env python3
"""Self-tests for tools/crnet_analyze.py.

Each directory under tests/analyze_fixtures/ is a miniature repository
(a src/ tree with one translation unit) with a planted property:

  clean       nothing wrong                       -> exit 0
  alloc       `new` reachable from a hot path     -> exit 1
  unordered   hash-order iteration from a
              result-affecting root               -> exit 1
  wallclock   steady_clock read, no shim          -> exit 1
  global      namespace-scope + function-local
              mutable state                       -> exit 1
  suppressed  same as alloc but CRNET_ALLOW'd
              with a reason                       -> exit 0
  transitive  violation three calls below root    -> exit 1
  badallow    CRNET_ALLOW with empty reason and
              with an unknown rule                -> exit 1
  telemetry_clock
              an allowed clock shim next to a raw
              clock read: only the raw read trips -> exit 1

The assertions pin the exit status AND the report lines (rule, file,
and the call chain for the propagating rules), so a regression in
either the detection or the chain reconstruction fails loudly.

Usage: test_analyze_fixtures.py <repo_root>
"""

import subprocess
import sys
from pathlib import Path


CASES = [
    ("clean", 0, []),
    ("alloc", 1, [
        "src/alloc.cc:12: alloc: operator new "
        "[chain: tick -> makeBuffer]",
    ]),
    ("unordered", 1, [
        "src/unordered.cc:19: unordered-iter: range-for over "
        "unordered container 'entries_' "
        "[chain: summarize -> Ledger::total]",
    ]),
    ("wallclock", 1, [
        "src/wallclock.cc:12: wallclock: steady_clock",
        "src/wallclock.cc:13: wallclock: steady_clock",
    ]),
    ("global", 1, [
        "src/global.cc:7: global-state: mutable namespace-scope "
        "state 'hiddenCounter'",
        "src/global.cc:12: global-state: function-local static state",
    ]),
    ("suppressed", 0, []),
    ("transitive", 1, [
        "src/transitive.cc:12: alloc: operator new "
        "[chain: tick -> middle -> lower -> leaf]",
    ]),
    ("badallow", 1, [
        'allow-missing-reason: CRNET_ALLOW("alloc") on makeBuffer '
        "has no reason string",
        "allow-missing-reason: CRNET_ALLOW with unknown rule "
        "'not-a-rule' on helper",
    ]),
    # The telemetry pattern: an annotated clock shim does not blanket
    # its file — a raw chrono read beside it must still be reported
    # (and only it: the shim itself stays clean).
    ("telemetry_clock", 1, [
        "src/telemetry_clock.cc:28: wallclock: steady_clock "
        "[chain: rawStamp]",
        " 1 violation(s)",
    ]),
]


def main() -> int:
    if len(sys.argv) != 2:
        print(f"usage: {sys.argv[0]} <repo_root>", file=sys.stderr)
        return 2
    root = Path(sys.argv[1]).resolve()
    analyzer = root / "tools" / "crnet_analyze.py"
    fixtures = root / "tests" / "analyze_fixtures"

    failures = 0
    for name, want_exit, want_lines in CASES:
        proc = subprocess.run(
            [sys.executable, str(analyzer), str(fixtures / name),
             "--frontend=internal"],
            capture_output=True, text=True)
        problems = []
        if proc.returncode != want_exit:
            problems.append(
                f"exit {proc.returncode}, expected {want_exit}")
        for line in want_lines:
            if line not in proc.stdout:
                problems.append(f"missing report line: {line}")
        if want_exit == 0:
            # A clean fixture must report exactly zero violations.
            if " 0 violation(s)" not in proc.stdout:
                problems.append("expected a 0-violation summary")
        if problems:
            failures += 1
            print(f"FAIL {name}")
            for p in problems:
                print(f"  {p}")
            print("  --- analyzer stdout ---")
            for out_line in proc.stdout.splitlines():
                print(f"  {out_line}")
            if proc.stderr.strip():
                print("  --- analyzer stderr ---")
                for err_line in proc.stderr.splitlines():
                    print(f"  {err_line}")
        else:
            print(f"ok   {name}")

    if failures:
        print(f"{failures} fixture case(s) failed")
        return 1
    print(f"all {len(CASES)} fixture cases passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
