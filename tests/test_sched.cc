/**
 * @file
 * Scheduler-equivalence suite: SchedulerKind::Active and
 * SchedulerKind::Event must be bit-identical to SchedulerKind::Sweep
 * on every observable output — run summaries, time series, heatmaps,
 * trace files, campaign aggregates — across protocols, timeout
 * schemes, channel depths and fault regimes. Any divergence means the
 * active scheduler under-woke a component or the event scheduler
 * skipped a cycle that wasn't quiet (see docs/PERFORMANCE.md for the
 * wakeup and skip-ahead rules).
 */

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/experiment.hh"
#include "src/fault/campaign.hh"
#include "src/sim/trace.hh"

namespace crnet {
namespace {

SimConfig
baseCfg()
{
    SimConfig cfg;
    cfg.radixK = 4;
    cfg.dimensionsN = 2;
    cfg.numVcs = 2;
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = ProtocolKind::Cr;
    cfg.timeout = 8;
    cfg.injectionRate = 0.1;
    cfg.messageLength = 8;
    cfg.warmupCycles = 300;
    cfg.measureCycles = 1500;
    cfg.drainCycles = 30000;
    cfg.seed = 11;
    return cfg;
}

/** Field-by-field RunResult comparison (excluding wall clock). */
void
expectSameResult(const RunResult& a, const RunResult& b)
{
    EXPECT_EQ(a.offeredLoad, b.offeredLoad);
    EXPECT_EQ(a.acceptedThroughput, b.acceptedThroughput);
    EXPECT_EQ(a.avgLatency, b.avgLatency);
    EXPECT_EQ(a.netLatency, b.netLatency);
    EXPECT_EQ(a.p50Latency, b.p50Latency);
    EXPECT_EQ(a.p95Latency, b.p95Latency);
    EXPECT_EQ(a.p99Latency, b.p99Latency);
    EXPECT_EQ(a.maxLatency, b.maxLatency);
    EXPECT_EQ(a.latencyStddev, b.latencyStddev);
    EXPECT_EQ(a.avgAttempts, b.avgAttempts);
    EXPECT_EQ(a.killsPerMessage, b.killsPerMessage);
    EXPECT_EQ(a.padOverhead, b.padOverhead);
    EXPECT_EQ(a.measuredMessages, b.measuredMessages);
    EXPECT_EQ(a.deliveredMeasured, b.deliveredMeasured);
    EXPECT_EQ(a.totalKills, b.totalKills);
    EXPECT_EQ(a.pathWideKills, b.pathWideKills);
    EXPECT_EQ(a.escapeAllocations, b.escapeAllocations);
    EXPECT_EQ(a.misrouteHops, b.misrouteHops);
    EXPECT_EQ(a.corruptions, b.corruptions);
    EXPECT_EQ(a.corruptedDeliveries, b.corruptedDeliveries);
    EXPECT_EQ(a.orderViolations, b.orderViolations);
    EXPECT_EQ(a.duplicateDeliveries, b.duplicateDeliveries);
    EXPECT_EQ(a.refusals, b.refusals);
    EXPECT_EQ(a.deadlocked, b.deadlocked);
    EXPECT_EQ(a.drained, b.drained);
    EXPECT_EQ(a.cyclesRun, b.cyclesRun);
    EXPECT_EQ(a.latencyOverflow, b.latencyOverflow);
    EXPECT_EQ(a.flitEvents, b.flitEvents);
    EXPECT_EQ(a.timeseries, b.timeseries);
    ASSERT_EQ(a.heatmap != nullptr, b.heatmap != nullptr);
    if (a.heatmap != nullptr) {
        EXPECT_EQ(a.heatmap->occupancyIntegral,
                  b.heatmap->occupancyIntegral);
        EXPECT_EQ(a.heatmap->blockedCycles, b.heatmap->blockedCycles);
        EXPECT_EQ(a.heatmap->forwarded, b.heatmap->forwarded);
    }
}

/** Run `cfg` under all three schedulers; require identical results. */
void
expectSchedulersAgree(SimConfig cfg)
{
    cfg.sched = SchedulerKind::Active;
    const RunResult active = runExperiment(cfg);
    cfg.sched = SchedulerKind::Sweep;
    const RunResult sweep = runExperiment(cfg);
    cfg.sched = SchedulerKind::Event;
    const RunResult event = runExperiment(cfg);
    expectSameResult(active, sweep);
    expectSameResult(event, sweep);
    // A run that moved no flits proves nothing.
    EXPECT_GT(active.flitEvents, 0u);
}

TEST(Sched, ActiveMatchesSweepCrLowLoad)
{
    SimConfig cfg = baseCfg();
    cfg.injectionRate = 0.05;
    cfg.sampleInterval = 100;
    cfg.heatmapEnabled = true;
    expectSchedulersAgree(cfg);
}

TEST(Sched, ActiveMatchesSweepCrMidLoad)
{
    SimConfig cfg = baseCfg();
    cfg.injectionRate = 0.25;
    cfg.sampleInterval = 100;
    expectSchedulersAgree(cfg);
}

TEST(Sched, ActiveMatchesSweepFcrWithTransientFaults)
{
    SimConfig cfg = baseCfg();
    cfg.protocol = ProtocolKind::Fcr;
    cfg.transientFaultRate = 2e-4;
    cfg.injectionRate = 0.15;
    expectSchedulersAgree(cfg);
}

TEST(Sched, ActiveMatchesSweepPathWideScheme)
{
    SimConfig cfg = baseCfg();
    cfg.timeoutScheme = TimeoutScheme::PathWide;
    cfg.timeout = 16;
    expectSchedulersAgree(cfg);
}

TEST(Sched, ActiveMatchesSweepIminScheme)
{
    SimConfig cfg = baseCfg();
    cfg.timeoutScheme = TimeoutScheme::SourceImin;
    expectSchedulersAgree(cfg);
}

TEST(Sched, ActiveMatchesSweepDeepChannels)
{
    // channelLatency=4 needs 6 buckets, rounded up to 8: exercises
    // the power-of-two wave indexing on a non-trivial depth.
    SimConfig cfg = baseCfg();
    cfg.channelLatency = 4;
    cfg.timeout = 32;
    expectSchedulersAgree(cfg);
}

TEST(Sched, ActiveMatchesSweepDynamicFaults)
{
    SimConfig cfg = baseCfg();
    cfg.protocol = ProtocolKind::Fcr;
    cfg.dynamicLinkKills = 2;
    cfg.linkRepairAfter = 800;
    cfg.maxRetries = 40;
    cfg.injectionRate = 0.08;
    cfg.sampleInterval = 200;
    expectSchedulersAgree(cfg);
}

TEST(Sched, ActiveMatchesSweepCampaign)
{
    CampaignConfig cc;
    cc.base = baseCfg();
    cc.base.protocol = ProtocolKind::Fcr;
    cc.base.dynamicLinkKills = 1;
    cc.base.maxRetries = 40;
    cc.base.injectionRate = 0.08;
    cc.trials = 3;
    cc.seedBase = 7;

    cc.base.sched = SchedulerKind::Active;
    std::vector<TrialOutcome> activeTrials;
    const CampaignSummary a = runCampaign(cc, &activeTrials);
    cc.base.sched = SchedulerKind::Sweep;
    std::vector<TrialOutcome> sweepTrials;
    const CampaignSummary s = runCampaign(cc, &sweepTrials);
    cc.base.sched = SchedulerKind::Event;
    std::vector<TrialOutcome> eventTrials;
    const CampaignSummary e = runCampaign(cc, &eventTrials);

    EXPECT_EQ(a.trials, s.trials);
    EXPECT_EQ(a.accountedTrials, s.accountedTrials);
    EXPECT_EQ(a.deadlockedTrials, s.deadlockedTrials);
    EXPECT_EQ(a.accepted, s.accepted);
    EXPECT_EQ(a.delivered, s.delivered);
    EXPECT_EQ(a.refused, s.refused);
    EXPECT_EQ(a.pending, s.pending);
    EXPECT_EQ(a.duplicates, s.duplicates);
    EXPECT_EQ(a.faultEvents, s.faultEvents);
    EXPECT_EQ(a.deliveryRate, s.deliveryRate);
    EXPECT_EQ(a.meanPreFaultLatency, s.meanPreFaultLatency);
    EXPECT_EQ(a.meanPostFaultLatency, s.meanPostFaultLatency);
    EXPECT_EQ(a.meanRecoveryCycles, s.meanRecoveryCycles);
    EXPECT_EQ(a.maxRecoveryCycles, s.maxRecoveryCycles);
    EXPECT_EQ(a.flitEvents, s.flitEvents);

    EXPECT_EQ(e.trials, s.trials);
    EXPECT_EQ(e.accountedTrials, s.accountedTrials);
    EXPECT_EQ(e.deadlockedTrials, s.deadlockedTrials);
    EXPECT_EQ(e.accepted, s.accepted);
    EXPECT_EQ(e.delivered, s.delivered);
    EXPECT_EQ(e.refused, s.refused);
    EXPECT_EQ(e.pending, s.pending);
    EXPECT_EQ(e.duplicates, s.duplicates);
    EXPECT_EQ(e.faultEvents, s.faultEvents);
    EXPECT_EQ(e.deliveryRate, s.deliveryRate);
    EXPECT_EQ(e.meanPreFaultLatency, s.meanPreFaultLatency);
    EXPECT_EQ(e.meanPostFaultLatency, s.meanPostFaultLatency);
    EXPECT_EQ(e.meanRecoveryCycles, s.meanRecoveryCycles);
    EXPECT_EQ(e.maxRecoveryCycles, s.maxRecoveryCycles);
    EXPECT_EQ(e.flitEvents, s.flitEvents);

    ASSERT_EQ(activeTrials.size(), sweepTrials.size());
    ASSERT_EQ(eventTrials.size(), sweepTrials.size());
    for (std::size_t i = 0; i < activeTrials.size(); ++i) {
        EXPECT_EQ(activeTrials[i].delivered, sweepTrials[i].delivered);
        EXPECT_EQ(activeTrials[i].cyclesRun, sweepTrials[i].cyclesRun);
        EXPECT_EQ(activeTrials[i].flitEvents,
                  sweepTrials[i].flitEvents);
        EXPECT_EQ(activeTrials[i].receiverTimeouts,
                  sweepTrials[i].receiverTimeouts);
        EXPECT_EQ(eventTrials[i].delivered, sweepTrials[i].delivered);
        EXPECT_EQ(eventTrials[i].cyclesRun, sweepTrials[i].cyclesRun);
        EXPECT_EQ(eventTrials[i].flitEvents,
                  sweepTrials[i].flitEvents);
        EXPECT_EQ(eventTrials[i].receiverTimeouts,
                  sweepTrials[i].receiverTimeouts);
    }
}

TEST(Sched, TraceFilesAreByteIdentical)
{
    auto slurp = [](const std::string& path) {
        std::ifstream in(path);
        std::ostringstream os;
        os << in.rdbuf();
        return os.str();
    };
    auto runTraced = [&](SchedulerKind k, const std::string& name) {
        SimConfig cfg = baseCfg();
        cfg.sched = k;
        cfg.injectionRate = 0.12;
        cfg.warmupCycles = 100;
        cfg.measureCycles = 600;
        cfg.traceFile = ::testing::TempDir() + "crnet_sched_" + name;
        (void)runExperiment(cfg);
        const std::string text = slurp(cfg.traceFile + ".jsonl");
        std::remove((cfg.traceFile + ".jsonl").c_str());
        std::remove((cfg.traceFile + ".json").c_str());
        return text;
    };
    const std::string active =
        runTraced(SchedulerKind::Active, "active");
    const std::string sweep = runTraced(SchedulerKind::Sweep, "sweep");
    const std::string event = runTraced(SchedulerKind::Event, "event");
    EXPECT_FALSE(active.empty());
    EXPECT_EQ(active, sweep);
    EXPECT_EQ(event, sweep);
}

TEST(Sched, ActiveIsDeterministicAcrossJobs)
{
    SimConfig cfg = baseCfg();
    cfg.sched = SchedulerKind::Active;
    const std::vector<double> loads{0.05, 0.1, 0.2};
    cfg.jobs = 1;
    const auto seq = sweepLoads(cfg, loads);
    cfg.jobs = 4;
    const auto par = sweepLoads(cfg, loads);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i)
        expectSameResult(seq[i], par[i]);
}

TEST(Sched, EventIsDeterministicAcrossJobs)
{
    SimConfig cfg = baseCfg();
    cfg.sched = SchedulerKind::Event;
    const std::vector<double> loads{0.05, 0.1, 0.2};
    cfg.jobs = 1;
    const auto seq = sweepLoads(cfg, loads);
    cfg.jobs = 4;
    const auto par = sweepLoads(cfg, loads);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i)
        expectSameResult(seq[i], par[i]);
}

TEST(Sched, ExplicitSendDeliversAtSameCycle)
{
    auto deliveryCycle = [](SchedulerKind k) {
        SimConfig cfg = baseCfg();
        cfg.sched = k;
        Network net(cfg);
        net.setTrafficEnabled(false);
        const MsgId id = net.sendMessage(0, 15, 6);
        EXPECT_NE(id, kInvalidMsg);
        for (Cycle i = 0; i < 500 && !net.isDelivered(id); ++i)
            net.run(1);
        const DeliveredMessage* rec = net.deliveryRecord(id);
        EXPECT_NE(rec, nullptr);
        return rec != nullptr ? rec->deliveredAt : kNeverCycle;
    };
    const Cycle active = deliveryCycle(SchedulerKind::Active);
    const Cycle sweep = deliveryCycle(SchedulerKind::Sweep);
    const Cycle event = deliveryCycle(SchedulerKind::Event);
    EXPECT_NE(active, kNeverCycle);
    EXPECT_EQ(active, sweep);
    EXPECT_EQ(event, sweep);
}

TEST(Sched, EventSkipsQuietSpansAndProbesLingeringRouters)
{
    SimConfig cfg = baseCfg();
    cfg.sched = SchedulerKind::Event;
    Network net(cfg);
    net.setTrafficEnabled(false);

    // Nothing is in flight: the whole span is one skip.
    net.run(64);
    EXPECT_EQ(net.quietCyclesSkipped(), 64u);

    // One explicit message wakes the path; after delivery the routers
    // it crossed linger awake until probed idle. The eager probe in
    // the quiet-entry check must clear them immediately — not strand
    // them until a kIdleProbePeriod boundary — so nearly the whole
    // remainder of the run is skipped.
    const MsgId id = net.sendMessage(0, 15, 6);
    ASSERT_NE(id, kInvalidMsg);
    const Cycle before = net.quietCyclesSkipped();
    net.run(1000);
    EXPECT_TRUE(net.isDelivered(id));
    const DeliveredMessage* rec = net.deliveryRecord(id);
    ASSERT_NE(rec, nullptr);
    // Every cycle past delivery plus a short credit/teardown settling
    // tail must be skipped (100 cycles is generous slack for the
    // tail); without the eager idle probe the routers the worm
    // crossed would pin the network busy to the end of the run.
    const Cycle end = 64 + 1000;
    EXPECT_GE(net.quietCyclesSkipped() - before,
              end - rec->deliveredAt - 100);
}

TEST(Sched, DeadlockDetectedAtSameCycleAcrossSchedulers)
{
    // Fully adaptive wormhole routing with no protocol and a single
    // VC deadlocks on a torus under load (the paper's motivating
    // failure). The watchdog must trip at the same cycle under every
    // scheduler: the event scheduler's quiet-span limit clamps at the
    // threshold crossing rather than skipping over it.
    auto deadlockCycle = [](SchedulerKind k) {
        SimConfig cfg = baseCfg();
        cfg.sched = k;
        cfg.protocol = ProtocolKind::None;
        cfg.radixK = 8;
        cfg.numVcs = 1;
        cfg.bufferDepth = 2;
        cfg.injectionRate = 0.8;
        cfg.messageLength = 32;
        cfg.timeout = 32;
        cfg.deadlockThreshold = 500;
        Network net(cfg);
        while (!net.deadlocked() && net.now() < 30000)
            net.run(1);
        return net.now();
    };
    const Cycle sweep = deadlockCycle(SchedulerKind::Sweep);
    const Cycle active = deadlockCycle(SchedulerKind::Active);
    const Cycle event = deadlockCycle(SchedulerKind::Event);
    ASSERT_LT(sweep, 30000u);  // The run really deadlocked.
    EXPECT_EQ(active, sweep);
    EXPECT_EQ(event, sweep);
}

TEST(Sched, ConfigRoundTripsAndDefaultsToActive)
{
    SimConfig cfg;
    EXPECT_EQ(cfg.sched, SchedulerKind::Active);
    cfg.set("sched", "sweep");
    EXPECT_EQ(cfg.sched, SchedulerKind::Sweep);
    cfg.set("sched", "event");
    EXPECT_EQ(cfg.sched, SchedulerKind::Event);
    cfg.set("sched", "active");
    EXPECT_EQ(cfg.sched, SchedulerKind::Active);
    EXPECT_EQ(toString(SchedulerKind::Sweep), "sweep");
    EXPECT_EQ(toString(SchedulerKind::Active), "active");
    EXPECT_EQ(toString(SchedulerKind::Event), "event");
}

} // namespace
} // namespace crnet
