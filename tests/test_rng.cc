/**
 * @file
 * Unit tests for the xoshiro256** generator wrapper.
 */

#include <gtest/gtest.h>

#include "src/sim/rng.hh"

namespace crnet {
namespace {

TEST(Rng, DeterministicForSameSeed)
{
    Rng a(42), b(42);
    for (int i = 0; i < 100; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiverge)
{
    Rng a(1), b(2);
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.next() == b.next();
    EXPECT_LT(equal, 4);
}

TEST(Rng, BelowStaysInRange)
{
    Rng r(7);
    for (int i = 0; i < 10000; ++i)
        EXPECT_LT(r.below(13), 13u);
}

TEST(Rng, BelowCoversAllResidues)
{
    Rng r(11);
    bool seen[7] = {};
    for (int i = 0; i < 1000; ++i)
        seen[r.below(7)] = true;
    for (bool s : seen)
        EXPECT_TRUE(s);
}

TEST(Rng, BetweenInclusiveBounds)
{
    Rng r(3);
    bool lo = false, hi = false;
    for (int i = 0; i < 5000; ++i) {
        const auto v = r.between(-2, 2);
        EXPECT_GE(v, -2);
        EXPECT_LE(v, 2);
        lo |= v == -2;
        hi |= v == 2;
    }
    EXPECT_TRUE(lo);
    EXPECT_TRUE(hi);
}

TEST(Rng, UniformInUnitInterval)
{
    Rng r(5);
    double sum = 0.0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        const double u = r.uniform();
        ASSERT_GE(u, 0.0);
        ASSERT_LT(u, 1.0);
        sum += u;
    }
    EXPECT_NEAR(sum / n, 0.5, 0.01);
}

TEST(Rng, ChanceExtremes)
{
    Rng r(9);
    for (int i = 0; i < 100; ++i) {
        EXPECT_FALSE(r.chance(0.0));
        EXPECT_TRUE(r.chance(1.0));
    }
}

TEST(Rng, ChanceMatchesProbability)
{
    Rng r(13);
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i)
        hits += r.chance(0.25);
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.25, 0.01);
}

TEST(Rng, ForkIsIndependent)
{
    Rng a(21);
    Rng child = a.fork();
    int equal = 0;
    for (int i = 0; i < 64; ++i)
        equal += a.next() == child.next();
    EXPECT_LT(equal, 4);
}

TEST(Rng, StateRoundTripResumesExactly)
{
    Rng a(77);
    for (int i = 0; i < 1000; ++i)
        a.next();
    const auto saved = a.state();
    Rng b(1);  // Different seed: setState must fully overwrite.
    b.setState(saved);
    EXPECT_EQ(a, b);
    for (int i = 0; i < 1000; ++i)
        EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, StateCapturesMidstreamPosition)
{
    Rng a(123);
    Rng b(123);
    a.next();
    EXPECT_NE(a.state(), b.state());
    b.next();
    EXPECT_EQ(a.state(), b.state());
}

TEST(Rng, EqualityTracksStream)
{
    Rng a(5), b(5);
    EXPECT_EQ(a, b);
    a.next();
    EXPECT_FALSE(a == b);
    b.next();
    EXPECT_EQ(a, b);
}

TEST(Rng, SetStateAffectsDerivedDraws)
{
    // Every draw type (next, below, uniform, chance, fork) must
    // resume identically, not just the raw 64-bit stream.
    Rng a(31);
    for (int i = 0; i < 17; ++i)
        a.next();
    Rng b(2);
    b.setState(a.state());
    EXPECT_EQ(a.below(1000), b.below(1000));
    EXPECT_EQ(a.uniform(), b.uniform());
    EXPECT_EQ(a.chance(0.3), b.chance(0.3));
    Rng fa = a.fork();
    Rng fb = b.fork();
    EXPECT_EQ(fa, fb);
    EXPECT_EQ(fa.next(), fb.next());
}

} // namespace
} // namespace crnet
