/**
 * @file
 * Unit tests for SimConfig parsing, validation and round trips.
 */

#include <gtest/gtest.h>

#include "src/sim/config.hh"

namespace crnet {
namespace {

TEST(Config, DefaultsValidate)
{
    SimConfig cfg;
    cfg.validate();  // Must not call fatal().
    EXPECT_EQ(cfg.numNodes(), 256u);  // 16-ary 2-cube.
}

TEST(Config, NumNodesScales)
{
    SimConfig cfg;
    cfg.radixK = 4;
    cfg.dimensionsN = 3;
    EXPECT_EQ(cfg.numNodes(), 64u);
}

TEST(Config, SetParsesEveryScalarKind)
{
    SimConfig cfg;
    cfg.set("k", "8").set("n", "3").set("vcs", "4")
        .set("buffer_depth", "4").set("load", "0.25")
        .set("msg_len", "32").set("timeout", "64").set("seed", "77")
        .set("pattern", "transpose").set("routing", "duato")
        .set("protocol", "fcr").set("topology", "mesh")
        .set("timeout_scheme", "path_wide").set("backoff", "static")
        .set("fault_rate", "0.001");
    EXPECT_EQ(cfg.radixK, 8u);
    EXPECT_EQ(cfg.dimensionsN, 3u);
    EXPECT_EQ(cfg.numVcs, 4u);
    EXPECT_EQ(cfg.bufferDepth, 4u);
    EXPECT_DOUBLE_EQ(cfg.injectionRate, 0.25);
    EXPECT_EQ(cfg.messageLength, 32u);
    EXPECT_EQ(cfg.timeout, 64u);
    EXPECT_EQ(cfg.seed, 77u);
    EXPECT_EQ(cfg.pattern, TrafficPattern::Transpose);
    EXPECT_EQ(cfg.routing, RoutingKind::Duato);
    EXPECT_EQ(cfg.protocol, ProtocolKind::Fcr);
    EXPECT_EQ(cfg.topology, TopologyKind::Mesh);
    EXPECT_EQ(cfg.timeoutScheme, TimeoutScheme::PathWide);
    EXPECT_EQ(cfg.backoff, BackoffScheme::Static);
    EXPECT_DOUBLE_EQ(cfg.transientFaultRate, 0.001);
}

TEST(Config, UnknownKeyIsFatal)
{
    SimConfig cfg;
    EXPECT_DEATH(cfg.set("nonsense", "1"), "unknown config key");
}

TEST(Config, BadNumberIsFatal)
{
    SimConfig cfg;
    EXPECT_DEATH(cfg.set("k", "abc"), "expected integer");
    EXPECT_DEATH(cfg.set("load", "xyz"), "expected number");
}

TEST(Config, TurnModelOnTorusRejected)
{
    SimConfig cfg;
    cfg.topology = TopologyKind::Torus;
    cfg.routing = RoutingKind::WestFirst;
    EXPECT_DEATH(cfg.validate(), "deadlock-free only on meshes");
}

TEST(Config, DorTorusWithoutVcsAndWithoutCrRejected)
{
    SimConfig cfg;
    cfg.topology = TopologyKind::Torus;
    cfg.routing = RoutingKind::DimensionOrder;
    cfg.protocol = ProtocolKind::None;
    cfg.numVcs = 1;
    EXPECT_DEATH(cfg.validate(), "dateline");
}

TEST(Config, DorTorusSingleVcUnderCrAccepted)
{
    SimConfig cfg;
    cfg.topology = TopologyKind::Torus;
    cfg.routing = RoutingKind::DimensionOrder;
    cfg.protocol = ProtocolKind::Cr;
    cfg.numVcs = 1;
    cfg.validate();
}

TEST(Config, DuatoNeedsEscapePlusAdaptive)
{
    SimConfig cfg;
    cfg.routing = RoutingKind::Duato;
    cfg.numVcs = 2;  // Torus needs 3.
    EXPECT_DEATH(cfg.validate(), "Duato");
    cfg.numVcs = 3;
    cfg.validate();
    cfg.topology = TopologyKind::Mesh;
    cfg.numVcs = 2;  // Mesh: 1 escape + 1 adaptive.
    cfg.validate();
}

TEST(Config, ApplyArgsParsesArgv)
{
    SimConfig cfg;
    const char* argv_c[] = {"prog", "k=4", "load=0.3"};
    cfg.applyArgs(3, const_cast<char**>(argv_c));
    EXPECT_EQ(cfg.radixK, 4u);
    EXPECT_DOUBLE_EQ(cfg.injectionRate, 0.3);
}

TEST(Config, EnumStringRoundTrips)
{
    for (auto k : {RoutingKind::DimensionOrder,
                   RoutingKind::MinimalAdaptive, RoutingKind::Duato,
                   RoutingKind::WestFirst, RoutingKind::NegativeFirst,
                   RoutingKind::PlanarAdaptive})
        EXPECT_EQ(routingFromString(toString(k)), k);
    for (auto k : {ProtocolKind::None, ProtocolKind::Cr,
                   ProtocolKind::Fcr})
        EXPECT_EQ(protocolFromString(toString(k)), k);
    for (auto k : {TrafficPattern::Uniform,
                   TrafficPattern::BitComplement,
                   TrafficPattern::Transpose,
                   TrafficPattern::BitReversal, TrafficPattern::Hotspot,
                   TrafficPattern::Neighbor, TrafficPattern::Tornado})
        EXPECT_EQ(patternFromString(toString(k)), k);
    for (auto k : {TimeoutScheme::SourceStall, TimeoutScheme::SourceImin,
                   TimeoutScheme::PathWide, TimeoutScheme::DropAtBlock})
        EXPECT_EQ(timeoutSchemeFromString(toString(k)), k);
}

TEST(Config, SummaryMentionsKeyFields)
{
    SimConfig cfg;
    const std::string s = cfg.summary();
    EXPECT_NE(s.find("torus"), std::string::npos);
    EXPECT_NE(s.find("cr"), std::string::npos);
}

} // namespace
} // namespace crnet
