/**
 * @file
 * Unit tests for dimension-order routing and its dateline VC classes.
 */

#include <gtest/gtest.h>

#include "src/routing/routing.hh"

namespace crnet {
namespace {

Flit
headTo(NodeId dst)
{
    Flit f;
    f.type = FlitType::Head;
    f.msg = 1;
    f.dst = dst;
    return f;
}

class DorTorusTest : public ::testing::Test
{
  protected:
    DorTorusTest()
        : topo(8, 2), faults(topo, 0.0, Rng(1)),
          dor(topo, faults, 2), rng(2)
    {
    }

    TorusTopology topo;
    FaultModel faults;
    DorRouting dor;
    Rng rng;
};

TEST_F(DorTorusTest, CorrectsDimensionZeroFirst)
{
    // From 0 to (3, 2): must go +x first.
    const Flit h = headTo(3 + 2 * 8);
    EXPECT_EQ(dor.dorPort(0, h), makePort(0, Direction::Plus));
    // From (3, 0) to (3, 2): x done, go +y.
    EXPECT_EQ(dor.dorPort(3, h), makePort(1, Direction::Plus));
}

TEST_F(DorTorusTest, PicksShorterWayAround)
{
    EXPECT_EQ(dor.dorPort(0, headTo(6)), makePort(0, Direction::Minus));
    EXPECT_EQ(dor.dorPort(0, headTo(2)), makePort(0, Direction::Plus));
    // Tie (distance 4 each way) goes Plus.
    EXPECT_EQ(dor.dorPort(0, headTo(4)), makePort(0, Direction::Plus));
}

TEST_F(DorTorusTest, CandidatesFollowDatelineClasses)
{
    // 0 -> 2 in +x never crosses the dateline: class 1 (VC 1 of 2).
    std::vector<Candidate> out;
    dor.candidates(0, headTo(2), out, rng);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].port, makePort(0, Direction::Plus));
    EXPECT_EQ(out[0].vc, 1u);

    // 6 -> 1 in +x crosses 7->0 later: class 0 until the crossing.
    out.clear();
    dor.candidates(6, headTo(1), out, rng);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].vc, 0u);

    // At 7 the next +x hop is the dateline itself: class 1.
    out.clear();
    dor.candidates(7, headTo(1), out, rng);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].vc, 1u);

    // Past the dateline (at 0, heading to 1): class 1.
    out.clear();
    dor.candidates(0, headTo(1), out, rng);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].vc, 1u);
}

TEST_F(DorTorusTest, MinusDirectionDatelineSymmetric)
{
    // 1 -> 6 in -x crosses 0 -> 7 later: class 0 at node 1.
    std::vector<Candidate> out;
    dor.candidates(1, headTo(6), out, rng);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].port, makePort(0, Direction::Minus));
    EXPECT_EQ(out[0].vc, 0u);

    // At 0 the -x hop crosses: class 1.
    out.clear();
    dor.candidates(0, headTo(6), out, rng);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].vc, 1u);
}

TEST_F(DorTorusTest, DeadDorLinkYieldsNoCandidates)
{
    faults.killDirectedLink(0, makePort(0, Direction::Plus));
    std::vector<Candidate> out;
    dor.candidates(0, headTo(2), out, rng);
    EXPECT_TRUE(out.empty());
}

TEST_F(DorTorusTest, SelfDeadlockFreeWithTwoVcs)
{
    EXPECT_TRUE(dor.selfDeadlockFree());
    DorRouting one_vc(topo, faults, 1);
    EXPECT_FALSE(one_vc.selfDeadlockFree());
}

TEST(DorLanes, FourVcsSplitTwoPerClass)
{
    TorusTopology topo(8, 2);
    FaultModel faults(topo, 0.0, Rng(1));
    DorRouting dor(topo, faults, 4);
    Rng rng(3);
    std::vector<Candidate> out;
    // Never-crossing path: class 1 lanes are VCs {2, 3}.
    dor.candidates(0, [] {
        Flit f;
        f.type = FlitType::Head;
        f.dst = 2;
        return f;
    }(), out, rng);
    ASSERT_EQ(out.size(), 2u);
    for (const Candidate& c : out)
        EXPECT_TRUE(c.vc == 2 || c.vc == 3);
}

TEST(DorMesh, AllVcsAreLanes)
{
    MeshTopology topo(8, 2);
    FaultModel faults(topo, 0.0, Rng(1));
    DorRouting dor(topo, faults, 3);
    EXPECT_TRUE(dor.selfDeadlockFree());
    Rng rng(4);
    std::vector<Candidate> out;
    Flit h;
    h.type = FlitType::Head;
    h.dst = 5;
    dor.candidates(0, h, out, rng);
    EXPECT_EQ(out.size(), 3u);
}

TEST(DorMesh, NeverRoutesOffTheEdge)
{
    MeshTopology topo(4, 2);
    FaultModel faults(topo, 0.0, Rng(1));
    DorRouting dor(topo, faults, 1);
    Rng rng(5);
    for (NodeId src = 0; src < topo.numNodes(); ++src) {
        for (NodeId dst = 0; dst < topo.numNodes(); ++dst) {
            if (src == dst)
                continue;
            Flit h;
            h.type = FlitType::Head;
            h.dst = dst;
            std::vector<Candidate> out;
            dor.candidates(src, h, out, rng);
            ASSERT_EQ(out.size(), 1u);
            EXPECT_NE(topo.neighbor(src, out[0].port), kInvalidNode);
        }
    }
}

TEST(DorPath, FollowingDorReachesDestinationMinimally)
{
    TorusTopology topo(8, 2);
    FaultModel faults(topo, 0.0, Rng(1));
    DorRouting dor(topo, faults, 2);
    for (NodeId src = 0; src < topo.numNodes(); src += 7) {
        for (NodeId dst = 0; dst < topo.numNodes(); dst += 5) {
            if (src == dst)
                continue;
            Flit h;
            h.type = FlitType::Head;
            h.dst = dst;
            NodeId at = src;
            std::uint32_t hops = 0;
            while (at != dst) {
                const PortId p = dor.dorPort(at, h);
                at = topo.neighbor(at, p);
                ASSERT_LE(++hops, topo.distance(src, dst));
            }
            EXPECT_EQ(hops, topo.distance(src, dst));
        }
    }
}

} // namespace
} // namespace crnet
