/**
 * @file
 * End-to-end integration tests of the assembled network: single
 * messages, pipelining, multiple concurrent messages, quiescence.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "src/core/network.hh"
#include "src/nic/padding.hh"

namespace crnet {
namespace {

SimConfig
smallTorusCr()
{
    SimConfig cfg;
    cfg.topology = TopologyKind::Torus;
    cfg.radixK = 4;
    cfg.dimensionsN = 2;
    cfg.numVcs = 1;
    cfg.bufferDepth = 2;
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = ProtocolKind::Cr;
    cfg.injectionRate = 0.0;
    return cfg;
}

/** Run until a message is delivered or `cap` cycles pass. */
bool
runUntilDelivered(Network& net, MsgId id, Cycle cap)
{
    for (Cycle i = 0; i < cap && !net.isDelivered(id); ++i)
        net.tick();
    return net.isDelivered(id);
}

TEST(NetworkBasic, SingleMessageIsDelivered)
{
    SimConfig cfg = smallTorusCr();
    Network net(cfg);
    net.setTrafficEnabled(false);
    const MsgId id = net.sendMessage(0, 5, 8);
    ASSERT_NE(id, kInvalidMsg);
    EXPECT_TRUE(runUntilDelivered(net, id, 500));
}

TEST(NetworkBasic, DeliveryRecordFieldsAreConsistent)
{
    SimConfig cfg = smallTorusCr();
    Network net(cfg);
    net.setTrafficEnabled(false);
    const MsgId id = net.sendMessage(1, 10, 8);
    ASSERT_TRUE(runUntilDelivered(net, id, 500));
    const DeliveredMessage* d = net.deliveryRecord(id);
    ASSERT_NE(d, nullptr);
    EXPECT_EQ(d->src, 1u);
    EXPECT_EQ(d->dst, 10u);
    EXPECT_EQ(d->payloadLen, 8u);
    EXPECT_EQ(d->attempts, 1u);
    EXPECT_FALSE(d->corrupted);
    EXPECT_GT(d->deliveredAt, d->createdAt);
    EXPECT_GE(d->headInjectedAt, d->createdAt);
}

TEST(NetworkBasic, ZeroLoadLatencyTracksDistanceAndLength)
{
    // Head needs ~1 cycle/hop through injection, network and ejection
    // channels; the tail follows wireLen flits behind. Allow slack
    // for per-router pipelining but require the right order of
    // magnitude and monotonicity in distance.
    SimConfig cfg = smallTorusCr();
    Network net(cfg);
    net.setTrafficEnabled(false);

    const NodeId near = 1;   // 1 hop from node 0.
    const NodeId far = 10;   // (2,2): 4 hops from node 0.
    const MsgId m1 = net.sendMessage(0, near, 4);
    ASSERT_TRUE(runUntilDelivered(net, m1, 500));
    const Cycle lat1 =
        net.deliveryRecord(m1)->deliveredAt -
        net.deliveryRecord(m1)->createdAt;

    const MsgId m2 = net.sendMessage(0, far, 4);
    ASSERT_TRUE(runUntilDelivered(net, m2, 500));
    const Cycle lat2 =
        net.deliveryRecord(m2)->deliveredAt -
        net.deliveryRecord(m2)->createdAt;

    EXPECT_GT(lat2, lat1);
    // Zero-load bound: hops + wire length + per-hop pipeline slack.
    const std::uint32_t wire =
        wireLength(ProtocolKind::Cr, 4, 4, cfg.bufferDepth,
                   cfg.padSlack);
    EXPECT_LE(lat2, 3 * (4 + wire) + 20);
}

TEST(NetworkBasic, ManyConcurrentMessagesAllArrive)
{
    SimConfig cfg = smallTorusCr();
    Network net(cfg);
    net.setTrafficEnabled(false);
    std::vector<MsgId> ids;
    for (NodeId src = 0; src < 16; ++src) {
        const NodeId dst = (src + 7) % 16;
        ids.push_back(net.sendMessage(src, dst, 8));
    }
    for (Cycle i = 0; i < 5000; ++i)
        net.tick();
    for (MsgId id : ids)
        EXPECT_TRUE(net.isDelivered(id)) << "message " << id;
}

TEST(NetworkBasic, NetworkQuiescesAfterDelivery)
{
    SimConfig cfg = smallTorusCr();
    Network net(cfg);
    net.setTrafficEnabled(false);
    net.sendMessage(0, 15, 8);
    net.sendMessage(3, 12, 8);
    for (Cycle i = 0; i < 2000; ++i)
        net.tick();
    EXPECT_TRUE(net.quiescent());
    EXPECT_FALSE(net.deadlocked());
}

TEST(NetworkBasic, StatsCountFlitsConsistently)
{
    SimConfig cfg = smallTorusCr();
    Network net(cfg);
    net.setTrafficEnabled(false);
    net.sendMessage(0, 5, 8);
    for (Cycle i = 0; i < 1000; ++i)
        net.tick();
    const NetworkStats& s = net.stats();
    EXPECT_EQ(s.messagesDelivered.value(), 1u);
    // Every injected flit is eventually consumed (no kills here).
    EXPECT_EQ(s.flitsInjected.value(), s.flitsConsumed.value());
    EXPECT_EQ(s.sourceKills.value(), 0u);
    EXPECT_EQ(s.corruptedDeliveries.value(), 0u);
}

TEST(NetworkBasic, OccupancyDumpRendersGrid)
{
    SimConfig cfg = smallTorusCr();
    Network net(cfg);
    net.setTrafficEnabled(false);
    net.sendMessage(0, 5, 8);
    net.run(3);  // A few flits in flight.
    std::ostringstream os;
    net.dumpOccupancy(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("buffer occupancy"), std::string::npos);
    EXPECT_NE(s.find("y= 0"), std::string::npos);
    EXPECT_NE(s.find("y= 3"), std::string::npos);
}

TEST(NetworkBasic, SelfTrafficIsRejected)
{
    SimConfig cfg = smallTorusCr();
    Network net(cfg);
    EXPECT_DEATH(net.sendMessage(2, 2, 8), "self-traffic");
}

TEST(NetworkBasic, UniformTrafficRunDrains)
{
    SimConfig cfg = smallTorusCr();
    cfg.injectionRate = 0.1;
    cfg.warmupCycles = 200;
    cfg.measureCycles = 500;
    Network net(cfg);
    net.run(200);
    net.setMeasuring(true);
    net.run(500);
    net.setMeasuring(false);
    Cycle spent = 0;
    while (!net.measuredDrained() && spent < 20000) {
        net.tick();
        ++spent;
    }
    EXPECT_TRUE(net.measuredDrained());
    EXPECT_GT(net.stats().measuredDelivered.value(), 0u);
    EXPECT_EQ(net.stats().orderViolations.value(), 0u);
    EXPECT_EQ(net.stats().duplicateDeliveries.value(), 0u);
}

} // namespace
} // namespace crnet
