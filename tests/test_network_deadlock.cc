/**
 * @file
 * The motivating experiment: fully adaptive minimal routing on a torus
 * with no virtual channels deadlocks under plain wormhole routing, and
 * Compressionless Routing recovers exactly that configuration.
 */

#include <gtest/gtest.h>

#include "src/core/network.hh"

namespace crnet {
namespace {

SimConfig
stressConfig(ProtocolKind protocol)
{
    // An 8x8 torus near saturation: small tori are injection-
    // bandwidth limited and too sparsely loaded to close a cyclic
    // wait, but at this point plain adaptive wormhole routing wedges
    // within a few thousand cycles.
    SimConfig cfg;
    cfg.topology = TopologyKind::Torus;
    cfg.radixK = 8;
    cfg.dimensionsN = 2;
    cfg.numVcs = 1;
    cfg.bufferDepth = 2;
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = protocol;
    cfg.injectionRate = 0.8;
    cfg.messageLength = 32;
    cfg.deadlockThreshold = 2000;
    cfg.seed = 12345;
    return cfg;
}

TEST(NetworkDeadlock, AdaptiveTorusWithoutCrDeadlocks)
{
    Network net(stressConfig(ProtocolKind::None));
    bool deadlocked = false;
    for (Cycle i = 0; i < 20000 && !deadlocked; ++i) {
        net.tick();
        deadlocked = net.deadlocked();
    }
    EXPECT_TRUE(deadlocked)
        << "adaptive wormhole routing on a torus with no VCs and no "
           "recovery should deadlock under load";
}

TEST(NetworkDeadlock, SameConfigUnderCrDoesNotDeadlock)
{
    Network net(stressConfig(ProtocolKind::Cr));
    for (Cycle i = 0; i < 15000; ++i) {
        net.tick();
        ASSERT_FALSE(net.deadlocked()) << "at cycle " << net.now();
    }
    EXPECT_GT(net.stats().messagesDelivered.value(), 100u);
}

TEST(NetworkDeadlock, CrRecoveryActuallyFires)
{
    // At this load on a tiny torus, potential deadlock situations are
    // common; CR should be observed killing and retrying.
    Network net(stressConfig(ProtocolKind::Cr));
    for (Cycle i = 0; i < 20000; ++i)
        net.tick();
    EXPECT_GT(net.stats().sourceKills.value(), 0u);
    EXPECT_GT(net.stats().messagesDelivered.value(), 0u);
}

TEST(NetworkDeadlock, DorWithDatelinesNeverDeadlocks)
{
    SimConfig cfg = stressConfig(ProtocolKind::None);
    cfg.routing = RoutingKind::DimensionOrder;
    cfg.numVcs = 2;  // Dateline classes.
    Network net(cfg);
    for (Cycle i = 0; i < 15000; ++i) {
        net.tick();
        ASSERT_FALSE(net.deadlocked()) << "at cycle " << net.now();
    }
    EXPECT_GT(net.stats().messagesDelivered.value(), 100u);
}

TEST(NetworkDeadlock, DuatoNeverDeadlocks)
{
    SimConfig cfg = stressConfig(ProtocolKind::None);
    cfg.routing = RoutingKind::Duato;
    cfg.numVcs = 3;  // 2 escape + 1 adaptive.
    Network net(cfg);
    for (Cycle i = 0; i < 15000; ++i) {
        net.tick();
        ASSERT_FALSE(net.deadlocked()) << "at cycle " << net.now();
    }
    EXPECT_GT(net.stats().messagesDelivered.value(), 100u);
    // Escape usage is the paper's PDS proxy; under stress it fires.
    EXPECT_GT(net.stats().router.escapeAllocations.value(), 0u);
}

} // namespace
} // namespace crnet
