/**
 * @file
 * Unit and integration tests for planar-adaptive routing (2D mesh).
 */

#include <gtest/gtest.h>

#include "src/core/network.hh"
#include "src/routing/routing.hh"

namespace crnet {
namespace {

Flit
headTo(NodeId dst)
{
    Flit f;
    f.type = FlitType::Head;
    f.msg = 1;
    f.dst = dst;
    return f;
}

class ParTest : public ::testing::Test
{
  protected:
    ParTest()
        : topo(8, 2), faults(topo, 0.0, Rng(1)),
          par(topo, faults, 3), rng(5)
    {
    }

    NodeId
    at(std::uint16_t x, std::uint16_t y) const
    {
        return x + 8 * y;
    }

    MeshTopology topo;
    FaultModel faults;
    PlanarAdaptiveRouting par;
    Rng rng;
};

TEST_F(ParTest, IncreasingTrafficUsesXClass0AndYPlus)
{
    // (1,1) -> (4,4): dy > 0 => increasing network.
    std::vector<Candidate> out;
    par.candidates(at(1, 1), headTo(at(4, 4)), out, rng);
    ASSERT_EQ(out.size(), 2u);  // x+ on vc0, y+ on vc2.
    for (const Candidate& c : out) {
        if (portDim(c.port) == 0) {
            EXPECT_EQ(c.port, makePort(0, Direction::Plus));
            EXPECT_EQ(c.vc, 0u);
        } else {
            EXPECT_EQ(c.port, makePort(1, Direction::Plus));
            EXPECT_EQ(c.vc, 2u);
        }
    }
}

TEST_F(ParTest, DecreasingTrafficUsesXClass1AndYMinus)
{
    // (4,4) -> (1,1): dy < 0 => decreasing network.
    std::vector<Candidate> out;
    par.candidates(at(4, 4), headTo(at(1, 1)), out, rng);
    ASSERT_EQ(out.size(), 2u);
    for (const Candidate& c : out) {
        if (portDim(c.port) == 0) {
            EXPECT_EQ(c.port, makePort(0, Direction::Minus));
            EXPECT_EQ(c.vc, 1u);
        } else {
            EXPECT_EQ(c.port, makePort(1, Direction::Minus));
            EXPECT_EQ(c.vc, 2u);
        }
    }
}

TEST_F(ParTest, PureXTrafficRidesTheIncreasingNetwork)
{
    std::vector<Candidate> out;
    par.candidates(at(1, 3), headTo(at(6, 3)), out, rng);
    ASSERT_EQ(out.size(), 1u);
    EXPECT_EQ(out[0].port, makePort(0, Direction::Plus));
    EXPECT_EQ(out[0].vc, 0u);
}

TEST_F(ParTest, ExtraVcsBecomeYLanes)
{
    PlanarAdaptiveRouting par5(topo, faults, 5);
    std::vector<Candidate> out;
    par5.candidates(at(1, 1), headTo(at(1, 5)), out, rng);
    ASSERT_EQ(out.size(), 3u);  // y+ on VCs 2,3,4.
    for (const Candidate& c : out) {
        EXPECT_EQ(c.port, makePort(1, Direction::Plus));
        EXPECT_GE(c.vc, 2u);
    }
}

TEST_F(ParTest, AllCandidatesMinimalEverywhere)
{
    for (NodeId src = 0; src < topo.numNodes(); src += 3) {
        for (NodeId dst = 0; dst < topo.numNodes(); dst += 5) {
            if (src == dst)
                continue;
            std::vector<Candidate> out;
            par.candidates(src, headTo(dst), out, rng);
            ASSERT_FALSE(out.empty());
            for (const Candidate& c : out) {
                const NodeId nxt = topo.neighbor(src, c.port);
                ASSERT_NE(nxt, kInvalidNode);
                EXPECT_EQ(topo.distance(nxt, dst),
                          topo.distance(src, dst) - 1);
            }
        }
    }
}

TEST(ParConstruction, RejectsTorus3dAndFewVcs)
{
    TorusTopology torus(4, 2);
    FaultModel tf(torus, 0.0, Rng(1));
    EXPECT_DEATH(PlanarAdaptiveRouting(torus, tf, 3), "2D meshes");

    MeshTopology m3(4, 3);
    FaultModel mf3(m3, 0.0, Rng(1));
    EXPECT_DEATH(PlanarAdaptiveRouting(m3, mf3, 3), "2D meshes");

    MeshTopology m2(4, 2);
    FaultModel mf2(m2, 0.0, Rng(1));
    EXPECT_DEATH(PlanarAdaptiveRouting(m2, mf2, 2), "3 VCs");
}

TEST(ParNetwork, NeverDeadlocksUnderStress)
{
    SimConfig cfg;
    cfg.topology = TopologyKind::Mesh;
    cfg.radixK = 8;
    cfg.dimensionsN = 2;
    cfg.routing = RoutingKind::PlanarAdaptive;
    cfg.protocol = ProtocolKind::None;
    cfg.numVcs = 3;
    cfg.injectionRate = 0.5;
    cfg.messageLength = 16;
    cfg.deadlockThreshold = 2000;
    cfg.seed = 9;
    Network net(cfg);
    for (Cycle i = 0; i < 15000; ++i) {
        net.tick();
        ASSERT_FALSE(net.deadlocked()) << "cycle " << net.now();
    }
    EXPECT_GT(net.stats().messagesDelivered.value(), 200u);
    EXPECT_EQ(net.stats().orderViolations.value(), 0u);
}

} // namespace
} // namespace crnet
