/**
 * @file
 * Tests for the invariant-audit engine.
 *
 * Two layers: direct Auditor tests feed hand-built event streams and
 * assert that every invariant class actually panics on a violation
 * (death tests — no vacuous checks), and integration tests prove the
 * hooks are wired through the real Network/Router components.
 *
 * Only compiled when the CRNET_AUDIT CMake option is on (the tests
 * target links against a library whose hooks would otherwise be
 * no-ops).
 */

#include <gtest/gtest.h>

#include "src/core/network.hh"
#include "src/nic/padding.hh"
#include "src/sim/audit.hh"
#include "src/topology/topology.hh"

namespace crnet {
namespace {

SimConfig
auditConfig()
{
    SimConfig cfg;
    cfg.topology = TopologyKind::Torus;
    cfg.radixK = 4;
    cfg.dimensionsN = 2;
    cfg.numVcs = 2;
    cfg.bufferDepth = 2;
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = ProtocolKind::Cr;
    cfg.injectionRate = 0.0;
    cfg.auditInterval = 1;
    cfg.seed = 7;
    return cfg;
}

Flit
dataFlit(FlitType type, MsgId msg, std::uint32_t seq,
         std::uint32_t payload_len)
{
    Flit f;
    f.type = type;
    f.msg = msg;
    f.seq = seq;
    f.payloadLen = payload_len;
    return f;
}

/** Auditor plus the topology it borrows (keeps lifetimes simple). */
struct Harness
{
    explicit Harness(const SimConfig& c)
        : cfg(c), topo(makeTopology(c)), audit(cfg, *topo)
    {
    }

    SimConfig cfg;
    std::unique_ptr<Topology> topo;
    Auditor audit;
};

// --- Invariant 1: per-channel worm framing --------------------------

TEST(AuditDeath, SequenceGapPanics)
{
    Harness h(auditConfig());
    h.audit.onChannelFlit(0, 0, 0, dataFlit(FlitType::Head, 1, 0, 4));
    EXPECT_DEATH(h.audit.onChannelFlit(
                     0, 0, 0, dataFlit(FlitType::Body, 1, 2, 4)),
                 "audit: sequence gap");
}

TEST(AuditDeath, FlitAfterTailPanics)
{
    Harness h(auditConfig());
    h.audit.onChannelFlit(0, 0, 0, dataFlit(FlitType::Head, 1, 0, 2));
    h.audit.onChannelFlit(0, 0, 0, dataFlit(FlitType::Body, 1, 1, 2));
    h.audit.onChannelFlit(0, 0, 0, dataFlit(FlitType::Tail, 1, 2, 2));
    EXPECT_DEATH(h.audit.onChannelFlit(
                     0, 0, 0, dataFlit(FlitType::Body, 1, 3, 2)),
                 "audit: .* without a header");
}

TEST(AuditDeath, InterleavedHeaderPanics)
{
    Harness h(auditConfig());
    h.audit.onChannelFlit(0, 0, 0, dataFlit(FlitType::Head, 1, 0, 4));
    EXPECT_DEATH(h.audit.onChannelFlit(
                     0, 0, 0, dataFlit(FlitType::Head, 2, 0, 4)),
                 "audit: header of msg 2 interleaved");
}

TEST(AuditDeath, InterleavedBodyPanics)
{
    Harness h(auditConfig());
    h.audit.onChannelFlit(0, 0, 0, dataFlit(FlitType::Head, 1, 0, 4));
    EXPECT_DEATH(h.audit.onChannelFlit(
                     0, 0, 0, dataFlit(FlitType::Body, 9, 1, 4)),
                 "audit: interleaved worms");
}

TEST(AuditDeath, HeaderWithNonZeroSeqPanics)
{
    Harness h(auditConfig());
    EXPECT_DEATH(h.audit.onChannelFlit(
                     0, 0, 0, dataFlit(FlitType::Head, 1, 3, 4)),
                 "must be 0");
}

TEST(AuditDeath, BodyFlitPastPayloadPanics)
{
    Harness h(auditConfig());
    h.audit.onChannelFlit(0, 0, 0, dataFlit(FlitType::Head, 1, 0, 2));
    h.audit.onChannelFlit(0, 0, 0, dataFlit(FlitType::Body, 1, 1, 2));
    EXPECT_DEATH(h.audit.onChannelFlit(
                     0, 0, 0, dataFlit(FlitType::Body, 1, 2, 2)),
                 "audit: body flit past the payload");
}

TEST(AuditDeath, TailInsidePayloadPanics)
{
    Harness h(auditConfig());
    h.audit.onChannelFlit(0, 0, 0, dataFlit(FlitType::Head, 1, 0, 4));
    EXPECT_DEATH(h.audit.onChannelFlit(
                     0, 0, 0, dataFlit(FlitType::Tail, 1, 1, 4)),
                 "audit: tail flit inside the payload");
}

TEST(AuditDeath, EjectionChannelIsCheckedToo)
{
    Harness h(auditConfig());
    EXPECT_DEATH(h.audit.onEjectionFlit(
                     0, 0, 0, dataFlit(FlitType::Body, 5, 1, 4)),
                 "audit: ejection flit .* without a header");
}

// --- Kill-token legality --------------------------------------------

TEST(AuditDeath, KillOnVirginChannelPanics)
{
    Harness h(auditConfig());
    Flit kill = dataFlit(FlitType::Kill, 7, 0, 0);
    EXPECT_DEATH(h.audit.onChannelFlit(0, 0, 0, kill),
                 "audit: kill token .* never carried its worm");
}

TEST(AuditDeath, KillForForeignWormPanics)
{
    Harness h(auditConfig());
    h.audit.onChannelFlit(0, 0, 0, dataFlit(FlitType::Head, 1, 0, 4));
    EXPECT_DEATH(h.audit.onChannelFlit(
                     0, 0, 0, dataFlit(FlitType::Kill, 2, 0, 0)),
                 "audit: kill token for msg 2 .* occupied by msg 1");
}

TEST(Audit, KillChasingItsOwnWormIsLegal)
{
    Harness h(auditConfig());
    h.audit.onChannelFlit(0, 0, 0, dataFlit(FlitType::Head, 1, 0, 4));
    h.audit.onChannelFlit(0, 0, 0, dataFlit(FlitType::Kill, 1, 0, 0));
    // The channel is free again afterwards.
    h.audit.onChannelFlit(0, 0, 0, dataFlit(FlitType::Head, 2, 0, 4));
}

TEST(Audit, IssuedKillMayOverrunItsWormByOneHop)
{
    // A kill can reach a channel its worm's header never traversed
    // (the header was purged from the upstream buffer first). That is
    // legal only for registered kill tokens.
    Harness h(auditConfig());
    h.audit.onKillIssued(3, 0);
    h.audit.onChannelFlit(0, 0, 0, dataFlit(FlitType::Kill, 3, 0, 0));
}

TEST(Audit, StragglerOfPurgedWormIsLegal)
{
    Harness h(auditConfig());
    h.audit.onChannelFlit(0, 0, 0, dataFlit(FlitType::Head, 1, 0, 4));
    h.audit.onChannelReset(0, 0, 0, 1);
    // One in-flight flit of the purged worm may still arrive.
    h.audit.onChannelFlit(0, 0, 0, dataFlit(FlitType::Body, 1, 1, 4));
}

// --- Invariant 4: CR/FCR padding ------------------------------------

TEST(AuditDeath, CrPaddingViolationPanics)
{
    Harness h(auditConfig());
    // 3 hops minimum on the 4x4 torus from 0 to 10; a wire length of
    // 4 is far below the path flit capacity.
    EXPECT_DEATH(h.audit.onWormStart(0, 10, 4, 3),
                 "audit: CR padding violation");
}

TEST(AuditDeath, FcrPaddingViolationPanics)
{
    SimConfig cfg = auditConfig();
    cfg.protocol = ProtocolKind::Fcr;
    Harness h(cfg);
    const std::uint32_t capacity = pathFlitCapacity(
        h.topo->distance(0, 10), cfg.bufferDepth, cfg.channelLatency);
    // Enough for CR (one capacity) but not for FCR's round trip.
    EXPECT_DEATH(h.audit.onWormStart(0, 10, capacity, 8),
                 "audit: FCR padding violation");
}

TEST(AuditDeath, WireShorterThanPayloadPanics)
{
    Harness h(auditConfig());
    EXPECT_DEATH(h.audit.onWormStart(0, 1, 4, 4),
                 "cannot carry payload");
}

TEST(Audit, ProperlyPaddedWormPasses)
{
    Harness h(auditConfig());
    const SimConfig& cfg = h.cfg;
    const std::uint32_t hops = h.topo->distance(0, 10);
    const std::uint32_t wire =
        wireLength(cfg.protocol, 4, hops, cfg.bufferDepth,
                   cfg.padSlack, cfg.channelLatency);
    h.audit.onWormStart(0, 10, wire, 4);
}

// --- Invariant 5: timestamps ----------------------------------------

TEST(AuditDeath, CreatedAfterInjectionPanics)
{
    Harness h(auditConfig());
    Flit f = dataFlit(FlitType::Head, 1, 0, 4);
    f.createdAt = 100;
    f.headInjectedAt = 50;
    EXPECT_DEATH(h.audit.onChannelFlit(0, 0, 0, f),
                 "audit: non-monotonic timestamps");
}

TEST(AuditDeath, InjectionInTheFuturePanics)
{
    Harness h(auditConfig());
    h.audit.beginCycle(10);
    Flit f = dataFlit(FlitType::Head, 1, 0, 4);
    f.headInjectedAt = 99;  // Claims a cycle that has not happened.
    EXPECT_DEATH(h.audit.onChannelFlit(0, 0, 0, f),
                 "audit: non-monotonic timestamps");
}

// --- Invariant 2: flit conservation ---------------------------------

TEST(AuditDeath, LeakedFlitBreaksConservation)
{
    Harness h(auditConfig());
    Flit f = dataFlit(FlitType::Head, 1, 0, 4);
    h.audit.onFlitInjected(0, f);
    // The snapshot says the flit is nowhere: not buffered, not in
    // flight, and it was never consumed or purged. It leaked.
    AuditSnapshot snap;
    snap.now = 1;
    EXPECT_DEATH(h.audit.sweep(snap),
                 "audit: flit conservation violated");
}

TEST(AuditDeath, DuplicatedFlitBreaksConservation)
{
    Harness h(auditConfig());
    Flit f = dataFlit(FlitType::Head, 1, 0, 4);
    h.audit.onFlitInjected(0, f);
    AuditSnapshot snap;
    snap.now = 1;
    snap.bufferedFlits = 2;  // One flit injected, two accounted.
    EXPECT_DEATH(h.audit.sweep(snap),
                 "audit: flit conservation violated");
}

TEST(Audit, BalancedLedgerSweepPasses)
{
    Harness h(auditConfig());
    Flit f = dataFlit(FlitType::Head, 1, 0, 4);
    h.audit.onFlitInjected(0, f);
    h.audit.onFlitConsumed(0, f);
    AuditSnapshot snap;
    snap.now = 1;
    h.audit.sweep(snap);
    EXPECT_EQ(h.audit.injected(), 1u);
    EXPECT_EQ(h.audit.consumed(), 1u);
    EXPECT_EQ(h.audit.sweepsRun(), 1u);
}

// --- Invariant 3: credit ledgers ------------------------------------

TEST(AuditDeath, CreditLedgerMismatchPanics)
{
    Harness h(auditConfig());
    AuditSnapshot snap;
    snap.now = 1;
    AuditEdge e;
    e.kind = AuditEdgeKind::Network;
    e.node = 3;
    e.port = 1;
    e.vc = 0;
    e.credits = h.cfg.bufferDepth;  // Full credits...
    e.occupancy = 1;                // ...while a flit sits downstream.
    snap.edges.push_back(e);
    EXPECT_DEATH(h.audit.sweep(snap),
                 "audit: credit ledger broken");
}

TEST(Audit, QuarantinedEdgeIsSkipped)
{
    Harness h(auditConfig());
    AuditSnapshot snap;
    snap.now = 1;
    AuditEdge e;
    e.credits = h.cfg.bufferDepth;
    e.occupancy = 1;
    e.skip = true;  // Kill quarantine: ledger legitimately in flux.
    snap.edges.push_back(e);
    h.audit.sweep(snap);
    EXPECT_EQ(h.audit.sweepsRun(), 1u);
}

// --- Integration: hooks wired through real components ----------------

TEST(AuditIntegration, NetworkRunsCleanUnderEveryCycleAudit)
{
    SimConfig cfg = auditConfig();
    cfg.injectionRate = 0.2;
    cfg.timeout = 16;
    Network net(cfg);
    ASSERT_NE(net.auditor(), nullptr);
    net.run(3000);
    net.setTrafficEnabled(false);
    net.run(2000);

    const Auditor& a = *net.auditor();
    // The audit actually ran: per-flit checks and sweeps both fired.
    EXPECT_GT(a.flitChecks(), 0u);
    EXPECT_GT(a.sweepsRun(), 0u);
    EXPECT_GT(a.injected(), 0u);
    // Quiescent network: every injected flit was consumed or purged.
    EXPECT_TRUE(net.quiescent());
    EXPECT_EQ(a.injected(), a.consumed() + a.purged());
}

TEST(AuditIntegration, CorruptedRouterStateTripsTheAudit)
{
    SimConfig cfg = auditConfig();
    Network net(cfg);
    // Inject a worm so real traffic flows through the hooks.
    net.sendMessage(0, 5, 4);
    net.run(50);
    // Now hand the router a flit that no injector produced: a body
    // flit for a message whose header never existed. The router-level
    // hook must catch the corruption immediately.
    Flit rogue = dataFlit(FlitType::Body, 4242, 1, 4);
    EXPECT_DEATH(net.router(1).acceptFlit(0, 0, rogue), "audit:");
}

TEST(AuditIntegration, FcrNetworkRunsCleanUnderAudit)
{
    SimConfig cfg = auditConfig();
    cfg.protocol = ProtocolKind::Fcr;
    cfg.timeout = 64;
    cfg.injectionRate = 0.1;
    cfg.transientFaultRate = 0.0005;
    Network net(cfg);
    net.run(3000);
    EXPECT_GT(net.auditor()->flitChecks(), 0u);
    EXPECT_GT(net.auditor()->sweepsRun(), 0u);
}

} // namespace
} // namespace crnet
