// Fixture: CRNET_ALLOW suppressions that violate the grammar — one
// with an empty reason string, one naming an unknown rule. Expected:
// two `allow-missing-reason` violations.

#define CRNET_ALLOW(rule, reason)

namespace fx {

CRNET_ALLOW("alloc", "")
int*
makeBuffer(int n)
{
    return new int[n];
}

CRNET_ALLOW("not-a-rule", "looks plausible but names no known rule")
void
helper()
{
}

} // namespace fx
