// Fixture: the violation sits three calls below the annotated root.
// Expected: one `alloc` violation in leaf() whose chain walks
// tick -> middle -> lower -> leaf.

#define CRNET_HOT_PATH

namespace fx {

void
leaf()
{
    int* p = new int(7);
    delete p;
}

void
lower()
{
    leaf();
}

void
middle()
{
    lower();
}

CRNET_HOT_PATH
void
tick()
{
    middle();
}

} // namespace fx
