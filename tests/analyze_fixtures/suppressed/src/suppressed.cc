// Fixture: the same allocation as the `alloc` fixture, but the
// allocating callee carries a CRNET_ALLOW("alloc", ...) with a
// reason, so the analyzer must report zero violations and exit 0.

#define CRNET_HOT_PATH
#define CRNET_ALLOW(rule, reason)

namespace fx {

CRNET_ALLOW("alloc", "setup-time buffer: runs once before the loop")
int*
makeBuffer(int n)
{
    return new int[n];
}

CRNET_HOT_PATH
void
tick()
{
    int* p = makeBuffer(16);
    delete[] p;
}

} // namespace fx
