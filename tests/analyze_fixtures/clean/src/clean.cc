// Fixture: a hot-path root whose whole call tree is allocation-free
// and a result-affecting root with no unordered iteration. The
// analyzer must report zero violations and exit 0.

#define CRNET_HOT_PATH
#define CRNET_RESULT_AFFECTING

namespace fx {

int
sum(const int* v, int n)
{
    int s = 0;
    for (int i = 0; i < n; ++i)
        s += v[i];
    return s;
}

CRNET_HOT_PATH
int
tick(const int* v, int n)
{
    return sum(v, n);
}

CRNET_RESULT_AFFECTING
int
summarize(const int* v, int n)
{
    return sum(v, n) * 2;
}

} // namespace fx
