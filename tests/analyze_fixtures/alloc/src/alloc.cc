// Fixture: heap allocation (operator new) directly inside a function
// called from a hot-path root. Expected: one `alloc` violation with
// chain tick -> makeBuffer.

#define CRNET_HOT_PATH

namespace fx {

int*
makeBuffer(int n)
{
    return new int[n];
}

CRNET_HOT_PATH
void
tick()
{
    int* p = makeBuffer(16);
    delete[] p;
}

} // namespace fx
