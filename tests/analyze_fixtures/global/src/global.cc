// Fixture: mutable namespace-scope state and a function-local static
// outside any registered singleton. The `global-state` rule is
// whole-tree. Expected: two `global-state` violations.

namespace fx {

static int hiddenCounter = 0;

int
bump()
{
    static int calls = 0;
    ++calls;
    return ++hiddenCounter + calls;
}

} // namespace fx
