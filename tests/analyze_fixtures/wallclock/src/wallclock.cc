// Fixture: a wall-clock read outside any timing shim. The `wallclock`
// rule is whole-tree (no root annotation needed). Expected: one
// `wallclock` violation in elapsed().

#include <chrono>

namespace fx {

double
elapsed()
{
    const auto t0 = std::chrono::steady_clock::now();
    const auto t1 = std::chrono::steady_clock::now();
    return std::chrono::duration<double>(t1 - t0).count();
}

} // namespace fx
