// Fixture: a telemetry-style sampler whose sanctioned shim carries
// CRNET_ALLOW("wallclock", ...) — but a second function reads the raw
// clock directly. The suppression must cover only the annotated shim:
// the raw read inside the same "telemetry" file still trips the rule.
// Expected: exactly one `wallclock` violation, in rawStamp().

#include <chrono>
#include <cstdint>

#define CRNET_ALLOW(rule, reason)

namespace fx {

CRNET_ALLOW("wallclock", "the registered telemetry clock shim: "
            "profiler output only, never results")
std::uint64_t
shimStamp()
{
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
}

// A profiler hook that forgot the shim and stamps the clock itself.
std::uint64_t
rawStamp()
{
    return static_cast<std::uint64_t>(
        std::chrono::steady_clock::now().time_since_epoch().count());
}

std::uint64_t
sampleBoth()
{
    return shimStamp() + rawStamp();
}

} // namespace fx
