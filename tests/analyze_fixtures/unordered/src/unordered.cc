// Fixture: range-for over an unordered_map member reachable from a
// result-affecting root. Expected: one `unordered-iter` violation in
// Ledger::total with chain summarize -> Ledger::total.

#define CRNET_RESULT_AFFECTING

#include <unordered_map>

namespace fx {

class Ledger
{
  public:
    void add(int k, double v) { entries_[k] = v; }

    double total() const
    {
        double s = 0.0;
        for (const auto& e : entries_)
            s += e.second;
        return s;
    }

  private:
    std::unordered_map<int, double> entries_;
};

CRNET_RESULT_AFFECTING
double
summarize(const Ledger& ledger)
{
    return ledger.total();
}

} // namespace fx
