/**
 * @file
 * Unit tests driving a single Receiver: assembly, pad stripping, kill
 * discard, FCR refusal, order accounting.
 */

#include <gtest/gtest.h>

#include "src/nic/receiver.hh"

namespace crnet {
namespace {

class RecordingSink : public DeliverySink
{
  public:
    void
    onDelivered(const DeliveredMessage& msg) override
    {
        delivered.push_back(msg);
    }

    std::vector<DeliveredMessage> delivered;
};

class ReceiverTest : public ::testing::Test
{
  protected:
    ReceiverTest() { rebuild(); }

    void
    rebuild()
    {
        stats = std::make_unique<NetworkStats>();
        sink = std::make_unique<RecordingSink>();
        rcv = std::make_unique<Receiver>(3, cfg, stats.get(),
                                         sink.get());
    }

    Flit
    makeFlit(FlitType type, MsgId msg, std::uint32_t seq,
             std::uint32_t wire, std::uint32_t payload_len,
             NodeId src = 0, std::uint32_t pair_seq = 0,
             std::uint16_t attempt = 0)
    {
        Flit f;
        f.type = type;
        f.msg = msg;
        f.seq = seq;
        f.src = src;
        f.dst = 3;
        f.payloadLen = payload_len;
        f.pairSeq = pair_seq;
        f.attempt = attempt;
        f.measured = true;
        f.payload = (static_cast<std::uint64_t>(msg) << 20) ^ seq;
        f.stampCrc();
        (void)wire;
        return f;
    }

    /** Feed a whole worm, one flit per cycle. */
    void
    feedWorm(MsgId msg, std::uint32_t payload_len, std::uint32_t wire,
             NodeId src = 0, std::uint32_t pair_seq = 0,
             std::uint16_t attempt = 0)
    {
        for (std::uint32_t i = 0; i < wire; ++i) {
            FlitType t = FlitType::Body;
            if (i == 0)
                t = FlitType::Head;
            else if (i + 1 == wire)
                t = FlitType::Tail;
            else if (i >= payload_len)
                t = FlitType::Pad;
            rcv->acceptFlit(0, 0, makeFlit(t, msg, i, wire,
                                           payload_len, src, pair_seq,
                                           attempt));
            rcv->tick(now++);
        }
        // Extra ticks to drain the buffer.
        for (int i = 0; i < 8; ++i)
            rcv->tick(now++);
    }

    SimConfig cfg;
    std::unique_ptr<NetworkStats> stats;
    std::unique_ptr<RecordingSink> sink;
    std::unique_ptr<Receiver> rcv;
    Cycle now = 0;
};

TEST_F(ReceiverTest, AssemblesAndDeliversOnTail)
{
    feedWorm(1, 4, 10);
    ASSERT_EQ(sink->delivered.size(), 1u);
    const DeliveredMessage& d = sink->delivered[0];
    EXPECT_EQ(d.id, 1u);
    EXPECT_EQ(d.payloadLen, 4u);
    EXPECT_EQ(d.attempts, 1u);
    EXPECT_FALSE(d.corrupted);
    EXPECT_EQ(stats->messagesDelivered.value(), 1u);
    EXPECT_EQ(stats->padFlitsConsumed.value(), 5u);
    EXPECT_TRUE(rcv->idle());
}

TEST_F(ReceiverTest, CreditsReturnedPerConsumedFlit)
{
    feedWorm(1, 4, 10);
    // One credit per flit: total equals the wire length; tick-level
    // granularity already checked via flitsConsumed.
    EXPECT_EQ(stats->flitsConsumed.value(), 10u);
}

TEST_F(ReceiverTest, KillDiscardsPartialMessage)
{
    for (std::uint32_t i = 0; i < 4; ++i) {
        rcv->acceptFlit(0, 0, makeFlit(i == 0 ? FlitType::Head
                                              : FlitType::Body,
                                       7, i, 16, 8));
        rcv->tick(now++);
    }
    Flit kill;
    kill.type = FlitType::Kill;
    kill.msg = 7;
    rcv->acceptFlit(0, 0, kill);
    for (int i = 0; i < 4; ++i)
        rcv->tick(now++);
    EXPECT_TRUE(rcv->idle());
    EXPECT_EQ(sink->delivered.size(), 0u);
}

TEST_F(ReceiverTest, RetryAfterKillDeliversOnce)
{
    // Partial attempt 0, kill, then full attempt 1.
    for (std::uint32_t i = 0; i < 3; ++i) {
        rcv->acceptFlit(0, 0,
                        makeFlit(i == 0 ? FlitType::Head
                                        : FlitType::Body,
                                 9, i, 10, 4, 0, 0, 0));
        rcv->tick(now++);
    }
    Flit kill;
    kill.type = FlitType::Kill;
    kill.msg = 9;
    kill.attempt = 0;
    rcv->acceptFlit(0, 0, kill);
    rcv->tick(now++);
    feedWorm(9, 4, 10, 0, 0, 1);
    ASSERT_EQ(sink->delivered.size(), 1u);
    EXPECT_EQ(sink->delivered[0].attempts, 2u);
    EXPECT_EQ(stats->duplicateDeliveries.value(), 0u);
}

TEST_F(ReceiverTest, ReorderedDeliveryCountsAsViolationNotDuplicate)
{
    feedWorm(1, 4, 10, /*src=*/2, /*pair_seq=*/0);
    feedWorm(2, 4, 10, /*src=*/2, /*pair_seq=*/2);  // Gap: not yet an
                                                    // anomaly.
    feedWorm(3, 4, 10, /*src=*/2, /*pair_seq=*/1);  // Late arrival.
    EXPECT_EQ(stats->orderViolations.value(), 1u);
    EXPECT_EQ(stats->duplicateDeliveries.value(), 0u);
}

TEST_F(ReceiverTest, TrueDuplicateSequenceIsCounted)
{
    feedWorm(1, 4, 10, /*src=*/2, /*pair_seq=*/0);
    feedWorm(2, 4, 10, /*src=*/2, /*pair_seq=*/0);  // Same pairSeq.
    EXPECT_EQ(stats->duplicateDeliveries.value(), 1u);
    EXPECT_EQ(stats->orderViolations.value(), 0u);
}

TEST_F(ReceiverTest, PerSourceSequencesIndependent)
{
    feedWorm(1, 4, 10, /*src=*/2, /*pair_seq=*/0);
    feedWorm(2, 4, 10, /*src=*/4, /*pair_seq=*/0);
    feedWorm(3, 4, 10, /*src=*/2, /*pair_seq=*/1);
    EXPECT_EQ(stats->orderViolations.value(), 0u);
    EXPECT_EQ(stats->duplicateDeliveries.value(), 0u);
}

TEST_F(ReceiverTest, CrModeDeliversCorruptedAndCounts)
{
    cfg.protocol = ProtocolKind::Cr;
    rebuild();
    Flit h = makeFlit(FlitType::Head, 5, 0, 3, 2);
    h.payload ^= 1;  // Corrupt.
    h.corrupted = true;
    rcv->acceptFlit(0, 0, h);
    rcv->tick(now++);
    rcv->acceptFlit(0, 0, makeFlit(FlitType::Body, 5, 1, 3, 2));
    rcv->tick(now++);
    rcv->acceptFlit(0, 0, makeFlit(FlitType::Tail, 5, 2, 3, 2));
    for (int i = 0; i < 4; ++i)
        rcv->tick(now++);
    ASSERT_EQ(sink->delivered.size(), 1u);
    EXPECT_TRUE(sink->delivered[0].corrupted);
    EXPECT_EQ(stats->corruptedDeliveries.value(), 1u);
}

TEST_F(ReceiverTest, FcrRefusesCorruptedPayloadFlit)
{
    cfg.protocol = ProtocolKind::Fcr;
    rebuild();
    Flit h = makeFlit(FlitType::Head, 5, 0, 12, 2);
    h.payload ^= 1;
    h.corrupted = true;
    rcv->acceptFlit(0, 0, h);
    for (int i = 0; i < 10; ++i)
        rcv->tick(now++);
    // Nothing consumed: no credits, one refusal.
    EXPECT_EQ(stats->flitsConsumed.value(), 0u);
    EXPECT_EQ(stats->refusals.value(), 1u);
    EXPECT_FALSE(rcv->idle());

    // The kill token clears the refusal and the buffer.
    Flit kill;
    kill.type = FlitType::Kill;
    kill.msg = 5;
    rcv->acceptFlit(0, 0, kill);
    rcv->tick(now++);
    EXPECT_TRUE(rcv->idle());
}

TEST_F(ReceiverTest, FcrRefusesWrongDestination)
{
    cfg.protocol = ProtocolKind::Fcr;
    rebuild();
    Flit h = makeFlit(FlitType::Head, 6, 0, 12, 2);
    h.dst = 9;  // Mis-delivered (e.g. corrupted header address).
    rcv->acceptFlit(0, 0, h);
    for (int i = 0; i < 5; ++i)
        rcv->tick(now++);
    EXPECT_EQ(stats->refusals.value(), 1u);
    EXPECT_EQ(stats->flitsConsumed.value(), 0u);
}

TEST_F(ReceiverTest, FcrConsumesCorruptedPadsHarmlessly)
{
    cfg.protocol = ProtocolKind::Fcr;
    rebuild();
    // Clean payload, corrupted pad: must still deliver (pads carry no
    // data and are exempt from the check).
    rcv->acceptFlit(0, 0, makeFlit(FlitType::Head, 8, 0, 6, 2));
    rcv->tick(now++);
    rcv->acceptFlit(0, 0, makeFlit(FlitType::Body, 8, 1, 6, 2));
    rcv->tick(now++);
    for (std::uint32_t i = 2; i < 5; ++i) {
        Flit pad = makeFlit(FlitType::Pad, 8, i, 6, 2);
        pad.payload ^= 0xff;
        pad.corrupted = true;
        rcv->acceptFlit(0, 0, pad);
        rcv->tick(now++);
    }
    rcv->acceptFlit(0, 0, makeFlit(FlitType::Tail, 8, 5, 6, 2));
    for (int i = 0; i < 4; ++i)
        rcv->tick(now++);
    ASSERT_EQ(sink->delivered.size(), 1u);
    EXPECT_FALSE(sink->delivered[0].corrupted);
    EXPECT_EQ(stats->refusals.value(), 0u);
}

TEST_F(ReceiverTest, OneFlitPerEjectionChannelPerCycle)
{
    cfg.numVcs = 2;
    rebuild();
    // Two worms on different VCs of the same channel.
    rcv->acceptFlit(0, 0, makeFlit(FlitType::Head, 1, 0, 2, 1));
    rcv->acceptFlit(0, 1, makeFlit(FlitType::Head, 2, 0, 2, 1, 4));
    rcv->tick(now++);
    EXPECT_EQ(stats->flitsConsumed.value(), 1u);
    rcv->tick(now++);
    EXPECT_EQ(stats->flitsConsumed.value(), 2u);
}

TEST_F(ReceiverTest, MeasuredLatencyRecorded)
{
    feedWorm(1, 4, 10);
    EXPECT_EQ(stats->measuredDelivered.value(), 1u);
    EXPECT_EQ(stats->measuredPayloadFlits.value(), 4u);
    EXPECT_GT(stats->totalLatency.count(), 0u);
}

} // namespace
} // namespace crnet
