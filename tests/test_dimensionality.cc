/**
 * @file
 * The "k-ary n-cube" in the title is general: rings (n=1), 3D tori
 * and lines must all work. These tests run the full protocol stack on
 * non-2D shapes.
 */

#include <gtest/gtest.h>

#include "src/core/network.hh"

namespace crnet {
namespace {

SimConfig
shape(TopologyKind topo, std::uint32_t k, std::uint32_t n,
      RoutingKind routing, ProtocolKind protocol,
      std::uint32_t vcs = 1)
{
    SimConfig cfg;
    cfg.topology = topo;
    cfg.radixK = k;
    cfg.dimensionsN = n;
    cfg.routing = routing;
    cfg.protocol = protocol;
    cfg.numVcs = vcs;
    cfg.messageLength = 8;
    cfg.injectionRate = 0.1;
    cfg.seed = 77;
    return cfg;
}

void
runsHealthy(const SimConfig& cfg, Cycle cycles = 8000)
{
    Network net(cfg);
    for (Cycle i = 0; i < cycles; ++i) {
        net.tick();
        ASSERT_FALSE(net.deadlocked());
    }
    EXPECT_GT(net.stats().messagesDelivered.value(), 30u);
    EXPECT_EQ(net.stats().orderViolations.value(), 0u);
    EXPECT_EQ(net.stats().duplicateDeliveries.value(), 0u);
}

TEST(Dimensionality, RingUnderCr)
{
    runsHealthy(shape(TopologyKind::Torus, 16, 1,
                      RoutingKind::MinimalAdaptive, ProtocolKind::Cr));
}

TEST(Dimensionality, RingDorWithDatelines)
{
    runsHealthy(shape(TopologyKind::Torus, 16, 1,
                      RoutingKind::DimensionOrder, ProtocolKind::None,
                      2));
}

TEST(Dimensionality, LineMeshDor)
{
    runsHealthy(shape(TopologyKind::Mesh, 16, 1,
                      RoutingKind::DimensionOrder,
                      ProtocolKind::None));
}

TEST(Dimensionality, Torus3dUnderCr)
{
    runsHealthy(shape(TopologyKind::Torus, 4, 3,
                      RoutingKind::MinimalAdaptive, ProtocolKind::Cr));
}

TEST(Dimensionality, Torus3dDuato)
{
    runsHealthy(shape(TopologyKind::Torus, 4, 3, RoutingKind::Duato,
                      ProtocolKind::None, 3));
}

TEST(Dimensionality, Mesh3dUnderFcrWithFaults)
{
    SimConfig cfg = shape(TopologyKind::Mesh, 4, 3,
                          RoutingKind::MinimalAdaptive,
                          ProtocolKind::Fcr);
    cfg.transientFaultRate = 0.0005;
    cfg.injectionRate = 0.05;
    Network net(cfg);
    for (Cycle i = 0; i < 12000; ++i) {
        net.tick();
        ASSERT_FALSE(net.deadlocked());
    }
    EXPECT_GT(net.stats().messagesDelivered.value(), 30u);
    EXPECT_EQ(net.stats().corruptedDeliveries.value(), 0u);
}

TEST(Dimensionality, Torus4dSmall)
{
    // 2-ary 4-cube = 16-node hypercube-like torus. k=2 is the
    // degenerate radix where +1 and -1 reach the same neighbor.
    runsHealthy(shape(TopologyKind::Torus, 2, 4,
                      RoutingKind::MinimalAdaptive, ProtocolKind::Cr),
                10000);
}

TEST(Dimensionality, DistanceOnRing)
{
    TorusTopology ring(10, 1);
    EXPECT_EQ(ring.distance(0, 5), 5u);
    EXPECT_EQ(ring.distance(0, 7), 3u);
    EXPECT_EQ(ring.diameter(), 5u);
}

TEST(Dimensionality, DistanceIn3d)
{
    TorusTopology t(4, 3);
    // (0,0,0) to (2,3,1): 2 + 1 + 1 = 4 hops.
    const NodeId dst = 2 + 3 * 4 + 1 * 16;
    EXPECT_EQ(t.distance(0, dst), 4u);
}

} // namespace
} // namespace crnet
