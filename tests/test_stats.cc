/**
 * @file
 * Unit tests for the statistics primitives.
 */

#include <cmath>

#include <gtest/gtest.h>

#include "src/sim/stats.hh"

namespace crnet {
namespace {

TEST(Accumulator, EmptyIsZero)
{
    Accumulator a;
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
    EXPECT_EQ(a.variance(), 0.0);
    EXPECT_EQ(a.min(), 0.0);
    EXPECT_EQ(a.max(), 0.0);
}

TEST(Accumulator, SingleSample)
{
    Accumulator a;
    a.add(42.0);
    EXPECT_EQ(a.count(), 1u);
    EXPECT_EQ(a.mean(), 42.0);
    EXPECT_EQ(a.variance(), 0.0);
    EXPECT_EQ(a.min(), 42.0);
    EXPECT_EQ(a.max(), 42.0);
}

TEST(Accumulator, KnownMoments)
{
    Accumulator a;
    for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0})
        a.add(x);
    EXPECT_DOUBLE_EQ(a.mean(), 5.0);
    // Sample variance of this classic dataset is 32/7.
    EXPECT_NEAR(a.variance(), 32.0 / 7.0, 1e-12);
    EXPECT_NEAR(a.stddev(), std::sqrt(32.0 / 7.0), 1e-12);
    EXPECT_EQ(a.min(), 2.0);
    EXPECT_EQ(a.max(), 9.0);
}

TEST(Accumulator, MergeMatchesCombinedStream)
{
    Accumulator all, left, right;
    for (int i = 0; i < 100; ++i) {
        const double x = std::sin(i) * 10.0;
        all.add(x);
        (i < 37 ? left : right).add(x);
    }
    left.merge(right);
    EXPECT_EQ(left.count(), all.count());
    EXPECT_NEAR(left.mean(), all.mean(), 1e-9);
    EXPECT_NEAR(left.variance(), all.variance(), 1e-9);
    EXPECT_EQ(left.min(), all.min());
    EXPECT_EQ(left.max(), all.max());
}

TEST(Accumulator, MergeWithEmptySides)
{
    Accumulator a, empty;
    a.add(1.0);
    a.add(3.0);
    a.merge(empty);
    EXPECT_EQ(a.count(), 2u);
    EXPECT_EQ(a.mean(), 2.0);

    Accumulator b;
    b.merge(a);
    EXPECT_EQ(b.count(), 2u);
    EXPECT_EQ(b.mean(), 2.0);
}

TEST(Accumulator, ResetClears)
{
    Accumulator a;
    a.add(5.0);
    a.reset();
    EXPECT_EQ(a.count(), 0u);
    EXPECT_EQ(a.mean(), 0.0);
}

TEST(Histogram, BinsAndOverflow)
{
    Histogram h(10.0, 4);  // [0,10) [10,20) [20,30) [30,40) + overflow
    h.add(0.0);
    h.add(9.9);
    h.add(10.0);
    h.add(35.0);
    h.add(40.0);
    h.add(1000.0);
    EXPECT_EQ(h.count(), 6u);
    EXPECT_EQ(h.binCount(0), 2u);
    EXPECT_EQ(h.binCount(1), 1u);
    EXPECT_EQ(h.binCount(2), 0u);
    EXPECT_EQ(h.binCount(3), 1u);
    EXPECT_EQ(h.overflow(), 2u);
}

TEST(Histogram, PercentileAtBinResolution)
{
    Histogram h(1.0, 100);
    for (int i = 0; i < 100; ++i)
        h.add(static_cast<double>(i));
    EXPECT_NEAR(h.percentile(0.50), 50.0, 1.0);
    EXPECT_NEAR(h.percentile(0.95), 95.0, 1.0);
    EXPECT_NEAR(h.percentile(1.00), 100.0, 1.0);
    EXPECT_NEAR(h.percentile(0.0), 0.0, 1.0);
}

TEST(Histogram, PercentileEmptyIsZero)
{
    Histogram h(1.0, 8);
    EXPECT_EQ(h.percentile(0.5), 0.0);
}

TEST(Histogram, NegativeSamplesClampToFirstBin)
{
    Histogram h(1.0, 8);
    h.add(-5.0);
    EXPECT_EQ(h.binCount(0), 1u);
    EXPECT_EQ(h.count(), 1u);
}

TEST(Histogram, ResetClears)
{
    Histogram h(1.0, 8);
    h.add(3.0);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.binCount(3), 0u);
}

TEST(Counter, IncrementAndReset)
{
    Counter c;
    EXPECT_EQ(c.value(), 0u);
    c.inc();
    c.inc(41);
    EXPECT_EQ(c.value(), 42u);
    c.reset();
    EXPECT_EQ(c.value(), 0u);
}

} // namespace
} // namespace crnet
