/**
 * @file
 * Tests for the experiment harness: phases, summaries, sweeps,
 * saturation search.
 */

#include <gtest/gtest.h>

#include <cmath>

#include "src/core/experiment.hh"
#include "src/fault/campaign.hh"

namespace crnet {
namespace {

SimConfig
quickCfg()
{
    SimConfig cfg;
    cfg.radixK = 4;
    cfg.dimensionsN = 2;
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = ProtocolKind::Cr;
    cfg.injectionRate = 0.1;
    cfg.messageLength = 8;
    cfg.warmupCycles = 300;
    cfg.measureCycles = 1500;
    cfg.drainCycles = 30000;
    cfg.seed = 3;
    return cfg;
}

TEST(Experiment, LowLoadRunDrainsWithSaneNumbers)
{
    const RunResult r = runExperiment(quickCfg());
    EXPECT_TRUE(r.drained);
    EXPECT_FALSE(r.deadlocked);
    EXPECT_GT(r.measuredMessages, 0u);
    EXPECT_EQ(r.deliveredMeasured, r.measuredMessages);
    EXPECT_GT(r.avgLatency, 0.0);
    EXPECT_GE(r.avgLatency, r.netLatency);
    EXPECT_NEAR(r.acceptedThroughput, r.offeredLoad, 0.03);
    EXPECT_GE(r.p95Latency, r.p50Latency);
    EXPECT_GE(r.p99Latency, r.p95Latency);
    EXPECT_EQ(r.orderViolations, 0u);
    EXPECT_EQ(r.duplicateDeliveries, 0u);
    EXPECT_EQ(r.corruptedDeliveries, 0u);
}

TEST(Experiment, LatencyIncreasesWithLoad)
{
    const auto results = sweepLoads(quickCfg(), {0.05, 0.3});
    ASSERT_EQ(results.size(), 2u);
    EXPECT_LT(results[0].avgLatency, results[1].avgLatency);
}

TEST(Experiment, ResultsAreReproducibleAcrossRuns)
{
    const RunResult a = runExperiment(quickCfg());
    const RunResult b = runExperiment(quickCfg());
    EXPECT_EQ(a.measuredMessages, b.measuredMessages);
    EXPECT_DOUBLE_EQ(a.avgLatency, b.avgLatency);
    EXPECT_EQ(a.totalKills, b.totalKills);
}

TEST(Experiment, DifferentSeedsDiffer)
{
    SimConfig cfg = quickCfg();
    const RunResult a = runExperiment(cfg);
    cfg.seed = 999;
    const RunResult b = runExperiment(cfg);
    EXPECT_NE(a.measuredMessages, b.measuredMessages);
}

TEST(Experiment, SaturationSearchFindsReasonablePoint)
{
    SimConfig cfg = quickCfg();
    cfg.warmupCycles = 200;
    cfg.measureCycles = 800;
    cfg.drainCycles = 8000;
    const double sat = findSaturationLoad(cfg, 0.05, 1.0, 0.05, 400.0);
    // A 4x4 CR torus saturates well above trickle load and cannot
    // exceed the injection bound.
    EXPECT_GT(sat, 0.1);
    EXPECT_LT(sat, 1.0);
}

TEST(Experiment, ReplicatedRunsAggregateAcrossSeeds)
{
    SimConfig cfg = quickCfg();
    const ReplicatedResult rep = runReplicated(cfg, 3);
    EXPECT_EQ(rep.replications, 3u);
    EXPECT_TRUE(rep.allDrained);
    EXPECT_FALSE(rep.anyDeadlock);
    EXPECT_GT(rep.meanLatency, 0.0);
    EXPECT_GT(rep.meanThroughput, 0.0);
    // Different seeds genuinely differ, so the CI is nonzero but far
    // smaller than the mean at this easy operating point.
    EXPECT_GT(rep.latencyCi95, 0.0);
    EXPECT_LT(rep.latencyCi95, rep.meanLatency);
}

TEST(Experiment, ReplicatedZeroIsFatal)
{
    EXPECT_DEATH(runReplicated(quickCfg(), 0), "replication");
}

TEST(Experiment, OverloadedRunReportsNotDrained)
{
    SimConfig cfg = quickCfg();
    cfg.injectionRate = 0.95;
    cfg.messageLength = 32;
    cfg.drainCycles = 2000;  // Deliberately too small to drain.
    const RunResult r = runExperiment(cfg);
    EXPECT_FALSE(r.drained);
}

// Regression: killsPerMessage once divided by messagesDelivered + 1
// (all phases, off by one) instead of the measured-delivered count it
// is defined over.
TEST(Experiment, KillsPerMessageUsesMeasuredDeliveredDenominator)
{
    SimConfig cfg = quickCfg();
    cfg.injectionRate = 0.45;  // Hot enough that kills happen.
    cfg.timeout = 4;
    const RunResult r = runExperiment(cfg);
    ASSERT_GT(r.totalKills, 0u);
    ASSERT_GT(r.deliveredMeasured, 0u);
    EXPECT_DOUBLE_EQ(r.killsPerMessage,
                     static_cast<double>(r.totalKills) /
                         static_cast<double>(r.deliveredMeasured));
}

// Regression: a single replication once reported a "CI" computed from
// a one-sample stddev. n=1 has no spread information: CI must be 0.
TEST(Experiment, SingleReplicationReportsZeroCi)
{
    const ReplicatedResult rep = runReplicated(quickCfg(), 1);
    EXPECT_EQ(rep.replications, 1u);
    EXPECT_GT(rep.meanLatency, 0.0);
    EXPECT_DOUBLE_EQ(rep.latencyCi95, 0.0);
    EXPECT_DOUBLE_EQ(rep.throughputCi95, 0.0);
}

TEST(Experiment, ReplicationsUseConsecutiveSeeds)
{
    SimConfig cfg = quickCfg();
    const ReplicatedResult rep = runReplicated(cfg, 4);
    EXPECT_GT(rep.latencyCi95, 0.0);

    // The aggregate must equal the hand-rolled mean over seeds
    // s, s+1, s+2, s+3 — pinning both the seeding scheme and the
    // deterministic in-order aggregation.
    double sum = 0.0;
    for (std::uint32_t i = 0; i < 4; ++i) {
        SimConfig one = cfg;
        one.seed = cfg.seed + i;
        sum += runExperiment(one).avgLatency;
    }
    EXPECT_DOUBLE_EQ(rep.meanLatency, sum / 4.0);
}

TEST(Experiment, SweepPreservesInputOrder)
{
    // Deliberately unsorted loads: results must come back in input
    // order, not completion or sorted order.
    const std::vector<double> loads = {0.30, 0.05, 0.20};
    const auto results = sweepLoads(quickCfg(), loads);
    ASSERT_EQ(results.size(), loads.size());
    for (std::size_t i = 0; i < loads.size(); ++i)
        EXPECT_DOUBLE_EQ(results[i].offeredLoad, loads[i]);
}

// Regression: findSaturationLoad returned `lo` when even `lo` failed
// the health predicate, indistinguishable from "saturates at lo".
TEST(Experiment, SaturationReportsBelowRangeWhenLoIsUnhealthy)
{
    SimConfig cfg = quickCfg();
    cfg.warmupCycles = 200;
    cfg.measureCycles = 800;
    cfg.drainCycles = 8000;
    // A latency cap below the zero-load latency makes every probe
    // unhealthy.
    const SaturationResult res = findSaturation(cfg, 0.05, 1.0, 0.05,
                                                1.0);
    EXPECT_TRUE(res.belowRange);
    EXPECT_DOUBLE_EQ(res.load, 0.05);
    EXPECT_GE(res.probes, 1u);
    EXPECT_DOUBLE_EQ(findSaturationLoad(cfg, 0.05, 1.0, 0.05, 1.0),
                     -1.0);
}

TEST(Experiment, SaturationStructMatchesScalarOnHealthyRange)
{
    SimConfig cfg = quickCfg();
    cfg.warmupCycles = 200;
    cfg.measureCycles = 800;
    cfg.drainCycles = 8000;
    const SaturationResult res = findSaturation(cfg, 0.05, 1.0, 0.05,
                                                400.0);
    EXPECT_FALSE(res.belowRange);
    EXPECT_GT(res.probes, 1u);
    EXPECT_DOUBLE_EQ(findSaturationLoad(cfg, 0.05, 1.0, 0.05, 400.0),
                     res.load);
}

// Regression: the drain loop stepped fixed 256-cycle quanta and could
// overrun cfg.drainCycles by up to 255 cycles.
TEST(Experiment, DrainBudgetIsRespectedExactly)
{
    SimConfig cfg = quickCfg();
    cfg.injectionRate = 0.95;
    cfg.messageLength = 32;
    cfg.drainCycles = 1000;  // 3*256 + 232: exercises the final clamp.
    const RunResult r = runExperiment(cfg);
    ASSERT_FALSE(r.drained);  // Budget exhausted, so the clamp bound.
    EXPECT_EQ(r.cyclesRun,
              cfg.warmupCycles + cfg.measureCycles + cfg.drainCycles);
}

// --- Parallel engine: bit-identity with the sequential path ---------

void
expectIdenticalResults(const RunResult& a, const RunResult& b)
{
    EXPECT_DOUBLE_EQ(a.offeredLoad, b.offeredLoad);
    EXPECT_DOUBLE_EQ(a.acceptedThroughput, b.acceptedThroughput);
    EXPECT_DOUBLE_EQ(a.avgLatency, b.avgLatency);
    EXPECT_DOUBLE_EQ(a.netLatency, b.netLatency);
    EXPECT_DOUBLE_EQ(a.p50Latency, b.p50Latency);
    EXPECT_DOUBLE_EQ(a.p95Latency, b.p95Latency);
    EXPECT_DOUBLE_EQ(a.p99Latency, b.p99Latency);
    EXPECT_DOUBLE_EQ(a.maxLatency, b.maxLatency);
    EXPECT_DOUBLE_EQ(a.latencyStddev, b.latencyStddev);
    EXPECT_DOUBLE_EQ(a.avgAttempts, b.avgAttempts);
    EXPECT_DOUBLE_EQ(a.killsPerMessage, b.killsPerMessage);
    EXPECT_DOUBLE_EQ(a.padOverhead, b.padOverhead);
    EXPECT_EQ(a.measuredMessages, b.measuredMessages);
    EXPECT_EQ(a.deliveredMeasured, b.deliveredMeasured);
    EXPECT_EQ(a.totalKills, b.totalKills);
    EXPECT_EQ(a.pathWideKills, b.pathWideKills);
    EXPECT_EQ(a.escapeAllocations, b.escapeAllocations);
    EXPECT_EQ(a.misrouteHops, b.misrouteHops);
    EXPECT_EQ(a.corruptions, b.corruptions);
    EXPECT_EQ(a.corruptedDeliveries, b.corruptedDeliveries);
    EXPECT_EQ(a.orderViolations, b.orderViolations);
    EXPECT_EQ(a.duplicateDeliveries, b.duplicateDeliveries);
    EXPECT_EQ(a.refusals, b.refusals);
    EXPECT_EQ(a.deadlocked, b.deadlocked);
    EXPECT_EQ(a.drained, b.drained);
    EXPECT_EQ(a.cyclesRun, b.cyclesRun);
    EXPECT_EQ(a.flitEvents, b.flitEvents);
    // wallSeconds is host timing, legitimately different.
}

TEST(Parallelism, SweepIsBitIdenticalToSequential)
{
    const std::vector<double> loads = {0.05, 0.15, 0.25, 0.35, 0.10,
                                       0.20};
    SimConfig seq = quickCfg();
    seq.jobs = 1;
    SimConfig par = quickCfg();
    par.jobs = 4;
    const auto rs = sweepLoads(seq, loads);
    const auto rp = sweepLoads(par, loads);
    ASSERT_EQ(rs.size(), rp.size());
    for (std::size_t i = 0; i < rs.size(); ++i) {
        SCOPED_TRACE("load index " + std::to_string(i));
        expectIdenticalResults(rs[i], rp[i]);
    }
}

TEST(Parallelism, ReplicationIsBitIdenticalToSequential)
{
    SimConfig seq = quickCfg();
    seq.jobs = 1;
    SimConfig par = quickCfg();
    par.jobs = 4;
    const ReplicatedResult rs = runReplicated(seq, 4);
    const ReplicatedResult rp = runReplicated(par, 4);
    EXPECT_DOUBLE_EQ(rs.meanLatency, rp.meanLatency);
    EXPECT_DOUBLE_EQ(rs.latencyCi95, rp.latencyCi95);
    EXPECT_DOUBLE_EQ(rs.meanThroughput, rp.meanThroughput);
    EXPECT_DOUBLE_EQ(rs.throughputCi95, rp.throughputCi95);
    EXPECT_DOUBLE_EQ(rs.meanKillsPerMessage, rp.meanKillsPerMessage);
    EXPECT_EQ(rs.allDrained, rp.allDrained);
    EXPECT_EQ(rs.anyDeadlock, rp.anyDeadlock);
    EXPECT_EQ(rs.flitEvents, rp.flitEvents);
}

TEST(Parallelism, CampaignIsBitIdenticalToSequential)
{
    CampaignConfig cc;
    cc.base = quickCfg();
    cc.base.protocol = ProtocolKind::Fcr;
    cc.base.timeout = 32;
    cc.base.maxRetries = 0;
    cc.base.misrouteAfterRetries = 1;
    cc.base.misrouteBudget = 4;
    cc.base.dynamicLinkKills = 1;
    cc.trials = 6;

    cc.base.jobs = 1;
    std::vector<TrialOutcome> seq;
    const CampaignSummary ss = runCampaign(cc, &seq);

    cc.base.jobs = 4;
    std::vector<TrialOutcome> par;
    const CampaignSummary sp = runCampaign(cc, &par);

    EXPECT_EQ(ss.accountedTrials, sp.accountedTrials);
    EXPECT_EQ(ss.deadlockedTrials, sp.deadlockedTrials);
    EXPECT_EQ(ss.accepted, sp.accepted);
    EXPECT_EQ(ss.delivered, sp.delivered);
    EXPECT_EQ(ss.refused, sp.refused);
    EXPECT_EQ(ss.pending, sp.pending);
    EXPECT_EQ(ss.duplicates, sp.duplicates);
    EXPECT_EQ(ss.flitEvents, sp.flitEvents);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        SCOPED_TRACE("trial " + std::to_string(i));
        EXPECT_EQ(seq[i].trial, par[i].trial);
        EXPECT_EQ(seq[i].seed, par[i].seed);
        EXPECT_EQ(seq[i].accepted, par[i].accepted);
        EXPECT_EQ(seq[i].delivered, par[i].delivered);
        EXPECT_EQ(seq[i].cyclesRun, par[i].cyclesRun);
        EXPECT_EQ(seq[i].flitEvents, par[i].flitEvents);
    }
}

TEST(Parallelism, RunManyHandlesEmptyInput)
{
    EXPECT_TRUE(runMany({}).empty());
}

} // namespace
} // namespace crnet
