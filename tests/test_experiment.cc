/**
 * @file
 * Tests for the experiment harness: phases, summaries, sweeps,
 * saturation search.
 */

#include <gtest/gtest.h>

#include "src/core/experiment.hh"

namespace crnet {
namespace {

SimConfig
quickCfg()
{
    SimConfig cfg;
    cfg.radixK = 4;
    cfg.dimensionsN = 2;
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = ProtocolKind::Cr;
    cfg.injectionRate = 0.1;
    cfg.messageLength = 8;
    cfg.warmupCycles = 300;
    cfg.measureCycles = 1500;
    cfg.drainCycles = 30000;
    cfg.seed = 3;
    return cfg;
}

TEST(Experiment, LowLoadRunDrainsWithSaneNumbers)
{
    const RunResult r = runExperiment(quickCfg());
    EXPECT_TRUE(r.drained);
    EXPECT_FALSE(r.deadlocked);
    EXPECT_GT(r.measuredMessages, 0u);
    EXPECT_EQ(r.deliveredMeasured, r.measuredMessages);
    EXPECT_GT(r.avgLatency, 0.0);
    EXPECT_GE(r.avgLatency, r.netLatency);
    EXPECT_NEAR(r.acceptedThroughput, r.offeredLoad, 0.03);
    EXPECT_GE(r.p95Latency, r.p50Latency);
    EXPECT_GE(r.p99Latency, r.p95Latency);
    EXPECT_EQ(r.orderViolations, 0u);
    EXPECT_EQ(r.duplicateDeliveries, 0u);
    EXPECT_EQ(r.corruptedDeliveries, 0u);
}

TEST(Experiment, LatencyIncreasesWithLoad)
{
    const auto results = sweepLoads(quickCfg(), {0.05, 0.3});
    ASSERT_EQ(results.size(), 2u);
    EXPECT_LT(results[0].avgLatency, results[1].avgLatency);
}

TEST(Experiment, ResultsAreReproducibleAcrossRuns)
{
    const RunResult a = runExperiment(quickCfg());
    const RunResult b = runExperiment(quickCfg());
    EXPECT_EQ(a.measuredMessages, b.measuredMessages);
    EXPECT_DOUBLE_EQ(a.avgLatency, b.avgLatency);
    EXPECT_EQ(a.totalKills, b.totalKills);
}

TEST(Experiment, DifferentSeedsDiffer)
{
    SimConfig cfg = quickCfg();
    const RunResult a = runExperiment(cfg);
    cfg.seed = 999;
    const RunResult b = runExperiment(cfg);
    EXPECT_NE(a.measuredMessages, b.measuredMessages);
}

TEST(Experiment, SaturationSearchFindsReasonablePoint)
{
    SimConfig cfg = quickCfg();
    cfg.warmupCycles = 200;
    cfg.measureCycles = 800;
    cfg.drainCycles = 8000;
    const double sat = findSaturationLoad(cfg, 0.05, 1.0, 0.05, 400.0);
    // A 4x4 CR torus saturates well above trickle load and cannot
    // exceed the injection bound.
    EXPECT_GT(sat, 0.1);
    EXPECT_LT(sat, 1.0);
}

TEST(Experiment, ReplicatedRunsAggregateAcrossSeeds)
{
    SimConfig cfg = quickCfg();
    const ReplicatedResult rep = runReplicated(cfg, 3);
    EXPECT_EQ(rep.replications, 3u);
    EXPECT_TRUE(rep.allDrained);
    EXPECT_FALSE(rep.anyDeadlock);
    EXPECT_GT(rep.meanLatency, 0.0);
    EXPECT_GT(rep.meanThroughput, 0.0);
    // Different seeds genuinely differ, so the CI is nonzero but far
    // smaller than the mean at this easy operating point.
    EXPECT_GT(rep.latencyCi95, 0.0);
    EXPECT_LT(rep.latencyCi95, rep.meanLatency);
}

TEST(Experiment, ReplicatedZeroIsFatal)
{
    EXPECT_DEATH(runReplicated(quickCfg(), 0), "replication");
}

TEST(Experiment, OverloadedRunReportsNotDrained)
{
    SimConfig cfg = quickCfg();
    cfg.injectionRate = 0.95;
    cfg.messageLength = 32;
    cfg.drainCycles = 2000;  // Deliberately too small to drain.
    const RunResult r = runExperiment(cfg);
    EXPECT_FALSE(r.drained);
}

} // namespace
} // namespace crnet
