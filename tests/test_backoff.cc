/**
 * @file
 * Unit tests for retransmission-gap policies.
 */

#include <gtest/gtest.h>

#include "src/nic/backoff.hh"

namespace crnet {
namespace {

TEST(Backoff, StaticGapIsConstant)
{
    SimConfig cfg;
    cfg.backoff = BackoffScheme::Static;
    cfg.backoffGap = 24;
    Rng rng(1);
    for (std::uint32_t kills = 1; kills < 10; ++kills)
        EXPECT_EQ(retransmissionGap(cfg, kills, rng), 24u);
}

TEST(Backoff, ExponentialStaysInWindow)
{
    SimConfig cfg;
    cfg.backoff = BackoffScheme::Exponential;
    cfg.backoffGap = 16;
    cfg.backoffCap = 100000;
    Rng rng(2);
    for (std::uint32_t kills = 1; kills <= 8; ++kills) {
        const std::uint64_t window = std::uint64_t{1} << kills;
        for (int i = 0; i < 200; ++i) {
            const Cycle g = retransmissionGap(cfg, kills, rng);
            EXPECT_LT(g, 16 * window);
            EXPECT_EQ(g % 16, 0u);  // Multiples of the base gap.
        }
    }
}

TEST(Backoff, ExponentialMeanGrowsWithKills)
{
    SimConfig cfg;
    cfg.backoff = BackoffScheme::Exponential;
    cfg.backoffGap = 16;
    cfg.backoffCap = 1u << 30;
    Rng rng(3);
    double prev_mean = -1.0;
    for (std::uint32_t kills = 1; kills <= 6; ++kills) {
        double sum = 0.0;
        const int n = 4000;
        for (int i = 0; i < n; ++i)
            sum += static_cast<double>(
                retransmissionGap(cfg, kills, rng));
        const double mean = sum / n;
        EXPECT_GT(mean, prev_mean);
        prev_mean = mean;
    }
}

TEST(Backoff, CapLimitsGap)
{
    SimConfig cfg;
    cfg.backoff = BackoffScheme::Exponential;
    cfg.backoffGap = 16;
    cfg.backoffCap = 64;
    Rng rng(4);
    for (int i = 0; i < 500; ++i)
        EXPECT_LE(retransmissionGap(cfg, 10, rng), 64u);
}

TEST(Backoff, ExponentCapsAtTen)
{
    SimConfig cfg;
    cfg.backoff = BackoffScheme::Exponential;
    cfg.backoffGap = 1;
    cfg.backoffCap = 1u << 20;
    Rng rng(5);
    // kills = 50 must behave like kills = 10 (window 1024).
    for (int i = 0; i < 2000; ++i)
        EXPECT_LT(retransmissionGap(cfg, 50, rng), 1024u);
}

} // namespace
} // namespace crnet
