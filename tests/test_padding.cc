/**
 * @file
 * Unit tests for the CR/FCR padding rules — the protocol's central
 * safety lever.
 */

#include <gtest/gtest.h>

#include "src/nic/padding.hh"

namespace crnet {
namespace {

TEST(Padding, PathCapacityFormula)
{
    // hops=0 (adjacent NICs... minimal case: src router == dst
    // router is impossible, but hops=1 is): capacity =
    // (hops+2)*depth + hops + 2.
    EXPECT_EQ(pathFlitCapacity(1, 2), 3u * 2 + 3);
    EXPECT_EQ(pathFlitCapacity(4, 2), 6u * 2 + 6);
    EXPECT_EQ(pathFlitCapacity(4, 8), 6u * 8 + 6);
}

TEST(Padding, NoneProtocolJustAddsTail)
{
    EXPECT_EQ(wireLength(ProtocolKind::None, 16, 4, 2, 2), 17u);
    EXPECT_EQ(wireLength(ProtocolKind::None, 2, 30, 16, 2), 3u);
}

TEST(Padding, CrPadsShortMessagesToPathDepth)
{
    const std::uint32_t cap = pathFlitCapacity(4, 2);  // 18.
    EXPECT_EQ(wireLength(ProtocolKind::Cr, 4, 4, 2, 2), cap + 2);
}

TEST(Padding, CrLeavesLongMessagesAlone)
{
    const std::uint32_t cap = pathFlitCapacity(2, 2);  // 12.
    EXPECT_EQ(wireLength(ProtocolKind::Cr, 64, 2, 2, 2), 65u);
    EXPECT_GT(65u, cap + 2);
}

TEST(Padding, CrWireNeverBelowCapacity)
{
    for (std::uint32_t hops = 1; hops <= 16; ++hops) {
        for (std::uint32_t depth : {1u, 2u, 4u, 8u}) {
            for (std::uint32_t len : {2u, 8u, 32u, 128u}) {
                const auto wire = wireLength(ProtocolKind::Cr, len,
                                             hops, depth, 2);
                EXPECT_GE(wire, pathFlitCapacity(hops, depth) + 2)
                    << "hops=" << hops << " depth=" << depth
                    << " len=" << len;
                EXPECT_GE(wire, len + 1);
            }
        }
    }
}

TEST(Padding, FcrAlwaysAddsFullCapacityAfterPayload)
{
    // FCR: every payload flit must be followed by >= capacity pads,
    // so wire = payload + capacity + slack regardless of payload.
    for (std::uint32_t len : {2u, 16u, 200u}) {
        const auto wire = wireLength(ProtocolKind::Fcr, len, 4, 2, 2);
        EXPECT_EQ(wire, len + pathFlitCapacity(4, 2) + 2);
    }
}

TEST(Padding, FcrCostsMoreThanCr)
{
    for (std::uint32_t len : {2u, 16u, 64u}) {
        EXPECT_GT(wireLength(ProtocolKind::Fcr, len, 6, 2, 2),
                  wireLength(ProtocolKind::Cr, len, 6, 2, 2));
    }
}

TEST(Padding, OverheadIndependentOfVcCount)
{
    // The paper: "padding overhead is independent of the number of
    // virtual channels" — wire length depends on buffer depth and
    // hops only; the VC count never enters wireLength's signature.
    // This test documents the claim structurally.
    const auto w = wireLength(ProtocolKind::Cr, 16, 8, 2, 2);
    EXPECT_EQ(w, 32u);  // capacity(8,2)=30, +2 slack; payload 17 < 32.
}

TEST(Padding, RegressionAnchors)
{
    EXPECT_EQ(pathFlitCapacity(8, 2), 30u);
    EXPECT_EQ(wireLength(ProtocolKind::Cr, 16, 8, 2, 2), 32u);
    EXPECT_EQ(wireLength(ProtocolKind::Fcr, 16, 8, 2, 2), 48u);
}

TEST(Padding, DeeperBuffersPadMore)
{
    EXPECT_LT(wireLength(ProtocolKind::Cr, 4, 4, 2, 2),
              wireLength(ProtocolKind::Cr, 4, 4, 16, 2));
}

} // namespace
} // namespace crnet
