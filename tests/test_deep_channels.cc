/**
 * @file
 * Deep-network tests: multi-cycle channel latency (long wires), the
 * paper's "Network Depth" discussion. Checks latency scaling, the
 * credit round-trip throughput bound, padding growth, and that every
 * protocol invariant survives the deeper pipeline.
 */

#include <gtest/gtest.h>

#include "src/core/network.hh"
#include "src/nic/padding.hh"

namespace crnet {
namespace {

SimConfig
deepCfg(std::uint32_t latency, std::uint32_t depth = 2)
{
    SimConfig cfg;
    cfg.topology = TopologyKind::Torus;
    cfg.radixK = 4;
    cfg.dimensionsN = 2;
    cfg.numVcs = 1;
    cfg.bufferDepth = depth;
    cfg.channelLatency = latency;
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = ProtocolKind::Cr;
    cfg.injectionRate = 0.0;
    cfg.seed = 31;
    return cfg;
}

Cycle
zeroLoadLatency(std::uint32_t chan_latency)
{
    Network net(deepCfg(chan_latency));
    net.setTrafficEnabled(false);
    const MsgId id = net.sendMessage(0, 10, 8);  // 4 hops.
    for (Cycle i = 0; i < 5000 && !net.isDelivered(id); ++i)
        net.tick();
    EXPECT_TRUE(net.isDelivered(id));
    const DeliveredMessage* d = net.deliveryRecord(id);
    return d->deliveredAt - d->createdAt;
}

TEST(DeepChannels, LatencyGrowsWithWireLength)
{
    const Cycle l1 = zeroLoadLatency(1);
    const Cycle l2 = zeroLoadLatency(2);
    const Cycle l4 = zeroLoadLatency(4);
    EXPECT_GT(l2, l1);
    EXPECT_GT(l4, l2);
    // Head latency grows by ~hops*(L-1); serialization also slows
    // because deeper pipes lengthen the padded wire. Sanity bound:
    EXPECT_LT(l4, 12 * l1);
}

TEST(DeepChannels, PaddingGrowsWithChannelLatency)
{
    EXPECT_LT(wireLength(ProtocolKind::Cr, 8, 4, 2, 2, 1),
              wireLength(ProtocolKind::Cr, 8, 4, 2, 2, 4));
    EXPECT_EQ(pathFlitCapacity(4, 2, 4), 6u * 2 + 4 * 4 + 2);
}

TEST(DeepChannels, CreditRoundTripBoundsThroughput)
{
    // With depth 2 and latency 4, one VC sustains at most
    // 2 / (2*4 + ~1) flits/cycle. Deeper buffers restore full rate —
    // the classic reason deep networks need more buffering.
    auto net_latency = [&](std::uint32_t depth) {
        Network net(deepCfg(4, depth));
        net.setTrafficEnabled(false);
        const MsgId id = net.sendMessage(0, 10, 32);
        for (Cycle i = 0; i < 20000 && !net.isDelivered(id); ++i)
            net.tick();
        EXPECT_TRUE(net.isDelivered(id));
        const DeliveredMessage* d = net.deliveryRecord(id);
        return d->deliveredAt - d->headInjectedAt;
    };
    const Cycle shallow = net_latency(2);
    const Cycle deep = net_latency(12);
    EXPECT_LT(deep, shallow);
}

TEST(DeepChannels, InvariantsHoldUnderLoadAndKills)
{
    SimConfig cfg = deepCfg(3);
    cfg.injectionRate = 0.15;
    cfg.timeout = 48;
    Network net(cfg);
    for (Cycle i = 0; i < 8000; ++i) {
        net.tick();
        ASSERT_FALSE(net.deadlocked());
    }
    net.setTrafficEnabled(false);
    Cycle spent = 0;
    while (!net.quiescent() && spent < 60000) {
        net.tick();
        ++spent;
    }
    ASSERT_TRUE(net.quiescent());
    const NetworkStats& s = net.stats();
    EXPECT_GT(s.messagesDelivered.value(), 50u);
    EXPECT_EQ(s.flitsInjected.value(),
              s.flitsConsumed.value() + s.router.flitsPurged.value() +
                  s.router.stragglersDropped.value());
    EXPECT_EQ(s.messagesCommitted.value(),
              s.messagesDelivered.value());
    EXPECT_EQ(s.orderViolations.value(), 0u);
    EXPECT_EQ(s.duplicateDeliveries.value(), 0u);
}

TEST(DeepChannels, KillRecoveryWorksAcrossDeepPipes)
{
    SimConfig cfg = deepCfg(4);
    cfg.injectionRate = 0.3;
    cfg.messageLength = 16;
    cfg.timeout = 64;
    Network net(cfg);
    for (Cycle i = 0; i < 15000; ++i) {
        net.tick();
        ASSERT_FALSE(net.deadlocked());
    }
    EXPECT_GT(net.stats().messagesDelivered.value(), 50u);
}

TEST(DeepChannels, FcrStillNeverDeliversCorrupted)
{
    SimConfig cfg = deepCfg(2);
    cfg.protocol = ProtocolKind::Fcr;
    cfg.transientFaultRate = 0.001;
    cfg.injectionRate = 0.05;
    cfg.timeout = 48;
    Network net(cfg);
    for (Cycle i = 0; i < 20000; ++i)
        net.tick();
    EXPECT_GT(net.stats().messagesDelivered.value(), 30u);
    EXPECT_EQ(net.stats().corruptedDeliveries.value(), 0u);
}

TEST(DeepChannels, ConfigBoundsEnforced)
{
    SimConfig cfg;
    cfg.channelLatency = 0;
    EXPECT_DEATH(cfg.validate(), "channelLatency");
    cfg.channelLatency = 65;
    EXPECT_DEATH(cfg.validate(), "channelLatency");
}

} // namespace
} // namespace crnet
