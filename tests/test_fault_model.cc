/**
 * @file
 * Unit tests for the fault-injection model.
 */

#include <gtest/gtest.h>

#include "src/fault/fault_model.hh"

namespace crnet {
namespace {

TEST(FaultModel, AllLinksHealthyByDefault)
{
    TorusTopology t(4, 2);
    FaultModel fm(t, 0.0, Rng(1));
    for (NodeId n = 0; n < t.numNodes(); ++n)
        for (PortId p = 0; p < t.numPorts(); ++p)
            EXPECT_TRUE(fm.linkOk(n, p));
    EXPECT_EQ(fm.deadLinks().size(), 0u);
}

TEST(FaultModel, PermanentFaultsKillBothDirections)
{
    TorusTopology t(4, 2);
    FaultModel fm(t, 0.0, Rng(2));
    fm.injectPermanentFaults(3);
    EXPECT_EQ(fm.permanentFaultCount(), 3u);
    const auto dead = fm.deadLinks();
    EXPECT_EQ(dead.size(), 6u);  // 3 physical links, 2 directions.
    for (const DeadLink& d : dead) {
        const NodeId nbr = t.neighbor(d.node, d.port);
        EXPECT_FALSE(fm.linkOk(d.node, d.port));
        EXPECT_FALSE(fm.linkOk(nbr, oppositePort(d.port)));
        EXPECT_EQ(d.kind, DeadLinkKind::Bidirectional);
    }
}

TEST(FaultModel, KillLinkKillsBothDirections)
{
    TorusTopology t(4, 2);
    FaultModel fm(t, 0.0, Rng(20));
    const PortId p = makePort(1, Direction::Plus);
    fm.killLink(3, p);
    EXPECT_FALSE(fm.linkOk(3, p));
    EXPECT_FALSE(fm.linkOk(t.neighbor(3, p), oppositePort(p)));
    const auto dead = fm.deadLinks();
    ASSERT_EQ(dead.size(), 2u);
    EXPECT_EQ(dead[0].kind, DeadLinkKind::Bidirectional);
    EXPECT_EQ(dead[1].kind, DeadLinkKind::Bidirectional);
}

TEST(FaultModel, DeadLinksReportsDirectedKind)
{
    TorusTopology t(4, 2);
    FaultModel fm(t, 0.0, Rng(21));
    const PortId p = makePort(0, Direction::Plus);
    fm.killDirectedLink(5, p);
    const auto dead = fm.deadLinks();
    ASSERT_EQ(dead.size(), 1u);
    EXPECT_EQ(dead[0].node, 5u);
    EXPECT_EQ(dead[0].port, p);
    EXPECT_EQ(dead[0].kind, DeadLinkKind::Directed);
}

TEST(FaultModel, ReviveLinkRestoresBothDirections)
{
    TorusTopology t(4, 2);
    FaultModel fm(t, 0.0, Rng(22));
    const PortId p = makePort(0, Direction::Plus);
    fm.killLink(7, p);
    EXPECT_FALSE(fm.linkOk(7, p));
    fm.reviveLink(7, p);
    EXPECT_TRUE(fm.linkOk(7, p));
    EXPECT_TRUE(fm.linkOk(t.neighbor(7, p), oppositePort(p)));
    EXPECT_EQ(fm.deadLinks().size(), 0u);
}

TEST(FaultModel, AllowPartialReturnsPlacedCount)
{
    TorusTopology t(2, 1);  // 2-node ring: nothing killable at floor 2.
    FaultModel fm(t, 0.0, Rng(23));
    EXPECT_EQ(fm.injectPermanentFaults(2, 2, true), 0u);
    EXPECT_EQ(fm.deadLinks().size(), 0u);
}

TEST(FaultModel, BurstRateOverridesBaseUntilCleared)
{
    TorusTopology t(4, 2);
    FaultModel fm(t, 0.001, Rng(24));
    EXPECT_DOUBLE_EQ(fm.effectiveTransientRate(), 0.001);
    fm.setBurstRate(0.5);
    EXPECT_DOUBLE_EQ(fm.effectiveTransientRate(), 0.5);
    fm.clearBurstRate();
    EXPECT_DOUBLE_EQ(fm.effectiveTransientRate(), 0.001);
}

TEST(FaultModel, DegreeFloorIsRespected)
{
    TorusTopology t(4, 2);
    FaultModel fm(t, 0.0, Rng(3));
    fm.injectPermanentFaults(8, 2);
    for (NodeId n = 0; n < t.numNodes(); ++n) {
        std::uint32_t healthy = 0;
        for (PortId p = 0; p < t.numPorts(); ++p)
            healthy += fm.linkOk(n, p);
        EXPECT_GE(healthy, 2u) << "node " << n;
    }
}

TEST(FaultModel, ImpossibleFaultCountIsFatal)
{
    TorusTopology t(2, 1);  // 2-node ring: 2 physical links.
    FaultModel fm(t, 0.0, Rng(4));
    EXPECT_DEATH(fm.injectPermanentFaults(2, 2), "permanent faults");
}

TEST(FaultModel, KillDirectedLinkIsOneWay)
{
    TorusTopology t(4, 2);
    FaultModel fm(t, 0.0, Rng(5));
    const PortId p = makePort(0, Direction::Plus);
    fm.killDirectedLink(0, p);
    EXPECT_FALSE(fm.linkOk(0, p));
    EXPECT_TRUE(fm.linkOk(t.neighbor(0, p), oppositePort(p)));
}

TEST(FaultModel, KillNonexistentLinkIsFatal)
{
    MeshTopology m(4, 2);
    FaultModel fm(m, 0.0, Rng(6));
    EXPECT_DEATH(
        fm.killDirectedLink(0, makePort(0, Direction::Minus)),
        "nonexistent");
}

TEST(FaultModel, TransientRateZeroNeverCorrupts)
{
    TorusTopology t(4, 2);
    FaultModel fm(t, 0.0, Rng(7));
    Flit f;
    f.stampCrc();
    for (int i = 0; i < 10000; ++i)
        EXPECT_FALSE(fm.maybeCorrupt(f));
    EXPECT_EQ(fm.corruptionsInjected(), 0u);
}

TEST(FaultModel, TransientRateMatchesStatistically)
{
    TorusTopology t(4, 2);
    FaultModel fm(t, 0.01, Rng(8));
    int hits = 0;
    const int n = 100000;
    for (int i = 0; i < n; ++i) {
        Flit f;
        f.stampCrc();
        hits += fm.maybeCorrupt(f);
    }
    EXPECT_NEAR(static_cast<double>(hits) / n, 0.01, 0.002);
    EXPECT_EQ(fm.corruptionsInjected(),
              static_cast<std::uint64_t>(hits));
}

TEST(FaultModel, CorruptionBreaksChecksumAndSetsFlag)
{
    TorusTopology t(4, 2);
    FaultModel fm(t, 1.0, Rng(9));
    Flit f;
    f.payload = 0x1234;
    f.stampCrc();
    ASSERT_TRUE(fm.maybeCorrupt(f));
    EXPECT_TRUE(f.corrupted);
    EXPECT_FALSE(f.checksumOk());
}

TEST(FaultModel, BadRateRejected)
{
    TorusTopology t(4, 2);
    EXPECT_DEATH(FaultModel(t, 1.5, Rng(10)), "rate");
}

} // namespace
} // namespace crnet
