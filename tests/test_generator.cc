/**
 * @file
 * Unit tests for the open-loop traffic generator.
 */

#include <gtest/gtest.h>

#include "src/traffic/generator.hh"

namespace crnet {
namespace {

SimConfig
genCfg(double load, std::uint32_t len)
{
    SimConfig cfg;
    cfg.radixK = 4;
    cfg.dimensionsN = 2;
    cfg.injectionRate = load;
    cfg.messageLength = len;
    return cfg;
}

TEST(Generator, OfferedLoadMatchesConfig)
{
    auto cfg = genCfg(0.25, 16);
    auto topo = makeTopology(cfg);
    TrafficGenerator gen(cfg, *topo, Rng(1));
    EXPECT_DOUBLE_EQ(gen.offeredLoad(), 0.25);
}

TEST(Generator, ArrivalRateIsLoadOverLength)
{
    auto cfg = genCfg(0.32, 16);  // P(msg) = 0.02 per node-cycle.
    auto topo = makeTopology(cfg);
    TrafficGenerator gen(cfg, *topo, Rng(2));
    int msgs = 0;
    const int cycles = 200000;
    for (int t = 0; t < cycles; ++t)
        msgs += gen.maybeGenerate(3, t, false).has_value();
    EXPECT_NEAR(static_cast<double>(msgs) / cycles, 0.02, 0.002);
}

TEST(Generator, MessagesAreWellFormed)
{
    auto cfg = genCfg(0.5, 16);
    auto topo = makeTopology(cfg);
    TrafficGenerator gen(cfg, *topo, Rng(3));
    for (int t = 0; t < 5000; ++t) {
        auto m = gen.maybeGenerate(7, t, true);
        if (!m)
            continue;
        EXPECT_EQ(m->src, 7u);
        EXPECT_NE(m->dst, 7u);
        EXPECT_LT(m->dst, 16u);
        EXPECT_EQ(m->payloadLen, 16u);
        EXPECT_EQ(m->createdAt, static_cast<Cycle>(t));
        EXPECT_TRUE(m->measured);
        EXPECT_EQ(m->attempt, 0u);
    }
}

TEST(Generator, PairSeqIncreasesPerPair)
{
    auto cfg = genCfg(0.5, 16);
    auto topo = makeTopology(cfg);
    TrafficGenerator gen(cfg, *topo, Rng(4));
    const auto a = gen.makeMessage(0, 1, 8, 0, false);
    const auto b = gen.makeMessage(0, 1, 8, 1, false);
    const auto c = gen.makeMessage(0, 2, 8, 2, false);
    EXPECT_EQ(a.pairSeq, 0u);
    EXPECT_EQ(b.pairSeq, 1u);
    EXPECT_EQ(c.pairSeq, 0u);  // Different pair.
}

TEST(Generator, MsgIdsAreUnique)
{
    auto cfg = genCfg(0.5, 16);
    auto topo = makeTopology(cfg);
    TrafficGenerator gen(cfg, *topo, Rng(5));
    const auto a = gen.makeMessage(0, 1, 8, 0, false);
    const auto b = gen.makeMessage(2, 3, 8, 0, false);
    EXPECT_NE(a.id, b.id);
    EXPECT_EQ(gen.generatedCount(), 2u);
}

TEST(Generator, BimodalMixesLengths)
{
    auto cfg = genCfg(0.4, 8);
    cfg.messageLengthB = 64;
    cfg.bimodalFracB = 0.25;
    auto topo = makeTopology(cfg);
    TrafficGenerator gen(cfg, *topo, Rng(6));
    int shorts = 0, longs = 0;
    for (int t = 0; t < 400000 && longs + shorts < 2000; ++t) {
        auto m = gen.maybeGenerate(1, t, false);
        if (!m)
            continue;
        if (m->payloadLen == 8)
            ++shorts;
        else if (m->payloadLen == 64)
            ++longs;
        else
            FAIL() << "unexpected length " << m->payloadLen;
    }
    const double frac_b =
        static_cast<double>(longs) / (shorts + longs);
    EXPECT_NEAR(frac_b, 0.25, 0.05);
}

TEST(Generator, ExcessiveRateIsFatal)
{
    auto cfg = genCfg(0.9, 8);
    cfg.messageLength = 0;  // Would make P > 1... but len < 2 invalid;
    cfg.messageLength = 2;
    cfg.injectionRate = 2.0 * 2;  // P = 2.
    cfg.injectionChannels = 4;    // Passes validate's rate bound.
    auto topo = makeTopology(cfg);
    EXPECT_DEATH(TrafficGenerator(cfg, *topo, Rng(7)),
                 "exceeds one message per cycle");
}

TEST(Generator, SelfTrafficRequestIsFatal)
{
    auto cfg = genCfg(0.1, 8);
    auto topo = makeTopology(cfg);
    TrafficGenerator gen(cfg, *topo, Rng(8));
    EXPECT_DEATH(gen.makeMessage(3, 3, 8, 0, false), "self-traffic");
}

} // namespace
} // namespace crnet
