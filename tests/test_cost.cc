/**
 * @file
 * Tests for the router cost model — the paper's implementation-
 * complexity claims as checkable orderings.
 */

#include <gtest/gtest.h>

#include "src/cost/router_cost.hh"

namespace crnet {
namespace {

RouterCostParams
params(RoutingKind routing, std::uint32_t vcs,
       ProtocolKind protocol = ProtocolKind::None,
       std::uint32_t depth = 2)
{
    RouterCostParams p;
    p.dims = 2;
    p.numVcs = vcs;
    p.bufferDepth = depth;
    p.routing = routing;
    p.protocol = protocol;
    return p;
}

TEST(RouterCost, CycleTimeIsMaxOfStages)
{
    const RouterCost c =
        estimateRouterCost(params(RoutingKind::Duato, 3));
    EXPECT_GE(c.cycleTime, c.routingDelay);
    EXPECT_GE(c.cycleTime, c.vcAllocDelay);
    EXPECT_GE(c.cycleTime, c.switchDelay);
    EXPECT_GE(c.cycleTime, c.flowControlDelay);
    EXPECT_DOUBLE_EQ(c.cycleTimeNs, 0.7 * c.cycleTime);
}

TEST(RouterCost, SingleVcHasNoVcAllocationStage)
{
    const RouterCost c = estimateRouterCost(
        params(RoutingKind::MinimalAdaptive, 1, ProtocolKind::Cr));
    EXPECT_EQ(c.vcAllocDelay, 0.0);
}

TEST(RouterCost, CrAdaptiveNoFasterLosesToNothingSimpler)
{
    // The paper's central complexity claim: CR's 1-VC adaptive router
    // cycles at least as fast as the 2-VC DOR torus router, and
    // strictly faster than VC-rich adaptive routers.
    const RouterCost cr = estimateRouterCost(
        params(RoutingKind::MinimalAdaptive, 1, ProtocolKind::Cr));
    const RouterCost dor2 =
        estimateRouterCost(params(RoutingKind::DimensionOrder, 2));
    const RouterCost duato3 =
        estimateRouterCost(params(RoutingKind::Duato, 3));
    const RouterCost duato8 =
        estimateRouterCost(params(RoutingKind::Duato, 8));
    EXPECT_LE(cr.cycleTime, dor2.cycleTime);
    EXPECT_LT(cr.cycleTime, duato3.cycleTime);
    EXPECT_LT(duato3.cycleTime, duato8.cycleTime);
}

TEST(RouterCost, MoreVcsCostMoreAreaAndTime)
{
    const RouterCost a =
        estimateRouterCost(params(RoutingKind::DimensionOrder, 2));
    const RouterCost b =
        estimateRouterCost(params(RoutingKind::DimensionOrder, 8));
    EXPECT_LT(a.routerGates, b.routerGates);
    EXPECT_LE(a.cycleTime, b.cycleTime);
}

TEST(RouterCost, DeeperBuffersCostAreaNotTime)
{
    const RouterCost a = estimateRouterCost(
        params(RoutingKind::DimensionOrder, 2, ProtocolKind::None, 2));
    const RouterCost b = estimateRouterCost(
        params(RoutingKind::DimensionOrder, 2, ProtocolKind::None,
               16));
    EXPECT_LT(a.routerGates, b.routerGates);
    EXPECT_DOUBLE_EQ(a.cycleTime, b.cycleTime);
}

TEST(RouterCost, CrKillSupportCostsAreaOnly)
{
    const RouterCost none = estimateRouterCost(
        params(RoutingKind::MinimalAdaptive, 1, ProtocolKind::None));
    const RouterCost cr = estimateRouterCost(
        params(RoutingKind::MinimalAdaptive, 1, ProtocolKind::Cr));
    EXPECT_DOUBLE_EQ(none.cycleTime, cr.cycleTime);
    EXPECT_LT(none.routerGates, cr.routerGates);
    EXPECT_LT(none.nicGates, cr.nicGates);
}

TEST(RouterCost, FcrNicCostsMoreThanCrNic)
{
    const RouterCost cr = estimateRouterCost(
        params(RoutingKind::MinimalAdaptive, 1, ProtocolKind::Cr));
    const RouterCost fcr = estimateRouterCost(
        params(RoutingKind::MinimalAdaptive, 1, ProtocolKind::Fcr));
    EXPECT_LT(cr.nicGates, fcr.nicGates);
    EXPECT_DOUBLE_EQ(cr.cycleTime, fcr.cycleTime);
}

TEST(RouterCost, LabelsAreDescriptive)
{
    EXPECT_EQ(costLabel(params(RoutingKind::DimensionOrder, 2)),
              "dor-2vc");
    EXPECT_EQ(costLabel(params(RoutingKind::MinimalAdaptive, 1,
                               ProtocolKind::Cr)),
              "minimal_adaptive-1vc+cr");
}

} // namespace
} // namespace crnet
