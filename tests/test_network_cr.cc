/**
 * @file
 * Network-level CR protocol tests: commit rule, retransmission
 * schemes, timeout schemes, multi-VC and multi-channel interfaces.
 */

#include <gtest/gtest.h>

#include "src/core/network.hh"

namespace crnet {
namespace {

SimConfig
crConfig()
{
    SimConfig cfg;
    cfg.topology = TopologyKind::Torus;
    cfg.radixK = 4;
    cfg.dimensionsN = 2;
    cfg.numVcs = 1;
    cfg.bufferDepth = 2;
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = ProtocolKind::Cr;
    cfg.injectionRate = 0.0;
    cfg.seed = 5;
    return cfg;
}

/** Sustained-load run that must stay healthy. */
void
expectHealthyRun(const SimConfig& cfg, Cycle cycles,
                 std::uint64_t min_delivered)
{
    Network net(cfg);
    for (Cycle i = 0; i < cycles; ++i) {
        net.tick();
        ASSERT_FALSE(net.deadlocked()) << "cycle " << net.now();
    }
    const NetworkStats& s = net.stats();
    EXPECT_GE(s.messagesDelivered.value(), min_delivered);
    EXPECT_EQ(s.orderViolations.value(), 0u);
    EXPECT_EQ(s.duplicateDeliveries.value(), 0u);
    EXPECT_EQ(s.corruptedDeliveries.value(), 0u);
}

TEST(NetworkCr, CommitCountEquallyDelivered)
{
    SimConfig cfg = crConfig();
    cfg.injectionRate = 0.15;
    Network net(cfg);
    net.run(5000);
    net.setTrafficEnabled(false);
    net.run(3000);  // Let everything finish.
    const NetworkStats& s = net.stats();
    // CR's commit rule: every committed (tail-injected) message is
    // delivered with no acknowledgement; once quiescent the counts
    // must agree exactly.
    EXPECT_TRUE(net.quiescent());
    EXPECT_EQ(s.messagesCommitted.value(),
              s.messagesDelivered.value());
}

TEST(NetworkCr, DorRoutingUnderCrSingleVcWorks)
{
    // The paper's "no virtual channels in toroidal networks" claim,
    // with deterministic DOR as the routing relation: a single VC
    // torus is deadlock-free under CR recovery.
    SimConfig cfg = crConfig();
    cfg.routing = RoutingKind::DimensionOrder;
    cfg.numVcs = 1;
    cfg.injectionRate = 0.2;
    expectHealthyRun(cfg, 15000, 300);
}

TEST(NetworkCr, MultipleVcsCarryConcurrentWorms)
{
    SimConfig cfg = crConfig();
    cfg.numVcs = 4;
    cfg.injectionRate = 0.3;
    cfg.timeout = 64;  // len/VCs scaled up for shared bandwidth.
    expectHealthyRun(cfg, 10000, 300);
}

TEST(NetworkCr, MultipleInterfaceChannelsIncreaseThroughput)
{
    SimConfig cfg = crConfig();
    cfg.radixK = 8;
    cfg.messageLength = 16;
    cfg.numVcs = 2;
    cfg.timeout = 8;  // len / VCs, the paper's setting.
    cfg.injectionRate = 0.9;  // Deep saturation: interface-bound.
    cfg.warmupCycles = 1000;
    cfg.measureCycles = 4000;

    auto throughput = [&](std::uint32_t channels) {
        SimConfig c = cfg;
        c.injectionChannels = channels;
        c.ejectionChannels = channels;
        Network net(c);
        net.run(c.warmupCycles);
        net.setMeasuring(true);
        net.run(c.measureCycles);
        net.setMeasuring(false);
        Cycle spent = 0;
        while (!net.measuredDrained() && spent < 60000) {
            net.run(256);
            spent += 256;
        }
        return static_cast<double>(
                   net.stats().measuredPayloadFlits.value()) /
               (64.0 * static_cast<double>(c.measureCycles));
    };

    const double thr1 = throughput(1);
    const double thr2 = throughput(2);
    // The paper's Fig. 14(e,f) point: interface bandwidth caps CR
    // peak throughput; widening the interface raises it. (Runs are
    // fully deterministic at a fixed seed.)
    EXPECT_GT(thr2, thr1 * 1.03);
}

TEST(NetworkCr, StaticAndDynamicBackoffBothRecover)
{
    for (auto scheme : {BackoffScheme::Static,
                        BackoffScheme::Exponential}) {
        SimConfig cfg = crConfig();
        cfg.radixK = 8;
        cfg.backoff = scheme;
        cfg.backoffGap = 16;
        cfg.injectionRate = 0.5;  // Stress: many kills.
        cfg.messageLength = 32;
        Network net(cfg);
        for (Cycle i = 0; i < 10000; ++i) {
            net.tick();
            ASSERT_FALSE(net.deadlocked());
        }
        EXPECT_GT(net.stats().sourceKills.value(), 0u);
        EXPECT_GT(net.stats().messagesDelivered.value(), 100u);
    }
}

TEST(NetworkCr, IminTimeoutSchemeWorksEndToEnd)
{
    SimConfig cfg = crConfig();
    cfg.radixK = 8;
    cfg.timeoutScheme = TimeoutScheme::SourceImin;
    cfg.timeout = 32;
    cfg.injectionRate = 0.5;
    cfg.messageLength = 32;
    expectHealthyRun(cfg, 10000, 200);
}

TEST(NetworkCr, PathWideTimeoutSchemeWorksEndToEnd)
{
    SimConfig cfg = crConfig();
    cfg.radixK = 8;
    cfg.timeoutScheme = TimeoutScheme::PathWide;
    cfg.timeout = 32;
    cfg.injectionRate = 0.5;
    cfg.messageLength = 32;
    Network net(cfg);
    for (Cycle i = 0; i < 10000; ++i) {
        net.tick();
        ASSERT_FALSE(net.deadlocked());
    }
    EXPECT_GT(net.stats().router.pathWideKills.value(), 0u);
    EXPECT_GT(net.stats().messagesDelivered.value(), 100u);
    EXPECT_EQ(net.stats().duplicateDeliveries.value(), 0u);
}

TEST(NetworkCr, DropAtBlockSchemeWorksEndToEnd)
{
    // The BBN-style related-work baseline: router-rejected headers,
    // source retries. Must stay live and deliver exactly once.
    SimConfig cfg = crConfig();
    cfg.radixK = 8;
    cfg.timeoutScheme = TimeoutScheme::DropAtBlock;
    cfg.timeout = 16;
    cfg.injectionRate = 0.4;
    cfg.messageLength = 32;
    Network net(cfg);
    for (Cycle i = 0; i < 10000; ++i) {
        net.tick();
        ASSERT_FALSE(net.deadlocked());
    }
    EXPECT_GT(net.stats().router.pathWideKills.value(), 0u);
    EXPECT_GT(net.stats().messagesDelivered.value(), 100u);
    EXPECT_EQ(net.stats().duplicateDeliveries.value(), 0u);
    EXPECT_EQ(net.stats().orderViolations.value(), 0u);
}

TEST(NetworkCr, PadOverheadMatchesPaddingRule)
{
    SimConfig cfg = crConfig();
    cfg.injectionRate = 0.1;
    Network net(cfg);
    net.setMeasuring(true);
    net.run(4000);
    const NetworkStats& s = net.stats();
    ASSERT_GT(s.padOverhead.count(), 0u);
    // Short messages (16) on a small torus: pads exist but are
    // bounded below 100%.
    EXPECT_GT(s.padOverhead.mean(), 0.0);
    EXPECT_LT(s.padOverhead.mean(), 0.8);
}

TEST(NetworkCr, KillsAreRareAtLowLoad)
{
    SimConfig cfg = crConfig();
    cfg.radixK = 8;
    cfg.injectionRate = 0.05;
    Network net(cfg);
    net.run(10000);
    const NetworkStats& s = net.stats();
    EXPECT_GT(s.messagesDelivered.value(), 200u);
    // PDS are rare at low load (the paper's core recovery-over-
    // prevention argument).
    EXPECT_LT(static_cast<double>(s.sourceKills.value()),
              0.02 * static_cast<double>(s.messagesDelivered.value()));
}

TEST(NetworkCr, MeshCrWorksToo)
{
    SimConfig cfg = crConfig();
    cfg.topology = TopologyKind::Mesh;
    cfg.injectionRate = 0.15;
    expectHealthyRun(cfg, 10000, 200);
}

TEST(NetworkCr, HotspotTrafficStressesButSurvives)
{
    SimConfig cfg = crConfig();
    cfg.radixK = 8;
    cfg.pattern = TrafficPattern::Hotspot;
    cfg.hotspotFraction = 0.3;
    cfg.injectionRate = 0.2;
    Network net(cfg);
    for (Cycle i = 0; i < 10000; ++i) {
        net.tick();
        ASSERT_FALSE(net.deadlocked());
    }
    EXPECT_GT(net.stats().messagesDelivered.value(), 100u);
}

} // namespace
} // namespace crnet
