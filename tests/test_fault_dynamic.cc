/**
 * @file
 * Dynamic-fault tests: links and routers dying mid-flight, the
 * delivery-ledger invariant under random kills, repair, scenario
 * parsing, and the fault campaign harness.
 */

#include <gtest/gtest.h>

#include "src/core/network.hh"
#include "src/fault/campaign.hh"
#include "src/fault/fault_schedule.hh"

namespace crnet {
namespace {

SimConfig
dynConfig()
{
    SimConfig cfg;
    cfg.topology = TopologyKind::Torus;
    cfg.radixK = 4;
    cfg.dimensionsN = 2;
    cfg.numVcs = 2;
    cfg.bufferDepth = 2;
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = ProtocolKind::Fcr;
    cfg.injectionRate = 0.0;
    cfg.messageLength = 8;
    cfg.timeout = 32;
    cfg.maxRetries = 0;  // Retry forever.
    // Misrouting is mandatory under link death: a cut can leave a
    // (src,dst) pair with no live minimal path.
    cfg.misrouteAfterRetries = 1;
    cfg.misrouteBudget = 4;
    cfg.seed = 424242;
    return cfg;
}

FaultEvent
linkDeath(NodeId node, PortId port)
{
    FaultEvent ev;
    ev.kind = FaultEventKind::LinkDeath;
    ev.node = node;
    ev.port = port;
    return ev;
}

// --- Mid-flight link death ------------------------------------------

// A worm whose reserved path dies under it mid-transmission: the
// message must still be delivered (via retry over another path), the
// stranded segments must be reclaimed, and the network must drain.
TEST(FaultDynamic, WormSurvivesPathDeathMidTransmission)
{
    SimConfig cfg = dynConfig();
    Network net(cfg);
    net.setTrafficEnabled(false);

    // 0 -> 1: the only minimal path is the single +x hop, so the
    // worm must hold link 0 -> 1 while transmitting.
    const MsgId id = net.sendMessage(0, 1, 8);
    ASSERT_NE(id, kInvalidMsg);
    // Wait until body flits are streaming over 0 -> 1, then cut the
    // link under the active worm.
    for (Cycle i = 0;
         i < 50 && net.stats().router.flitsForwarded.value() < 4; ++i)
        net.tick();
    ASSERT_GE(net.stats().router.flitsForwarded.value(), 4u);
    ASSERT_FALSE(net.isDelivered(id));
    net.injectFaultEvent(linkDeath(0, makePort(0, Direction::Plus)));

    for (Cycle i = 0; i < 20000 && !net.isDelivered(id); ++i)
        net.tick();
    ASSERT_TRUE(net.isDelivered(id));
    EXPECT_FALSE(net.deliveryRecord(id)->corrupted);
    EXPECT_FALSE(net.deadlocked());

    // The cut reclaimed stranded worm state somewhere.
    const NetworkStats& s = net.stats();
    EXPECT_GT(s.faultEventsApplied.value(), 0u);
    EXPECT_GT(s.router.linkDeathTeardowns.value() +
                  s.flitsLostOnDeadLinks.value() +
                  s.router.flitsPurged.value(),
              0u);

    // And the network fully drains afterwards.
    for (Cycle i = 0; i < 5000 && !net.quiescent(); ++i)
        net.tick();
    EXPECT_TRUE(net.quiescent());
}

TEST(FaultDynamic, FcrFinalizesOrRedeliversButNeverDuplicates)
{
    SimConfig cfg = dynConfig();
    Network net(cfg);
    net.setTrafficEnabled(false);

    // Several messages crossing the same region as it dies.
    std::vector<MsgId> ids;
    for (NodeId src = 0; src < 4; ++src)
        ids.push_back(net.sendMessage(src, src + 8, 8));
    net.run(6);
    net.injectFaultEvent(linkDeath(0, makePort(1, Direction::Plus)));
    net.injectFaultEvent(linkDeath(1, makePort(1, Direction::Plus)));

    for (Cycle i = 0; i < 30000; ++i) {
        net.tick();
        if (net.quiescent())
            break;
    }
    for (const MsgId id : ids)
        EXPECT_TRUE(net.isDelivered(id)) << "msg " << id;
    EXPECT_EQ(net.stats().duplicateDeliveries.value(), 0u);
    EXPECT_EQ(net.stats().corruptedDeliveries.value(), 0u);
    EXPECT_FALSE(net.deadlocked());
}

// Property: a link killed at a random cycle under random traffic
// never loses the delivery-ledger invariant — every accepted message
// is delivered exactly once or the trial is explicitly refused.
TEST(FaultDynamic, RandomKillUnderLoadKeepsLedgerAccounted)
{
    for (std::uint64_t iter = 0; iter < 10; ++iter) {
        SimConfig cfg = dynConfig();
        cfg.injectionRate = 0.20;
        cfg.warmupCycles = 200;
        cfg.measureCycles = 800;
        cfg.dynamicLinkKills = 1;
        cfg.faultWindowStart = 200;
        cfg.faultWindowEnd = 1000;
        cfg.seed = 7000 + iter;

        Network net(cfg);
        DeliveryLedger ledger;
        net.attachLedger(&ledger);

        net.run(1000);
        net.setTrafficEnabled(false);
        for (Cycle i = 0; i < 60000 && !net.quiescent() &&
                          !net.deadlocked();
             i += 16) {
            net.run(16);
        }

        EXPECT_FALSE(net.deadlocked()) << "seed " << cfg.seed;
        EXPECT_GT(ledger.accepted(), 0u);
        EXPECT_EQ(ledger.pending(), 0u) << "seed " << cfg.seed;
        EXPECT_EQ(ledger.duplicates(), 0u) << "seed " << cfg.seed;
        EXPECT_EQ(ledger.unknownDeliveries(), 0u);
        EXPECT_TRUE(ledger.fullyAccounted()) << "seed " << cfg.seed;
        // FCR: everything delivered intact (no refusals configured).
        EXPECT_EQ(ledger.delivered(), ledger.accepted());
        EXPECT_EQ(ledger.corruptedDeliveries(), 0u);
    }
}

// --- Fail-stop router -----------------------------------------------

TEST(FaultDynamic, FailStopRouterRefusalsAreAccounted)
{
    SimConfig cfg = dynConfig();
    cfg.injectionRate = 0.10;
    cfg.maxRetries = 12;  // Unroutable messages must give up.
    cfg.warmupCycles = 100;
    cfg.measureCycles = 400;
    cfg.dynamicRouterKills = 1;
    cfg.faultWindowStart = 150;
    cfg.faultWindowEnd = 300;
    cfg.seed = 31337;

    Network net(cfg);
    DeliveryLedger ledger;
    net.attachLedger(&ledger);

    net.run(500);
    net.setTrafficEnabled(false);
    for (Cycle i = 0;
         i < 120000 && !net.quiescent() && !net.deadlocked(); i += 16)
        net.run(16);

    EXPECT_FALSE(net.deadlocked());
    EXPECT_GT(ledger.accepted(), 0u);
    // Messages to/from the dead router can only resolve as refused;
    // either way, everything must be accounted.
    EXPECT_EQ(ledger.pending(), 0u);
    EXPECT_EQ(ledger.duplicates(), 0u);
    EXPECT_TRUE(ledger.fullyAccounted());
    EXPECT_EQ(ledger.delivered() + ledger.refused(),
              ledger.accepted());
}

// --- Repair ----------------------------------------------------------

TEST(FaultDynamic, RepairedLinkCarriesTrafficAgain)
{
    SimConfig cfg = dynConfig();
    Network net(cfg);
    net.setTrafficEnabled(false);

    const PortId p = makePort(0, Direction::Plus);
    net.injectFaultEvent(linkDeath(0, p));
    EXPECT_FALSE(net.faults().linkOk(0, p));

    // Traffic still flows (around the dead link)...
    const MsgId a = net.sendMessage(0, 1, 8);
    for (Cycle i = 0; i < 20000 && !net.isDelivered(a); ++i)
        net.tick();
    ASSERT_TRUE(net.isDelivered(a));

    // ... and after repair the link is usable again.
    FaultEvent rep;
    rep.kind = FaultEventKind::LinkRepair;
    rep.node = 0;
    rep.port = p;
    net.injectFaultEvent(rep);
    EXPECT_TRUE(net.faults().linkOk(0, p));
    EXPECT_EQ(net.faults().deadLinks().size(), 0u);

    const MsgId b = net.sendMessage(0, 1, 8);
    for (Cycle i = 0; i < 20000 && !net.isDelivered(b); ++i)
        net.tick();
    EXPECT_TRUE(net.isDelivered(b));
    for (Cycle i = 0; i < 5000 && !net.quiescent(); ++i)
        net.tick();
    EXPECT_TRUE(net.quiescent());
}

// --- Scenario parsing -------------------------------------------------

TEST(FaultSchedule, ParsesScenarioText)
{
    TorusTopology t(4, 2);
    const FaultSchedule s = FaultSchedule::fromString(
        "# comment\n"
        "\n"
        "500  kill_link     12 3\n"
        "800  kill_directed 7 1\n"
        "1000 kill_router   9\n"
        "1500 repair_link   12 3\n"
        "2000 burst         0.01 300\n",
        t);
    // burst expands to BurstStart + BurstEnd.
    ASSERT_EQ(s.size(), 6u);
    EXPECT_EQ(s.events()[0].at, 500u);
    EXPECT_EQ(s.events()[0].kind, FaultEventKind::LinkDeath);
    EXPECT_EQ(s.events()[1].kind, FaultEventKind::DirectedLinkDeath);
    EXPECT_EQ(s.events()[2].kind, FaultEventKind::RouterFailStop);
    EXPECT_EQ(s.events()[2].node, 9u);
    EXPECT_EQ(s.events()[3].kind, FaultEventKind::LinkRepair);
    EXPECT_EQ(s.events()[4].kind, FaultEventKind::BurstStart);
    EXPECT_DOUBLE_EQ(s.events()[4].rate, 0.01);
    EXPECT_EQ(s.events()[5].at, 2300u);
    EXPECT_EQ(s.events()[5].kind, FaultEventKind::BurstEnd);
    EXPECT_EQ(s.firstEventCycle(), 500u);
}

TEST(FaultSchedule, BadScenarioLinesAreFatal)
{
    TorusTopology t(4, 2);
    EXPECT_DEATH(FaultSchedule::fromString("500 kill_link 99 0\n", t),
                 "node");
    EXPECT_DEATH(FaultSchedule::fromString("500 frobnicate 1 2\n", t),
                 "unknown");
    EXPECT_DEATH(FaultSchedule::fromString("oops kill_link 1 0\n", t),
                 "");
}

TEST(FaultSchedule, FromConfigPlacesRequestedKills)
{
    SimConfig cfg = dynConfig();
    cfg.dynamicLinkKills = 2;
    cfg.faultWindowStart = 100;
    cfg.faultWindowEnd = 200;
    TorusTopology t(4, 2);
    const FaultSchedule s =
        FaultSchedule::fromConfig(cfg, t, Rng(99));
    ASSERT_EQ(s.size(), 2u);
    EXPECT_EQ(s.placementShortfall(), 0u);
    for (const FaultEvent& e : s.events()) {
        EXPECT_GE(e.at, 100u);
        EXPECT_LT(e.at, 200u);
        EXPECT_EQ(e.kind, FaultEventKind::LinkDeath);
    }
}

// --- Campaign harness -------------------------------------------------

TEST(FaultCampaign, SmallCampaignFullyAccounts)
{
    CampaignConfig cc;
    cc.base = dynConfig();
    cc.base.injectionRate = 0.10;
    cc.base.warmupCycles = 200;
    cc.base.measureCycles = 600;
    cc.base.dynamicLinkKills = 1;
    cc.trials = 4;
    cc.seedBase = 555;

    std::vector<TrialOutcome> trials;
    const CampaignSummary s = runCampaign(cc, &trials);
    EXPECT_EQ(s.trials, 4u);
    EXPECT_EQ(s.accountedTrials, 4u);
    EXPECT_EQ(s.deadlockedTrials, 0u);
    EXPECT_EQ(s.pending, 0u);
    EXPECT_EQ(s.duplicates, 0u);
    EXPECT_GT(s.accepted, 0u);
    EXPECT_DOUBLE_EQ(s.deliveryRate, 1.0);
    ASSERT_EQ(trials.size(), 4u);
    for (const TrialOutcome& t : trials) {
        EXPECT_TRUE(t.fullyAccounted) << "seed " << t.seed;
        EXPECT_GT(t.faultEvents, 0u);
    }
}

// Regression: a link died while a forward kill was still pending on
// the input VC feeding it — the output's holder record was stale, and
// the death teardown propagated a backward kill onto an upstream wire
// a brand-new worm had reused, cutting it in half (its head survived
// at the next router and collided with the retransmission). Seed 68
// on the campaign's own 8-ary 2-cube reproduced this deterministically.
TEST(FaultCampaign, StaleOutputHolderDoesNotTearBystanderWorm)
{
    CampaignConfig cc;
    cc.base = dynConfig();
    cc.base.radixK = 8;
    cc.base.injectionRate = 0.15;
    cc.base.messageLength = 16;
    cc.base.warmupCycles = 1000;
    cc.base.measureCycles = 5000;
    cc.base.dynamicLinkKills = 2;
    cc.trials = 1;
    cc.seedBase = 68;

    std::vector<TrialOutcome> trials;
    const CampaignSummary s = runCampaign(cc, &trials);
    EXPECT_EQ(s.accountedTrials, 1u);
    EXPECT_EQ(s.deadlockedTrials, 0u);
    EXPECT_EQ(s.duplicates, 0u);
    ASSERT_EQ(trials.size(), 1u);
    EXPECT_TRUE(trials[0].fullyAccounted);
    EXPECT_DOUBLE_EQ(s.deliveryRate, 1.0);
}

} // namespace
} // namespace crnet
