/**
 * @file
 * Fixture binary for tests/test_campaign_resume.py: runs a small
 * dynamic-fault campaign and prints its summary and per-trial rows in
 * a stable text form. The python driver SIGKILLs it mid-campaign,
 * restarts it against the same journal, and asserts the resumed
 * output is byte-identical to an uninterrupted reference run
 * (wallSeconds and resumedTrials are deliberately not printed).
 *
 * Args (key=value, any order):
 *   trials=N seed_base=S journal=PATH jobs=N
 *   status=PATH status_interval=S profile=0|1
 *
 * The status/profile keys feed tests/test_status_schema.py: the same
 * SIGKILL machinery that validates journal resume also validates that
 * a status file is atomically rewritten (never torn) and that the
 * summary stays byte-identical with telemetry enabled.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>

#include "src/fault/campaign.hh"
#include "src/sim/config.hh"

int
main(int argc, char** argv)
{
    using namespace crnet;

    CampaignConfig cc;
    cc.base.radixK = 4;
    cc.base.dimensionsN = 2;
    cc.base.numVcs = 2;
    cc.base.routing = RoutingKind::MinimalAdaptive;
    cc.base.protocol = ProtocolKind::Fcr;
    cc.base.injectionRate = 0.15;
    cc.base.messageLength = 8;
    cc.base.timeout = 16;
    cc.base.misrouteAfterRetries = 1;
    cc.base.dynamicLinkKills = 2;
    cc.base.warmupCycles = 300;
    cc.base.measureCycles = 2000;
    cc.base.jobs = 1;
    cc.trials = 12;

    for (int i = 1; i < argc; ++i) {
        if (std::strncmp(argv[i], "trials=", 7) == 0)
            cc.trials = static_cast<std::uint32_t>(
                std::strtoul(argv[i] + 7, nullptr, 10));
        else if (std::strncmp(argv[i], "seed_base=", 10) == 0)
            cc.seedBase = std::strtoull(argv[i] + 10, nullptr, 10);
        else if (std::strncmp(argv[i], "journal=", 8) == 0)
            cc.journalPath = argv[i] + 8;
        else if (std::strncmp(argv[i], "jobs=", 5) == 0)
            cc.base.jobs = static_cast<std::uint32_t>(
                std::strtoul(argv[i] + 5, nullptr, 10));
        else if (std::strncmp(argv[i], "status=", 7) == 0)
            cc.base.statusFile = argv[i] + 7;
        else if (std::strncmp(argv[i], "status_interval=", 16) == 0)
            cc.base.statusEverySeconds =
                std::strtod(argv[i] + 16, nullptr);
        else if (std::strncmp(argv[i], "profile=", 8) == 0)
            cc.base.profileEnabled =
                std::strtoul(argv[i] + 8, nullptr, 10) != 0;
        else {
            std::cout << "unknown arg: " << argv[i] << "\n";
            return 2;
        }
    }

    std::vector<TrialOutcome> trials;
    const CampaignSummary s = runCampaign(cc, &trials);

    // %.17g: doubles round-trip exactly, so identical campaigns print
    // identical bytes.
    char buf[512];
    std::snprintf(
        buf, sizeof(buf),
        "summary trials=%u accounted=%u deadlocked=%u quarantined=%u "
        "accepted=%llu delivered=%llu refused=%llu pending=%llu "
        "dups=%llu fault_events=%llu rate=%.17g pre=%.17g post=%.17g "
        "rec_mean=%.17g rec_max=%llu flit_events=%llu",
        s.trials, s.accountedTrials, s.deadlockedTrials,
        s.quarantinedTrials,
        static_cast<unsigned long long>(s.accepted),
        static_cast<unsigned long long>(s.delivered),
        static_cast<unsigned long long>(s.refused),
        static_cast<unsigned long long>(s.pending),
        static_cast<unsigned long long>(s.duplicates),
        static_cast<unsigned long long>(s.faultEvents),
        s.deliveryRate, s.meanPreFaultLatency, s.meanPostFaultLatency,
        s.meanRecoveryCycles,
        static_cast<unsigned long long>(s.maxRecoveryCycles),
        static_cast<unsigned long long>(s.flitEvents));
    std::cout << buf << "\n";

    for (const TrialOutcome& t : trials) {
        std::snprintf(
            buf, sizeof(buf),
            "trial %u seed=%llu acc=%llu del=%llu ref=%llu pend=%llu "
            "dups=%llu faults=%llu lost=%llu timeouts=%llu "
            "first=%llu pre=%.17g post=%.17g rec=%llu dead=%d ok=%d "
            "cycles=%llu events=%llu quar=%d retries=%u",
            t.trial, static_cast<unsigned long long>(t.seed),
            static_cast<unsigned long long>(t.accepted),
            static_cast<unsigned long long>(t.delivered),
            static_cast<unsigned long long>(t.refused),
            static_cast<unsigned long long>(t.pendingAtEnd),
            static_cast<unsigned long long>(t.duplicates),
            static_cast<unsigned long long>(t.faultEvents),
            static_cast<unsigned long long>(t.flitsLost),
            static_cast<unsigned long long>(t.receiverTimeouts),
            static_cast<unsigned long long>(t.firstFaultAt),
            t.preFaultLatency, t.postFaultLatency,
            static_cast<unsigned long long>(t.recoveryCycles),
            t.deadlocked ? 1 : 0, t.fullyAccounted ? 1 : 0,
            static_cast<unsigned long long>(t.cyclesRun),
            static_cast<unsigned long long>(t.flitEvents),
            t.quarantined ? 1 : 0, t.budgetRetries);
        std::cout << buf << "\n";
    }
    return 0;
}
