/**
 * @file
 * FCR end-to-end fault-tolerance tests: transient corruption never
 * reaches software, permanent link faults are routed around, and the
 * refusal/kill/retry loop terminates.
 */

#include <gtest/gtest.h>

#include "src/core/network.hh"

namespace crnet {
namespace {

SimConfig
fcrConfig()
{
    SimConfig cfg;
    cfg.topology = TopologyKind::Torus;
    cfg.radixK = 4;
    cfg.dimensionsN = 2;
    cfg.numVcs = 1;
    cfg.bufferDepth = 2;
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = ProtocolKind::Fcr;
    cfg.injectionRate = 0.0;
    cfg.messageLength = 8;
    cfg.timeout = 32;
    cfg.seed = 99;
    return cfg;
}

TEST(NetworkFcr, CleanNetworkDeliversWithRoundTripPadding)
{
    Network net(fcrConfig());
    net.setTrafficEnabled(false);
    const MsgId id = net.sendMessage(0, 15, 8);
    for (Cycle i = 0; i < 1000 && !net.isDelivered(id); ++i)
        net.tick();
    ASSERT_TRUE(net.isDelivered(id));
    EXPECT_FALSE(net.deliveryRecord(id)->corrupted);
    // FCR pads every message by at least one path capacity.
    EXPECT_GT(net.stats().padFlitsInjected.value(), 0u);
}

TEST(NetworkFcr, TransientFaultsNeverDeliverCorrupted)
{
    SimConfig cfg = fcrConfig();
    cfg.transientFaultRate = 0.002;  // Per flit-hop: aggressive.
    cfg.injectionRate = 0.05;
    Network net(cfg);
    for (Cycle i = 0; i < 30000; ++i)
        net.tick();
    const NetworkStats& s = net.stats();
    EXPECT_GT(s.messagesDelivered.value(), 50u);
    EXPECT_GT(net.faults().corruptionsInjected(), 0u);
    // The FCR guarantee: zero corrupted deliveries, ever.
    EXPECT_EQ(s.corruptedDeliveries.value(), 0u);
    EXPECT_EQ(s.duplicateDeliveries.value(), 0u);
}

TEST(NetworkFcr, FaultsCauseRefusalsAndRetries)
{
    SimConfig cfg = fcrConfig();
    cfg.transientFaultRate = 0.005;
    cfg.injectionRate = 0.05;
    Network net(cfg);
    net.setMeasuring(true);
    for (Cycle i = 0; i < 30000; ++i)
        net.tick();
    const NetworkStats& s = net.stats();
    // Some payload flit got hit and the receiver withheld flow
    // control, so kills and retransmissions must have happened.
    EXPECT_GT(s.refusals.value(), 0u);
    EXPECT_GT(s.sourceKills.value(), 0u);
    // Retries show up as a mean attempt count above one.
    EXPECT_GT(s.attempts.mean(), 1.0);
}

TEST(NetworkFcr, CrWithoutChecksDeliversCorruptedUnderFaults)
{
    // The contrast experiment: plain CR has no integrity checking, so
    // the same fault process reaches software.
    SimConfig cfg = fcrConfig();
    cfg.protocol = ProtocolKind::Cr;
    cfg.transientFaultRate = 0.005;
    cfg.injectionRate = 0.05;
    Network net(cfg);
    for (Cycle i = 0; i < 30000; ++i)
        net.tick();
    EXPECT_GT(net.stats().corruptedDeliveries.value(), 0u);
}

TEST(NetworkFcr, PermanentFaultBlockedMinimalPathIsRetriedAround)
{
    // Kill both directed links out of node 0 in the +x/-x direction
    // leaves y routes; minimal adaptive finds them on retry or first
    // try. Then kill one more so only one minimal option remains for
    // a straight-line destination and misrouting must kick in.
    SimConfig cfg = fcrConfig();
    cfg.misrouteAfterRetries = 2;
    cfg.misrouteBudget = 4;
    Network net(cfg);
    net.setTrafficEnabled(false);
    // Destination (2,0) from (0,0): both x directions are minimal
    // (distance 2 each way). Kill both x links at node 0 so no
    // minimal first hop exists and retries must misroute via y.
    net.faults().killDirectedLink(0, makePort(0, Direction::Plus));
    net.faults().killDirectedLink(0, makePort(0, Direction::Minus));
    const MsgId id = net.sendMessage(0, 2, 8);
    for (Cycle i = 0; i < 20000 && !net.isDelivered(id); ++i)
        net.tick();
    ASSERT_TRUE(net.isDelivered(id));
    const DeliveredMessage* d = net.deliveryRecord(id);
    EXPECT_GE(d->attempts, 3u);  // At least two kills before misroute.
    EXPECT_GT(net.stats().router.misrouteHops.value(), 0u);
}

TEST(NetworkFcr, RandomPermanentFaultsStillDeliverEverything)
{
    SimConfig cfg = fcrConfig();
    cfg.radixK = 8;
    cfg.permanentLinkFaults = 6;
    cfg.misrouteAfterRetries = 2;
    cfg.injectionRate = 0.02;
    cfg.warmupCycles = 0;
    Network net(cfg);
    net.setMeasuring(true);
    net.run(3000);
    net.setMeasuring(false);
    Cycle spent = 0;
    while (!net.measuredDrained() && spent < 100000) {
        net.run(256);
        spent += 256;
    }
    EXPECT_TRUE(net.measuredDrained());
    EXPECT_EQ(net.stats().corruptedDeliveries.value(), 0u);
    EXPECT_EQ(net.stats().measuredFailed.value(), 0u);
}

} // namespace
} // namespace crnet
