/**
 * @file
 * Unit and property tests for torus and mesh topologies.
 */

#include <gtest/gtest.h>

#include "src/topology/topology.hh"

namespace crnet {
namespace {

TEST(Torus, NeighborsWrapAround)
{
    TorusTopology t(4, 2);
    // Node 3 = (3,0); +x wraps to (0,0) = 0.
    EXPECT_EQ(t.neighbor(3, makePort(0, Direction::Plus)), 0u);
    // Node 0 -x wraps to (3,0) = 3.
    EXPECT_EQ(t.neighbor(0, makePort(0, Direction::Minus)), 3u);
    // Node 0 -y wraps to (0,3) = 12.
    EXPECT_EQ(t.neighbor(0, makePort(1, Direction::Minus)), 12u);
}

TEST(Torus, NeighborSymmetry)
{
    TorusTopology t(5, 2);
    for (NodeId n = 0; n < t.numNodes(); ++n) {
        for (PortId p = 0; p < t.numPorts(); ++p) {
            const NodeId nbr = t.neighbor(n, p);
            ASSERT_NE(nbr, kInvalidNode);
            EXPECT_EQ(t.neighbor(nbr, oppositePort(p)), n);
        }
    }
}

TEST(Torus, DistanceUsesShorterWay)
{
    TorusTopology t(8, 2);
    // (0,0) to (7,0): one wrap hop, not 7.
    EXPECT_EQ(t.distance(0, 7), 1u);
    // (0,0) to (4,0): both ways are 4.
    EXPECT_EQ(t.distance(0, 4), 4u);
    // (0,0) to (3,2).
    EXPECT_EQ(t.distance(0, 3 + 2 * 8), 5u);
    EXPECT_EQ(t.distance(5, 5), 0u);
}

TEST(Torus, DimRouteBothWaysMinimalAtHalfway)
{
    TorusTopology t(8, 2);
    const DimRoute r = t.dimRoute(0, 4, 0);
    EXPECT_TRUE(r.plusMinimal);
    EXPECT_TRUE(r.minusMinimal);
    EXPECT_EQ(r.plusHops, 4u);
    EXPECT_EQ(r.minusHops, 4u);
}

TEST(Torus, DimRouteOneWayMinimalOtherwise)
{
    TorusTopology t(8, 2);
    const DimRoute r = t.dimRoute(0, 2, 0);
    EXPECT_TRUE(r.plusMinimal);
    EXPECT_FALSE(r.minusMinimal);
    EXPECT_EQ(r.plusHops, 2u);
    EXPECT_EQ(r.minusHops, 6u);

    const DimRoute r2 = t.dimRoute(0, 6, 0);
    EXPECT_FALSE(r2.plusMinimal);
    EXPECT_TRUE(r2.minusMinimal);
    EXPECT_EQ(r2.minusHops, 2u);
}

TEST(Torus, DatelineCrossings)
{
    TorusTopology t(4, 2);
    // Plus dateline: leaving x == k-1 in +x.
    EXPECT_TRUE(t.crossesDateline(3, makePort(0, Direction::Plus)));
    EXPECT_FALSE(t.crossesDateline(2, makePort(0, Direction::Plus)));
    // Minus dateline: leaving x == 0 in -x.
    EXPECT_TRUE(t.crossesDateline(0, makePort(0, Direction::Minus)));
    EXPECT_FALSE(t.crossesDateline(1, makePort(0, Direction::Minus)));
}

TEST(Torus, Diameter)
{
    EXPECT_EQ(TorusTopology(8, 2).diameter(), 8u);
    EXPECT_EQ(TorusTopology(4, 3).diameter(), 6u);
}

TEST(Mesh, BoundariesHaveNoNeighbors)
{
    MeshTopology m(4, 2);
    EXPECT_EQ(m.neighbor(3, makePort(0, Direction::Plus)),
              kInvalidNode);
    EXPECT_EQ(m.neighbor(0, makePort(0, Direction::Minus)),
              kInvalidNode);
    EXPECT_EQ(m.neighbor(0, makePort(1, Direction::Minus)),
              kInvalidNode);
    EXPECT_EQ(m.neighbor(5, makePort(0, Direction::Plus)), 6u);
}

TEST(Mesh, DistanceIsManhattan)
{
    MeshTopology m(8, 2);
    EXPECT_EQ(m.distance(0, 7), 7u);
    EXPECT_EQ(m.distance(0, 7 + 7 * 8), 14u);
}

TEST(Mesh, NoDatelines)
{
    MeshTopology m(4, 2);
    for (NodeId n = 0; n < m.numNodes(); ++n)
        for (PortId p = 0; p < m.numPorts(); ++p)
            EXPECT_FALSE(m.crossesDateline(n, p));
}

TEST(Mesh, Diameter)
{
    EXPECT_EQ(MeshTopology(8, 2).diameter(), 14u);
}

TEST(Topology, FactoryBuildsConfiguredKind)
{
    SimConfig cfg;
    cfg.topology = TopologyKind::Mesh;
    cfg.radixK = 4;
    cfg.dimensionsN = 2;
    auto t = makeTopology(cfg);
    EXPECT_EQ(t->kind(), TopologyKind::Mesh);
    EXPECT_EQ(t->numNodes(), 16u);
}

TEST(Topology, DistanceSymmetricOnTorus)
{
    TorusTopology t(6, 2);
    for (NodeId a = 0; a < t.numNodes(); a += 5)
        for (NodeId b = 0; b < t.numNodes(); b += 3)
            EXPECT_EQ(t.distance(a, b), t.distance(b, a));
}

TEST(Topology, TriangleInequalityViaNeighbors)
{
    // distance() must drop by exactly 1 along a minimal direction.
    TorusTopology t(5, 2);
    for (NodeId a = 0; a < t.numNodes(); ++a) {
        for (NodeId b = 0; b < t.numNodes(); ++b) {
            if (a == b)
                continue;
            const std::uint32_t d = t.distance(a, b);
            bool improved = false;
            for (std::uint32_t dim = 0; dim < t.dims(); ++dim) {
                const DimRoute r = t.dimRoute(a, b, dim);
                if (r.plusMinimal) {
                    const NodeId next =
                        t.neighbor(a, makePort(dim, Direction::Plus));
                    EXPECT_EQ(t.distance(next, b), d - 1);
                    improved = true;
                }
                if (r.minusMinimal) {
                    const NodeId next =
                        t.neighbor(a, makePort(dim, Direction::Minus));
                    EXPECT_EQ(t.distance(next, b), d - 1);
                    improved = true;
                }
            }
            EXPECT_TRUE(improved);
        }
    }
}

TEST(Topology, TinyRadixRejected)
{
    EXPECT_DEATH(TorusTopology(1, 2), "radix");
}

} // namespace
} // namespace crnet
