/**
 * @file
 * Tests for the worm-lifecycle event tracer: golden event sequence on
 * a deterministic two-node run, the watch filter, the inert disabled
 * path, output-file formats, and jobs=N batch bit-identity.
 */

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/experiment.hh"
#include "src/core/network.hh"
#include "src/sim/trace.hh"

namespace crnet {
namespace {

SimConfig
twoNodeRingCr()
{
    SimConfig cfg;
    cfg.topology = TopologyKind::Torus;
    cfg.radixK = 2;
    cfg.dimensionsN = 1;
    cfg.numVcs = 1;
    cfg.bufferDepth = 2;
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = ProtocolKind::Cr;
    cfg.injectionRate = 0.0;
    return cfg;
}

std::string
tmpPrefix(const std::string& name)
{
    return ::testing::TempDir() + "crnet_" + name;
}

std::string
slurp(const std::string& path)
{
    std::ifstream in(path);
    std::ostringstream os;
    os << in.rdbuf();
    return os.str();
}

/** Run one explicit message to completion, return the trace events. */
std::vector<TraceEvent>
traceOneMessage(const std::string& prefix)
{
    SimConfig cfg = twoNodeRingCr();
    cfg.traceFile = prefix;
    Network net(cfg);
    net.setTrafficEnabled(false);
    const MsgId id = net.sendMessage(0, 1, 4);
    EXPECT_NE(id, kInvalidMsg);
    for (Cycle i = 0; i < 200 && !net.isDelivered(id); ++i)
        net.tick();
    EXPECT_TRUE(net.isDelivered(id));
    net.tracer()->flush();
    return net.tracer()->events();
}

TEST(Trace, GoldenTwoNodeEventSequence)
{
    const std::vector<TraceEvent> ev =
        traceOneMessage(tmpPrefix("golden"));

    // The fault-free single-worm lifecycle is exactly: injection at
    // the source, a header allocation at each of the two routers
    // (source, then destination), the tail leaving the source (CR
    // commit), and the delivery. Any change here is a protocol-
    // visible behavior change, not a tracing change.
    const std::vector<std::pair<TraceEventKind, NodeId>> expected = {
        {TraceEventKind::Inject, 0},
        {TraceEventKind::HeadAdvance, 0},
        {TraceEventKind::HeadAdvance, 1},
        {TraceEventKind::Commit, 0},
        {TraceEventKind::Deliver, 1},
    };
    ASSERT_EQ(ev.size(), expected.size());
    for (std::size_t i = 0; i < expected.size(); ++i) {
        EXPECT_EQ(ev[i].kind, expected[i].first) << "event " << i;
        EXPECT_EQ(ev[i].node, expected[i].second) << "event " << i;
    }

    // Timestamps are monotone and the span is causally ordered.
    for (std::size_t i = 1; i < ev.size(); ++i)
        EXPECT_GE(ev[i].at, ev[i - 1].at);
    EXPECT_EQ(ev.front().src, 0u);
    EXPECT_EQ(ev.front().dst, 1u);
    EXPECT_GT(ev.back().arg, 0u);  // Deliver carries the latency.
}

TEST(Trace, JsonlAndChromeFilesAreWellFormed)
{
    const std::string prefix = tmpPrefix("files");
    const std::vector<TraceEvent> ev = traceOneMessage(prefix);

    const std::string jsonl = slurp(prefix + ".jsonl");
    ASSERT_FALSE(jsonl.empty());
    // One line per event, each a JSON object with the event name.
    std::istringstream lines(jsonl);
    std::string line;
    std::size_t count = 0;
    while (std::getline(lines, line)) {
        EXPECT_EQ(line.front(), '{');
        EXPECT_EQ(line.back(), '}');
        EXPECT_NE(line.find("\"ev\":"), std::string::npos);
        ++count;
    }
    EXPECT_EQ(count, ev.size());
    EXPECT_NE(jsonl.find("\"ev\":\"inject\""), std::string::npos);
    EXPECT_NE(jsonl.find("\"ev\":\"deliver\""), std::string::npos);

    const std::string chrome = slurp(prefix + ".json");
    ASSERT_FALSE(chrome.empty());
    EXPECT_NE(chrome.find("\"traceEvents\""), std::string::npos);
    // Instant events plus one closed async span for the message.
    EXPECT_NE(chrome.find("\"ph\":\"i\""), std::string::npos);
    EXPECT_NE(chrome.find("\"ph\":\"b\""), std::string::npos);
    EXPECT_NE(chrome.find("\"ph\":\"e\""), std::string::npos);

    std::remove((prefix + ".jsonl").c_str());
    std::remove((prefix + ".json").c_str());
}

TEST(Trace, DisabledTracerIsInert)
{
    Tracer t("", "");
    t.beginCycle(5);
    t.record(TraceEventKind::Inject, 1, 0, 0, 1, 0);
    t.record(TraceEventKind::Deliver, 1, 1, 0, 1, 0, 9);
    EXPECT_TRUE(t.events().empty());
    EXPECT_EQ(t.events().capacity(), 0u);  // Never allocated.
    EXPECT_FALSE(t.wants(1, 0, 1));
}

TEST(Trace, UntracedNetworkHasNullTracer)
{
    SimConfig cfg = twoNodeRingCr();
    Network net(cfg);
    EXPECT_EQ(net.tracer(), nullptr);
}

TEST(Trace, WatchFilterByMessageId)
{
    Tracer t(tmpPrefix("watch_msg"), "7,9");
    EXPECT_TRUE(t.wants(7, kInvalidNode, kInvalidNode));
    EXPECT_TRUE(t.wants(9, 3, 4));
    EXPECT_FALSE(t.wants(8, 3, 4));
    t.record(TraceEventKind::Inject, 7, 0, 0, 1, 0);
    t.record(TraceEventKind::Inject, 8, 0, 0, 1, 0);
    ASSERT_EQ(t.events().size(), 1u);
    EXPECT_EQ(t.events()[0].msg, 7u);
}

TEST(Trace, WatchPairAdoptsMessageId)
{
    Tracer t(tmpPrefix("watch_pair"), "2-5");
    // A (src,dst) match adopts the message id...
    t.record(TraceEventKind::Inject, 42, 2, 2, 5, 0);
    // ...so later events with no src/dst (kill tokens) still match.
    t.record(TraceEventKind::KillHop, 42, 3, kInvalidNode,
             kInvalidNode, 0, 1);
    // Other traffic stays filtered out.
    t.record(TraceEventKind::Inject, 43, 0, 0, 1, 0);
    ASSERT_EQ(t.events().size(), 2u);
    EXPECT_EQ(t.events()[0].msg, 42u);
    EXPECT_EQ(t.events()[1].kind, TraceEventKind::KillHop);
}

TEST(Trace, BatchRunsAreBitIdenticalAcrossJobs)
{
    SimConfig base;
    base.topology = TopologyKind::Torus;
    base.radixK = 4;
    base.dimensionsN = 2;
    base.numVcs = 2;
    base.bufferDepth = 2;
    base.routing = RoutingKind::MinimalAdaptive;
    base.protocol = ProtocolKind::Cr;
    base.injectionRate = 0.10;
    base.messageLength = 8;
    base.timeout = 8;
    base.warmupCycles = 100;
    base.measureCycles = 300;
    base.drainCycles = 5000;
    base.seed = 7;

    auto runBatch = [&](const std::string& prefix, unsigned jobs) {
        std::vector<SimConfig> points(4, base);
        for (std::size_t i = 0; i < points.size(); ++i) {
            points[i].seed = base.seed + i;
            points[i].traceFile = prefix;
            points[i].jobs = jobs;
        }
        runMany(points);
        std::vector<std::string> files;
        for (std::size_t i = 0; i < points.size(); ++i) {
            files.push_back(
                slurp(prefix + "_run" + std::to_string(i) + ".jsonl"));
            files.push_back(
                slurp(prefix + "_run" + std::to_string(i) + ".json"));
        }
        return files;
    };

    const auto seq = runBatch(tmpPrefix("seq"), 1);
    const auto par = runBatch(tmpPrefix("par"), 4);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_FALSE(seq[i].empty()) << "file " << i;
        EXPECT_EQ(seq[i], par[i]) << "file " << i;
    }
}

} // namespace
} // namespace crnet
