/**
 * @file
 * Unit tests driving a single Injector: padding, timeout/kill,
 * retransmission order, credits, commit.
 */

#include <gtest/gtest.h>

#include "src/nic/injector.hh"
#include "src/nic/padding.hh"

namespace crnet {
namespace {

class InjectorTest : public ::testing::Test
{
  protected:
    InjectorTest() { rebuild(); }

    void
    rebuild()
    {
        topo = std::make_unique<TorusTopology>(4, 2);
        faults = std::make_unique<FaultModel>(*topo, 0.0, Rng(1));
        algo = std::make_unique<MinimalAdaptiveRouting>(
            *topo, *faults, cfg.numVcs);
        stats = std::make_unique<NetworkStats>();
        inj = std::make_unique<Injector>(0, cfg, *topo, *algo,
                                         stats.get(), Rng(2));
    }

    PendingMessage
    msgTo(NodeId dst, std::uint32_t len, std::uint32_t seq = 0)
    {
        PendingMessage m;
        m.id = nextId++;
        m.src = 0;
        m.dst = dst;
        m.payloadLen = len;
        m.createdAt = now;
        m.pairSeq = seq;
        m.measured = true;
        return m;
    }

    /** Tick and return flits emitted this cycle. */
    std::vector<InjectedFlit>
    step()
    {
        inj->tick(now++);
        return inj->sent;
    }

    SimConfig cfg;  // Defaults: torus 16x16 ignored; injector only
                    // uses vcs/depth/channels/protocol/timeout.
    std::unique_ptr<TorusTopology> topo;
    std::unique_ptr<FaultModel> faults;
    std::unique_ptr<MinimalAdaptiveRouting> algo;
    std::unique_ptr<NetworkStats> stats;
    std::unique_ptr<Injector> inj;
    Cycle now = 0;
    MsgId nextId = 100;
};

TEST_F(InjectorTest, EmitsWormInOrderWithPadsAndTail)
{
    // dst 5 = (1,1): 2 hops. CR wire = capacity(2,2)+slack =
    // (2+2)*2+2+2+2 = 14.
    inj->enqueue(msgTo(5, 4));
    std::vector<Flit> flits;
    for (int i = 0; i < 40; ++i) {
        for (const auto& f : step()) {
            flits.push_back(f.flit);
            inj->acceptCredit(f.injChannel, f.vc);  // Instant drain.
        }
    }
    const std::uint32_t wire = wireLength(ProtocolKind::Cr, 4, 2, 2, 2);
    ASSERT_EQ(flits.size(), wire);
    EXPECT_EQ(flits.front().type, FlitType::Head);
    EXPECT_EQ(flits.back().type, FlitType::Tail);
    for (std::uint32_t i = 0; i < wire; ++i) {
        EXPECT_EQ(flits[i].seq, i);
        EXPECT_TRUE(flits[i].checksumOk());
        if (i > 0 && i < 4) {
            EXPECT_EQ(flits[i].type, FlitType::Body);
        }
        if (i >= 4 && i + 1 < wire) {
            EXPECT_EQ(flits[i].type, FlitType::Pad);
        }
    }
    EXPECT_EQ(stats->messagesCommitted.value(), 1u);
    EXPECT_EQ(stats->padFlitsInjected.value(), wire - 5);
    EXPECT_TRUE(inj->idle());
}

TEST_F(InjectorTest, NextEventCycleTracksQueueMinExactly)
{
    // Empty and idle: no deadline at all.
    EXPECT_EQ(inj->nextEventCycle(0), kNeverCycle);

    // The incremental queue minimum must be exact (identical to a
    // full rescan) through out-of-order pushes...
    PendingMessage m1 = msgTo(5, 4);
    m1.notBefore = 100;
    PendingMessage m2 = msgTo(6, 4);
    m2.notBefore = 20;
    PendingMessage m3 = msgTo(9, 4);
    m3.notBefore = 160;
    inj->enqueue(m1);
    EXPECT_EQ(inj->nextEventCycle(0), 100u);
    inj->enqueue(m2);
    EXPECT_EQ(inj->nextEventCycle(0), 20u);
    inj->enqueue(m3);
    EXPECT_EQ(inj->nextEventCycle(0), 20u);

    // A due message pins the wake to the very next cycle.
    EXPECT_EQ(inj->nextEventCycle(25), 26u);

    // ...and through erase-of-min: from cycle 20, m2 starts (erasing
    // the queue minimum) and commits under instant credit drain.
    now = 20;
    bool sawActive = false;
    for (int i = 0; i < 40; ++i) {
        for (const auto& f : step())
            inj->acceptCredit(f.injChannel, f.vc);
        if (!sawActive && stats->messagesCommitted.value() == 0) {
            // Mid-worm, the injector demands every cycle.
            EXPECT_EQ(inj->nextEventCycle(now), now + 1);
            sawActive = true;
        }
    }
    EXPECT_TRUE(sawActive);
    EXPECT_EQ(stats->messagesCommitted.value(), 1u);
    // The recomputed minimum fell back to m1's 100 — not m2's stale
    // 20, and not kNeverCycle.
    EXPECT_EQ(inj->nextEventCycle(now), 100u);
}

TEST_F(InjectorTest, RespectsCreditsFromRouter)
{
    inj->enqueue(msgTo(5, 4));
    // bufferDepth = 2 credits; no returns: exactly 2 flits emitted.
    int emitted = 0;
    for (int i = 0; i < 10; ++i)
        emitted += static_cast<int>(step().size());
    EXPECT_EQ(emitted, 2);
}

TEST_F(InjectorTest, StallTimeoutKillsAndRetries)
{
    cfg.timeout = 8;
    cfg.backoff = BackoffScheme::Static;
    cfg.backoffGap = 4;
    rebuild();
    inj->enqueue(msgTo(5, 4));
    // Emit 2 flits, then never credit: injection stalls, timeout
    // fires, a kill token is emitted on the channel.
    bool saw_kill = false;
    for (int i = 0; i < 30 && !saw_kill; ++i) {
        for (const auto& f : step())
            saw_kill |= f.flit.isKill();
    }
    EXPECT_TRUE(saw_kill);
    EXPECT_EQ(stats->sourceKills.value(), 1u);
    EXPECT_FALSE(inj->idle());  // Retry is queued.

    // After the gap, the retry re-emits the head with attempt = 1.
    bool saw_retry_head = false;
    for (int i = 0; i < 30 && !saw_retry_head; ++i) {
        for (const auto& f : step()) {
            if (f.flit.isHead()) {
                EXPECT_EQ(f.flit.attempt, 1u);
                saw_retry_head = true;
            }
            inj->acceptCredit(f.injChannel, f.vc);
        }
    }
    EXPECT_TRUE(saw_retry_head);
}

TEST_F(InjectorTest, TimeoutOnlyArmsAfterFirstFlit)
{
    cfg.timeout = 4;
    rebuild();
    // Two messages to the same destination: the second waits (busy
    // destination) and must NOT time out while waiting.
    inj->enqueue(msgTo(5, 4, 0));
    inj->enqueue(msgTo(5, 4, 1));
    for (int i = 0; i < 50; ++i)
        step();  // No credits: first worm stalls and gets killed;
                 // second never starts, never "times out" silently.
    EXPECT_GE(stats->sourceKills.value(), 1u);
    // Kills only from the started worm; aborted count stays 0.
    EXPECT_EQ(stats->abortedByBkill.value(), 0u);
}

TEST_F(InjectorTest, IminSchemeAlsoDetectsStall)
{
    cfg.timeoutScheme = TimeoutScheme::SourceImin;
    cfg.timeout = 8;
    rebuild();
    inj->enqueue(msgTo(5, 8));
    bool saw_kill = false;
    for (int i = 0; i < 60 && !saw_kill; ++i)
        for (const auto& f : step())
            saw_kill |= f.flit.isKill();
    EXPECT_TRUE(saw_kill);
}

TEST_F(InjectorTest, PathWideSchemeNeverSourceKills)
{
    cfg.timeoutScheme = TimeoutScheme::PathWide;
    cfg.timeout = 4;
    rebuild();
    inj->enqueue(msgTo(5, 4));
    for (int i = 0; i < 60; ++i)
        step();
    EXPECT_EQ(stats->sourceKills.value(), 0u);
}

TEST_F(InjectorTest, AbortRequeuesAndCooldownResetsCredits)
{
    inj->enqueue(msgTo(5, 4));
    step();  // Head emitted (credit consumed).
    const MsgId id = nextId - 1;
    inj->acceptAbort(0, 0, id);
    step();
    EXPECT_EQ(stats->abortedByBkill.value(), 1u);
    // Retry must eventually re-emit with a full credit window.
    bool saw_head = false;
    int emitted_before_credit = 0;
    for (int i = 0; i < 40; ++i) {
        for (const auto& f : step()) {
            if (f.flit.isHead())
                saw_head = true;
            ++emitted_before_credit;
        }
    }
    EXPECT_TRUE(saw_head);
    EXPECT_EQ(emitted_before_credit, 2);  // Full bufferDepth restored.
}

TEST_F(InjectorTest, PerDestinationOrderIsPreserved)
{
    cfg.timeout = 8;
    cfg.backoff = BackoffScheme::Static;
    cfg.backoffGap = 2;
    rebuild();
    inj->enqueue(msgTo(5, 4, 0));
    inj->enqueue(msgTo(5, 4, 1));
    // Let worms flow freely; the second must only start after the
    // first commits, and heads must appear in pairSeq order.
    std::vector<std::uint32_t> head_seqs;
    for (int i = 0; i < 100; ++i) {
        for (const auto& f : step()) {
            if (f.flit.isHead())
                head_seqs.push_back(f.flit.pairSeq);
            inj->acceptCredit(f.injChannel, f.vc);
        }
    }
    ASSERT_EQ(head_seqs.size(), 2u);
    EXPECT_EQ(head_seqs[0], 0u);
    EXPECT_EQ(head_seqs[1], 1u);
    EXPECT_EQ(stats->messagesCommitted.value(), 2u);
}

TEST_F(InjectorTest, DifferentDestinationsDontBlockEachOther)
{
    cfg.numVcs = 2;  // Two worms in flight on one channel.
    rebuild();
    inj->enqueue(msgTo(5, 4, 0));
    inj->enqueue(msgTo(6, 4, 0));
    std::vector<NodeId> head_dsts;
    for (int i = 0; i < 100; ++i) {
        for (const auto& f : step()) {
            if (f.flit.isHead())
                head_dsts.push_back(f.flit.dst);
            inj->acceptCredit(f.injChannel, f.vc);
        }
    }
    ASSERT_EQ(head_dsts.size(), 2u);
    // Both start long before either commits (interleaved worms).
    EXPECT_EQ(inj->activeWorms(), 0u);
    EXPECT_EQ(stats->messagesCommitted.value(), 2u);
}

TEST_F(InjectorTest, QueueBoundDropsExcess)
{
    cfg.maxPendingPerNode = 2;
    rebuild();
    EXPECT_TRUE(inj->enqueue(msgTo(5, 4)));
    EXPECT_TRUE(inj->enqueue(msgTo(6, 4)));
    EXPECT_FALSE(inj->enqueue(msgTo(7, 4)));
    EXPECT_EQ(stats->sourceQueueDrops.value(), 1u);
}

TEST_F(InjectorTest, MaxRetriesGivesUp)
{
    cfg.maxRetries = 2;
    cfg.timeout = 4;
    cfg.backoff = BackoffScheme::Static;
    cfg.backoffGap = 2;
    rebuild();
    inj->enqueue(msgTo(5, 4));
    for (int i = 0; i < 300; ++i)
        step();  // Never credit: kills forever until the cap.
    EXPECT_EQ(stats->messagesFailed.value(), 1u);
    EXPECT_EQ(stats->measuredFailed.value(), 1u);
    EXPECT_TRUE(inj->idle());
}

TEST_F(InjectorTest, MisrouteBudgetGrantedAfterConfiguredRetries)
{
    cfg.misrouteAfterRetries = 2;
    cfg.misrouteBudget = 3;
    cfg.timeout = 4;
    cfg.backoff = BackoffScheme::Static;
    cfg.backoffGap = 2;
    rebuild();
    inj->enqueue(msgTo(5, 4));
    std::vector<std::uint8_t> budgets;
    for (int i = 0; i < 200 && budgets.size() < 3; ++i) {
        for (const auto& f : step())
            if (f.flit.isHead())
                budgets.push_back(f.flit.misrouteBudget);
        // Never credit: every attempt stalls and gets killed.
    }
    ASSERT_GE(budgets.size(), 3u);
    EXPECT_EQ(budgets[0], 0u);  // Attempt 0.
    EXPECT_EQ(budgets[1], 0u);  // Attempt 1.
    EXPECT_EQ(budgets[2], 3u);  // Attempt 2: budget granted.
}

TEST_F(InjectorTest, FcrPadsAfterPayload)
{
    cfg.protocol = ProtocolKind::Fcr;
    rebuild();
    inj->enqueue(msgTo(5, 4));
    std::vector<Flit> flits;
    for (int i = 0; i < 80; ++i) {
        for (const auto& f : step()) {
            flits.push_back(f.flit);
            inj->acceptCredit(f.injChannel, f.vc);
        }
    }
    const std::uint32_t wire =
        wireLength(ProtocolKind::Fcr, 4, 2, 2, 2);
    ASSERT_EQ(flits.size(), wire);
    // Everything between payload and tail is PAD.
    for (std::uint32_t i = 4; i + 1 < wire; ++i)
        EXPECT_EQ(flits[i].type, FlitType::Pad);
}

} // namespace
} // namespace crnet
