/**
 * @file
 * Checkpoint/restore tests: the byte-identity guarantee (save →
 * restore → continue matches an uninterrupted run bit for bit, under
 * both schedulers), the on-disk container's corruption handling, the
 * campaign journal's crash-resume semantics, and the watchdog's
 * quarantine fate (docs/ROBUSTNESS.md).
 */

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/experiment.hh"
#include "src/core/network.hh"
#include "src/fault/campaign.hh"
#include "src/sim/checksum.hh"
#include "src/sim/config.hh"
#include "src/sim/snapshot.hh"

namespace crnet {
namespace {

/**
 * A deliberately busy little network: dynamic faults, transient
 * corruption, FCR recovery, time series, heatmap and tracing all on,
 * so the snapshot has to carry every subsystem.
 */
SimConfig
snapConfig(SchedulerKind sched)
{
    SimConfig cfg;
    cfg.radixK = 4;
    cfg.dimensionsN = 2;
    cfg.numVcs = 2;
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = ProtocolKind::Fcr;
    cfg.injectionRate = 0.2;
    cfg.messageLength = 8;
    cfg.timeout = 16;
    cfg.warmupCycles = 100;
    cfg.measureCycles = 400;
    cfg.dynamicLinkKills = 1;
    cfg.misrouteAfterRetries = 1;
    cfg.transientFaultRate = 0.0005;
    cfg.sampleInterval = 100;
    cfg.heatmapEnabled = true;
    cfg.sched = sched;
    cfg.seed = 99;
    return cfg;
}

/**
 * Drive `pre` cycles (measuring from cycle 100), optionally hop the
 * state through a snapshot into a fresh network, then drive the same
 * `post` schedule; return the final full-state payload.
 */
std::vector<std::uint8_t>
endState(const SimConfig& cfg, bool via_restore)
{
    Network a(cfg);
    a.setMeasuring(false);
    a.run(100);
    a.setMeasuring(true);
    a.run(200);  // Snapshot lands mid-measurement, faults in flight.

    Network* cont = &a;
    Network b(cfg);
    if (via_restore) {
        const Snapshot mid = captureSnapshot(a);
        EXPECT_EQ(restoreSnapshot(b, mid), "");
        EXPECT_EQ(b.now(), a.now());
        cont = &b;
    }
    cont->run(200);
    cont->setMeasuring(false);
    cont->setTrafficEnabled(false);
    cont->run(300);
    return captureSnapshot(*cont).payload;
}

TEST(SnapshotIdentity, RestoredRunMatchesUninterruptedActive)
{
    const SimConfig cfg = snapConfig(SchedulerKind::Active);
    const auto straight = endState(cfg, false);
    const auto hopped = endState(cfg, true);
    ASSERT_EQ(straight.size(), hopped.size());
    EXPECT_TRUE(straight == hopped);
}

TEST(SnapshotIdentity, RestoredRunMatchesUninterruptedSweep)
{
    const SimConfig cfg = snapConfig(SchedulerKind::Sweep);
    const auto straight = endState(cfg, false);
    const auto hopped = endState(cfg, true);
    ASSERT_EQ(straight.size(), hopped.size());
    EXPECT_TRUE(straight == hopped);
}

TEST(SnapshotIdentity, RestoredRunMatchesUninterruptedEvent)
{
    const SimConfig cfg = snapConfig(SchedulerKind::Event);
    const auto straight = endState(cfg, false);
    const auto hopped = endState(cfg, true);
    ASSERT_EQ(straight.size(), hopped.size());
    EXPECT_TRUE(straight == hopped);
}

TEST(SnapshotIdentity, SnapshotRestoresAcrossSchedulers)
{
    // The config fingerprint excludes `sched`: a snapshot captured
    // under one scheduler restores under any other and the
    // continuation is observably identical — the serialized wake
    // flags carry over as a safe superset and the awake counts are
    // recounted on load. (The raw payload bytes of the continuations
    // may differ — flags and deadline slots converge lazily — so this
    // compares observable output, not state bytes.)
    auto captureUnder = [](SchedulerKind k) {
        Network warm(snapConfig(k));
        warm.setMeasuring(false);
        warm.run(300);
        return captureSnapshot(warm);
    };
    auto continueUnder = [](SchedulerKind k, const Snapshot& snap) {
        Network net(snapConfig(k));
        EXPECT_EQ(restoreSnapshot(net, snap), "");
        net.run(500);
        return net.timeseriesSamples();
    };

    const Snapshot fromSweep = captureUnder(SchedulerKind::Sweep);
    const auto sweepSweep =
        continueUnder(SchedulerKind::Sweep, fromSweep);
    ASSERT_FALSE(sweepSweep.empty());
    EXPECT_EQ(continueUnder(SchedulerKind::Active, fromSweep),
              sweepSweep);
    EXPECT_EQ(continueUnder(SchedulerKind::Event, fromSweep),
              sweepSweep);

    const Snapshot fromEvent = captureUnder(SchedulerKind::Event);
    const auto eventEvent =
        continueUnder(SchedulerKind::Event, fromEvent);
    EXPECT_EQ(continueUnder(SchedulerKind::Sweep, fromEvent),
              eventEvent);
}

TEST(SnapshotIdentity, TracedRunSurvivesRestore)
{
    // With a tracer attached the event list itself is part of the
    // state: the restored network's trace must contain the pre-hop
    // events, not start empty.
    SimConfig cfg = snapConfig(SchedulerKind::Active);
    cfg.traceFile = testing::TempDir() + "crnet_snap_trace_a";
    const auto straight = endState(cfg, false);
    cfg.traceFile = testing::TempDir() + "crnet_snap_trace_b";
    const auto hopped = endState(cfg, true);
    EXPECT_TRUE(straight == hopped);
}

TEST(SnapshotIdentity, WarmForksAreDeterministicAndDiverge)
{
    const SimConfig cfg = snapConfig(SchedulerKind::Active);
    Network warm(cfg);
    warm.setMeasuring(false);
    warm.run(150);
    const Snapshot snap = captureSnapshot(warm);

    auto fork = [&](std::uint64_t seed) {
        Network net(cfg);
        EXPECT_EQ(restoreSnapshot(net, snap), "");
        net.reseedStreams(seed);
        net.setMeasuring(true);
        net.run(400);
        return captureSnapshot(net).payload;
    };
    const auto f1 = fork(1234);
    const auto f2 = fork(1234);
    const auto f3 = fork(4321);
    EXPECT_TRUE(f1 == f2);  // Same reseed: bit-identical.
    EXPECT_FALSE(f1 == f3);  // Different reseed: a different world.
}

TEST(Snapshot, RefusesMismatchedConfig)
{
    const SimConfig cfg = snapConfig(SchedulerKind::Active);
    Network a(cfg);
    a.run(50);
    const Snapshot snap = captureSnapshot(a);

    SimConfig other = cfg;
    other.injectionRate = 0.25;
    Network b(other);
    const std::string err = restoreSnapshot(b, snap);
    EXPECT_NE(err.find("fingerprint"), std::string::npos) << err;
    EXPECT_EQ(b.now(), 0u);  // Refusal leaves the target untouched.
}

// --- On-disk container --------------------------------------------------

class SnapshotFile : public testing::Test
{
  protected:
    void
    SetUp() override
    {
        cfg_ = snapConfig(SchedulerKind::Active);
        Network net(cfg_);
        net.run(120);
        snap_ = captureSnapshot(net);
        // Unique per test case: ctest runs the cases as parallel
        // processes, and a shared path lets one case's corrupted
        // rewrite race another's read.
        path_ = testing::TempDir() + "crnet_snapshot_" +
                testing::UnitTest::GetInstance()
                    ->current_test_info()
                    ->name() +
                ".bin";
        ASSERT_EQ(writeSnapshotFile(path_, snap_), "");
        ASSERT_EQ(readFileBytes(path_, file_), "");
    }

    /** Rewrite the file with `bytes`, fixing up the CRC trailer. */
    void
    rewriteWithValidCrc(std::vector<std::uint8_t> bytes)
    {
        const std::size_t body = bytes.size() - 4;
        const std::uint32_t crc = crc32(bytes.data(), body);
        for (int i = 0; i < 4; ++i)
            bytes[body + i] =
                static_cast<std::uint8_t>(crc >> (8 * i));
        ASSERT_EQ(atomicWriteFile(path_, bytes), "");
    }

    SimConfig cfg_;
    Snapshot snap_;
    std::string path_;
    std::vector<std::uint8_t> file_;
};

TEST_F(SnapshotFile, RoundTripsExactly)
{
    Snapshot back;
    ASSERT_EQ(readSnapshotFile(path_, back), "");
    EXPECT_EQ(back.at, snap_.at);
    EXPECT_EQ(back.fingerprint, snap_.fingerprint);
    EXPECT_TRUE(back.payload == snap_.payload);

    // And the bytes are live: restore + run works.
    Network net(cfg_);
    ASSERT_EQ(restoreSnapshot(net, back), "");
    net.run(50);
    EXPECT_EQ(net.now(), 170u);
}

TEST_F(SnapshotFile, DetectsFlippedPayloadByte)
{
    std::vector<std::uint8_t> bad = file_;
    bad[bad.size() / 2] ^= 0x40;
    ASSERT_EQ(atomicWriteFile(path_, bad), "");
    Snapshot out;
    const std::string err = readSnapshotFile(path_, out);
    EXPECT_NE(err.find("CRC"), std::string::npos) << err;
}

TEST_F(SnapshotFile, DetectsTruncation)
{
    std::vector<std::uint8_t> bad(file_.begin(),
                                  file_.begin() + 20);
    ASSERT_EQ(atomicWriteFile(path_, bad), "");
    Snapshot out;
    const std::string err = readSnapshotFile(path_, out);
    EXPECT_NE(err.find("truncated"), std::string::npos) << err;

    // A torn tail (CRC cut off mid-write) must also be caught.
    std::vector<std::uint8_t> torn(file_.begin(), file_.end() - 2);
    ASSERT_EQ(atomicWriteFile(path_, torn), "");
    EXPECT_NE(readSnapshotFile(path_, out), "");
}

TEST_F(SnapshotFile, DetectsBadMagic)
{
    std::vector<std::uint8_t> bad = file_;
    bad[0] = 'X';
    rewriteWithValidCrc(bad);
    Snapshot out;
    const std::string err = readSnapshotFile(path_, out);
    EXPECT_NE(err.find("magic"), std::string::npos) << err;
}

TEST_F(SnapshotFile, DetectsVersionSkew)
{
    std::vector<std::uint8_t> bad = file_;
    bad[8] = 0xEE;  // Version field follows the 8-byte magic.
    rewriteWithValidCrc(bad);
    Snapshot out;
    const std::string err = readSnapshotFile(path_, out);
    EXPECT_NE(err.find("version"), std::string::npos) << err;
}

TEST_F(SnapshotFile, MissingFileIsAnError)
{
    Snapshot out;
    EXPECT_NE(readSnapshotFile(path_ + ".nope", out), "");
}

// --- Campaign journal ---------------------------------------------------

CampaignConfig
campConfig(const std::string& journal)
{
    CampaignConfig cc;
    cc.base = snapConfig(SchedulerKind::Active);
    cc.base.warmupCycles = 100;
    cc.base.measureCycles = 300;
    cc.base.jobs = 1;
    cc.trials = 4;
    cc.seedBase = 7;
    cc.journalPath = journal;
    return cc;
}

void
expectTrialsEqual(const std::vector<TrialOutcome>& a,
                  const std::vector<TrialOutcome>& b)
{
    ASSERT_EQ(a.size(), b.size());
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].trial, b[i].trial);
        EXPECT_EQ(a[i].seed, b[i].seed);
        EXPECT_EQ(a[i].accepted, b[i].accepted);
        EXPECT_EQ(a[i].delivered, b[i].delivered);
        EXPECT_EQ(a[i].refused, b[i].refused);
        EXPECT_EQ(a[i].pendingAtEnd, b[i].pendingAtEnd);
        EXPECT_EQ(a[i].duplicates, b[i].duplicates);
        EXPECT_EQ(a[i].faultEvents, b[i].faultEvents);
        EXPECT_EQ(a[i].flitsLost, b[i].flitsLost);
        EXPECT_EQ(a[i].receiverTimeouts, b[i].receiverTimeouts);
        EXPECT_EQ(a[i].firstFaultAt, b[i].firstFaultAt);
        EXPECT_EQ(a[i].preFaultLatency, b[i].preFaultLatency);
        EXPECT_EQ(a[i].postFaultLatency, b[i].postFaultLatency);
        EXPECT_EQ(a[i].recoveryCycles, b[i].recoveryCycles);
        EXPECT_EQ(a[i].deadlocked, b[i].deadlocked);
        EXPECT_EQ(a[i].fullyAccounted, b[i].fullyAccounted);
        EXPECT_EQ(a[i].cyclesRun, b[i].cyclesRun);
        EXPECT_EQ(a[i].flitEvents, b[i].flitEvents);
        EXPECT_EQ(a[i].quarantined, b[i].quarantined);
        EXPECT_EQ(a[i].budgetRetries, b[i].budgetRetries);
    }
}

/** Everything except wallSeconds and resumedTrials must match. */
void
expectSummariesEqual(const CampaignSummary& a, const CampaignSummary& b)
{
    EXPECT_EQ(a.trials, b.trials);
    EXPECT_EQ(a.accountedTrials, b.accountedTrials);
    EXPECT_EQ(a.deadlockedTrials, b.deadlockedTrials);
    EXPECT_EQ(a.quarantinedTrials, b.quarantinedTrials);
    EXPECT_EQ(a.accepted, b.accepted);
    EXPECT_EQ(a.delivered, b.delivered);
    EXPECT_EQ(a.refused, b.refused);
    EXPECT_EQ(a.pending, b.pending);
    EXPECT_EQ(a.duplicates, b.duplicates);
    EXPECT_EQ(a.faultEvents, b.faultEvents);
    EXPECT_EQ(a.deliveryRate, b.deliveryRate);
    EXPECT_EQ(a.meanPreFaultLatency, b.meanPreFaultLatency);
    EXPECT_EQ(a.meanPostFaultLatency, b.meanPostFaultLatency);
    EXPECT_EQ(a.meanRecoveryCycles, b.meanRecoveryCycles);
    EXPECT_EQ(a.maxRecoveryCycles, b.maxRecoveryCycles);
    EXPECT_EQ(a.flitEvents, b.flitEvents);
}

TEST(CampaignJournal, ResumeFromTornJournalReproducesSummary)
{
    const std::string path =
        testing::TempDir() + "crnet_journal_test.jnl";
    std::remove(path.c_str());

    // Uninterrupted reference, no journal.
    std::vector<TrialOutcome> refTrials;
    const CampaignSummary ref =
        runCampaign(campConfig(""), &refTrials);

    // Full journaled run, cold start.
    std::vector<TrialOutcome> coldTrials;
    const CampaignSummary cold =
        runCampaign(campConfig(path), &coldTrials);
    EXPECT_EQ(cold.resumedTrials, 0u);
    expectSummariesEqual(ref, cold);
    expectTrialsEqual(refTrials, coldTrials);

    // Simulate a crash mid-append: chop the journal mid-record. The
    // replay must keep the intact prefix and re-run the rest.
    std::vector<std::uint8_t> bytes;
    ASSERT_EQ(readFileBytes(path, bytes), "");
    std::vector<std::uint8_t> torn(
        bytes.begin(),
        bytes.begin() +
            static_cast<std::ptrdiff_t>(bytes.size() * 2 / 3));
    ASSERT_EQ(atomicWriteFile(path, torn), "");

    std::vector<TrialOutcome> resTrials;
    const CampaignSummary res =
        runCampaign(campConfig(path), &resTrials);
    EXPECT_GT(res.resumedTrials, 0u);
    EXPECT_LT(res.resumedTrials, res.trials);
    expectSummariesEqual(ref, res);
    expectTrialsEqual(refTrials, resTrials);

    // A clean re-run replays everything and runs nothing.
    std::vector<TrialOutcome> againTrials;
    const CampaignSummary again =
        runCampaign(campConfig(path), &againTrials);
    EXPECT_EQ(again.resumedTrials, again.trials);
    expectSummariesEqual(ref, again);
    expectTrialsEqual(refTrials, againTrials);
    std::remove(path.c_str());
}

TEST(CampaignJournal, CorruptedRecordFallsBackToGoodPrefix)
{
    const std::string path =
        testing::TempDir() + "crnet_journal_corrupt.jnl";
    std::remove(path.c_str());

    std::vector<TrialOutcome> refTrials;
    const CampaignSummary ref =
        runCampaign(campConfig(""), &refTrials);
    runCampaign(campConfig(path), nullptr);

    // Flip a byte inside the *last* record's payload: the CRC guard
    // must drop it (and only it) on replay.
    std::vector<std::uint8_t> bytes;
    ASSERT_EQ(readFileBytes(path, bytes), "");
    bytes[bytes.size() - 10] ^= 0x01;
    ASSERT_EQ(atomicWriteFile(path, bytes), "");

    std::vector<TrialOutcome> resTrials;
    const CampaignSummary res =
        runCampaign(campConfig(path), &resTrials);
    EXPECT_EQ(res.resumedTrials, res.trials - 1);
    expectSummariesEqual(ref, res);
    expectTrialsEqual(refTrials, resTrials);
    std::remove(path.c_str());
}

TEST(CampaignJournal, GarbageFileStartsFresh)
{
    const std::string path =
        testing::TempDir() + "crnet_journal_garbage.jnl";
    const std::vector<std::uint8_t> junk = {'n', 'o', 't', ' ',
                                            'a', ' ', 'j', 'n',
                                            'l', '!'};
    ASSERT_EQ(atomicWriteFile(path, junk), "");

    std::vector<TrialOutcome> refTrials;
    const CampaignSummary ref =
        runCampaign(campConfig(""), &refTrials);
    std::vector<TrialOutcome> trials;
    const CampaignSummary s = runCampaign(campConfig(path), &trials);
    EXPECT_EQ(s.resumedTrials, 0u);
    expectSummariesEqual(ref, s);
    expectTrialsEqual(refTrials, trials);
    std::remove(path.c_str());
}

TEST(CampaignWatchdog, QuarantinesBudgetExhaustedTrials)
{
    // A zero drain budget cannot quiesce a loaded network: every
    // trial exhausts its (never-growing) budget and must surface as
    // the explicit quarantine fate — counted, reported, not dropped.
    CampaignConfig cc = campConfig("");
    cc.trials = 2;
    cc.drainCap = 0;
    cc.trialRetries = 0;
    std::vector<TrialOutcome> trials;
    const CampaignSummary s = runCampaign(cc, &trials);
    ASSERT_EQ(trials.size(), 2u);
    EXPECT_EQ(s.quarantinedTrials, 2u);
    EXPECT_EQ(s.accountedTrials, 0u);
    for (const TrialOutcome& t : trials) {
        EXPECT_TRUE(t.quarantined);
        EXPECT_FALSE(t.fullyAccounted);
        EXPECT_EQ(t.budgetRetries, 0u);
    }
}

TEST(CampaignWatchdog, RetryLadderClearsTransientBudgetShortfalls)
{
    // With a tiny-but-growable budget the doubled retries eventually
    // drain; the outcome records how many re-runs it took and the
    // fates match an ample-budget reference.
    CampaignConfig tight = campConfig("");
    tight.trials = 2;
    tight.drainCap = 64;
    tight.trialRetries = 16;
    std::vector<TrialOutcome> trials;
    const CampaignSummary s = runCampaign(tight, &trials);
    EXPECT_EQ(s.quarantinedTrials, 0u);
    for (const TrialOutcome& t : trials)
        EXPECT_FALSE(t.quarantined);
}

} // namespace
} // namespace crnet
