/**
 * @file
 * Tests for the interval time series, the heatmap export, and the
 * latency-histogram saturation flag: delta sampling against cumulative
 * counters, end-to-end sampling through runExperiment, CSV shapes,
 * and jobs=N determinism of the collected samples.
 */

#include <sstream>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/experiment.hh"
#include "src/core/network.hh"
#include "src/core/timeseries.hh"

namespace crnet {
namespace {

SimConfig
smallTorus()
{
    SimConfig cfg;
    cfg.topology = TopologyKind::Torus;
    cfg.radixK = 4;
    cfg.dimensionsN = 2;
    cfg.numVcs = 2;
    cfg.bufferDepth = 2;
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = ProtocolKind::Cr;
    cfg.injectionRate = 0.10;
    cfg.messageLength = 8;
    cfg.timeout = 8;
    cfg.warmupCycles = 100;
    cfg.measureCycles = 400;
    cfg.drainCycles = 5000;
    cfg.seed = 11;
    return cfg;
}

TEST(TimeSeries, SamplesAreDeltasOfCumulativeCounters)
{
    NetworkStats stats;
    TimeSeries ts(100);

    stats.messagesDelivered.inc(10);
    stats.measuredPayloadFlits.inc(80);
    stats.sourceKills.inc(3);
    stats.router.pathWideKills.inc(1);
    stats.totalLatency.add(50.0);
    stats.totalLatency.add(70.0);
    ts.sample(100, stats, 5, 17);

    stats.messagesDelivered.inc(4);
    stats.sourceKills.inc(2);
    stats.faultEventsApplied.inc(1);
    stats.totalLatency.add(90.0);
    ts.sample(200, stats, 2, 3);

    ASSERT_EQ(ts.samples().size(), 2u);
    const TimeSeriesSample& a = ts.samples()[0];
    EXPECT_EQ(a.at, 100u);
    EXPECT_EQ(a.delivered, 10u);
    EXPECT_EQ(a.payloadFlits, 80u);
    EXPECT_EQ(a.kills, 4u);
    EXPECT_DOUBLE_EQ(a.meanLatency, 60.0);
    EXPECT_EQ(a.inFlightWorms, 5u);
    EXPECT_EQ(a.bufferedFlits, 17u);

    const TimeSeriesSample& b = ts.samples()[1];
    EXPECT_EQ(b.delivered, 4u);   // Not 14: interval delta.
    EXPECT_EQ(b.payloadFlits, 0u);
    EXPECT_EQ(b.kills, 2u);
    EXPECT_EQ(b.faultEvents, 1u);
    EXPECT_DOUBLE_EQ(b.meanLatency, 90.0);
    EXPECT_EQ(b.inFlightWorms, 2u);
}

TEST(TimeSeries, ExperimentCollectsSamplesThatSumToTotals)
{
    SimConfig cfg = smallTorus();
    cfg.sampleInterval = 100;
    const RunResult r = runExperiment(cfg);

    ASSERT_FALSE(r.timeseries.empty());
    // One sample each `interval` cycles over the whole run, plus a
    // tail sample when the run ends mid-interval.
    const std::size_t whole = r.cyclesRun / cfg.sampleInterval;
    const bool tail = r.cyclesRun % cfg.sampleInterval != 0;
    EXPECT_EQ(r.timeseries.size(), whole + (tail ? 1u : 0u));
    std::uint64_t delivered = 0;
    for (std::size_t i = 0; i < r.timeseries.size(); ++i) {
        const Cycle expect_at =
            i < whole ? (i + 1) * cfg.sampleInterval : r.cyclesRun;
        EXPECT_EQ(r.timeseries[i].at, expect_at);
        delivered += r.timeseries[i].delivered;
    }
    // Interval deltas re-sum to at least every measured delivery
    // (warmup/drain deliveries count too, so >=).
    EXPECT_GE(delivered, r.deliveredMeasured);
}

TEST(TimeSeries, TailSampleFlushedForRunsEndingMidInterval)
{
    SimConfig cfg = smallTorus();
    cfg.sampleInterval = 64;
    Network net(cfg);
    net.run(200);
    const std::vector<TimeSeriesSample> s = net.timeseriesSamples();
    ASSERT_EQ(s.size(), 4u);
    EXPECT_EQ(s[0].at, 64u);
    EXPECT_EQ(s[1].at, 128u);
    EXPECT_EQ(s[2].at, 192u);
    EXPECT_EQ(s[3].at, 200u);  // Partial tail: cycles 192..200.

    // The tail is a peek, not a committed sample: running on to the
    // next boundary yields the same boundary sample an undisturbed
    // run would (the differencing baselines never advanced).
    net.run(56);
    const std::vector<TimeSeriesSample> s2 = net.timeseriesSamples();
    ASSERT_EQ(s2.size(), 4u);
    EXPECT_EQ(s2[3].at, 256u);

    // A run ending exactly on a boundary gets no extra sample.
    Network exact(cfg);
    exact.run(128);
    EXPECT_EQ(exact.timeseriesSamples().size(), 2u);
}

TEST(TimeSeries, DisabledByDefault)
{
    const RunResult r = runExperiment(smallTorus());
    EXPECT_TRUE(r.timeseries.empty());
    EXPECT_EQ(r.heatmap, nullptr);
}

TEST(TimeSeries, SamplesAreIdenticalAcrossJobs)
{
    SimConfig base = smallTorus();
    base.sampleInterval = 50;
    auto batch = [&](unsigned jobs) {
        std::vector<SimConfig> points(4, base);
        for (std::size_t i = 0; i < points.size(); ++i) {
            points[i].seed = base.seed + i;
            points[i].jobs = jobs;
        }
        return runMany(points);
    };
    const std::vector<RunResult> seq = batch(1);
    const std::vector<RunResult> par = batch(4);
    ASSERT_EQ(seq.size(), par.size());
    for (std::size_t i = 0; i < seq.size(); ++i) {
        EXPECT_FALSE(seq[i].timeseries.empty());
        EXPECT_EQ(seq[i].timeseries, par[i].timeseries) << "run " << i;
    }
}

TEST(TimeSeries, CsvHasHeaderAndOneRowPerSample)
{
    std::vector<TimeSeriesSample> samples(3);
    samples[0].at = 100;
    samples[1].at = 200;
    samples[2].at = 300;
    std::ostringstream os;
    writeTimeSeriesCsv(os, samples);
    const std::string csv = os.str();
    EXPECT_NE(csv.find("cycle,delivered,payload_flits,mean_latency,"
                       "kills,retransmits,fault_events,inflight_worms,"
                       "buffered_flits"),
              std::string::npos);
    std::istringstream lines(csv);
    std::string line;
    std::size_t rows = 0;
    while (std::getline(lines, line))
        if (!line.empty())
            ++rows;
    EXPECT_EQ(rows, 1u + samples.size());
}

TEST(Heatmap, ExperimentCollectsPerPortCounters)
{
    SimConfig cfg = smallTorus();
    cfg.heatmapEnabled = true;
    const RunResult r = runExperiment(cfg);

    ASSERT_NE(r.heatmap, nullptr);
    const HeatmapData& h = *r.heatmap;
    const std::size_t nodes = 16;
    EXPECT_EQ(h.radixK, 4u);
    EXPECT_EQ(h.netPorts, 4u);  // 2 dims x 2 directions.
    EXPECT_EQ(h.cycles, r.cyclesRun);
    ASSERT_EQ(h.occupancyIntegral.size(), nodes);
    ASSERT_EQ(h.forwarded.size(), nodes * h.netPorts);
    ASSERT_EQ(h.blockedCycles.size(), nodes * h.netPorts);

    // Traffic flowed, so some channel forwarded flits and some buffer
    // was occupied at some point.
    std::uint64_t fwd = 0, occ = 0;
    for (std::uint64_t v : h.forwarded)
        fwd += v;
    for (std::uint64_t v : h.occupancyIntegral)
        occ += v;
    EXPECT_GT(fwd, 0u);
    EXPECT_GT(occ, 0u);

    std::ostringstream os;
    writeHeatmapCsv(os, h);
    const std::string csv = os.str();
    EXPECT_NE(csv.find("node,x,y,occ_integral,blocked_cycles,fwd_p0,"
                       "blk_p0"),
              std::string::npos);
    std::istringstream lines(csv);
    std::string line;
    std::size_t rows = 0;
    while (std::getline(lines, line))
        if (!line.empty())
            ++rows;
    EXPECT_EQ(rows, 1u + nodes);
}

TEST(Heatmap, RouterCountersAreZeroSizedWhenDisabled)
{
    SimConfig cfg = smallTorus();
    Network net(cfg);
    net.run(50);
    EXPECT_EQ(net.router(0).heatForwarded(0), 0u);
    EXPECT_EQ(net.router(0).heatBlocked(0), 0u);
    EXPECT_EQ(net.router(0).heatOccupancyIntegral(), 0u);
    EXPECT_EQ(net.collectHeatmap(), nullptr);
}

TEST(LatencyOverflow, PlumbedFromHistogramToRunResult)
{
    // A fault-free short run never saturates the histogram.
    const RunResult r = runExperiment(smallTorus());
    EXPECT_EQ(r.latencyOverflow, 0u);
}

} // namespace
} // namespace crnet
