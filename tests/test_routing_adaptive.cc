/**
 * @file
 * Unit tests for the fully adaptive minimal routing relation (CR's
 * routing function), including misroute extensions.
 */

#include <algorithm>
#include <set>

#include <gtest/gtest.h>

#include "src/routing/routing.hh"

namespace crnet {
namespace {

Flit
headTo(NodeId dst, std::uint8_t misroute_budget = 0)
{
    Flit f;
    f.type = FlitType::Head;
    f.msg = 1;
    f.dst = dst;
    f.misrouteBudget = misroute_budget;
    return f;
}

class AdaptiveTest : public ::testing::Test
{
  protected:
    AdaptiveTest()
        : topo(8, 2), faults(topo, 0.0, Rng(1)),
          algo(topo, faults, 2), rng(7)
    {
    }

    std::set<PortId>
    candidatePorts(NodeId node, const Flit& head)
    {
        std::vector<Candidate> out;
        algo.candidates(node, head, out, rng);
        std::set<PortId> ports;
        for (const Candidate& c : out)
            ports.insert(c.port);
        return ports;
    }

    TorusTopology topo;
    FaultModel faults;
    MinimalAdaptiveRouting algo;
    Rng rng;
};

TEST_F(AdaptiveTest, OffersEveryMinimalDirection)
{
    // 0 -> (2, 3): +x and +y are minimal.
    const auto ports = candidatePorts(0, headTo(2 + 3 * 8));
    EXPECT_EQ(ports.size(), 2u);
    EXPECT_TRUE(ports.count(makePort(0, Direction::Plus)));
    EXPECT_TRUE(ports.count(makePort(1, Direction::Plus)));
}

TEST_F(AdaptiveTest, HalfwayPointOffersBothWays)
{
    // 0 -> 4 in x: both x directions minimal.
    const auto ports = candidatePorts(0, headTo(4));
    EXPECT_EQ(ports.size(), 2u);
    EXPECT_TRUE(ports.count(makePort(0, Direction::Plus)));
    EXPECT_TRUE(ports.count(makePort(0, Direction::Minus)));
}

TEST_F(AdaptiveTest, EveryVcIsOffered)
{
    std::vector<Candidate> out;
    algo.candidates(0, headTo(1), out, rng);
    ASSERT_EQ(out.size(), 2u);  // 1 port x 2 VCs.
    std::set<VcId> vcs;
    for (const Candidate& c : out)
        vcs.insert(c.vc);
    EXPECT_EQ(vcs.size(), 2u);
}

TEST_F(AdaptiveTest, CandidatesAreAllMinimal)
{
    for (NodeId src = 0; src < topo.numNodes(); src += 5) {
        for (NodeId dst = 0; dst < topo.numNodes(); dst += 3) {
            if (src == dst)
                continue;
            const Flit h = headTo(dst);
            std::vector<Candidate> out;
            algo.candidates(src, h, out, rng);
            ASSERT_FALSE(out.empty());
            const std::uint32_t d = topo.distance(src, dst);
            for (const Candidate& c : out) {
                EXPECT_FALSE(c.misroute);
                const NodeId next = topo.neighbor(src, c.port);
                EXPECT_EQ(topo.distance(next, dst), d - 1)
                    << "non-minimal candidate " << c.port;
            }
        }
    }
}

TEST_F(AdaptiveTest, OrderIsRandomizedAcrossCalls)
{
    // With 2 ports x 2 VCs = 4 candidates, the first entry should not
    // always be identical over many shuffles.
    const Flit h = headTo(2 + 3 * 8);
    std::set<std::pair<PortId, VcId>> firsts;
    for (int i = 0; i < 64; ++i) {
        std::vector<Candidate> out;
        algo.candidates(0, h, out, rng);
        firsts.insert({out[0].port, out[0].vc});
    }
    EXPECT_GT(firsts.size(), 1u);
}

TEST_F(AdaptiveTest, DeadLinksAreExcluded)
{
    faults.killDirectedLink(0, makePort(0, Direction::Plus));
    const auto ports = candidatePorts(0, headTo(2 + 3 * 8));
    EXPECT_EQ(ports.size(), 1u);
    EXPECT_TRUE(ports.count(makePort(1, Direction::Plus)));
}

TEST_F(AdaptiveTest, AllMinimalLinksDeadMeansNoCandidates)
{
    faults.killDirectedLink(0, makePort(0, Direction::Plus));
    faults.killDirectedLink(0, makePort(1, Direction::Plus));
    const auto ports = candidatePorts(0, headTo(2 + 3 * 8));
    EXPECT_TRUE(ports.empty());
}

TEST_F(AdaptiveTest, MisrouteBudgetAddsNonMinimalAfterMinimal)
{
    std::vector<Candidate> out;
    algo.candidates(0, headTo(2, 2), out, rng);
    // Minimal: +x (2 VCs). Non-minimal: -x, +y, -y (2 VCs each).
    ASSERT_EQ(out.size(), 8u);
    EXPECT_FALSE(out[0].misroute);
    EXPECT_FALSE(out[1].misroute);
    for (std::size_t i = 2; i < out.size(); ++i)
        EXPECT_TRUE(out[i].misroute);
}

TEST_F(AdaptiveTest, MisrouteEscapesDeadMinimalLinks)
{
    faults.killDirectedLink(0, makePort(0, Direction::Plus));
    faults.killDirectedLink(0, makePort(0, Direction::Minus));
    std::vector<Candidate> out;
    algo.candidates(0, headTo(2, 2), out, rng);
    ASSERT_FALSE(out.empty());
    for (const Candidate& c : out) {
        EXPECT_TRUE(c.misroute);
        EXPECT_TRUE(faults.linkOk(0, c.port));
    }
}

TEST_F(AdaptiveTest, NotSelfDeadlockFree)
{
    EXPECT_FALSE(algo.selfDeadlockFree());
}

TEST(AdaptiveMesh, RespectsBoundaries)
{
    MeshTopology topo(4, 2);
    FaultModel faults(topo, 0.0, Rng(1));
    MinimalAdaptiveRouting algo(topo, faults, 1);
    Rng rng(3);
    // Corner 0 -> 15: +x, +y only; with misroute budget, only real
    // links may appear.
    Flit h;
    h.type = FlitType::Head;
    h.dst = 15;
    h.misrouteBudget = 2;
    std::vector<Candidate> out;
    algo.candidates(0, h, out, rng);
    for (const Candidate& c : out)
        EXPECT_NE(topo.neighbor(0, c.port), kInvalidNode);
}

} // namespace
} // namespace crnet
