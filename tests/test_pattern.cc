/**
 * @file
 * Unit tests for spatial traffic patterns.
 */

#include <map>

#include <gtest/gtest.h>

#include "src/traffic/pattern.hh"

namespace crnet {
namespace {

SimConfig
cfgFor(TrafficPattern p, std::uint32_t k = 4, std::uint32_t n = 2,
       TopologyKind topo = TopologyKind::Torus)
{
    SimConfig cfg;
    cfg.pattern = p;
    cfg.radixK = k;
    cfg.dimensionsN = n;
    cfg.topology = topo;
    return cfg;
}

TEST(Pattern, UniformNeverSelfAndCoversAll)
{
    auto cfg = cfgFor(TrafficPattern::Uniform);
    auto topo = makeTopology(cfg);
    auto pat = makePattern(cfg, *topo);
    Rng rng(1);
    std::map<NodeId, int> hits;
    for (int i = 0; i < 20000; ++i) {
        const NodeId d = pat->destination(5, rng);
        ASSERT_NE(d, 5u);
        ASSERT_LT(d, topo->numNodes());
        ++hits[d];
    }
    EXPECT_EQ(hits.size(), topo->numNodes() - 1);
    // Roughly uniform: each of the 15 others ~1333 hits.
    for (const auto& [node, count] : hits)
        EXPECT_NEAR(count, 20000.0 / 15.0, 250.0) << "node " << node;
}

TEST(Pattern, BitComplementIsInvolutionPermutation)
{
    auto cfg = cfgFor(TrafficPattern::BitComplement);
    auto topo = makeTopology(cfg);
    auto pat = makePattern(cfg, *topo);
    Rng rng(1);
    for (NodeId s = 0; s < topo->numNodes(); ++s) {
        const NodeId d = pat->destination(s, rng);
        EXPECT_NE(d, s);
        EXPECT_EQ(d, static_cast<NodeId>(~s & 0xF));
        EXPECT_EQ(pat->destination(d, rng), s);
    }
}

TEST(Pattern, BitComplementNeedsPowerOfTwo)
{
    auto cfg = cfgFor(TrafficPattern::BitComplement, 3, 2);
    auto topo = makeTopology(cfg);
    EXPECT_DEATH(makePattern(cfg, *topo), "power-of-two");
}

TEST(Pattern, TransposeSwapsCoordinates)
{
    auto cfg = cfgFor(TrafficPattern::Transpose);
    auto topo = makeTopology(cfg);
    auto pat = makePattern(cfg, *topo);
    Rng rng(1);
    // (1, 2) = 9 -> (2, 1) = 6.
    EXPECT_EQ(pat->destination(9, rng), 6u);
    // Diagonal (2,2) = 10 maps to itself -> falls back to uniform.
    const NodeId d = pat->destination(10, rng);
    EXPECT_NE(d, 10u);
    EXPECT_LT(d, 16u);
}

TEST(Pattern, TransposeNeeds2D)
{
    auto cfg = cfgFor(TrafficPattern::Transpose, 4, 3);
    auto topo = makeTopology(cfg);
    EXPECT_DEATH(makePattern(cfg, *topo), "2D");
}

TEST(Pattern, BitReversalReversesBits)
{
    auto cfg = cfgFor(TrafficPattern::BitReversal);
    auto topo = makeTopology(cfg);
    auto pat = makePattern(cfg, *topo);
    Rng rng(1);
    // 16 nodes = 4 bits: 0b0001 -> 0b1000.
    EXPECT_EQ(pat->destination(1, rng), 8u);
    EXPECT_EQ(pat->destination(8, rng), 1u);
    // Palindromes (0b0110 = 6) fall back to uniform.
    EXPECT_NE(pat->destination(6, rng), 6u);
}

TEST(Pattern, HotspotBiasesTowardHotNode)
{
    auto cfg = cfgFor(TrafficPattern::Hotspot);
    cfg.hotspotFraction = 0.5;
    auto topo = makeTopology(cfg);
    auto pat = makePattern(cfg, *topo);
    Rng rng(1);
    int hot_hits = 0;
    const int n = 20000;
    for (int i = 0; i < n; ++i)
        hot_hits += pat->destination(5, rng) == 0;
    // 50% direct + uniform residue also occasionally hits node 0.
    EXPECT_GT(static_cast<double>(hot_hits) / n, 0.45);
}

TEST(Pattern, NeighborIsAlwaysOneHop)
{
    auto cfg = cfgFor(TrafficPattern::Neighbor);
    auto topo = makeTopology(cfg);
    auto pat = makePattern(cfg, *topo);
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const NodeId d = pat->destination(5, rng);
        EXPECT_EQ(topo->distance(5, d), 1u);
    }
}

TEST(Pattern, TornadoShiftsHalfRingMinusOne)
{
    auto cfg = cfgFor(TrafficPattern::Tornado, 8, 2);
    auto topo = makeTopology(cfg);
    auto pat = makePattern(cfg, *topo);
    Rng rng(1);
    // (1, 2) -> (1 + 3, 2) on an 8-ring: offset k/2 - 1 = 3.
    EXPECT_EQ(pat->destination(1 + 2 * 8, rng), 4u + 2 * 8);
    // Wraps around the ring.
    EXPECT_EQ(pat->destination(6, rng), 1u);
}

TEST(Pattern, TornadoIsAPermutation)
{
    auto cfg = cfgFor(TrafficPattern::Tornado, 8, 2);
    auto topo = makeTopology(cfg);
    auto pat = makePattern(cfg, *topo);
    Rng rng(1);
    std::map<NodeId, int> hits;
    for (NodeId s = 0; s < topo->numNodes(); ++s)
        ++hits[pat->destination(s, rng)];
    EXPECT_EQ(hits.size(), topo->numNodes());
    for (const auto& [node, count] : hits)
        EXPECT_EQ(count, 1) << "node " << node;
}

TEST(Pattern, TornadoRejectsTinyRings)
{
    auto cfg = cfgFor(TrafficPattern::Tornado, 2, 2);
    auto topo = makeTopology(cfg);
    EXPECT_DEATH(makePattern(cfg, *topo), "radix");
}

TEST(Pattern, NeighborHandlesMeshCorners)
{
    auto cfg = cfgFor(TrafficPattern::Neighbor, 4, 2,
                      TopologyKind::Mesh);
    auto topo = makeTopology(cfg);
    auto pat = makePattern(cfg, *topo);
    Rng rng(1);
    for (int i = 0; i < 1000; ++i) {
        const NodeId d = pat->destination(0, rng);  // Corner node.
        EXPECT_NE(d, 0u);
        EXPECT_LT(d, 16u);
    }
}

} // namespace
} // namespace crnet
