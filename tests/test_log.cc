/**
 * @file
 * Tests for the error-reporting helpers (gem5-style panic/fatal).
 */

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/sim/log.hh"

namespace crnet {
namespace {

TEST(Log, ConcatStreamsAllArguments)
{
    EXPECT_EQ(detail::concat("a", 1, '-', 2.5), "a1-2.5");
    EXPECT_EQ(detail::concat(), "");
    EXPECT_EQ(detail::concat(42), "42");
}

TEST(Log, PanicAborts)
{
    EXPECT_DEATH(panic("invariant ", 7, " violated"),
                 "panic: invariant 7 violated");
}

TEST(Log, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(fatal("bad config: ", "k"),
                ::testing::ExitedWithCode(1), "fatal: bad config: k");
}

TEST(Log, WarnAndInformDoNotTerminate)
{
    warn("just a warning ", 1);
    inform("status ", 2);
    SUCCEED();
}

TEST(Log, RunScopePrefixesAndRestores)
{
    EXPECT_EQ(detail::logPrefix(), "");
    {
        LogRunScope outer(3);
        EXPECT_EQ(detail::logPrefix(), "[run 3] ");
        {
            LogRunScope inner(7);
            EXPECT_EQ(detail::logPrefix(), "[run 7] ");
        }
        EXPECT_EQ(detail::logPrefix(), "[run 3] ");
    }
    EXPECT_EQ(detail::logPrefix(), "");
}

TEST(Log, WarnIsSafeUnderConcurrency)
{
    // Format-then-lock: concurrent warns never interleave mid-line.
    // This just exercises the path from several threads under TSan/
    // ASan builds; the output itself goes to stderr.
    std::vector<std::thread> threads;
    for (int t = 0; t < 4; ++t) {
        threads.emplace_back([t] {
            LogRunScope scope(t);
            for (int i = 0; i < 20; ++i)
                warn("thread ", t, " line ", i);
        });
    }
    for (std::thread& th : threads)
        th.join();
    SUCCEED();
}

} // namespace
} // namespace crnet
