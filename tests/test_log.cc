/**
 * @file
 * Tests for the error-reporting helpers (gem5-style panic/fatal).
 */

#include <gtest/gtest.h>

#include "src/sim/log.hh"

namespace crnet {
namespace {

TEST(Log, ConcatStreamsAllArguments)
{
    EXPECT_EQ(detail::concat("a", 1, '-', 2.5), "a1-2.5");
    EXPECT_EQ(detail::concat(), "");
    EXPECT_EQ(detail::concat(42), "42");
}

TEST(Log, PanicAborts)
{
    EXPECT_DEATH(panic("invariant ", 7, " violated"),
                 "panic: invariant 7 violated");
}

TEST(Log, FatalExitsWithCodeOne)
{
    EXPECT_EXIT(fatal("bad config: ", "k"),
                ::testing::ExitedWithCode(1), "fatal: bad config: k");
}

TEST(Log, WarnAndInformDoNotTerminate)
{
    warn("just a warning ", 1);
    inform("status ", 2);
    SUCCEED();
}

} // namespace
} // namespace crnet
