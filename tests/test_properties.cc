/**
 * @file
 * Property-based sweeps: system-wide invariants checked across a grid
 * of topologies, routing relations, protocols and resource
 * configurations (parameterized gtest).
 *
 * Invariants:
 *  P1  flit conservation: once quiescent, every injected flit was
 *      either consumed by a receiver, purged by a kill, or dropped as
 *      a straggler;
 *  P2  exactly-once, in-order delivery per (src,dst) pair;
 *  P3  no corrupted delivery when the fault rate is zero (and none
 *      ever under FCR);
 *  P4  deadlock-free configurations never trip the watchdog;
 *  P5  commit/delivery agreement for CR-family protocols.
 */

#include <string>

#include <gtest/gtest.h>

#include "src/core/network.hh"

namespace crnet {
namespace {

struct Scenario
{
    std::string name;
    TopologyKind topology;
    RoutingKind routing;
    ProtocolKind protocol;
    std::uint32_t vcs;
    std::uint32_t depth;
    std::uint32_t injCh;
    double load;
    double faultRate;
};

std::ostream&
operator<<(std::ostream& os, const Scenario& s)
{
    return os << s.name;
}

class InvariantSweep : public ::testing::TestWithParam<Scenario>
{
};

TEST_P(InvariantSweep, HoldsUnderLoad)
{
    const Scenario& sc = GetParam();
    SimConfig cfg;
    cfg.topology = sc.topology;
    cfg.radixK = 4;
    cfg.dimensionsN = 2;
    cfg.routing = sc.routing;
    cfg.protocol = sc.protocol;
    cfg.numVcs = sc.vcs;
    cfg.bufferDepth = sc.depth;
    cfg.injectionChannels = sc.injCh;
    cfg.ejectionChannels = sc.injCh;
    cfg.injectionRate = sc.load;
    cfg.messageLength = 8;
    cfg.transientFaultRate = sc.faultRate;
    cfg.timeout = 24;
    cfg.seed = 1234;
    Network net(cfg);

    // Loaded phase.
    for (Cycle i = 0; i < 6000; ++i) {
        net.tick();
        ASSERT_FALSE(net.deadlocked()) << "watchdog at " << net.now();
    }
    // Quiesce.
    net.setTrafficEnabled(false);
    Cycle spent = 0;
    while (!net.quiescent() && spent < 60000) {
        net.tick();
        ++spent;
    }
    ASSERT_TRUE(net.quiescent()) << "failed to quiesce";

    const NetworkStats& s = net.stats();
    ASSERT_GT(s.messagesDelivered.value(), 20u);

    // P1: flit conservation.
    EXPECT_EQ(s.flitsInjected.value(),
              s.flitsConsumed.value() +
                  s.router.flitsPurged.value() +
                  s.router.stragglersDropped.value());

    // P2: order and exactly-once.
    EXPECT_EQ(s.orderViolations.value(), 0u);
    EXPECT_EQ(s.duplicateDeliveries.value(), 0u);

    // P3: integrity.
    if (sc.faultRate == 0.0 || sc.protocol == ProtocolKind::Fcr) {
        EXPECT_EQ(s.corruptedDeliveries.value(), 0u);
    }

    // P5: commit/delivery agreement (CR family).
    if (sc.protocol != ProtocolKind::None) {
        EXPECT_EQ(s.messagesCommitted.value(),
                  s.messagesDelivered.value());
    }
}

INSTANTIATE_TEST_SUITE_P(
    Grid, InvariantSweep,
    ::testing::Values(
        Scenario{"cr_torus_1vc", TopologyKind::Torus,
                 RoutingKind::MinimalAdaptive, ProtocolKind::Cr, 1, 2,
                 1, 0.20, 0.0},
        Scenario{"cr_torus_2vc", TopologyKind::Torus,
                 RoutingKind::MinimalAdaptive, ProtocolKind::Cr, 2, 2,
                 1, 0.30, 0.0},
        Scenario{"cr_torus_4vc_deep", TopologyKind::Torus,
                 RoutingKind::MinimalAdaptive, ProtocolKind::Cr, 4, 4,
                 1, 0.30, 0.0},
        Scenario{"cr_torus_2ch", TopologyKind::Torus,
                 RoutingKind::MinimalAdaptive, ProtocolKind::Cr, 2, 2,
                 2, 0.40, 0.0},
        Scenario{"cr_mesh", TopologyKind::Mesh,
                 RoutingKind::MinimalAdaptive, ProtocolKind::Cr, 1, 2,
                 1, 0.15, 0.0},
        Scenario{"cr_dor_torus_1vc", TopologyKind::Torus,
                 RoutingKind::DimensionOrder, ProtocolKind::Cr, 1, 2,
                 1, 0.15, 0.0},
        Scenario{"fcr_torus", TopologyKind::Torus,
                 RoutingKind::MinimalAdaptive, ProtocolKind::Fcr, 1, 2,
                 1, 0.08, 0.0},
        Scenario{"fcr_torus_faulty", TopologyKind::Torus,
                 RoutingKind::MinimalAdaptive, ProtocolKind::Fcr, 1, 2,
                 1, 0.05, 0.001},
        Scenario{"fcr_mesh_faulty", TopologyKind::Mesh,
                 RoutingKind::MinimalAdaptive, ProtocolKind::Fcr, 2, 2,
                 1, 0.05, 0.001},
        Scenario{"dor_torus_plain", TopologyKind::Torus,
                 RoutingKind::DimensionOrder, ProtocolKind::None, 2, 4,
                 1, 0.20, 0.0},
        Scenario{"dor_mesh_plain", TopologyKind::Mesh,
                 RoutingKind::DimensionOrder, ProtocolKind::None, 1, 2,
                 1, 0.15, 0.0},
        Scenario{"duato_torus", TopologyKind::Torus,
                 RoutingKind::Duato, ProtocolKind::None, 3, 2, 1,
                 0.25, 0.0},
        Scenario{"duato_mesh", TopologyKind::Mesh, RoutingKind::Duato,
                 ProtocolKind::None, 2, 2, 1, 0.20, 0.0},
        Scenario{"west_first_mesh", TopologyKind::Mesh,
                 RoutingKind::WestFirst, ProtocolKind::None, 1, 2, 1,
                 0.15, 0.0},
        Scenario{"negative_first_mesh", TopologyKind::Mesh,
                 RoutingKind::NegativeFirst, ProtocolKind::None, 2, 2,
                 1, 0.15, 0.0},
        Scenario{"cr_west_first_mesh", TopologyKind::Mesh,
                 RoutingKind::WestFirst, ProtocolKind::Cr, 1, 2, 1,
                 0.15, 0.0}),
    [](const ::testing::TestParamInfo<Scenario>& info) {
        return info.param.name;
    });

/** Padding sweep: CR wire length always covers the path, any shape. */
class PaddingSweep
    : public ::testing::TestWithParam<std::tuple<int, int, int>>
{
};

TEST_P(PaddingSweep, CommittedImpliesDelivered)
{
    const auto [k, len, depth] = GetParam();
    SimConfig cfg;
    cfg.radixK = static_cast<std::uint32_t>(k);
    cfg.dimensionsN = 2;
    cfg.messageLength = static_cast<std::uint32_t>(len);
    cfg.bufferDepth = static_cast<std::uint32_t>(depth);
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = ProtocolKind::Cr;
    cfg.injectionRate = 0.25;
    cfg.seed = 42;
    Network net(cfg);
    net.run(4000);
    net.setTrafficEnabled(false);
    Cycle spent = 0;
    while (!net.quiescent() && spent < 60000) {
        net.tick();
        ++spent;
    }
    ASSERT_TRUE(net.quiescent());
    EXPECT_EQ(net.stats().messagesCommitted.value(),
              net.stats().messagesDelivered.value());
    EXPECT_GT(net.stats().messagesDelivered.value(), 20u);
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, PaddingSweep,
    ::testing::Combine(::testing::Values(4, 6),
                       ::testing::Values(4, 16, 48),
                       ::testing::Values(1, 2, 4)));

} // namespace
} // namespace crnet
