#!/usr/bin/env python3
"""Schema and atomicity tests for the live status file (status=).

Drives tests/campaign_resume_helper (the same fixture binary the
crash-resume test uses), with the status file enabled:

  1. Runs a campaign with status_interval=0 (rewrite on every update)
     and validates the final status.json against the documented
     crnet-status-v1 schema (docs/OBSERVABILITY.md): required keys,
     types, state=done, and internally-consistent counts.
  2. Polls the file while a campaign runs, parsing every read: writes
     go through atomicWriteFile, so a reader must never see a torn or
     half-written file, only a missing one.
  3. SIGKILLs a campaign mid-flight — with rewrites happening as often
     as possible — and asserts the file left on disk still parses and
     validates: the atomic rename can be interrupted, the visible file
     can not.
  4. Re-runs the killed campaign against its journal with status and
     profiling enabled and asserts the summary/trial output is
     byte-identical to a plain run: telemetry stays off the results
     path even across a crash-resume.

Usage: test_status_schema.py <helper_binary>
"""

import json
import os
import random
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

TRIALS = 12
SEED_BASE = 7

# key -> allowed types in a crnet-status-v1 file.
SCHEMA_KEYS = {
    "schema": str,
    "kind": str,
    "state": str,
    "wall_seconds": (int, float),
    "jobs": int,
    "total": int,
    "done": int,
    "resumed": int,
    "quarantined": int,
    "deadlocked": int,
    "accepted": int,
    "delivered": int,
    "delivery_ratio": (int, float),
    "eta_seconds": (int, float),
    "active": list,
    "recent_units": list,
    "recent_fault_events": list,
    "metrics": dict,
}

UNIT_KEYS = {
    "unit": int,
    "seed": int,
    "ok": bool,
    "deadlocked": bool,
    "quarantined": bool,
    "accepted": int,
    "delivered": int,
    "cycles": int,
}


def validate(status, where):
    """Return a list of schema violations in one parsed status dict."""
    problems = []
    for key, types in SCHEMA_KEYS.items():
        if key not in status:
            problems.append(f"{where}: missing key {key!r}")
        elif not isinstance(status[key], types):
            problems.append(
                f"{where}: {key!r} has type "
                f"{type(status[key]).__name__}, wanted {types}")
    if problems:
        return problems
    if status["schema"] != "crnet-status-v1":
        problems.append(f"{where}: schema is {status['schema']!r}")
    if status["kind"] not in ("campaign", "sweep"):
        problems.append(f"{where}: kind is {status['kind']!r}")
    if status["state"] not in ("running", "done"):
        problems.append(f"{where}: state is {status['state']!r}")
    if not 0 <= status["done"] <= status["total"]:
        problems.append(
            f"{where}: done={status['done']} outside "
            f"[0, total={status['total']}]")
    if status["delivered"] > status["accepted"]:
        problems.append(f"{where}: delivered > accepted")
    if not 0.0 <= status["delivery_ratio"] <= 1.0:
        problems.append(
            f"{where}: delivery_ratio={status['delivery_ratio']}")
    for u in status["recent_units"]:
        for key, types in UNIT_KEYS.items():
            if not isinstance(u.get(key), types):
                problems.append(
                    f"{where}: recent_units[...].{key} missing or "
                    f"mistyped in {u}")
                break
    for ev in status["recent_fault_events"]:
        if not isinstance(ev.get("unit"), int) or \
                not isinstance(ev.get("at"), int) or \
                not isinstance(ev.get("kind"), str):
            problems.append(
                f"{where}: malformed fault event {ev}")
    for name, value in status["metrics"].items():
        if not isinstance(name, str) or \
                not isinstance(value, (int, float)):
            problems.append(f"{where}: malformed metric {name!r}")
    return problems


def helper_cmd(helper, journal=None, status=None, profile=False,
               jobs=1):
    cmd = [helper, f"trials={TRIALS}", f"seed_base={SEED_BASE}",
           f"jobs={jobs}"]
    if journal:
        cmd.append(f"journal={journal}")
    if status:
        cmd += [f"status={status}", "status_interval=0"]
    if profile:
        cmd.append("profile=1")
    return cmd


def run_helper(helper, **kwargs):
    proc = subprocess.run(helper_cmd(helper, **kwargs),
                          capture_output=True, text=True, timeout=600)
    if proc.returncode != 0:
        raise AssertionError(
            f"helper failed ({proc.returncode}):\n{proc.stdout}"
            f"\n{proc.stderr}")
    kept = [l for l in proc.stdout.splitlines()
            if l.startswith(("summary ", "trial "))]
    return "\n".join(kept) + "\n"


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    helper = sys.argv[1]
    if not Path(helper).exists():
        print(f"helper binary not found: {helper}")
        return 2

    rng = random.Random(20260809)
    failures = []

    with tempfile.TemporaryDirectory(prefix="crnet_status_") as tmp:
        # 1. Final-state schema validation.
        status_path = os.path.join(tmp, "status.json")
        reference = run_helper(helper, status=status_path)
        with open(status_path, encoding="utf-8") as f:
            final = json.load(f)
        failures += validate(final, "final status")
        if not failures:
            if final["state"] != "done":
                failures.append(
                    f"final state is {final['state']!r}, not 'done'")
            if final["done"] != TRIALS or final["total"] != TRIALS:
                failures.append(
                    f"final done/total = {final['done']}/"
                    f"{final['total']}, expected {TRIALS}/{TRIALS}")
            if final["kind"] != "campaign":
                failures.append(
                    f"final kind is {final['kind']!r}")

        # 2. Live polling: every successful read must parse and
        # validate — atomic rewrites leave no torn intermediate state.
        live_path = os.path.join(tmp, "live.json")
        proc = subprocess.Popen(
            helper_cmd(helper, status=live_path),
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
        reads = 0
        try:
            while proc.poll() is None:
                try:
                    with open(live_path, encoding="utf-8") as f:
                        snap = json.load(f)
                except OSError:
                    time.sleep(0.001)
                    continue  # Not created yet / mid-rename.
                except ValueError as e:
                    failures.append(f"torn status file mid-run: {e}")
                    break
                reads += 1
                failures += validate(snap, f"live read {reads}")
                time.sleep(0.001)
            proc.wait(timeout=600)
        finally:
            if proc.poll() is None:
                proc.kill()
                proc.wait(timeout=60)
        if reads == 0:
            print("note: campaign finished before any live read; "
                  "final-state coverage only this run")

        # 3. SIGKILL mid-run, with the status file rewritten as often
        # as possible: whatever survives on disk must still be valid.
        journal = os.path.join(tmp, "killed.jnl")
        kill_path = os.path.join(tmp, "killed.json")
        killed = False
        for _ in range(4):
            proc = subprocess.Popen(
                helper_cmd(helper, journal=journal, status=kill_path),
                stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL)
            deadline = time.monotonic() + 60
            try:
                while time.monotonic() < deadline:
                    if proc.poll() is not None:
                        break
                    if os.path.exists(kill_path):
                        break
                    time.sleep(0.002)
                time.sleep(rng.uniform(0.0, 0.05))
                if proc.poll() is None:
                    proc.send_signal(signal.SIGKILL)
                    proc.wait(timeout=60)
                    killed = True
            finally:
                if proc.poll() is None:
                    proc.kill()
                    proc.wait(timeout=60)
            if os.path.exists(kill_path):
                try:
                    with open(kill_path, encoding="utf-8") as f:
                        snap = json.load(f)
                    failures += validate(snap, "post-kill status")
                except ValueError as e:
                    failures.append(
                        f"status file torn by SIGKILL: {e}")
        if not killed:
            print("note: no kill landed mid-campaign; atomicity "
                  "checked on complete files only this run")

        # 4. Resume the killed campaign with telemetry fully on; the
        # results must match a plain run byte-for-byte.
        resumed = run_helper(helper, journal=journal,
                             status=kill_path, profile=True)
        plain = run_helper(helper)
        if reference != plain:
            failures.append(
                "status-enabled output differs from a plain run:\n"
                f"--- plain\n{plain}\n--- status\n{reference}")
        if resumed != plain:
            failures.append(
                "resumed status+profile output differs from a plain "
                f"run:\n--- plain\n{plain}\n--- resumed\n{resumed}")

    if failures:
        print(f"FAIL: {len(failures)} problem(s)")
        for f in failures[:20]:
            print(f"  - {f}")
        return 1
    print("OK: status file validates against crnet-status-v1 (final, "
          f"{reads} live reads, post-SIGKILL) and telemetry stays "
          "off the results path")
    return 0


if __name__ == "__main__":
    sys.exit(main())
