/**
 * @file
 * Steady-state allocation audit: once a network has warmed up and
 * drained to quiescence, ticking it must perform ZERO heap
 * allocations under either scheduler. The hot-path containers (wave
 * buckets, router outboxes and nomination buckets, NIC scratch
 * vectors) are pre-reserved at construction and recycled, never
 * recreated. Live traffic still allocates in the exactly-once
 * bookkeeping (assemblies, seen-sequence sets, source queues) by
 * design; this test pins down the per-cycle engine overhead.
 *
 * The counter instruments the global operator new/delete. gtest's own
 * machinery allocates too, so the counted window is exactly the
 * net.run() call between two counter reads.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <new>

#include "src/core/network.hh"

namespace {

std::atomic<std::uint64_t> g_allocs{0};

} // namespace

void*
operator new(std::size_t size)
{
    g_allocs.fetch_add(1, std::memory_order_relaxed);
    if (void* p = std::malloc(size == 0 ? 1 : size))
        return p;
    throw std::bad_alloc();
}

void*
operator new[](std::size_t size)
{
    return ::operator new(size);
}

void
operator delete(void* p) noexcept
{
    std::free(p);
}

void
operator delete[](void* p) noexcept
{
    std::free(p);
}

void
operator delete(void* p, std::size_t) noexcept
{
    std::free(p);
}

void
operator delete[](void* p, std::size_t) noexcept
{
    std::free(p);
}

namespace crnet {
namespace {

SimConfig
steadyCfg(SchedulerKind sched)
{
    SimConfig cfg;
    cfg.radixK = 4;
    cfg.dimensionsN = 2;
    cfg.numVcs = 2;
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = ProtocolKind::Cr;
    cfg.timeout = 8;
    cfg.injectionRate = 0.2;
    cfg.messageLength = 8;
    cfg.seed = 5;
    cfg.sched = sched;
    // Keep the periodic audit sweep (which builds an AuditSnapshot)
    // out of the measured window; per-event audit hooks still run.
    cfg.auditInterval = 1u << 20;
    return cfg;
}

void
expectZeroAllocSteadyState(SchedulerKind sched)
{
    Network net(steadyCfg(sched));

    // Warm up with live traffic so every never-shrink container has
    // seen its high-water mark, then drain to quiescence.
    net.run(2000);
    net.setTrafficEnabled(false);
    Cycle guard = 0;
    while (!net.quiescent() && guard++ < 50000)
        net.tick();
    ASSERT_TRUE(net.quiescent());
    EXPECT_GT(net.stats().messagesDelivered.value(), 0u);

    const std::uint64_t before =
        g_allocs.load(std::memory_order_relaxed);
    net.run(1000);
    const std::uint64_t after =
        g_allocs.load(std::memory_order_relaxed);
    EXPECT_EQ(after - before, 0u)
        << "steady-state cycle loop allocated under "
        << toString(sched);
}

TEST(AllocSteady, ActiveSchedulerTicksWithoutAllocating)
{
    expectZeroAllocSteadyState(SchedulerKind::Active);
}

TEST(AllocSteady, SweepSchedulerTicksWithoutAllocating)
{
    expectZeroAllocSteadyState(SchedulerKind::Sweep);
}

TEST(AllocSteady, CounterInstrumentationWorks)
{
    const std::uint64_t before =
        g_allocs.load(std::memory_order_relaxed);
    auto* p = new int(42);
    const std::uint64_t after =
        g_allocs.load(std::memory_order_relaxed);
    delete p;
    EXPECT_GE(after - before, 1u);
}

} // namespace
} // namespace crnet
