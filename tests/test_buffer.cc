/**
 * @file
 * Unit tests for the flit ring buffer.
 */

#include <gtest/gtest.h>

#include "src/router/buffer.hh"

namespace crnet {
namespace {

Flit
flitWithSeq(std::uint32_t seq)
{
    Flit f;
    f.msg = 1;
    f.seq = seq;
    return f;
}

TEST(FlitBuffer, FifoOrder)
{
    FlitBuffer b(4);
    for (std::uint32_t i = 0; i < 4; ++i)
        b.push(flitWithSeq(i));
    for (std::uint32_t i = 0; i < 4; ++i)
        EXPECT_EQ(b.pop().seq, i);
    EXPECT_TRUE(b.empty());
}

TEST(FlitBuffer, WrapsAroundRepeatedly)
{
    FlitBuffer b(3);
    std::uint32_t next_push = 0, next_pop = 0;
    for (int round = 0; round < 50; ++round) {
        while (!b.full())
            b.push(flitWithSeq(next_push++));
        while (!b.empty())
            EXPECT_EQ(b.pop().seq, next_pop++);
    }
    EXPECT_EQ(next_push, next_pop);
}

TEST(FlitBuffer, CapacityAndCounts)
{
    FlitBuffer b(2);
    EXPECT_EQ(b.capacity(), 2u);
    EXPECT_TRUE(b.empty());
    EXPECT_FALSE(b.full());
    b.push(flitWithSeq(0));
    EXPECT_EQ(b.size(), 1u);
    b.push(flitWithSeq(1));
    EXPECT_TRUE(b.full());
}

TEST(FlitBuffer, OverflowPanics)
{
    FlitBuffer b(1);
    b.push(flitWithSeq(0));
    EXPECT_DEATH(b.push(flitWithSeq(1)), "overflow");
}

TEST(FlitBuffer, UnderflowPanics)
{
    FlitBuffer b(1);
    EXPECT_DEATH(b.pop(), "empty");
    EXPECT_DEATH(b.front(), "empty");
}

TEST(FlitBuffer, PurgeDropsEverything)
{
    FlitBuffer b(4);
    b.push(flitWithSeq(0));
    b.push(flitWithSeq(1));
    EXPECT_EQ(b.purge(), 2u);
    EXPECT_TRUE(b.empty());
    EXPECT_EQ(b.purge(), 0u);
    // Still usable after purge.
    b.push(flitWithSeq(9));
    EXPECT_EQ(b.front().seq, 9u);
}

TEST(FlitBuffer, FrontMutableEditsInPlace)
{
    FlitBuffer b(2);
    b.push(flitWithSeq(0));
    b.frontMutable().misrouteBudget = 3;
    EXPECT_EQ(b.front().misrouteBudget, 3u);
}

TEST(FlitBuffer, ZeroCapacityPanics)
{
    EXPECT_DEATH(FlitBuffer(0), "capacity");
}

} // namespace
} // namespace crnet
