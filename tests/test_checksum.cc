/**
 * @file
 * Unit tests for the CRC-8 used by the FCR integrity model.
 */

#include <gtest/gtest.h>

#include "src/router/flit.hh"
#include "src/sim/checksum.hh"

namespace crnet {
namespace {

TEST(Crc8, KnownVectors)
{
    // CRC-8/SMBUS of 0 is 0 (all-zero input, zero init).
    EXPECT_EQ(crc8(0x0000000000000000ULL), 0x00);
    // Deterministic and stable values (regression anchors).
    const std::uint8_t a = crc8(0x0123456789abcdefULL);
    const std::uint8_t b = crc8(0x0123456789abcdefULL);
    EXPECT_EQ(a, b);
}

TEST(Crc8, SmbusCheckVector)
{
    // The canonical CRC-8/SMBUS check: crc8("123456789") == 0xF4.
    const std::uint8_t msg[] = {'1', '2', '3', '4', '5',
                                '6', '7', '8', '9'};
    EXPECT_EQ(crc8(msg, sizeof(msg)), 0xF4);
}

TEST(Crc8, EdgeCaseInputs)
{
    // Empty stream: CRC stays at its zero init value.
    EXPECT_EQ(crc8(nullptr, 0), 0x00);
    // Single bytes against a bitwise reference implementation.
    for (int v : {0x00, 0x01, 0x7f, 0x80, 0xff}) {
        std::uint8_t crc = static_cast<std::uint8_t>(v);
        for (int bit = 0; bit < 8; ++bit) {
            crc = (crc & 0x80)
                      ? static_cast<std::uint8_t>((crc << 1) ^ 0x07)
                      : static_cast<std::uint8_t>(crc << 1);
        }
        const std::uint8_t byte = static_cast<std::uint8_t>(v);
        EXPECT_EQ(crc8(&byte, 1), crc) << "byte " << v;
    }
    // All-ones word: value fixed by the polynomial, not the platform.
    const std::uint8_t ones[8] = {0xff, 0xff, 0xff, 0xff,
                                  0xff, 0xff, 0xff, 0xff};
    EXPECT_EQ(crc8(0xffffffffffffffffULL), crc8(ones, 8));
}

TEST(Crc8, WordMatchesByteStream)
{
    // The word overload is defined as the stream CRC of its bytes,
    // low byte first.
    const std::uint64_t word = 0x0123456789abcdefULL;
    const std::uint8_t bytes[] = {0xef, 0xcd, 0xab, 0x89,
                                  0x67, 0x45, 0x23, 0x01};
    EXPECT_EQ(crc8(word), crc8(bytes, sizeof(bytes)));
}

TEST(Crc8, SingleBitFlipsAreDetected)
{
    const std::uint64_t word = 0xdeadbeefcafe1234ULL;
    const std::uint8_t base = crc8(word);
    for (int bit = 0; bit < 64; ++bit) {
        const std::uint64_t flipped = word ^ (1ULL << bit);
        EXPECT_NE(crc8(flipped), base) << "undetected bit " << bit;
    }
}

TEST(Crc8, ConstexprUsable)
{
    constexpr std::uint8_t c = crc8(0x42ULL);
    static_assert(c == crc8(0x42ULL));
    EXPECT_EQ(c, crc8(0x42ULL));
}

TEST(FlitChecksum, StampAndVerifyRoundTrip)
{
    Flit f;
    f.payload = 0x1122334455667788ULL;
    f.stampCrc();
    EXPECT_TRUE(f.checksumOk());
    f.payload ^= 0x80000ULL;
    EXPECT_FALSE(f.checksumOk());
}

TEST(FlitChecksum, DefaultFlitPassesTrivially)
{
    Flit f;  // payload 0, crc 0.
    EXPECT_TRUE(f.checksumOk());
}

} // namespace
} // namespace crnet
