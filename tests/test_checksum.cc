/**
 * @file
 * Unit tests for the CRC-8 used by the FCR integrity model.
 */

#include <gtest/gtest.h>

#include "src/router/flit.hh"
#include "src/sim/checksum.hh"

namespace crnet {
namespace {

TEST(Crc8, KnownVectors)
{
    // CRC-8/SMBUS of 0 is 0 (all-zero input, zero init).
    EXPECT_EQ(crc8(0x0000000000000000ULL), 0x00);
    // Deterministic and stable values (regression anchors).
    const std::uint8_t a = crc8(0x0123456789abcdefULL);
    const std::uint8_t b = crc8(0x0123456789abcdefULL);
    EXPECT_EQ(a, b);
}

TEST(Crc8, SingleBitFlipsAreDetected)
{
    const std::uint64_t word = 0xdeadbeefcafe1234ULL;
    const std::uint8_t base = crc8(word);
    for (int bit = 0; bit < 64; ++bit) {
        const std::uint64_t flipped = word ^ (1ULL << bit);
        EXPECT_NE(crc8(flipped), base) << "undetected bit " << bit;
    }
}

TEST(Crc8, ConstexprUsable)
{
    constexpr std::uint8_t c = crc8(0x42ULL);
    static_assert(c == crc8(0x42ULL));
    EXPECT_EQ(c, crc8(0x42ULL));
}

TEST(FlitChecksum, StampAndVerifyRoundTrip)
{
    Flit f;
    f.payload = 0x1122334455667788ULL;
    f.stampCrc();
    EXPECT_TRUE(f.checksumOk());
    f.payload ^= 0x80000ULL;
    EXPECT_FALSE(f.checksumOk());
}

TEST(FlitChecksum, DefaultFlitPassesTrivially)
{
    Flit f;  // payload 0, crc 0.
    EXPECT_TRUE(f.checksumOk());
}

} // namespace
} // namespace crnet
