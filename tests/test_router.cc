/**
 * @file
 * Unit tests driving a single Router: VC allocation, switch behavior,
 * credits, tail release, kill purge/forward, backward kills.
 */

#include <gtest/gtest.h>

#include "src/router/router.hh"

namespace crnet {
namespace {

/** Fixture: one router of a 4x4 torus at node 5 = (1,1). */
class RouterTest : public ::testing::Test
{
  protected:
    RouterTest() { rebuild(); }

    void
    rebuild()
    {
        cfg = SimConfig{};
        cfg.radixK = 4;
        cfg.dimensionsN = 2;
        cfg.numVcs = numVcs;
        cfg.bufferDepth = 2;
        cfg.protocol = ProtocolKind::Cr;
        topo = std::make_unique<TorusTopology>(4, 2);
        faults = std::make_unique<FaultModel>(*topo, 0.0, Rng(1));
        algo = std::make_unique<MinimalAdaptiveRouting>(*topo, *faults,
                                                        numVcs);
        stats = RouterStats{};
        router = std::make_unique<Router>(5, cfg, *algo, &stats,
                                          Rng(2));
    }

    Flit
    makeFlit(FlitType type, MsgId msg, std::uint32_t seq, NodeId dst)
    {
        Flit f;
        f.type = type;
        f.msg = msg;
        f.seq = seq;
        f.src = 5;
        f.dst = dst;
        f.stampCrc();
        return f;
    }

    std::uint32_t numVcs = 1;
    SimConfig cfg;
    std::unique_ptr<TorusTopology> topo;
    std::unique_ptr<FaultModel> faults;
    std::unique_ptr<MinimalAdaptiveRouting> algo;
    RouterStats stats;
    std::unique_ptr<Router> router;
    Cycle now = 0;
};

TEST_F(RouterTest, HeadRoutesAndForwardsSameCycle)
{
    // Destination (3,1) = 7: +x or -x both minimal (distance 2).
    router->acceptFlit(router->injBase(), 0,
                       makeFlit(FlitType::Head, 1, 0, 7));
    router->tick(now++);
    ASSERT_EQ(router->sentFlits.size(), 1u);
    const SentFlit& s = router->sentFlits[0];
    EXPECT_EQ(portDim(s.outPort), 0u);  // An x port.
    EXPECT_TRUE(s.flit.isHead());
    // Credit went back to the injection channel.
    ASSERT_EQ(router->sentCredits.size(), 1u);
    EXPECT_EQ(router->sentCredits[0].inPort, router->injBase());
    EXPECT_EQ(stats.headersRouted.value(), 1u);
    EXPECT_EQ(stats.flitsForwarded.value(), 1u);
}

TEST_F(RouterTest, LocalDestinationEjects)
{
    router->acceptFlit(router->injBase(), 0,
                       makeFlit(FlitType::Head, 1, 0, 5));
    router->tick(now++);
    ASSERT_EQ(router->sentFlits.size(), 1u);
    EXPECT_GE(router->sentFlits[0].outPort, router->ejBase());
}

TEST_F(RouterTest, WormholePipelinesOneFlitPerCycle)
{
    const PortId in = makePort(0, Direction::Minus);  // From node 4.
    router->acceptFlit(in, 0, makeFlit(FlitType::Head, 9, 0, 7));
    router->tick(now++);
    ASSERT_EQ(router->sentFlits.size(), 1u);
    const PortId out = router->sentFlits[0].outPort;
    for (std::uint32_t seq = 1; seq < 4; ++seq) {
        const auto type = seq == 3 ? FlitType::Tail : FlitType::Body;
        router->acceptFlit(in, 0, makeFlit(type, 9, seq, 7));
        router->acceptCredit(out, 0);  // Downstream keeps consuming.
        router->tick(now++);
        ASSERT_EQ(router->sentFlits.size(), 1u) << "seq " << seq;
        EXPECT_EQ(router->sentFlits[0].flit.seq, seq);
    }
    EXPECT_TRUE(router->vcIdle(in, 0));  // Tail released the VC.
    EXPECT_TRUE(router->idle());
}

TEST_F(RouterTest, BlockedWithoutCreditsThenResumes)
{
    const PortId in = makePort(0, Direction::Minus);
    router->acceptFlit(in, 0, makeFlit(FlitType::Head, 9, 0, 7));
    router->tick(now++);  // Head forwarded; 1 credit left downstream.
    ASSERT_EQ(router->sentFlits.size(), 1u);
    const PortId out = router->sentFlits[0].outPort;

    router->acceptFlit(in, 0, makeFlit(FlitType::Body, 9, 1, 7));
    router->tick(now++);  // Body forwarded; 0 credits left.
    ASSERT_EQ(router->sentFlits.size(), 1u);

    router->acceptFlit(in, 0, makeFlit(FlitType::Body, 9, 2, 7));
    router->tick(now++);  // No credit: must stall.
    EXPECT_TRUE(router->sentFlits.empty());
    router->tick(now++);
    EXPECT_TRUE(router->sentFlits.empty());

    router->acceptCredit(out, 0);
    router->tick(now++);  // Credit arrived: resumes.
    ASSERT_EQ(router->sentFlits.size(), 1u);
    EXPECT_EQ(router->sentFlits[0].flit.seq, 2u);
}

TEST_F(RouterTest, VcAllocationIsExclusive)
{
    // Two heads from different input ports, both with a single
    // minimal option: +x toward (3,1)=7 from (1,1)=5... distance from
    // 5 to 6 is 1 via +x only. Use dst 6 for both.
    router->acceptFlit(makePort(0, Direction::Minus), 0,
                       makeFlit(FlitType::Head, 1, 0, 6));
    router->acceptFlit(makePort(1, Direction::Minus), 0,
                       makeFlit(FlitType::Head, 2, 0, 6));
    router->tick(now++);
    // Only one can hold the +x VC; one flit forwarded.
    ASSERT_EQ(router->sentFlits.size(), 1u);
    EXPECT_EQ(stats.headersRouted.value(), 1u);
}

TEST_F(RouterTest, KillPurgesAndForwards)
{
    const PortId in = makePort(0, Direction::Minus);
    router->acceptFlit(in, 0, makeFlit(FlitType::Head, 9, 0, 7));
    router->tick(now++);  // Head forwarded.
    const PortId out = router->sentFlits[0].outPort;

    // Two body flits arrive but downstream has 1 credit: one is
    // forwarded, one stays buffered... deliver them one per cycle.
    router->acceptFlit(in, 0, makeFlit(FlitType::Body, 9, 1, 7));
    router->tick(now++);
    router->acceptFlit(in, 0, makeFlit(FlitType::Body, 9, 2, 7));
    router->tick(now++);  // Stalls (0 credits): flit 2 buffered.
    EXPECT_EQ(router->bufferedFlits(), 1u);

    // Kill token arrives: purge + forward next tick, ignoring credits.
    Flit kill = makeFlit(FlitType::Kill, 9, 0, 7);
    router->acceptFlit(in, 0, kill);
    EXPECT_EQ(router->bufferedFlits(), 0u);
    router->tick(now++);
    ASSERT_EQ(router->sentFlits.size(), 1u);
    EXPECT_TRUE(router->sentFlits[0].flit.isKill());
    EXPECT_EQ(router->sentFlits[0].outPort, out);
    EXPECT_EQ(stats.flitsPurged.value(), 1u);
    EXPECT_EQ(stats.killsForwarded.value(), 1u);
    EXPECT_TRUE(router->idle());
}

TEST_F(RouterTest, KillAnnihilatesWaitingHeader)
{
    // Fill the +x output VC with another worm so the victim's header
    // cannot route... simpler: kill a header that is still Routing
    // because its only output is held. Use two heads to dst 6.
    const PortId inA = makePort(0, Direction::Minus);
    const PortId inB = makePort(1, Direction::Minus);
    router->acceptFlit(inA, 0, makeFlit(FlitType::Head, 1, 0, 6));
    router->tick(now++);
    router->acceptFlit(inB, 0, makeFlit(FlitType::Head, 2, 0, 6));
    router->tick(now++);  // Head 2 blocked in Routing state.
    EXPECT_FALSE(router->vcIdle(inB, 0));

    router->acceptFlit(inB, 0, makeFlit(FlitType::Kill, 2, 0, 6));
    router->tick(now++);
    EXPECT_TRUE(router->vcIdle(inB, 0));
    EXPECT_EQ(stats.killsAnnihilated.value(), 1u);
    // No kill forwarded for the annihilated worm.
    for (const SentFlit& s : router->sentFlits)
        EXPECT_FALSE(s.flit.isKill());
}

TEST_F(RouterTest, StaleKillAtIdleVcIsDropped)
{
    const PortId in = makePort(0, Direction::Minus);
    router->acceptFlit(in, 0, makeFlit(FlitType::Kill, 77, 0, 6));
    router->tick(now++);
    EXPECT_TRUE(router->sentFlits.empty());
    EXPECT_EQ(stats.staleKills.value(), 1u);
}

TEST_F(RouterTest, BkillTearsDownUpstreamAndNotifiesInjector)
{
    // Start a worm from the injection port, then bkill its output VC.
    router->acceptFlit(router->injBase(), 0,
                       makeFlit(FlitType::Head, 3, 0, 7));
    router->tick(now++);
    ASSERT_EQ(router->sentFlits.size(), 1u);
    const PortId out = router->sentFlits[0].outPort;

    router->acceptBkill(out, 0);
    router->tick(now++);
    ASSERT_EQ(router->sentAborts.size(), 1u);
    EXPECT_EQ(router->sentAborts[0].msg, 3u);
    EXPECT_EQ(router->sentAborts[0].injChannel, 0u);
    EXPECT_TRUE(router->idle());
}

TEST_F(RouterTest, BkillOnNetworkInputPropagatesUpstream)
{
    const PortId in = makePort(0, Direction::Minus);
    router->acceptFlit(in, 0, makeFlit(FlitType::Head, 4, 0, 7));
    router->tick(now++);
    const PortId out = router->sentFlits[0].outPort;

    router->acceptBkill(out, 0);
    router->tick(now++);
    ASSERT_EQ(router->sentBkills.size(), 1u);
    EXPECT_EQ(router->sentBkills[0].inPort, in);
    EXPECT_TRUE(router->idle());
}

TEST_F(RouterTest, StaleBkillIsIgnored)
{
    router->acceptBkill(makePort(0, Direction::Plus), 0);
    router->tick(now++);
    EXPECT_TRUE(router->sentBkills.empty());
    EXPECT_TRUE(router->sentAborts.empty());
    EXPECT_EQ(stats.staleKills.value(), 1u);
}

TEST_F(RouterTest, StragglerAfterPurgeIsDropped)
{
    const PortId in = makePort(0, Direction::Minus);
    router->acceptFlit(in, 0, makeFlit(FlitType::Head, 6, 0, 7));
    router->tick(now++);
    const PortId out = router->sentFlits[0].outPort;
    router->acceptBkill(out, 0);
    router->tick(now++);  // Purged.
    // A body flit of the dead worm arrives late.
    router->acceptFlit(in, 0, makeFlit(FlitType::Body, 6, 1, 7));
    EXPECT_EQ(router->bufferedFlits(), 0u);
    EXPECT_GE(stats.stragglersDropped.value(), 1u);
}

TEST_F(RouterTest, CorruptedHeaderStallsUnderFcr)
{
    cfg.protocol = ProtocolKind::Fcr;
    // Rebuild with FCR config.
    router = std::make_unique<Router>(5, cfg, *algo, &stats, Rng(2));
    Flit h = makeFlit(FlitType::Head, 8, 0, 7);
    h.payload ^= 0xff;  // Break the checksum.
    h.corrupted = true;
    router->acceptFlit(makePort(0, Direction::Minus), 0, h);
    for (int i = 0; i < 5; ++i) {
        router->tick(now++);
        EXPECT_TRUE(router->sentFlits.empty());
    }
    EXPECT_EQ(stats.headersRouted.value(), 0u);
}

TEST_F(RouterTest, PathWideTimeoutKillsBlockedWorm)
{
    cfg.timeoutScheme = TimeoutScheme::PathWide;
    cfg.timeout = 4;
    router = std::make_unique<Router>(5, cfg, *algo, &stats, Rng(2));

    // Block: two worms to dst 6 (single minimal port); the loser
    // waits in Routing state until the path-wide timer fires.
    router->acceptFlit(makePort(0, Direction::Minus), 0,
                       makeFlit(FlitType::Head, 1, 0, 6));
    router->tick(now++);
    router->acceptFlit(makePort(1, Direction::Minus), 0,
                       makeFlit(FlitType::Head, 2, 0, 6));
    bool killed = false;
    for (int i = 0; i < 10 && !killed; ++i) {
        router->tick(now++);
        killed = !router->sentBkills.empty();
    }
    EXPECT_TRUE(killed);
    EXPECT_EQ(stats.pathWideKills.value(), 1u);
    EXPECT_EQ(router->sentBkills[0].inPort,
              makePort(1, Direction::Minus));
}

TEST_F(RouterTest, KilledVcIsQuarantinedAgainstLateCredits)
{
    // Start a worm, kill it mid-flight, then verify (a) the freed
    // output VC is not immediately re-allocatable and (b) a credit
    // arriving after the reset is dropped, not double-counted.
    const PortId in = makePort(0, Direction::Minus);
    router->acceptFlit(in, 0, makeFlit(FlitType::Head, 9, 0, 6));
    router->tick(now++);  // Forwarded on the only minimal port (+x).
    ASSERT_EQ(router->sentFlits.size(), 1u);
    const PortId out = router->sentFlits[0].outPort;

    router->acceptFlit(in, 0, makeFlit(FlitType::Kill, 9, 0, 6));
    router->tick(now++);  // Kill forwarded; VC freed + quarantined.
    ASSERT_TRUE(router->sentFlits.size() == 1 &&
                router->sentFlits[0].flit.isKill());

    // A new header wanting the same (quarantined) output VC must wait
    // at least one cycle even though credits read "full".
    router->acceptFlit(in, 0, makeFlit(FlitType::Head, 10, 0, 6));
    router->tick(now++);
    EXPECT_TRUE(router->sentFlits.empty());

    // The late credit from the purged downstream flit is absorbed.
    router->acceptCredit(out, 0);
    EXPECT_EQ(stats.lateCreditsDropped.value(), 1u);

    // After quarantine the new worm proceeds.
    router->tick(now++);
    ASSERT_EQ(router->sentFlits.size(), 1u);
    EXPECT_EQ(router->sentFlits[0].flit.msg, 10u);
}

TEST_F(RouterTest, DropAtBlockRejectsOnlyBlockedHeaders)
{
    cfg.timeoutScheme = TimeoutScheme::DropAtBlock;
    cfg.timeout = 4;
    router = std::make_unique<Router>(5, cfg, *algo, &stats, Rng(2));

    // Worm 1 holds the only minimal port toward 6 and then *stalls
    // mid-body* (no credits returned): DropAtBlock must NOT kill it —
    // its header moved on. Worm 2's header blocks behind it and must
    // be rejected.
    const PortId inA = makePort(0, Direction::Minus);
    const PortId inB = makePort(1, Direction::Minus);
    router->acceptFlit(inA, 0, makeFlit(FlitType::Head, 1, 0, 6));
    router->tick(now++);
    router->acceptFlit(inA, 0, makeFlit(FlitType::Body, 1, 1, 6));
    router->tick(now++);
    router->acceptFlit(inA, 0, makeFlit(FlitType::Body, 1, 2, 6));
    router->acceptFlit(inB, 0, makeFlit(FlitType::Head, 2, 0, 6));
    bool rejected = false;
    for (int i = 0; i < 10 && !rejected; ++i) {
        router->tick(now++);
        rejected = !router->sentBkills.empty();
    }
    ASSERT_TRUE(rejected);
    // The reject went to worm 2's header, not to the stalled body.
    EXPECT_EQ(router->sentBkills[0].inPort, inB);
    EXPECT_EQ(stats.pathWideKills.value(), 1u);
    EXPECT_FALSE(router->vcIdle(inA, 0));  // Worm 1 untouched.
}

TEST_F(RouterTest, MultiVcWormsInterleaveOnOnePhysicalChannel)
{
    numVcs = 2;
    rebuild();
    // Two worms entering on different input ports, both toward 6,
    // now fit on different VCs of the same output port.
    router->acceptFlit(makePort(0, Direction::Minus), 0,
                       makeFlit(FlitType::Head, 1, 0, 6));
    router->acceptFlit(makePort(1, Direction::Minus), 0,
                       makeFlit(FlitType::Head, 2, 0, 6));
    router->tick(now++);
    EXPECT_EQ(stats.headersRouted.value(), 2u);
    // One physical channel: only one flit leaves per cycle.
    EXPECT_EQ(router->sentFlits.size(), 1u);
    router->tick(now++);
    EXPECT_EQ(router->sentFlits.size(), 1u);
}

} // namespace
} // namespace crnet
