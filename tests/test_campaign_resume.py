#!/usr/bin/env python3
"""Crash-resume integration test for the campaign journal.

Drives tests/campaign_resume_helper (built by tests/CMakeLists.txt):

  1. Runs an uninterrupted jobs=1 campaign as the byte-identity
     reference.
  2. Starts a journaled campaign, SIGKILLs it at a randomized point
     mid-flight (watching the journal grow to guarantee the kill lands
     after some — but not all — trials are durable), restarts it, and
     asserts the resumed run's output is byte-identical to the
     reference.
  3. Repeats the kill/restart cycle several times against one journal,
     and once with jobs=4: completion order must not matter.

Usage: test_campaign_resume.py <helper_binary>
"""

import os
import random
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path


TRIALS = 12
SEED_BASE = 5


def run_helper(helper, journal, jobs=1):
    """Run the helper to completion; return its summary/trial lines.

    info:/warn: log lines (e.g. "resuming with N trials replayed")
    are dropped before comparison — resume progress legitimately
    differs between an interrupted and an uninterrupted campaign; the
    *results* must not.
    """
    cmd = [helper, f"trials={TRIALS}", f"seed_base={SEED_BASE}",
           f"jobs={jobs}"]
    if journal:
        cmd.append(f"journal={journal}")
    proc = subprocess.run(cmd, capture_output=True, text=True,
                          timeout=600)
    if proc.returncode != 0:
        raise AssertionError(
            f"helper failed ({proc.returncode}):\n{proc.stdout}"
            f"\n{proc.stderr}")
    kept = [l for l in proc.stdout.splitlines()
            if l.startswith(("summary ", "trial "))]
    return "\n".join(kept) + "\n"


def kill_mid_campaign(helper, journal, rng, jobs=1):
    """Start the helper and SIGKILL it at a randomized point once the
    journal shows at least one completed trial. Returns True if the
    kill landed mid-campaign (False: it finished first)."""
    cmd = [helper, f"trials={TRIALS}", f"seed_base={SEED_BASE}",
           f"jobs={jobs}", f"journal={journal}"]
    proc = subprocess.Popen(cmd, stdout=subprocess.DEVNULL,
                            stderr=subprocess.DEVNULL)
    # A fresh journal (magic + header) is ~32 bytes; every completed
    # trial appends a bigger record. Wait until some trials are
    # durable, then add a random extra delay so the kill point varies
    # across iterations (including mid-append windows).
    baseline = 64
    deadline = time.monotonic() + 60
    try:
        while time.monotonic() < deadline:
            if proc.poll() is not None:
                return False  # Finished before we could kill it.
            try:
                if os.path.getsize(journal) > baseline:
                    break
            except OSError:
                pass  # Not created yet (or mid-rename).
            time.sleep(0.002)
        time.sleep(rng.uniform(0.0, 0.05))
        if proc.poll() is not None:
            return False
        proc.send_signal(signal.SIGKILL)
        proc.wait(timeout=60)
        return True
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=60)


def main():
    if len(sys.argv) != 2:
        print(__doc__)
        return 2
    helper = sys.argv[1]
    if not Path(helper).exists():
        print(f"helper binary not found: {helper}")
        return 2

    rng = random.Random(20260809)
    failures = []

    with tempfile.TemporaryDirectory(prefix="crnet_resume_") as tmp:
        reference = run_helper(helper, journal=None, jobs=1)
        if "summary trials=12" not in reference:
            failures.append("reference run produced no summary:\n" +
                            reference)

        # Serial kill/restart: randomized kill points, one journal.
        journal = os.path.join(tmp, "serial.jnl")
        kills = 0
        for _ in range(4):
            if kill_mid_campaign(helper, journal, rng, jobs=1):
                kills += 1
        resumed = run_helper(helper, journal, jobs=1)
        if resumed != reference:
            failures.append(
                f"resumed output (after {kills} kills) differs from "
                f"the uninterrupted reference:\n--- reference\n"
                f"{reference}\n--- resumed\n{resumed}")
        if kills == 0:
            # Machine too fast to catch mid-flight: the test still
            # verified journal replay, but say so.
            print("note: campaign finished before any kill landed; "
                  "replay-only coverage this run")

        # Parallel workers: kill under jobs=4, resume under jobs=4.
        # The summary must still match the jobs=1 reference exactly.
        journal4 = os.path.join(tmp, "parallel.jnl")
        kill_mid_campaign(helper, journal4, rng, jobs=4)
        resumed4 = run_helper(helper, journal4, jobs=4)
        if resumed4 != reference:
            failures.append(
                "jobs=4 resumed output differs from the jobs=1 "
                f"reference:\n--- reference\n{reference}\n"
                f"--- resumed jobs=4\n{resumed4}")

        # A journal for a different campaign must not be resumable:
        # the helper must die (fatal), not silently blend campaigns.
        cmd = [helper, f"trials={TRIALS}",
               f"seed_base={SEED_BASE + 1}", "jobs=1",
               f"journal={journal}"]
        proc = subprocess.run(cmd, capture_output=True, text=True,
                              timeout=600)
        if proc.returncode == 0:
            failures.append(
                "helper accepted a journal from a different campaign "
                "(seed_base mismatch) instead of refusing")

    if failures:
        print(f"FAIL: {len(failures)} problem(s)")
        for f in failures:
            print(f"  - {f}")
        return 1
    print("OK: crash-resume reproduces the uninterrupted campaign "
          "byte-for-byte (jobs=1 and jobs=4)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
