/**
 * @file
 * Unit tests for turn-model routing (west-first, negative-first).
 */

#include <set>

#include <gtest/gtest.h>

#include "src/routing/routing.hh"

namespace crnet {
namespace {

Flit
headTo(NodeId dst)
{
    Flit f;
    f.type = FlitType::Head;
    f.msg = 1;
    f.dst = dst;
    return f;
}

std::set<PortId>
ports(const RoutingAlgorithm& algo, NodeId node, NodeId dst, Rng& rng)
{
    std::vector<Candidate> out;
    algo.candidates(node, headTo(dst), out, rng);
    std::set<PortId> p;
    for (const Candidate& c : out)
        p.insert(c.port);
    return p;
}

class TurnTest : public ::testing::Test
{
  protected:
    TurnTest()
        : topo(8, 2), faults(topo, 0.0, Rng(1)),
          wf(topo, faults, 1, TurnModelRouting::Variant::WestFirst),
          nf(topo, faults, 1,
             TurnModelRouting::Variant::NegativeFirst),
          rng(5)
    {
    }

    NodeId
    at(std::uint16_t x, std::uint16_t y) const
    {
        return x + 8 * y;
    }

    MeshTopology topo;
    FaultModel faults;
    TurnModelRouting wf;
    TurnModelRouting nf;
    Rng rng;
};

TEST_F(TurnTest, WestFirstGoesWestDeterministically)
{
    // From (5,5) to (2,2): west hops remain, so only x- is offered.
    const auto p = ports(wf, at(5, 5), at(2, 2), rng);
    ASSERT_EQ(p.size(), 1u);
    EXPECT_TRUE(p.count(makePort(0, Direction::Minus)));
}

TEST_F(TurnTest, WestFirstAdaptiveAfterWestDone)
{
    // From (2,5) to (5,2): no west hops; x+ and y- both offered.
    const auto p = ports(wf, at(2, 5), at(5, 2), rng);
    EXPECT_EQ(p.size(), 2u);
    EXPECT_TRUE(p.count(makePort(0, Direction::Plus)));
    EXPECT_TRUE(p.count(makePort(1, Direction::Minus)));
}

TEST_F(TurnTest, NegativeFirstDoesNegativesAdaptively)
{
    // From (5,5) to (2,2): both negatives offered.
    const auto p = ports(nf, at(5, 5), at(2, 2), rng);
    EXPECT_EQ(p.size(), 2u);
    EXPECT_TRUE(p.count(makePort(0, Direction::Minus)));
    EXPECT_TRUE(p.count(makePort(1, Direction::Minus)));
}

TEST_F(TurnTest, NegativeFirstHoldsPositivesUntilNegativesDone)
{
    // From (5,2) to (2,5): x- pending, so y+ must NOT be offered yet.
    const auto p = ports(nf, at(5, 2), at(2, 5), rng);
    ASSERT_EQ(p.size(), 1u);
    EXPECT_TRUE(p.count(makePort(0, Direction::Minus)));
}

TEST_F(TurnTest, NegativeFirstPositivePhaseAdaptive)
{
    // From (2,2) to (5,5): both positives offered.
    const auto p = ports(nf, at(2, 2), at(5, 5), rng);
    EXPECT_EQ(p.size(), 2u);
    EXPECT_TRUE(p.count(makePort(0, Direction::Plus)));
    EXPECT_TRUE(p.count(makePort(1, Direction::Plus)));
}

TEST_F(TurnTest, AllCandidatesAreMinimalEverywhere)
{
    for (NodeId src = 0; src < topo.numNodes(); src += 3) {
        for (NodeId dst = 0; dst < topo.numNodes(); dst += 5) {
            if (src == dst)
                continue;
            for (const RoutingAlgorithm* algo :
                 {static_cast<const RoutingAlgorithm*>(&wf),
                  static_cast<const RoutingAlgorithm*>(&nf)}) {
                std::vector<Candidate> out;
                algo->candidates(src, headTo(dst), out, rng);
                ASSERT_FALSE(out.empty())
                    << "no route " << src << "->" << dst;
                for (const Candidate& c : out) {
                    const NodeId nxt = topo.neighbor(src, c.port);
                    ASSERT_NE(nxt, kInvalidNode);
                    EXPECT_EQ(topo.distance(nxt, dst),
                              topo.distance(src, dst) - 1);
                }
            }
        }
    }
}

TEST_F(TurnTest, ProhibitedTurnsNeverAppear)
{
    // West-first: after any non-west position, x- must never be
    // offered (that would be a turn into west).
    for (NodeId src = 0; src < topo.numNodes(); ++src) {
        for (NodeId dst = 0; dst < topo.numNodes(); ++dst) {
            if (src == dst)
                continue;
            const auto p = ports(wf, src, dst, rng);
            const DimRoute x = topo.dimRoute(src, dst, 0);
            if (x.minusMinimal) {
                // West pending: west must be the only offer.
                EXPECT_EQ(p.size(), 1u);
                EXPECT_TRUE(p.count(makePort(0, Direction::Minus)));
            } else {
                EXPECT_FALSE(p.count(makePort(0, Direction::Minus)));
            }
        }
    }
}

TEST_F(TurnTest, SelfDeadlockFree)
{
    EXPECT_TRUE(wf.selfDeadlockFree());
    EXPECT_TRUE(nf.selfDeadlockFree());
}

TEST(TurnModel, RejectsTorus)
{
    TorusTopology torus(4, 2);
    FaultModel faults(torus, 0.0, Rng(1));
    EXPECT_DEATH(TurnModelRouting(torus, faults, 1,
                                  TurnModelRouting::Variant::WestFirst),
                 "meshes");
}

TEST(TurnModel, Rejects3D)
{
    MeshTopology m3(4, 3);
    FaultModel faults(m3, 0.0, Rng(1));
    EXPECT_DEATH(TurnModelRouting(m3, faults, 1,
                                  TurnModelRouting::Variant::WestFirst),
                 "2D");
}

} // namespace
} // namespace crnet
