/**
 * @file
 * Randomized stress: draw whole network configurations at random
 * (topology, shape, VCs, depths, channel latency, protocol, loads,
 * faults), run them hot, quiesce, and assert every system invariant.
 * Any panic inside the simulator (credit overflow, interleaved worms,
 * out-of-order assembly...) also fails the test, so this sweeps the
 * corner-case space the targeted tests cannot enumerate.
 */

#include <gtest/gtest.h>

#include "src/core/network.hh"

namespace crnet {
namespace {

SimConfig
randomConfig(Rng& rng)
{
    SimConfig cfg;
    cfg.topology = rng.chance(0.5) ? TopologyKind::Torus
                                   : TopologyKind::Mesh;
    cfg.radixK = static_cast<std::uint32_t>(rng.between(3, 6));
    cfg.dimensionsN = static_cast<std::uint32_t>(rng.between(1, 3));
    cfg.numVcs = static_cast<std::uint32_t>(rng.between(1, 4));
    cfg.bufferDepth = static_cast<std::uint32_t>(rng.between(1, 4));
    cfg.channelLatency =
        static_cast<std::uint32_t>(rng.between(1, 3));
    cfg.injectionChannels =
        static_cast<std::uint32_t>(rng.between(1, 2));
    cfg.ejectionChannels =
        static_cast<std::uint32_t>(rng.between(1, 2));
    cfg.messageLength = static_cast<std::uint32_t>(rng.between(2, 24));
    cfg.injectionRate = 0.02 + 0.18 * rng.uniform();
    cfg.timeout = static_cast<Cycle>(rng.between(8, 64));
    cfg.padSlack = static_cast<std::uint32_t>(rng.between(0, 4));
    cfg.backoff = rng.chance(0.5) ? BackoffScheme::Static
                                  : BackoffScheme::Exponential;
    cfg.backoffGap = static_cast<Cycle>(rng.between(1, 32));
    cfg.enforceDestOrder = rng.chance(0.8);
    cfg.seed = rng.next();

    // Protocol/routing draw, constrained to legal combinations.
    const int proto = static_cast<int>(rng.below(3));
    if (proto == 0) {
        cfg.protocol = ProtocolKind::Cr;
        cfg.routing = rng.chance(0.7) ? RoutingKind::MinimalAdaptive
                                      : RoutingKind::DimensionOrder;
    } else if (proto == 1) {
        cfg.protocol = ProtocolKind::Fcr;
        cfg.routing = RoutingKind::MinimalAdaptive;
        if (rng.chance(0.5))
            cfg.transientFaultRate = 0.002 * rng.uniform();
        if (rng.chance(0.3) && cfg.dimensionsN >= 2 &&
            cfg.radixK >= 4) {
            // Smaller shapes cannot spare a link above the degree
            // floor the fault injector maintains.
            cfg.permanentLinkFaults = 1;
            cfg.misrouteAfterRetries = 2;
        }
    } else {
        cfg.protocol = ProtocolKind::None;
        // Must be self-deadlock-free.
        if (cfg.topology == TopologyKind::Torus) {
            if (rng.chance(0.5)) {
                cfg.routing = RoutingKind::DimensionOrder;
                cfg.numVcs = std::max<std::uint32_t>(cfg.numVcs, 2);
            } else {
                cfg.routing = RoutingKind::Duato;
                cfg.numVcs = std::max<std::uint32_t>(cfg.numVcs, 3);
            }
        } else {
            cfg.routing = RoutingKind::DimensionOrder;
        }
    }
    if (cfg.protocol != ProtocolKind::None && rng.chance(0.25)) {
        cfg.timeoutScheme = rng.chance(0.5)
            ? TimeoutScheme::SourceImin
            : TimeoutScheme::SourceStall;
    }
    return cfg;
}

class FuzzStress : public ::testing::TestWithParam<std::uint64_t>
{
};

TEST_P(FuzzStress, InvariantsSurviveRandomConfigs)
{
    Rng meta(GetParam() * 0x9e3779b97f4a7c15ULL + 17);
    const SimConfig cfg = randomConfig(meta);
    SCOPED_TRACE(cfg.summary());
    cfg.validate();

    Network net(cfg);
    for (Cycle i = 0; i < 4000; ++i) {
        net.tick();
        if (cfg.protocol != ProtocolKind::None ||
            net.routing().selfDeadlockFree()) {
            ASSERT_FALSE(net.deadlocked())
                << "deadlock in a deadlock-free config";
        }
    }
    net.setTrafficEnabled(false);
    Cycle spent = 0;
    while (!net.quiescent() && spent < 150000) {
        net.tick();
        ++spent;
    }
    ASSERT_TRUE(net.quiescent()) << "failed to quiesce";

    const NetworkStats& s = net.stats();
    // Flit conservation.
    EXPECT_EQ(s.flitsInjected.value(),
              s.flitsConsumed.value() + s.router.flitsPurged.value() +
                  s.router.stragglersDropped.value());
    // Exactly-once; in-order when the gate is on.
    EXPECT_EQ(s.duplicateDeliveries.value(), 0u);
    if (cfg.enforceDestOrder) {
        EXPECT_EQ(s.orderViolations.value(), 0u);
    }
    // Commit/delivery agreement under CR-family protocols.
    if (cfg.protocol != ProtocolKind::None) {
        EXPECT_EQ(s.messagesCommitted.value(),
                  s.messagesDelivered.value());
    }
    // FCR never delivers corrupted data.
    if (cfg.protocol == ProtocolKind::Fcr) {
        EXPECT_EQ(s.corruptedDeliveries.value(), 0u);
    }
}

INSTANTIATE_TEST_SUITE_P(Sweep, FuzzStress,
                         ::testing::Range<std::uint64_t>(0, 40));

} // namespace
} // namespace crnet
