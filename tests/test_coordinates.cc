/**
 * @file
 * Unit tests for coordinate linearization.
 */

#include <gtest/gtest.h>

#include "src/topology/coordinates.hh"

namespace crnet {
namespace {

TEST(Coordinates, RoundTripAllNodes2D)
{
    const std::uint32_t k = 5, n = 2;
    for (NodeId id = 0; id < 25; ++id) {
        const Coordinates c = toCoordinates(id, k, n);
        EXPECT_EQ(toNodeId(c, k), id);
    }
}

TEST(Coordinates, RoundTripAllNodes3D)
{
    const std::uint32_t k = 3, n = 3;
    for (NodeId id = 0; id < 27; ++id)
        EXPECT_EQ(toNodeId(toCoordinates(id, k, n), k), id);
}

TEST(Coordinates, Dimension0IsFastest)
{
    const Coordinates c = toCoordinates(7, 4, 2);  // 7 = 3 + 4*1.
    EXPECT_EQ(c[0], 3);
    EXPECT_EQ(c[1], 1);
}

TEST(Coordinates, EqualityComparesDimsAndValues)
{
    Coordinates a = toCoordinates(5, 4, 2);
    Coordinates b = toCoordinates(5, 4, 2);
    Coordinates c = toCoordinates(6, 4, 2);
    EXPECT_TRUE(a == b);
    EXPECT_FALSE(a == c);
}

TEST(Coordinates, TooManyDimsPanics)
{
    EXPECT_DEATH(toCoordinates(0, 2, 9), "kMaxDims");
}

} // namespace
} // namespace crnet
