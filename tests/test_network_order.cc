/**
 * @file
 * Order-preservation and exactly-once delivery under adversity — the
 * paper's "order-preserving message transmission" claim as a measured
 * invariant.
 */

#include <gtest/gtest.h>

#include "src/core/network.hh"

namespace crnet {
namespace {

void
expectNoOrderAnomalies(SimConfig cfg, Cycle cycles)
{
    Network net(cfg);
    net.setMeasuring(true);
    for (Cycle i = 0; i < cycles; ++i) {
        net.tick();
        ASSERT_FALSE(net.deadlocked());
    }
    EXPECT_GT(net.stats().messagesDelivered.value(), 50u);
    EXPECT_EQ(net.stats().orderViolations.value(), 0u)
        << "order violated";
    EXPECT_EQ(net.stats().duplicateDeliveries.value(), 0u)
        << "duplicate delivery";
}

SimConfig
base()
{
    SimConfig cfg;
    cfg.radixK = 8;
    cfg.dimensionsN = 2;
    cfg.numVcs = 1;
    cfg.bufferDepth = 2;
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = ProtocolKind::Cr;
    cfg.messageLength = 16;
    cfg.seed = 17;
    return cfg;
}

TEST(NetworkOrder, SingleVcHighLoad)
{
    SimConfig cfg = base();
    cfg.injectionRate = 0.5;
    expectNoOrderAnomalies(cfg, 12000);
}

TEST(NetworkOrder, MultiVcHighLoad)
{
    SimConfig cfg = base();
    cfg.numVcs = 4;
    cfg.timeout = 64;
    cfg.injectionRate = 0.5;
    expectNoOrderAnomalies(cfg, 12000);
}

TEST(NetworkOrder, MultiChannelInterface)
{
    SimConfig cfg = base();
    cfg.injectionChannels = 2;
    cfg.ejectionChannels = 2;
    cfg.numVcs = 2;
    cfg.injectionRate = 0.6;
    expectNoOrderAnomalies(cfg, 12000);
}

TEST(NetworkOrder, FcrWithTransientFaults)
{
    SimConfig cfg = base();
    cfg.radixK = 4;
    cfg.protocol = ProtocolKind::Fcr;
    cfg.transientFaultRate = 0.002;
    cfg.injectionRate = 0.08;
    expectNoOrderAnomalies(cfg, 20000);
}

TEST(NetworkOrder, PermanentFaultsWithMisrouting)
{
    SimConfig cfg = base();
    cfg.protocol = ProtocolKind::Fcr;
    cfg.permanentLinkFaults = 4;
    cfg.misrouteAfterRetries = 2;
    cfg.injectionRate = 0.1;
    expectNoOrderAnomalies(cfg, 15000);
}

TEST(NetworkOrder, ExplicitBurstToOneDestinationStaysOrdered)
{
    SimConfig cfg = base();
    cfg.radixK = 4;
    cfg.injectionRate = 0.0;
    Network net(cfg);
    net.setTrafficEnabled(false);
    std::vector<MsgId> ids;
    for (int i = 0; i < 20; ++i)
        ids.push_back(net.sendMessage(0, 10, 8));
    for (Cycle i = 0; i < 20000; ++i)
        net.tick();
    // Every message delivered, in order, exactly once.
    Cycle prev = 0;
    for (MsgId id : ids) {
        const DeliveredMessage* d = net.deliveryRecord(id);
        ASSERT_NE(d, nullptr);
        EXPECT_GE(d->deliveredAt, prev);
        prev = d->deliveredAt;
    }
    EXPECT_EQ(net.stats().orderViolations.value(), 0u);
    EXPECT_EQ(net.stats().duplicateDeliveries.value(), 0u);
}

} // namespace
} // namespace crnet
