/**
 * @file
 * Telemetry layer tests (src/sim/telemetry.hh): the metrics registry,
 * the tick self-profiler, and the live status writer — plus the load-
 * bearing property that all of it stays off the results path: every
 * observable result is byte-identical with telemetry on or off, under
 * every scheduler and under the parallel engine.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "src/core/experiment.hh"
#include "src/fault/campaign.hh"
#include "src/sim/snapshot.hh"
#include "src/sim/telemetry.hh"

namespace crnet {
namespace {

SimConfig
baseCfg()
{
    SimConfig cfg;
    cfg.radixK = 4;
    cfg.dimensionsN = 2;
    cfg.numVcs = 2;
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = ProtocolKind::Cr;
    cfg.timeout = 8;
    cfg.injectionRate = 0.1;
    cfg.messageLength = 8;
    cfg.warmupCycles = 300;
    cfg.measureCycles = 1500;
    cfg.drainCycles = 30000;
    cfg.seed = 23;
    return cfg;
}

/** Field-by-field RunResult comparison (excluding wall clock). */
void
expectSameResult(const RunResult& a, const RunResult& b)
{
    EXPECT_EQ(a.offeredLoad, b.offeredLoad);
    EXPECT_EQ(a.acceptedThroughput, b.acceptedThroughput);
    EXPECT_EQ(a.avgLatency, b.avgLatency);
    EXPECT_EQ(a.netLatency, b.netLatency);
    EXPECT_EQ(a.p50Latency, b.p50Latency);
    EXPECT_EQ(a.p95Latency, b.p95Latency);
    EXPECT_EQ(a.p99Latency, b.p99Latency);
    EXPECT_EQ(a.maxLatency, b.maxLatency);
    EXPECT_EQ(a.latencyStddev, b.latencyStddev);
    EXPECT_EQ(a.avgAttempts, b.avgAttempts);
    EXPECT_EQ(a.killsPerMessage, b.killsPerMessage);
    EXPECT_EQ(a.measuredMessages, b.measuredMessages);
    EXPECT_EQ(a.deliveredMeasured, b.deliveredMeasured);
    EXPECT_EQ(a.totalKills, b.totalKills);
    EXPECT_EQ(a.refusals, b.refusals);
    EXPECT_EQ(a.deadlocked, b.deadlocked);
    EXPECT_EQ(a.drained, b.drained);
    EXPECT_EQ(a.cyclesRun, b.cyclesRun);
    EXPECT_EQ(a.flitEvents, b.flitEvents);
    EXPECT_EQ(a.timeseries, b.timeseries);
}

// --- Registry ----------------------------------------------------------

TEST(Telemetry, CounterHandleIsStableAndShared)
{
    Telemetry& t = Telemetry::instance();
    std::atomic<std::uint64_t>* a = t.counter("test.reg.counter");
    std::atomic<std::uint64_t>* b = t.counter("test.reg.counter");
    ASSERT_NE(a, nullptr);
    EXPECT_EQ(a, b);  // Same name, same storage.
    a->store(0, std::memory_order_relaxed);
    a->fetch_add(3, std::memory_order_relaxed);
    b->fetch_add(4, std::memory_order_relaxed);
    EXPECT_EQ(a->load(std::memory_order_relaxed), 7u);
}

TEST(Telemetry, FirstRegistrationFixesTheKind)
{
    Telemetry& t = Telemetry::instance();
    std::atomic<std::uint64_t>* c = t.counter("test.reg.kinded");
    ASSERT_NE(c, nullptr);
    // A later lookup under another kind resolves to the same entry;
    // the kind recorded at first registration sticks.
    EXPECT_EQ(t.gauge("test.reg.kinded"), c);
    for (const MetricSample& m : t.snapshot()) {
        if (m.name == "test.reg.kinded")
            EXPECT_EQ(m.kind, MetricKind::Counter);
    }
}

TEST(Telemetry, SnapshotIsNameSortedAndComplete)
{
    Telemetry& t = Telemetry::instance();
    t.counter("test.snap.zz")->store(5, std::memory_order_relaxed);
    t.gauge("test.snap.aa")->store(9, std::memory_order_relaxed);
    const std::vector<MetricSample> snap = t.snapshot();
    ASSERT_GE(snap.size(), 2u);
    for (std::size_t i = 1; i < snap.size(); ++i)
        EXPECT_LT(snap[i - 1].name, snap[i].name);
    bool sawZz = false, sawAa = false;
    for (const MetricSample& m : snap) {
        if (m.name == "test.snap.zz") {
            sawZz = true;
            EXPECT_EQ(m.kind, MetricKind::Counter);
            EXPECT_EQ(m.value, 5u);
        }
        if (m.name == "test.snap.aa") {
            sawAa = true;
            EXPECT_EQ(m.kind, MetricKind::Gauge);
            EXPECT_EQ(m.value, 9u);
        }
    }
    EXPECT_TRUE(sawZz);
    EXPECT_TRUE(sawAa);
}

TEST(Telemetry, HistogramBucketsAreLog2)
{
    TelemetryHistogram h;
    h.observe(0);   // Bucket 0.
    h.observe(1);   // Bucket 1.
    h.observe(7);   // Bucket 3: [4, 8).
    h.observe(8);   // Bucket 4: [8, 16).
    EXPECT_EQ(h.count(), 4u);
    EXPECT_EQ(h.bucket(0), 1u);
    EXPECT_EQ(h.bucket(1), 1u);
    EXPECT_EQ(h.bucket(2), 0u);
    EXPECT_EQ(h.bucket(3), 1u);
    EXPECT_EQ(h.bucket(4), 1u);
    h.reset();
    EXPECT_EQ(h.count(), 0u);
    EXPECT_EQ(h.bucket(3), 0u);
}

// --- Self-profiler -----------------------------------------------------

TEST(TickProfiler, ArmsExactlyEveryStride)
{
    TickProfiler prof(/*stride=*/5);
    std::uint64_t armed = 0;
    for (int i = 0; i < 100; ++i)
        armed += prof.armTick() ? 1 : 0;
    EXPECT_EQ(armed, 20u);
    EXPECT_EQ(prof.data().ticks, 100u);
    EXPECT_EQ(prof.data().sampledTicks, 20u);
    EXPECT_EQ(prof.data().stride, 5u);
    EXPECT_TRUE(prof.data().enabled);
}

TEST(TickProfiler, TickSecondsExtrapolatesSampledPhases)
{
    TickProfiler prof(/*stride=*/4);
    for (int i = 0; i < 8; ++i) {
        if (prof.armTick())
            prof.add(TickPhase::Routers, 1000);  // 1us per sample.
    }
    // 2 samples x 1us, extrapolated by ticks/sampled = 8/2.
    EXPECT_DOUBLE_EQ(prof.data().tickSeconds(TickPhase::Routers),
                     8.0e-6);
    // Exact phases are never extrapolated.
    prof.add(TickPhase::Audit, 2000);
    EXPECT_DOUBLE_EQ(prof.data().tickSeconds(TickPhase::Audit),
                     2.0e-6);
}

TEST(TickProfiler, MergeSumsEverything)
{
    TickProfiler a, b;
    a.armTick();
    a.add(TickPhase::Deliver, 10);
    a.noteQuietSpan(100, 50);
    b.armTick();
    b.add(TickPhase::Deliver, 20);
    ProfileData merged;
    merged.merge(a.data());
    merged.merge(b.data());
    EXPECT_TRUE(merged.enabled);
    EXPECT_EQ(merged.ticks, 2u);
    EXPECT_EQ(merged.quietSpans, 1u);
    EXPECT_EQ(merged.quietCycles, 100u);
    EXPECT_EQ(merged.phaseNanos[static_cast<int>(TickPhase::Deliver)],
              30u);
}

// --- Off the results path ----------------------------------------------

TEST(TelemetryIdentity, ProfileOnOffIdenticalUnderEveryScheduler)
{
    for (SchedulerKind sched : {SchedulerKind::Sweep,
                                SchedulerKind::Active,
                                SchedulerKind::Event}) {
        SimConfig off = baseCfg();
        off.sched = sched;
        SimConfig on = off;
        on.profileEnabled = true;
        const RunResult a = runExperiment(off);
        const RunResult b = runExperiment(on);
        expectSameResult(a, b);
        EXPECT_FALSE(a.profile.enabled);
        EXPECT_TRUE(b.profile.enabled);
        EXPECT_GT(b.profile.ticks, 0u);
    }
}

TEST(TelemetryIdentity, ProfiledParallelSweepMatchesSequential)
{
    SimConfig cfg = baseCfg();
    cfg.profileEnabled = true;
    std::vector<SimConfig> points(4, cfg);
    for (std::size_t i = 0; i < points.size(); ++i)
        points[i].seed = cfg.seed + i;
    std::vector<SimConfig> par = points;
    for (SimConfig& p : par)
        p.jobs = 4;
    const std::vector<RunResult> seq = runMany(points);
    const std::vector<RunResult> j4 = runMany(par);
    ASSERT_EQ(seq.size(), j4.size());
    for (std::size_t i = 0; i < seq.size(); ++i)
        expectSameResult(seq[i], j4[i]);
}

TEST(TelemetryIdentity, SnapshotBytesIdenticalWithProfilerAttached)
{
    const SimConfig cfg = baseCfg();
    Network plain(cfg);
    plain.setMeasuring(false);
    plain.run(500);

    Network profiled(cfg);
    TickProfiler prof;
    profiled.attachProfiler(&prof);
    profiled.setMeasuring(false);
    profiled.run(500);

    const Snapshot a = captureSnapshot(plain);
    const Snapshot b = captureSnapshot(profiled);
    EXPECT_EQ(a.at, b.at);
    EXPECT_EQ(a.fingerprint, b.fingerprint);
    EXPECT_EQ(a.payload, b.payload);
    EXPECT_GT(prof.data().ticks, 0u);
}

TEST(TelemetryIdentity, StatusKeysExcludedFromConfigFingerprint)
{
    SimConfig plain = baseCfg();
    SimConfig telemetered = plain;
    telemetered.statusFile = "/tmp/anywhere.json";
    telemetered.statusEverySeconds = 0.0;
    telemetered.profileEnabled = true;
    EXPECT_EQ(configFingerprint(plain),
              configFingerprint(telemetered));
}

TEST(TelemetryIdentity, CampaignIdenticalWithStatusAndProfile)
{
    CampaignConfig cc;
    cc.base = baseCfg();
    cc.base.protocol = ProtocolKind::Fcr;
    cc.base.misrouteAfterRetries = 1;
    cc.base.dynamicLinkKills = 1;
    cc.trials = 4;
    cc.seedBase = 3;

    std::vector<TrialOutcome> plainTrials, teleTrials;
    const CampaignSummary plain = runCampaign(cc, &plainTrials);

    const std::string path =
        testing::TempDir() + "crnet_telemetry_status.json";
    CampaignConfig teleCc = cc;
    teleCc.base.statusFile = path;
    teleCc.base.statusEverySeconds = 0.0;
    teleCc.base.profileEnabled = true;
    const CampaignSummary tele = runCampaign(teleCc, &teleTrials);

    EXPECT_EQ(plain.accountedTrials, tele.accountedTrials);
    EXPECT_EQ(plain.deadlockedTrials, tele.deadlockedTrials);
    EXPECT_EQ(plain.accepted, tele.accepted);
    EXPECT_EQ(plain.delivered, tele.delivered);
    EXPECT_EQ(plain.refused, tele.refused);
    EXPECT_EQ(plain.faultEvents, tele.faultEvents);
    EXPECT_EQ(plain.deliveryRate, tele.deliveryRate);
    EXPECT_EQ(plain.meanPreFaultLatency, tele.meanPreFaultLatency);
    EXPECT_EQ(plain.meanPostFaultLatency, tele.meanPostFaultLatency);
    EXPECT_EQ(plain.flitEvents, tele.flitEvents);
    ASSERT_EQ(plainTrials.size(), teleTrials.size());
    for (std::size_t i = 0; i < plainTrials.size(); ++i) {
        EXPECT_EQ(plainTrials[i].seed, teleTrials[i].seed);
        EXPECT_EQ(plainTrials[i].accepted, teleTrials[i].accepted);
        EXPECT_EQ(plainTrials[i].delivered, teleTrials[i].delivered);
        EXPECT_EQ(plainTrials[i].cyclesRun, teleTrials[i].cyclesRun);
        EXPECT_EQ(plainTrials[i].flitEvents,
                  teleTrials[i].flitEvents);
    }
    EXPECT_FALSE(plain.profile.enabled);
    EXPECT_TRUE(tele.profile.enabled);

    // The status file exists, is valid enough to contain the schema
    // marker, and reports the finished state.
    std::ifstream in(path);
    ASSERT_TRUE(in.good());
    std::stringstream ss;
    ss << in.rdbuf();
    const std::string body = ss.str();
    EXPECT_NE(body.find("\"schema\": \"crnet-status-v1\""),
              std::string::npos);
    EXPECT_NE(body.find("\"state\": \"done\""), std::string::npos);
    EXPECT_NE(body.find("\"kind\": \"campaign\""), std::string::npos);
    std::remove(path.c_str());
}

} // namespace
} // namespace crnet
