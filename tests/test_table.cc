/**
 * @file
 * Unit tests for the results-table formatter.
 */

#include <sstream>

#include <gtest/gtest.h>

#include "src/sim/table.hh"

namespace crnet {
namespace {

TEST(Table, AlignedTextOutput)
{
    Table t("demo");
    t.setHeader({"load", "latency"});
    t.addRow({"0.1", "25.5"});
    t.addRow({"0.25", "105.0"});
    std::ostringstream os;
    t.print(os);
    const std::string s = os.str();
    EXPECT_NE(s.find("== demo =="), std::string::npos);
    EXPECT_NE(s.find("load"), std::string::npos);
    EXPECT_NE(s.find("105.0"), std::string::npos);
}

TEST(Table, CsvOutput)
{
    Table t("demo");
    t.setHeader({"a", "b"});
    t.addRow({"1", "2"});
    std::ostringstream os;
    t.printCsv(os);
    EXPECT_EQ(os.str(), "a,b\n1,2\n");
}

TEST(Table, CellFormatting)
{
    EXPECT_EQ(Table::cell(1.23456, 2), "1.23");
    EXPECT_EQ(Table::cell(1.0, 0), "1");
    EXPECT_EQ(Table::cell(std::uint64_t{42}), "42");
}

TEST(Table, RowWidthMismatchPanics)
{
    Table t("demo");
    t.setHeader({"a", "b"});
    EXPECT_DEATH(t.addRow({"only-one"}), "row width");
}

TEST(Table, RowsBeforeHeaderPanics)
{
    Table t("demo");
    EXPECT_DEATH(t.addRow({"x"}), "setHeader");
}

TEST(Table, CountsRows)
{
    Table t("demo");
    t.setHeader({"a"});
    EXPECT_EQ(t.numRows(), 0u);
    t.addRow({"1"});
    t.addRow({"2"});
    EXPECT_EQ(t.numRows(), 2u);
}

} // namespace
} // namespace crnet
