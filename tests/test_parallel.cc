/**
 * @file
 * Tests for the parallel experiment engine: job-count resolution
 * (explicit > CRNET_JOBS > sequential default), the thread pool, and
 * parallelFor's index-space coverage guarantees.
 */

#include <gtest/gtest.h>

#include <atomic>
#include <cstdlib>
#include <string>
#include <thread>
#include <vector>

#include "src/sim/parallel.hh"

namespace crnet {
namespace {

/** RAII guard: restores (or clears) CRNET_JOBS on scope exit. */
class ScopedJobsEnv
{
  public:
    explicit ScopedJobsEnv(const char* value)
    {
        const char* old = std::getenv("CRNET_JOBS");
        had_ = old != nullptr;
        if (had_)
            saved_ = old;
        if (value != nullptr)
            setenv("CRNET_JOBS", value, 1);
        else
            unsetenv("CRNET_JOBS");
    }

    ~ScopedJobsEnv()
    {
        if (had_)
            setenv("CRNET_JOBS", saved_.c_str(), 1);
        else
            unsetenv("CRNET_JOBS");
    }

  private:
    bool had_ = false;
    std::string saved_;
};

TEST(ResolveJobs, DefaultsToSequentialWithoutEnv)
{
    ScopedJobsEnv env(nullptr);
    EXPECT_EQ(resolveJobs(), 1u);
    EXPECT_EQ(resolveJobs(0), 1u);
}

TEST(ResolveJobs, ExplicitRequestWins)
{
    ScopedJobsEnv env("7");
    EXPECT_EQ(resolveJobs(3), 3u);
    EXPECT_EQ(resolveJobs(1), 1u);
}

TEST(ResolveJobs, EnvUsedWhenRequestIsAuto)
{
    ScopedJobsEnv env("5");
    EXPECT_EQ(resolveJobs(0), 5u);
}

TEST(ResolveJobs, ClampsToMaxJobs)
{
    ScopedJobsEnv env(nullptr);
    EXPECT_EQ(resolveJobs(kMaxJobs + 100), kMaxJobs);
}

TEST(ResolveJobs, MalformedEnvFallsBackToSequential)
{
    ScopedJobsEnv env("banana");
    EXPECT_EQ(resolveJobs(0), 1u);
}

TEST(ResolveJobs, HardwareJobsIsPositive)
{
    EXPECT_GE(hardwareJobs(), 1u);
}

TEST(ThreadPool, RunsEverySubmittedTask)
{
    ThreadPool pool(4);
    EXPECT_EQ(pool.jobs(), 4u);
    std::atomic<int> count{0};
    for (int i = 0; i < 100; ++i)
        pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 100);
}

TEST(ThreadPool, IsReusableAfterWait)
{
    ThreadPool pool(2);
    std::atomic<int> count{0};
    pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    pool.submit([&count] { count.fetch_add(1); });
    pool.submit([&count] { count.fetch_add(1); });
    pool.wait();
    EXPECT_EQ(count.load(), 3);
}

TEST(ParallelFor, CoversEveryIndexExactlyOnce)
{
    constexpr std::size_t n = 257;  // Not a multiple of the width.
    // Per-index slots: each index is visited by exactly one task, so
    // plain (non-atomic) writes are race-free iff coverage is correct.
    std::vector<int> hits(n, 0);
    parallelFor(n, 4, [&hits](std::size_t i) { hits[i] += 1; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(hits[i], 1) << "index " << i;
}

TEST(ParallelFor, HandlesMoreJobsThanItems)
{
    std::vector<int> hits(3, 0);
    parallelFor(hits.size(), 64, [&hits](std::size_t i) {
        hits[i] += 1;
    });
    EXPECT_EQ(hits, (std::vector<int>{1, 1, 1}));
}

TEST(ParallelFor, EmptyRangeIsANoOp)
{
    bool touched = false;
    parallelFor(0, 8, [&touched](std::size_t) { touched = true; });
    EXPECT_FALSE(touched);
}

TEST(ParallelFor, SequentialWidthRunsInlineInOrder)
{
    // jobs=1 must run on the calling thread, in index order — the
    // zero-overhead sequential path benches rely on.
    const auto caller = std::this_thread::get_id();
    std::vector<std::size_t> order;
    parallelFor(5, 1, [&](std::size_t i) {
        EXPECT_EQ(std::this_thread::get_id(), caller);
        order.push_back(i);
    });
    EXPECT_EQ(order, (std::vector<std::size_t>{0, 1, 2, 3, 4}));
}

TEST(ParallelFor, ParallelWritesLandInSubmissionSlots)
{
    // The determinism contract: result i depends only on input i,
    // regardless of which worker ran it or in what order.
    constexpr std::size_t n = 64;
    std::vector<std::size_t> out(n, 0);
    parallelFor(n, 8, [&out](std::size_t i) { out[i] = i * i; });
    for (std::size_t i = 0; i < n; ++i)
        EXPECT_EQ(out[i], i * i);
}

} // namespace
} // namespace crnet
