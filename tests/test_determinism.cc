/**
 * @file
 * Regression tests for the determinism fixes found by crnet-analyze
 * (tools/crnet_analyze.py): results that fold over formerly
 * hash-ordered containers must be byte-for-byte independent of the
 * container's bucket layout.
 *
 * The mechanism under test is deterministic *ordering* — sorted
 * snapshots between the unordered containers and every
 * result-affecting consumer — so the tests drive the orderings
 * directly: ledgers populated in adversarial insertion orders must
 * produce bit-identical folds, assembly probes must come out in
 * MsgId order, and the forensics report must be byte-stable across
 * independently constructed networks.
 */

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <sstream>
#include <vector>

#include "src/core/network.hh"
#include "src/fault/campaign.hh"

namespace crnet {
namespace {

PendingMessage
pending(MsgId id, NodeId src, NodeId dst, Cycle created)
{
    PendingMessage m;
    m.id = id;
    m.src = src;
    m.dst = dst;
    m.createdAt = created;
    m.measured = true;
    return m;
}

DeliveredMessage
delivered(MsgId id, Cycle at, std::uint16_t attempts)
{
    DeliveredMessage m;
    m.id = id;
    m.deliveredAt = at;
    m.attempts = attempts;
    return m;
}

/** Fold the latency transient exactly the way runTrial does. */
double
latencyFold(const DeliveryLedger& ledger)
{
    double sum = 0.0;
    for (const auto& entry : ledger.sortedEntries()) {
        const LedgerEntry& e = *entry.second;
        if (e.fate == MessageFate::Delivered)
            sum += static_cast<double>(e.resolvedAt - e.createdAt);
    }
    return sum;
}

// sortedEntries() must return ascending MsgIds no matter the
// insertion order (and hence no matter the bucket layout).
TEST(Determinism, SortedEntriesAscendingRegardlessOfInsertion)
{
    // Adversarial id set: large, non-contiguous, inserted forward in
    // one ledger and reversed in the other.
    std::vector<MsgId> ids;
    for (MsgId i = 0; i < 200; ++i)
        ids.push_back(1 + i * 7919);  // Spread across buckets.

    DeliveryLedger fwd, rev;
    for (std::size_t i = 0; i < ids.size(); ++i)
        fwd.onAccepted(pending(ids[i], 0, 1, 10 + ids[i] % 97));
    for (std::size_t i = ids.size(); i-- > 0;)
        rev.onAccepted(pending(ids[i], 0, 1, 10 + ids[i] % 97));

    const auto a = fwd.sortedEntries();
    const auto b = rev.sortedEntries();
    ASSERT_EQ(a.size(), ids.size());
    ASSERT_EQ(b.size(), ids.size());
    EXPECT_TRUE(std::is_sorted(
        a.begin(), a.end(), [](const auto& x, const auto& y) {
            return x.first < y.first;
        }));
    for (std::size_t i = 0; i < a.size(); ++i) {
        EXPECT_EQ(a[i].first, b[i].first);
        EXPECT_EQ(a[i].second->createdAt, b[i].second->createdAt);
    }
}

// The float fold feeding preFaultLatency/postFaultLatency must be
// bit-identical across insertion orders: float addition is not
// associative, so this only holds because the fold runs in MsgId
// order, which is exactly what the fix pinned.
TEST(Determinism, LatencyTransientBitIdenticalAcrossInsertionOrder)
{
    std::vector<MsgId> ids;
    for (MsgId i = 0; i < 300; ++i)
        ids.push_back(3 + i * 104729);

    DeliveryLedger fwd, rev;
    auto populate = [&](DeliveryLedger& ledger,
                        const std::vector<MsgId>& order) {
        for (const MsgId id : order)
            ledger.onAccepted(pending(id, 0, 1, id % 1009));
        for (const MsgId id : order) {
            // Latencies with enough float texture that a reordered
            // sum actually differs in the low mantissa bits.
            ledger.onDelivered(delivered(
                id, id % 1009 + 3 + (id % 13) * 101, 1));
        }
    };
    std::vector<MsgId> reversed(ids.rbegin(), ids.rend());
    populate(fwd, ids);
    populate(rev, reversed);

    const double sum_fwd = latencyFold(fwd);
    const double sum_rev = latencyFold(rev);
    // Bitwise, not EXPECT_DOUBLE_EQ: the contract is byte-for-byte.
    EXPECT_EQ(0, std::memcmp(&sum_fwd, &sum_rev, sizeof(double)));
}

// Assembly probes (the forensics input) must come out in MsgId order.
TEST(Determinism, OpenAssembliesSortedByMsgId)
{
    SimConfig cfg;
    cfg.topology = TopologyKind::Torus;
    cfg.radixK = 4;
    cfg.dimensionsN = 2;
    cfg.numVcs = 2;
    cfg.bufferDepth = 2;
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = ProtocolKind::Fcr;
    cfg.injectionRate = 0.25;
    cfg.messageLength = 12;
    cfg.seed = 99;

    Network net(cfg);
    bool sawProbe = false;
    for (Cycle c = 0; c < 400; ++c) {
        net.run(1);
        for (NodeId n = 0; n < net.topology().numNodes(); ++n) {
            const auto probes = net.receiver(n).openAssemblies();
            sawProbe = sawProbe || !probes.empty();
            EXPECT_TRUE(std::is_sorted(
                probes.begin(), probes.end(),
                [](const Receiver::AssemblyProbe& a,
                   const Receiver::AssemblyProbe& b) {
                    return a.msg < b.msg;
                }));
        }
    }
    // Long messages at 25% load on a 16-node torus always leave
    // assemblies open mid-run; if not, the test checked nothing.
    EXPECT_TRUE(sawProbe);
}

// The forensics report of two independently constructed, identically
// seeded networks must match byte for byte — unordered containers
// are built up in identical insertion order here, but the report
// must not leak their iteration order either.
TEST(Determinism, ForensicsReportByteStable)
{
    SimConfig cfg;
    cfg.topology = TopologyKind::Torus;
    cfg.radixK = 4;
    cfg.dimensionsN = 2;
    cfg.numVcs = 2;
    cfg.bufferDepth = 2;
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = ProtocolKind::Fcr;
    cfg.injectionRate = 0.30;
    cfg.messageLength = 12;
    cfg.timeout = 32;
    cfg.maxRetries = 0;
    cfg.misrouteAfterRetries = 1;
    cfg.misrouteBudget = 4;
    cfg.dynamicLinkKills = 1;
    cfg.seed = 4242;

    auto report = [&]() {
        Network net(cfg);
        net.run(500);
        std::ostringstream os;
        net.dumpForensics(os);
        return os.str();
    };
    const std::string a = report();
    const std::string b = report();
    EXPECT_FALSE(a.empty());
    EXPECT_EQ(a, b);
}

// Campaign trial outcomes (including the float transient fields) must
// replay bit-identically for the same seed base.
TEST(Determinism, CampaignTrialOutcomesReplayBitIdentical)
{
    CampaignConfig cc;
    cc.base.topology = TopologyKind::Torus;
    cc.base.radixK = 4;
    cc.base.dimensionsN = 2;
    cc.base.numVcs = 2;
    cc.base.bufferDepth = 2;
    cc.base.routing = RoutingKind::MinimalAdaptive;
    cc.base.protocol = ProtocolKind::Fcr;
    cc.base.injectionRate = 0.10;
    cc.base.messageLength = 8;
    cc.base.timeout = 32;
    cc.base.maxRetries = 0;
    cc.base.misrouteAfterRetries = 1;
    cc.base.misrouteBudget = 4;
    cc.base.warmupCycles = 200;
    cc.base.measureCycles = 600;
    cc.base.dynamicLinkKills = 1;
    cc.trials = 3;
    cc.seedBase = 777;

    std::vector<TrialOutcome> first, second;
    runCampaign(cc, &first);
    runCampaign(cc, &second);
    ASSERT_EQ(first.size(), second.size());
    for (std::size_t i = 0; i < first.size(); ++i) {
        const TrialOutcome& x = first[i];
        const TrialOutcome& y = second[i];
        EXPECT_EQ(x.accepted, y.accepted);
        EXPECT_EQ(x.delivered, y.delivered);
        EXPECT_EQ(x.refused, y.refused);
        EXPECT_EQ(x.cyclesRun, y.cyclesRun);
        // The doubles byte-for-byte, not approximately.
        EXPECT_EQ(0, std::memcmp(&x.preFaultLatency,
                                 &y.preFaultLatency, sizeof(double)));
        EXPECT_EQ(0, std::memcmp(&x.postFaultLatency,
                                 &y.postFaultLatency, sizeof(double)));
        EXPECT_EQ(x.recoveryCycles, y.recoveryCycles);
    }
}

} // namespace
} // namespace crnet
