/**
 * @file
 * Message descriptors exchanged between the traffic generator, the
 * injector and the measurement machinery.
 */

#ifndef CRNET_TRAFFIC_MESSAGE_HH
#define CRNET_TRAFFIC_MESSAGE_HH

#include <cstdint>

#include "src/sim/types.hh"

namespace crnet {

/** A message waiting in (or re-queued to) a source queue. */
struct PendingMessage
{
    MsgId id = kInvalidMsg;
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    /** Payload flits including the head flit (tail and pads extra). */
    std::uint32_t payloadLen = 0;
    /** Cycle the message was created by the generator / API. */
    Cycle createdAt = 0;
    /** Per-(src,dst) sequence number for order checking. */
    std::uint32_t pairSeq = 0;
    /** Transmission attempts so far (0 before the first try). */
    std::uint16_t attempt = 0;
    /** Earliest cycle the next attempt may start (backoff). */
    Cycle notBefore = 0;
    /** Created inside the measurement window (stats eligible). */
    bool measured = false;
};

} // namespace crnet

#endif // CRNET_TRAFFIC_MESSAGE_HH
