/**
 * @file
 * Open-loop synthetic traffic generation.
 *
 * Each node independently generates messages as a Bernoulli process
 * whose per-cycle probability is injectionRate / E[message length], so
 * the offered load in flits/node/cycle equals the configured rate.
 * Message lengths are fixed or bimodal (two modes with a mixing
 * fraction, after Kim & Chien's bimodal traffic study).
 */

#ifndef CRNET_TRAFFIC_GENERATOR_HH
#define CRNET_TRAFFIC_GENERATOR_HH

#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "src/core/annotations.hh"
#include "src/sim/config.hh"
#include "src/sim/rng.hh"
#include "src/traffic/message.hh"
#include "src/traffic/pattern.hh"

namespace crnet {

class StateWriter;
class StateReader;

/** Per-network message source. */
class TrafficGenerator
{
  public:
    TrafficGenerator(const SimConfig& cfg, const Topology& topo,
                     Rng rng);

    /**
     * One Bernoulli arrival draw for `src` this cycle. Callers that
     * cannot accept the message (full source queue) must still call
     * this so offered-load accounting and the random stream stay
     * consistent, then count the drop instead of calling makeFor().
     */
    bool drawArrival();

    /**
     * Draw arrivals for nodes [from, n) of the current cycle in one
     * tight loop, stopping at the first success. Returns the node
     * whose draw fired, or n when the rest of the cycle is
     * arrival-free. The stream consumption is exactly the per-node
     * drawArrival() sequence, so callers may interleave makeFor()
     * (which draws destination/length) at each returned node and
     * resume with scanArrivals(node + 1).
     */
    NodeId scanArrivals(NodeId from);

    /**
     * Count how many whole cycles, starting with the current one, are
     * arrival-free on every node, scanning at most `max_cycles`
     * cycles. The RNG is left positioned at the start of the first
     * cycle with an arrival (or after `max_cycles` quiet cycles), so
     * a subsequent per-cycle generate pass redraws that cycle
     * bit-identically. Consumes exactly numNodes draws per quiet
     * cycle — the same stream the per-cycle path would consume.
     */
    Cycle quietCycles(Cycle max_cycles);

    /**
     * Materialize the message for an arrival that fired: destination,
     * length, id and pair sequence number. Only call when the message
     * will actually be queued — pair sequence numbers are allocated
     * here and a burned one would read as an order violation at the
     * receiver.
     */
    PendingMessage makeFor(NodeId src, Cycle now, bool measured);

    /**
     * Convenience: drawArrival() + makeFor(). `measured` marks the
     * message as eligible for statistics.
     */
    std::optional<PendingMessage>
    maybeGenerate(NodeId src, Cycle now, bool measured);

    /**
     * Create one specific message (examples / tests / targeted
     * workloads). Sequence numbers stay consistent with generated
     * traffic.
     */
    PendingMessage makeMessage(NodeId src, NodeId dst,
                               std::uint32_t payload_len, Cycle now,
                               bool measured);

    /** Offered load in flits/node/cycle implied by the config. */
    double offeredLoad() const { return offered_; }

    std::uint64_t generatedCount() const { return nextMsgId_; }

    // --- Checkpoint support (snapshot.hh) ---------------------------

    /** RNG stream, id counter and pairSeq table. */
    void saveState(StateWriter& w) const;
    void loadState(StateReader& r);

    /** Replace the RNG stream (warm-start reseeding). */
    void setRng(const Rng& rng) { rng_ = rng; }

  private:
    std::uint32_t drawLength();
    CRNET_ALLOW("alloc",
                "per-pair sequence bookkeeping: one map node the "
                "first time a (src, dst) pair communicates, by design")
    std::uint32_t nextPairSeq(NodeId src, NodeId dst);

    const SimConfig& cfg_;
    const Topology& topo_;
    std::unique_ptr<Pattern> pattern_;
    Rng rng_;
    double perCycleProb_;
    double offered_;
    MsgId nextMsgId_ = 0;
    /**
     * Per-pair sequence counters, adaptive by network size. Small
     * networks (<= kDensePairNodeLimit nodes — every paper-scale
     * configuration) use the dense n x n matrix: one indexed
     * increment per generated message, at most 1 MB. Above the limit
     * the matrix is O(nodes^2) — 17 GB on a 64k-node torus — so
     * giant networks fall back to a sparse map keyed
     * (src << 32) | dst holding only the pairs that actually
     * communicated (absent = 0, never sent). Both forms serialize
     * identically (sorted, non-zero entries only).
     */
    static constexpr NodeId kDensePairNodeLimit = 512;
    std::vector<std::uint32_t> pairSeqDense_;
    std::unordered_map<std::uint64_t, std::uint32_t> pairSeqSparse_;
};

} // namespace crnet

#endif // CRNET_TRAFFIC_GENERATOR_HH
