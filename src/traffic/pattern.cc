#include "src/traffic/pattern.hh"

#include <bit>

#include "src/sim/log.hh"

namespace crnet {

namespace {

/** Uniform random destination over all other nodes. */
class UniformPattern : public Pattern
{
  public:
    explicit UniformPattern(NodeId num_nodes) : numNodes_(num_nodes) {}

    NodeId
    destination(NodeId src, Rng& rng) const override
    {
        // Draw from [0, N-1) and skip over src: uniform over others.
        auto d = static_cast<NodeId>(rng.below(numNodes_ - 1));
        return d >= src ? d + 1 : d;
    }

  private:
    NodeId numNodes_;
};

/** dst = bitwise complement of src (requires power-of-two N). */
class BitComplementPattern : public Pattern
{
  public:
    explicit BitComplementPattern(NodeId num_nodes)
        : mask_(num_nodes - 1)
    {
        if (!std::has_single_bit(num_nodes))
            fatal("bit_complement needs a power-of-two node count");
    }

    NodeId
    destination(NodeId src, Rng& rng) const override
    {
        const NodeId d = ~src & mask_;
        if (d != src)
            return d;
        // Odd corner (cannot happen with full-width complement, but
        // keep the no-self-traffic contract robust).
        return (d + 1) & mask_;
        (void)rng;
    }

  private:
    NodeId mask_;
};

/** (x, y) -> (y, x) on 2D networks. */
class TransposePattern : public Pattern
{
  public:
    explicit TransposePattern(const Topology& topo) : topo_(topo)
    {
        if (topo.dims() != 2)
            fatal("transpose pattern needs a 2D network");
    }

    NodeId
    destination(NodeId src, Rng& rng) const override
    {
        Coordinates c = topo_.coords(src);
        std::swap(c[0], c[1]);
        const NodeId d = topo_.nodeId(c);
        if (d != src)
            return d;
        // Diagonal nodes map to themselves; send uniformly instead so
        // they still offer load.
        auto alt = static_cast<NodeId>(
            rng.below(topo_.numNodes() - 1));
        return alt >= src ? alt + 1 : alt;
    }

  private:
    const Topology& topo_;
};

/** dst = bit-reversed src (requires power-of-two N). */
class BitReversalPattern : public Pattern
{
  public:
    explicit BitReversalPattern(NodeId num_nodes)
    {
        if (!std::has_single_bit(num_nodes))
            fatal("bit_reversal needs a power-of-two node count");
        bits_ = static_cast<std::uint32_t>(
            std::countr_zero(num_nodes));
        numNodes_ = num_nodes;
    }

    NodeId
    destination(NodeId src, Rng& rng) const override
    {
        NodeId d = 0;
        for (std::uint32_t b = 0; b < bits_; ++b)
            if (src & (NodeId{1} << b))
                d |= NodeId{1} << (bits_ - 1 - b);
        if (d != src)
            return d;
        auto alt = static_cast<NodeId>(rng.below(numNodes_ - 1));
        return alt >= src ? alt + 1 : alt;
    }

  private:
    std::uint32_t bits_ = 0;
    NodeId numNodes_ = 0;
};

/** A fraction of traffic goes to one hot node; the rest is uniform. */
class HotspotPattern : public Pattern
{
  public:
    HotspotPattern(const Topology& topo, double hot_fraction)
        : numNodes_(topo.numNodes()), hotFraction_(hot_fraction)
    {
        // The hotspot sits at the network center-ish node for meshes
        // and node 0 for tori (all torus nodes are equivalent).
        if (topo.kind() == TopologyKind::Mesh) {
            Coordinates c;
            c.n = static_cast<std::uint8_t>(topo.dims());
            for (std::uint32_t d = 0; d < topo.dims(); ++d)
                c[d] = static_cast<std::uint16_t>(topo.radix() / 2);
            hot_ = topo.nodeId(c);
        } else {
            hot_ = 0;
        }
    }

    NodeId
    destination(NodeId src, Rng& rng) const override
    {
        if (src != hot_ && rng.chance(hotFraction_))
            return hot_;
        auto d = static_cast<NodeId>(rng.below(numNodes_ - 1));
        return d >= src ? d + 1 : d;
    }

  private:
    NodeId numNodes_;
    double hotFraction_;
    NodeId hot_ = 0;
};

/** One random +1 hop in a random dimension (nearest neighbor). */
class NeighborPattern : public Pattern
{
  public:
    explicit NeighborPattern(const Topology& topo) : topo_(topo) {}

    NodeId
    destination(NodeId src, Rng& rng) const override
    {
        // Try a few random ports; meshes have boundary nodes whose
        // first pick may leave the network.
        for (int tries = 0; tries < 16; ++tries) {
            const auto port = static_cast<PortId>(
                rng.below(topo_.numPorts()));
            const NodeId d = topo_.neighbor(src, port);
            if (d != kInvalidNode && d != src)
                return d;
        }
        // Degenerate topologies (k=2 rings alias neighbors); fall back
        // to uniform.
        auto d = static_cast<NodeId>(rng.below(topo_.numNodes() - 1));
        return d >= src ? d + 1 : d;
    }

  private:
    const Topology& topo_;
};

/**
 * dst = src + (k/2 - 1) along dimension 0. On a torus every message
 * wants the same rotational direction, which concentrates load on
 * half the ring links: deterministic routing cannot balance it, while
 * adaptive routing can spill to the other direction. The classic
 * adversarial pattern for DOR on tori.
 */
class TornadoPattern : public Pattern
{
  public:
    explicit TornadoPattern(const Topology& topo) : topo_(topo)
    {
        if (topo.radix() < 3)
            fatal("tornado needs radix >= 3");
    }

    NodeId
    destination(NodeId src, Rng& rng) const override
    {
        Coordinates c = topo_.coords(src);
        const auto k = static_cast<std::uint16_t>(topo_.radix());
        c[0] = static_cast<std::uint16_t>(
            (c[0] + k / 2 - 1 + (k % 2)) % k);
        const NodeId d = topo_.nodeId(c);
        if (d != src)
            return d;
        auto alt = static_cast<NodeId>(
            rng.below(topo_.numNodes() - 1));
        return alt >= src ? alt + 1 : alt;
    }

  private:
    const Topology& topo_;
};

} // namespace

std::unique_ptr<Pattern>
makePattern(const SimConfig& cfg, const Topology& topo)
{
    switch (cfg.pattern) {
      case TrafficPattern::Uniform:
        return std::make_unique<UniformPattern>(topo.numNodes());
      case TrafficPattern::BitComplement:
        return std::make_unique<BitComplementPattern>(topo.numNodes());
      case TrafficPattern::Transpose:
        return std::make_unique<TransposePattern>(topo);
      case TrafficPattern::BitReversal:
        return std::make_unique<BitReversalPattern>(topo.numNodes());
      case TrafficPattern::Hotspot:
        return std::make_unique<HotspotPattern>(topo,
                                                cfg.hotspotFraction);
      case TrafficPattern::Neighbor:
        return std::make_unique<NeighborPattern>(topo);
      case TrafficPattern::Tornado:
        return std::make_unique<TornadoPattern>(topo);
    }
    panic("bad TrafficPattern in makePattern");
}

} // namespace crnet
