/**
 * @file
 * Spatial traffic patterns: map a source node to a destination.
 *
 * Uniform is the paper's workload; the permutation patterns
 * (bit-complement, transpose, bit-reversal) and hotspot/neighbor are
 * the standard k-ary n-cube stress patterns used to exercise the
 * adaptive-routing advantage the paper argues for.
 */

#ifndef CRNET_TRAFFIC_PATTERN_HH
#define CRNET_TRAFFIC_PATTERN_HH

#include <memory>

#include "src/sim/config.hh"
#include "src/sim/rng.hh"
#include "src/sim/types.hh"
#include "src/topology/topology.hh"

namespace crnet {

/** Destination selector. */
class Pattern
{
  public:
    virtual ~Pattern() = default;

    /**
     * Destination for a message from `src`. Never returns `src`
     * itself (self-traffic does not enter the network).
     */
    virtual NodeId destination(NodeId src, Rng& rng) const = 0;
};

/**
 * Build the configured pattern. Patterns that need structural
 * properties (power-of-two node count, 2 dimensions) reject unusable
 * topologies via fatal().
 */
std::unique_ptr<Pattern> makePattern(const SimConfig& cfg,
                                     const Topology& topo);

} // namespace crnet

#endif // CRNET_TRAFFIC_PATTERN_HH
