#include "src/traffic/generator.hh"

#include <algorithm>
#include <utility>

#include "src/sim/log.hh"
#include "src/sim/snapshot.hh"

namespace crnet {

TrafficGenerator::TrafficGenerator(const SimConfig& cfg,
                                   const Topology& topo, Rng rng)
    : cfg_(cfg), topo_(topo), pattern_(makePattern(cfg, topo)),
      rng_(rng)
{
    double mean_len = cfg.messageLength;
    if (cfg.bimodalFracB > 0.0) {
        mean_len = (1.0 - cfg.bimodalFracB) * cfg.messageLength +
                   cfg.bimodalFracB * cfg.messageLengthB;
    }
    if (topo.numNodes() <= kDensePairNodeLimit) {
        pairSeqDense_.assign(static_cast<std::size_t>(topo.numNodes()) *
                                 topo.numNodes(),
                             0u);
    }
    perCycleProb_ = cfg.injectionRate / mean_len;
    if (perCycleProb_ > 1.0)
        fatal("injection rate ", cfg.injectionRate,
              " exceeds one message per cycle at mean length ",
              mean_len);
    offered_ = cfg.injectionRate;
}

std::uint32_t
TrafficGenerator::drawLength()
{
    if (cfg_.bimodalFracB > 0.0 && rng_.chance(cfg_.bimodalFracB))
        return cfg_.messageLengthB;
    return cfg_.messageLength;
}

std::uint32_t
TrafficGenerator::nextPairSeq(NodeId src, NodeId dst)
{
    if (!pairSeqDense_.empty()) {
        return pairSeqDense_[static_cast<std::size_t>(src) *
                                 topo_.numNodes() +
                             dst]++;
    }
    const std::uint64_t key =
        (static_cast<std::uint64_t>(src) << 32) | dst;
    return pairSeqSparse_.try_emplace(key, 0).first->second++;
}

bool
TrafficGenerator::drawArrival()
{
    return rng_.chance(perCycleProb_);
}

NodeId
TrafficGenerator::scanArrivals(NodeId from)
{
    const NodeId n = topo_.numNodes();
    for (NodeId src = from; src < n; ++src) {
        if (rng_.chance(perCycleProb_))
            return src;
    }
    return n;
}

Cycle
TrafficGenerator::quietCycles(Cycle max_cycles)
{
    // chance() consumes no draw at the degenerate probabilities, so
    // the skipped cycles consume nothing either way.
    if (perCycleProb_ <= 0.0)
        return max_cycles;
    if (perCycleProb_ >= 1.0)
        return 0;
    const NodeId n = topo_.numNodes();
    Cycle quiet = 0;
    while (quiet < max_cycles) {
        const Rng at_cycle_start = rng_;
        bool hit = false;
        for (NodeId src = 0; src < n; ++src) {
            if (rng_.chance(perCycleProb_)) {
                hit = true;
                break;
            }
        }
        if (hit) {
            // Rewind: the caller's per-cycle pass redraws this cycle
            // with the identical stream.
            rng_ = at_cycle_start;
            break;
        }
        ++quiet;
    }
    return quiet;
}

PendingMessage
TrafficGenerator::makeFor(NodeId src, Cycle now, bool measured)
{
    const NodeId dst = pattern_->destination(src, rng_);
    return makeMessage(src, dst, drawLength(), now, measured);
}

std::optional<PendingMessage>
TrafficGenerator::maybeGenerate(NodeId src, Cycle now, bool measured)
{
    if (!drawArrival())
        return std::nullopt;
    return makeFor(src, now, measured);
}

PendingMessage
TrafficGenerator::makeMessage(NodeId src, NodeId dst,
                              std::uint32_t payload_len, Cycle now,
                              bool measured)
{
    if (dst == src)
        fatal("self-traffic is not modeled (src == dst == ", src, ")");
    if (dst >= topo_.numNodes())
        fatal("destination ", dst, " out of range");
    PendingMessage m;
    m.id = nextMsgId_++;
    m.src = src;
    m.dst = dst;
    m.payloadLen = payload_len;
    m.createdAt = now;
    m.pairSeq = nextPairSeq(src, dst);
    m.measured = measured;
    return m;
}

CRNET_ALLOW("unordered-iter",
            "pairSeq entries are sorted by key before serialization "
            "so the snapshot bytes never depend on hash order")
void
TrafficGenerator::saveState(StateWriter& w) const
{
    saveRng(w, rng_);
    w.u64(nextMsgId_);
    // Same bytes from either storage mode: sorted, and only pairs
    // that communicated (the dense matrix's zeros are the sparse
    // map's absent keys).
    std::vector<std::pair<std::uint64_t, std::uint32_t>> seqs;
    if (!pairSeqDense_.empty()) {
        const std::size_t n = topo_.numNodes();
        for (std::size_t src = 0; src < n; ++src) {
            for (std::size_t dst = 0; dst < n; ++dst) {
                const std::uint32_t seq =
                    pairSeqDense_[src * n + dst];
                if (seq != 0)
                    seqs.emplace_back((static_cast<std::uint64_t>(src)
                                       << 32) |
                                          dst,
                                      seq);
            }
        }
    } else {
        seqs.assign(pairSeqSparse_.begin(), pairSeqSparse_.end());
        std::sort(seqs.begin(), seqs.end());
    }
    w.u64(seqs.size());
    for (const auto& [key, seq] : seqs) {
        w.u64(key);
        w.u32(seq);
    }
}

void
TrafficGenerator::loadState(StateReader& r)
{
    loadRng(r, rng_);
    nextMsgId_ = r.u64();
    if (!pairSeqDense_.empty())
        std::fill(pairSeqDense_.begin(), pairSeqDense_.end(), 0u);
    pairSeqSparse_.clear();
    const std::uint64_t n = r.u64();
    for (std::uint64_t i = 0; i < n; ++i) {
        const std::uint64_t key = r.u64();
        const std::uint32_t seq = r.u32();
        if (!pairSeqDense_.empty()) {
            pairSeqDense_[static_cast<std::size_t>(key >> 32) *
                              topo_.numNodes() +
                          static_cast<std::uint32_t>(key)] = seq;
        } else {
            pairSeqSparse_.emplace(key, seq);
        }
    }
}

} // namespace crnet
