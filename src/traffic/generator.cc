#include "src/traffic/generator.hh"

#include "src/sim/log.hh"
#include "src/sim/snapshot.hh"

namespace crnet {

TrafficGenerator::TrafficGenerator(const SimConfig& cfg,
                                   const Topology& topo, Rng rng)
    : cfg_(cfg), topo_(topo), pattern_(makePattern(cfg, topo)),
      rng_(rng),
      pairSeq_(static_cast<std::size_t>(topo.numNodes()) *
               topo.numNodes(), 0)
{
    double mean_len = cfg.messageLength;
    if (cfg.bimodalFracB > 0.0) {
        mean_len = (1.0 - cfg.bimodalFracB) * cfg.messageLength +
                   cfg.bimodalFracB * cfg.messageLengthB;
    }
    perCycleProb_ = cfg.injectionRate / mean_len;
    if (perCycleProb_ > 1.0)
        fatal("injection rate ", cfg.injectionRate,
              " exceeds one message per cycle at mean length ",
              mean_len);
    offered_ = cfg.injectionRate;
}

std::uint32_t
TrafficGenerator::drawLength()
{
    if (cfg_.bimodalFracB > 0.0 && rng_.chance(cfg_.bimodalFracB))
        return cfg_.messageLengthB;
    return cfg_.messageLength;
}

std::uint32_t
TrafficGenerator::nextPairSeq(NodeId src, NodeId dst)
{
    const auto idx =
        static_cast<std::size_t>(src) * topo_.numNodes() + dst;
    return pairSeq_[idx]++;
}

bool
TrafficGenerator::drawArrival()
{
    return rng_.chance(perCycleProb_);
}

NodeId
TrafficGenerator::scanArrivals(NodeId from)
{
    const NodeId n = topo_.numNodes();
    for (NodeId src = from; src < n; ++src) {
        if (rng_.chance(perCycleProb_))
            return src;
    }
    return n;
}

Cycle
TrafficGenerator::quietCycles(Cycle max_cycles)
{
    // chance() consumes no draw at the degenerate probabilities, so
    // the skipped cycles consume nothing either way.
    if (perCycleProb_ <= 0.0)
        return max_cycles;
    if (perCycleProb_ >= 1.0)
        return 0;
    const NodeId n = topo_.numNodes();
    Cycle quiet = 0;
    while (quiet < max_cycles) {
        const Rng at_cycle_start = rng_;
        bool hit = false;
        for (NodeId src = 0; src < n; ++src) {
            if (rng_.chance(perCycleProb_)) {
                hit = true;
                break;
            }
        }
        if (hit) {
            // Rewind: the caller's per-cycle pass redraws this cycle
            // with the identical stream.
            rng_ = at_cycle_start;
            break;
        }
        ++quiet;
    }
    return quiet;
}

PendingMessage
TrafficGenerator::makeFor(NodeId src, Cycle now, bool measured)
{
    const NodeId dst = pattern_->destination(src, rng_);
    return makeMessage(src, dst, drawLength(), now, measured);
}

std::optional<PendingMessage>
TrafficGenerator::maybeGenerate(NodeId src, Cycle now, bool measured)
{
    if (!drawArrival())
        return std::nullopt;
    return makeFor(src, now, measured);
}

PendingMessage
TrafficGenerator::makeMessage(NodeId src, NodeId dst,
                              std::uint32_t payload_len, Cycle now,
                              bool measured)
{
    if (dst == src)
        fatal("self-traffic is not modeled (src == dst == ", src, ")");
    if (dst >= topo_.numNodes())
        fatal("destination ", dst, " out of range");
    PendingMessage m;
    m.id = nextMsgId_++;
    m.src = src;
    m.dst = dst;
    m.payloadLen = payload_len;
    m.createdAt = now;
    m.pairSeq = nextPairSeq(src, dst);
    m.measured = measured;
    return m;
}

void
TrafficGenerator::saveState(StateWriter& w) const
{
    saveRng(w, rng_);
    w.u64(nextMsgId_);
    w.u64(pairSeq_.size());
    for (std::uint32_t seq : pairSeq_)
        w.u32(seq);
}

void
TrafficGenerator::loadState(StateReader& r)
{
    loadRng(r, rng_);
    nextMsgId_ = r.u64();
    const std::uint64_t n = r.u64();
    if (n != pairSeq_.size())
        panic("pairSeq table size mismatch on restore: saved ", n,
              ", have ", pairSeq_.size());
    for (auto& seq : pairSeq_)
        seq = r.u32();
}

} // namespace crnet
