/**
 * @file
 * Deterministic pseudo-random number generation for the simulator.
 *
 * We use xoshiro256** seeded via splitmix64. A dedicated generator (not
 * std::mt19937) keeps results bit-identical across standard libraries,
 * which matters for reproducing the tables in EXPERIMENTS.md.
 */

#ifndef CRNET_SIM_RNG_HH
#define CRNET_SIM_RNG_HH

#include <array>
#include <cstddef>
#include <cstdint>

#include "src/sim/log.hh"

namespace crnet {

/** xoshiro256** generator with convenience distributions. */
class Rng
{
  public:
    /** Construct from a 64-bit seed (expanded via splitmix64). */
    explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL)
    {
        std::uint64_t x = seed;
        for (auto& word : state_)
            word = splitmix64(x);
    }

    /** Next raw 64-bit value. */
    std::uint64_t
    next()
    {
        const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
        const std::uint64_t t = state_[1] << 17;
        state_[2] ^= state_[0];
        state_[3] ^= state_[1];
        state_[1] ^= state_[2];
        state_[0] ^= state_[3];
        state_[2] ^= t;
        state_[3] = rotl(state_[3], 45);
        return result;
    }

    /** Uniform integer in [0, bound). bound must be > 0. */
    std::uint64_t
    below(std::uint64_t bound)
    {
        if (bound == 0)
            panic("Rng::below called with bound 0");
        // Debiased via rejection sampling on the top range.
        const std::uint64_t threshold = -bound % bound;
        for (;;) {
            const std::uint64_t r = next();
            if (r >= threshold)
                return r % bound;
        }
    }

    /** Uniform integer in [lo, hi] inclusive. */
    std::int64_t
    between(std::int64_t lo, std::int64_t hi)
    {
        if (lo > hi)
            panic("Rng::between called with lo > hi");
        return lo + static_cast<std::int64_t>(
            below(static_cast<std::uint64_t>(hi - lo) + 1));
    }

    /** Uniform double in [0, 1). */
    double
    uniform()
    {
        return static_cast<double>(next() >> 11) * 0x1.0p-53;
    }

    /** Bernoulli trial with success probability p. */
    bool
    chance(double p)
    {
        if (p <= 0.0)
            return false;
        if (p >= 1.0)
            return true;
        return uniform() < p;
    }

    /** Derive an independent child generator (for per-node streams). */
    Rng
    fork()
    {
        return Rng(next() ^ 0xd1b54a32d192ed03ULL);
    }

    // --- Checkpoint/restore (see docs/ROBUSTNESS.md) -----------------
    //
    // The snapshot layer must capture every stream mid-sequence: a
    // default-reconstructed or re-seeded generator after a resume is
    // the classic silent-divergence bug, so the raw xoshiro words are
    // exposed for exact round-tripping.

    /** The four raw xoshiro256** state words. */
    std::array<std::uint64_t, 4>
    state() const
    {
        return {state_[0], state_[1], state_[2], state_[3]};
    }

    /** Overwrite the state words (snapshot restore). */
    void
    setState(const std::array<std::uint64_t, 4>& s)
    {
        for (int i = 0; i < 4; ++i)
            state_[i] = s[static_cast<std::size_t>(i)];
    }

    /** Two generators will produce identical streams forever. */
    bool
    operator==(const Rng& other) const
    {
        return state_[0] == other.state_[0] &&
               state_[1] == other.state_[1] &&
               state_[2] == other.state_[2] &&
               state_[3] == other.state_[3];
    }

  private:
    static std::uint64_t
    rotl(std::uint64_t x, int k)
    {
        return (x << k) | (x >> (64 - k));
    }

    static std::uint64_t
    splitmix64(std::uint64_t& x)
    {
        x += 0x9e3779b97f4a7c15ULL;
        std::uint64_t z = x;
        z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
        z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
        return z ^ (z >> 31);
    }

    std::uint64_t state_[4];
};

} // namespace crnet

#endif // CRNET_SIM_RNG_HH
