#include "src/sim/trace.hh"

#include <algorithm>
#include <cstdlib>
#include <fstream>
#include <unordered_map>

#include "src/sim/config.hh"
#include "src/sim/log.hh"
#include "src/sim/snapshot.hh"

namespace crnet {

namespace {

/** Signed view of sentinel-bearing ids for readable JSON output. */
std::int64_t
jsonId(std::uint64_t v, std::uint64_t invalid)
{
    return v == invalid ? -1 : static_cast<std::int64_t>(v);
}

std::uint64_t
parseWatchU64(const std::string& tok)
{
    char* end = nullptr;
    const auto v = std::strtoull(tok.c_str(), &end, 10);
    if (end == tok.c_str() || *end != '\0')
        fatal("watch spec: expected integer, got '", tok, "'");
    return v;
}

} // namespace

const char*
toString(TraceEventKind k)
{
    switch (k) {
      case TraceEventKind::Inject: return "inject";
      case TraceEventKind::Commit: return "commit";
      case TraceEventKind::HeadAdvance: return "head_advance";
      case TraceEventKind::Block: return "block";
      case TraceEventKind::SourceKill: return "source_kill";
      case TraceEventKind::RouterKill: return "router_kill";
      case TraceEventKind::KillHop: return "kill_hop";
      case TraceEventKind::BkillHop: return "bkill_hop";
      case TraceEventKind::Abort: return "abort";
      case TraceEventKind::Retransmit: return "retransmit";
      case TraceEventKind::GiveUp: return "give_up";
      case TraceEventKind::Deliver: return "deliver";
      case TraceEventKind::Discard: return "discard";
      case TraceEventKind::Fault: return "fault";
      case TraceEventKind::LinkLoss: return "link_loss";
    }
    panic("bad TraceEventKind");
}

Tracer::Tracer(std::string prefix, const std::string& watch_spec)
    : prefix_(std::move(prefix)), enabled_(!prefix_.empty())
{
    if (!enabled_)
        return;
    // Parse the watch list: `<msgid>` or `<src>-<dst>` tokens.
    std::size_t pos = 0;
    while (pos < watch_spec.size()) {
        std::size_t comma = watch_spec.find(',', pos);
        if (comma == std::string::npos)
            comma = watch_spec.size();
        const std::string tok = watch_spec.substr(pos, comma - pos);
        pos = comma + 1;
        if (tok.empty())
            continue;
        const std::size_t dash = tok.find('-');
        if (dash == std::string::npos) {
            watchedMsgs_.insert(parseWatchU64(tok));
        } else {
            const auto src = static_cast<NodeId>(
                parseWatchU64(tok.substr(0, dash)));
            const auto dst = static_cast<NodeId>(
                parseWatchU64(tok.substr(dash + 1)));
            watchedPairs_.emplace_back(src, dst);
        }
    }
    watchAll_ = watchedMsgs_.empty() && watchedPairs_.empty();
}

Tracer::~Tracer()
{
    flush();
}

std::string
Tracer::resolvePrefix(const SimConfig& cfg)
{
    if (!cfg.traceFile.empty())
        return cfg.traceFile;
    const char* env = std::getenv("CRNET_TRACE");
    if (env == nullptr)
        return "";
    const std::string v(env);
    if (v.empty() || v == "0")
        return "";
    return v == "1" ? "crnet_trace" : v;
}

bool
Tracer::pairMatches(NodeId src, NodeId dst) const
{
    for (const auto& p : watchedPairs_)
        if (p.first == src && p.second == dst)
            return true;
    return false;
}

bool
Tracer::wants(MsgId msg, NodeId src, NodeId dst) const
{
    if (!enabled_)
        return false;
    if (watchAll_)
        return true;
    if (watchedMsgs_.count(msg) != 0)
        return true;
    return src != kInvalidNode && pairMatches(src, dst);
}

CRNET_ALLOW("global-state",
            "per-thread staging pointer for the sharded tick: set and "
            "cleared by the owning worker only, null everywhere else; "
            "staged events are replayed in deterministic order")
thread_local std::vector<TraceEvent>* Tracer::tlsStage_ = nullptr;

void
Tracer::setThreadStage(std::vector<TraceEvent>* stage)
{
    tlsStage_ = stage;
}

void
Tracer::record(TraceEventKind kind, MsgId msg, NodeId node,
               NodeId src, NodeId dst, std::uint16_t attempt,
               std::uint64_t arg)
{
    if (!enabled_)
        return;
    if (tlsStage_ != nullptr) {
        // Sharded tick: stage the raw tuple; the serial replay after
        // the barrier re-enters record() with no stage installed and
        // applies the watch filter (whose adoption mutates shared
        // state) in deterministic order.
        tlsStage_->push_back(
            TraceEvent{now_, kind, msg, node, src, dst, attempt, arg});
        return;
    }
    if (!watchAll_) {
        bool want = watchedMsgs_.count(msg) != 0;
        if (!want && src != kInvalidNode && pairMatches(src, dst)) {
            want = true;
            // Adopt the message so kill tokens and other src-less
            // events of this worm keep matching the pair filter.
            if (msg != kInvalidMsg)
                watchedMsgs_.insert(msg);
        }
        if (!want)
            return;
    }
    events_.push_back(
        TraceEvent{now_, kind, msg, node, src, dst, attempt, arg});
}

void
Tracer::writeJsonl() const
{
    std::ofstream os(jsonlPath());
    if (!os) {
        warn("trace: cannot open ", jsonlPath(), " for writing");
        return;
    }
    for (const TraceEvent& e : events_) {
        os << "{\"t\":" << e.at << ",\"ev\":\"" << toString(e.kind)
           << "\",\"msg\":" << jsonId(e.msg, kInvalidMsg)
           << ",\"node\":" << jsonId(e.node, kInvalidNode)
           << ",\"src\":" << jsonId(e.src, kInvalidNode)
           << ",\"dst\":" << jsonId(e.dst, kInvalidNode)
           << ",\"attempt\":" << e.attempt << ",\"arg\":" << e.arg
           << "}\n";
    }
}

void
Tracer::writeChrome() const
{
    std::ofstream os(chromePath());
    if (!os) {
        warn("trace: cannot open ", chromePath(), " for writing");
        return;
    }
    os << "{\"traceEvents\":[";
    bool first = true;
    const auto sep = [&] {
        if (!first)
            os << ",";
        first = false;
        os << "\n";
    };
    // Instant events: pid 0, one tid per node, ts = cycle.
    for (const TraceEvent& e : events_) {
        sep();
        os << "{\"name\":\"" << toString(e.kind)
           << "\",\"cat\":\"worm\",\"ph\":\"i\",\"s\":\"t\",\"ts\":"
           << e.at << ",\"pid\":0,\"tid\":"
           << jsonId(e.node, kInvalidNode) << ",\"args\":{\"msg\":"
           << jsonId(e.msg, kInvalidMsg) << ",\"src\":"
           << jsonId(e.src, kInvalidNode) << ",\"dst\":"
           << jsonId(e.dst, kInvalidNode) << ",\"attempt\":"
           << e.attempt << ",\"arg\":" << e.arg << "}}";
    }
    // One async span per message: first injection to final outcome.
    // Unfinished messages get no span (Perfetto tolerates that; the
    // instant events still show them).
    struct Span
    {
        Cycle begin = 0;
        Cycle end = 0;
        bool closed = false;
    };
    std::unordered_map<MsgId, Span> spans;
    for (const TraceEvent& e : events_) {
        if (e.msg == kInvalidMsg)
            continue;
        if (e.kind == TraceEventKind::Inject)
            spans.emplace(e.msg, Span{e.at, e.at, false});
        auto it = spans.find(e.msg);
        if (it == spans.end())
            continue;
        if (e.kind == TraceEventKind::Deliver ||
            e.kind == TraceEventKind::GiveUp) {
            it->second.end = e.at;
            it->second.closed = true;
        }
    }
    for (const TraceEvent& e : events_) {
        if (e.kind != TraceEventKind::Inject || e.msg == kInvalidMsg)
            continue;
        const auto it = spans.find(e.msg);
        if (it == spans.end() || !it->second.closed)
            continue;
        sep();
        os << "{\"name\":\"msg " << e.msg
           << "\",\"cat\":\"lifetime\",\"ph\":\"b\",\"id\":" << e.msg
           << ",\"ts\":" << it->second.begin
           << ",\"pid\":0,\"tid\":0}";
        sep();
        os << "{\"name\":\"msg " << e.msg
           << "\",\"cat\":\"lifetime\",\"ph\":\"e\",\"id\":" << e.msg
           << ",\"ts\":" << it->second.end << ",\"pid\":0,\"tid\":0}";
        spans.erase(it);  // One span even if the message re-injects.
    }
    os << "\n]}\n";
}

void
Tracer::flush()
{
    if (!enabled_ || flushed_)
        return;
    flushed_ = true;
    writeJsonl();
    writeChrome();
}

CRNET_ALLOW("unordered-iter",
            "adopted watch ids are sorted before serialization so the "
            "snapshot bytes never depend on hash order")
void
Tracer::saveState(StateWriter& w) const
{
    w.u64(events_.size());
    for (const TraceEvent& e : events_) {
        w.u64(e.at);
        w.u8(static_cast<std::uint8_t>(e.kind));
        w.u64(e.msg);
        w.u32(e.node);
        w.u32(e.src);
        w.u32(e.dst);
        w.u16(e.attempt);
        w.u64(e.arg);
    }
    std::vector<MsgId> watched(watchedMsgs_.begin(),
                               watchedMsgs_.end());
    std::sort(watched.begin(), watched.end());
    w.u64(watched.size());
    for (MsgId id : watched)
        w.u64(id);
    w.u64(now_);
}

void
Tracer::loadState(StateReader& r)
{
    events_.clear();
    const std::uint64_t numEvents = r.u64();
    events_.reserve(numEvents);
    for (std::uint64_t i = 0; i < numEvents; ++i) {
        TraceEvent e;
        e.at = r.u64();
        e.kind = static_cast<TraceEventKind>(r.u8());
        e.msg = r.u64();
        e.node = r.u32();
        e.src = r.u32();
        e.dst = r.u32();
        e.attempt = r.u16();
        e.arg = r.u64();
        events_.push_back(e);
    }
    watchedMsgs_.clear();
    const std::uint64_t numWatched = r.u64();
    for (std::uint64_t i = 0; i < numWatched; ++i)
        watchedMsgs_.insert(r.u64());
    now_ = r.u64();
}

} // namespace crnet
