#include "src/sim/table.hh"

#include <algorithm>
#include <iomanip>
#include <sstream>

#include "src/sim/log.hh"

namespace crnet {

Table::Table(std::string title) : title_(std::move(title))
{
}

void
Table::setHeader(std::vector<std::string> columns)
{
    if (columns.empty())
        panic("Table header must have at least one column");
    header_ = std::move(columns);
}

void
Table::addRow(std::vector<std::string> cells)
{
    if (header_.empty())
        panic("Table::setHeader must be called before addRow");
    if (cells.size() != header_.size())
        panic("Table row width ", cells.size(), " != header width ",
              header_.size());
    rows_.push_back(std::move(cells));
}

std::string
Table::cell(double v, int precision)
{
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
}

std::string
Table::cell(std::uint64_t v)
{
    return std::to_string(v);
}

void
Table::print(std::ostream& os) const
{
    std::vector<std::size_t> widths(header_.size());
    for (std::size_t c = 0; c < header_.size(); ++c)
        widths[c] = header_[c].size();
    for (const auto& row : rows_)
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    os << "== " << title_ << " ==\n";
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::setw(static_cast<int>(widths[c])) << row[c];
            os << (c + 1 == row.size() ? "\n" : "  ");
        }
    };
    emit(header_);
    for (std::size_t c = 0; c < header_.size(); ++c) {
        os << std::string(widths[c], '-')
           << (c + 1 == header_.size() ? "\n" : "  ");
    }
    for (const auto& row : rows_)
        emit(row);
}

void
Table::printCsv(std::ostream& os) const
{
    auto emit = [&](const std::vector<std::string>& row) {
        for (std::size_t c = 0; c < row.size(); ++c)
            os << row[c] << (c + 1 == row.size() ? "\n" : ",");
    };
    emit(header_);
    for (const auto& row : rows_)
        emit(row);
}

} // namespace crnet
