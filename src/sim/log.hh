/**
 * @file
 * Error reporting helpers in the gem5 tradition.
 *
 * panic()  — an internal invariant of the simulator was violated; this is
 *            a crnet bug. Aborts (so a debugger/core dump is useful).
 * fatal()  — the simulation cannot continue because of a user error (bad
 *            configuration, impossible parameter combination). Exits(1).
 * warn()   — something is suspicious but the simulation can proceed.
 * inform() — plain status output.
 */

#ifndef CRNET_SIM_LOG_HH
#define CRNET_SIM_LOG_HH

#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>
#include <utility>

namespace crnet {

namespace detail {

/** Stream-concatenate all arguments into one string. */
template <typename... Args>
std::string
concat(Args&&... args)
{
    std::ostringstream os;
    // Comma fold keeps an empty pack well-formed (a plain `<<` fold
    // over zero arguments is just `os`, which -Wunused-value flags).
    ((void)(os << std::forward<Args>(args)), ...);
    return os.str();
}

} // namespace detail

/** Abort with a message; use for violated internal invariants. */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    std::fprintf(stderr, "panic: %s\n",
                 detail::concat(std::forward<Args>(args)...).c_str());
    std::abort();
}

/** Exit with a message; use for user/configuration errors. */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    std::fprintf(stderr, "fatal: %s\n",
                 detail::concat(std::forward<Args>(args)...).c_str());
    std::exit(1);
}

/** Non-fatal warning. */
template <typename... Args>
void
warn(Args&&... args)
{
    std::fprintf(stderr, "warn: %s\n",
                 detail::concat(std::forward<Args>(args)...).c_str());
}

/** Status output. */
template <typename... Args>
void
inform(Args&&... args)
{
    std::fprintf(stdout, "info: %s\n",
                 detail::concat(std::forward<Args>(args)...).c_str());
}

} // namespace crnet

#endif // CRNET_SIM_LOG_HH
