/**
 * @file
 * Error reporting helpers in the gem5 tradition.
 *
 * panic()  — an internal invariant of the simulator was violated; this is
 *            a crnet bug. Aborts (so a debugger/core dump is useful).
 * fatal()  — the simulation cannot continue because of a user error (bad
 *            configuration, impossible parameter combination). Exits(1).
 * warn()   — something is suspicious but the simulation can proceed.
 * inform() — plain status output.
 *
 * warn() and inform() are thread-safe: the message is formatted
 * first, then written under a process-wide mutex, so concurrent
 * parallel-engine jobs never interleave mid-line. When a job runs
 * under a LogRunScope (the parallel engine installs one per run),
 * messages are prefixed with "[run N]" so output from jobs=N batches
 * can be attributed.
 */

#ifndef CRNET_SIM_LOG_HH
#define CRNET_SIM_LOG_HH

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <string>
#include <utility>

#include "src/core/annotations.hh"

namespace crnet {

namespace detail {

/** Stream-concatenate all arguments into one string. */
template <typename... Args>
CRNET_ALLOW("alloc",
            "diagnostic message formatting: runs only on "
            "warn/inform/panic/fatal paths, never in steady state")
std::string
concat(Args&&... args)
{
    std::ostringstream os;
    // Comma fold keeps an empty pack well-formed (a plain `<<` fold
    // over zero arguments is just `os`, which -Wunused-value flags).
    ((void)(os << std::forward<Args>(args)), ...);
    return os.str();
}

/** Process-wide mutex serializing warn()/inform() writes. */
CRNET_ALLOW("global-state",
            "registered singleton: the process-wide log mutex; "
            "synchronization only, never read into results")
inline std::mutex&
logMutex()
{
    static std::mutex m;
    return m;
}

/** Current run id of this thread, or -1 outside any LogRunScope. */
CRNET_ALLOW("global-state",
            "registered singleton: per-thread run-id tag for log "
            "prefixes; diagnostic output only, never read into results")
inline std::int64_t&
logRunId()
{
    thread_local std::int64_t id = -1;
    return id;
}

/** "[run N] " when a run scope is active, "" otherwise. */
CRNET_ALLOW("alloc",
            "diagnostic message formatting: runs only on "
            "warn/inform paths, never in steady state")
inline std::string
logPrefix()
{
    const std::int64_t id = logRunId();
    if (id < 0)
        return "";
    return "[run " + std::to_string(id) + "] ";
}

} // namespace detail

/**
 * RAII tag marking this thread as executing batch run `id`; warn()
 * and inform() prefix their messages with it. The parallel engine
 * wraps every job in one. Scopes nest (restore on destruction).
 */
class LogRunScope
{
  public:
    explicit LogRunScope(std::int64_t id)
        : prev_(detail::logRunId())
    {
        detail::logRunId() = id;
    }
    ~LogRunScope() { detail::logRunId() = prev_; }

    LogRunScope(const LogRunScope&) = delete;
    LogRunScope& operator=(const LogRunScope&) = delete;

  private:
    std::int64_t prev_;
};

/** Abort with a message; use for violated internal invariants. */
template <typename... Args>
[[noreturn]] void
panic(Args&&... args)
{
    std::fprintf(stderr, "panic: %s\n",
                 detail::concat(std::forward<Args>(args)...).c_str());
    std::abort();
}

/** Exit with a message; use for user/configuration errors. */
template <typename... Args>
[[noreturn]] void
fatal(Args&&... args)
{
    std::fprintf(stderr, "fatal: %s\n",
                 detail::concat(std::forward<Args>(args)...).c_str());
    std::exit(1);
}

/** Non-fatal warning (thread-safe). */
template <typename... Args>
void
warn(Args&&... args)
{
    const std::string msg =
        detail::concat(std::forward<Args>(args)...);
    const std::string prefix = detail::logPrefix();
    std::lock_guard<std::mutex> lock(detail::logMutex());
    std::fprintf(stderr, "warn: %s%s\n", prefix.c_str(), msg.c_str());
}

/** Status output (thread-safe). */
template <typename... Args>
void
inform(Args&&... args)
{
    const std::string msg =
        detail::concat(std::forward<Args>(args)...);
    const std::string prefix = detail::logPrefix();
    std::lock_guard<std::mutex> lock(detail::logMutex());
    std::fprintf(stdout, "info: %s%s\n", prefix.c_str(), msg.c_str());
}

} // namespace crnet

#endif // CRNET_SIM_LOG_HH
