#include "src/sim/config.hh"

#include <cstdlib>
#include <sstream>

#include "src/sim/log.hh"

namespace crnet {

namespace {

std::uint64_t
parseU64(const std::string& key, const std::string& value)
{
    char* end = nullptr;
    const auto v = std::strtoull(value.c_str(), &end, 10);
    if (end == value.c_str() || *end != '\0')
        fatal("config key '", key, "': expected integer, got '", value,
              "'");
    return v;
}

double
parseF64(const std::string& key, const std::string& value)
{
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0')
        fatal("config key '", key, "': expected number, got '", value,
              "'");
    return v;
}

} // namespace

std::uint64_t
SimConfig::numNodes() const
{
    std::uint64_t n = 1;
    for (std::uint32_t d = 0; d < dimensionsN; ++d)
        n *= radixK;
    return n;
}

bool
SimConfig::hasDynamicFaults() const
{
    return dynamicLinkKills > 0 || dynamicDirectedKills > 0 ||
           dynamicRouterKills > 0 || burstLen > 0 ||
           !faultScenario.empty();
}

void
SimConfig::validate() const
{
    if (radixK < 2)
        fatal("radixK must be >= 2 (got ", radixK, ")");
    if (dimensionsN < 1 || dimensionsN > 8)
        fatal("dimensionsN must be in [1, 8] (got ", dimensionsN, ")");
    if (numVcs < 1)
        fatal("numVcs must be >= 1");
    if (bufferDepth < 1)
        fatal("bufferDepth must be >= 1");
    if (injectionChannels < 1 || ejectionChannels < 1)
        fatal("injection/ejection channels must be >= 1");
    if (channelLatency < 1 || channelLatency > 64)
        fatal("channelLatency must be in [1, 64]");
    if (messageLength < 2)
        fatal("messageLength must be >= 2 (head + tail)");
    if (bimodalFracB > 0.0 && messageLengthB < 2)
        fatal("bimodal traffic needs messageLengthB >= 2");
    if (injectionRate < 0.0 || injectionRate > 1.0 * injectionChannels)
        fatal("injectionRate must be in [0, injectionChannels]");
    if (transientFaultRate < 0.0 || transientFaultRate > 1.0)
        fatal("transientFaultRate must be in [0, 1]");
    if (burstRate < 0.0 || burstRate > 1.0)
        fatal("burstRate must be in [0, 1]");
    if (faultWindowEnd != 0 && faultWindowEnd <= faultWindowStart)
        fatal("fault window must end after it starts");
    if (protocol == ProtocolKind::None &&
        (dynamicLinkKills > 0 || dynamicDirectedKills > 0 ||
         dynamicRouterKills > 0 || !faultScenario.empty())) {
        fatal("dynamic link/router faults need a recovery protocol "
              "(cr or fcr); plain wormhole cannot reclaim a worm "
              "stranded on a dead link");
    }

    const bool mesh_only = routing == RoutingKind::WestFirst ||
                           routing == RoutingKind::NegativeFirst ||
                           routing == RoutingKind::PlanarAdaptive;
    if (mesh_only && topology != TopologyKind::Mesh)
        fatal("turn-model/planar-adaptive routing (", toString(routing),
              ") is deadlock-free only on meshes");
    if (routing == RoutingKind::PlanarAdaptive && numVcs < 3)
        fatal("planar-adaptive routing needs >= 3 VCs");

    if (routing == RoutingKind::DimensionOrder &&
        topology == TopologyKind::Torus && numVcs < 2 &&
        protocol == ProtocolKind::None) {
        fatal("DOR on a torus without CR needs >= 2 virtual channels "
              "(dateline classes) for deadlock freedom");
    }
    if (routing == RoutingKind::Duato) {
        const std::uint32_t escapes =
            topology == TopologyKind::Torus ? 2 : 1;
        if (numVcs < escapes + 1)
            fatal("Duato routing needs >= ", escapes + 1,
                  " VCs on this topology (escape + adaptive)");
    }
    if (protocol == ProtocolKind::Fcr && transientFaultRate > 0.0 &&
        timeout == 0) {
        fatal("FCR with faults requires a non-zero timeout");
    }
    if (auditInterval < 1)
        fatal("auditInterval must be >= 1");
    if (jobs > 1024)
        fatal("jobs must be in [0, 1024] (got ", jobs, ")");
    if (shards > 1024)
        fatal("shards must be in [0, 1024] (got ", shards, ")");
    if (statusEverySeconds < 0.0)
        fatal("statusEverySeconds must be >= 0 (got ",
              statusEverySeconds, ")");
}

SimConfig&
SimConfig::set(const std::string& key, const std::string& value)
{
    if (key == "topology") topology = topologyFromString(value);
    else if (key == "k") radixK = static_cast<std::uint32_t>(
        parseU64(key, value));
    else if (key == "n") dimensionsN = static_cast<std::uint32_t>(
        parseU64(key, value));
    else if (key == "vcs") numVcs = static_cast<std::uint32_t>(
        parseU64(key, value));
    else if (key == "buffer_depth") bufferDepth =
        static_cast<std::uint32_t>(parseU64(key, value));
    else if (key == "injection_channels") injectionChannels =
        static_cast<std::uint32_t>(parseU64(key, value));
    else if (key == "ejection_channels") ejectionChannels =
        static_cast<std::uint32_t>(parseU64(key, value));
    else if (key == "channel_latency") channelLatency =
        static_cast<std::uint32_t>(parseU64(key, value));
    else if (key == "routing") routing = routingFromString(value);
    else if (key == "protocol") protocol = protocolFromString(value);
    else if (key == "timeout_scheme") timeoutScheme =
        timeoutSchemeFromString(value);
    else if (key == "timeout") timeout = parseU64(key, value);
    else if (key == "backoff") backoff = backoffFromString(value);
    else if (key == "backoff_gap") backoffGap = parseU64(key, value);
    else if (key == "backoff_cap") backoffCap = parseU64(key, value);
    else if (key == "misroute_after_retries") misrouteAfterRetries =
        static_cast<std::uint32_t>(parseU64(key, value));
    else if (key == "misroute_budget") misrouteBudget =
        static_cast<std::uint32_t>(parseU64(key, value));
    else if (key == "max_retries") maxRetries =
        static_cast<std::uint32_t>(parseU64(key, value));
    else if (key == "enforce_dest_order") enforceDestOrder =
        parseU64(key, value) != 0;
    else if (key == "pad_slack") padSlack =
        static_cast<std::uint32_t>(parseU64(key, value));
    else if (key == "pattern") pattern = patternFromString(value);
    else if (key == "load") injectionRate = parseF64(key, value);
    else if (key == "msg_len") messageLength =
        static_cast<std::uint32_t>(parseU64(key, value));
    else if (key == "msg_len_b") messageLengthB =
        static_cast<std::uint32_t>(parseU64(key, value));
    else if (key == "bimodal_frac_b") bimodalFracB = parseF64(key, value);
    else if (key == "hotspot_fraction") hotspotFraction =
        parseF64(key, value);
    else if (key == "max_pending") maxPendingPerNode =
        static_cast<std::uint32_t>(parseU64(key, value));
    else if (key == "fault_rate") transientFaultRate =
        parseF64(key, value);
    else if (key == "permanent_faults") permanentLinkFaults =
        static_cast<std::uint32_t>(parseU64(key, value));
    else if (key == "dyn_link_kills") dynamicLinkKills =
        static_cast<std::uint32_t>(parseU64(key, value));
    else if (key == "dyn_directed_kills") dynamicDirectedKills =
        static_cast<std::uint32_t>(parseU64(key, value));
    else if (key == "dyn_router_kills") dynamicRouterKills =
        static_cast<std::uint32_t>(parseU64(key, value));
    else if (key == "fault_window_start") faultWindowStart =
        parseU64(key, value);
    else if (key == "fault_window_end") faultWindowEnd =
        parseU64(key, value);
    else if (key == "link_repair_after") linkRepairAfter =
        parseU64(key, value);
    else if (key == "burst_start") burstStart = parseU64(key, value);
    else if (key == "burst_len") burstLen = parseU64(key, value);
    else if (key == "burst_rate") burstRate = parseF64(key, value);
    else if (key == "fault_scenario") faultScenario = value;
    else if (key == "trace") traceFile = value;
    else if (key == "watch") watchSpec = value;
    else if (key == "sample_interval") sampleInterval =
        parseU64(key, value);
    else if (key == "heatmap") heatmapEnabled =
        parseU64(key, value) != 0;
    else if (key == "status") statusFile = value;
    else if (key == "status_interval") statusEverySeconds =
        parseF64(key, value);
    else if (key == "profile") profileEnabled =
        parseU64(key, value) != 0;
    else if (key == "jobs") jobs =
        static_cast<std::uint32_t>(parseU64(key, value));
    else if (key == "shards") shards =
        static_cast<std::uint32_t>(parseU64(key, value));
    else if (key == "sched") sched = schedulerFromString(value);
    else if (key == "seed") seed = parseU64(key, value);
    else if (key == "warmup") warmupCycles = parseU64(key, value);
    else if (key == "measure") measureCycles = parseU64(key, value);
    else if (key == "drain") drainCycles = parseU64(key, value);
    else if (key == "deadlock_threshold") deadlockThreshold =
        parseU64(key, value);
    else if (key == "audit_interval") auditInterval =
        parseU64(key, value);
    else
        fatal("unknown config key '", key, "'");
    return *this;
}

SimConfig&
SimConfig::applyArgs(int argc, char** argv)
{
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        if (eq == std::string::npos)
            fatal("expected key=value argument, got '", arg, "'");
        set(arg.substr(0, eq), arg.substr(eq + 1));
    }
    return *this;
}

std::string
SimConfig::summary() const
{
    std::ostringstream os;
    os << radixK << "-ary " << dimensionsN << "-cube "
       << toString(topology) << ", " << toString(routing) << "/"
       << toString(protocol) << ", vcs=" << numVcs << " depth="
       << bufferDepth << ", load=" << injectionRate << " len="
       << messageLength << ", pattern=" << toString(pattern);
    return os.str();
}

std::string
toString(TopologyKind k)
{
    switch (k) {
      case TopologyKind::Torus: return "torus";
      case TopologyKind::Mesh: return "mesh";
    }
    panic("bad TopologyKind");
}

std::string
toString(RoutingKind k)
{
    switch (k) {
      case RoutingKind::DimensionOrder: return "dor";
      case RoutingKind::MinimalAdaptive: return "minimal_adaptive";
      case RoutingKind::Duato: return "duato";
      case RoutingKind::WestFirst: return "west_first";
      case RoutingKind::NegativeFirst: return "negative_first";
      case RoutingKind::PlanarAdaptive: return "planar_adaptive";
    }
    panic("bad RoutingKind");
}

std::string
toString(ProtocolKind k)
{
    switch (k) {
      case ProtocolKind::None: return "none";
      case ProtocolKind::Cr: return "cr";
      case ProtocolKind::Fcr: return "fcr";
    }
    panic("bad ProtocolKind");
}

std::string
toString(TimeoutScheme k)
{
    switch (k) {
      case TimeoutScheme::SourceStall: return "source_stall";
      case TimeoutScheme::SourceImin: return "source_imin";
      case TimeoutScheme::PathWide: return "path_wide";
      case TimeoutScheme::DropAtBlock: return "drop_at_block";
    }
    panic("bad TimeoutScheme");
}

std::string
toString(BackoffScheme k)
{
    switch (k) {
      case BackoffScheme::Static: return "static";
      case BackoffScheme::Exponential: return "exponential";
    }
    panic("bad BackoffScheme");
}

std::string
toString(TrafficPattern k)
{
    switch (k) {
      case TrafficPattern::Uniform: return "uniform";
      case TrafficPattern::BitComplement: return "bit_complement";
      case TrafficPattern::Transpose: return "transpose";
      case TrafficPattern::BitReversal: return "bit_reversal";
      case TrafficPattern::Hotspot: return "hotspot";
      case TrafficPattern::Neighbor: return "neighbor";
      case TrafficPattern::Tornado: return "tornado";
    }
    panic("bad TrafficPattern");
}

std::string
toString(SchedulerKind k)
{
    switch (k) {
      case SchedulerKind::Sweep: return "sweep";
      case SchedulerKind::Active: return "active";
      case SchedulerKind::Event: return "event";
    }
    panic("bad SchedulerKind");
}

TopologyKind
topologyFromString(const std::string& s)
{
    if (s == "torus") return TopologyKind::Torus;
    if (s == "mesh") return TopologyKind::Mesh;
    fatal("unknown topology '", s, "'");
}

RoutingKind
routingFromString(const std::string& s)
{
    if (s == "dor") return RoutingKind::DimensionOrder;
    if (s == "minimal_adaptive") return RoutingKind::MinimalAdaptive;
    if (s == "duato") return RoutingKind::Duato;
    if (s == "west_first") return RoutingKind::WestFirst;
    if (s == "negative_first") return RoutingKind::NegativeFirst;
    if (s == "planar_adaptive") return RoutingKind::PlanarAdaptive;
    fatal("unknown routing '", s, "'");
}

ProtocolKind
protocolFromString(const std::string& s)
{
    if (s == "none") return ProtocolKind::None;
    if (s == "cr") return ProtocolKind::Cr;
    if (s == "fcr") return ProtocolKind::Fcr;
    fatal("unknown protocol '", s, "'");
}

TimeoutScheme
timeoutSchemeFromString(const std::string& s)
{
    if (s == "source_stall") return TimeoutScheme::SourceStall;
    if (s == "source_imin") return TimeoutScheme::SourceImin;
    if (s == "path_wide") return TimeoutScheme::PathWide;
    if (s == "drop_at_block") return TimeoutScheme::DropAtBlock;
    fatal("unknown timeout scheme '", s, "'");
}

BackoffScheme
backoffFromString(const std::string& s)
{
    if (s == "static") return BackoffScheme::Static;
    if (s == "exponential") return BackoffScheme::Exponential;
    fatal("unknown backoff scheme '", s, "'");
}

SchedulerKind
schedulerFromString(const std::string& s)
{
    if (s == "sweep") return SchedulerKind::Sweep;
    if (s == "active") return SchedulerKind::Active;
    if (s == "event") return SchedulerKind::Event;
    fatal("unknown scheduler '", s, "'");
}

TrafficPattern
patternFromString(const std::string& s)
{
    if (s == "uniform") return TrafficPattern::Uniform;
    if (s == "bit_complement") return TrafficPattern::BitComplement;
    if (s == "transpose") return TrafficPattern::Transpose;
    if (s == "bit_reversal") return TrafficPattern::BitReversal;
    if (s == "hotspot") return TrafficPattern::Hotspot;
    if (s == "neighbor") return TrafficPattern::Neighbor;
    if (s == "tornado") return TrafficPattern::Tornado;
    fatal("unknown traffic pattern '", s, "'");
}

} // namespace crnet
