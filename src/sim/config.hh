/**
 * @file
 * Simulation configuration: one plain struct that fully describes a
 * network experiment, plus string-based overrides for CLI tools.
 *
 * Every example and benchmark builds a SimConfig, optionally applies
 * `key=value` overrides from the command line, validates it, and hands
 * it to Network / ExperimentRunner.
 */

#ifndef CRNET_SIM_CONFIG_HH
#define CRNET_SIM_CONFIG_HH

#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/types.hh"

namespace crnet {

/** Network topology family. */
enum class TopologyKind { Torus, Mesh };

/** Routing algorithm selection. */
enum class RoutingKind {
    DimensionOrder,    //!< Deterministic DOR; dateline VCs on tori.
    MinimalAdaptive,   //!< Fully adaptive minimal (CR's routing relation).
    Duato,             //!< Adaptive VCs + DOR escape VCs (baseline, PDS).
    WestFirst,         //!< Turn-model routing (mesh only).
    NegativeFirst,     //!< Turn-model routing (mesh only).
    PlanarAdaptive     //!< Chien/Kim planar-adaptive (2D mesh, 3 VCs).
};

/** End-to-end protocol run by the network interfaces. */
enum class ProtocolKind {
    None,  //!< Plain wormhole; relies on the routing algorithm alone.
    Cr,    //!< Compressionless Routing: pad + timeout + kill + retry.
    Fcr    //!< Fault-tolerant CR: round-trip pad + checksums + kills.
};

/** How a potential deadlock situation is detected. */
enum class TimeoutScheme {
    SourceStall,  //!< Kill after `timeout` consecutive stalled cycles.
    SourceImin,   //!< Kill when injected flits fall behind I_min(t).
    PathWide,     //!< Kill when any router on the path stalls too long
                  //!< (the paper's inferior alternative, Sec. 7).
    DropAtBlock   //!< BBN-Butterfly/abort-and-retry style (the
                  //!< related work of Sec. 8): a router drops a worm
                  //!< whose *header* has been blocked `timeout`
                  //!< cycles, rejecting back to the source.
};

/** Retransmission gap policy after a kill. */
enum class BackoffScheme {
    Static,      //!< Fixed gap of `backoffGap` cycles.
    Exponential  //!< Binary exponential backoff (dynamic scheme).
};

/**
 * Component-scheduling strategy of the cycle loop (see
 * docs/PERFORMANCE.md). All three produce bit-identical results;
 * `sweep` exists as the A/B reference for the equivalence suite.
 */
enum class SchedulerKind {
    Sweep,   //!< Tick every injector/router/receiver every cycle.
    Active,  //!< Tick only components with work or a due deadline.
    Event    //!< Active, plus skip-ahead over globally quiet spans.
};

/** Synthetic traffic spatial patterns. */
enum class TrafficPattern {
    Uniform,
    BitComplement,
    Transpose,
    BitReversal,
    Hotspot,
    Neighbor,
    Tornado  //!< k/2-1 offset along dimension 0: the classic
             //!< adversarial torus pattern for deterministic routing.
};

/** Complete description of one simulated network + workload. */
struct SimConfig
{
    // --- Topology -------------------------------------------------
    TopologyKind topology = TopologyKind::Torus;
    std::uint32_t radixK = 16;      //!< Nodes per dimension.
    std::uint32_t dimensionsN = 2;  //!< Number of dimensions.

    // --- Router ---------------------------------------------------
    std::uint32_t numVcs = 1;        //!< Virtual channels per physical.
    std::uint32_t bufferDepth = 2;   //!< Flits of buffering per VC.
    std::uint32_t injectionChannels = 1;  //!< Parallel source channels.
    std::uint32_t ejectionChannels = 1;   //!< Parallel sink channels.
    /**
     * Cycles a flit (and, symmetrically, a returning credit or kill
     * hop) spends on a router-to-router channel — the paper's "deep
     * networks" knob (long physical wires). NIC channels stay at 1.
     */
    std::uint32_t channelLatency = 1;

    // --- Routing / protocol ----------------------------------------
    RoutingKind routing = RoutingKind::MinimalAdaptive;
    ProtocolKind protocol = ProtocolKind::Cr;
    TimeoutScheme timeoutScheme = TimeoutScheme::SourceStall;
    Cycle timeout = 32;              //!< Stall cycles before a kill.
    BackoffScheme backoff = BackoffScheme::Exponential;
    Cycle backoffGap = 16;           //!< Gap for Static; base for Exp.
    Cycle backoffCap = 1024;         //!< Max exponential gap.
    std::uint32_t misrouteAfterRetries = 0;  //!< 0 = never misroute.
    std::uint32_t misrouteBudget = 4;  //!< Non-minimal hops per attempt.
    std::uint32_t maxRetries = 0;    //!< Drop after this many kills;
                                     //!< 0 = retry forever.
    /**
     * Hold back a message while an earlier message to the same
     * destination is unfinished (preserves per-(src,dst) order even
     * with several worms in flight). Disable to measure what the
     * ordering guarantee costs — receivers then count violations.
     */
    bool enforceDestOrder = true;
    std::uint32_t padSlack = 2;      //!< Extra pad flits beyond depth.

    // --- Traffic ----------------------------------------------------
    TrafficPattern pattern = TrafficPattern::Uniform;
    double injectionRate = 0.1;      //!< Flits/node/cycle offered.
    std::uint32_t messageLength = 16;   //!< Payload flits (incl. head).
    std::uint32_t messageLengthB = 0;   //!< Second mode (bimodal); 0=off.
    double bimodalFracB = 0.0;       //!< Fraction of B-length messages.
    double hotspotFraction = 0.2;    //!< Extra traffic share to hotspot.
    std::uint32_t maxPendingPerNode = 64;  //!< Source queue bound.

    // --- Faults -----------------------------------------------------
    double transientFaultRate = 0.0;  //!< P(corrupt) per flit-hop.
    std::uint32_t permanentLinkFaults = 0;  //!< Dead links at t=0.

    // --- Dynamic faults (FaultSchedule; fired mid-simulation) -------
    std::uint32_t dynamicLinkKills = 0;  //!< Random bidirectional
                                         //!< link deaths.
    std::uint32_t dynamicDirectedKills = 0;  //!< Random one-way
                                             //!< link deaths.
    std::uint32_t dynamicRouterKills = 0;  //!< Random fail-stop
                                           //!< routers.
    /**
     * Window the stochastic fault cycles are drawn from. end = 0
     * means "the measurement phase": [warmup, warmup + measure).
     */
    Cycle faultWindowStart = 0;
    Cycle faultWindowEnd = 0;
    Cycle linkRepairAfter = 0;  //!< Revive each killed link this many
                                //!< cycles after its death; 0 = never.
    Cycle burstStart = 0;       //!< Burst window start (0 = window
                                //!< start).
    Cycle burstLen = 0;         //!< Burst window length; 0 = no burst.
    double burstRate = 0.0;     //!< P(corrupt) during the burst.
    std::string faultScenario;  //!< Scenario file path ("" = none).

    /** True when any dynamic-fault machinery must be armed. */
    bool hasDynamicFaults() const;

    // --- Observability (see docs/OBSERVABILITY.md) ------------------
    /**
     * Worm-event trace output prefix; the tracer writes
     * `<prefix>.jsonl` and `<prefix>.json` (Chrome trace-event
     * format). "" = disabled, unless the CRNET_TRACE environment
     * variable enables it ("1" = default prefix, other values name
     * the prefix). Batch engines suffix `_run<i>` per run.
     */
    std::string traceFile;
    /**
     * Trace watch list: comma-separated message ids and/or
     * `<src>-<dst>` node pairs; "" records every event.
     */
    std::string watchSpec;
    /**
     * Cycles between time-series samples (throughput, latency, kills,
     * fault events, in-flight worms). 0 = no time series.
     */
    Cycle sampleInterval = 0;
    /**
     * Collect per-router/per-channel heat counters (occupancy
     * integral, blocked cycles, forwarded flits) into
     * RunResult::heatmap.
     */
    bool heatmapEnabled = false;
    /**
     * Live status file (src/sim/telemetry.hh): the campaign / sweep
     * engines atomically rewrite this JSON every `statusEverySeconds`
     * wall-seconds with progress, ETA and recent fault events;
     * tools/crnet_top.py tails it. "" = disabled. Like traceFile,
     * excluded from configFingerprint and byte-identical on/off.
     */
    std::string statusFile;
    /** Min wall-seconds between status rewrites (0 = every update). */
    double statusEverySeconds = 2.0;
    /**
     * Attach the per-run self-profiler (src/sim/telemetry.hh):
     * attributes wall time to warmup/measure/drain and tick sub-phases
     * into RunResult::profile / CampaignSummary::profile and the
     * `profile:` bench footer. Off the results path; <2% overhead.
     */
    bool profileEnabled = false;

    // --- Experiment ---------------------------------------------------
    /**
     * Cycle-loop scheduler. Active (the default) skips idle
     * components and is bit-identical to Sweep at every setting;
     * `sched=event` additionally advances the clock straight to the
     * next pending deadline whenever the whole network is quiet; the
     * `sched=sweep` override re-enables the exhaustive per-node sweep
     * for A/B identity testing and perf comparison.
     */
    SchedulerKind sched = SchedulerKind::Active;
    std::uint64_t seed = 1;
    /**
     * Worker threads for the batch engines (`runMany`/`sweepLoads`,
     * `runReplicated`, `runCampaign`). 0 = resolve from the
     * CRNET_JOBS environment variable, falling back to 1
     * (sequential). Results are bit-identical at every setting: each
     * run owns its Network and seeded Rng, and collection is
     * submission-ordered (see src/sim/parallel.hh).
     */
    std::uint32_t jobs = 0;
    /**
     * Intra-run network shards: the node array of *one* Network is
     * ticked by this many ThreadPool workers per cycle, with boundary
     * flit/credit traffic exchanged deterministically through the
     * staged delivery waves (the >= 1-cycle channel latency is the
     * synchronization slack window; see docs/PERFORMANCE.md). 0 =
     * resolve from the CRNET_SHARDS environment variable, falling
     * back to 1 (unsharded). Results are bit-identical at every
     * setting, and like `jobs`/`sched` the value is excluded from
     * configFingerprint, so snapshots restore across shard counts.
     */
    std::uint32_t shards = 0;
    Cycle warmupCycles = 2000;
    Cycle measureCycles = 10000;
    Cycle drainCycles = 100000;       //!< Cap on the drain phase.
    Cycle deadlockThreshold = 20000;  //!< Network-idle watchdog.
    /**
     * Cycles between invariant-audit sweeps (flit conservation and
     * credit-ledger checks) when the CRNET_AUDIT build option is on.
     * Per-flit framing checks always run every event. 1 = sweep every
     * cycle (tests); larger values amortize the sweep cost.
     */
    Cycle auditInterval = 64;

    /** Total nodes in the configured topology. */
    std::uint64_t numNodes() const;

    /**
     * Validate the configuration; calls fatal() with a diagnostic on
     * any unusable combination (e.g. turn-model routing on a torus,
     * CR protocol with a non-adaptive routing relation is allowed but
     * protocol None with adaptive routing on a torus is flagged by
     * the deadlock watchdog at run time, not here).
     */
    void validate() const;

    /**
     * Apply a `key=value` override (CLI syntax). Unknown keys are
     * fatal. Returns *this for chaining.
     */
    SimConfig& set(const std::string& key, const std::string& value);

    /** Apply argv-style overrides (each element `key=value`). */
    SimConfig& applyArgs(int argc, char** argv);

    /** Human-readable one-line summary. */
    std::string summary() const;
};

/** Enum <-> string conversions (fatal on unknown names). */
std::string toString(TopologyKind k);
std::string toString(RoutingKind k);
std::string toString(ProtocolKind k);
std::string toString(TimeoutScheme k);
std::string toString(BackoffScheme k);
std::string toString(TrafficPattern k);
std::string toString(SchedulerKind k);

TopologyKind topologyFromString(const std::string& s);
RoutingKind routingFromString(const std::string& s);
ProtocolKind protocolFromString(const std::string& s);
TimeoutScheme timeoutSchemeFromString(const std::string& s);
BackoffScheme backoffFromString(const std::string& s);
TrafficPattern patternFromString(const std::string& s);
SchedulerKind schedulerFromString(const std::string& s);

} // namespace crnet

#endif // CRNET_SIM_CONFIG_HH
