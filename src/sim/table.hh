/**
 * @file
 * Aligned-text and CSV table output for benchmark harnesses.
 *
 * Every bench binary prints its results through Table so the rows that
 * regenerate the paper's figures/tables all look the same and can be
 * post-processed (CSV) identically.
 */

#ifndef CRNET_SIM_TABLE_HH
#define CRNET_SIM_TABLE_HH

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

namespace crnet {

/** A simple column-aligned results table. */
class Table
{
  public:
    /** @param title Caption printed above the table. */
    explicit Table(std::string title);

    /** Define the column headers (must be set before rows). */
    void setHeader(std::vector<std::string> columns);

    /** Append a row; must match the header width. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with fixed precision for a cell. */
    static std::string cell(double v, int precision = 2);
    /** Format an integer cell. */
    static std::string cell(std::uint64_t v);

    /** Print as aligned text. */
    void print(std::ostream& os) const;

    /** Print as CSV (header + rows, comma separated). */
    void printCsv(std::ostream& os) const;

    std::size_t numRows() const { return rows_.size(); }
    const std::string& title() const { return title_; }

  private:
    std::string title_;
    std::vector<std::string> header_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace crnet

#endif // CRNET_SIM_TABLE_HH
