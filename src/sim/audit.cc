#include "src/sim/audit.hh"

#include <algorithm>

#include "src/nic/padding.hh"
#include "src/sim/log.hh"
#include "src/sim/snapshot.hh"
#include "src/topology/topology.hh"

namespace crnet {

namespace {

const char*
kindName(AuditEdgeKind k)
{
    switch (k) {
      case AuditEdgeKind::Network:
        return "network";
      case AuditEdgeKind::Injection:
        return "injection";
      case AuditEdgeKind::Ejection:
        return "ejection";
    }
    return "?";
}

} // namespace

CRNET_ALLOW("global-state",
            "per-thread staging pointer for the sharded tick: set and "
            "cleared by the owning worker only, null everywhere else; "
            "every staged delta is folded deterministically")
thread_local Auditor::ShardStage* Auditor::tlsStage_ = nullptr;

void
Auditor::setThreadStage(ShardStage* stage)
{
    tlsStage_ = stage;
}

void
Auditor::foldStage(ShardStage& stage)
{
    injected_ += stage.injected;
    consumed_ += stage.consumed;
    purged_ += stage.purged;
    // The kill registry is a set, so insertion order is immaterial;
    // saveState sorts before serialization anyway.
    for (const std::uint64_t key : stage.kills)
        issuedKills_.insert(key);
    stage.injected = 0;
    stage.consumed = 0;
    stage.purged = 0;
    stage.kills.clear();
}

Auditor::Auditor(const SimConfig& cfg, const Topology& topo)
    : cfg_(cfg), topo_(topo),
      portsPerRouter_(2 * cfg.dimensionsN + cfg.injectionChannels)
{
    const std::size_t n = topo.numNodes();
    routerChannels_.resize(n * portsPerRouter_ * cfg.numVcs);
    ejectionChannels_.resize(n * cfg.ejectionChannels * cfg.numVcs);
}

Auditor::ChannelState&
Auditor::routerChannel(NodeId node, PortId port, VcId vc)
{
    if (port >= portsPerRouter_ || vc >= cfg_.numVcs)
        panic("audit: router channel out of range (node ", node,
              ", port ", port, ", vc ", vc, ")");
    return routerChannels_[(static_cast<std::size_t>(node) *
                                portsPerRouter_ +
                            port) *
                               cfg_.numVcs +
                           vc];
}

Auditor::ChannelState&
Auditor::ejectionChannel(NodeId node, std::uint32_t ch, VcId vc)
{
    if (ch >= cfg_.ejectionChannels || vc >= cfg_.numVcs)
        panic("audit: ejection channel out of range (node ", node,
              ", channel ", ch, ", vc ", vc, ")");
    return ejectionChannels_[(static_cast<std::size_t>(node) *
                                  cfg_.ejectionChannels +
                              ch) *
                                 cfg_.numVcs +
                             vc];
}

void
Auditor::onWormStart(NodeId src, NodeId dst, std::uint32_t wire_len,
                     std::uint32_t payload_len)
{
    if (wire_len < payload_len + 1) {
        panic("audit: worm ", src, "->", dst, " wire length ",
              wire_len, " cannot carry payload ", payload_len,
              " plus a tail");
    }
    const std::uint32_t capacity = pathFlitCapacity(
        topo_.distance(src, dst), cfg_.bufferDepth,
        cfg_.channelLatency);
    switch (cfg_.protocol) {
      case ProtocolKind::Cr:
        // Paper Sec. 2: while any flit remains at the source, a
        // blocked header must show as an injection stall, so the worm
        // must be at least one path capacity long.
        if (wire_len < capacity) {
            panic("audit: CR padding violation ", src, "->", dst,
                  ": wire length ", wire_len,
                  " < path flit capacity ", capacity, " at cycle ",
                  now_);
        }
        break;
      case ProtocolKind::Fcr:
        // Paper Sec. 5: round-trip padding — every payload flit must
        // be followed by a full network depth of pads.
        if (wire_len < payload_len + capacity) {
            panic("audit: FCR padding violation ", src, "->", dst,
                  ": wire length ", wire_len, " < payload ",
                  payload_len, " + path capacity ", capacity,
                  " at cycle ", now_);
        }
        break;
      case ProtocolKind::None:
        break;
    }
}

void
Auditor::onFlitInjected(NodeId node, const Flit& flit)
{
    if (!flit.isData())
        return;
    if (tlsStage_ != nullptr)
        ++tlsStage_->injected;
    else
        ++injected_;
    if (flit.createdAt > flit.headInjectedAt) {
        panic("audit: flit of msg ", flit.msg, " injected at node ",
              node, " before its message was created (created ",
              flit.createdAt, ", head injected ", flit.headInjectedAt,
              ")");
    }
}

void
Auditor::checkFlit(ChannelState& ch, const Flit& flit,
                   const char* where, NodeId node, std::uint32_t port,
                   VcId vc)
{
    ++flitChecks_;

    if (flit.isKill()) {
        // A kill token may only chase the worm that actually holds or
        // held this channel (forward kills retrace their worm's path).
        // One exception: a kill can overrun its worm by a single hop
        // when the header it chases was purged from a buffer before
        // traversing the reserved channel — that channel then sees the
        // token but never saw the worm. Such a token is legal only if
        // its issuance was registered (onKillIssued or an upstream
        // channel match); a fabricated kill still panics.
        if (ch.msg != kInvalidMsg) {
            if (flit.msg != ch.msg) {
                panic("audit: kill token for msg ", flit.msg,
                      " arrived on ", where, " channel (node ", node,
                      ", port ", port, ", vc ", vc,
                      ") occupied by msg ", ch.msg, " at cycle ",
                      now_);
            }
        } else if (flit.msg != ch.purgedMsg &&
                   issuedKills_.count(
                       killKey(flit.msg, flit.attempt)) == 0) {
            panic("audit: kill token for msg ", flit.msg, " on idle ",
                  where, " channel (node ", node, ", port ", port,
                  ", vc ", vc, ") that never carried its worm",
                  " at cycle ", now_);
        }
        issuedKills_.insert(killKey(flit.msg, flit.attempt));
        ch.purgedMsg = flit.msg;
        ch.msg = kInvalidMsg;
        ch.nextSeq = 0;
        return;
    }

    // Timestamp sanity on every data flit.
    if (flit.createdAt > flit.headInjectedAt ||
        flit.headInjectedAt > now_) {
        panic("audit: non-monotonic timestamps on msg ", flit.msg,
              " seq ", flit.seq, " (created ", flit.createdAt,
              ", head injected ", flit.headInjectedAt, ", now ", now_,
              ") at node ", node);
    }

    if (flit.isHead()) {
        if (ch.msg != kInvalidMsg) {
            panic("audit: header of msg ", flit.msg,
                  " interleaved into active worm ", ch.msg, " on ",
                  where, " channel (node ", node, ", port ", port,
                  ", vc ", vc, ") at cycle ", now_);
        }
        if (flit.seq != 0) {
            panic("audit: header of msg ", flit.msg,
                  " carries seq ", flit.seq, " (must be 0)");
        }
        ch.msg = flit.msg;
        ch.attempt = flit.attempt;
        ch.nextSeq = 1;
        ch.payloadLen = flit.payloadLen;
        return;
    }

    if (ch.msg == kInvalidMsg) {
        // Only a straggler of the worm most recently purged here can
        // legally appear without its header.
        if (flit.msg != ch.purgedMsg) {
            panic("audit: ", where, " flit of msg ", flit.msg,
                  " seq ", flit.seq,
                  " without a header (node ", node, ", port ", port,
                  ", vc ", vc, ", last purged msg ", ch.purgedMsg,
                  ") at cycle ", now_);
        }
        return;
    }

    if (flit.msg != ch.msg || flit.attempt != ch.attempt) {
        panic("audit: interleaved worms on one ", where,
              " channel: msg ", flit.msg, " attempt ", flit.attempt,
              " vs msg ", ch.msg, " attempt ", ch.attempt,
              " (node ", node, ", port ", port, ", vc ", vc,
              ") at cycle ", now_);
    }
    if (flit.seq != ch.nextSeq) {
        panic("audit: sequence gap in msg ", flit.msg, " on ", where,
              " channel (node ", node, ", port ", port, ", vc ", vc,
              "): seq ", flit.seq, " expected ", ch.nextSeq,
              " at cycle ", now_);
    }
    ++ch.nextSeq;

    // Framing legality derived from the worm's own header metadata:
    // payload flits (head + body) occupy seq [0, payloadLen), pads and
    // the tail follow.
    switch (flit.type) {
      case FlitType::Body:
        if (flit.seq >= ch.payloadLen) {
            panic("audit: body flit past the payload (msg ", flit.msg,
                  ", seq ", flit.seq, ", payload ", ch.payloadLen,
                  ") at node ", node);
        }
        break;
      case FlitType::Pad:
      case FlitType::Tail:
        if (flit.seq < ch.payloadLen) {
            panic("audit: ", flit.isTail() ? "tail" : "pad",
                  " flit inside the payload (msg ", flit.msg,
                  ", seq ", flit.seq, ", payload ", ch.payloadLen,
                  ") at node ", node);
        }
        break;
      case FlitType::Head:
      case FlitType::Kill:
        break;  // Handled above.
    }

    if (flit.isTail()) {
        // Worm complete; the channel is free and no straggler of this
        // worm can legally follow its tail.
        ch.msg = kInvalidMsg;
        ch.purgedMsg = kInvalidMsg;
        ch.nextSeq = 0;
    }
}

void
Auditor::onChannelFlit(NodeId node, PortId in_port, VcId vc,
                       const Flit& flit)
{
    checkFlit(routerChannel(node, in_port, vc), flit, "router", node,
              in_port, vc);
}

void
Auditor::onEjectionFlit(NodeId node, std::uint32_t ej_channel,
                        VcId vc, const Flit& flit)
{
    checkFlit(ejectionChannel(node, ej_channel, vc), flit, "ejection",
              node, ej_channel, vc);
}

void
Auditor::onChannelReset(NodeId node, PortId in_port, VcId vc,
                        MsgId msg)
{
    ChannelState& ch = routerChannel(node, in_port, vc);
    if (ch.msg != kInvalidMsg && ch.msg != msg) {
        panic("audit: purge of msg ", msg, " on router channel (node ",
              node, ", port ", in_port, ", vc ", vc,
              ") occupied by msg ", ch.msg, " at cycle ", now_);
    }
    ch.purgedMsg = msg;
    ch.msg = kInvalidMsg;
    ch.nextSeq = 0;
}

void
Auditor::onFlitConsumed(NodeId node, const Flit& flit)
{
    if (tlsStage_ != nullptr)
        ++tlsStage_->consumed;
    else
        ++consumed_;
    if (flit.headInjectedAt > now_) {
        panic("audit: msg ", flit.msg, " flit consumed at node ", node,
              " before its injection cycle ", flit.headInjectedAt,
              " (now ", now_, ")");
    }
}

void
Auditor::sweep(const AuditSnapshot& snap)
{
    ++sweeps_;

    // Invariant 2 — flit conservation. Injected flits are either
    // still live (buffered or on a wire) or accounted for as consumed
    // or purged. A mismatch means a flit was dropped or duplicated.
    const std::uint64_t accounted =
        consumed_ + purged_ + snap.bufferedFlits + snap.inFlightFlits;
    if (accounted != injected_) {
        panic("audit: flit conservation violated at cycle ", snap.now,
              ": injected ", injected_, " != consumed ", consumed_,
              " + purged ", purged_, " + buffered ",
              snap.bufferedFlits, " + in flight ", snap.inFlightFlits);
    }

    // Invariant 3 — exact credit ledgers, per edge.
    for (const AuditEdge& e : snap.edges) {
        if (e.skip)
            continue;
        const std::uint64_t total =
            static_cast<std::uint64_t>(e.credits) + e.occupancy +
            e.inFlightFlits + e.inFlightCredits;
        if (total != cfg_.bufferDepth) {
            panic("audit: credit ledger broken on ", kindName(e.kind),
                  " edge into node ", e.node, " port ", e.port, " vc ",
                  e.vc, " at cycle ", snap.now, ": credits ",
                  e.credits, " + occupancy ", e.occupancy,
                  " + in-flight flits ", e.inFlightFlits,
                  " + in-flight credits ", e.inFlightCredits, " != ",
                  cfg_.bufferDepth);
        }
    }
}

CRNET_ALLOW("unordered-iter",
            "issued-kill registry is sorted before serialization so "
            "the snapshot bytes never depend on hash order")
void
Auditor::saveState(StateWriter& w) const
{
    for (const std::vector<ChannelState>* chans :
         {&routerChannels_, &ejectionChannels_}) {
        w.u64(chans->size());
        for (const ChannelState& ch : *chans) {
            w.u64(ch.msg);
            w.u16(ch.attempt);
            w.u32(ch.nextSeq);
            w.u32(ch.payloadLen);
            w.u64(ch.purgedMsg);
        }
    }
    std::vector<std::uint64_t> kills(issuedKills_.begin(),
                                     issuedKills_.end());
    std::sort(kills.begin(), kills.end());
    w.u64(kills.size());
    for (std::uint64_t key : kills)
        w.u64(key);
    w.u64(injected_);
    w.u64(consumed_);
    w.u64(purged_);
    w.u64(sweeps_);
    w.u64(flitChecks_);
    w.u64(now_);
}

void
Auditor::loadState(StateReader& r)
{
    for (std::vector<ChannelState>* chans :
         {&routerChannels_, &ejectionChannels_}) {
        const std::uint64_t n = r.u64();
        if (n != chans->size())
            panic("audit channel-mirror count mismatch on restore: "
                  "saved ", n, ", have ", chans->size());
        for (ChannelState& ch : *chans) {
            ch.msg = r.u64();
            ch.attempt = r.u16();
            ch.nextSeq = r.u32();
            ch.payloadLen = r.u32();
            ch.purgedMsg = r.u64();
        }
    }
    issuedKills_.clear();
    const std::uint64_t numKills = r.u64();
    for (std::uint64_t i = 0; i < numKills; ++i)
        issuedKills_.insert(r.u64());
    injected_ = r.u64();
    consumed_ = r.u64();
    purged_ = r.u64();
    sweeps_ = r.u64();
    flitChecks_ = r.u64();
    now_ = r.u64();
}

} // namespace crnet
