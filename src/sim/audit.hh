/**
 * @file
 * Invariant-audit engine: runtime verification of the CR/FCR protocol.
 *
 * The simulator's correctness argument rests on a handful of delicate
 * invariants (padding >= network depth, kills that tear down the whole
 * reserved path, exact credit ledgers). The Auditor checks them while
 * the simulation runs, so a protocol bug dies loudly — via panic() —
 * at the cycle it occurs instead of surfacing cycles later as a wedged
 * network or a silently wrong table.
 *
 * Checked invariants (see docs/CORRECTNESS.md for the paper mapping):
 *
 *  1. Worm framing per channel: Head(seq 0) -> Body* -> Pad* -> Tail,
 *     contiguous sequence numbers, one worm at a time, no flit after
 *     the tail, kill tokens only for the worm (or purged worm) that
 *     actually used the channel.
 *  2. Flit conservation: every data flit injected is, at all times,
 *     buffered somewhere, in flight on a channel register, consumed by
 *     a receiver, or purged by the kill machinery. Nothing leaks,
 *     nothing is double-counted.
 *  3. Credit-ledger exactness: for every (channel, VC) edge,
 *     upstream credits + downstream occupancy + in-flight flits +
 *     in-flight credits == bufferDepth, outside explicit kill
 *     quarantine windows.
 *  4. CR/FCR padding: a worm's wire length covers the flit capacity of
 *     its path (CR) or payload + round trip (FCR) — the precondition
 *     of the paper's no-acknowledgement commit rule.
 *  5. Timestamp sanity: createdAt <= headInjectedAt <= current cycle
 *     on every data flit.
 *
 * Cost model: the per-flit hooks are guarded by the CRNET_AUDIT_HOOK
 * macro, which compiles to nothing when the CRNET_AUDIT CMake option
 * is OFF — release builds pay zero cycles and zero branches. When ON,
 * framing/timestamp checks run per flit event and the global sweep
 * (conservation + ledgers) runs every SimConfig::auditInterval cycles.
 */

#ifndef CRNET_SIM_AUDIT_HH
#define CRNET_SIM_AUDIT_HH

#include <cstdint>
#include <unordered_set>
#include <vector>

#include "src/core/annotations.hh"
#include "src/router/flit.hh"
#include "src/sim/config.hh"
#include "src/sim/types.hh"

#ifndef CRNET_AUDIT_ENABLED
#define CRNET_AUDIT_ENABLED 0
#endif

/**
 * Invoke an Auditor hook through a possibly-null pointer. Expands to
 * nothing when auditing is compiled out, so hook sites in the hot path
 * cost nothing in production builds.
 */
#if CRNET_AUDIT_ENABLED
#define CRNET_AUDIT_HOOK(auditor, call)                                \
    do {                                                               \
        if ((auditor) != nullptr)                                      \
            (auditor)->call;                                           \
    } while (false)
#else
#define CRNET_AUDIT_HOOK(auditor, call)                                \
    do {                                                               \
    } while (false)
#endif

namespace crnet {

class Topology;
class StateWriter;
class StateReader;

/** What kind of channel an AuditEdge describes. */
enum class AuditEdgeKind : std::uint8_t {
    Network,   //!< Router-to-router link (downstream side named).
    Injection, //!< Injector -> local router channel.
    Ejection   //!< Router -> local receiver channel.
};

/** Credit-ledger snapshot of one (channel, VC) edge. */
struct AuditEdge
{
    AuditEdgeKind kind = AuditEdgeKind::Network;
    NodeId node = kInvalidNode;  //!< Downstream node (network) or NIC node.
    std::uint32_t port = 0;      //!< Downstream input port / channel index.
    VcId vc = 0;
    std::uint32_t credits = 0;         //!< Upstream credit counter.
    std::uint32_t occupancy = 0;       //!< Downstream buffer occupancy.
    std::uint32_t inFlightFlits = 0;   //!< Data flits on the wire.
    std::uint32_t inFlightCredits = 0; //!< Credits on the wire.
    /**
     * Ledger legitimately in flux: kill quarantine, injector cooldown,
     * or a kill/bkill/abort still in flight on this edge. Skipped.
     */
    bool skip = false;
};

/** Whole-network state summary consumed by Auditor::sweep(). */
struct AuditSnapshot
{
    Cycle now = 0;
    std::uint64_t bufferedFlits = 0; //!< Router + receiver buffers.
    std::uint64_t inFlightFlits = 0; //!< Data flits in channel registers.
    std::vector<AuditEdge> edges;
};

/**
 * The audit engine. One instance per Network; components report
 * events through the hooks and the Network feeds periodic snapshots
 * to sweep(). Any violated invariant panics with full context.
 */
class Auditor
{
  public:
    Auditor(const SimConfig& cfg, const Topology& topo);

    /** Called by the Network at the top of every tick. */
    void beginCycle(Cycle now) { now_ = now; }

    // --- Sharded-tick staging -----------------------------------------

    /**
     * Per-thread staging area for the sharded tick: hooks fired from
     * a shard worker accumulate their conservation deltas and issued
     * kills here instead of the shared members, and the Network folds
     * every stage serially after the barrier. The per-flit validity
     * checks still run inline on the worker (they read only the flit
     * and node-owned channel mirrors), so a violation dies at the
     * cycle it occurs exactly as in an unsharded run.
     */
    struct ShardStage
    {
        std::uint64_t injected = 0;
        std::uint64_t consumed = 0;
        std::uint64_t purged = 0;
        std::vector<std::uint64_t> kills;  //!< killKey(msg, attempt).
    };

    /** Install (or clear, with null) this thread's staging area. */
    static void setThreadStage(ShardStage* stage);

    /** Fold one stage into the shared ledgers and reset it. */
    CRNET_ALLOW("alloc",
                "audit-mode kill-token registry: one node per issued "
                "kill; compiled out of release builds (CRNET_AUDIT)")
    void foldStage(ShardStage& stage);

    // --- Worm lifecycle hooks ----------------------------------------

    /** A worm is about to transmit: validate its padding. */
    void onWormStart(NodeId src, NodeId dst, std::uint32_t wire_len,
                     std::uint32_t payload_len);

    /** A data flit entered an injection channel (conservation). */
    void onFlitInjected(NodeId node, const Flit& flit);

    /** A flit (data or kill) arrived at a router input VC. */
    void onChannelFlit(NodeId node, PortId in_port, VcId vc,
                       const Flit& flit);

    /** A flit (data or kill) arrived at a receiver ejection VC. */
    void onEjectionFlit(NodeId node, std::uint32_t ej_channel, VcId vc,
                        const Flit& flit);

    /** A router input VC was purged without a token (bkill/timeout). */
    void onChannelReset(NodeId node, PortId in_port, VcId vc,
                        MsgId msg);

    /**
     * A kill token for (msg, attempt) was legitimately created — by
     * the source timeout machinery or a router-side timeout scheme.
     * A kill can overrun its worm by one hop (the header it chases
     * was purged before traversing), so kills on idle channels are
     * legal only when their token is registered here.
     */
    CRNET_ALLOW("alloc",
                "audit-mode kill-token registry: one node per issued "
                "kill; compiled out of release builds (CRNET_AUDIT)")
    void onKillIssued(MsgId msg, std::uint16_t attempt)
    {
        if (tlsStage_ != nullptr) {
            tlsStage_->kills.push_back(killKey(msg, attempt));
            return;
        }
        issuedKills_.insert(killKey(msg, attempt));
    }

    /** `n` buffered data flits were dropped by the kill machinery. */
    void onFlitsPurged(std::uint64_t n)
    {
        if (tlsStage_ != nullptr) {
            tlsStage_->purged += n;
            return;
        }
        purged_ += n;
    }

    /** A receiver consumed one flit (conservation). */
    void onFlitConsumed(NodeId node, const Flit& flit);

    // --- Periodic sweep -----------------------------------------------

    /** Check conservation and every credit ledger against `snap`. */
    void sweep(const AuditSnapshot& snap);

    // --- Introspection (tests) ----------------------------------------

    std::uint64_t injected() const { return injected_; }
    std::uint64_t consumed() const { return consumed_; }
    std::uint64_t purged() const { return purged_; }
    std::uint64_t sweepsRun() const { return sweeps_; }
    std::uint64_t flitChecks() const { return flitChecks_; }

    // --- Checkpoint support (snapshot.hh) -----------------------------

    /**
     * Channel mirrors, kill registry and conservation counters must
     * survive a restore or the first post-resume sweep would panic on
     * a phantom conservation violation.
     */
    void saveState(StateWriter& w) const;
    void loadState(StateReader& r);

  private:
    /** Mirror of one channel's worm state machine. */
    struct ChannelState
    {
        MsgId msg = kInvalidMsg;        //!< Worm currently on the channel.
        std::uint16_t attempt = 0;
        std::uint32_t nextSeq = 0;
        std::uint32_t payloadLen = 0;
        MsgId purgedMsg = kInvalidMsg;  //!< Stragglers of this are legal.
    };

    CRNET_ALLOW("alloc",
                "audit-mode kill-token registry: one node per issued "
                "kill; compiled out of release builds (CRNET_AUDIT)")
    void checkFlit(ChannelState& ch, const Flit& flit,
                   const char* where, NodeId node, std::uint32_t port,
                   VcId vc);
    ChannelState& routerChannel(NodeId node, PortId port, VcId vc);
    ChannelState& ejectionChannel(NodeId node, std::uint32_t ch,
                                  VcId vc);

    static std::uint64_t killKey(MsgId msg, std::uint16_t attempt)
    {
        return (static_cast<std::uint64_t>(msg) << 16) | attempt;
    }

    const SimConfig& cfg_;
    const Topology& topo_;
    Cycle now_ = 0;

    std::uint32_t portsPerRouter_;  //!< Network + injection inputs.
    std::vector<ChannelState> routerChannels_;
    std::vector<ChannelState> ejectionChannels_;

    /** Every (msg, attempt) a kill token was legitimately issued for. */
    std::unordered_set<std::uint64_t> issuedKills_;

    // Conservation ledger, independent of NetworkStats counters.
    std::uint64_t injected_ = 0;
    std::uint64_t consumed_ = 0;
    std::uint64_t purged_ = 0;

    std::uint64_t sweeps_ = 0;
    std::uint64_t flitChecks_ = 0;

    /** Per-thread staging area (null = update ledgers directly). */
    static thread_local ShardStage* tlsStage_;
};

} // namespace crnet

#endif // CRNET_SIM_AUDIT_HH
