/**
 * @file
 * Statistics primitives: streaming accumulators, histograms and counters.
 *
 * All network metrics (latency, throughput, kill counts, padding
 * overhead) are collected through these types so every experiment
 * reports mean/stddev/percentiles the same way.
 */

#ifndef CRNET_SIM_STATS_HH
#define CRNET_SIM_STATS_HH

#include <cstdint>
#include <string>
#include <vector>

namespace crnet {

class StateWriter;
class StateReader;

/**
 * Streaming scalar accumulator (Welford's algorithm).
 *
 * Tracks count, mean, variance, min and max without storing samples.
 */
class Accumulator
{
  public:
    /** Add one sample. */
    void add(double x);

    /** Merge another accumulator into this one. */
    void merge(const Accumulator& other);

    /** Remove all samples. */
    void reset();

    std::uint64_t count() const { return count_; }
    double sum() const { return mean_ * static_cast<double>(count_); }
    /** Mean of the samples; 0 when empty. */
    double mean() const { return count_ ? mean_ : 0.0; }
    /** Unbiased sample variance; 0 with fewer than two samples. */
    double variance() const;
    /** Sample standard deviation. */
    double stddev() const;
    /** Smallest sample; 0 when empty. */
    double min() const { return count_ ? min_ : 0.0; }
    /** Largest sample; 0 when empty. */
    double max() const { return count_ ? max_ : 0.0; }

    /** Checkpoint support (snapshot.hh). */
    void saveState(StateWriter& w) const;
    void loadState(StateReader& r);

  private:
    std::uint64_t count_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-width binned histogram over [0, binWidth * numBins), with an
 * overflow bin. Supports exact percentile queries at bin resolution.
 */
class Histogram
{
  public:
    /**
     * @param bin_width Width of each bin (> 0).
     * @param num_bins  Number of regular bins (> 0).
     */
    Histogram(double bin_width, std::size_t num_bins);

    /** Add one sample. */
    void add(double x);

    /** Remove all samples. */
    void reset();

    std::uint64_t count() const { return total_; }
    std::uint64_t overflow() const { return overflow_; }
    std::uint64_t binCount(std::size_t i) const { return bins_.at(i); }
    std::size_t numBins() const { return bins_.size(); }
    double binWidth() const { return binWidth_; }

    /**
     * Value below which fraction p of the samples fall (bin upper edge
     * resolution). p in [0, 1]. Returns 0 when empty.
     */
    double percentile(double p) const;

    /** Checkpoint support; bin geometry must match the saved one. */
    void saveState(StateWriter& w) const;
    void loadState(StateReader& r);

  private:
    double binWidth_;
    std::vector<std::uint64_t> bins_;
    std::uint64_t overflow_ = 0;
    std::uint64_t total_ = 0;
};

/** Named monotonically increasing counter. */
class Counter
{
  public:
    void inc(std::uint64_t by = 1) { value_ += by; }
    void reset() { value_ = 0; }
    std::uint64_t value() const { return value_; }

    /** Checkpoint support (snapshot.hh). */
    void saveState(StateWriter& w) const;
    void loadState(StateReader& r);

  private:
    std::uint64_t value_ = 0;
};

} // namespace crnet

#endif // CRNET_SIM_STATS_HH
