#include "src/sim/stats.hh"

#include <algorithm>
#include <cmath>

#include "src/sim/log.hh"

namespace crnet {

void
Accumulator::add(double x)
{
    ++count_;
    if (count_ == 1) {
        mean_ = x;
        min_ = x;
        max_ = x;
        m2_ = 0.0;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
Accumulator::merge(const Accumulator& other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Accumulator::reset()
{
    *this = Accumulator();
}

double
Accumulator::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

Histogram::Histogram(double bin_width, std::size_t num_bins)
    : binWidth_(bin_width), bins_(num_bins, 0)
{
    if (bin_width <= 0.0)
        panic("Histogram bin width must be positive");
    if (num_bins == 0)
        panic("Histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < 0.0) {
        // Clamp: latencies are non-negative by construction; a negative
        // sample is a caller bug but should not corrupt indexing.
        ++bins_[0];
        return;
    }
    const auto idx = static_cast<std::size_t>(x / binWidth_);
    if (idx >= bins_.size())
        ++overflow_;
    else
        ++bins_[idx];
}

void
Histogram::reset()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    overflow_ = 0;
    total_ = 0;
}

double
Histogram::percentile(double p) const
{
    if (total_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const double target = p * static_cast<double>(total_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        seen += bins_[i];
        if (static_cast<double>(seen) >= target)
            return binWidth_ * static_cast<double>(i + 1);
    }
    // Falls in the overflow bin; report the histogram range end.
    return binWidth_ * static_cast<double>(bins_.size());
}

} // namespace crnet
