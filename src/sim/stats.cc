#include "src/sim/stats.hh"

#include <algorithm>
#include <cmath>

#include "src/sim/log.hh"
#include "src/sim/snapshot.hh"

namespace crnet {

void
Accumulator::add(double x)
{
    ++count_;
    if (count_ == 1) {
        mean_ = x;
        min_ = x;
        max_ = x;
        m2_ = 0.0;
        return;
    }
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(count_);
    m2_ += delta * (x - mean_);
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
}

void
Accumulator::merge(const Accumulator& other)
{
    if (other.count_ == 0)
        return;
    if (count_ == 0) {
        *this = other;
        return;
    }
    const double na = static_cast<double>(count_);
    const double nb = static_cast<double>(other.count_);
    const double delta = other.mean_ - mean_;
    const double n = na + nb;
    mean_ += delta * nb / n;
    m2_ += other.m2_ + delta * delta * na * nb / n;
    count_ += other.count_;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
Accumulator::reset()
{
    *this = Accumulator();
}

double
Accumulator::variance() const
{
    if (count_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(count_ - 1);
}

double
Accumulator::stddev() const
{
    return std::sqrt(variance());
}

void
Accumulator::saveState(StateWriter& w) const
{
    w.u64(count_);
    w.f64(mean_);
    w.f64(m2_);
    w.f64(min_);
    w.f64(max_);
}

void
Accumulator::loadState(StateReader& r)
{
    count_ = r.u64();
    mean_ = r.f64();
    m2_ = r.f64();
    min_ = r.f64();
    max_ = r.f64();
}

Histogram::Histogram(double bin_width, std::size_t num_bins)
    : binWidth_(bin_width), bins_(num_bins, 0)
{
    if (bin_width <= 0.0)
        panic("Histogram bin width must be positive");
    if (num_bins == 0)
        panic("Histogram needs at least one bin");
}

void
Histogram::add(double x)
{
    ++total_;
    if (x < 0.0) {
        // Clamp: latencies are non-negative by construction; a negative
        // sample is a caller bug but should not corrupt indexing.
        ++bins_[0];
        return;
    }
    const auto idx = static_cast<std::size_t>(x / binWidth_);
    if (idx >= bins_.size())
        ++overflow_;
    else
        ++bins_[idx];
}

void
Histogram::reset()
{
    std::fill(bins_.begin(), bins_.end(), 0);
    overflow_ = 0;
    total_ = 0;
}

void
Histogram::saveState(StateWriter& w) const
{
    w.f64(binWidth_);
    w.u64(bins_.size());
    for (std::uint64_t bin : bins_)
        w.u64(bin);
    w.u64(overflow_);
    w.u64(total_);
}

void
Histogram::loadState(StateReader& r)
{
    const double width = r.f64();
    const std::uint64_t numBins = r.u64();
    if (width != binWidth_ || numBins != bins_.size())
        panic("Histogram geometry mismatch on restore: saved ",
              numBins, " bins of width ", width, ", have ",
              bins_.size(), " of width ", binWidth_);
    for (auto& bin : bins_)
        bin = r.u64();
    overflow_ = r.u64();
    total_ = r.u64();
}

void
Counter::saveState(StateWriter& w) const
{
    w.u64(value_);
}

void
Counter::loadState(StateReader& r)
{
    value_ = r.u64();
}

double
Histogram::percentile(double p) const
{
    if (total_ == 0)
        return 0.0;
    p = std::clamp(p, 0.0, 1.0);
    const double target = p * static_cast<double>(total_);
    std::uint64_t seen = 0;
    for (std::size_t i = 0; i < bins_.size(); ++i) {
        seen += bins_[i];
        if (static_cast<double>(seen) >= target)
            return binWidth_ * static_cast<double>(i + 1);
    }
    // Falls in the overflow bin; report the histogram range end.
    return binWidth_ * static_cast<double>(bins_.size());
}

} // namespace crnet
