/**
 * @file
 * Versioned, checksummed checkpoint/restore for full simulator state.
 *
 * A snapshot captures everything the Network mutates while ticking —
 * RNG streams, channel/wave rings, router and NIC state, statistics,
 * trace/timeseries/audit sidecars, and the active-set scheduler — so
 * that save-at-cycle-C → restore → continue is byte-identical to an
 * uninterrupted run (docs/ROBUSTNESS.md documents the format and the
 * compatibility policy).
 *
 * Layout discipline: every field is written little-endian in a fixed,
 * documented order; unordered containers are serialized in sorted key
 * order so the payload bytes are independent of hash-table layout.
 * The on-disk container is `CRNETSNP` + version + config fingerprint
 * + payload + CRC-32 trailer, written via write-temp/fsync/rename so
 * a crash mid-write can never leave a torn file in place of a good
 * one.
 */

#ifndef CRNET_SIM_SNAPSHOT_HH
#define CRNET_SIM_SNAPSHOT_HH

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "src/sim/log.hh"
#include "src/sim/rng.hh"
#include "src/sim/types.hh"

namespace crnet {

class Network;
struct SimConfig;

/** Snapshot container format version (bump on any layout change). */
inline constexpr std::uint32_t kSnapshotVersion = 3;

/**
 * Append-only little-endian byte sink for snapshot payloads.
 *
 * Not performance-critical (runs between ticks, never inside them),
 * so it favors an explicit, greppable field order over clever
 * packing.
 */
class StateWriter
{
  public:
    void
    u8(std::uint8_t v)
    {
        bytes_.push_back(v);
    }

    void
    u16(std::uint16_t v)
    {
        u8(static_cast<std::uint8_t>(v));
        u8(static_cast<std::uint8_t>(v >> 8));
    }

    void
    u32(std::uint32_t v)
    {
        u16(static_cast<std::uint16_t>(v));
        u16(static_cast<std::uint16_t>(v >> 16));
    }

    void
    u64(std::uint64_t v)
    {
        u32(static_cast<std::uint32_t>(v));
        u32(static_cast<std::uint32_t>(v >> 32));
    }

    void
    i64(std::int64_t v)
    {
        u64(static_cast<std::uint64_t>(v));
    }

    /** Exact bit pattern; round-trips NaNs and signed zeros. */
    void
    f64(double v)
    {
        u64(std::bit_cast<std::uint64_t>(v));
    }

    void
    b(bool v)
    {
        u8(v ? 1 : 0);
    }

    void
    str(const std::string& s)
    {
        u64(s.size());
        for (char c : s)
            u8(static_cast<std::uint8_t>(c));
    }

    /**
     * Nested length-prefixed block. A reader that does not want the
     * block's contents (e.g. no tracer attached on restore) can skip
     * it wholesale without knowing its internal layout.
     */
    void
    block(const StateWriter& inner)
    {
        u64(inner.bytes_.size());
        bytes_.insert(bytes_.end(), inner.bytes_.begin(),
                      inner.bytes_.end());
    }

    const std::vector<std::uint8_t>& bytes() const { return bytes_; }

  private:
    std::vector<std::uint8_t> bytes_;
};

/**
 * Bounds-checked reader over a snapshot payload.
 *
 * The container CRC is verified before any parsing, so an overrun
 * here means a version-skew or serialization bug, not disk
 * corruption — it panics rather than limping on with garbage state.
 */
class StateReader
{
  public:
    StateReader(const std::uint8_t* data, std::size_t size)
        : data_(data), size_(size)
    {
    }

    explicit StateReader(const std::vector<std::uint8_t>& bytes)
        : StateReader(bytes.data(), bytes.size())
    {
    }

    std::uint8_t
    u8()
    {
        need(1);
        return data_[pos_++];
    }

    std::uint16_t
    u16()
    {
        const std::uint16_t lo = u8();
        const std::uint16_t hi = u8();
        return static_cast<std::uint16_t>(lo | (hi << 8));
    }

    std::uint32_t
    u32()
    {
        const std::uint32_t lo = u16();
        const std::uint32_t hi = u16();
        return lo | (hi << 16);
    }

    std::uint64_t
    u64()
    {
        const std::uint64_t lo = u32();
        const std::uint64_t hi = u32();
        return lo | (hi << 32);
    }

    std::int64_t
    i64()
    {
        return static_cast<std::int64_t>(u64());
    }

    double
    f64()
    {
        return std::bit_cast<double>(u64());
    }

    bool
    b()
    {
        return u8() != 0;
    }

    std::string
    str()
    {
        const std::uint64_t len = u64();
        need(len);
        std::string s(reinterpret_cast<const char*>(data_ + pos_),
                      static_cast<std::size_t>(len));
        pos_ += static_cast<std::size_t>(len);
        return s;
    }

    /** Skip n bytes (e.g. an unwanted length-prefixed block). */
    void
    skip(std::uint64_t n)
    {
        need(n);
        pos_ += static_cast<std::size_t>(n);
    }

    std::size_t remaining() const { return size_ - pos_; }
    bool done() const { return pos_ == size_; }

  private:
    void
    need(std::uint64_t n)
    {
        if (n > size_ - pos_)
            panic("snapshot payload overrun: need ", n, " bytes at ",
                  pos_, "/", size_,
                  " (version skew or serialization bug)");
    }

    const std::uint8_t* data_;
    std::size_t size_;
    std::size_t pos_ = 0;
};

/** An in-memory snapshot: cycle, config identity, and state bytes. */
struct Snapshot
{
    /** Cycle count at capture (restore resumes from here). */
    Cycle at = 0;
    /** Fingerprint of the SimConfig the state belongs to. */
    std::uint64_t fingerprint = 0;
    /** Serialized Network state. */
    std::vector<std::uint8_t> payload;
};

/**
 * 64-bit fingerprint over every semantic SimConfig field (plus the
 * audit-build bit). Excludes `traceFile` (observability sidecar; a
 * restore may attach a different trace path) and `jobs` (campaign
 * parallelism never affects per-trial state). Restore refuses a
 * snapshot whose fingerprint differs from the target network's
 * config: restoring into a differently-shaped network would corrupt
 * state silently.
 */
std::uint64_t configFingerprint(const SimConfig& cfg);

/** Serialize the full mutable state of `net` at its current cycle. */
Snapshot captureSnapshot(const Network& net);

/**
 * Restore `snap` into `net` (which must be freshly constructed from a
 * config with a matching fingerprint). Returns "" on success or a
 * human-readable error ("config fingerprint mismatch ...") on
 * refusal; on refusal `net` is untouched.
 */
std::string restoreSnapshot(Network& net, const Snapshot& snap);

/**
 * Write `snap` to `path` atomically (temp file + fsync + rename).
 * Returns "" on success or an error message.
 */
std::string writeSnapshotFile(const std::string& path,
                              const Snapshot& snap);

/**
 * Read and validate a snapshot file: magic, version, CRC-32 trailer.
 * Returns "" and fills `out` on success; otherwise an error message
 * (truncated file, bad magic, version or CRC mismatch) and `out` is
 * untouched. Never panics on corrupt input — callers decide whether
 * to fall back or abort.
 */
std::string readSnapshotFile(const std::string& path, Snapshot& out);

// --- Shared field-group helpers (used by component saveState/loadState)

/** RNG stream: the four raw xoshiro256** words. */
inline void
saveRng(StateWriter& w, const Rng& rng)
{
    for (std::uint64_t word : rng.state())
        w.u64(word);
}

inline void
loadRng(StateReader& r, Rng& rng)
{
    std::array<std::uint64_t, 4> s{};
    for (auto& word : s)
        word = r.u64();
    rng.setState(s);
}

struct Flit;
struct PendingMessage;
struct NetworkStats;

void saveFlit(StateWriter& w, const Flit& f);
void loadFlit(StateReader& r, Flit& f);

void saveMessage(StateWriter& w, const PendingMessage& m);
void loadMessage(StateReader& r, PendingMessage& m);

/** Every counter, accumulator and the latency histogram, in order. */
void saveNetworkStats(StateWriter& w, const NetworkStats& s);
void loadNetworkStats(StateReader& r, NetworkStats& s);

// --- Crash-safe file primitives (shared with the campaign journal) ---

/**
 * Write `bytes` to `path` via temp file + fflush + fsync + rename, so
 * a crash at any point leaves either the old file or the new one,
 * never a torn mix. Returns "" on success or an errno-derived error.
 */
std::string atomicWriteFile(const std::string& path,
                            const std::vector<std::uint8_t>& bytes);

/**
 * Read a whole file into `out`. Returns "" on success or an error
 * message ("no such file" is an error too — callers treat a missing
 * journal/snapshot as a cold start).
 */
std::string readFileBytes(const std::string& path,
                          std::vector<std::uint8_t>& out);

} // namespace crnet

#endif // CRNET_SIM_SNAPSHOT_HH
