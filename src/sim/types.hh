/**
 * @file
 * Fundamental scalar types shared by every crnet subsystem.
 */

#ifndef CRNET_SIM_TYPES_HH
#define CRNET_SIM_TYPES_HH

#include <cstdint>
#include <limits>

namespace crnet {

/** Simulation time, in router clock cycles. */
using Cycle = std::uint64_t;

/** Linear node identifier inside a topology (0 .. numNodes-1). */
using NodeId = std::uint32_t;

/** Unique message identifier, assigned at message creation. */
using MsgId = std::uint64_t;

/** Virtual-channel index within an input or output port. */
using VcId = std::uint16_t;

/** Port index on a router (0 .. radix-1). */
using PortId = std::uint16_t;

/** Sentinel for "no scheduled cycle" (deadline never fires). */
inline constexpr Cycle kNeverCycle = std::numeric_limits<Cycle>::max();

/** Sentinel for "no node". */
inline constexpr NodeId kInvalidNode =
    std::numeric_limits<NodeId>::max();

/** Sentinel for "no message". */
inline constexpr MsgId kInvalidMsg = std::numeric_limits<MsgId>::max();

/** Sentinel for "no port". */
inline constexpr PortId kInvalidPort =
    std::numeric_limits<PortId>::max();

/** Sentinel for "no virtual channel". */
inline constexpr VcId kInvalidVc = std::numeric_limits<VcId>::max();

} // namespace crnet

#endif // CRNET_SIM_TYPES_HH
