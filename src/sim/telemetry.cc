/**
 * @file
 * Telemetry registry, profile arithmetic and the streaming status
 * writer. See src/sim/telemetry.hh for the design contract: nothing
 * here is on the results path, and every byte written to disk goes
 * through atomicWriteFile so readers never see a torn status file.
 */

#include "src/sim/telemetry.hh"

#include <cstdio>

#include "src/sim/snapshot.hh"

namespace crnet {

const char* toString(MetricKind kind)
{
    switch (kind) {
    case MetricKind::Counter: return "counter";
    case MetricKind::Gauge: return "gauge";
    case MetricKind::Histogram: return "histogram";
    }
    return "unknown";
}

const char* toString(TickPhase phase)
{
    switch (phase) {
    case TickPhase::Deliver: return "deliver";
    case TickPhase::Generate: return "generate";
    case TickPhase::Injectors: return "injectors";
    case TickPhase::Routers: return "routers";
    case TickPhase::Receivers: return "receivers";
    case TickPhase::Audit: return "audit";
    case TickPhase::Sample: return "sample";
    case TickPhase::Quiet: return "quiet";
    }
    return "unknown";
}

// ---------------------------------------------------------------------
// Telemetry registry
// ---------------------------------------------------------------------

Telemetry& Telemetry::instance()
{
    CRNET_ALLOW("global-state", "the telemetry registry is the "
                "registered process-wide metrics singleton: updates "
                "are observability-only atomics and nothing "
                "result-affecting ever reads them")
    static Telemetry telemetry;
    return telemetry;
}

Telemetry::Entry* Telemetry::entry(const std::string& name,
                                   MetricKind kind)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    const auto it = index_.find(name);
    if (it != index_.end())
        return &entries_[it->second];
    entries_.emplace_back();
    Entry& e = entries_.back();
    e.name = name;
    e.kind = kind;
    index_.emplace(name, entries_.size() - 1);
    return &e;
}

std::atomic<std::uint64_t>* Telemetry::counter(const std::string& name)
{
    return &entry(name, MetricKind::Counter)->value;
}

std::atomic<std::uint64_t>* Telemetry::gauge(const std::string& name)
{
    return &entry(name, MetricKind::Gauge)->value;
}

TelemetryHistogram* Telemetry::histogram(const std::string& name)
{
    return &entry(name, MetricKind::Histogram)->hist;
}

std::vector<MetricSample> Telemetry::snapshot() const
{
    const std::lock_guard<std::mutex> lock(mutex_);
    std::vector<MetricSample> out;
    out.reserve(index_.size());
    for (const auto& [name, idx] : index_) {
        const Entry& e = entries_[idx];
        MetricSample s;
        s.name = name;
        s.kind = e.kind;
        if (e.kind == MetricKind::Histogram) {
            s.value = e.hist.count();
            for (std::size_t b = 0; b <= TelemetryHistogram::kBuckets;
                 ++b) {
                const std::uint64_t n = e.hist.bucket(b);
                if (n != 0)
                    s.buckets.emplace_back(b, n);
            }
        } else {
            s.value = e.value.load(std::memory_order_relaxed);
        }
        out.push_back(std::move(s));
    }
    return out;
}

void Telemetry::resetAll()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    for (Entry& e : entries_) {
        e.value.store(0, std::memory_order_relaxed);
        e.hist.reset();
    }
}

// ---------------------------------------------------------------------
// ProfileData
// ---------------------------------------------------------------------

double ProfileData::tickSeconds(TickPhase phase) const
{
    const double ns =
        static_cast<double>(phaseNanos[static_cast<std::size_t>(phase)]);
    double scale = 1.0;
    if (tickPhaseSampled(phase) && sampledTicks != 0)
        scale = static_cast<double>(ticks) /
                static_cast<double>(sampledTicks);
    return ns * scale * 1e-9;
}

void ProfileData::merge(const ProfileData& other)
{
    if (!other.enabled)
        return;
    enabled = true;
    warmupSeconds += other.warmupSeconds;
    measureSeconds += other.measureSeconds;
    drainSeconds += other.drainSeconds;
    ticks += other.ticks;
    sampledTicks += other.sampledTicks;
    stride = other.stride;
    for (std::size_t p = 0; p < kNumTickPhases; ++p)
        phaseNanos[p] += other.phaseNanos[p];
    quietSpans += other.quietSpans;
    quietCycles += other.quietCycles;
}

// ---------------------------------------------------------------------
// StatusWriter
// ---------------------------------------------------------------------

namespace {

/** Minimal JSON string escaper (names are internal identifiers, but
 * stay safe against quotes/backslashes/control bytes anyway). */
std::string jsonEscape(const std::string& in)
{
    std::string out;
    out.reserve(in.size() + 2);
    for (const char c : in) {
        switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\r': out += "\\r"; break;
        case '\t': out += "\\t"; break;
        default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x",
                              static_cast<unsigned>(c));
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

std::string jsonDouble(double v)
{
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.6g", v);
    return buf;
}

} // namespace

StatusWriter::StatusWriter(std::string path, double every_seconds,
                           std::string kind, std::uint64_t total,
                           unsigned jobs)
    : path_(std::move(path)),
      everySeconds_(every_seconds < 0.0 ? 0.0 : every_seconds),
      kind_(std::move(kind)), total_(total), jobs_(jobs)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    maybeWriteLocked(/*force=*/true); // Initial file: state=running.
}

void StatusWriter::noteResumed(std::uint64_t resumed)
{
    // Records the count only; the caller reports each replayed unit
    // through unitDone() so the aggregates include them too.
    const std::lock_guard<std::mutex> lock(mutex_);
    resumed_ = resumed;
    maybeWriteLocked(/*force=*/false);
}

void StatusWriter::unitPhase(std::uint64_t index, const char* phase,
                             Cycle cycle)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    Slot& slot = active_[index];
    slot.phase = phase;
    slot.cycle = cycle;
    maybeWriteLocked(/*force=*/false);
}

void StatusWriter::unitDone(const UnitRow& row,
                            const std::vector<FaultRow>& faults)
{
    const std::lock_guard<std::mutex> lock(mutex_);
    active_.erase(row.index);
    ++done_;
    if (row.quarantined)
        ++quarantined_;
    if (row.deadlocked)
        ++deadlocked_;
    accepted_ += row.accepted;
    delivered_ += row.delivered;

    recentUnits_.push_back(row);
    while (recentUnits_.size() > kRecent)
        recentUnits_.pop_front();
    for (const FaultRow& f : faults) {
        recentFaults_.push_back(f);
        while (recentFaults_.size() > kRecent)
            recentFaults_.pop_front();
    }

    // EMA of inter-completion spacing drives the ETA. The first
    // completion seeds it with the full elapsed time so early ETAs
    // amortize the warmup instead of reading as zero.
    const double now = timer_.seconds();
    const double dt = now - lastDoneAt_;
    lastDoneAt_ = now;
    constexpr double kAlpha = 0.3;
    emaInterval_ = emaInterval_ == 0.0
                       ? dt
                       : kAlpha * dt + (1.0 - kAlpha) * emaInterval_;
    maybeWriteLocked(/*force=*/false);
}

void StatusWriter::finish()
{
    const std::lock_guard<std::mutex> lock(mutex_);
    active_.clear();
    const std::string json = renderLocked(/*done=*/true);
    const std::vector<std::uint8_t> bytes(json.begin(), json.end());
    (void)atomicWriteFile(path_, bytes);
    lastWrite_ = timer_.seconds();
}

void StatusWriter::maybeWriteLocked(bool force)
{
    const double now = timer_.seconds();
    if (!force && lastWrite_ >= 0.0 && everySeconds_ > 0.0 &&
        now - lastWrite_ < everySeconds_)
        return;
    const std::string json = renderLocked(/*done=*/false);
    const std::vector<std::uint8_t> bytes(json.begin(), json.end());
    // Status is best-effort observability: an unwritable path must
    // never take down the campaign it is watching.
    (void)atomicWriteFile(path_, bytes);
    lastWrite_ = now;
}

std::string StatusWriter::renderLocked(bool done) const
{
    const double wall = timer_.seconds();
    const std::uint64_t remaining = total_ > done_ ? total_ - done_ : 0;
    const double eta = done ? 0.0 : emaInterval_ * static_cast<double>(
                                        remaining);
    const double ratio =
        accepted_ != 0 ? static_cast<double>(delivered_) /
                             static_cast<double>(accepted_)
                       : 0.0;

    std::string j;
    j.reserve(2048);
    j += "{\n";
    j += "  \"schema\": \"";
    j += kStatusSchema;
    j += "\",\n";
    j += "  \"kind\": \"" + jsonEscape(kind_) + "\",\n";
    j += "  \"state\": \"";
    j += done ? "done" : "running";
    j += "\",\n";
    j += "  \"wall_seconds\": " + jsonDouble(wall) + ",\n";
    j += "  \"jobs\": " + std::to_string(jobs_) + ",\n";
    j += "  \"total\": " + std::to_string(total_) + ",\n";
    j += "  \"done\": " + std::to_string(done_) + ",\n";
    j += "  \"resumed\": " + std::to_string(resumed_) + ",\n";
    j += "  \"quarantined\": " + std::to_string(quarantined_) + ",\n";
    j += "  \"deadlocked\": " + std::to_string(deadlocked_) + ",\n";
    j += "  \"accepted\": " + std::to_string(accepted_) + ",\n";
    j += "  \"delivered\": " + std::to_string(delivered_) + ",\n";
    j += "  \"delivery_ratio\": " + jsonDouble(ratio) + ",\n";
    j += "  \"eta_seconds\": " + jsonDouble(eta) + ",\n";

    j += "  \"active\": [";
    bool first = true;
    for (const auto& [index, slot] : active_) {
        j += first ? "\n" : ",\n";
        first = false;
        j += "    {\"unit\": " + std::to_string(index) +
             ", \"phase\": \"" + jsonEscape(slot.phase) +
             "\", \"cycle\": " + std::to_string(slot.cycle) + "}";
    }
    j += first ? "],\n" : "\n  ],\n";

    j += "  \"recent_units\": [";
    first = true;
    for (const UnitRow& u : recentUnits_) {
        j += first ? "\n" : ",\n";
        first = false;
        j += "    {\"unit\": " + std::to_string(u.index) +
             ", \"seed\": " + std::to_string(u.seed) +
             ", \"ok\": " + (u.ok ? "true" : "false") +
             ", \"deadlocked\": " + (u.deadlocked ? "true" : "false") +
             ", \"quarantined\": " +
             (u.quarantined ? "true" : "false") +
             ", \"accepted\": " + std::to_string(u.accepted) +
             ", \"delivered\": " + std::to_string(u.delivered) +
             ", \"cycles\": " + std::to_string(u.cycles) + "}";
    }
    j += first ? "],\n" : "\n  ],\n";

    j += "  \"recent_fault_events\": [";
    first = true;
    for (const FaultRow& f : recentFaults_) {
        j += first ? "\n" : ",\n";
        first = false;
        j += "    {\"unit\": " + std::to_string(f.unit) +
             ", \"at\": " + std::to_string(f.at) + ", \"kind\": \"" +
             jsonEscape(f.kind) + "\"}";
    }
    j += first ? "],\n" : "\n  ],\n";

    j += "  \"metrics\": {";
    first = true;
    for (const MetricSample& m : Telemetry::instance().snapshot()) {
        j += first ? "\n" : ",\n";
        first = false;
        j += "    \"" + jsonEscape(m.name) + "\": " +
             std::to_string(m.value);
    }
    j += first ? "}\n" : "\n  }\n";
    j += "}\n";
    return j;
}

} // namespace crnet
