#include "src/sim/parallel.hh"

#include <algorithm>
#include <atomic>
#include <cstdlib>

#include "src/sim/log.hh"
#include "src/sim/telemetry.hh"
#include "src/sim/walltime.hh"

namespace crnet {

unsigned
hardwareJobs()
{
    return std::max(1u, std::thread::hardware_concurrency());
}

unsigned
resolveJobs(unsigned requested)
{
    if (requested == 0) {
        if (const char* env = std::getenv("CRNET_JOBS")) {
            char* end = nullptr;
            const unsigned long v = std::strtoul(env, &end, 10);
            if (end != env && *end == '\0' && v > 0)
                requested = static_cast<unsigned>(
                    std::min<unsigned long>(v, kMaxJobs));
            else if (*env != '\0')
                warn("CRNET_JOBS='", env,
                     "' is not a positive integer; using 1 job");
        }
    }
    return std::clamp(requested, 1u, kMaxJobs);
}

unsigned
resolveShards(unsigned requested)
{
    if (requested == 0) {
        if (const char* env = std::getenv("CRNET_SHARDS")) {
            char* end = nullptr;
            const unsigned long v = std::strtoul(env, &end, 10);
            if (end != env && *end == '\0' && v > 0)
                requested = static_cast<unsigned>(
                    std::min<unsigned long>(v, kMaxJobs));
            else if (*env != '\0')
                warn("CRNET_SHARDS='", env,
                     "' is not a positive integer; using 1 shard");
        }
    }
    return std::clamp(requested, 1u, kMaxJobs);
}

ThreadPool::ThreadPool(unsigned jobs)
{
    jobs = std::clamp(jobs, 1u, kMaxJobs);
    Telemetry::instance()
        .gauge("pool.workers")
        ->store(jobs, std::memory_order_relaxed);
    workers_.reserve(jobs);
    for (unsigned i = 0; i < jobs; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::unique_lock<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    workReady_.notify_all();
    for (std::thread& w : workers_)
        w.join();
}

void
ThreadPool::submit(std::function<void()> task)
{
    if (!task)
        panic("ThreadPool::submit called with an empty task");
    {
        std::unique_lock<std::mutex> lock(mutex_);
        if (stopping_)
            panic("ThreadPool::submit after shutdown began");
        queue_.push_back(std::move(task));
        ++inFlight_;
    }
    workReady_.notify_one();
}

void
ThreadPool::wait()
{
    std::unique_lock<std::mutex> lock(mutex_);
    allDone_.wait(lock, [this] { return inFlight_ == 0; });
}

void
ThreadPool::workerLoop()
{
    // Worker-utilization telemetry: registry-owned atomics, updated
    // outside the pool lock; observability only (docs/OBSERVABILITY.md).
    std::atomic<std::uint64_t>* const tasks =
        Telemetry::instance().counter("pool.tasks");
    std::atomic<std::uint64_t>* const busy =
        Telemetry::instance().counter("pool.busy_nanos");
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            workReady_.wait(lock, [this] {
                return stopping_ || !queue_.empty();
            });
            if (queue_.empty())
                return;  // stopping_ and drained.
            task = std::move(queue_.front());
            queue_.pop_front();
        }
        const std::uint64_t t0 = WallTimer::nanos();
        task();
        tasks->fetch_add(1, std::memory_order_relaxed);
        busy->fetch_add(WallTimer::nanos() - t0,
                        std::memory_order_relaxed);
        {
            std::unique_lock<std::mutex> lock(mutex_);
            --inFlight_;
            if (inFlight_ == 0)
                allDone_.notify_all();
        }
    }
}

} // namespace crnet
