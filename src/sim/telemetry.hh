/**
 * @file
 * Live telemetry: process-wide metrics registry, per-run self-profiler
 * and streaming status files.
 *
 * Everything here is *off the results path*. Results (RunResult,
 * campaign ledgers, traces, timeseries, snapshots) are pure functions
 * of the configuration and seed; telemetry observes the run without
 * touching it, so enabling it is byte-identical to disabling it under
 * every scheduler and jobs=N (tests/test_telemetry.cc holds the
 * goldens). Wall-clock reads go exclusively through the registered
 * shim (WallTimer::nanos, src/sim/walltime.hh), keeping the
 * `wallclock` rule of tools/crnet_analyze.py clean.
 *
 * Three pieces:
 *
 *   Telemetry        process-wide registry of named counters, gauges
 *                    and histograms. Registration (allocating, mutex)
 *                    is done once at attach time; updates are single
 *                    atomic ops, safe from CRNET_HOT_PATH code.
 *
 *   TickProfiler     per-run sampling profiler attributing wall time
 *                    to experiment phases (warmup/measure/drain) and
 *                    tick sub-phases (deliver, generate, injector /
 *                    router / receiver sweeps, audit, sampling,
 *                    quiet-span skip). Sub-phases are clock-stamped on
 *                    one tick in every `stride` (default 61) to keep
 *                    enabled overhead under the 2% budget; audit,
 *                    sampling and quiet spans are rare enough to be
 *                    timed exactly. Results land in ProfileData, the
 *                    `profile` block of RunResult / CampaignSummary
 *                    and the `profile:` bench footer.
 *
 *   StatusWriter     throttled live status for long campaigns and
 *                    sweeps: atomically rewrites (atomicWriteFile) a
 *                    status.json every `status_interval` wall-seconds
 *                    with progress, EMA-based ETA, per-slot current
 *                    trial and cycle, aggregate delivery ratio, the
 *                    last few fault events and a dump of the metrics
 *                    registry. tools/crnet_top.py tails it.
 */

#ifndef CRNET_SIM_TELEMETRY_HH
#define CRNET_SIM_TELEMETRY_HH

#include <atomic>
#include <cstdint>
#include <deque>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "src/core/annotations.hh"
#include "src/sim/types.hh"
#include "src/sim/walltime.hh"

namespace crnet {

// ---------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------

enum class MetricKind : std::uint8_t
{
    Counter,   //!< Monotonic sum (adds).
    Gauge,     //!< Last written value wins.
    Histogram, //!< Log2-bucketed distribution of observed values.
};

/** Printable kind name ("counter" / "gauge" / "histogram"). */
const char* toString(MetricKind kind);

/**
 * Log2-bucketed histogram with atomic buckets: observe(v) lands v in
 * bucket floor(log2(v)) + 1 (bucket 0 holds zeros). Lock-free and
 * allocation-free after construction.
 */
class TelemetryHistogram
{
  public:
    static constexpr std::size_t kBuckets = 64;

    /** Record one value. Safe from CRNET_HOT_PATH code. */
    void observe(std::uint64_t value)
    {
        std::size_t bucket = 0;
        while (value != 0) {
            ++bucket;
            value >>= 1;
        }
        buckets_[bucket].fetch_add(1, std::memory_order_relaxed);
        count_.fetch_add(1, std::memory_order_relaxed);
    }

    std::uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    std::uint64_t bucket(std::size_t i) const
    {
        return buckets_[i].load(std::memory_order_relaxed);
    }
    void reset()
    {
        count_.store(0, std::memory_order_relaxed);
        for (auto& b : buckets_)
            b.store(0, std::memory_order_relaxed);
    }

  private:
    std::atomic<std::uint64_t> count_{0};
    std::atomic<std::uint64_t> buckets_[kBuckets + 1] = {};
};

/** One registry entry, resolved to a value at snapshot time. */
struct MetricSample
{
    std::string name;
    MetricKind kind = MetricKind::Counter;
    std::uint64_t value = 0; //!< Counter/gauge value; histogram count.
    /** Non-empty for histograms: (bucket index, count) pairs. */
    std::vector<std::pair<std::size_t, std::uint64_t>> buckets;
};

/**
 * Process-wide registry of named metrics.
 *
 * counter()/gauge()/histogram() register-or-look-up an entry and
 * return a stable pointer (entries live in a deque and are never
 * destroyed before process exit); callers cache the pointer at attach
 * time and update through it with plain atomic ops — no lock, no
 * allocation — which is what makes updates legal from hot-path code.
 * Under the jobs=N engine the registry is shared by all workers:
 * counters and histograms aggregate across runs, gauges reflect the
 * most recent writer. Nothing result-affecting ever reads it.
 */
class Telemetry
{
  public:
    /** The process-wide instance (registered global-state singleton). */
    static Telemetry& instance();

    /** Register or look up a counter. Allocates; not for hot paths. */
    std::atomic<std::uint64_t>* counter(const std::string& name);
    /** Register or look up a gauge. Allocates; not for hot paths. */
    std::atomic<std::uint64_t>* gauge(const std::string& name);
    /** Register or look up a histogram. Allocates; not for hot paths. */
    TelemetryHistogram* histogram(const std::string& name);

    /** Consistent dump of every metric, sorted by name. */
    std::vector<MetricSample> snapshot() const;

    /** Zero every registered metric (tests). */
    void resetAll();

  private:
    Telemetry() = default;

    struct Entry
    {
        std::string name;
        MetricKind kind = MetricKind::Counter;
        std::atomic<std::uint64_t> value{0};
        TelemetryHistogram hist;
    };

    Entry* entry(const std::string& name, MetricKind kind);

    mutable std::mutex mutex_;
    /** Deque: stable element addresses across registration. */
    std::deque<Entry> entries_;
    /** Ordered (never unordered) name -> entry index. */
    std::map<std::string, std::size_t> index_;
};

// ---------------------------------------------------------------------
// Self-profiler
// ---------------------------------------------------------------------

/**
 * Tick sub-phases the profiler attributes time to. The first five are
 * stride-sampled (stamped on one tick in every `stride`); Audit,
 * Sample and Quiet occur on few cycles and are timed exactly.
 */
enum class TickPhase : std::uint8_t
{
    Deliver,   //!< Wave-ring event delivery.
    Generate,  //!< Traffic-generator arrival pass.
    Injectors, //!< Injector NIC sweep.
    Routers,   //!< Router sweep.
    Receivers, //!< Receiver NIC sweep.
    Audit,     //!< Invariant audit sweeps (exact).
    Sample,    //!< Timeseries sampling (exact).
    Quiet,     //!< sched=event quiet-span skips (exact, per span).
};
constexpr std::size_t kNumTickPhases = 8;

/** Footer-stable phase name ("deliver", "routers", ...). */
const char* toString(TickPhase phase);

/** True for phases timed on sampled ticks only (extrapolated). */
constexpr bool tickPhaseSampled(TickPhase phase)
{
    return phase != TickPhase::Audit && phase != TickPhase::Sample &&
           phase != TickPhase::Quiet;
}

/** Default sampling stride. Prime, so it cannot alias the audit or
 * timeseries intervals (powers of two / round numbers). */
constexpr std::uint32_t kDefaultProfileStride = 61;

/**
 * Accumulated profile of one run (or a merge of many). Attached to
 * RunResult / CampaignSummary when SimConfig::profileEnabled is set;
 * excluded (like wallSeconds) from all byte-identity comparisons.
 */
struct ProfileData
{
    bool enabled = false;

    // Experiment phases, exact wall seconds.
    double warmupSeconds = 0.0;
    double measureSeconds = 0.0;
    double drainSeconds = 0.0;

    std::uint64_t ticks = 0;        //!< Ticks executed.
    std::uint64_t sampledTicks = 0; //!< Ticks that were clock-stamped.
    std::uint32_t stride = kDefaultProfileStride;

    /** Per-phase nanoseconds, indexed by TickPhase. Sampled phases
     * hold only the stamped ticks' time (see tickSeconds). */
    std::uint64_t phaseNanos[kNumTickPhases] = {};

    std::uint64_t quietSpans = 0;  //!< sched=event spans entered.
    std::uint64_t quietCycles = 0; //!< Cycles skipped inside spans.

    /**
     * Estimated wall seconds spent in one tick sub-phase: sampled
     * phases are extrapolated by ticks/sampledTicks, exact phases
     * convert directly. After merge() the extrapolation uses the
     * pooled ratio, which is exact when every contributor shared one
     * stride (the default) and a close estimate otherwise.
     */
    double tickSeconds(TickPhase phase) const;

    /** Sum of every contributor (merging runs / trials). */
    void merge(const ProfileData& other);
};

/**
 * Per-run sampling profiler. One instance per Network (attached via
 * Network::attachProfiler); never shared across threads. Everything
 * callable from Network::tick is allocation-free.
 */
class TickProfiler
{
  public:
    explicit TickProfiler(std::uint32_t stride = kDefaultProfileStride)
        : stride_(stride == 0 ? 1 : stride),
          untilSample_(stride == 0 ? 1 : stride)
    {
        data_.enabled = true;
        data_.stride = stride_;
    }

    /**
     * Monotonic nanosecond stamp. Registered wallclock consumer: the
     * telemetry sampler reads time only through the walltime.hh shim.
     */
    CRNET_ALLOW("wallclock", "the telemetry self-profiler samples the "
                "clock through the WallTimer shim; its output feeds "
                "profile footers and status files, never results")
    static std::uint64_t stamp() { return WallTimer::nanos(); }

    /**
     * Count one tick; true when this tick should be clock-stamped
     * (one in every stride).
     */
    bool armTick()
    {
        ++data_.ticks;
        if (--untilSample_ == 0) {
            untilSample_ = stride_;
            ++data_.sampledTicks;
            return true;
        }
        return false;
    }

    /** Attribute `nanos` to a phase. */
    void add(TickPhase phase, std::uint64_t nanos)
    {
        data_.phaseNanos[static_cast<std::size_t>(phase)] += nanos;
    }

    /** Record one quiet span: cycles skipped and wall time spent. */
    void noteQuietSpan(Cycle cycles, std::uint64_t nanos)
    {
        ++data_.quietSpans;
        data_.quietCycles += cycles;
        add(TickPhase::Quiet, nanos);
    }

    ProfileData& data() { return data_; }
    const ProfileData& data() const { return data_; }

  private:
    ProfileData data_;
    std::uint32_t stride_;
    std::uint32_t untilSample_;
};

// ---------------------------------------------------------------------
// Streaming status
// ---------------------------------------------------------------------

/** status.json schema identifier (docs/OBSERVABILITY.md documents the
 * full schema; tests/test_status_schema.py validates it). */
inline constexpr const char* kStatusSchema = "crnet-status-v1";

/**
 * Throttled, atomically-rewritten status file for live campaigns and
 * sweeps. Thread-safe: runCampaign/runMany workers report through one
 * shared writer. Every write goes through atomicWriteFile, so a
 * reader (tools/crnet_top.py) or a SIGKILL mid-rewrite can never see
 * a torn file. Wall time is reported as seconds since the writer was
 * constructed — absolute host time never appears.
 */
class StatusWriter
{
  public:
    /** Units completed/fault events retained in the "recent" rings. */
    static constexpr std::size_t kRecent = 16;

    /**
     * @param path            status.json destination.
     * @param every_seconds   min wall-seconds between rewrites
     *                        (0 = write on every update; tests).
     * @param kind            "campaign" or "sweep".
     * @param total           units (trials / runs) in the batch.
     * @param jobs            resolved worker count.
     */
    StatusWriter(std::string path, double every_seconds,
                 std::string kind, std::uint64_t total, unsigned jobs);

    /** One completed unit (for the aggregates and recent-trials ring). */
    struct UnitRow
    {
        std::uint64_t index = 0;
        std::uint64_t seed = 0;
        bool ok = false;
        bool deadlocked = false;
        bool quarantined = false;
        std::uint64_t accepted = 0;
        std::uint64_t delivered = 0;
        Cycle cycles = 0;
    };
    /** One fault event (for the recent-fault-events ring). */
    struct FaultRow
    {
        std::uint64_t unit = 0;
        Cycle at = 0;
        std::string kind;
    };

    /** Units restored from a journal before this process ran them. */
    void noteResumed(std::uint64_t resumed);

    /**
     * A worker entered `phase` ("warmup"/"measure"/"drain"/"run") of
     * unit `index` at simulated cycle `cycle`. Cheap: map update plus
     * a throttled rewrite.
     */
    void unitPhase(std::uint64_t index, const char* phase, Cycle cycle);

    /** A unit finished; `faults` feeds the recent-fault-events ring. */
    void unitDone(const UnitRow& row, const std::vector<FaultRow>& faults);

    /** Final rewrite with state="done" (always writes). */
    void finish();

    const std::string& path() const { return path_; }

  private:
    struct Slot
    {
        std::string phase;
        Cycle cycle = 0;
    };

    /** Rewrite the file if forced, unthrottled, or the interval passed. */
    void maybeWriteLocked(bool force);
    std::string renderLocked(bool done) const;

    mutable std::mutex mutex_;
    std::string path_;
    double everySeconds_;
    std::string kind_;
    std::uint64_t total_;
    unsigned jobs_;
    WallTimer timer_;
    double lastWrite_ = -1.0;

    std::uint64_t done_ = 0;
    std::uint64_t resumed_ = 0;
    std::uint64_t quarantined_ = 0;
    std::uint64_t deadlocked_ = 0;
    std::uint64_t accepted_ = 0;
    std::uint64_t delivered_ = 0;

    /** EMA of inter-completion wall seconds (ETA = ema * remaining). */
    double emaInterval_ = 0.0;
    double lastDoneAt_ = 0.0;

    /** In-flight units: index -> current phase/cycle. */
    std::map<std::uint64_t, Slot> active_;
    std::deque<UnitRow> recentUnits_;
    std::deque<FaultRow> recentFaults_;
};

} // namespace crnet

#endif // CRNET_SIM_TELEMETRY_HH
