/**
 * @file
 * Structured worm-lifecycle event tracing.
 *
 * The tracer records one event per protocol-visible transition of a
 * worm — injection, per-hop header advance, first blocked cycle of a
 * stall episode, source timeout, kill/bkill hops, retransmission,
 * commit, delivery/discard — plus fault events and dead-wire losses.
 * On flush it writes two files:
 *
 *   <prefix>.jsonl  One JSON object per line (grep/jq-friendly).
 *   <prefix>.json   Chrome trace-event format: instant events on a
 *                   per-node track plus one async span per message
 *                   (inject -> deliver/giveup). Loadable in Perfetto
 *                   (ui.perfetto.dev) or chrome://tracing.
 *
 * Enabling: the `trace=` SimConfig key names the output prefix; the
 * CRNET_TRACE environment variable is the fallback ("1" selects the
 * default prefix "crnet_trace", any other non-empty value IS the
 * prefix, "0"/"" disable). The `watch=` key restricts recording to a
 * comma-separated list of message ids and/or `src-dst` node pairs;
 * events that carry no src/dst (kill hops) still match once their
 * message was adopted at injection time.
 *
 * Cost: components hold a `Tracer*` that is null when tracing is off,
 * so the disabled hot path is a single pointer test. A Tracer
 * constructed with an empty prefix is inert (records nothing,
 * allocates nothing).
 */

#ifndef CRNET_SIM_TRACE_HH
#define CRNET_SIM_TRACE_HH

#include <cstdint>
#include <string>
#include <unordered_set>
#include <utility>
#include <vector>

#include "src/core/annotations.hh"
#include "src/sim/types.hh"

namespace crnet {

struct SimConfig;
class StateWriter;
class StateReader;

/** Worm-lifecycle event taxonomy (see docs/OBSERVABILITY.md). */
enum class TraceEventKind : std::uint8_t {
    Inject,       //!< Head flit entered the injection channel.
    Commit,       //!< Tail injected: CR commit point.
    HeadAdvance,  //!< Header won a VC allocation at a router.
    Block,        //!< First blocked cycle of a stall episode.
    SourceKill,   //!< Source timeout fired (PDS detected).
    RouterKill,   //!< Router-initiated kill (path-wide/drop schemes).
    KillHop,      //!< Forward kill token traversed a hop.
    BkillHop,     //!< Backward kill tore down one hop.
    Abort,        //!< Backward kill reached the source.
    Retransmit,   //!< Killed message requeued with a backoff gap.
    GiveUp,       //!< maxRetries exhausted; message failed.
    Deliver,      //!< Tail consumed (or assembly finalized).
    Discard,      //!< Partial assembly dropped by a kill/timeout.
    Fault,        //!< A FaultSchedule event fired.
    LinkLoss      //!< In-flight flit absorbed by a dead wire.
};

/** Stable lowercase event name ("inject", "head_advance", ...). */
const char* toString(TraceEventKind k);

/** One recorded event. Fields not meaningful for a kind stay invalid. */
struct TraceEvent
{
    Cycle at = 0;
    TraceEventKind kind = TraceEventKind::Inject;
    MsgId msg = kInvalidMsg;
    NodeId node = kInvalidNode;  //!< Where the event happened.
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;
    std::uint16_t attempt = 0;
    /**
     * Kind-specific detail: output port (HeadAdvance/KillHop), input
     * port (Block/RouterKill/BkillHop/LinkLoss), stall cycles
     * (SourceKill), backoff gap (Retransmit), latency (Deliver),
     * fault-event kind (Fault).
     */
    std::uint64_t arg = 0;
};

/** Event recorder with a watch-list filter and two-format flush. */
class Tracer
{
  public:
    /**
     * @param prefix     Output file prefix; empty = inert tracer.
     * @param watch_spec Watch list ("" = record everything). Comma-
     *                   separated message ids and/or `src-dst` pairs.
     */
    Tracer(std::string prefix, const std::string& watch_spec);

    /** Flushes (see flush()) if the caller has not. */
    ~Tracer();

    Tracer(const Tracer&) = delete;
    Tracer& operator=(const Tracer&) = delete;

    /**
     * Resolve the output prefix for a configuration: the `trace=` key
     * wins, then the CRNET_TRACE environment variable; "" = disabled.
     */
    static std::string resolvePrefix(const SimConfig& cfg);

    /** Set the timestamp recorded on subsequent events. */
    void beginCycle(Cycle now) { now_ = now; }

    /**
     * Thread-local staging for sharded ticks. While a non-null stage
     * is installed on the calling thread, record() appends the raw
     * event tuple there — unfiltered, because the watch filter's
     * pair-adoption mutates shared state — and the Network replays
     * the staged tuples through record() serially, in deterministic
     * shard/phase order, after the shard barrier. Pass null to
     * restore direct recording (the default on every thread).
     */
    static void setThreadStage(std::vector<TraceEvent>* stage);

    /**
     * Record one event, subject to the watch filter. A pair match
     * adopts the message id, so later events of the same worm that
     * carry no src/dst (kill tokens) still match.
     */
    CRNET_ALLOW("alloc",
                "event-buffer append and watch-filter adoption: "
                "tracing runs trade steady-state allocation freedom "
                "for observability by construction")
    void record(TraceEventKind kind, MsgId msg, NodeId node,
                NodeId src, NodeId dst, std::uint16_t attempt,
                std::uint64_t arg = 0);

    /** True when `record` with these fields would keep the event. */
    bool wants(MsgId msg, NodeId src, NodeId dst) const;

    const std::vector<TraceEvent>& events() const { return events_; }

    std::string jsonlPath() const { return prefix_ + ".jsonl"; }
    std::string chromePath() const { return prefix_ + ".json"; }

    /**
     * Write both output files. Idempotent; called by the destructor,
     * but callable earlier to read the files while the network lives.
     * Result-affecting: trace bytes are compared across schedulers
     * and jobs=N configurations, so emission order must not depend
     * on hash order.
     */
    CRNET_RESULT_AFFECTING
    void flush();

    /**
     * Checkpoint support (snapshot.hh): event buffer, adopted watch
     * ids and current cycle. Config-derived fields (prefix, parsed
     * watch list) are reconstructed by the constructor.
     */
    void saveState(StateWriter& w) const;
    void loadState(StateReader& r);

  private:
    bool pairMatches(NodeId src, NodeId dst) const;
    void writeJsonl() const;
    void writeChrome() const;

    std::string prefix_;
    bool enabled_ = false;
    bool watchAll_ = true;
    std::unordered_set<MsgId> watchedMsgs_;
    std::vector<std::pair<NodeId, NodeId>> watchedPairs_;
    std::vector<TraceEvent> events_;
    Cycle now_ = 0;
    bool flushed_ = false;

    /** Per-thread staging buffer (null = record directly). */
    static thread_local std::vector<TraceEvent>* tlsStage_;
};

} // namespace crnet

#endif // CRNET_SIM_TRACE_HH
