/**
 * @file
 * CRC-8 (polynomial 0x07, "CRC-8/SMBUS") used to model FCR's per-flit
 * integrity check.
 *
 * The paper's routers carry per-flit parity/checksum in hardware; we
 * model the same detection capability with a CRC over the flit payload.
 * Fault injection flips payload bits, so a corrupted flit fails the
 * check exactly as it would in hardware (we do not model undetectable
 * multi-bit aliasing; the fault model flags corruption explicitly and
 * the CRC is used to demonstrate the mechanism end to end).
 */

#ifndef CRNET_SIM_CHECKSUM_HH
#define CRNET_SIM_CHECKSUM_HH

#include <array>
#include <cstddef>
#include <cstdint>

namespace crnet {

namespace detail {

constexpr std::array<std::uint8_t, 256>
makeCrc8Table()
{
    std::array<std::uint8_t, 256> table{};
    for (int i = 0; i < 256; ++i) {
        std::uint8_t crc = static_cast<std::uint8_t>(i);
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc & 0x80) ? static_cast<std::uint8_t>((crc << 1) ^ 0x07)
                               : static_cast<std::uint8_t>(crc << 1);
        table[static_cast<std::size_t>(i)] = crc;
    }
    return table;
}

} // namespace detail

/** CRC-8/SMBUS over a byte stream (init 0, poly 0x07, no reflection). */
constexpr std::uint8_t
crc8(const std::uint8_t* data, std::size_t len)
{
    constexpr auto table = detail::makeCrc8Table();
    std::uint8_t crc = 0;
    for (std::size_t i = 0; i < len; ++i)
        crc = table[static_cast<std::size_t>(crc ^ data[i])];
    return crc;
}

/** CRC-8 over a 64-bit word (flit payload), low byte first. */
constexpr std::uint8_t
crc8(std::uint64_t payload)
{
    std::array<std::uint8_t, 8> bytes{};
    for (int byte = 0; byte < 8; ++byte)
        bytes[static_cast<std::size_t>(byte)] =
            static_cast<std::uint8_t>(payload >> (8 * byte));
    return crc8(bytes.data(), bytes.size());
}

namespace detail {

constexpr std::array<std::uint32_t, 256>
makeCrc32Table()
{
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t i = 0; i < 256; ++i) {
        std::uint32_t crc = i;
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc & 1u) ? (crc >> 1) ^ 0xedb88320u : crc >> 1;
        table[i] = crc;
    }
    return table;
}

} // namespace detail

/**
 * CRC-32 (IEEE 802.3, reflected, poly 0xEDB88320) over a byte stream.
 * Guards snapshot payloads and campaign-journal records (see
 * docs/ROBUSTNESS.md): a torn write or bit flip fails the check, so a
 * resume can fall back to the last good record instead of silently
 * loading garbage. Pass a previous result as `seed` to checksum a
 * stream incrementally.
 */
constexpr std::uint32_t
crc32(const std::uint8_t* data, std::size_t len,
      std::uint32_t seed = 0)
{
    constexpr auto table = detail::makeCrc32Table();
    std::uint32_t crc = ~seed;
    for (std::size_t i = 0; i < len; ++i)
        crc = table[(crc ^ data[i]) & 0xffu] ^ (crc >> 8);
    return ~crc;
}

} // namespace crnet

#endif // CRNET_SIM_CHECKSUM_HH
