/**
 * @file
 * CRC-8 (polynomial 0x07, "CRC-8/SMBUS") used to model FCR's per-flit
 * integrity check.
 *
 * The paper's routers carry per-flit parity/checksum in hardware; we
 * model the same detection capability with a CRC over the flit payload.
 * Fault injection flips payload bits, so a corrupted flit fails the
 * check exactly as it would in hardware (we do not model undetectable
 * multi-bit aliasing; the fault model flags corruption explicitly and
 * the CRC is used to demonstrate the mechanism end to end).
 */

#ifndef CRNET_SIM_CHECKSUM_HH
#define CRNET_SIM_CHECKSUM_HH

#include <array>
#include <cstdint>

namespace crnet {

namespace detail {

constexpr std::array<std::uint8_t, 256>
makeCrc8Table()
{
    std::array<std::uint8_t, 256> table{};
    for (int i = 0; i < 256; ++i) {
        std::uint8_t crc = static_cast<std::uint8_t>(i);
        for (int bit = 0; bit < 8; ++bit)
            crc = (crc & 0x80) ? static_cast<std::uint8_t>((crc << 1) ^ 0x07)
                               : static_cast<std::uint8_t>(crc << 1);
        table[static_cast<std::size_t>(i)] = crc;
    }
    return table;
}

} // namespace detail

/** CRC-8 over a 64-bit word (flit payload). */
constexpr std::uint8_t
crc8(std::uint64_t payload)
{
    constexpr auto table = detail::makeCrc8Table();
    std::uint8_t crc = 0;
    for (int byte = 0; byte < 8; ++byte) {
        const auto b = static_cast<std::uint8_t>(payload >> (8 * byte));
        crc = table[static_cast<std::size_t>(crc ^ b)];
    }
    return crc;
}

} // namespace crnet

#endif // CRNET_SIM_CHECKSUM_HH
