/**
 * @file
 * The bench timing shim: the one place in src/ allowed to read a
 * wall clock.
 *
 * Simulation *results* must be pure functions of the configuration
 * and seed — the `wallclock` rule of tools/crnet_analyze.py bans
 * time sources everywhere else in src/ so a stray host-time read can
 * never leak into a RunResult. Wall-clock observability fields
 * (RunResult::wallSeconds, CampaignSummary::wallSeconds, bench
 * timing footers) go through WallTimer, which is annotated as the
 * registered exception.
 */

#ifndef CRNET_SIM_WALLTIME_HH
#define CRNET_SIM_WALLTIME_HH

#include <chrono>

#include "src/core/annotations.hh"

namespace crnet {

/**
 * Monotonic stopwatch for timing footers and wallSeconds fields.
 * Starts at construction; seconds() reads the elapsed time without
 * stopping it.
 */
class WallTimer
{
  public:
    CRNET_ALLOW("wallclock", "the bench timing shim: the single "
                "registered wall-clock source in src/")
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    /** Seconds elapsed since construction (or the last reset()). */
    CRNET_ALLOW("wallclock", "the bench timing shim: the single "
                "registered wall-clock source in src/")
    double seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    /** Restart the stopwatch. */
    CRNET_ALLOW("wallclock", "the bench timing shim: the single "
                "registered wall-clock source in src/")
    void reset() { start_ = std::chrono::steady_clock::now(); }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace crnet

#endif // CRNET_SIM_WALLTIME_HH
