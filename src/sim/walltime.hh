/**
 * @file
 * The bench timing shim: the one place in src/ allowed to read a
 * wall clock.
 *
 * Simulation *results* must be pure functions of the configuration
 * and seed — the `wallclock` rule of tools/crnet_analyze.py bans
 * time sources everywhere else in src/ so a stray host-time read can
 * never leak into a RunResult. Wall-clock observability fields
 * (RunResult::wallSeconds, CampaignSummary::wallSeconds, bench
 * timing footers) go through WallTimer, which is annotated as the
 * registered exception.
 */

#ifndef CRNET_SIM_WALLTIME_HH
#define CRNET_SIM_WALLTIME_HH

#include <chrono>
#include <cstdint>

#include "src/core/annotations.hh"

namespace crnet {

/**
 * Monotonic stopwatch for timing footers and wallSeconds fields.
 * Starts at construction; seconds() reads the elapsed time without
 * stopping it.
 */
class WallTimer
{
  public:
    CRNET_ALLOW("wallclock", "the bench timing shim: the single "
                "registered wall-clock source in src/")
    WallTimer() : start_(std::chrono::steady_clock::now()) {}

    /** Seconds elapsed since construction (or the last reset()). */
    CRNET_ALLOW("wallclock", "the bench timing shim: the single "
                "registered wall-clock source in src/")
    double seconds() const
    {
        return std::chrono::duration<double>(
                   std::chrono::steady_clock::now() - start_)
            .count();
    }

    /** Restart the stopwatch. */
    CRNET_ALLOW("wallclock", "the bench timing shim: the single "
                "registered wall-clock source in src/")
    void reset() { start_ = std::chrono::steady_clock::now(); }

    /**
     * Monotonic nanosecond stamp for the telemetry self-profiler
     * (src/sim/telemetry.hh). Differences between stamps are
     * meaningful; the absolute value is not. Allocation-free, so it
     * is safe to call from CRNET_HOT_PATH code.
     */
    CRNET_ALLOW("wallclock", "the bench timing shim: the single "
                "registered wall-clock source in src/; the telemetry "
                "self-profiler reads the clock only through this stamp")
    static std::uint64_t nanos()
    {
        return static_cast<std::uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now().time_since_epoch())
                .count());
    }

  private:
    std::chrono::steady_clock::time_point start_;
};

} // namespace crnet

#endif // CRNET_SIM_WALLTIME_HH
