/**
 * @file
 * Snapshot container I/O, config fingerprinting and the shared
 * field-group serializers (flits, messages, the stats block). The
 * per-component saveState/loadState bodies live next to the
 * components they serialize; this file owns everything format-level.
 */

#include "src/sim/snapshot.hh"

#include <atomic>
#include <cerrno>
#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "src/core/metrics.hh"
#include "src/core/network.hh"
#include "src/router/flit.hh"
#include "src/sim/audit.hh"
#include "src/sim/checksum.hh"
#include "src/sim/config.hh"
#include "src/sim/telemetry.hh"
#include "src/traffic/message.hh"

namespace crnet {

// --- Shared field-group serializers ------------------------------------

void
saveFlit(StateWriter& w, const Flit& f)
{
    w.u8(static_cast<std::uint8_t>(f.type));
    w.u64(f.msg);
    w.u32(f.seq);
    w.u32(f.src);
    w.u32(f.dst);
    w.u8(f.vcClass);
    w.u8(f.misrouteBudget);
    w.u16(f.attempt);
    w.u32(f.payloadLen);
    w.u32(f.pairSeq);
    w.u64(f.createdAt);
    w.u64(f.headInjectedAt);
    w.b(f.measured);
    w.u64(f.payload);
    w.u8(f.crc);
    w.b(f.corrupted);
}

void
loadFlit(StateReader& r, Flit& f)
{
    f.type = static_cast<FlitType>(r.u8());
    f.msg = r.u64();
    f.seq = r.u32();
    f.src = r.u32();
    f.dst = r.u32();
    f.vcClass = r.u8();
    f.misrouteBudget = r.u8();
    f.attempt = r.u16();
    f.payloadLen = r.u32();
    f.pairSeq = r.u32();
    f.createdAt = r.u64();
    f.headInjectedAt = r.u64();
    f.measured = r.b();
    f.payload = r.u64();
    f.crc = r.u8();
    f.corrupted = r.b();
}

void
saveMessage(StateWriter& w, const PendingMessage& m)
{
    w.u64(m.id);
    w.u32(m.src);
    w.u32(m.dst);
    w.u32(m.payloadLen);
    w.u64(m.createdAt);
    w.u32(m.pairSeq);
    w.u16(m.attempt);
    w.u64(m.notBefore);
    w.b(m.measured);
}

void
loadMessage(StateReader& r, PendingMessage& m)
{
    m.id = r.u64();
    m.src = r.u32();
    m.dst = r.u32();
    m.payloadLen = r.u32();
    m.createdAt = r.u64();
    m.pairSeq = r.u32();
    m.attempt = r.u16();
    m.notBefore = r.u64();
    m.measured = r.b();
}

void
saveNetworkStats(StateWriter& w, const NetworkStats& s)
{
    s.router.flitsForwarded.saveState(w);
    s.router.headersRouted.saveState(w);
    s.router.escapeAllocations.saveState(w);
    s.router.misrouteHops.saveState(w);
    s.router.killsForwarded.saveState(w);
    s.router.killsAnnihilated.saveState(w);
    s.router.pathWideKills.saveState(w);
    s.router.bkillHops.saveState(w);
    s.router.flitsPurged.saveState(w);
    s.router.stragglersDropped.saveState(w);
    s.router.staleKills.saveState(w);
    s.router.lateCreditsDropped.saveState(w);
    s.router.linkDeathTeardowns.saveState(w);

    s.messagesGenerated.saveState(w);
    s.messagesMeasured.saveState(w);
    s.sourceQueueDrops.saveState(w);
    s.flitsInjected.saveState(w);
    s.padFlitsInjected.saveState(w);
    s.sourceKills.saveState(w);
    s.abortedByBkill.saveState(w);
    s.messagesCommitted.saveState(w);
    s.messagesFailed.saveState(w);
    s.measuredFailed.saveState(w);

    s.messagesDelivered.saveState(w);
    s.measuredDelivered.saveState(w);
    s.corruptedDeliveries.saveState(w);
    s.orderViolations.saveState(w);
    s.duplicateDeliveries.saveState(w);
    s.refusals.saveState(w);
    s.staleAttemptFlits.saveState(w);
    s.flitsConsumed.saveState(w);
    s.padFlitsConsumed.saveState(w);
    s.measuredPayloadFlits.saveState(w);

    s.faultEventsApplied.saveState(w);
    s.flitsLostOnDeadLinks.saveState(w);
    s.killsAbsorbedAtDeadLinks.saveState(w);
    s.controlAbsorbedAtDeadLinks.saveState(w);
    s.receiverTimeouts.saveState(w);
    s.assembliesFinalized.saveState(w);
    s.assembliesDiscarded.saveState(w);
    s.retryDuplicatesSuppressed.saveState(w);

    s.totalLatency.saveState(w);
    s.netLatency.saveState(w);
    s.attempts.saveState(w);
    s.padOverhead.saveState(w);
    s.latencyHist.saveState(w);
}

void
loadNetworkStats(StateReader& r, NetworkStats& s)
{
    s.router.flitsForwarded.loadState(r);
    s.router.headersRouted.loadState(r);
    s.router.escapeAllocations.loadState(r);
    s.router.misrouteHops.loadState(r);
    s.router.killsForwarded.loadState(r);
    s.router.killsAnnihilated.loadState(r);
    s.router.pathWideKills.loadState(r);
    s.router.bkillHops.loadState(r);
    s.router.flitsPurged.loadState(r);
    s.router.stragglersDropped.loadState(r);
    s.router.staleKills.loadState(r);
    s.router.lateCreditsDropped.loadState(r);
    s.router.linkDeathTeardowns.loadState(r);

    s.messagesGenerated.loadState(r);
    s.messagesMeasured.loadState(r);
    s.sourceQueueDrops.loadState(r);
    s.flitsInjected.loadState(r);
    s.padFlitsInjected.loadState(r);
    s.sourceKills.loadState(r);
    s.abortedByBkill.loadState(r);
    s.messagesCommitted.loadState(r);
    s.messagesFailed.loadState(r);
    s.measuredFailed.loadState(r);

    s.messagesDelivered.loadState(r);
    s.measuredDelivered.loadState(r);
    s.corruptedDeliveries.loadState(r);
    s.orderViolations.loadState(r);
    s.duplicateDeliveries.loadState(r);
    s.refusals.loadState(r);
    s.staleAttemptFlits.loadState(r);
    s.flitsConsumed.loadState(r);
    s.padFlitsConsumed.loadState(r);
    s.measuredPayloadFlits.loadState(r);

    s.faultEventsApplied.loadState(r);
    s.flitsLostOnDeadLinks.loadState(r);
    s.killsAbsorbedAtDeadLinks.loadState(r);
    s.controlAbsorbedAtDeadLinks.loadState(r);
    s.receiverTimeouts.loadState(r);
    s.assembliesFinalized.loadState(r);
    s.assembliesDiscarded.loadState(r);
    s.retryDuplicatesSuppressed.loadState(r);

    s.totalLatency.loadState(r);
    s.netLatency.loadState(r);
    s.attempts.loadState(r);
    s.padOverhead.loadState(r);
    s.latencyHist.loadState(r);
}

// --- Config fingerprint ------------------------------------------------

std::uint64_t
configFingerprint(const SimConfig& cfg)
{
    // Every semantic field, in declaration order. traceFile, jobs,
    // sched and shards are deliberately excluded: the schedulers and
    // shard counts are proven bit-identical, the serialized wake
    // flags are a sound superset under every scheduler (sweep sets
    // flags and never clears them; a component that was never woken
    // holds no state), the per-kind awake counts are recounted on
    // load, and per-shard counter blocks are folded into the master
    // stats before serialization — so a snapshot captured under
    // sched=sweep restores under sched=event, and one captured at
    // shards=4 restores at shards=1, and vice versa
    // (tests/test_shard.cc). The telemetry keys (statusFile, statusEverySeconds,
    // profileEnabled) are likewise excluded: telemetry on vs off is
    // byte-identical (tests/test_telemetry.cc), so a checkpoint taken
    // with profiling on restores into an unprofiled run and vice
    // versa. watchSpec *is* included because the watch list shapes
    // the tracer state the snapshot carries.
    StateWriter w;
    w.u8(static_cast<std::uint8_t>(cfg.topology));
    w.u32(cfg.radixK);
    w.u32(cfg.dimensionsN);
    w.u32(cfg.numVcs);
    w.u32(cfg.bufferDepth);
    w.u32(cfg.injectionChannels);
    w.u32(cfg.ejectionChannels);
    w.u32(cfg.channelLatency);
    w.u8(static_cast<std::uint8_t>(cfg.routing));
    w.u8(static_cast<std::uint8_t>(cfg.protocol));
    w.u8(static_cast<std::uint8_t>(cfg.timeoutScheme));
    w.u64(cfg.timeout);
    w.u8(static_cast<std::uint8_t>(cfg.backoff));
    w.u64(cfg.backoffGap);
    w.u64(cfg.backoffCap);
    w.u32(cfg.misrouteAfterRetries);
    w.u32(cfg.misrouteBudget);
    w.u32(cfg.maxRetries);
    w.b(cfg.enforceDestOrder);
    w.u32(cfg.padSlack);
    w.u8(static_cast<std::uint8_t>(cfg.pattern));
    w.f64(cfg.injectionRate);
    w.u32(cfg.messageLength);
    w.u32(cfg.messageLengthB);
    w.f64(cfg.bimodalFracB);
    w.f64(cfg.hotspotFraction);
    w.u32(cfg.maxPendingPerNode);
    w.f64(cfg.transientFaultRate);
    w.u32(cfg.permanentLinkFaults);
    w.u32(cfg.dynamicLinkKills);
    w.u32(cfg.dynamicDirectedKills);
    w.u32(cfg.dynamicRouterKills);
    w.u64(cfg.faultWindowStart);
    w.u64(cfg.faultWindowEnd);
    w.u64(cfg.linkRepairAfter);
    w.u64(cfg.burstStart);
    w.u64(cfg.burstLen);
    w.f64(cfg.burstRate);
    w.str(cfg.faultScenario);
    w.str(cfg.watchSpec);
    w.u64(cfg.sampleInterval);
    w.b(cfg.heatmapEnabled);
    w.u64(cfg.seed);
    w.u64(cfg.warmupCycles);
    w.u64(cfg.measureCycles);
    w.u64(cfg.drainCycles);
    w.u64(cfg.deadlockThreshold);
    w.u64(cfg.auditInterval);
    w.u8(CRNET_AUDIT_ENABLED ? 1 : 0);

    const std::vector<std::uint8_t>& bytes = w.bytes();
    const std::uint32_t lo = crc32(bytes.data(), bytes.size());
    const std::uint32_t hi = crc32(bytes.data(), bytes.size(), lo);
    return (static_cast<std::uint64_t>(hi) << 32) | lo;
}

// --- Capture / restore -------------------------------------------------

Snapshot
captureSnapshot(const Network& net)
{
    StateWriter w;
    net.saveState(w);
    Snapshot snap;
    snap.at = net.now();
    snap.fingerprint = configFingerprint(net.config());
    snap.payload = w.bytes();
    return snap;
}

std::string
restoreSnapshot(Network& net, const Snapshot& snap)
{
    const std::uint64_t want = configFingerprint(net.config());
    if (snap.fingerprint != want)
        return "config fingerprint mismatch: snapshot was taken from "
               "a differently-configured network (snapshot " +
               std::to_string(snap.fingerprint) + ", target " +
               std::to_string(want) + ")";
    StateReader r(snap.payload);
    net.loadState(r);
    if (!r.done())
        panic("snapshot payload has ", r.remaining(),
              " trailing bytes after restore (version skew or "
              "serialization bug)");
    return "";
}

// --- File container ----------------------------------------------------

namespace {

constexpr char kSnapshotMagic[8] = {'C', 'R', 'N', 'E',
                                    'T', 'S', 'N', 'P'};

std::string
errnoMessage(const std::string& what, const std::string& path)
{
    return what + " " + path + ": " + std::strerror(errno);
}

} // namespace

std::string
atomicWriteFile(const std::string& path,
                const std::vector<std::uint8_t>& bytes)
{
    const std::string tmp = path + ".tmp";
    std::FILE* f = std::fopen(tmp.c_str(), "wb");
    if (f == nullptr)
        return errnoMessage("cannot create", tmp);
    if (!bytes.empty() &&
        std::fwrite(bytes.data(), 1, bytes.size(), f) != bytes.size()) {
        std::fclose(f);
        return errnoMessage("short write to", tmp);
    }
    if (std::fflush(f) != 0) {
        std::fclose(f);
        return errnoMessage("cannot flush", tmp);
    }
    if (fsync(fileno(f)) != 0) {
        std::fclose(f);
        return errnoMessage("cannot fsync", tmp);
    }
    if (std::fclose(f) != 0)
        return errnoMessage("cannot close", tmp);
    if (std::rename(tmp.c_str(), path.c_str()) != 0)
        return errnoMessage("cannot rename into place:", path);
    // Telemetry: journal/snapshot/status write volume. Registered once
    // per process; observability only, never read by results.
    CRNET_ALLOW("global-state", "cached telemetry handles: "
                "registry-owned atomics, observability only")
    static std::atomic<std::uint64_t>* const writes =
        Telemetry::instance().counter("io.atomic_write_calls");
    CRNET_ALLOW("global-state", "cached telemetry handles: "
                "registry-owned atomics, observability only")
    static std::atomic<std::uint64_t>* const written =
        Telemetry::instance().counter("io.atomic_write_bytes");
    writes->fetch_add(1, std::memory_order_relaxed);
    written->fetch_add(bytes.size(), std::memory_order_relaxed);
    return "";
}

std::string
readFileBytes(const std::string& path, std::vector<std::uint8_t>& out)
{
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr)
        return errnoMessage("cannot open", path);
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[65536];
    for (;;) {
        const std::size_t n = std::fread(buf, 1, sizeof(buf), f);
        bytes.insert(bytes.end(), buf, buf + n);
        if (n < sizeof(buf)) {
            if (std::ferror(f) != 0) {
                std::fclose(f);
                return errnoMessage("read error on", path);
            }
            break;
        }
    }
    std::fclose(f);
    out = std::move(bytes);
    return "";
}

std::string
writeSnapshotFile(const std::string& path, const Snapshot& snap)
{
    StateWriter w;
    for (char c : kSnapshotMagic)
        w.u8(static_cast<std::uint8_t>(c));
    w.u32(kSnapshotVersion);
    w.u64(snap.fingerprint);
    w.u64(snap.at);
    w.u64(snap.payload.size());
    for (std::uint8_t byte : snap.payload)
        w.u8(byte);
    const std::vector<std::uint8_t>& body = w.bytes();
    StateWriter trailer;
    trailer.u32(crc32(body.data(), body.size()));
    std::vector<std::uint8_t> file = body;
    file.insert(file.end(), trailer.bytes().begin(),
                trailer.bytes().end());
    return atomicWriteFile(path, file);
}

std::string
readSnapshotFile(const std::string& path, Snapshot& out)
{
    std::vector<std::uint8_t> file;
    std::string err = readFileBytes(path, file);
    if (!err.empty())
        return err;
    // Fixed header (magic + version + fingerprint + at + payload len)
    // plus the CRC-32 trailer.
    constexpr std::size_t kHeader = 8 + 4 + 8 + 8 + 8;
    if (file.size() < kHeader + 4)
        return "snapshot file " + path + " is truncated (" +
               std::to_string(file.size()) + " bytes)";
    const std::size_t bodyLen = file.size() - 4;
    StateReader tr(file.data() + bodyLen, 4);
    const std::uint32_t wantCrc = tr.u32();
    const std::uint32_t haveCrc = crc32(file.data(), bodyLen);
    if (wantCrc != haveCrc)
        return "snapshot file " + path + " failed its CRC-32 check "
               "(stored " + std::to_string(wantCrc) + ", computed " +
               std::to_string(haveCrc) + ")";
    StateReader r(file.data(), bodyLen);
    for (char c : kSnapshotMagic)
        if (r.u8() != static_cast<std::uint8_t>(c))
            return "snapshot file " + path + " has a bad magic number";
    const std::uint32_t version = r.u32();
    if (version != kSnapshotVersion)
        return "snapshot file " + path + " has format version " +
               std::to_string(version) + "; this build reads version " +
               std::to_string(kSnapshotVersion);
    Snapshot snap;
    snap.fingerprint = r.u64();
    snap.at = r.u64();
    const std::uint64_t payloadLen = r.u64();
    if (payloadLen != r.remaining())
        return "snapshot file " + path + " payload length mismatch "
               "(header says " + std::to_string(payloadLen) +
               ", file carries " + std::to_string(r.remaining()) + ")";
    snap.payload.assign(file.begin() +
                            static_cast<std::ptrdiff_t>(kHeader),
                        file.begin() +
                            static_cast<std::ptrdiff_t>(bodyLen));
    out = std::move(snap);
    return "";
}

} // namespace crnet
