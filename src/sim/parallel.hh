/**
 * @file
 * Parallel experiment execution: a small fixed-size thread pool plus
 * an index-space `parallelFor` used by every batch engine
 * (`runMany`/`sweepLoads`, `runReplicated`, `runCampaign`).
 *
 * Design constraints, in order:
 *   1. *Determinism.* Each work item owns its whole simulation state
 *      (a `Network` and its seeded `Rng`), so items share nothing and
 *      results written by index are bit-identical to a sequential
 *      run regardless of scheduling. Nothing here may introduce
 *      cross-item communication.
 *   2. *Submission-ordered collection.* Results land in caller-owned
 *      slots addressed by item index; completion order never shows.
 *   3. *Zero cost when off.* `jobs <= 1` (the default) runs inline on
 *      the calling thread: no threads, no locks, no behavior change.
 *
 * Job-count resolution (`resolveJobs`): an explicit request (the
 * `jobs=` config key) wins; otherwise the `CRNET_JOBS` environment
 * variable; otherwise 1. `hardwareJobs()` reports the machine width
 * for observability output.
 */

#ifndef CRNET_SIM_PARALLEL_HH
#define CRNET_SIM_PARALLEL_HH

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "src/sim/log.hh"

namespace crnet {

/** Upper bound on worker threads (sanity clamp, not a target). */
inline constexpr unsigned kMaxJobs = 1024;

/** Worker threads the hardware offers (always >= 1). */
unsigned hardwareJobs();

/**
 * Resolve a requested job count: `requested` > 0 wins, else the
 * CRNET_JOBS environment variable, else 1. Clamped to [1, kMaxJobs].
 */
unsigned resolveJobs(unsigned requested = 0);

/**
 * Resolve a requested intra-run shard count (the `shards=` config
 * key): `requested` > 0 wins, else the CRNET_SHARDS environment
 * variable, else 1 (unsharded). Clamped to [1, kMaxJobs]. Shard
 * count never changes results — only how one network's node array is
 * ticked — so like `jobs` it is an execution knob, not a model knob.
 */
unsigned resolveShards(unsigned requested = 0);

/**
 * Fixed-size pool of worker threads draining one task queue.
 *
 * Tasks must not throw (engine code reports failure via panic/fatal,
 * which abort the process); an escaping exception would terminate.
 */
class ThreadPool
{
  public:
    /** Spawn `jobs` workers (clamped to [1, kMaxJobs]). */
    explicit ThreadPool(unsigned jobs);

    /** Joins all workers; pending tasks are completed first. */
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    unsigned jobs() const
    {
        return static_cast<unsigned>(workers_.size());
    }

    /** Enqueue one task. */
    void submit(std::function<void()> task);

    /** Block until every submitted task has finished. */
    void wait();

  private:
    void workerLoop();

    std::vector<std::thread> workers_;
    std::deque<std::function<void()>> queue_;
    std::mutex mutex_;
    std::condition_variable workReady_;
    std::condition_variable allDone_;
    std::size_t inFlight_ = 0;  //!< Queued + currently running.
    bool stopping_ = false;
};

/**
 * Run `fn(i)` for every i in [0, n) on up to `jobs` worker threads
 * (pass the result of resolveJobs). With `jobs <= 1` or `n <= 1` the
 * loop runs inline on the calling thread. Returns when all items are
 * done. `fn` must confine its writes to per-index state (e.g.
 * `out[i] = ...`) for the deterministic-collection guarantee to hold.
 *
 * Every item runs under a LogRunScope tagging warn()/inform() output
 * with its index — in the inline path too, so jobs=1 and jobs=N
 * produce identical log lines for the same item.
 */
template <typename Fn>
void
parallelFor(std::size_t n, unsigned jobs, Fn&& fn)
{
    if (n == 0)
        return;
    const auto width = static_cast<unsigned>(
        std::min<std::size_t>(jobs, n));
    if (width <= 1) {
        for (std::size_t i = 0; i < n; ++i) {
            LogRunScope scope(static_cast<std::int64_t>(i));
            fn(i);
        }
        return;
    }
    ThreadPool pool(width);
    for (std::size_t i = 0; i < n; ++i) {
        pool.submit([&fn, i] {
            LogRunScope scope(static_cast<std::int64_t>(i));
            fn(i);
        });
    }
    pool.wait();
}

} // namespace crnet

#endif // CRNET_SIM_PARALLEL_HH
