/**
 * @file
 * Structural router delay/area model, after Chien's cost and
 * performance model for k-ary n-cube wormhole routers [7].
 *
 * The paper's implementation argument (Sec. 5) is that CR routers stay
 * close to dimension-order routers in complexity because deadlock
 * freedom needs no virtual channels, while VC-based adaptive schemes
 * (Duato, Linder-Harden, planar-adaptive) pay for VC allocation and
 * wider crossbars on the critical path. We reproduce that comparison
 * with a gate-level structural model:
 *
 *   - every primitive has a delay in gate units (one unit ~0.7 ns in
 *     the 0.8um gate-array technology the original model targeted);
 *   - an arbiter over k requesters costs 1 + ceil(log2 k) units;
 *   - a k-input multiplexer costs ceil(log2 k) units;
 *   - the router cycle time is the slowest of the routing-decision,
 *     VC-allocation, switch-traversal and flow-control stages;
 *   - area is estimated in gate equivalents, dominated by buffers.
 *
 * CR's kill handling sits on the control path (purge + token forward)
 * and adds area but no data-path delay, which is the paper's claim;
 * the injector/receiver additions (pad counter, I_min adder, timeout
 * counter, backoff LFSR) are reported separately as NIC gates.
 */

#ifndef CRNET_COST_ROUTER_COST_HH
#define CRNET_COST_ROUTER_COST_HH

#include <cstdint>
#include <string>

#include "src/sim/config.hh"

namespace crnet {

/** What to cost out. */
struct RouterCostParams
{
    std::uint32_t dims = 2;         //!< Network dimensionality n.
    std::uint32_t numVcs = 1;       //!< VCs per physical channel.
    std::uint32_t bufferDepth = 2;  //!< Flits per VC buffer.
    std::uint32_t flitBits = 16;    //!< Physical channel width.
    RoutingKind routing = RoutingKind::MinimalAdaptive;
    ProtocolKind protocol = ProtocolKind::Cr;
};

/** Delay/area estimate. */
struct RouterCost
{
    double routingDelay = 0.0;    //!< Gate units.
    double vcAllocDelay = 0.0;
    double switchDelay = 0.0;
    double flowControlDelay = 0.0;
    double cycleTime = 0.0;       //!< Max of the stages, gate units.
    double cycleTimeNs = 0.0;     //!< Same, at 0.7 ns per unit.
    double routerGates = 0.0;     //!< Router area estimate.
    double nicGates = 0.0;        //!< Injector+receiver extras.
};

/** Estimate one design point. */
RouterCost estimateRouterCost(const RouterCostParams& params);

/** Short label used by the complexity table ("CR", "DOR-2VC", ...). */
std::string costLabel(const RouterCostParams& params);

} // namespace crnet

#endif // CRNET_COST_ROUTER_COST_HH
