#include "src/cost/router_cost.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace crnet {

namespace {

/** ceil(log2 k) for k >= 1. */
double
lg(std::uint32_t k)
{
    if (k <= 1)
        return 0.0;
    return std::ceil(std::log2(static_cast<double>(k)));
}

/** Arbiter over k requesters: priority tree plus grant latch. */
double
arbiter(std::uint32_t k)
{
    return k <= 1 ? 0.0 : 1.0 + lg(k);
}

/** k-input multiplexer. */
double
mux(std::uint32_t k)
{
    return lg(k);
}

} // namespace

RouterCost
estimateRouterCost(const RouterCostParams& p)
{
    RouterCost c;
    const std::uint32_t phys_ports = 2 * p.dims + 1;  // + injection.
    const std::uint32_t vcs = std::max<std::uint32_t>(1, p.numVcs);
    const std::uint32_t switch_inputs = phys_ports;

    // --- Routing decision ------------------------------------------
    // Address compare per dimension (2 units) feeding the candidate
    // select. Deterministic DOR picks one port (priority encode over
    // dims); adaptive relations select among all productive ports.
    switch (p.routing) {
      case RoutingKind::DimensionOrder:
        c.routingDelay = 2.0 + lg(p.dims) + 1.0;
        break;
      case RoutingKind::MinimalAdaptive:
        c.routingDelay = 2.0 + arbiter(2 * p.dims);
        break;
      case RoutingKind::Duato:
        // Adaptive select plus the escape-eligibility check in
        // series.
        c.routingDelay = 2.0 + arbiter(2 * p.dims) + 2.0;
        break;
      case RoutingKind::WestFirst:
      case RoutingKind::NegativeFirst:
        c.routingDelay = 2.0 + arbiter(2 * p.dims) + 1.0;
        break;
      case RoutingKind::PlanarAdaptive:
        // Two-port adaptive select within the active plane, plus the
        // plane-transition check in series.
        c.routingDelay = 2.0 + arbiter(2) + 1.0;
        break;
    }

    // --- VC allocation ------------------------------------------------
    // With one VC per channel this stage vanishes: the output either
    // is free or is not. With V VCs every output channel arbitrates
    // among (ports * V) possible claimants and the winner's state
    // machine updates.
    c.vcAllocDelay = vcs == 1 ? 0.0
                              : arbiter(switch_inputs * vcs) + 1.0;

    // --- Switch traversal ------------------------------------------------
    // Crossbar input mux per output plus VC mux onto the channel.
    c.switchDelay = mux(switch_inputs) + mux(vcs) + 1.0;

    // --- Flow control -------------------------------------------------------
    // Credit decrement/test; with VCs, per-VC credit state must be
    // selected first. CR's kill detection adds control logic off this
    // path (purge and token forward happen in parallel with the
    // normal pipeline), so it shows up in area only.
    c.flowControlDelay = 2.0 + mux(vcs);

    c.cycleTime = std::max({c.routingDelay, c.vcAllocDelay,
                            c.switchDelay, c.flowControlDelay});
    c.cycleTimeNs = 0.7 * c.cycleTime;

    // --- Area ------------------------------------------------------------
    // Buffers: 6 gate equivalents per storage bit.
    const double buffer_gates = 6.0 * p.flitBits * p.bufferDepth *
                                vcs * phys_ports;
    // Crossbar: pass gates per crosspoint times channel width.
    const double xbar_gates = 1.5 * p.flitBits * switch_inputs *
                              (2.0 * p.dims + 1.0);
    // Control: routing + arbiters + per-VC state (~25 gates per VC
    // state machine), plus CR kill/purge control when present.
    double control_gates = 150.0 + 25.0 * vcs * phys_ports;
    if (p.protocol != ProtocolKind::None)
        control_gates += 40.0 * phys_ports;  // Kill token handling.
    c.routerGates = buffer_gates + xbar_gates + control_gates;

    // --- NIC extras --------------------------------------------------------
    // CR: pad counter + distance calculator + stall counter + backoff
    // LFSR. FCR adds per-flit CRC generators/checkers.
    switch (p.protocol) {
      case ProtocolKind::None:
        c.nicGates = 0.0;
        break;
      case ProtocolKind::Cr:
        c.nicGates = 220.0;
        break;
      case ProtocolKind::Fcr:
        c.nicGates = 220.0 + 8.0 * p.flitBits;
        break;
    }
    return c;
}

std::string
costLabel(const RouterCostParams& p)
{
    std::ostringstream os;
    os << toString(p.routing) << "-" << p.numVcs << "vc";
    if (p.protocol != ProtocolKind::None)
        os << "+" << toString(p.protocol);
    return os.str();
}

} // namespace crnet
