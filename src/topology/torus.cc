#include "src/topology/topology.hh"

#include "src/sim/log.hh"

namespace crnet {

Topology::Topology(TopologyKind kind, std::uint32_t k, std::uint32_t n)
    : kind_(kind), k_(k), n_(n)
{
    if (k < 2)
        fatal("topology radix must be >= 2");
    if (n < 1 || n > kMaxDims)
        fatal("topology dimensionality must be in [1, ", kMaxDims, "]");
    std::uint64_t nodes = 1;
    for (std::uint32_t d = 0; d < n; ++d)
        nodes *= k;
    if (nodes > (1ULL << 24))
        fatal("topology too large: ", nodes, " nodes");
    numNodes_ = static_cast<NodeId>(nodes);
}

std::uint32_t
Topology::distance(NodeId from, NodeId to) const
{
    std::uint32_t hops = 0;
    for (std::uint32_t d = 0; d < n_; ++d) {
        const DimRoute r = dimRoute(from, to, d);
        if (r.plusMinimal)
            hops += r.plusHops;
        else if (r.minusMinimal)
            hops += r.minusHops;
    }
    return hops;
}

TorusTopology::TorusTopology(std::uint32_t k, std::uint32_t n)
    : Topology(TopologyKind::Torus, k, n)
{
}

NodeId
TorusTopology::neighbor(NodeId node, PortId port) const
{
    const std::uint32_t d = portDim(port);
    if (d >= n_)
        panic("port ", port, " out of range for ", n_, " dimensions");
    Coordinates c = coords(node);
    if (portDir(port) == Direction::Plus)
        c[d] = static_cast<std::uint16_t>((c[d] + 1) % k_);
    else
        c[d] = static_cast<std::uint16_t>((c[d] + k_ - 1) % k_);
    return nodeId(c);
}

DimRoute
TorusTopology::dimRoute(NodeId from, NodeId to, std::uint32_t dim) const
{
    const Coordinates a = coords(from);
    const Coordinates b = coords(to);
    DimRoute r;
    if (a[dim] == b[dim])
        return r;
    const std::uint32_t plus = (b[dim] + k_ - a[dim]) % k_;
    const std::uint32_t minus = k_ - plus;
    r.plusHops = plus;
    r.minusHops = minus;
    r.plusMinimal = plus <= minus;
    r.minusMinimal = minus <= plus;
    return r;
}

bool
TorusTopology::crossesDateline(NodeId node, PortId port) const
{
    const std::uint32_t d = portDim(port);
    const Coordinates c = coords(node);
    if (portDir(port) == Direction::Plus)
        return c[d] == k_ - 1;
    return c[d] == 0;
}

std::uint32_t
TorusTopology::diameter() const
{
    return n_ * (k_ / 2);
}

std::unique_ptr<Topology>
makeTopology(const SimConfig& cfg)
{
    switch (cfg.topology) {
      case TopologyKind::Torus:
        return std::make_unique<TorusTopology>(cfg.radixK,
                                               cfg.dimensionsN);
      case TopologyKind::Mesh:
        return std::make_unique<MeshTopology>(cfg.radixK,
                                              cfg.dimensionsN);
    }
    panic("bad TopologyKind in makeTopology");
}

} // namespace crnet
