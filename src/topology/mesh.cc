#include "src/topology/topology.hh"

#include "src/sim/log.hh"

namespace crnet {

MeshTopology::MeshTopology(std::uint32_t k, std::uint32_t n)
    : Topology(TopologyKind::Mesh, k, n)
{
}

NodeId
MeshTopology::neighbor(NodeId node, PortId port) const
{
    const std::uint32_t d = portDim(port);
    if (d >= n_)
        panic("port ", port, " out of range for ", n_, " dimensions");
    Coordinates c = coords(node);
    if (portDir(port) == Direction::Plus) {
        if (c[d] == k_ - 1)
            return kInvalidNode;
        c[d] = static_cast<std::uint16_t>(c[d] + 1);
    } else {
        if (c[d] == 0)
            return kInvalidNode;
        c[d] = static_cast<std::uint16_t>(c[d] - 1);
    }
    return nodeId(c);
}

DimRoute
MeshTopology::dimRoute(NodeId from, NodeId to, std::uint32_t dim) const
{
    const Coordinates a = coords(from);
    const Coordinates b = coords(to);
    DimRoute r;
    if (a[dim] == b[dim])
        return r;
    if (b[dim] > a[dim]) {
        r.plusMinimal = true;
        r.plusHops = static_cast<std::uint32_t>(b[dim] - a[dim]);
    } else {
        r.minusMinimal = true;
        r.minusHops = static_cast<std::uint32_t>(a[dim] - b[dim]);
    }
    return r;
}

std::uint32_t
MeshTopology::diameter() const
{
    return n_ * (k_ - 1);
}

} // namespace crnet
