/**
 * @file
 * Coordinate arithmetic for k-ary n-cube topologies.
 *
 * Coordinates are stored in a fixed-capacity array (max 8 dimensions)
 * so routing never allocates. Linearization is row-major with dimension
 * 0 fastest: id = c0 + k*c1 + k^2*c2 + ...
 */

#ifndef CRNET_TOPOLOGY_COORDINATES_HH
#define CRNET_TOPOLOGY_COORDINATES_HH

#include <array>
#include <cstdint>

#include "src/sim/log.hh"
#include "src/sim/types.hh"

namespace crnet {

/** Maximum supported dimensionality. */
inline constexpr std::uint32_t kMaxDims = 8;

/** A point in a k-ary n-cube. */
struct Coordinates
{
    std::array<std::uint16_t, kMaxDims> c{};
    std::uint8_t n = 0;

    std::uint16_t operator[](std::uint32_t d) const { return c[d]; }
    std::uint16_t& operator[](std::uint32_t d) { return c[d]; }

    bool
    operator==(const Coordinates& o) const
    {
        if (n != o.n)
            return false;
        for (std::uint32_t d = 0; d < n; ++d)
            if (c[d] != o.c[d])
                return false;
        return true;
    }
};

/** Convert a linear node id to coordinates. */
inline Coordinates
toCoordinates(NodeId id, std::uint32_t k, std::uint32_t n)
{
    if (n > kMaxDims)
        panic("dimensionality ", n, " exceeds kMaxDims");
    Coordinates r;
    r.n = static_cast<std::uint8_t>(n);
    for (std::uint32_t d = 0; d < n; ++d) {
        r.c[d] = static_cast<std::uint16_t>(id % k);
        id /= k;
    }
    return r;
}

/** Convert coordinates back to a linear node id. */
inline NodeId
toNodeId(const Coordinates& coords, std::uint32_t k)
{
    NodeId id = 0;
    NodeId scale = 1;
    for (std::uint32_t d = 0; d < coords.n; ++d) {
        id += scale * coords.c[d];
        scale *= k;
    }
    return id;
}

} // namespace crnet

#endif // CRNET_TOPOLOGY_COORDINATES_HH
