/**
 * @file
 * Abstract direct-network topology: k-ary n-cubes (torus) and meshes.
 *
 * Port convention: a router has 2*n network ports; port 2*d goes in the
 * increasing ("plus") direction of dimension d, port 2*d+1 in the
 * decreasing ("minus") direction. Injection/ejection are handled by the
 * network interface, not by these ports.
 */

#ifndef CRNET_TOPOLOGY_TOPOLOGY_HH
#define CRNET_TOPOLOGY_TOPOLOGY_HH

#include <cstdint>
#include <memory>

#include "src/sim/config.hh"
#include "src/sim/types.hh"
#include "src/topology/coordinates.hh"

namespace crnet {

/** Direction along one dimension. */
enum class Direction : std::uint8_t { Plus = 0, Minus = 1 };

/** Compose a port id from dimension and direction. */
inline PortId
makePort(std::uint32_t dim, Direction dir)
{
    return static_cast<PortId>(2 * dim +
                               (dir == Direction::Minus ? 1 : 0));
}

/** Dimension of a network port. */
inline std::uint32_t
portDim(PortId port)
{
    return port / 2;
}

/** Direction of a network port. */
inline Direction
portDir(PortId port)
{
    return (port % 2) ? Direction::Minus : Direction::Plus;
}

/** Reverse port: the port on the neighbor that points back at us. */
inline PortId
oppositePort(PortId port)
{
    return static_cast<PortId>(port ^ 1);
}

/** Minimal-routing options within one dimension. */
struct DimRoute
{
    bool plusMinimal = false;   //!< Moving + is on a minimal path.
    bool minusMinimal = false;  //!< Moving - is on a minimal path.
    std::uint32_t plusHops = 0;   //!< Hops remaining if we go +.
    std::uint32_t minusHops = 0;  //!< Hops remaining if we go -.

    bool done() const { return !plusMinimal && !minusMinimal; }
};

/**
 * A direct k-ary n-cube network graph. Immutable once constructed;
 * link fault state lives in the fault model / network, not here.
 */
class Topology
{
  public:
    virtual ~Topology() = default;

    TopologyKind kind() const { return kind_; }
    std::uint32_t radix() const { return k_; }
    std::uint32_t dims() const { return n_; }
    NodeId numNodes() const { return numNodes_; }
    /** Network ports per router (excludes injection/ejection). */
    PortId numPorts() const { return static_cast<PortId>(2 * n_); }

    Coordinates coords(NodeId id) const { return toCoordinates(id, k_, n_); }
    NodeId nodeId(const Coordinates& c) const { return toNodeId(c, k_); }

    /**
     * Neighbor of `node` through `port`, or kInvalidNode when the port
     * leaves the network (mesh boundary).
     */
    virtual NodeId neighbor(NodeId node, PortId port) const = 0;

    /**
     * Minimal-path options in dimension `dim` when standing at `from`
     * heading for `to`. On a torus with delta == k/2 both directions
     * can be minimal.
     */
    virtual DimRoute dimRoute(NodeId from, NodeId to,
                              std::uint32_t dim) const = 0;

    /** Minimal hop count between two nodes. */
    std::uint32_t distance(NodeId from, NodeId to) const;

    /**
     * True when traversing `port` from `node` crosses the dateline of
     * its dimension (the wraparound link). Always false on meshes.
     * Used by DOR/Duato for dateline virtual-channel selection.
     */
    virtual bool crossesDateline(NodeId node, PortId port) const = 0;

    /** Longest minimal route in the network (hops). */
    virtual std::uint32_t diameter() const = 0;

  protected:
    Topology(TopologyKind kind, std::uint32_t k, std::uint32_t n);

    TopologyKind kind_;
    std::uint32_t k_;
    std::uint32_t n_;
    NodeId numNodes_;
};

/** k-ary n-cube with wraparound links. */
class TorusTopology : public Topology
{
  public:
    TorusTopology(std::uint32_t k, std::uint32_t n);

    NodeId neighbor(NodeId node, PortId port) const override;
    DimRoute dimRoute(NodeId from, NodeId to,
                      std::uint32_t dim) const override;
    bool crossesDateline(NodeId node, PortId port) const override;
    std::uint32_t diameter() const override;
};

/** k-ary n-dimensional mesh (no wraparound). */
class MeshTopology : public Topology
{
  public:
    MeshTopology(std::uint32_t k, std::uint32_t n);

    NodeId neighbor(NodeId node, PortId port) const override;
    DimRoute dimRoute(NodeId from, NodeId to,
                      std::uint32_t dim) const override;
    bool crossesDateline(NodeId, PortId) const override { return false; }
    std::uint32_t diameter() const override;
};

/** Factory from configuration. */
std::unique_ptr<Topology> makeTopology(const SimConfig& cfg);

} // namespace crnet

#endif // CRNET_TOPOLOGY_TOPOLOGY_HH
