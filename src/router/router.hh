/**
 * @file
 * Wormhole router model.
 *
 * Microarchitecture (one clock = one tick):
 *  - Input-buffered: every input port has `numVcs` virtual channels,
 *    each a FlitBuffer of `bufferDepth` flits.
 *  - Credit-based flow control per VC; one flit per physical channel
 *    per cycle; channel latency (1 cycle) is modeled by the Network.
 *  - Atomic VC allocation: a header may claim a downstream VC only if
 *    it is unallocated and its buffer is empty (all credits present).
 *  - Switch: one flit per input port and one flit per output port per
 *    cycle; round-robin arbitration on both sides.
 *
 * Port layout: input ports [0, 2n) are network links, [2n, 2n+I) are
 * injection channels from the local NIC. Output ports [0, 2n) are
 * network links, [2n, 2n+E) are ejection channels to the local NIC.
 *
 * Storage layout: all mutable per-VC state (flit slots, input/output
 * VC state machines, round-robin pointers, port-busy scratch) lives
 * in a `Router::StatePool` — per-field arrays spanning every router
 * of one network, indexed by node id. Each Router instance holds raw
 * base pointers into its pool slice, so the hot path is unchanged
 * while a shard worker ticking a contiguous node range walks
 * cache-dense memory (docs/PERFORMANCE.md). A Router constructed
 * without an external pool owns a private single-node pool, keeping
 * standalone use (unit tests) source-compatible.
 *
 * Kill machinery (the CR-specific part):
 *  - A forward Kill token arriving at an input VC purges the worm's
 *    buffered flits. If the worm had an output allocated, the token is
 *    re-sent on that output next cycle with priority over data and
 *    without consuming credits (in hardware it rides the control
 *    wires); the output VC is deallocated and its credit count reset
 *    to "empty downstream" because the purged flits never return
 *    credits. If the worm's header was still waiting here, the token
 *    annihilates with it.
 *  - A backward kill walks the worm's switch allocations upstream,
 *    purging as it goes, until it reaches the injector (which aborts
 *    and schedules a retransmission). Used by the receiver-independent
 *    path-wide timeout scheme the paper evaluates against.
 */

#ifndef CRNET_ROUTER_ROUTER_HH
#define CRNET_ROUTER_ROUTER_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/annotations.hh"
#include "src/router/buffer.hh"
#include "src/router/flit.hh"
#include "src/routing/routing.hh"
#include "src/sim/config.hh"
#include "src/sim/rng.hh"
#include "src/sim/stats.hh"
#include "src/sim/types.hh"

namespace crnet {

class Auditor;
class Tracer;
class StateWriter;
class StateReader;

/** Counters shared by all routers of one network. */
struct RouterStats
{
    Counter flitsForwarded;     //!< Data flits moved through switches.
    Counter headersRouted;      //!< Successful VC allocations.
    Counter escapeAllocations;  //!< Duato escape-channel entries (PDS).
    Counter misrouteHops;       //!< Non-minimal hops taken.
    Counter killsForwarded;     //!< Forward-kill hop traversals.
    Counter killsAnnihilated;   //!< Kills that met their header.
    Counter pathWideKills;      //!< Router-initiated kills (path-wide).
    Counter bkillHops;          //!< Backward-kill hop traversals.
    Counter flitsPurged;        //!< Data flits dropped by kill purges.
    Counter stragglersDropped;  //!< Late data flits of killed worms.
    Counter staleKills;         //!< Kill/bkill tokens that found their
                                //!< worm already gone.
    Counter lateCreditsDropped; //!< Credits arriving after kill reset.
    Counter linkDeathTeardowns; //!< Worm segments reclaimed because a
                                //!< link died under them.
};

/** A flit leaving the router this cycle. */
struct SentFlit
{
    PortId outPort = kInvalidPort;
    VcId vc = kInvalidVc;
    Flit flit;
};

/** A credit owed to whoever feeds `inPort`. */
struct SentCredit
{
    PortId inPort = kInvalidPort;
    VcId vc = kInvalidVc;
};

/** A backward kill owed to whoever feeds `inPort`. */
struct SentBkill
{
    PortId inPort = kInvalidPort;
    VcId vc = kInvalidVc;
};

/** An abort notification to the local injector. */
struct SentAbort
{
    std::uint32_t injChannel = 0;
    VcId vc = kInvalidVc;
    MsgId msg = kInvalidMsg;
};

/** One wormhole router. */
class Router
{
  private:
    /** Per-input-VC state machine. */
    struct InputVc
    {
        enum class State { Idle, Routing, Active };

        FlitBuffer buf;                 //!< Bound to pool flit slots.
        State state = State::Idle;
        MsgId msg = kInvalidMsg;
        std::uint16_t attempt = 0;      //!< Attempt of current worm.
        PortId outPort = kInvalidPort;  //!< Allocation when Active.
        VcId outVc = kInvalidVc;
        Cycle stallCycles = 0;          //!< For the path-wide scheme.
        Cycle headArrivedAt = 0;        //!< Header accept (forensics).
        bool movedThisCycle = false;    //!< Progress flag (stall calc).
        bool blockTraced = false;       //!< Block event emitted for
                                        //!< the current stall episode.
        bool killPending = false;       //!< Kill token to forward.
        Flit killFlit;                  //!< The stored token.
        PortId killOutPort = kInvalidPort;
        VcId killOutVc = kInvalidVc;
        MsgId purgeMsg = kInvalidMsg;   //!< Drop stragglers of this.
    };

    /** Per-output-VC bookkeeping. */
    struct OutputVc
    {
        bool allocated = false;
        PortId holderPort = kInvalidPort;
        VcId holderVc = kInvalidVc;
        std::uint32_t credits = 0;
        bool ejection = false;  //!< Finite receiver-buffer credits.
        /**
         * Not allocatable before this cycle: after a kill resets the
         * credit count, one in-flight credit may still arrive a cycle
         * later; quarantining the VC keeps the ledger exact.
         */
        Cycle quarantineUntil = 0;
    };

  public:
    /**
     * Structure-of-arrays backing store for every router of one
     * network: flit slots, input/output VC state, round-robin
     * pointers and port-busy scratch live in contiguous per-field
     * arrays indexed by node id. A shard worker ticking a contiguous
     * node range therefore walks adjacent cache lines instead of
     * pointer-chasing per-router heaps, and the flat flit array
     * leaves the switch-allocation inner loops SIMD-ready.
     */
    class StatePool
    {
      public:
        /** Size arrays for `nodes` routers under `cfg` geometry. */
        StatePool(const SimConfig& cfg, std::uint64_t nodes);

        StatePool(const StatePool&) = delete;
        StatePool& operator=(const StatePool&) = delete;

        std::uint64_t nodes() const { return nodes_; }

        /** Bytes held by the pool arrays (capacity accounting). */
        std::size_t bytes() const;

      private:
        friend class Router;

        std::uint64_t nodes_;
        PortId inPorts_;
        PortId outPorts_;
        std::uint32_t vcs_;
        std::size_t depth_;

        std::vector<Flit> flitSlots_;   //!< [node][inPort][vc][depth].
        std::vector<InputVc> inputs_;   //!< [node][inPort][vc].
        std::vector<OutputVc> outputs_; //!< [node][outPort][vc].
        std::vector<VcId> rrInVc_;      //!< [node][inPort].
        std::vector<PortId> rrOutIn_;   //!< [node][outPort].
        std::vector<std::uint8_t> outPortBusy_;  //!< [node][outPort].
    };

    /**
     * Standalone router owning a private single-node StatePool.
     *
     * @param id     Node this router serves.
     * @param cfg    Simulation configuration.
     * @param algo   Routing relation (shared across routers).
     * @param stats  Shared counter block (never null).
     * @param rng    Private stream for arbitration tie-breaks.
     */
    Router(NodeId id, const SimConfig& cfg,
           const RoutingAlgorithm& algo, RouterStats* stats, Rng rng);

    /**
     * Pool-backed router: mutable VC state lives in `pool` at slice
     * `poolIndex`. The pool must outlive the router and its arrays
     * must never reallocate (they are sized once at construction).
     */
    Router(NodeId id, const SimConfig& cfg,
           const RoutingAlgorithm& algo, RouterStats* stats, Rng rng,
           StatePool& pool, std::uint64_t poolIndex);

    NodeId id() const { return id_; }
    PortId numInPorts() const { return numInPorts_; }
    PortId numOutPorts() const { return numOutPorts_; }
    PortId networkPorts() const { return networkPorts_; }
    /** First injection input port. */
    PortId injBase() const { return networkPorts_; }
    /** First ejection output port. */
    PortId ejBase() const { return networkPorts_; }

    // --- Delivery phase (Network calls these before tick) ----------

    /** A flit arrives on an input VC (from a channel register). */
    void acceptFlit(PortId in_port, VcId vc, const Flit& flit);

    /** A credit returns for an output VC. */
    void acceptCredit(PortId out_port, VcId vc);

    /** A backward kill arrives, addressed to an output VC. */
    void acceptBkill(PortId out_port, VcId vc);

    // --- Compute phase ----------------------------------------------

    /**
     * Advance one cycle: process backward kills, forward pending kill
     * tokens, route waiting headers, allocate the switch and emit
     * flits/credits into the outboxes.
     */
    CRNET_HOT_PATH
    void tick(Cycle now);

    // --- Dynamic faults (Network calls these when a link dies) -------

    /**
     * The directed link leaving `out_port` just died. Worms holding
     * one of its output VCs are torn down toward their source via the
     * backward-kill path (processed first thing this tick); orphaned
     * credit ledgers reset to "downstream empty" — purged flits never
     * return credits over a dead wire.
     */
    void onOutputLinkDead(PortId out_port, Cycle now);

    /**
     * The directed link feeding `in_port` just died. Stranded worm
     * state is purged; an Active worm's downstream fragment is chased
     * with a kill token issued at the break point (the source's own
     * kill can no longer cross the dead wire), while a still-waiting
     * header simply dies with the wire.
     */
    void onInputLinkDead(PortId in_port, Cycle now);

    /**
     * The directed link leaving `out_port` was repaired: re-arm its
     * credit ledgers. The death-time teardown guarantees the far side
     * is empty, so every ledger restarts at "downstream empty".
     */
    void onOutputLinkRepaired(PortId out_port, Cycle now);

    // --- Outboxes (valid after tick; cleared at next tick) -----------
    std::vector<SentFlit> sentFlits;
    std::vector<SentCredit> sentCredits;
    std::vector<SentBkill> sentBkills;
    std::vector<SentAbort> sentAborts;

    // --- Introspection (tests, watchdog) ------------------------------

    /** True when no input VC holds any flit or allocation. */
    bool idle() const;

    /** Flits currently buffered across all input VCs. */
    std::uint64_t bufferedFlits() const;

    /** State of one input VC (test hook). */
    bool vcIdle(PortId in_port, VcId vc) const;

    /** Input-VC state machine phases (forensics/probe mirror). */
    enum class VcState : std::uint8_t { Idle, Routing, Active };

    /** Forensic snapshot of one input VC (watchdog dump). */
    struct InputProbe
    {
        VcState state = VcState::Idle;
        MsgId msg = kInvalidMsg;
        std::uint16_t attempt = 0;
        std::uint32_t buffered = 0;
        Cycle stallCycles = 0;
        bool killPending = false;
        PortId outPort = kInvalidPort;
        VcId outVc = kInvalidVc;
        Cycle headArrivedAt = 0;  //!< Approximate (register time).
    };
    InputProbe inputProbe(PortId in_port, VcId vc) const;

    // --- Audit probes (see src/sim/audit.hh) --------------------------

    /** Attach the invariant auditor (null to detach). */
    void setAuditor(Auditor* audit) { audit_ = audit; }

    /** Attach the event tracer (null to detach; the default). */
    void setTracer(Tracer* trace) { trace_ = trace; }

    // --- Heat counters (see src/core/timeseries.hh) --------------------

    /** Enable per-port heat accumulation (allocates the counters). */
    void setHeatTracking(bool on);

    /** Data flits forwarded out of `out_port` (0 when not tracking). */
    std::uint64_t heatForwarded(PortId out_port) const;

    /** Cycles `in_port` held at least one blocked worm. */
    std::uint64_t heatBlocked(PortId in_port) const;

    /** Sum over cycles of flits buffered in this router. */
    std::uint64_t heatOccupancyIntegral() const
    {
        return heatOccupancy_;
    }

    /** Flits buffered in one input VC. */
    std::uint32_t inputOccupancy(PortId in_port, VcId vc) const;

    /** True while a forward kill waits on this input VC. */
    bool inputKillPending(PortId in_port, VcId vc) const;

    /** Credit-ledger view of one output VC. */
    struct OutputProbe
    {
        bool allocated = false;
        std::uint32_t credits = 0;
        Cycle quarantineUntil = 0;
    };
    OutputProbe outputProbe(PortId out_port, VcId vc) const;

    // --- Checkpoint support (snapshot.hh) ------------------------------

    /**
     * Serialize/restore every field that survives across ticks:
     * input/output VC state machines, pending backward kills,
     * round-robin pointers, heat counters and the RNG stream. The
     * outboxes and per-cycle scratch (outPortBusy_, byOut_) are
     * cleared at tick entry and need not round-trip. The byte stream
     * is identical whether the router is standalone or pool-backed
     * (state is walked per-router in node order either way).
     */
    void saveState(StateWriter& w) const;
    void loadState(StateReader& r);

    /** Replace the RNG stream (warm-start reseeding). */
    void setRng(const Rng& rng) { rng_ = rng; }

  private:
    /** One switch nomination: an input VC asking for its output port. */
    struct SwitchReq
    {
        PortId inPort;
        VcId inVc;
    };

    /** Bind the pool slice at `index` and initialize its fields. */
    void attach(StatePool& pool, std::uint64_t index);

    InputVc& ivc(PortId p, VcId v);
    const InputVc& ivc(PortId p, VcId v) const;
    OutputVc& ovc(PortId p, VcId v);
    const OutputVc& ovc(PortId p, VcId v) const;

    std::size_t numInVcs() const
    {
        return static_cast<std::size_t>(numInPorts_) * numVcs_;
    }
    std::size_t numOutVcs() const
    {
        return static_cast<std::size_t>(numOutPorts_) * numVcs_;
    }

    void processBkills();
    void forwardKills();
    void routeHeaders(Cycle now);
    CRNET_ALLOW("alloc",
                "byOut_ nomination-bucket reuse: amortized growth "
                "only, bounded by ports*vcs and steady-state-free "
                "(tests/test_alloc_steady.cc)")
    void allocateSwitch(Cycle now);
    void checkRouterTimeouts();
    void killWormAt(PortId p, VcId v);
    void releaseForKill(InputVc& in);
    void propagateUpstream(PortId in_port, VcId vc, MsgId msg);
    void accumulateHeat();

    NodeId id_;
    const SimConfig& cfg_;
    const RoutingAlgorithm& algo_;
    RouterStats* stats_;
    Auditor* audit_ = nullptr;
    Tracer* trace_ = nullptr;
    Rng rng_;

    PortId networkPorts_;
    PortId numInPorts_;
    PortId numOutPorts_;
    std::uint32_t numVcs_;

    /** Private pool for the standalone constructor (else null). */
    std::unique_ptr<StatePool> selfPool_;

    // Base pointers into this router's StatePool slice. [port][vc]
    // flattened, exactly like the historical per-router vectors.
    InputVc* inputs_ = nullptr;
    OutputVc* outputs_ = nullptr;
    VcId* rrInVc_ = nullptr;     //!< Round-robin, per input port.
    PortId* rrOutIn_ = nullptr;  //!< Round-robin, per output port.
    std::uint8_t* outPortBusy_ = nullptr;  //!< Per-cycle scratch.

    /** Backward kills accepted last delivery, processed this tick. */
    std::vector<SentBkill> pendingBkillsAsOut_;

    /** Heat counters (empty unless setHeatTracking(true)). */
    bool heatTracking_ = false;
    std::vector<std::uint64_t> heatForwarded_;  //!< Per output port.
    std::vector<std::uint64_t> heatBlocked_;    //!< Per input port.
    std::uint64_t heatOccupancy_ = 0;

    /** Current cycle (set at tick entry; used by helpers). */
    Cycle now_ = 0;

    /** Scratch candidate list (avoids per-header allocation). */
    mutable std::vector<Candidate> scratch_;

    /** Per-output nomination buckets (reused across ticks). */
    std::vector<std::vector<SwitchReq>> byOut_;
};

} // namespace crnet

#endif // CRNET_ROUTER_ROUTER_HH
