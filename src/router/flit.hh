/**
 * @file
 * Flit: the unit of flow control in the wormhole network.
 *
 * A message (worm) is serialized as Head, Body*, Pad*, Tail. Pad flits
 * are CR/FCR padding: they carry no payload and are stripped by the
 * receiver. Kill is not message data; it is the forward kill token that
 * tears down a worm's path (modeled in-band because that is how it
 * travels in hardware: on the same wires, ignoring buffer credits).
 */

#ifndef CRNET_ROUTER_FLIT_HH
#define CRNET_ROUTER_FLIT_HH

#include <cstdint>

#include "src/sim/checksum.hh"
#include "src/sim/types.hh"

namespace crnet {

/** Kind of flit. */
enum class FlitType : std::uint8_t { Head, Body, Pad, Tail, Kill };

/** One flow-control unit. */
struct Flit
{
    FlitType type = FlitType::Body;
    MsgId msg = kInvalidMsg;
    std::uint32_t seq = 0;       //!< Position in the worm; head is 0.
    NodeId src = kInvalidNode;
    NodeId dst = kInvalidNode;

    /**
     * Dateline/escape class used by DOR and Duato routing; updated by
     * RoutingAlgorithm::onTraverse as the head crosses datelines.
     * Meaningful on Head flits only (body flits follow the worm's path).
     */
    std::uint8_t vcClass = 0;

    /** Remaining non-minimal hops this header may take (FCR retries). */
    std::uint8_t misrouteBudget = 0;

    /** Which transmission attempt of the message this flit belongs to. */
    std::uint16_t attempt = 0;

    // --- Header-only metadata (meaningful when type == Head or, for
    // --- bookkeeping, copied onto Kill tokens) -----------------------
    /** Payload flits in the message, including the head flit. */
    std::uint32_t payloadLen = 0;
    /** Per-(src,dst) message sequence number (order checking). */
    std::uint32_t pairSeq = 0;
    /** Cycle the message was created (total-latency measurement). */
    Cycle createdAt = 0;
    /** Cycle this attempt's head entered the network. */
    Cycle headInjectedAt = 0;
    /** Message is eligible for statistics (measurement window). */
    bool measured = false;

    /** Modeled data word; CRC is computed over this. */
    std::uint64_t payload = 0;

    /** Checksum as computed by the sender over the original payload. */
    std::uint8_t crc = 0;

    /**
     * Set by the fault model when a transient fault hits this flit.
     * The payload is scrambled at the same time, so `checksumOk()`
     * reports the corruption just as receiver hardware would.
     */
    bool corrupted = false;

    bool isHead() const { return type == FlitType::Head; }
    bool isTail() const { return type == FlitType::Tail; }
    bool isKill() const { return type == FlitType::Kill; }
    /** Data flit = anything that is part of the worm itself. */
    bool isData() const { return type != FlitType::Kill; }

    /** Recompute and store the CRC over the current payload. */
    void stampCrc() { crc = crc8(payload); }

    /** True when the payload still matches its checksum. */
    bool checksumOk() const { return crc8(payload) == crc; }
};

} // namespace crnet

#endif // CRNET_ROUTER_FLIT_HH
