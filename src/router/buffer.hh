/**
 * @file
 * Fixed-capacity flit FIFO used for every virtual-channel buffer.
 *
 * A plain ring buffer: wormhole simulation enqueues/dequeues millions of
 * flits, so this avoids per-flit allocation entirely.
 *
 * Two storage modes share the same queue logic:
 *   - *Owning* (the historical mode): the buffer allocates its own
 *     slot vector. Standalone components (tests, the receiver's
 *     ejection VCs) use this.
 *   - *Bound*: the buffer indexes a caller-owned slot slice via
 *     `bind()`. The router structure-of-arrays pool packs every VC
 *     buffer of every node into one contiguous flit array so the
 *     sharded hot path walks cache-dense state (docs/PERFORMANCE.md).
 */

#ifndef CRNET_ROUTER_BUFFER_HH
#define CRNET_ROUTER_BUFFER_HH

#include <cstddef>
#include <vector>

#include "src/sim/log.hh"
#include "src/router/flit.hh"

namespace crnet {

/** Bounded FIFO of flits. */
class FlitBuffer
{
  public:
    /** Unbound buffer: capacity 0 until `bind()` attaches storage. */
    FlitBuffer() = default;

    /** @param capacity Maximum number of buffered flits (> 0). */
    explicit FlitBuffer(std::size_t capacity)
        : owned_(capacity), cap_(capacity)
    {
        if (capacity == 0)
            panic("FlitBuffer capacity must be > 0");
    }

    /**
     * Attach caller-owned slot storage (`cap` > 0 flits). The slice
     * must outlive the buffer; any owned storage is released. Only
     * valid on an empty buffer.
     */
    void
    bind(Flit* slots, std::size_t cap)
    {
        if (!slots || cap == 0)
            panic("FlitBuffer::bind needs storage with capacity > 0");
        if (count_ != 0)
            panic("FlitBuffer::bind on a non-empty buffer");
        owned_.clear();
        owned_.shrink_to_fit();
        bound_ = slots;
        cap_ = cap;
        head_ = 0;
    }

    std::size_t capacity() const { return cap_; }
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    bool full() const { return count_ == cap_; }

    /** Enqueue at the back; panics when full (flow control bug). */
    void
    push(const Flit& flit)
    {
        if (full())
            panic("FlitBuffer overflow (msg ", flit.msg, ", seq ",
                  flit.seq, ")");
        slots()[(head_ + count_) % cap_] = flit;
        ++count_;
    }

    /** The oldest flit; panics when empty. */
    const Flit&
    front() const
    {
        if (empty())
            panic("FlitBuffer::front on empty buffer");
        return slots()[head_];
    }

    /** Mutable access to the oldest flit (header state updates). */
    Flit&
    frontMutable()
    {
        if (empty())
            panic("FlitBuffer::frontMutable on empty buffer");
        return slots()[head_];
    }

    /** Remove and return the oldest flit. */
    Flit
    pop()
    {
        if (empty())
            panic("FlitBuffer::pop on empty buffer");
        Flit f = slots()[head_];
        head_ = (head_ + 1) % cap_;
        --count_;
        return f;
    }

    /**
     * The i-th oldest buffered flit (0 = front); panics out of range.
     * Snapshot serialization walks the queue without disturbing it.
     */
    const Flit&
    peek(std::size_t i) const
    {
        if (i >= count_)
            panic("FlitBuffer::peek(", i, ") with ", count_, " buffered");
        return slots()[(head_ + i) % cap_];
    }

    /** Drop all contents (kill-token purge); returns dropped count. */
    std::size_t
    purge()
    {
        const std::size_t dropped = count_;
        count_ = 0;
        head_ = 0;
        return dropped;
    }

  private:
    Flit* slots() { return bound_ ? bound_ : owned_.data(); }
    const Flit* slots() const { return bound_ ? bound_ : owned_.data(); }

    std::vector<Flit> owned_;
    Flit* bound_ = nullptr;      //!< Pool-owned slice when bound.
    std::size_t cap_ = 0;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace crnet

#endif // CRNET_ROUTER_BUFFER_HH
