/**
 * @file
 * Fixed-capacity flit FIFO used for every virtual-channel buffer.
 *
 * A plain ring buffer: wormhole simulation enqueues/dequeues millions of
 * flits, so this avoids per-flit allocation entirely.
 */

#ifndef CRNET_ROUTER_BUFFER_HH
#define CRNET_ROUTER_BUFFER_HH

#include <cstddef>
#include <vector>

#include "src/sim/log.hh"
#include "src/router/flit.hh"

namespace crnet {

/** Bounded FIFO of flits. */
class FlitBuffer
{
  public:
    /** @param capacity Maximum number of buffered flits (> 0). */
    explicit FlitBuffer(std::size_t capacity)
        : slots_(capacity)
    {
        if (capacity == 0)
            panic("FlitBuffer capacity must be > 0");
    }

    std::size_t capacity() const { return slots_.size(); }
    std::size_t size() const { return count_; }
    bool empty() const { return count_ == 0; }
    bool full() const { return count_ == slots_.size(); }

    /** Enqueue at the back; panics when full (flow control bug). */
    void
    push(const Flit& flit)
    {
        if (full())
            panic("FlitBuffer overflow (msg ", flit.msg, ", seq ",
                  flit.seq, ")");
        slots_[(head_ + count_) % slots_.size()] = flit;
        ++count_;
    }

    /** The oldest flit; panics when empty. */
    const Flit&
    front() const
    {
        if (empty())
            panic("FlitBuffer::front on empty buffer");
        return slots_[head_];
    }

    /** Mutable access to the oldest flit (header state updates). */
    Flit&
    frontMutable()
    {
        if (empty())
            panic("FlitBuffer::frontMutable on empty buffer");
        return slots_[head_];
    }

    /** Remove and return the oldest flit. */
    Flit
    pop()
    {
        if (empty())
            panic("FlitBuffer::pop on empty buffer");
        Flit f = slots_[head_];
        head_ = (head_ + 1) % slots_.size();
        --count_;
        return f;
    }

    /**
     * The i-th oldest buffered flit (0 = front); panics out of range.
     * Snapshot serialization walks the queue without disturbing it.
     */
    const Flit&
    peek(std::size_t i) const
    {
        if (i >= count_)
            panic("FlitBuffer::peek(", i, ") with ", count_, " buffered");
        return slots_[(head_ + i) % slots_.size()];
    }

    /** Drop all contents (kill-token purge); returns dropped count. */
    std::size_t
    purge()
    {
        const std::size_t dropped = count_;
        count_ = 0;
        head_ = 0;
        return dropped;
    }

  private:
    std::vector<Flit> slots_;
    std::size_t head_ = 0;
    std::size_t count_ = 0;
};

} // namespace crnet

#endif // CRNET_ROUTER_BUFFER_HH
