#include "src/router/router.hh"

#include <algorithm>

#include "src/sim/audit.hh"
#include "src/sim/log.hh"
#include "src/sim/snapshot.hh"
#include "src/sim/trace.hh"

namespace crnet {

Router::StatePool::StatePool(const SimConfig& cfg,
                             std::uint64_t nodes)
    : nodes_(nodes),
      inPorts_(static_cast<PortId>(2 * cfg.dimensionsN +
                                   cfg.injectionChannels)),
      outPorts_(static_cast<PortId>(2 * cfg.dimensionsN +
                                    cfg.ejectionChannels)),
      vcs_(cfg.numVcs),
      depth_(cfg.bufferDepth)
{
    if (nodes == 0)
        panic("StatePool needs at least one node");
    const std::size_t inVcs =
        static_cast<std::size_t>(nodes) * inPorts_ * vcs_;
    const std::size_t outVcs =
        static_cast<std::size_t>(nodes) * outPorts_ * vcs_;
    // Size everything once; the arrays must never reallocate because
    // routers hold raw base pointers into them.
    flitSlots_.resize(inVcs * depth_);
    inputs_.resize(inVcs);
    outputs_.resize(outVcs);
    rrInVc_.assign(static_cast<std::size_t>(nodes) * inPorts_, 0);
    rrOutIn_.assign(static_cast<std::size_t>(nodes) * outPorts_, 0);
    outPortBusy_.assign(static_cast<std::size_t>(nodes) * outPorts_,
                        0);
    for (std::size_t i = 0; i < inVcs; ++i)
        inputs_[i].buf.bind(&flitSlots_[i * depth_], depth_);
}

std::size_t
Router::StatePool::bytes() const
{
    return flitSlots_.capacity() * sizeof(Flit) +
           inputs_.capacity() * sizeof(InputVc) +
           outputs_.capacity() * sizeof(OutputVc) +
           rrInVc_.capacity() * sizeof(VcId) +
           rrOutIn_.capacity() * sizeof(PortId) +
           outPortBusy_.capacity() * sizeof(std::uint8_t);
}

Router::Router(NodeId id, const SimConfig& cfg,
               const RoutingAlgorithm& algo, RouterStats* stats,
               Rng rng)
    : id_(id), cfg_(cfg), algo_(algo), stats_(stats), rng_(rng),
      networkPorts_(static_cast<PortId>(2 * cfg.dimensionsN)),
      numInPorts_(static_cast<PortId>(networkPorts_ +
                                      cfg.injectionChannels)),
      numOutPorts_(static_cast<PortId>(networkPorts_ +
                                       cfg.ejectionChannels)),
      numVcs_(cfg.numVcs),
      selfPool_(std::make_unique<StatePool>(cfg, 1))
{
    attach(*selfPool_, 0);
}

Router::Router(NodeId id, const SimConfig& cfg,
               const RoutingAlgorithm& algo, RouterStats* stats,
               Rng rng, StatePool& pool, std::uint64_t poolIndex)
    : id_(id), cfg_(cfg), algo_(algo), stats_(stats), rng_(rng),
      networkPorts_(static_cast<PortId>(2 * cfg.dimensionsN)),
      numInPorts_(static_cast<PortId>(networkPorts_ +
                                      cfg.injectionChannels)),
      numOutPorts_(static_cast<PortId>(networkPorts_ +
                                       cfg.ejectionChannels)),
      numVcs_(cfg.numVcs)
{
    attach(pool, poolIndex);
}

void
Router::attach(StatePool& pool, std::uint64_t index)
{
    if (stats_ == nullptr)
        panic("Router requires a shared RouterStats block");
    if (index >= pool.nodes_ || pool.inPorts_ != numInPorts_ ||
        pool.outPorts_ != numOutPorts_ || pool.vcs_ != numVcs_ ||
        pool.depth_ != cfg_.bufferDepth) {
        panic("StatePool geometry mismatch for router ", id_,
              " (pool index ", index, " of ", pool.nodes_, ")");
    }

    inputs_ = &pool.inputs_[index * numInVcs()];
    outputs_ = &pool.outputs_[index * numOutVcs()];
    rrInVc_ = &pool.rrInVc_[index * numInPorts_];
    rrOutIn_ = &pool.rrOutIn_[index * numOutPorts_];
    outPortBusy_ = &pool.outPortBusy_[index * numOutPorts_];

    for (PortId p = 0; p < numOutPorts_; ++p) {
        for (VcId v = 0; v < numVcs_; ++v) {
            OutputVc& o = ovc(p, v);
            o.credits = cfg_.bufferDepth;
            o.ejection = p >= ejBase();
        }
    }

    byOut_.resize(numOutPorts_);
    for (auto& reqs : byOut_)
        reqs.reserve(numInVcs());
    scratch_.reserve(numOutVcs());
    sentFlits.reserve(numOutVcs());
    sentCredits.reserve(numInVcs());
    sentBkills.reserve(8);
    sentAborts.reserve(8);
    pendingBkillsAsOut_.reserve(8);
}

Router::InputVc&
Router::ivc(PortId p, VcId v)
{
    return inputs_[static_cast<std::size_t>(p) * numVcs_ + v];
}

const Router::InputVc&
Router::ivc(PortId p, VcId v) const
{
    return inputs_[static_cast<std::size_t>(p) * numVcs_ + v];
}

Router::OutputVc&
Router::ovc(PortId p, VcId v)
{
    return outputs_[static_cast<std::size_t>(p) * numVcs_ + v];
}

const Router::OutputVc&
Router::ovc(PortId p, VcId v) const
{
    return outputs_[static_cast<std::size_t>(p) * numVcs_ + v];
}

void
Router::acceptFlit(PortId in_port, VcId vc, const Flit& flit)
{
    if (in_port >= numInPorts_ || vc >= numVcs_)
        panic("acceptFlit: bad port/vc (", in_port, ", ", vc, ")");
    CRNET_AUDIT_HOOK(audit_, onChannelFlit(id_, in_port, vc, flit));
    InputVc& in = ivc(in_port, vc);

    if (flit.isKill()) {
        const std::size_t purged = in.buf.purge();
        stats_->flitsPurged.inc(purged);
        CRNET_AUDIT_HOOK(audit_, onFlitsPurged(purged));
        switch (in.state) {
          case InputVc::State::Active:
            if (in.msg != flit.msg) {
                // The token must chase its own worm; anything else is
                // a protocol bug.
                panic("kill token for msg ", flit.msg,
                      " found msg ", in.msg, " at node ", id_);
            }
            in.killPending = true;
            in.killFlit = flit;
            in.killOutPort = in.outPort;
            in.killOutVc = in.outVc;
            break;
          case InputVc::State::Routing:
            // The header was still waiting here: token and worm
            // annihilate; nothing to tear down further downstream.
            stats_->killsAnnihilated.inc();
            break;
          case InputVc::State::Idle:
            // Stale token (the worm was already torn down from the
            // other side, e.g. a backward kill beat us here).
            stats_->staleKills.inc();
            return;
        }
        in.purgeMsg = flit.msg;
        in.msg = kInvalidMsg;
        in.state = InputVc::State::Idle;
        in.stallCycles = 0;
        return;
    }

    // Data flit.
    if (in.state == InputVc::State::Idle) {
        if (flit.isHead()) {
            in.buf.push(flit);
            in.state = InputVc::State::Routing;
            in.msg = flit.msg;
            in.attempt = flit.attempt;
            in.stallCycles = 0;
            in.headArrivedAt = now_;
            in.blockTraced = false;
            return;
        }
        // Continuation of a worm that was purged here (backward-kill
        // race): at most one such flit can be in flight per hop.
        if (flit.msg != in.purgeMsg) {
            panic("straggler for unexpected msg ", flit.msg,
                  " (purged ", in.purgeMsg, ") at node ", id_);
        }
        stats_->stragglersDropped.inc();
        CRNET_AUDIT_HOOK(audit_, onFlitsPurged(1));
        return;
    }

    if (flit.msg != in.msg)
        panic("interleaved worms on one VC: msg ", flit.msg, " vs ",
              in.msg, " at node ", id_);
    in.buf.push(flit);
}

void
Router::acceptCredit(PortId out_port, VcId vc)
{
    OutputVc& o = ovc(out_port, vc);
    if (o.credits >= cfg_.bufferDepth) {
        // A credit for a flit that a kill purge already accounted for
        // (the kill reset the counter to "downstream empty").
        stats_->lateCreditsDropped.inc();
        return;
    }
    ++o.credits;
}

void
Router::acceptBkill(PortId out_port, VcId vc)
{
    pendingBkillsAsOut_.push_back(SentBkill{out_port, vc});
}

void
Router::processBkills()
{
    for (const SentBkill& bk : pendingBkillsAsOut_) {
        OutputVc& o = ovc(bk.inPort, bk.vc);
        if (!o.allocated) {
            // The worm released this output (tail passed) before the
            // downstream purge that sent the bkill; the purged flits'
            // credits never come back, so reset the ledger the same
            // way a live teardown does.
            stats_->staleKills.inc();
            o.credits = cfg_.bufferDepth;
            o.quarantineUntil = now_ + 2 * cfg_.channelLatency;
            continue;
        }
        const PortId hp = o.holderPort;
        const VcId hv = o.holderVc;
        InputVc& in = ivc(hp, hv);
        if (in.state != InputVc::State::Active ||
            in.outPort != bk.inPort || in.outVc != bk.vc) {
            // The holder record is stale: the worm that held this
            // output already died from its own side (a forward kill
            // accepted on the input VC releases the output only when
            // it crosses the switch), and the input VC may by now
            // carry a brand-new worm headed elsewhere. That worm's
            // upstream was cleaned by the original kill chain —
            // propagating a bkill here would tear an innocent
            // bystander on the reused wire. Just release the output.
            stats_->staleKills.inc();
            o.allocated = false;
            o.credits = cfg_.bufferDepth;
            o.quarantineUntil = now_ + 2 * cfg_.channelLatency;
            continue;
        }
        const MsgId msg = in.msg;
        const std::size_t purged = in.buf.purge();
        stats_->flitsPurged.inc(purged);
        stats_->bkillHops.inc();
        if (trace_ != nullptr) {
            trace_->record(TraceEventKind::BkillHop, msg, id_,
                           kInvalidNode, kInvalidNode, in.attempt,
                           hp);
        }
        CRNET_AUDIT_HOOK(audit_, onFlitsPurged(purged));
        CRNET_AUDIT_HOOK(audit_, onChannelReset(id_, hp, hv, msg));
        in.state = InputVc::State::Idle;
        in.purgeMsg = msg;
        in.msg = kInvalidMsg;
        in.stallCycles = 0;
        o.allocated = false;
        o.credits = cfg_.bufferDepth;
        o.quarantineUntil = now_ + 2 * cfg_.channelLatency;
        propagateUpstream(hp, hv, msg);
    }
    pendingBkillsAsOut_.clear();
}

void
Router::propagateUpstream(PortId in_port, VcId vc, MsgId msg)
{
    if (in_port >= injBase()) {
        sentAborts.push_back(SentAbort{
            static_cast<std::uint32_t>(in_port - injBase()), vc, msg});
        return;
    }
    sentBkills.push_back(SentBkill{in_port, vc});
}

void
Router::forwardKills()
{
    for (PortId p = 0; p < numInPorts_; ++p) {
        for (VcId v = 0; v < numVcs_; ++v) {
            InputVc& in = ivc(p, v);
            if (!in.killPending)
                continue;
            const PortId o = in.killOutPort;
            if (outPortBusy_[o])
                continue;  // Another kill claimed the channel; wait.
            outPortBusy_[o] = 1;
            sentFlits.push_back(SentFlit{o, in.killOutVc, in.killFlit});
            stats_->killsForwarded.inc();
            if (trace_ != nullptr) {
                trace_->record(TraceEventKind::KillHop, in.killFlit.msg,
                               id_, in.killFlit.src, in.killFlit.dst,
                               in.killFlit.attempt, o);
            }
            OutputVc& out = ovc(o, in.killOutVc);
            out.allocated = false;
            // Purged downstream flits never return credits; reset the
            // ledger to "empty" and quarantine against the one credit
            // that may still be in flight.
            out.credits = cfg_.bufferDepth;
            // In-flight credits can still arrive for up to two
            // channel traversals after the reset.
            out.quarantineUntil = now_ + 2 * cfg_.channelLatency;
            in.killPending = false;
        }
    }
}

void
Router::routeHeaders(Cycle now)
{
    for (PortId p = 0; p < numInPorts_; ++p) {
        for (VcId v = 0; v < numVcs_; ++v) {
            InputVc& in = ivc(p, v);
            if (in.state != InputVc::State::Routing)
                continue;
            if (in.buf.empty())
                panic("Routing-state VC with empty buffer at node ",
                      id_);
            Flit& head = in.buf.frontMutable();
            if (!head.isHead())
                panic("Routing-state VC without header at front");

            // FCR routers validate header integrity: a corrupted
            // header cannot be trusted to route, so it blocks until
            // the source timeout recovers the worm.
            if (cfg_.protocol == ProtocolKind::Fcr &&
                (head.corrupted || !head.checksumOk())) {
                continue;
            }

            bool allocated = false;
            if (head.dst == id_) {
                // Eject: claim any free ejection output VC.
                const auto ej_ports = static_cast<std::uint32_t>(
                    numOutPorts_ - ejBase());
                const auto start = static_cast<std::uint32_t>(
                    rng_.below(ej_ports));
                for (std::uint32_t i = 0; i < ej_ports && !allocated;
                     ++i) {
                    const PortId ep = static_cast<PortId>(
                        ejBase() + (start + i) % ej_ports);
                    for (VcId ev = 0; ev < numVcs_; ++ev) {
                        OutputVc& o = ovc(ep, ev);
                        if (o.allocated ||
                            o.credits < cfg_.bufferDepth ||
                            now < o.quarantineUntil) {
                            continue;
                        }
                        o.allocated = true;
                        o.holderPort = p;
                        o.holderVc = v;
                        in.outPort = ep;
                        in.outVc = ev;
                        allocated = true;
                        break;
                    }
                }
            } else {
                scratch_.clear();
                algo_.candidates(id_, head, scratch_, rng_);
                for (const Candidate& c : scratch_) {
                    OutputVc& o = ovc(c.port, c.vc);
                    if (o.allocated || o.credits < cfg_.bufferDepth ||
                        now < o.quarantineUntil) {
                        continue;
                    }
                    o.allocated = true;
                    o.holderPort = p;
                    o.holderVc = v;
                    in.outPort = c.port;
                    in.outVc = c.vc;
                    if (c.escape)
                        stats_->escapeAllocations.inc();
                    if (c.misroute) {
                        stats_->misrouteHops.inc();
                        if (head.misrouteBudget > 0)
                            --head.misrouteBudget;
                    }
                    allocated = true;
                    break;
                }
            }

            if (allocated) {
                in.state = InputVc::State::Active;
                in.movedThisCycle = true;
                stats_->headersRouted.inc();
                in.blockTraced = false;
                if (trace_ != nullptr) {
                    trace_->record(TraceEventKind::HeadAdvance,
                                   head.msg, id_, head.src, head.dst,
                                   head.attempt, in.outPort);
                }
            } else if (trace_ != nullptr && !in.blockTraced) {
                in.blockTraced = true;
                trace_->record(TraceEventKind::Block, head.msg, id_,
                               head.src, head.dst, head.attempt, p);
            }
        }
    }
}

void
Router::allocateSwitch(Cycle)
{
    // Phase 1: each input port nominates one VC (round-robin scan).
    // The per-output buckets are members so their capacity survives
    // across ticks (zero steady-state allocation).
    for (auto& reqs : byOut_)
        reqs.clear();

    for (PortId p = 0; p < numInPorts_; ++p) {
        for (std::uint32_t i = 0; i < numVcs_; ++i) {
            const VcId v = static_cast<VcId>(
                (rrInVc_[p] + i) % numVcs_);
            InputVc& in = ivc(p, v);
            if (in.state != InputVc::State::Active || in.buf.empty())
                continue;
            if (outPortBusy_[in.outPort])
                continue;  // Channel taken by a kill this cycle.
            const OutputVc& o = ovc(in.outPort, in.outVc);
            if (o.credits == 0)
                continue;
            byOut_[in.outPort].push_back(SwitchReq{p, v});
            break;  // One nomination per input port.
        }
    }

    // Phase 2: each output port picks one winner (round-robin).
    for (PortId o = 0; o < numOutPorts_; ++o) {
        auto& reqs = byOut_[o];
        if (reqs.empty())
            continue;
        const SwitchReq* winner = &reqs[0];
        std::uint32_t best = numInPorts_;
        for (const SwitchReq& r : reqs) {
            const std::uint32_t dist =
                (r.inPort + numInPorts_ - rrOutIn_[o]) % numInPorts_;
            if (dist < best) {
                best = dist;
                winner = &r;
            }
        }
        InputVc& in = ivc(winner->inPort, winner->inVc);
        OutputVc& out = ovc(in.outPort, in.outVc);
        Flit flit = in.buf.pop();
        if (flit.isHead() && o < networkPorts_)
            algo_.onTraverse(id_, o, flit);
        --out.credits;
        sentFlits.push_back(SentFlit{o, in.outVc, flit});
        sentCredits.push_back(SentCredit{winner->inPort,
                                         winner->inVc});
        stats_->flitsForwarded.inc();
        if (heatTracking_)
            ++heatForwarded_[o];
        in.movedThisCycle = true;
        in.stallCycles = 0;
        rrInVc_[winner->inPort] =
            static_cast<VcId>((winner->inVc + 1) % numVcs_);
        rrOutIn_[o] = static_cast<PortId>(
            (winner->inPort + 1) % numInPorts_);
        if (flit.isTail()) {
            out.allocated = false;  // Credits drain back naturally.
            in.state = InputVc::State::Idle;
            in.msg = kInvalidMsg;
            if (!in.buf.empty())
                panic("flits behind a tail on one VC at node ", id_);
        }
    }
}

void
Router::killWormAt(PortId p, VcId v)
{
    InputVc& in = ivc(p, v);
    const MsgId msg = in.msg;
    const std::size_t purged = in.buf.purge();
    stats_->flitsPurged.inc(purged);
    stats_->pathWideKills.inc();
    if (trace_ != nullptr) {
        trace_->record(TraceEventKind::RouterKill, msg, id_,
                       kInvalidNode, kInvalidNode, in.attempt, p);
    }
    CRNET_AUDIT_HOOK(audit_, onFlitsPurged(purged));
    CRNET_AUDIT_HOOK(audit_, onChannelReset(id_, p, v, msg));

    if (in.state == InputVc::State::Active) {
        // Tear down toward the destination with a forward kill token.
        Flit token;
        token.type = FlitType::Kill;
        token.msg = msg;
        token.attempt = in.attempt;
        CRNET_AUDIT_HOOK(audit_, onKillIssued(msg, in.attempt));
        in.killPending = true;
        in.killFlit = token;
        in.killOutPort = in.outPort;
        in.killOutVc = in.outVc;
    }
    // Tear down toward the source (reaches the injector, which
    // schedules the retransmission).
    propagateUpstream(p, v, msg);
    in.state = InputVc::State::Idle;
    in.purgeMsg = msg;
    in.msg = kInvalidMsg;
    in.stallCycles = 0;
}

void
Router::onOutputLinkDead(PortId out_port, Cycle now)
{
    for (VcId v = 0; v < numVcs_; ++v) {
        OutputVc& o = ovc(out_port, v);
        if (o.allocated) {
            // Tear the holding worm down toward its source exactly as
            // if a backward kill had arrived over the (now dead)
            // wire; the queue is processed first thing this tick, so
            // the chain reaches the injector before new traffic can
            // claim the stranded buffers.
            pendingBkillsAsOut_.push_back(SentBkill{out_port, v});
            stats_->linkDeathTeardowns.inc();
        } else {
            // Flits the far side purges never return credits; reset
            // the ledger and quarantine against credits still on the
            // wire from before the cut.
            o.credits = cfg_.bufferDepth;
            o.quarantineUntil = now + 2 * cfg_.channelLatency;
        }
    }
}

void
Router::onInputLinkDead(PortId in_port, Cycle now)
{
    for (VcId v = 0; v < numVcs_; ++v) {
        InputVc& in = ivc(in_port, v);
        if (in.state == InputVc::State::Idle)
            continue;  // Nothing stranded on this VC.
        const MsgId msg = in.msg;
        const std::size_t purged = in.buf.purge();
        stats_->flitsPurged.inc(purged);
        stats_->linkDeathTeardowns.inc();
        CRNET_AUDIT_HOOK(audit_, onFlitsPurged(purged));
        CRNET_AUDIT_HOOK(audit_, onChannelReset(id_, in_port, v, msg));
        if (in.state == InputVc::State::Active) {
            // The worm continues downstream. Its source's kill token
            // can no longer cross the dead wire, so the break point
            // issues the chasing token itself; it runs to the header
            // (annihilation) or to the receiver (discard/finalize).
            Flit token;
            token.type = FlitType::Kill;
            token.msg = msg;
            token.attempt = in.attempt;
            CRNET_AUDIT_HOOK(audit_, onKillIssued(msg, in.attempt));
            in.killPending = true;
            in.killFlit = token;
            in.killOutPort = in.outPort;
            in.killOutVc = in.outVc;
        } else {
            // The header was still waiting here: it dies with the
            // wire, like a kill/header annihilation.
            stats_->killsAnnihilated.inc();
        }
        in.state = InputVc::State::Idle;
        in.purgeMsg = msg;
        in.msg = kInvalidMsg;
        in.stallCycles = 0;
    }
    (void)now;
}

void
Router::onOutputLinkRepaired(PortId out_port, Cycle now)
{
    for (VcId v = 0; v < numVcs_; ++v) {
        OutputVc& o = ovc(out_port, v);
        if (o.allocated) {
            // Routing never allocates an output over a dead link, and
            // the death-time teardown deallocated the old holder.
            panic("repaired output (", out_port, ", ", v, ") at node ",
                  id_, " is still allocated");
        }
        o.credits = cfg_.bufferDepth;
        o.quarantineUntil = now + 2 * cfg_.channelLatency;
    }
}

void
Router::checkRouterTimeouts()
{
    // PathWide watches every worm segment; DropAtBlock (the BBN
    // Butterfly / abort-and-retry discipline from the paper's related
    // work) only rejects worms whose *header* is blocked here.
    const bool headers_only =
        cfg_.timeoutScheme == TimeoutScheme::DropAtBlock;
    for (PortId p = 0; p < numInPorts_; ++p) {
        for (VcId v = 0; v < numVcs_; ++v) {
            InputVc& in = ivc(p, v);
            if (in.state == InputVc::State::Idle)
                continue;
            if (headers_only && in.state != InputVc::State::Routing)
                continue;
            const bool blocked = !in.movedThisCycle &&
                (in.state == InputVc::State::Routing ||
                 !in.buf.empty());
            if (!blocked)
                continue;
            if (++in.stallCycles > cfg_.timeout)
                killWormAt(p, v);
        }
    }
}

void
Router::tick(Cycle now)
{
    now_ = now;
    sentFlits.clear();
    sentCredits.clear();
    sentBkills.clear();
    sentAborts.clear();
    std::fill(outPortBusy_, outPortBusy_ + numOutPorts_,
              std::uint8_t{0});
    const std::size_t nin = numInVcs();
    for (std::size_t i = 0; i < nin; ++i)
        inputs_[i].movedThisCycle = false;

    processBkills();
    forwardKills();
    routeHeaders(now);
    allocateSwitch(now);
    if (cfg_.timeoutScheme == TimeoutScheme::PathWide ||
        cfg_.timeoutScheme == TimeoutScheme::DropAtBlock) {
        checkRouterTimeouts();
    }
    if (heatTracking_)
        accumulateHeat();
}

void
Router::setHeatTracking(bool on)
{
    heatTracking_ = on;
    heatForwarded_.assign(on ? numOutPorts_ : 0, 0);
    heatBlocked_.assign(on ? numInPorts_ : 0, 0);
    heatOccupancy_ = 0;
}

std::uint64_t
Router::heatForwarded(PortId out_port) const
{
    return heatTracking_ ? heatForwarded_[out_port] : 0;
}

std::uint64_t
Router::heatBlocked(PortId in_port) const
{
    return heatTracking_ ? heatBlocked_[in_port] : 0;
}

void
Router::accumulateHeat()
{
    for (PortId p = 0; p < numInPorts_; ++p) {
        bool blocked = false;
        for (VcId v = 0; v < numVcs_; ++v) {
            const InputVc& in = ivc(p, v);
            heatOccupancy_ += in.buf.size();
            if (in.state == InputVc::State::Idle)
                continue;
            // Same notion of "blocked" as the path-wide timeout: the
            // worm holds the VC, made no progress this cycle, and has
            // something to move (a waiting header counts).
            if (!in.movedThisCycle &&
                (in.state == InputVc::State::Routing ||
                 !in.buf.empty())) {
                blocked = true;
            }
        }
        if (blocked)
            ++heatBlocked_[p];
    }
}

bool
Router::idle() const
{
    const std::size_t nin = numInVcs();
    for (std::size_t i = 0; i < nin; ++i) {
        const InputVc& in = inputs_[i];
        if (in.state != InputVc::State::Idle || !in.buf.empty() ||
            in.killPending) {
            return false;
        }
    }
    return pendingBkillsAsOut_.empty();
}

std::uint64_t
Router::bufferedFlits() const
{
    std::uint64_t n = 0;
    const std::size_t nin = numInVcs();
    for (std::size_t i = 0; i < nin; ++i)
        n += inputs_[i].buf.size();
    return n;
}

bool
Router::vcIdle(PortId in_port, VcId vc) const
{
    return ivc(in_port, vc).state == InputVc::State::Idle;
}

Router::InputProbe
Router::inputProbe(PortId in_port, VcId vc) const
{
    const InputVc& in = ivc(in_port, vc);
    InputProbe p;
    switch (in.state) {
      case InputVc::State::Idle: p.state = VcState::Idle; break;
      case InputVc::State::Routing: p.state = VcState::Routing; break;
      case InputVc::State::Active: p.state = VcState::Active; break;
    }
    p.msg = in.msg;
    p.attempt = in.attempt;
    p.buffered = static_cast<std::uint32_t>(in.buf.size());
    p.stallCycles = in.stallCycles;
    p.killPending = in.killPending;
    p.outPort = in.outPort;
    p.outVc = in.outVc;
    p.headArrivedAt = in.headArrivedAt;
    return p;
}

std::uint32_t
Router::inputOccupancy(PortId in_port, VcId vc) const
{
    return static_cast<std::uint32_t>(ivc(in_port, vc).buf.size());
}

bool
Router::inputKillPending(PortId in_port, VcId vc) const
{
    return ivc(in_port, vc).killPending;
}

Router::OutputProbe
Router::outputProbe(PortId out_port, VcId vc) const
{
    const OutputVc& o = ovc(out_port, vc);
    return OutputProbe{o.allocated, o.credits, o.quarantineUntil};
}

void
Router::saveState(StateWriter& w) const
{
    const std::size_t nin = numInVcs();
    for (std::size_t i = 0; i < nin; ++i) {
        const InputVc& in = inputs_[i];
        w.u64(in.buf.size());
        for (std::size_t f = 0; f < in.buf.size(); ++f)
            saveFlit(w, in.buf.peek(f));
        w.u8(static_cast<std::uint8_t>(in.state));
        w.u64(in.msg);
        w.u16(in.attempt);
        w.u16(in.outPort);
        w.u16(in.outVc);
        w.u64(in.stallCycles);
        w.u64(in.headArrivedAt);
        w.b(in.movedThisCycle);
        w.b(in.blockTraced);
        w.b(in.killPending);
        saveFlit(w, in.killFlit);
        w.u16(in.killOutPort);
        w.u16(in.killOutVc);
        w.u64(in.purgeMsg);
    }
    const std::size_t nout = numOutVcs();
    for (std::size_t i = 0; i < nout; ++i) {
        const OutputVc& out = outputs_[i];
        w.b(out.allocated);
        w.u16(out.holderPort);
        w.u16(out.holderVc);
        w.u32(out.credits);
        w.b(out.ejection);
        w.u64(out.quarantineUntil);
    }
    w.u64(pendingBkillsAsOut_.size());
    for (const SentBkill& bk : pendingBkillsAsOut_) {
        w.u16(bk.inPort);
        w.u16(bk.vc);
    }
    for (PortId p = 0; p < numInPorts_; ++p)
        w.u16(rrInVc_[p]);
    for (PortId p = 0; p < numOutPorts_; ++p)
        w.u16(rrOutIn_[p]);
    w.b(heatTracking_);
    if (heatTracking_) {
        for (std::uint64_t v : heatForwarded_)
            w.u64(v);
        for (std::uint64_t v : heatBlocked_)
            w.u64(v);
        w.u64(heatOccupancy_);
    }
    saveRng(w, rng_);
    w.u64(now_);
}

void
Router::loadState(StateReader& r)
{
    const std::size_t nin = numInVcs();
    for (std::size_t idx = 0; idx < nin; ++idx) {
        InputVc& in = inputs_[idx];
        in.buf.purge();
        const std::uint64_t buffered = r.u64();
        for (std::uint64_t i = 0; i < buffered; ++i) {
            Flit f;
            loadFlit(r, f);
            in.buf.push(f);
        }
        in.state = static_cast<InputVc::State>(r.u8());
        in.msg = r.u64();
        in.attempt = r.u16();
        in.outPort = r.u16();
        in.outVc = r.u16();
        in.stallCycles = r.u64();
        in.headArrivedAt = r.u64();
        in.movedThisCycle = r.b();
        in.blockTraced = r.b();
        in.killPending = r.b();
        loadFlit(r, in.killFlit);
        in.killOutPort = r.u16();
        in.killOutVc = r.u16();
        in.purgeMsg = r.u64();
    }
    const std::size_t nout = numOutVcs();
    for (std::size_t idx = 0; idx < nout; ++idx) {
        OutputVc& out = outputs_[idx];
        out.allocated = r.b();
        out.holderPort = r.u16();
        out.holderVc = r.u16();
        out.credits = r.u32();
        out.ejection = r.b();
        out.quarantineUntil = r.u64();
    }
    pendingBkillsAsOut_.clear();
    const std::uint64_t numBkills = r.u64();
    for (std::uint64_t i = 0; i < numBkills; ++i) {
        SentBkill bk;
        bk.inPort = r.u16();
        bk.vc = r.u16();
        pendingBkillsAsOut_.push_back(bk);
    }
    for (PortId p = 0; p < numInPorts_; ++p)
        rrInVc_[p] = r.u16();
    for (PortId p = 0; p < numOutPorts_; ++p)
        rrOutIn_[p] = r.u16();
    const bool heat = r.b();
    if (heat != heatTracking_)
        panic("heat-tracking mismatch on restore (saved ", heat,
              ", have ", heatTracking_, ")");
    if (heatTracking_) {
        for (std::uint64_t& v : heatForwarded_)
            v = r.u64();
        for (std::uint64_t& v : heatBlocked_)
            v = r.u64();
        heatOccupancy_ = r.u64();
    }
    loadRng(r, rng_);
    now_ = r.u64();
    sentFlits.clear();
    sentCredits.clear();
    sentBkills.clear();
    sentAborts.clear();
}

} // namespace crnet
