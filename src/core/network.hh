/**
 * @file
 * The assembled network: topology + routers + NICs + traffic + faults,
 * advanced one cycle at a time.
 *
 * Cycle model: every channel (router-router, injection, ejection) has
 * one cycle of latency. Each tick delivers everything sent last cycle,
 * lets injectors/routers/receivers compute, then stages their output
 * for the next delivery. All credit and kill signaling rides the same
 * one-cycle channels.
 */

#ifndef CRNET_CORE_NETWORK_HH
#define CRNET_CORE_NETWORK_HH

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/core/annotations.hh"
#include "src/core/metrics.hh"
#include "src/fault/fault_model.hh"
#include "src/fault/fault_schedule.hh"
#include "src/sim/audit.hh"
#include "src/nic/injector.hh"
#include "src/nic/receiver.hh"
#include "src/router/router.hh"
#include "src/routing/routing.hh"
#include "src/sim/config.hh"
#include "src/sim/parallel.hh"
#include "src/sim/rng.hh"
#include "src/sim/trace.hh"
#include "src/topology/topology.hh"
#include "src/traffic/generator.hh"

namespace crnet {

class DeliveryLedger;
class Tracer;
class TimeSeries;
class StateWriter;
class StateReader;

/** A complete simulated network. */
class Network : public DeliverySink, public MessageFailureSink
{
  public:
    /** Build a network from a validated configuration. */
    explicit Network(const SimConfig& cfg);
    ~Network() override;

    Network(const Network&) = delete;
    Network& operator=(const Network&) = delete;

    /**
     * Advance one cycle. Hot path: no heap allocation may be
     * reachable from here in steady state (rule `alloc`; deliberate
     * amortized-growth and diagnostic sites carry CRNET_ALLOW).
     * Result-affecting: everything under the tick shapes reported
     * results, so no hash-ordered iteration may be reachable either
     * (rule `unordered-iter`).
     */
    CRNET_HOT_PATH CRNET_RESULT_AFFECTING
    void tick();

    /**
     * Advance `n` cycles. Under SchedulerKind::Event, globally quiet
     * spans inside the window are skipped over (batched arrival draws
     * plus boundary-exact audit/sample work) instead of ticked; the
     * results are bit-identical to per-cycle execution.
     */
    void run(Cycle n);

    Cycle now() const { return now_; }

    /**
     * Cycles the event scheduler skipped (never ticked component-by-
     * component) so far. Always 0 under sweep/active. Diagnostic
     * only: deliberately excluded from snapshots, so restored runs
     * count their own skips.
     */
    Cycle quietCyclesSkipped() const { return quietCyclesSkipped_; }

    // --- Workload control -------------------------------------------

    /** Enable/disable the synthetic traffic generator. */
    void setTrafficEnabled(bool on) { trafficEnabled_ = on; }

    /** Mark newly generated messages as measured (stats window). */
    void setMeasuring(bool on) { measuring_ = on; }

    /**
     * Send one explicit message (examples/tests). Returns its id, or
     * kInvalidMsg if the source queue was full. Delivery of explicit
     * messages can be queried with isDelivered()/deliveryRecord().
     */
    MsgId sendMessage(NodeId src, NodeId dst,
                      std::uint32_t payload_len, bool measured = true);

    bool isDelivered(MsgId id) const;

    /** Delivery record of an explicit message (null until arrival). */
    const DeliveredMessage* deliveryRecord(MsgId id) const;

    // --- State queries -------------------------------------------------

    /**
     * True when no flit has moved anywhere for deadlockThreshold
     * cycles while work remains — the watchdog that detects true
     * wormhole deadlock (used by the no-protocol demo).
     */
    bool deadlocked() const;

    /** No queued, in-flight or partially assembled message anywhere. */
    bool quiescent() const;

    /** All measured messages accounted for (delivered or failed). */
    bool measuredDrained() const;

    const NetworkStats& stats() const { return stats_; }
    NetworkStats& stats() { return stats_; }
    const SimConfig& config() const { return cfg_; }
    const Topology& topology() const { return *topo_; }
    FaultModel& faults() { return *faults_; }
    const RoutingAlgorithm& routing() const { return *routing_; }
    Injector& injector(NodeId n) { return *injectors_[n]; }
    Receiver& receiver(NodeId n) { return *receivers_[n]; }
    Router& router(NodeId n) { return *routers_[n]; }
    TrafficGenerator& generator() { return *generator_; }

    /** The invariant auditor, or null when compiled out. */
    Auditor* auditor() { return audit_.get(); }

    // --- Observability (see docs/OBSERVABILITY.md) --------------------

    /** The event tracer, or null when tracing is disabled. */
    Tracer* tracer() { return trace_.get(); }

    /** Collected time-series samples (empty unless sample_interval). */
    std::vector<TimeSeriesSample> timeseriesSamples() const;

    /**
     * Channel-heat snapshot (per-router occupancy integral, per-port
     * forwarded flits and blocked cycles). Null unless heatmap=1.
     */
    std::shared_ptr<const HeatmapData> collectHeatmap() const;

    /**
     * Attach the per-run self-profiler (src/sim/telemetry.hh); null
     * detaches. Off the results path: an unprofiled run pays exactly
     * one null-pointer branch per hook, and a profiled run's results
     * are byte-identical to an unprofiled one. Attaching also caches
     * the scheduler/occupancy gauges of the process-wide telemetry
     * registry, refreshed on the profiler's sampled ticks.
     */
    void attachProfiler(TickProfiler* prof);

    /** Messages counted into the measurement window. */
    std::uint64_t measuredCreated() const { return measuredCreated_; }

    // --- Dynamic faults ------------------------------------------------

    /** The fault schedule, or null when no dynamic faults configured. */
    const FaultSchedule* schedule() const { return schedule_.get(); }

    /**
     * Fire one fault event right now, regardless of its `at` field
     * (tests and interactive experiments). Arms the dynamic-fault
     * machinery on first use if the config did not.
     */
    void injectFaultEvent(const FaultEvent& ev);

    /**
     * Attach the campaign delivery ledger: every accepted message is
     * recorded, every delivery/failure resolves its entry. Null to
     * detach.
     */
    void attachLedger(DeliveryLedger* ledger) { ledger_ = ledger; }

    /**
     * Write the deadlock-forensics report: dead links, stuck input
     * VCs (with the oldest blocked header), injector slots, open
     * assemblies and the occupancy heatmap. Also emitted through
     * warn() automatically the first time the watchdog fires under
     * dynamic faults.
     */
    CRNET_RESULT_AFFECTING
    void dumpForensics(std::ostream& os) const;

    /**
     * Write an ASCII buffer-occupancy heatmap (2D topologies render
     * as a grid, others as a list). Each cell is the number of flits
     * buffered in that node's router — after a deadlock this shows
     * the wedged worm cycle directly.
     */
    CRNET_RESULT_AFFECTING
    void dumpOccupancy(std::ostream& os) const;

    // --- Checkpoint/restore (see docs/ROBUSTNESS.md) ------------------

    /**
     * Serialize every field the tick mutates — stats, RNG streams,
     * wave buckets, router/NIC state, scheduler flags and deadline
     * arrays, sidecars (tracer/timeseries/auditor) and the attached
     * ledger — in a fixed, sorted, little-endian layout. Prefer
     * captureSnapshot()/restoreSnapshot() (snapshot.hh), which add
     * the version/fingerprint envelope.
     */
    CRNET_RESULT_AFFECTING
    void saveState(StateWriter& w) const;

    /**
     * Overwrite this network's mutable state from a saveState()
     * payload. The network must have been constructed from a config
     * with the same configFingerprint(); continuing afterwards is
     * byte-identical to the uninterrupted run.
     */
    CRNET_RESULT_AFFECTING
    void loadState(StateReader& r);

    /**
     * Re-fork every RNG stream from a fresh root seed, in exactly the
     * constructor's fork order (warm-start forking: restore one
     * drained-to-steady-state snapshot many times, then give each
     * fork its own measurement randomness).
     */
    void reseedStreams(std::uint64_t seed);

    // DeliverySink
    void onDelivered(const DeliveredMessage& msg) override;

    // MessageFailureSink (source gave up: maxRetries exhausted)
    void onMessageFailed(const PendingMessage& msg,
                         Cycle now) override;

  private:
    // Staged (next-cycle) deliveries.
    struct PendingFlit
    {
        NodeId node;
        PortId inPort;
        VcId vc;
        Flit flit;
        bool networkHop;  //!< Router-to-router (fault-eligible).
    };
    struct PendingRecvFlit
    {
        NodeId node;
        std::uint32_t ejChannel;
        VcId vc;
        Flit flit;
    };
    struct PendingCredit
    {
        NodeId node;
        PortId outPort;
        VcId vc;
    };
    struct PendingInjCredit
    {
        NodeId node;
        std::uint32_t injChannel;
        VcId vc;
    };
    struct PendingBkill
    {
        NodeId node;
        PortId outPort;
        VcId vc;
    };
    struct PendingAbort
    {
        NodeId node;
        std::uint32_t injChannel;
        VcId vc;
        MsgId msg;
    };

    struct Wave
    {
        std::vector<PendingFlit> flits;
        std::vector<PendingRecvFlit> recvFlits;
        std::vector<PendingCredit> credits;
        std::vector<PendingInjCredit> injCredits;
        std::vector<PendingBkill> bkills;
        std::vector<PendingAbort> aborts;

        void clear();
        bool empty() const;
    };

    void deliver();
    void generate();
    void collectInjector(NodeId n);
    void collectRouter(NodeId n);
    void collectReceiver(NodeId n);
    std::uint64_t activityLevel() const;

    // --- Active-set scheduling (see docs/PERFORMANCE.md) -----------
    //
    // Under SchedulerKind::Active only components with work are
    // ticked: anything receiving a delivery, a new message or a fault
    // teardown is woken for the same cycle, and components whose next
    // state change is a known future deadline (cooldown exit, backoff
    // expiry, starvation-check boundary) sleep on a deadline heap
    // until then. Ticking an idle component is a provable no-op, so
    // over-waking is always safe; the wake rules below never
    // under-wake, which is what keeps the two schedulers
    // bit-identical.

    /** Tick every component (SchedulerKind::Sweep). */
    void sweepAll();

    /** Tick this cycle's woken components, then re-register them. */
    void sweepActive();

    // --- Intra-run sharding (see docs/PERFORMANCE.md) --------------
    //
    // When shards > 1 the node array is cut into contiguous ranges,
    // one ThreadPool worker per range, and the compute phase of every
    // cycle (injector/router/receiver ticks) runs in parallel with
    // exactly one barrier per cycle. The >= 1-cycle channel latency
    // is the synchronization slack: all cross-component traffic is
    // staged through the wave buckets and delivered serially at the
    // top of the next cycle, so component ticks within one cycle are
    // mutually independent. Everything order-sensitive — wave pushes,
    // deadline-heap pushes, Welford accumulator adds, ledger/sink
    // callbacks, trace records — is staged per shard during the
    // parallel phase and replayed serially in node order afterwards,
    // which keeps every result byte-identical to shards=1.

    /** sweepAll(), sharded: whole node ranges per worker. */
    void sweepAllSharded();

    /** sweepActive(), sharded: scanned work lists per worker. */
    CRNET_ALLOW("alloc",
                "work-list appends land in capacity reserved to the "
                "shard's full range size at construction, so the "
                "steady state never grows them")
    void sweepActiveSharded();

    /**
     * One worker's compute phase: tick this shard's injector, router
     * and receiver slices (in that phase order, each in node order)
     * with the tracer/auditor staging areas installed.
     */
    CRNET_HOT_PATH CRNET_RESULT_AFFECTING
    void shardWorker(unsigned s, bool from_work_lists);

    /** Submit all shard workers and block on the cycle barrier. */
    CRNET_ALLOW("alloc",
                "per-cycle task submission: `shards` small type-"
                "erased closures per barrier, amortized across the "
                "whole node array's worth of parallel tick work")
    CRNET_ALLOW("wallclock",
                "barrier-wait telemetry counter: observability only, "
                "never feeds back into simulation state")
    void runShardBarrier(bool from_work_lists);

    /** Fold audit stages, replay staged trace events (serial). */
    void drainShardSidecars();

    /** Fold per-shard Counter blocks into the master stats block. */
    void foldShardCounters();

    /** Deferred injector failures + measured-commit samples. */
    void drainInjectorOutboxes(Injector& inj);

    /** Deferred receiver accumulator adds + delivery callbacks. */
    void drainReceiverOutboxes(Receiver& rcv);

    /** Queue a component for this cycle's sweep (idempotent). */
    void wakeInjector(NodeId id);
    void wakeRouter(NodeId id);
    void wakeReceiver(NodeId id);

    /**
     * Sleep a component until `at` (kNeverCycle = fully idle;
     * now_ + 1 or earlier = stay in the wake list).
     */
    CRNET_ALLOW("alloc",
                "deadline min-heap push: amortized vector growth, "
                "bounded by the node count in steady state")
    void scheduleInjector(NodeId id, Cycle at);
    CRNET_ALLOW("alloc",
                "deadline min-heap push: amortized vector growth, "
                "bounded by the node count in steady state")
    void scheduleReceiver(NodeId id, Cycle at);

    /** Wake every component whose deadline is due at now_. */
    void popDueDeadlines();

    // --- Event scheduling (SchedulerKind::Event) -------------------
    //
    // The event scheduler is the active scheduler plus a skip-ahead:
    // when no component is awake and nothing is in flight, the clock
    // advances straight through the arrival-free prefix of the window
    // bounded by the earliest pending deadline — injector cooldown/
    // backoff expiry and receiver starvation boundaries (the deadline
    // heaps), scheduled fault events, the deadlock watchdog's
    // crossing cycle, and the run window itself. Audit sweeps and
    // time-series samples still land on their exact cycles, and the
    // traffic generator consumes exactly the per-cycle draw stream,
    // so results stay bit-identical to the per-cycle schedulers.

    /**
     * True when the coming cycle cannot change any state: no awake
     * component, empty wave rings, no due deadline or fault event.
     * Lingering awake-but-idle routers are probed (and put to sleep)
     * on the way — the immediate form of sweepActive()'s periodic
     * idle probe.
     */
    bool tryEnterQuiet();

    /** Skip ahead from a quiet cycle, staying inside [now_, end). */
    void runQuietSpan(Cycle end);

    void applyFaultEvents();
    void applyOneFaultEvent(const FaultEvent& ev);
    /** Kill one directed channel's stranded worm state on both ends. */
    void teardownDirectedLink(NodeId u, PortId p);
    void repairDirectedLink(NodeId u, PortId p);

    /** Snapshot every credit ledger and run the invariant sweep. */
    void runAuditSweep();

    /**
     * One-shot deadlock diagnostic: format the forensics report and
     * warn() it. Split out of tick() so its string building can be
     * suppressed without exempting the tick itself.
     */
    CRNET_ALLOW("alloc",
                "one-shot deadlock diagnostic: fires at most once per "
                "run, after the simulation is already wedged")
    void reportDeadlockForensics();

    /** Append one time-series sample covering the last interval. */
    void takeSample();

    /**
     * Refresh the cached registry gauges/histograms (awake counts,
     * wave-ring occupancy, deadline-heap sizes, generator draws).
     * Runs only on the profiler's sampled ticks; allocation-free.
     */
    void sampleTelemetryGauges();

    /**
     * Instantaneous gauges for a time-series sample: in-flight worms
     * and buffered flits, flag-gated under the active-set schedulers
     * (a sleeping component's gauges are provably zero).
     */
    void sampleGauges(std::uint64_t& in_flight,
                      std::uint64_t& buffered) const;

    /** Wave that events maturing `delay` cycles from now go into. */
    Wave& waveIn(Cycle delay);

    SimConfig cfg_;
    std::unique_ptr<Topology> topo_;
    std::unique_ptr<Auditor> audit_;
    std::unique_ptr<Tracer> trace_;
    std::unique_ptr<TimeSeries> timeseries_;
    std::unique_ptr<FaultModel> faults_;
    std::unique_ptr<RoutingAlgorithm> routing_;
    NetworkStats stats_;
    std::unique_ptr<TrafficGenerator> generator_;

    /**
     * Sharding degree (resolveShards(cfg.shards), clamped to the
     * node count). An execution knob like `jobs`: excluded from the
     * config fingerprint, and every result is byte-identical across
     * values.
     */
    unsigned shards_ = 1;
    /**
     * Structure-of-arrays backing store for every router's mutable
     * hot state (flit slots, VC books, arbitration pointers), indexed
     * by node id. Declared before routers_, which hold raw pointers
     * into it.
     */
    std::unique_ptr<Router::StatePool> routerPool_;
    /**
     * Per-shard Counter accumulation blocks (shards > 1 only).
     * Components of shard s write their Counter fields here, race-
     * free, and foldShardCounters() folds them into stats_ at the end
     * of every sweep. Accumulators/histograms in these blocks are
     * never written: order-sensitive adds are deferred through the
     * component outboxes instead (see setDeferStats).
     */
    std::vector<std::unique_ptr<NetworkStats>> shardStats_;

    std::vector<std::unique_ptr<Router>> routers_;
    std::vector<std::unique_ptr<Injector>> injectors_;
    std::vector<std::unique_ptr<Receiver>> receivers_;

    /**
     * Delivery buckets, indexed by cycle modulo size (a power of two,
     * so the hot index computation is a mask, not a division).
     * Router-to-router events mature after channelLatency cycles;
     * NIC-local events after one.
     */
    std::vector<Wave> buckets_;
    std::size_t bucketMask_ = 0;

    // Active-set scheduler state. A wake is one byte store; the sweep
    // scans the flag arrays in node order, which keeps the tick order
    // — and with it every wave, arbitration and RNG interleaving —
    // identical to the exhaustive sweep (the scan is a few hundred
    // predictable byte loads, far cheaper than maintaining sorted
    // wake lists). The deadline heaps hold sleeping components' next
    // event cycles, deduplicated through the per-component `nextAt`
    // arrays (stale entries pop as harmless spurious wakes).
    using DeadlineHeap =
        std::priority_queue<std::pair<Cycle, NodeId>,
                            std::vector<std::pair<Cycle, NodeId>>,
                            std::greater<>>;
    bool activeSched_ = true;
    bool eventSched_ = false;
    std::vector<std::uint8_t> injAwake_, rtrAwake_, rcvAwake_;
    DeadlineHeap injDeadlines_, rcvDeadlines_;
    std::vector<Cycle> injNextAt_, rcvNextAt_;
    /**
     * Number of set flags per kind, so the event scheduler's quiet
     * check is O(1) on busy cycles. Under sweep the flags are set but
     * never cleared, so the counts saturate harmlessly. Derived from
     * the flag arrays (recounted on restore, never serialized).
     */
    std::uint32_t injAwakeN_ = 0, rtrAwakeN_ = 0, rcvAwakeN_ = 0;
    Cycle quietCyclesSkipped_ = 0;

    /** Per-shard worker context: node range, work lists, staging. */
    struct ShardCtx
    {
        NodeId begin = 0;  //!< First node of this shard's range.
        NodeId end = 0;    //!< One past the last node.
        // This cycle's awake node ids (active scheduler), ascending;
        // ranges are contiguous, so shard-major iteration over these
        // is global node order.
        std::vector<NodeId> injWork, rtrWork, rcvWork;
        // Staged trace tuples, one buffer per phase so the replay can
        // run phase-major / shard-minor (= the serial record order).
        std::vector<TraceEvent> injTrace, rtrTrace, rcvTrace;
        Auditor::ShardStage audit;
        std::uint64_t ticks = 0;  //!< Cumulative component ticks.
    };
    std::vector<ShardCtx> shardCtx_;
    /** Cycle-barrier worker pool (shards_ > 1 only). */
    std::unique_ptr<ThreadPool> shardPool_;
    // Registry handles (registered at construction; updates are
    // relaxed atomic stores, hot-path safe).
    std::atomic<std::uint64_t>* shardBarrierNanos_ = nullptr;
    std::vector<std::atomic<std::uint64_t>*> shardTickGauges_;

    // --- Telemetry (off the results path; see telemetry.hh) --------
    TickProfiler* prof_ = nullptr;
    /** True while the current tick is being clock-stamped. */
    bool profTimed_ = false;
    // Registry handles, cached by attachProfiler (registration
    // allocates; updates are single atomic stores, hot-path safe).
    std::atomic<std::uint64_t>* gaugeInjAwake_ = nullptr;
    std::atomic<std::uint64_t>* gaugeRtrAwake_ = nullptr;
    std::atomic<std::uint64_t>* gaugeRcvAwake_ = nullptr;
    std::atomic<std::uint64_t>* gaugeWaveOcc_ = nullptr;
    std::atomic<std::uint64_t>* gaugeQuietSkipped_ = nullptr;
    std::atomic<std::uint64_t>* gaugeRngMessages_ = nullptr;
    TelemetryHistogram* histInjHeap_ = nullptr;
    TelemetryHistogram* histRcvHeap_ = nullptr;

    Cycle now_ = 0;
    bool trafficEnabled_ = true;
    bool measuring_ = false;
    std::uint64_t measuredCreated_ = 0;

    Cycle lastActivity_ = 0;
    std::uint64_t lastActivityLevel_ = 0;

    // Dynamic faults (null / false unless configured or injected).
    std::unique_ptr<FaultSchedule> schedule_;
    bool dynamicFaults_ = false;
    bool forensicsDumped_ = false;
    DeliveryLedger* ledger_ = nullptr;
    std::vector<FaultEvent> dueEvents_;  //!< collectDue scratch.

    /** Explicit-send tracking. */
    std::unordered_map<MsgId, DeliveredMessage> manualDelivered_;
    std::unordered_map<MsgId, bool> manualPending_;
};

} // namespace crnet

#endif // CRNET_CORE_NETWORK_HH
