/**
 * @file
 * Central statistics block shared by injectors, receivers and routers
 * of one network, plus the per-run result record the experiment
 * harness reports.
 */

#ifndef CRNET_CORE_METRICS_HH
#define CRNET_CORE_METRICS_HH

#include <cstdint>
#include <memory>
#include <vector>

#include "src/core/timeseries.hh"
#include "src/router/router.hh"
#include "src/sim/stats.hh"
#include "src/sim/telemetry.hh"
#include "src/sim/types.hh"

namespace crnet {

/** Everything the simulation counts, in one place. */
struct NetworkStats
{
    RouterStats router;

    // --- Source side ------------------------------------------------
    Counter messagesGenerated;
    Counter messagesMeasured;
    Counter sourceQueueDrops;     //!< Generator arrivals that found a
                                  //!< full source queue.
    Counter flitsInjected;
    Counter padFlitsInjected;
    Counter sourceKills;          //!< Source-timeout kills.
    Counter abortedByBkill;       //!< Worms torn down from within.
    Counter messagesCommitted;    //!< Tails injected (CR commit).
    Counter messagesFailed;       //!< Gave up after max retries.
    Counter measuredFailed;       //!< ... of which were measured.

    // --- Sink side -----------------------------------------------------
    Counter messagesDelivered;
    Counter measuredDelivered;
    Counter corruptedDeliveries;  //!< Delivered with bad payload
                                  //!< (must stay 0 under FCR).
    Counter orderViolations;      //!< pairSeq gaps at delivery.
    Counter duplicateDeliveries;  //!< pairSeq repeats at delivery.
    Counter refusals;             //!< FCR receiver error refusals.
    Counter staleAttemptFlits;    //!< Consumed flits of superseded
                                  //!< attempts (kill/retry races).
    Counter flitsConsumed;
    Counter padFlitsConsumed;
    Counter measuredPayloadFlits; //!< Payload flits of measured msgs.

    // --- Dynamic faults ------------------------------------------------
    Counter faultEventsApplied;   //!< FaultSchedule events fired.
    Counter flitsLostOnDeadLinks; //!< Data flits absorbed mid-wire.
    Counter killsAbsorbedAtDeadLinks;  //!< Forward kills absorbed (the
                                       //!< break-point kill continues
                                       //!< the teardown downstream).
    Counter controlAbsorbedAtDeadLinks; //!< Credits/bkills absorbed.
    Counter receiverTimeouts;     //!< Starved assemblies resolved by
                                  //!< the receiver-side timeout.
    Counter assembliesFinalized;  //!< Kill-cut messages whose payload
                                  //!< was already complete: delivered.
    Counter assembliesDiscarded;  //!< Kill-cut messages dropped
                                  //!< (incomplete or corrupt payload).
    Counter retryDuplicatesSuppressed;  //!< Retransmissions arriving
                                        //!< after a finalize.

    // --- Measured-message latency -------------------------------------
    Accumulator totalLatency;     //!< Creation -> tail delivered.
    Accumulator netLatency;       //!< Last head injection -> delivered.
    Accumulator attempts;         //!< Attempts per delivered message.
    Accumulator padOverhead;      //!< Pad flits / wire flits per msg.
    Histogram latencyHist{8.0, 4096};  //!< Total latency, 8-cycle bins.
};

/** Aggregate outcome of one simulated configuration. */
struct RunResult
{
    double offeredLoad = 0.0;      //!< Flits/node/cycle offered.
    double acceptedThroughput = 0.0;  //!< Measured payload
                                      //!< flits/node/cycle delivered.
    double avgLatency = 0.0;
    double netLatency = 0.0;
    double p50Latency = 0.0;
    double p95Latency = 0.0;
    double p99Latency = 0.0;
    double maxLatency = 0.0;
    double latencyStddev = 0.0;
    double avgAttempts = 0.0;
    double killsPerMessage = 0.0;
    double padOverhead = 0.0;      //!< Mean pad fraction of the wire.
    std::uint64_t measuredMessages = 0;
    std::uint64_t deliveredMeasured = 0;
    std::uint64_t totalKills = 0;
    std::uint64_t pathWideKills = 0;
    std::uint64_t escapeAllocations = 0;  //!< Duato PDS proxy.
    std::uint64_t misrouteHops = 0;
    std::uint64_t corruptions = 0;
    std::uint64_t corruptedDeliveries = 0;
    std::uint64_t orderViolations = 0;
    std::uint64_t duplicateDeliveries = 0;
    std::uint64_t refusals = 0;
    bool deadlocked = false;
    bool drained = false;          //!< All measured msgs delivered.
    Cycle cyclesRun = 0;
    /**
     * Samples that fell past the latency histogram's last bin
     * (latencyHist caps at binWidth * numBins = 32768 cycles). When
     * non-zero, p50/p95/p99 are clamped to the histogram range and
     * summarize() warns once per process.
     */
    std::uint64_t latencyOverflow = 0;

    // --- Telemetry (populated when the matching config keys are set) --
    /** Interval samples (`sample_interval` > 0); else empty. */
    std::vector<TimeSeriesSample> timeseries;
    /** Per-node heat counters (`heatmap=1`); else null. */
    std::shared_ptr<const HeatmapData> heatmap;

    // --- Engine observability (not simulation results) ----------------
    /**
     * Data-flit events processed over the whole run: injections +
     * switch traversals + consumptions. The work metric behind the
     * flit-events/sec throughput figure in bench timing footers.
     */
    std::uint64_t flitEvents = 0;
    double wallSeconds = 0.0;      //!< Host wall-clock for this run.
    /**
     * Self-profiler output (`profile=1`): wall time attributed to
     * warmup/measure/drain and tick sub-phases. Like wallSeconds,
     * excluded from every byte-identity comparison.
     */
    ProfileData profile;
};

} // namespace crnet

#endif // CRNET_CORE_METRICS_HH
