#include "src/core/network.hh"

#include <algorithm>
#include <array>
#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>

#include "src/core/timeseries.hh"
#include "src/fault/campaign.hh"
#include "src/sim/log.hh"
#include "src/sim/snapshot.hh"
#include "src/sim/trace.hh"
#include "src/sim/walltime.hh"

namespace crnet {

namespace {

/**
 * How often (in cycles, a power of two) a busy router is probed with
 * idle() so it can leave the active set. See sweepActive().
 */
constexpr Cycle kIdleProbePeriod = 8;
static_assert((kIdleProbePeriod & (kIdleProbePeriod - 1)) == 0 &&
                  kIdleProbePeriod != 0,
              "kIdleProbePeriod must be a power of two: the probe "
              "boundary test masks with (kIdleProbePeriod - 1) "
              "instead of taking a modulus");

/**
 * Every Counter field of the stats block, as member-pointer tables,
 * so the per-shard fold (and the restore-time reset) walks them
 * without hand-maintaining two copies of the list. Accumulators and
 * the histogram are deliberately absent: shard blocks never receive
 * order-sensitive adds (see NetworkStats shardStats_ doc).
 */
constexpr std::array<Counter RouterStats::*, 13> kRouterCounters = {
    &RouterStats::flitsForwarded,
    &RouterStats::headersRouted,
    &RouterStats::escapeAllocations,
    &RouterStats::misrouteHops,
    &RouterStats::killsForwarded,
    &RouterStats::killsAnnihilated,
    &RouterStats::pathWideKills,
    &RouterStats::bkillHops,
    &RouterStats::flitsPurged,
    &RouterStats::stragglersDropped,
    &RouterStats::staleKills,
    &RouterStats::lateCreditsDropped,
    &RouterStats::linkDeathTeardowns,
};

constexpr std::array<Counter NetworkStats::*, 28> kNetworkCounters = {
    &NetworkStats::messagesGenerated,
    &NetworkStats::messagesMeasured,
    &NetworkStats::sourceQueueDrops,
    &NetworkStats::flitsInjected,
    &NetworkStats::padFlitsInjected,
    &NetworkStats::sourceKills,
    &NetworkStats::abortedByBkill,
    &NetworkStats::messagesCommitted,
    &NetworkStats::messagesFailed,
    &NetworkStats::measuredFailed,
    &NetworkStats::messagesDelivered,
    &NetworkStats::measuredDelivered,
    &NetworkStats::corruptedDeliveries,
    &NetworkStats::orderViolations,
    &NetworkStats::duplicateDeliveries,
    &NetworkStats::refusals,
    &NetworkStats::staleAttemptFlits,
    &NetworkStats::flitsConsumed,
    &NetworkStats::padFlitsConsumed,
    &NetworkStats::measuredPayloadFlits,
    &NetworkStats::faultEventsApplied,
    &NetworkStats::flitsLostOnDeadLinks,
    &NetworkStats::killsAbsorbedAtDeadLinks,
    &NetworkStats::controlAbsorbedAtDeadLinks,
    &NetworkStats::receiverTimeouts,
    &NetworkStats::assembliesFinalized,
    &NetworkStats::assembliesDiscarded,
    &NetworkStats::retryDuplicatesSuppressed,
};

/** Fold every Counter of `from` into `into` and zero `from`. */
void
foldCounters(NetworkStats& into, NetworkStats& from)
{
    for (const auto field : kRouterCounters) {
        Counter& f = from.router.*field;
        if (f.value() != 0) {
            (into.router.*field).inc(f.value());
            f.reset();
        }
    }
    for (const auto field : kNetworkCounters) {
        Counter& f = from.*field;
        if (f.value() != 0) {
            (into.*field).inc(f.value());
            f.reset();
        }
    }
}

/** Zero every Counter of a shard block (snapshot restore). */
void
resetCounters(NetworkStats& blk)
{
    for (const auto field : kRouterCounters)
        (blk.router.*field).reset();
    for (const auto field : kNetworkCounters)
        (blk.*field).reset();
}

} // namespace

void
Network::Wave::clear()
{
    flits.clear();
    recvFlits.clear();
    credits.clear();
    injCredits.clear();
    bkills.clear();
    aborts.clear();
}

bool
Network::Wave::empty() const
{
    return flits.empty() && recvFlits.empty() && credits.empty() &&
           injCredits.empty() && bkills.empty() && aborts.empty();
}

Network::Network(const SimConfig& cfg) : cfg_(cfg)
{
    cfg_.validate();
    activeSched_ = cfg_.sched != SchedulerKind::Sweep;
    eventSched_ = cfg_.sched == SchedulerKind::Event;
    // Events mature at most channelLatency cycles out (+1 for "next
    // cycle" staging, +1 because the current bucket is in use); round
    // the bucket count up to a power of two so waveIn()/deliver()
    // index with a mask instead of a division. The extra buckets stay
    // empty and cost nothing.
    std::size_t bucket_count = 1;
    while (bucket_count <
           static_cast<std::size_t>(cfg_.channelLatency) + 2)
        bucket_count <<= 1;
    bucketMask_ = bucket_count - 1;
    buckets_.resize(bucket_count);
    Rng root(cfg_.seed);

    topo_ = makeTopology(cfg_);
    faults_ = std::make_unique<FaultModel>(
        *topo_, cfg_.transientFaultRate, root.fork());
    if (cfg_.permanentLinkFaults > 0)
        faults_->injectPermanentFaults(cfg_.permanentLinkFaults);
    routing_ = makeRouting(cfg_, *topo_, *faults_);
    generator_ = std::make_unique<TrafficGenerator>(cfg_, *topo_,
                                                    root.fork());

    const NodeId n = topo_->numNodes();

    // Sharding setup. The shard count is an execution knob: ranges
    // are contiguous and the component construction below (and with
    // it the RNG fork order) is identical for every value.
    shards_ = std::min<unsigned>(resolveShards(cfg_.shards),
                                 static_cast<unsigned>(n));
    shards_ = std::max(shards_, 1u);
    shardCtx_.resize(shards_);
    {
        const NodeId per = n / shards_;
        const NodeId extra = n % shards_;
        NodeId at = 0;
        for (unsigned s = 0; s < shards_; ++s) {
            shardCtx_[s].begin = at;
            at += per + (s < extra ? 1 : 0);
            shardCtx_[s].end = at;
        }
    }
    if (shards_ > 1) {
        shardStats_.reserve(shards_);
        for (unsigned s = 0; s < shards_; ++s)
            shardStats_.push_back(std::make_unique<NetworkStats>());
    }

    routerPool_ = std::make_unique<Router::StatePool>(cfg_, n);
    routers_.reserve(n);
    injectors_.reserve(n);
    receivers_.reserve(n);
    unsigned shard = 0;
    for (NodeId id = 0; id < n; ++id) {
        if (id >= shardCtx_[shard].end)
            ++shard;
        // Counters accumulate in the owning shard's block (folded
        // into stats_ every sweep); with one shard that block IS
        // stats_ and the deferred-stats outboxes stay disabled.
        NetworkStats* blk =
            shards_ > 1 ? shardStats_[shard].get() : &stats_;
        routers_.push_back(std::make_unique<Router>(
            id, cfg_, *routing_, &blk->router, root.fork(),
            *routerPool_, id));
        injectors_.push_back(std::make_unique<Injector>(
            id, cfg_, *topo_, *routing_, blk, root.fork()));
        injectors_.back()->setFailureSink(this);
        receivers_.push_back(std::make_unique<Receiver>(
            id, cfg_, blk, this));
        if (shards_ > 1) {
            injectors_.back()->setDeferStats(true);
            receivers_.back()->setDeferStats(true);
        }
    }

    // Pre-size the hot-path containers so the steady state never
    // allocates: each wave can hold one event per node on its
    // bandwidth-limited kinds (kill/abort traffic is rare and may
    // grow once, then keeps its capacity).
    for (Wave& w : buckets_) {
        w.flits.reserve(n);
        w.recvFlits.reserve(n);
        w.credits.reserve(n);
        w.injCredits.reserve(n);
        w.bkills.reserve(16);
        w.aborts.reserve(16);
    }
    injAwake_.assign(n, 0);
    rtrAwake_.assign(n, 0);
    rcvAwake_.assign(n, 0);
    injNextAt_.assign(n, kNeverCycle);
    rcvNextAt_.assign(n, kNeverCycle);
    {
        std::vector<std::pair<Cycle, NodeId>> heap_store;
        heap_store.reserve(n);
        injDeadlines_ =
            DeadlineHeap(std::greater<>{}, std::move(heap_store));
        std::vector<std::pair<Cycle, NodeId>> heap_store2;
        heap_store2.reserve(n);
        rcvDeadlines_ =
            DeadlineHeap(std::greater<>{}, std::move(heap_store2));
    }
    // Everything starts asleep: at cycle 0 every component is idle,
    // and generate()/sendMessage()/deliver() wake whoever gets work.

    if (shards_ > 1) {
        shardPool_ = std::make_unique<ThreadPool>(shards_);
        Telemetry& reg = Telemetry::instance();
        shardBarrierNanos_ =
            reg.counter("sched.shard_barrier_wait_nanos");
        shardTickGauges_.reserve(shards_);
        for (unsigned s = 0; s < shards_; ++s) {
            shardTickGauges_.push_back(reg.gauge(
                "sched.shard_ticks." + std::to_string(s)));
            ShardCtx& ctx = shardCtx_[s];
            const std::size_t range = ctx.end - ctx.begin;
            ctx.injWork.reserve(range);
            ctx.rtrWork.reserve(range);
            ctx.rcvWork.reserve(range);
            ctx.audit.kills.reserve(16);
        }
    }

    // The schedule fork happens last and only when configured, so
    // fault-free runs keep exactly the RNG streams they had before
    // dynamic faults existed.
    if (cfg_.hasDynamicFaults()) {
        dynamicFaults_ = true;
        schedule_ = std::make_unique<FaultSchedule>(
            FaultSchedule::fromConfig(cfg_, *topo_, root.fork()));
        for (NodeId id = 0; id < n; ++id)
            receivers_[id]->setDynamicFaults(true);
    }

#if CRNET_AUDIT_ENABLED
    audit_ = std::make_unique<Auditor>(cfg_, *topo_);
    for (NodeId id = 0; id < n; ++id) {
        routers_[id]->setAuditor(audit_.get());
        injectors_[id]->setAuditor(audit_.get());
        receivers_[id]->setAuditor(audit_.get());
    }
#endif

    // Observability sinks. All of these are null/off by default, so
    // an untraced run pays exactly one null-pointer branch per hook.
    const std::string trace_prefix = Tracer::resolvePrefix(cfg_);
    if (!trace_prefix.empty()) {
        trace_ =
            std::make_unique<Tracer>(trace_prefix, cfg_.watchSpec);
        for (NodeId id = 0; id < n; ++id) {
            routers_[id]->setTracer(trace_.get());
            injectors_[id]->setTracer(trace_.get());
            receivers_[id]->setTracer(trace_.get());
        }
        for (ShardCtx& ctx : shardCtx_) {
            ctx.injTrace.reserve(64);
            ctx.rtrTrace.reserve(64);
            ctx.rcvTrace.reserve(64);
        }
    }
    if (cfg_.sampleInterval > 0)
        timeseries_ = std::make_unique<TimeSeries>(cfg_.sampleInterval);
    if (cfg_.heatmapEnabled) {
        for (NodeId id = 0; id < n; ++id)
            routers_[id]->setHeatTracking(true);
    }
}

Network::~Network() = default;

Network::Wave&
Network::waveIn(Cycle delay)
{
    return buckets_[(now_ + delay) & bucketMask_];
}

void
Network::wakeInjector(NodeId id)
{
    if (injAwake_[id] == 0) {
        injAwake_[id] = 1;
        ++injAwakeN_;
    }
}

void
Network::wakeRouter(NodeId id)
{
    if (rtrAwake_[id] == 0) {
        rtrAwake_[id] = 1;
        ++rtrAwakeN_;
    }
}

void
Network::wakeReceiver(NodeId id)
{
    if (rcvAwake_[id] == 0) {
        rcvAwake_[id] = 1;
        ++rcvAwakeN_;
    }
}

void
Network::scheduleInjector(NodeId id, Cycle at)
{
    if (at == kNeverCycle)
        return;
    if (at <= now_ + 1) {
        wakeInjector(id);
        return;
    }
    if (at >= injNextAt_[id])
        return;  // An earlier-or-equal deadline is already queued.
    injNextAt_[id] = at;
    injDeadlines_.push({at, id});
}

void
Network::scheduleReceiver(NodeId id, Cycle at)
{
    if (at == kNeverCycle)
        return;
    if (at <= now_ + 1) {
        wakeReceiver(id);
        return;
    }
    if (at >= rcvNextAt_[id])
        return;
    rcvNextAt_[id] = at;
    rcvDeadlines_.push({at, id});
}

void
Network::popDueDeadlines()
{
    while (!injDeadlines_.empty() &&
           injDeadlines_.top().first <= now_) {
        const NodeId id = injDeadlines_.top().second;
        if (injNextAt_[id] == injDeadlines_.top().first)
            injNextAt_[id] = kNeverCycle;
        injDeadlines_.pop();
        wakeInjector(id);  // Stale entries = harmless no-op ticks.
    }
    while (!rcvDeadlines_.empty() &&
           rcvDeadlines_.top().first <= now_) {
        const NodeId id = rcvDeadlines_.top().second;
        if (rcvNextAt_[id] == rcvDeadlines_.top().first)
            rcvNextAt_[id] = kNeverCycle;
        rcvDeadlines_.pop();
        wakeReceiver(id);
    }
}

void
Network::deliver()
{
    const PortId net_ports = routers_[0]->networkPorts();
    Wave& cur = buckets_[now_ & bucketMask_];
    for (PendingFlit& p : cur.flits) {
        if (dynamicFaults_ && p.networkHop) {
            // A flit in flight on a channel that died under it is
            // gone — data counts as purged (conservation holds), a
            // kill token is absorbed (the death-time teardown already
            // re-issued a kill downstream of the break).
            const NodeId sender = topo_->neighbor(p.node, p.inPort);
            if (sender == kInvalidNode ||
                !faults_->linkOk(sender, oppositePort(p.inPort))) {
                if (p.flit.isData()) {
                    stats_.flitsLostOnDeadLinks.inc();
                    CRNET_AUDIT_HOOK(audit_.get(), onFlitsPurged(1));
                    if (trace_ != nullptr) {
                        trace_->record(TraceEventKind::LinkLoss,
                                       p.flit.msg, p.node, p.flit.src,
                                       p.flit.dst, p.flit.attempt,
                                       p.inPort);
                    }
                } else {
                    stats_.killsAbsorbedAtDeadLinks.inc();
                }
                continue;
            }
        }
        if (p.networkHop && p.flit.isData())
            faults_->maybeCorrupt(p.flit);
        routers_[p.node]->acceptFlit(p.inPort, p.vc, p.flit);
        wakeRouter(p.node);
    }
    for (const PendingRecvFlit& p : cur.recvFlits) {
        receivers_[p.node]->acceptFlit(p.ejChannel, p.vc, p.flit);
        wakeReceiver(p.node);
    }
    for (const PendingCredit& p : cur.credits) {
        if (dynamicFaults_ && p.outPort < net_ports &&
            !faults_->linkOk(p.node, p.outPort)) {
            stats_.controlAbsorbedAtDeadLinks.inc();
            continue;
        }
        routers_[p.node]->acceptCredit(p.outPort, p.vc);
        wakeRouter(p.node);
    }
    for (const PendingInjCredit& p : cur.injCredits) {
        injectors_[p.node]->acceptCredit(p.injChannel, p.vc);
        wakeInjector(p.node);
    }
    for (const PendingBkill& p : cur.bkills) {
        if (dynamicFaults_ && p.outPort < net_ports &&
            !faults_->linkOk(p.node, p.outPort)) {
            stats_.controlAbsorbedAtDeadLinks.inc();
            continue;
        }
        routers_[p.node]->acceptBkill(p.outPort, p.vc);
        wakeRouter(p.node);
    }
    for (const PendingAbort& p : cur.aborts) {
        injectors_[p.node]->acceptAbort(p.injChannel, p.vc, p.msg);
        wakeInjector(p.node);
    }
    cur.clear();
}

void
Network::teardownDirectedLink(NodeId u, PortId p)
{
    routers_[u]->onOutputLinkDead(p, now_);
    wakeRouter(u);
    const NodeId d = topo_->neighbor(u, p);
    if (d != kInvalidNode) {
        routers_[d]->onInputLinkDead(oppositePort(p), now_);
        wakeRouter(d);
    }
}

void
Network::repairDirectedLink(NodeId u, PortId p)
{
    faults_->reviveDirectedLink(u, p);
    routers_[u]->onOutputLinkRepaired(p, now_);
    wakeRouter(u);
}

void
Network::applyOneFaultEvent(const FaultEvent& ev)
{
    stats_.faultEventsApplied.inc();
    if (trace_ != nullptr) {
        trace_->record(TraceEventKind::Fault, kInvalidMsg, ev.node,
                       kInvalidNode, kInvalidNode,
                       static_cast<std::uint16_t>(ev.kind), ev.port);
    }
    switch (ev.kind) {
    case FaultEventKind::DirectedLinkDeath:
        if (faults_->linkOk(ev.node, ev.port)) {
            faults_->killDirectedLink(ev.node, ev.port);
            teardownDirectedLink(ev.node, ev.port);
        }
        break;
    case FaultEventKind::LinkDeath: {
        if (faults_->linkOk(ev.node, ev.port)) {
            faults_->killDirectedLink(ev.node, ev.port);
            teardownDirectedLink(ev.node, ev.port);
        }
        const NodeId nbr = topo_->neighbor(ev.node, ev.port);
        const PortId opp = oppositePort(ev.port);
        if (nbr != kInvalidNode && faults_->linkOk(nbr, opp)) {
            faults_->killDirectedLink(nbr, opp);
            teardownDirectedLink(nbr, opp);
        }
        break;
    }
    case FaultEventKind::RouterFailStop: {
        const PortId net_ports = routers_[ev.node]->networkPorts();
        for (PortId p = 0; p < net_ports; ++p) {
            const NodeId nbr = topo_->neighbor(ev.node, p);
            if (nbr == kInvalidNode)
                continue;
            if (faults_->linkOk(ev.node, p)) {
                faults_->killDirectedLink(ev.node, p);
                teardownDirectedLink(ev.node, p);
            }
            const PortId opp = oppositePort(p);
            if (faults_->linkOk(nbr, opp)) {
                faults_->killDirectedLink(nbr, opp);
                teardownDirectedLink(nbr, opp);
            }
        }
        break;
    }
    case FaultEventKind::LinkRepair: {
        if (!faults_->linkOk(ev.node, ev.port))
            repairDirectedLink(ev.node, ev.port);
        const NodeId nbr = topo_->neighbor(ev.node, ev.port);
        const PortId opp = oppositePort(ev.port);
        if (nbr != kInvalidNode && !faults_->linkOk(nbr, opp))
            repairDirectedLink(nbr, opp);
        break;
    }
    case FaultEventKind::BurstStart:
        faults_->setBurstRate(ev.rate);
        break;
    case FaultEventKind::BurstEnd:
        faults_->clearBurstRate();
        break;
    }
}

void
Network::applyFaultEvents()
{
    dueEvents_.clear();
    schedule_->collectDue(now_, dueEvents_);
    for (const FaultEvent& ev : dueEvents_)
        applyOneFaultEvent(ev);
}

void
Network::injectFaultEvent(const FaultEvent& ev)
{
    if (!dynamicFaults_) {
        dynamicFaults_ = true;
        schedule_ = std::make_unique<FaultSchedule>();
        for (auto& rcv : receivers_)
            rcv->setDynamicFaults(true);
    }
    applyOneFaultEvent(ev);
}

void
Network::generate()
{
    if (!trafficEnabled_)
        return;
    const NodeId n = topo_->numNodes();
    // Batched arrival scan: scanArrivals consumes exactly the same
    // per-node Bernoulli draws the old per-node drawArrival loop did,
    // so the RNG interleaving with makeFor below is unchanged — but
    // the (overwhelmingly common) no-arrival nodes stay inside one
    // tight loop over the generator stream.
    for (NodeId src = generator_->scanArrivals(0); src < n;
         src = generator_->scanArrivals(src + 1)) {
        if (injectors_[src]->queueFull()) {
            // Offered but not accepted; the pair sequence number is
            // not allocated, so receivers never see a phantom gap.
            stats_.sourceQueueDrops.inc();
            continue;
        }
        const PendingMessage msg =
            generator_->makeFor(src, now_, measuring_);
        injectors_[src]->enqueue(msg);
        wakeInjector(src);
        stats_.messagesGenerated.inc();
        if (ledger_ != nullptr)
            ledger_->onAccepted(msg);
        if (msg.measured) {
            stats_.messagesMeasured.inc();
            ++measuredCreated_;
        }
    }
}

void
Network::collectInjector(NodeId n)
{
    Injector& inj = *injectors_[n];
    for (const InjectedFlit& f : inj.sent) {
        waveIn(1).flits.push_back(PendingFlit{
            n,
            static_cast<PortId>(routers_[n]->injBase() + f.injChannel),
            f.vc, f.flit, false});
    }
}

void
Network::collectRouter(NodeId n)
{
    Router& r = *routers_[n];
    const PortId net_ports = r.networkPorts();

    for (const SentFlit& s : r.sentFlits) {
        if (s.outPort < net_ports) {
            const NodeId nbr = topo_->neighbor(n, s.outPort);
            if (nbr == kInvalidNode)
                panic("router ", n, " sent a flit off the network via "
                      "port ", s.outPort);
            waveIn(cfg_.channelLatency).flits.push_back(PendingFlit{
                nbr, oppositePort(s.outPort), s.vc, s.flit, true});
        } else {
            waveIn(1).recvFlits.push_back(PendingRecvFlit{
                n, static_cast<std::uint32_t>(s.outPort - r.ejBase()),
                s.vc, s.flit});
        }
    }

    for (const SentCredit& c : r.sentCredits) {
        if (c.inPort < net_ports) {
            const NodeId upstream = topo_->neighbor(n, c.inPort);
            if (upstream == kInvalidNode)
                panic("credit to a nonexistent upstream at node ", n);
            waveIn(cfg_.channelLatency).credits.push_back(
                PendingCredit{upstream, oppositePort(c.inPort),
                              c.vc});
        } else {
            waveIn(1).injCredits.push_back(PendingInjCredit{
                n, static_cast<std::uint32_t>(c.inPort - r.injBase()),
                c.vc});
        }
    }

    for (const SentBkill& b : r.sentBkills) {
        if (b.inPort >= net_ports)
            panic("backward kill to an injection port must be an "
                  "abort");
        const NodeId upstream = topo_->neighbor(n, b.inPort);
        if (upstream == kInvalidNode)
            panic("backward kill to a nonexistent upstream at node ",
                  n);
        waveIn(cfg_.channelLatency).bkills.push_back(PendingBkill{
            upstream, oppositePort(b.inPort), b.vc});
    }

    for (const SentAbort& a : r.sentAborts)
        waveIn(1).aborts.push_back(PendingAbort{n, a.injChannel, a.vc,
                                                a.msg});
}

void
Network::collectReceiver(NodeId n)
{
    Receiver& rcv = *receivers_[n];
    for (const ReceiverCredit& c : rcv.credits) {
        waveIn(1).credits.push_back(PendingCredit{
            n, static_cast<PortId>(routers_[n]->ejBase() + c.ejChannel),
            c.vc});
    }
    // Starvation-timeout bkills tear the stranded ejection
    // reservation down toward the source.
    for (const ReceiverCredit& b : rcv.bkills) {
        waveIn(1).bkills.push_back(PendingBkill{
            n, static_cast<PortId>(routers_[n]->ejBase() + b.ejChannel),
            b.vc});
    }
}

std::uint64_t
Network::activityLevel() const
{
    return stats_.router.flitsForwarded.value() +
           stats_.router.killsForwarded.value() +
           stats_.router.bkillHops.value() +
           stats_.router.flitsPurged.value() +
           stats_.flitsInjected.value() +
           stats_.flitsConsumed.value();
}

void
Network::sweepAll()
{
    const NodeId n = topo_->numNodes();
    std::uint64_t pt = profTimed_ ? TickProfiler::stamp() : 0;
    for (NodeId id = 0; id < n; ++id) {
        injectors_[id]->tick(now_);
        collectInjector(id);
    }
    if (profTimed_) {
        const std::uint64_t t = TickProfiler::stamp();
        prof_->add(TickPhase::Injectors, t - pt);
        pt = t;
    }
    for (NodeId id = 0; id < n; ++id) {
        routers_[id]->tick(now_);
        collectRouter(id);
    }
    if (profTimed_) {
        const std::uint64_t t = TickProfiler::stamp();
        prof_->add(TickPhase::Routers, t - pt);
        pt = t;
    }
    for (NodeId id = 0; id < n; ++id) {
        receivers_[id]->tick(now_);
        collectReceiver(id);
    }
    if (profTimed_)
        prof_->add(TickPhase::Receivers, TickProfiler::stamp() - pt);
}

void
Network::sweepActive()
{
    // A component's flag is cleared before its tick; the only wake a
    // tick can raise is its own re-registration (all cross-component
    // wakes happen at delivery time, next cycle), so clearing in
    // place is safe and the node-order scan matches the exhaustive
    // sweep's tick order exactly. Sleeping components contribute
    // nothing in either mode — ticking an idle component is a no-op.
    const NodeId n = topo_->numNodes();
    std::uint64_t pt = profTimed_ ? TickProfiler::stamp() : 0;
    for (NodeId id = 0; id < n; ++id) {
        if (injAwake_[id] == 0)
            continue;
        injAwake_[id] = 0;
        --injAwakeN_;
        injectors_[id]->tick(now_);
        collectInjector(id);
        scheduleInjector(id, injectors_[id]->nextEventCycle(now_));
    }
    if (profTimed_) {
        const std::uint64_t t = TickProfiler::stamp();
        prof_->add(TickPhase::Injectors, t - pt);
        pt = t;
    }
    for (NodeId id = 0; id < n; ++id) {
        if (rtrAwake_[id] == 0)
            continue;
        routers_[id]->tick(now_);
        collectRouter(id);
        // Routers have no future-only deadlines: any held flit,
        // allocation or pending kill needs the very next tick, so a
        // ticked router is assumed still busy. Probing idle() every
        // cycle would re-scan every input VC and cost more than the
        // skipped ticks save; instead busy routers are only probed
        // for sleep on coarse boundaries (over-waking is harmless —
        // a router lingers awake for at most kIdleProbePeriod - 1
        // no-op ticks after its last flit leaves, and the event
        // scheduler's tryEnterQuiet() probes lingerers immediately
        // once the rest of the network sleeps).
        if ((now_ & (kIdleProbePeriod - 1)) == 0 &&
            routers_[id]->idle()) {
            rtrAwake_[id] = 0;
            --rtrAwakeN_;
        }
    }
    if (profTimed_) {
        const std::uint64_t t = TickProfiler::stamp();
        prof_->add(TickPhase::Routers, t - pt);
        pt = t;
    }
    for (NodeId id = 0; id < n; ++id) {
        if (rcvAwake_[id] == 0)
            continue;
        rcvAwake_[id] = 0;
        --rcvAwakeN_;
        receivers_[id]->tick(now_);
        collectReceiver(id);
        scheduleReceiver(id, receivers_[id]->nextEventCycle(now_));
    }
    if (profTimed_)
        prof_->add(TickPhase::Receivers, TickProfiler::stamp() - pt);
}

// --- Sharded sweeps ----------------------------------------------------
//
// Determinism argument (docs/PERFORMANCE.md has the long form): the
// parallel phase runs only component ticks, whose cross-component
// effects are all staged — wave pushes through per-component outboxes
// (collected serially afterwards), sink/ledger callbacks and Welford
// accumulator adds through the deferred-stats outboxes, trace records
// through per-shard staging buffers, audit conservation deltas through
// per-thread stages. Counters are commutative and land in per-shard
// blocks. Every order-sensitive replay below iterates shard-major over
// contiguous ascending ranges, i.e. in global node order — exactly the
// serial sweep's order — so stats, traces, wave contents, heap layouts
// and snapshots are byte-identical to shards=1.

void
Network::shardWorker(unsigned s, bool from_work_lists)
{
    ShardCtx& ctx = shardCtx_[s];
    Auditor::setThreadStage(&ctx.audit);
    const bool tracing = trace_ != nullptr;
    if (tracing)
        Tracer::setThreadStage(&ctx.injTrace);
    std::uint64_t ticked = 0;
    if (from_work_lists) {
        for (const NodeId id : ctx.injWork)
            injectors_[id]->tick(now_);
        if (tracing)
            Tracer::setThreadStage(&ctx.rtrTrace);
        for (const NodeId id : ctx.rtrWork)
            routers_[id]->tick(now_);
        if (tracing)
            Tracer::setThreadStage(&ctx.rcvTrace);
        for (const NodeId id : ctx.rcvWork)
            receivers_[id]->tick(now_);
        ticked = ctx.injWork.size() + ctx.rtrWork.size() +
                 ctx.rcvWork.size();
    } else {
        for (NodeId id = ctx.begin; id < ctx.end; ++id)
            injectors_[id]->tick(now_);
        if (tracing)
            Tracer::setThreadStage(&ctx.rtrTrace);
        for (NodeId id = ctx.begin; id < ctx.end; ++id)
            routers_[id]->tick(now_);
        if (tracing)
            Tracer::setThreadStage(&ctx.rcvTrace);
        for (NodeId id = ctx.begin; id < ctx.end; ++id)
            receivers_[id]->tick(now_);
        ticked = static_cast<std::uint64_t>(ctx.end - ctx.begin) * 3;
    }
    ctx.ticks += ticked;
    if (tracing)
        Tracer::setThreadStage(nullptr);
    Auditor::setThreadStage(nullptr);
}

void
Network::runShardBarrier(bool from_work_lists)
{
    for (unsigned s = 0; s < shards_; ++s) {
        shardPool_->submit([this, s, from_work_lists] {
            shardWorker(s, from_work_lists);
        });
    }
    const std::uint64_t w0 = WallTimer::nanos();
    shardPool_->wait();
    shardBarrierNanos_->fetch_add(WallTimer::nanos() - w0,
                                  std::memory_order_relaxed);
    // The barrier provides the happens-before for reading the
    // workers' tick totals.
    for (unsigned s = 0; s < shards_; ++s) {
        shardTickGauges_[s]->store(shardCtx_[s].ticks,
                                   std::memory_order_relaxed);
    }
}

void
Network::drainShardSidecars()
{
#if CRNET_AUDIT_ENABLED
    if (audit_ != nullptr) {
        // Conservation counters and the kill-token set are order-
        // insensitive (issuedKills_ serializes sorted).
        for (ShardCtx& ctx : shardCtx_)
            audit_->foldStage(ctx.audit);
    }
#endif
    if (trace_ == nullptr)
        return;
    // Phase-major, shard-minor = the serial recording order. The
    // replay re-enters record() with no stage installed, so the watch
    // filter (whose pair-adoption mutates watchedMsgs_) runs in
    // deterministic order; Tracer::now_ is constant through the cycle,
    // so the re-recorded timestamps match the staged ones.
    const auto replay = [this](std::vector<TraceEvent>& staged) {
        for (const TraceEvent& e : staged)
            trace_->record(e.kind, e.msg, e.node, e.src, e.dst,
                           e.attempt, e.arg);
        staged.clear();
    };
    for (ShardCtx& ctx : shardCtx_)
        replay(ctx.injTrace);
    for (ShardCtx& ctx : shardCtx_)
        replay(ctx.rtrTrace);
    for (ShardCtx& ctx : shardCtx_)
        replay(ctx.rcvTrace);
}

void
Network::foldShardCounters()
{
    for (auto& blk : shardStats_)
        foldCounters(stats_, *blk);
}

void
Network::drainInjectorOutboxes(Injector& inj)
{
    // Within one injector tick every give-up precedes every commit
    // (retry/timeout processing runs before injectFlits), so draining
    // the failure outbox first reproduces the serial callback order.
    for (const FailedMessage& f : inj.failed)
        onMessageFailed(f.msg, f.at);
    for (const CommittedSample& c : inj.committedStats) {
        stats_.attempts.add(c.attempts);
        stats_.padOverhead.add(c.padFrac);
    }
}

void
Network::drainReceiverOutboxes(Receiver& rcv)
{
    for (const DeliveredMessage& d : rcv.deliveries) {
        // Exactly commitDelivery()'s direct-mode tail, per delivery:
        // accumulator adds, then the sink callback.
        if (d.measured) {
            const auto total =
                static_cast<double>(d.deliveredAt - d.createdAt);
            stats_.totalLatency.add(total);
            stats_.latencyHist.add(total);
            stats_.netLatency.add(static_cast<double>(
                d.deliveredAt - d.headInjectedAt));
        }
        onDelivered(d);
    }
}

void
Network::sweepAllSharded()
{
    std::uint64_t pt = profTimed_ ? TickProfiler::stamp() : 0;
    runShardBarrier(false);
    drainShardSidecars();
    if (profTimed_) {
        // The fused parallel section (plus sidecar replay) is
        // attributed to the router phase; the serial per-phase
        // finish loops time themselves below.
        const std::uint64_t t = TickProfiler::stamp();
        prof_->add(TickPhase::Routers, t - pt);
        pt = t;
    }
    const NodeId n = topo_->numNodes();
    for (NodeId id = 0; id < n; ++id) {
        drainInjectorOutboxes(*injectors_[id]);
        collectInjector(id);
    }
    if (profTimed_) {
        const std::uint64_t t = TickProfiler::stamp();
        prof_->add(TickPhase::Injectors, t - pt);
        pt = t;
    }
    for (NodeId id = 0; id < n; ++id)
        collectRouter(id);
    if (profTimed_) {
        const std::uint64_t t = TickProfiler::stamp();
        prof_->add(TickPhase::Routers, t - pt);
        pt = t;
    }
    for (NodeId id = 0; id < n; ++id) {
        drainReceiverOutboxes(*receivers_[id]);
        collectReceiver(id);
    }
    foldShardCounters();
    if (profTimed_)
        prof_->add(TickPhase::Receivers, TickProfiler::stamp() - pt);
}

void
Network::sweepActiveSharded()
{
    std::uint64_t pt = profTimed_ ? TickProfiler::stamp() : 0;
    // Serial flag scan, node order: exactly sweepActive()'s clearing
    // discipline — injector/receiver flags cleared up front (a tick's
    // only wake is its own re-registration, applied in the finish
    // loops below), router flags left set until the idle probe.
    const NodeId n = topo_->numNodes();
    unsigned s = 0;
    for (ShardCtx& ctx : shardCtx_) {
        ctx.injWork.clear();
        ctx.rtrWork.clear();
        ctx.rcvWork.clear();
    }
    for (NodeId id = 0; id < n; ++id) {
        while (id >= shardCtx_[s].end)
            ++s;
        ShardCtx& ctx = shardCtx_[s];
        if (injAwake_[id] != 0) {
            injAwake_[id] = 0;
            --injAwakeN_;
            ctx.injWork.push_back(id);
        }
        if (rtrAwake_[id] != 0)
            ctx.rtrWork.push_back(id);
        if (rcvAwake_[id] != 0) {
            rcvAwake_[id] = 0;
            --rcvAwakeN_;
            ctx.rcvWork.push_back(id);
        }
    }
    runShardBarrier(true);
    drainShardSidecars();
    if (profTimed_) {
        const std::uint64_t t = TickProfiler::stamp();
        prof_->add(TickPhase::Routers, t - pt);
        pt = t;
    }
    for (const ShardCtx& ctx : shardCtx_) {
        for (const NodeId id : ctx.injWork) {
            drainInjectorOutboxes(*injectors_[id]);
            collectInjector(id);
            scheduleInjector(id, injectors_[id]->nextEventCycle(now_));
        }
    }
    if (profTimed_) {
        const std::uint64_t t = TickProfiler::stamp();
        prof_->add(TickPhase::Injectors, t - pt);
        pt = t;
    }
    const bool probe = (now_ & (kIdleProbePeriod - 1)) == 0;
    for (const ShardCtx& ctx : shardCtx_) {
        for (const NodeId id : ctx.rtrWork) {
            collectRouter(id);
            if (probe && routers_[id]->idle()) {
                rtrAwake_[id] = 0;
                --rtrAwakeN_;
            }
        }
    }
    if (profTimed_) {
        const std::uint64_t t = TickProfiler::stamp();
        prof_->add(TickPhase::Routers, t - pt);
        pt = t;
    }
    for (const ShardCtx& ctx : shardCtx_) {
        for (const NodeId id : ctx.rcvWork) {
            drainReceiverOutboxes(*receivers_[id]);
            collectReceiver(id);
            scheduleReceiver(id, receivers_[id]->nextEventCycle(now_));
        }
    }
    foldShardCounters();
    if (profTimed_)
        prof_->add(TickPhase::Receivers, TickProfiler::stamp() - pt);
}

void
Network::tick()
{
    // Self-profiler: one tick in every stride is clock-stamped
    // phase-by-phase (profTimed_); audit and sampling work is rare
    // enough to be timed exactly. Everything here is observability
    // only — stamps never feed back into simulation state.
    profTimed_ = prof_ != nullptr && prof_->armTick();
    std::uint64_t pt = profTimed_ ? TickProfiler::stamp() : 0;

    CRNET_AUDIT_HOOK(audit_.get(), beginCycle(now_));
    if (trace_ != nullptr)
        trace_->beginCycle(now_);
    if (dynamicFaults_ && schedule_ != nullptr)
        applyFaultEvents();
    if (activeSched_)
        popDueDeadlines();
    deliver();
    if (profTimed_) {
        // Cycle-open bookkeeping (faults, deadlines, trace) rides
        // with the delivery phase.
        const std::uint64_t t = TickProfiler::stamp();
        prof_->add(TickPhase::Deliver, t - pt);
        pt = t;
    }
    generate();
    if (profTimed_) {
        const std::uint64_t t = TickProfiler::stamp();
        prof_->add(TickPhase::Generate, t - pt);
        pt = t;
    }

    if (activeSched_)
        shards_ > 1 ? sweepActiveSharded() : sweepActive();
    else
        shards_ > 1 ? sweepAllSharded() : sweepAll();

    const std::uint64_t level = activityLevel();
    if (level != lastActivityLevel_) {
        lastActivityLevel_ = level;
        lastActivity_ = now_;
    }
    if (dynamicFaults_ && !forensicsDumped_ && deadlocked()) {
        forensicsDumped_ = true;
        reportDeadlockForensics();
    }
#if CRNET_AUDIT_ENABLED
    if (audit_ != nullptr && now_ % cfg_.auditInterval == 0) {
        const std::uint64_t a0 =
            prof_ != nullptr ? TickProfiler::stamp() : 0;
        runAuditSweep();
        if (prof_ != nullptr)
            prof_->add(TickPhase::Audit, TickProfiler::stamp() - a0);
    }
#endif
    if (timeseries_ != nullptr &&
        (now_ + 1) % timeseries_->interval() == 0) {
        const std::uint64_t s0 =
            prof_ != nullptr ? TickProfiler::stamp() : 0;
        takeSample();
        if (prof_ != nullptr)
            prof_->add(TickPhase::Sample, TickProfiler::stamp() - s0);
    }
    if (profTimed_)
        sampleTelemetryGauges();
    ++now_;
}

void
Network::reportDeadlockForensics()
{
    std::ostringstream os;
    dumpForensics(os);
    warn("deadlock watchdog fired under dynamic faults\n", os.str());
}

void
Network::sampleGauges(std::uint64_t& in_flight,
                      std::uint64_t& buffered) const
{
    const NodeId n = topo_->numNodes();
    if (activeSched_) {
        // Post-sweep, the wake flags mark every component re-armed
        // for the next cycle — which covers every nonzero gauge: a
        // sleeping injector has no active worm, and sleeping
        // routers/receivers buffer nothing (buffered flits always
        // demand the next tick).
        for (NodeId id = 0; id < n; ++id) {
            if (injAwake_[id] != 0)
                in_flight += injectors_[id]->activeWorms();
            if (rtrAwake_[id] != 0)
                buffered += routers_[id]->bufferedFlits();
            if (rcvAwake_[id] != 0)
                buffered += receivers_[id]->bufferedFlits();
        }
    } else {
        for (NodeId id = 0; id < n; ++id) {
            in_flight += injectors_[id]->activeWorms();
            buffered += routers_[id]->bufferedFlits();
            buffered += receivers_[id]->bufferedFlits();
        }
    }
}

void
Network::takeSample()
{
    std::uint64_t in_flight = 0;
    std::uint64_t buffered = 0;
    sampleGauges(in_flight, buffered);
    timeseries_->sample(now_ + 1, stats_, in_flight, buffered);
}

std::vector<TimeSeriesSample>
Network::timeseriesSamples() const
{
    if (timeseries_ == nullptr)
        return {};
    std::vector<TimeSeriesSample> out = timeseries_->samples();
    // A run that stops mid-interval still reports its tail cycles:
    // flush a final partial sample covering everything since the last
    // boundary. peekTail leaves the differencing baselines untouched,
    // so a run that later continues (e.g. after a snapshot restore)
    // samples exactly as if no one had peeked.
    const Cycle last = out.empty() ? 0 : out.back().at;
    if (now_ > last) {
        std::uint64_t in_flight = 0;
        std::uint64_t buffered = 0;
        sampleGauges(in_flight, buffered);
        out.push_back(
            timeseries_->peekTail(now_, stats_, in_flight, buffered));
    }
    return out;
}

std::shared_ptr<const HeatmapData>
Network::collectHeatmap() const
{
    if (!cfg_.heatmapEnabled)
        return nullptr;
    auto hm = std::make_shared<HeatmapData>();
    const NodeId n = topo_->numNodes();
    const PortId net_ports = routers_[0]->networkPorts();
    hm->radixK = cfg_.radixK;
    hm->dims = cfg_.dimensionsN;
    hm->netPorts = net_ports;
    hm->cycles = now_;
    hm->occupancyIntegral.resize(n);
    hm->blockedCycles.assign(
        static_cast<std::size_t>(n) * net_ports, 0);
    hm->forwarded.assign(static_cast<std::size_t>(n) * net_ports, 0);
    for (NodeId id = 0; id < n; ++id) {
        const Router& r = *routers_[id];
        hm->occupancyIntegral[id] = r.heatOccupancyIntegral();
        for (PortId p = 0; p < net_ports; ++p) {
            const std::size_t at =
                static_cast<std::size_t>(id) * net_ports + p;
            hm->forwarded[at] = r.heatForwarded(p);
            hm->blockedCycles[at] = r.heatBlocked(p);
        }
    }
    return hm;
}

void
Network::runAuditSweep()
{
    AuditSnapshot snap;
    snap.now = now_;
    const NodeId n = topo_->numNodes();
    const PortId net_ports = routers_[0]->networkPorts();
    const std::uint32_t vcs = cfg_.numVcs;

    // Edge table at fixed indices — network edges (keyed by their
    // downstream input port), then injection, then ejection — so the
    // wave scan below can address edges directly.
    const std::size_t net_edges =
        static_cast<std::size_t>(n) * net_ports * vcs;
    const std::size_t inj_edges =
        static_cast<std::size_t>(n) * cfg_.injectionChannels * vcs;
    const std::size_t ej_edges =
        static_cast<std::size_t>(n) * cfg_.ejectionChannels * vcs;
    snap.edges.resize(net_edges + inj_edges + ej_edges);

    const auto net_idx = [&](NodeId node, PortId in_port, VcId vc) {
        return (static_cast<std::size_t>(node) * net_ports + in_port) *
                   vcs +
               vc;
    };
    const auto inj_idx = [&](NodeId node, std::uint32_t ch, VcId vc) {
        return net_edges +
               (static_cast<std::size_t>(node) *
                    cfg_.injectionChannels +
                ch) * vcs +
               vc;
    };
    const auto ej_idx = [&](NodeId node, std::uint32_t ch, VcId vc) {
        return net_edges + inj_edges +
               (static_cast<std::size_t>(node) *
                    cfg_.ejectionChannels +
                ch) * vcs +
               vc;
    };

    for (NodeId id = 0; id < n; ++id) {
        const Router& r = *routers_[id];
        snap.bufferedFlits += r.bufferedFlits();
        snap.bufferedFlits += receivers_[id]->bufferedFlits();

        for (PortId p = 0; p < net_ports; ++p) {
            const NodeId up = topo_->neighbor(id, p);
            for (VcId v = 0; v < vcs; ++v) {
                AuditEdge& e = snap.edges[net_idx(id, p, v)];
                e.kind = AuditEdgeKind::Network;
                e.node = id;
                e.port = p;
                e.vc = v;
                if (up == kInvalidNode) {
                    e.skip = true;  // Mesh boundary: no channel here.
                    continue;
                }
                if (dynamicFaults_ &&
                    !faults_->linkOk(up, oppositePort(p))) {
                    e.skip = true;  // Dead wire: ledger mid-teardown.
                    continue;
                }
                const Router::OutputProbe o =
                    routers_[up]->outputProbe(oppositePort(p), v);
                e.credits = o.credits;
                e.occupancy = r.inputOccupancy(p, v);
                e.skip = o.quarantineUntil > now_ ||
                         r.inputKillPending(p, v);
            }
        }
        for (std::uint32_t ch = 0; ch < cfg_.injectionChannels;
             ++ch) {
            const PortId p = static_cast<PortId>(r.injBase() + ch);
            for (VcId v = 0; v < vcs; ++v) {
                AuditEdge& e = snap.edges[inj_idx(id, ch, v)];
                e.kind = AuditEdgeKind::Injection;
                e.node = id;
                e.port = ch;
                e.vc = v;
                e.credits = injectors_[id]->slotCredits(ch, v);
                e.occupancy = r.inputOccupancy(p, v);
                e.skip = injectors_[id]->slotInCooldown(ch, v) ||
                         r.inputKillPending(p, v);
            }
        }
        for (std::uint32_t ch = 0; ch < cfg_.ejectionChannels; ++ch) {
            const PortId p = static_cast<PortId>(r.ejBase() + ch);
            for (VcId v = 0; v < vcs; ++v) {
                AuditEdge& e = snap.edges[ej_idx(id, ch, v)];
                e.kind = AuditEdgeKind::Ejection;
                e.node = id;
                e.port = ch;
                e.vc = v;
                const Router::OutputProbe o = r.outputProbe(p, v);
                e.credits = o.credits;
                e.occupancy = receivers_[id]->occupancy(ch, v);
                e.skip = o.quarantineUntil > now_;
            }
        }
    }

    // In-flight events still sitting in the delivery waves. Kill
    // tokens ride the control wires and consume no credits, so only
    // data flits count toward the ledgers.
    for (const Wave& w : buckets_) {
        for (const PendingFlit& p : w.flits) {
            if (!p.flit.isData())
                continue;
            ++snap.inFlightFlits;
            if (p.inPort < net_ports) {
                ++snap.edges[net_idx(p.node, p.inPort, p.vc)]
                      .inFlightFlits;
            } else {
                ++snap.edges[inj_idx(p.node,
                                     static_cast<std::uint32_t>(
                                         p.inPort - net_ports),
                                     p.vc)]
                      .inFlightFlits;
            }
        }
        for (const PendingRecvFlit& p : w.recvFlits) {
            if (!p.flit.isData())
                continue;
            ++snap.inFlightFlits;
            ++snap.edges[ej_idx(p.node, p.ejChannel, p.vc)]
                  .inFlightFlits;
        }
        for (const PendingCredit& c : w.credits) {
            if (c.outPort < net_ports) {
                const NodeId down = topo_->neighbor(c.node, c.outPort);
                if (down != kInvalidNode) {
                    ++snap.edges[net_idx(down,
                                         oppositePort(c.outPort),
                                         c.vc)]
                          .inFlightCredits;
                }
            } else {
                ++snap.edges[ej_idx(c.node,
                                    static_cast<std::uint32_t>(
                                        c.outPort - net_ports),
                                    c.vc)]
                      .inFlightCredits;
            }
        }
        for (const PendingInjCredit& c : w.injCredits)
            ++snap.edges[inj_idx(c.node, c.injChannel, c.vc)]
                  .inFlightCredits;
        // A kill/abort still in flight means its edge's ledger is
        // legitimately mid-teardown; skip those this sweep.
        for (const PendingBkill& b : w.bkills) {
            const NodeId down = topo_->neighbor(b.node, b.outPort);
            if (down != kInvalidNode) {
                snap.edges[net_idx(down, oppositePort(b.outPort),
                                   b.vc)]
                    .skip = true;
            }
        }
        for (const PendingAbort& a : w.aborts)
            snap.edges[inj_idx(a.node, a.injChannel, a.vc)].skip =
                true;
    }

    audit_->sweep(snap);
}

void
Network::run(Cycle n)
{
    if (!eventSched_) {
        for (Cycle i = 0; i < n; ++i)
            tick();
        return;
    }
    const Cycle end = now_ + n;
    while (now_ < end) {
        if (tryEnterQuiet())
            runQuietSpan(end);
        else
            tick();
    }
}

bool
Network::tryEnterQuiet()
{
    // Cheapest checks first: the counters and heap tops are O(1) and
    // reject almost every busy cycle before the O(n) router probe.
    if (injAwakeN_ != 0 || rcvAwakeN_ != 0)
        return false;
    // A deadline or fault event due this very cycle belongs to
    // tick(), not to a span.
    if (!injDeadlines_.empty() && injDeadlines_.top().first <= now_)
        return false;
    if (!rcvDeadlines_.empty() && rcvDeadlines_.top().first <= now_)
        return false;
    if (dynamicFaults_ && schedule_ != nullptr &&
        schedule_->nextEventCycle() <= now_)
        return false;
    // In-flight events still maturing in the wave rings demand their
    // delivery cycles.
    for (const Wave& w : buckets_)
        if (!w.empty())
            return false;
    if (rtrAwakeN_ != 0) {
        // Only routers linger. sweepActive() probes them with idle()
        // on coarse boundaries to bound its per-cycle cost; here the
        // rest of the network is already asleep, so probe right away
        // — clearing an idle router elides the same no-op ticks, just
        // without waiting out the probe period.
        const NodeId n = topo_->numNodes();
        for (NodeId id = 0; id < n && rtrAwakeN_ != 0; ++id) {
            if (rtrAwake_[id] != 0 && routers_[id]->idle()) {
                rtrAwake_[id] = 0;
                --rtrAwakeN_;
            }
        }
        if (rtrAwakeN_ != 0)
            return false;
    }
    return true;
}

void
Network::runQuietSpan(Cycle end)
{
    // Earliest cycle at which anything can happen again: a sleeping
    // component's deadline, a scheduled fault event, or the deadlock
    // watchdog's crossing cycle. State is frozen across the span, so
    // everything below fires at exactly the cycle the per-cycle
    // schedulers would reach it.
    Cycle limit = end;
    if (!injDeadlines_.empty())
        limit = std::min(limit, injDeadlines_.top().first);
    if (!rcvDeadlines_.empty())
        limit = std::min(limit, rcvDeadlines_.top().first);
    if (dynamicFaults_ && schedule_ != nullptr)
        limit = std::min(limit, schedule_->nextEventCycle());
    if (dynamicFaults_ && !forensicsDumped_ && !quiescent()) {
        // The watchdog trips on the first cycle with
        // now_ - lastActivity_ > deadlockThreshold; the one-shot
        // forensics dump must run under that same now_.
        limit = std::min(limit,
                         lastActivity_ + cfg_.deadlockThreshold + 1);
    }
    if (limit <= now_) {
        tick();
        return;
    }

    // Quiet spans are timed whole (batched draws + boundary walk) and
    // attributed to the profiler's quiet phase; the trailing tick()
    // times itself.
    const std::uint64_t q0 =
        prof_ != nullptr ? TickProfiler::stamp() : 0;

    // Arrival-free prefix of [now_, limit): the generator consumes
    // exactly the per-cycle draw stream for the quiet cycles and
    // rewinds to the start of the first cycle with an arrival, so the
    // tick() below redraws that cycle bit-identically.
    const Cycle quiet = trafficEnabled_
        ? generator_->quietCycles(limit - now_)
        : limit - now_;
    quietCyclesSkipped_ += quiet;

    // Walk the skipped cycles boundary to boundary: audit sweeps and
    // time-series samples observe frozen state but must still land on
    // their exact cycles so the audits, samples and any snapshot
    // taken later stay byte-identical to per-cycle execution.
    const Cycle span_end = now_ + quiet;
    while (now_ < span_end) {
        Cycle boundary = span_end;
#if CRNET_AUDIT_ENABLED
        if (audit_ != nullptr) {
            const Cycle next_audit =
                now_ +
                (cfg_.auditInterval - now_ % cfg_.auditInterval) %
                    cfg_.auditInterval;
            boundary = std::min(boundary, next_audit);
        }
#endif
        if (timeseries_ != nullptr) {
            const Cycle ts = timeseries_->interval();
            boundary = std::min(boundary, now_ + (ts - 1 - now_ % ts));
        }
        if (boundary >= span_end) {
            now_ = span_end;
            break;
        }
        now_ = boundary;
        CRNET_AUDIT_HOOK(audit_.get(), beginCycle(now_));
        if (trace_ != nullptr)
            trace_->beginCycle(now_);
#if CRNET_AUDIT_ENABLED
        if (audit_ != nullptr && now_ % cfg_.auditInterval == 0)
            runAuditSweep();
#endif
        if (timeseries_ != nullptr &&
            (now_ + 1) % timeseries_->interval() == 0) {
            takeSample();
        }
        ++now_;
    }

    if (prof_ != nullptr)
        prof_->noteQuietSpan(quiet, TickProfiler::stamp() - q0);

    if (now_ < limit)
        tick();  // First cycle with an arrival.
}

void
Network::attachProfiler(TickProfiler* prof)
{
    prof_ = prof;
    profTimed_ = false;
    if (prof == nullptr) {
        gaugeInjAwake_ = gaugeRtrAwake_ = gaugeRcvAwake_ = nullptr;
        gaugeWaveOcc_ = gaugeQuietSkipped_ = gaugeRngMessages_ =
            nullptr;
        histInjHeap_ = histRcvHeap_ = nullptr;
        return;
    }
    Telemetry& reg = Telemetry::instance();
    gaugeInjAwake_ = reg.gauge("sched.injectors_awake");
    gaugeRtrAwake_ = reg.gauge("sched.routers_awake");
    gaugeRcvAwake_ = reg.gauge("sched.receivers_awake");
    gaugeWaveOcc_ = reg.gauge("sched.wave_ring_occupancy");
    gaugeQuietSkipped_ = reg.gauge("sched.quiet_cycles_skipped");
    gaugeRngMessages_ = reg.gauge("rng.messages_generated");
    histInjHeap_ = reg.histogram("sched.injector_heap_size");
    histRcvHeap_ = reg.histogram("sched.receiver_heap_size");
}

void
Network::sampleTelemetryGauges()
{
    gaugeInjAwake_->store(injAwakeN_, std::memory_order_relaxed);
    gaugeRtrAwake_->store(rtrAwakeN_, std::memory_order_relaxed);
    gaugeRcvAwake_->store(rcvAwakeN_, std::memory_order_relaxed);
    std::uint64_t occ = 0;
    for (const Wave& w : buckets_) {
        occ += w.flits.size() + w.recvFlits.size() + w.credits.size() +
               w.injCredits.size() + w.bkills.size() + w.aborts.size();
    }
    gaugeWaveOcc_->store(occ, std::memory_order_relaxed);
    gaugeQuietSkipped_->store(quietCyclesSkipped_,
                              std::memory_order_relaxed);
    gaugeRngMessages_->store(generator_->generatedCount(),
                             std::memory_order_relaxed);
    histInjHeap_->observe(injDeadlines_.size());
    histRcvHeap_->observe(rcvDeadlines_.size());
}

MsgId
Network::sendMessage(NodeId src, NodeId dst, std::uint32_t payload_len,
                     bool measured)
{
    if (src >= topo_->numNodes() || dst >= topo_->numNodes())
        fatal("sendMessage: node out of range");
    if (injectors_[src]->queueFull())
        return kInvalidMsg;  // Before a pair sequence is allocated.
    PendingMessage m = generator_->makeMessage(src, dst, payload_len,
                                               now_, measured);
    injectors_[src]->enqueue(m);
    wakeInjector(src);
    stats_.messagesGenerated.inc();
    if (ledger_ != nullptr)
        ledger_->onAccepted(m);
    if (measured) {
        stats_.messagesMeasured.inc();
        ++measuredCreated_;
    }
    manualPending_[m.id] = true;
    return m.id;
}

bool
Network::isDelivered(MsgId id) const
{
    return manualDelivered_.count(id) != 0;
}

const DeliveredMessage*
Network::deliveryRecord(MsgId id) const
{
    auto it = manualDelivered_.find(id);
    return it == manualDelivered_.end() ? nullptr : &it->second;
}

void
Network::onDelivered(const DeliveredMessage& msg)
{
    if (ledger_ != nullptr)
        ledger_->onDelivered(msg);
    auto it = manualPending_.find(msg.id);
    if (it != manualPending_.end()) {
        manualDelivered_[msg.id] = msg;
        manualPending_.erase(it);
    }
}

void
Network::onMessageFailed(const PendingMessage& msg, Cycle now)
{
    if (ledger_ != nullptr)
        ledger_->onRefused(msg, now);
}

bool
Network::deadlocked() const
{
    if (quiescent())
        return false;
    return now_ - lastActivity_ > cfg_.deadlockThreshold;
}

bool
Network::quiescent() const
{
    for (const Wave& w : buckets_)
        if (!w.empty())
            return false;
    for (const auto& inj : injectors_)
        if (!inj->idle())
            return false;
    for (const auto& r : routers_)
        if (!r->idle())
            return false;
    for (const auto& rcv : receivers_)
        if (!rcv->idle())
            return false;
    return true;
}

void
Network::dumpOccupancy(std::ostream& os) const
{
    os << "buffer occupancy at cycle " << now_ << " (flits per "
       << "router):\n";
    if (cfg_.dimensionsN == 2) {
        const std::uint32_t k = cfg_.radixK;
        // Row y printed top-down so the grid reads like a map.
        for (std::uint32_t yy = k; yy-- > 0;) {
            os << "  y=" << std::setw(2) << yy << " |";
            for (std::uint32_t xx = 0; xx < k; ++xx) {
                const NodeId id = xx + yy * k;
                os << std::setw(4) << routers_[id]->bufferedFlits();
            }
            os << "\n";
        }
        return;
    }
    for (NodeId id = 0; id < topo_->numNodes(); ++id) {
        const std::uint64_t n = routers_[id]->bufferedFlits();
        if (n > 0)
            os << "  node " << id << ": " << n << "\n";
    }
}

void
Network::dumpForensics(std::ostream& os) const
{
    os << "=== forensics at cycle " << now_ << " (last activity "
       << lastActivity_ << ") ===\n";

    const auto dead = faults_->deadLinks();
    os << "dead links (" << dead.size() << "):\n";
    for (const DeadLink& d : dead) {
        os << "  node " << d.node << " port " << d.port << " ("
           << (d.kind == DeadLinkKind::Bidirectional ? "bidirectional"
                                                     : "directed")
           << ")\n";
    }

    // Stuck input VCs, and the oldest blocked header (the worm most
    // likely anchoring a dependency cycle).
    NodeId oldest_node = kInvalidNode;
    PortId oldest_port = kInvalidPort;
    Cycle oldest_at = now_;
    os << "non-idle input VCs:\n";
    const NodeId n = topo_->numNodes();
    for (NodeId id = 0; id < n; ++id) {
        const Router& r = *routers_[id];
        for (PortId p = 0; p < r.numInPorts(); ++p) {
            for (VcId v = 0; v < cfg_.numVcs; ++v) {
                const Router::InputProbe ip = r.inputProbe(p, v);
                if (ip.state == Router::VcState::Idle &&
                    ip.buffered == 0 && !ip.killPending) {
                    continue;
                }
                os << "  node " << id << " in " << p << " vc "
                   << static_cast<int>(v) << ": "
                   << (ip.state == Router::VcState::Active
                           ? "Active"
                           : ip.state == Router::VcState::Routing
                                 ? "Routing"
                                 : "Idle")
                   << " msg " << ip.msg << " attempt " << ip.attempt
                   << " buffered " << ip.buffered << " stall "
                   << ip.stallCycles;
                if (ip.killPending)
                    os << " kill-pending";
                if (ip.state == Router::VcState::Active) {
                    os << " -> out " << ip.outPort << " vc "
                       << static_cast<int>(ip.outVc);
                }
                os << " (head at " << ip.headArrivedAt << ")\n";
                if (ip.state == Router::VcState::Routing &&
                    ip.headArrivedAt < oldest_at) {
                    oldest_at = ip.headArrivedAt;
                    oldest_node = id;
                    oldest_port = p;
                }
            }
        }
    }
    if (oldest_node != kInvalidNode) {
        os << "oldest blocked header: node " << oldest_node << " in "
           << oldest_port << " waiting since " << oldest_at << "\n";
    }

    os << "active injector slots:\n";
    for (NodeId id = 0; id < n; ++id) {
        for (std::uint32_t ch = 0; ch < cfg_.injectionChannels; ++ch) {
            for (VcId v = 0; v < cfg_.numVcs; ++v) {
                const Injector::SlotProbe sp =
                    injectors_[id]->slotProbe(ch, v);
                if (!sp.active)
                    continue;
                os << "  node " << id << " ch " << ch << " vc "
                   << static_cast<int>(v) << ": msg " << sp.msg
                   << " -> " << sp.dst << " attempt " << sp.attempt
                   << " seq " << sp.nextSeq << "/" << sp.wireLen
                   << " credits " << sp.credits << " stall "
                   << sp.stallCycles << "\n";
            }
        }
    }

    os << "open assemblies:\n";
    for (NodeId id = 0; id < n; ++id) {
        for (const Receiver::AssemblyProbe& ap :
             receivers_[id]->openAssemblies()) {
            os << "  node " << id << ": msg " << ap.msg << " from "
               << ap.src << " attempt " << ap.attempt << " seq "
               << ap.nextSeq << "/" << ap.payloadLen
               << " last flit at " << ap.lastFlitAt << "\n";
        }
    }

    dumpOccupancy(os);
}

bool
Network::measuredDrained() const
{
    return stats_.measuredDelivered.value() +
               stats_.measuredFailed.value() >=
           measuredCreated_;
}

// --- Checkpoint/restore ------------------------------------------------
//
// Field order is the contract: saveState and loadState must mirror
// each other exactly, and any change to either requires bumping
// kSnapshotVersion (docs/ROBUSTNESS.md). Unordered containers are
// serialized in sorted key order so the payload bytes are independent
// of hash-table layout.

CRNET_ALLOW("unordered-iter",
            "explicit-send maps are snapshotted into sorted MsgId "
            "order before serialization; every other container is "
            "ordered already")
void
Network::saveState(StateWriter& w) const
{
    // Shard Counter blocks are zero between ticks except when a
    // between-tick writer (injectFaultEvent's link teardown) bumped a
    // router counter; fold them now so the serialized master block —
    // and with it the snapshot bytes — matches an unsharded run.
    // Logically const: counts move between blocks that serialize as
    // one.
    const_cast<Network*>(this)->foldShardCounters();
    saveNetworkStats(w, stats_);
    faults_->saveState(w);
    generator_->saveState(w);
    const NodeId n = topo_->numNodes();
    for (NodeId id = 0; id < n; ++id)
        routers_[id]->saveState(w);
    for (NodeId id = 0; id < n; ++id)
        injectors_[id]->saveState(w);
    for (NodeId id = 0; id < n; ++id)
        receivers_[id]->saveState(w);

    // Wave buckets, in vector-index order; restoring now_ keeps the
    // (now_ + delay) & mask indexing consistent.
    w.u64(buckets_.size());
    for (const Wave& wave : buckets_) {
        w.u64(wave.flits.size());
        for (const PendingFlit& pf : wave.flits) {
            w.u32(pf.node);
            w.u16(pf.inPort);
            w.u16(pf.vc);
            saveFlit(w, pf.flit);
            w.b(pf.networkHop);
        }
        w.u64(wave.recvFlits.size());
        for (const PendingRecvFlit& pf : wave.recvFlits) {
            w.u32(pf.node);
            w.u32(pf.ejChannel);
            w.u16(pf.vc);
            saveFlit(w, pf.flit);
        }
        w.u64(wave.credits.size());
        for (const PendingCredit& pc : wave.credits) {
            w.u32(pc.node);
            w.u16(pc.outPort);
            w.u16(pc.vc);
        }
        w.u64(wave.injCredits.size());
        for (const PendingInjCredit& pc : wave.injCredits) {
            w.u32(pc.node);
            w.u32(pc.injChannel);
            w.u16(pc.vc);
        }
        w.u64(wave.bkills.size());
        for (const PendingBkill& pb : wave.bkills) {
            w.u32(pb.node);
            w.u16(pb.outPort);
            w.u16(pb.vc);
        }
        w.u64(wave.aborts.size());
        for (const PendingAbort& pa : wave.aborts) {
            w.u32(pa.node);
            w.u32(pa.injChannel);
            w.u16(pa.vc);
            w.u64(pa.msg);
        }
    }

    // Active-set scheduler: wake flags and deadline arrays. The heaps
    // are rebuilt from the nextAt arrays on load — stale heap entries
    // only produce no-op wakes, which are state-invariant by the
    // sweep-equivalence contract.
    for (NodeId id = 0; id < n; ++id)
        w.u8(injAwake_[id]);
    for (NodeId id = 0; id < n; ++id)
        w.u8(rtrAwake_[id]);
    for (NodeId id = 0; id < n; ++id)
        w.u8(rcvAwake_[id]);
    for (NodeId id = 0; id < n; ++id)
        w.u64(injNextAt_[id]);
    for (NodeId id = 0; id < n; ++id)
        w.u64(rcvNextAt_[id]);

    w.u64(now_);
    w.b(trafficEnabled_);
    w.b(measuring_);
    w.u64(measuredCreated_);
    w.u64(lastActivity_);
    w.u64(lastActivityLevel_);
    w.b(forensicsDumped_);

    w.b(dynamicFaults_);
    w.b(schedule_ != nullptr);
    if (schedule_ != nullptr)
        schedule_->saveState(w);

    w.b(ledger_ != nullptr);
    if (ledger_ != nullptr) {
        StateWriter inner;
        ledger_->saveState(inner);
        w.block(inner);
    }

    w.b(audit_ != nullptr);
#if CRNET_AUDIT_ENABLED
    if (audit_ != nullptr)
        audit_->saveState(w);
#endif

    // Length-prefixed: the restore side may legitimately run without
    // a tracer (traceFile is excluded from the fingerprint) and then
    // skips the block wholesale.
    w.b(trace_ != nullptr);
    if (trace_ != nullptr) {
        StateWriter inner;
        trace_->saveState(inner);
        w.block(inner);
    }

    w.b(timeseries_ != nullptr);
    if (timeseries_ != nullptr)
        timeseries_->saveState(w);

    std::vector<MsgId> manual;
    manual.reserve(manualDelivered_.size());
    for (const auto& entry : manualDelivered_)
        manual.push_back(entry.first);
    std::sort(manual.begin(), manual.end());
    w.u64(manual.size());
    for (MsgId id : manual) {
        const DeliveredMessage& d = manualDelivered_.at(id);
        w.u64(id);
        w.u64(d.id);
        w.u32(d.src);
        w.u32(d.dst);
        w.u32(d.payloadLen);
        w.u32(d.pairSeq);
        w.u64(d.createdAt);
        w.u64(d.headInjectedAt);
        w.u64(d.deliveredAt);
        w.u16(d.attempts);
        w.b(d.measured);
        w.b(d.corrupted);
    }
    manual.clear();
    for (const auto& entry : manualPending_)
        manual.push_back(entry.first);
    std::sort(manual.begin(), manual.end());
    w.u64(manual.size());
    for (MsgId id : manual) {
        w.u64(id);
        w.b(manualPending_.at(id));
    }
}

void
Network::loadState(StateReader& r)
{
    loadNetworkStats(r, stats_);
    // The snapshot's master block is the whole truth: any counts
    // still sitting in shard blocks belong to the abandoned timeline.
    for (auto& blk : shardStats_)
        resetCounters(*blk);
    faults_->loadState(r);
    generator_->loadState(r);
    const NodeId n = topo_->numNodes();
    for (NodeId id = 0; id < n; ++id)
        routers_[id]->loadState(r);
    for (NodeId id = 0; id < n; ++id)
        injectors_[id]->loadState(r);
    for (NodeId id = 0; id < n; ++id)
        receivers_[id]->loadState(r);

    const std::uint64_t numBuckets = r.u64();
    if (numBuckets != buckets_.size())
        panic("wave-bucket count mismatch on restore: saved ",
              numBuckets, ", have ", buckets_.size());
    for (Wave& wave : buckets_) {
        wave.clear();
        const std::uint64_t numFlits = r.u64();
        for (std::uint64_t i = 0; i < numFlits; ++i) {
            PendingFlit pf;
            pf.node = r.u32();
            pf.inPort = r.u16();
            pf.vc = r.u16();
            loadFlit(r, pf.flit);
            pf.networkHop = r.b();
            wave.flits.push_back(pf);
        }
        const std::uint64_t numRecv = r.u64();
        for (std::uint64_t i = 0; i < numRecv; ++i) {
            PendingRecvFlit pf;
            pf.node = r.u32();
            pf.ejChannel = r.u32();
            pf.vc = r.u16();
            loadFlit(r, pf.flit);
            wave.recvFlits.push_back(pf);
        }
        const std::uint64_t numCredits = r.u64();
        for (std::uint64_t i = 0; i < numCredits; ++i) {
            PendingCredit pc;
            pc.node = r.u32();
            pc.outPort = r.u16();
            pc.vc = r.u16();
            wave.credits.push_back(pc);
        }
        const std::uint64_t numInjCredits = r.u64();
        for (std::uint64_t i = 0; i < numInjCredits; ++i) {
            PendingInjCredit pc;
            pc.node = r.u32();
            pc.injChannel = r.u32();
            pc.vc = r.u16();
            wave.injCredits.push_back(pc);
        }
        const std::uint64_t numBkills = r.u64();
        for (std::uint64_t i = 0; i < numBkills; ++i) {
            PendingBkill pb;
            pb.node = r.u32();
            pb.outPort = r.u16();
            pb.vc = r.u16();
            wave.bkills.push_back(pb);
        }
        const std::uint64_t numAborts = r.u64();
        for (std::uint64_t i = 0; i < numAborts; ++i) {
            PendingAbort pa;
            pa.node = r.u32();
            pa.injChannel = r.u32();
            pa.vc = r.u16();
            pa.msg = r.u64();
            wave.aborts.push_back(pa);
        }
    }

    for (NodeId id = 0; id < n; ++id)
        injAwake_[id] = r.u8();
    for (NodeId id = 0; id < n; ++id)
        rtrAwake_[id] = r.u8();
    for (NodeId id = 0; id < n; ++id)
        rcvAwake_[id] = r.u8();
    for (NodeId id = 0; id < n; ++id)
        injNextAt_[id] = r.u64();
    for (NodeId id = 0; id < n; ++id)
        rcvNextAt_[id] = r.u64();
    // The per-kind awake counts are derived state; recount rather
    // than serialize so every scheduler reads every snapshot.
    injAwakeN_ = rtrAwakeN_ = rcvAwakeN_ = 0;
    for (NodeId id = 0; id < n; ++id) {
        injAwakeN_ += injAwake_[id] != 0;
        rtrAwakeN_ += rtrAwake_[id] != 0;
        rcvAwakeN_ += rcvAwake_[id] != 0;
    }

    now_ = r.u64();
    trafficEnabled_ = r.b();
    measuring_ = r.b();
    measuredCreated_ = r.u64();
    lastActivity_ = r.u64();
    lastActivityLevel_ = r.u64();
    forensicsDumped_ = r.b();

    // Rebuild the deadline heaps from the deduplicated nextAt arrays:
    // one live entry per sleeping component. The saved run's stale
    // heap entries are not reproduced — they pop as no-op wakes,
    // which cannot change state (sweep equivalence).
    injDeadlines_ = DeadlineHeap();
    rcvDeadlines_ = DeadlineHeap();
    for (NodeId id = 0; id < n; ++id)
        if (injNextAt_[id] != kNeverCycle)
            injDeadlines_.push({injNextAt_[id], id});
    for (NodeId id = 0; id < n; ++id)
        if (rcvNextAt_[id] != kNeverCycle)
            rcvDeadlines_.push({rcvNextAt_[id], id});
    dueEvents_.clear();

    dynamicFaults_ = r.b();
    const bool hadSchedule = r.b();
    if (hadSchedule) {
        // Runtime-armed dynamic faults (injectFaultEvent) may have
        // created a schedule the config alone would not.
        if (schedule_ == nullptr)
            schedule_ = std::make_unique<FaultSchedule>();
        schedule_->loadState(r);
    } else {
        schedule_.reset();
    }

    const bool hadLedger = r.b();
    if (hadLedger) {
        const std::uint64_t len = r.u64();
        if (ledger_ != nullptr) {
            const std::size_t before = r.remaining();
            ledger_->loadState(r);
            if (before - r.remaining() != len)
                panic("ledger block size mismatch on restore");
        } else {
            warn("snapshot carries a delivery ledger but none is "
                 "attached; skipping it");
            r.skip(len);
        }
    }

    const bool hadAudit = r.b();
    if (hadAudit != (audit_ != nullptr))
        panic("audit-build mismatch on restore (saved ", hadAudit,
              ", have ", audit_ != nullptr, ")");
#if CRNET_AUDIT_ENABLED
    if (audit_ != nullptr)
        audit_->loadState(r);
#endif

    const bool hadTracer = r.b();
    if (hadTracer) {
        const std::uint64_t len = r.u64();
        if (trace_ != nullptr) {
            const std::size_t before = r.remaining();
            trace_->loadState(r);
            if (before - r.remaining() != len)
                panic("tracer block size mismatch on restore");
        } else {
            r.skip(len);
        }
    }

    const bool hadTimeseries = r.b();
    if (hadTimeseries != (timeseries_ != nullptr))
        panic("timeseries presence mismatch on restore (saved ",
              hadTimeseries, ", have ", timeseries_ != nullptr,
              "); sample_interval is part of the fingerprint");
    if (timeseries_ != nullptr)
        timeseries_->loadState(r);

    manualDelivered_.clear();
    const std::uint64_t numManual = r.u64();
    for (std::uint64_t i = 0; i < numManual; ++i) {
        const MsgId key = r.u64();
        DeliveredMessage d;
        d.id = r.u64();
        d.src = r.u32();
        d.dst = r.u32();
        d.payloadLen = r.u32();
        d.pairSeq = r.u32();
        d.createdAt = r.u64();
        d.headInjectedAt = r.u64();
        d.deliveredAt = r.u64();
        d.attempts = r.u16();
        d.measured = r.b();
        d.corrupted = r.b();
        manualDelivered_.emplace(key, d);
    }
    manualPending_.clear();
    const std::uint64_t numPending = r.u64();
    for (std::uint64_t i = 0; i < numPending; ++i) {
        const MsgId key = r.u64();
        manualPending_.emplace(key, r.b());
    }
}

void
Network::reseedStreams(std::uint64_t seed)
{
    // Exactly the constructor's fork order (the schedule fork is
    // deliberately skipped: a warm-started measure phase keeps the
    // restored fault timeline).
    Rng root(seed);
    faults_->setRng(root.fork());
    generator_->setRng(root.fork());
    const NodeId n = topo_->numNodes();
    for (NodeId id = 0; id < n; ++id) {
        routers_[id]->setRng(root.fork());
        injectors_[id]->setRng(root.fork());
    }
}

} // namespace crnet
