#include "src/core/experiment.hh"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <memory>
#include <string>

#include "src/core/annotations.hh"
#include "src/sim/log.hh"
#include "src/sim/parallel.hh"
#include "src/sim/snapshot.hh"
#include "src/sim/telemetry.hh"
#include "src/sim/trace.hh"
#include "src/sim/walltime.hh"

namespace crnet {

namespace {

/** Drain-phase step size; the last step is clamped to the budget. */
constexpr Cycle kDrainQuantum = 256;

} // namespace

RunResult
summarize(const Network& net, bool drained, Cycle cycles)
{
    const NetworkStats& s = net.stats();
    const SimConfig& cfg = net.config();
    RunResult r;
    r.offeredLoad = cfg.injectionRate;
    r.measuredMessages = net.measuredCreated();
    r.deliveredMeasured = s.measuredDelivered.value();
    r.avgLatency = s.totalLatency.mean();
    r.netLatency = s.netLatency.mean();
    r.latencyStddev = s.totalLatency.stddev();
    r.maxLatency = s.totalLatency.max();
    r.p50Latency = s.latencyHist.percentile(0.50);
    r.p95Latency = s.latencyHist.percentile(0.95);
    r.p99Latency = s.latencyHist.percentile(0.99);
    r.avgAttempts = s.attempts.mean();
    r.totalKills = s.sourceKills.value() +
                   s.router.pathWideKills.value();
    r.pathWideKills = s.router.pathWideKills.value();
    r.killsPerMessage = r.deliveredMeasured
        ? static_cast<double>(r.totalKills) /
              static_cast<double>(r.deliveredMeasured)
        : 0.0;
    r.padOverhead = s.padOverhead.mean();
    r.escapeAllocations = s.router.escapeAllocations.value();
    r.misrouteHops = s.router.misrouteHops.value();
    r.corruptions = net.config().transientFaultRate > 0.0
        ? s.refusals.value() + s.corruptedDeliveries.value()
        : 0;
    r.corruptedDeliveries = s.corruptedDeliveries.value();
    r.orderViolations = s.orderViolations.value();
    r.duplicateDeliveries = s.duplicateDeliveries.value();
    r.refusals = s.refusals.value();
    r.deadlocked = net.deadlocked();
    r.drained = drained;
    r.cyclesRun = cycles;
    r.flitEvents = s.flitsInjected.value() +
                   s.router.flitsForwarded.value() +
                   s.flitsConsumed.value();
    r.latencyOverflow = s.latencyHist.overflow();
    if (r.latencyOverflow > 0) {
        // Once per process: every saturated run would repeat the same
        // advice, and replicated sweeps run thousands of points.
        CRNET_ALLOW("global-state",
                    "once-per-process advice latch; atomic, write-once, "
                    "and never read by anything result-affecting")
        static std::atomic<bool> warned{false};
        if (!warned.exchange(true)) {
            warn("latency histogram saturated (", r.latencyOverflow,
                 " samples above the top bin); p50/p95/p99 are lower "
                 "bounds for this run");
        }
    }
    r.timeseries = net.timeseriesSamples();
    r.heatmap = net.collectHeatmap();
    if (cfg.measureCycles > 0) {
        r.acceptedThroughput =
            static_cast<double>(s.measuredPayloadFlits.value()) /
            (static_cast<double>(net.topology().numNodes()) *
             static_cast<double>(cfg.measureCycles));
    }
    return r;
}

namespace {

/**
 * Measurement window + drain over an already-warm network. When a
 * profiler is passed it receives the measure/drain phase split and
 * its accumulated data is copied into the result's profile block.
 */
RunResult
measureAndDrain(Network& net, const SimConfig& cfg, TickProfiler* prof)
{
    const WallTimer phase;
    net.setMeasuring(true);
    net.run(cfg.measureCycles);
    net.setMeasuring(false);
    const double measure_s = phase.seconds();

    // Drain: keep offered load applied; wait for tagged messages.
    // The final step is clamped so cyclesRun honors cfg.drainCycles
    // exactly instead of overrunning by up to a whole quantum.
    bool drained = net.measuredDrained();
    Cycle spent = 0;
    while (!drained && spent < cfg.drainCycles && !net.deadlocked()) {
        const Cycle step =
            std::min(kDrainQuantum, cfg.drainCycles - spent);
        net.run(step);
        spent += step;
        drained = net.measuredDrained();
    }
    RunResult r = summarize(net, drained, net.now());
    if (prof != nullptr) {
        ProfileData& p = prof->data();
        p.measureSeconds += measure_s;
        p.drainSeconds += phase.seconds() - measure_s;
        r.profile = p;
    }
    return r;
}

} // namespace

RunResult
runExperiment(const SimConfig& cfg)
{
    const WallTimer timer;
    Network net(cfg);
    TickProfiler prof;
    const bool profiled = cfg.profileEnabled;
    if (profiled)
        net.attachProfiler(&prof);

    // Warmup: traffic flows, nothing is tagged.
    net.setMeasuring(false);
    net.run(cfg.warmupCycles);
    if (profiled)
        prof.data().warmupSeconds = timer.seconds();

    RunResult r = measureAndDrain(net, cfg, profiled ? &prof : nullptr);
    r.wallSeconds = timer.seconds();
    return r;
}

std::vector<RunResult>
runMany(const std::vector<SimConfig>& points)
{
    std::vector<RunResult> out(points.size());
    const unsigned jobs =
        resolveJobs(points.empty() ? 0 : points.front().jobs);

    // Live status (status=<path>): one shared writer for the whole
    // batch, reporting run starts/completions. Purely observational —
    // results are identical with or without it.
    std::unique_ptr<StatusWriter> status;
    if (!points.empty() && !points.front().statusFile.empty()) {
        status = std::make_unique<StatusWriter>(
            points.front().statusFile,
            points.front().statusEverySeconds, "sweep", points.size(),
            jobs);
    }

    parallelFor(points.size(), jobs, [&](std::size_t i) {
        // Give each run its own trace/time-series sink: suffix the
        // resolved prefix so jobs=N writes N distinct files whose
        // bytes match a jobs=1 batch run-for-run.
        SimConfig cfg = points[i];
        if (points.size() > 1) {
            const std::string prefix = Tracer::resolvePrefix(cfg);
            if (!prefix.empty())
                cfg.traceFile = prefix + "_run" + std::to_string(i);
        }
        if (status != nullptr)
            status->unitPhase(i, "run", 0);
        out[i] = runExperiment(cfg);
        if (status != nullptr) {
            StatusWriter::UnitRow row;
            row.index = i;
            row.seed = cfg.seed;
            row.ok = out[i].drained && !out[i].deadlocked;
            row.deadlocked = out[i].deadlocked;
            row.accepted = out[i].measuredMessages;
            row.delivered = out[i].deliveredMeasured;
            row.cycles = out[i].cyclesRun;
            status->unitDone(row, {});
        }
    });
    if (status != nullptr)
        status->finish();
    return out;
}

std::vector<RunResult>
sweepLoads(SimConfig cfg, const std::vector<double>& loads)
{
    std::vector<SimConfig> points(loads.size(), cfg);
    for (std::size_t i = 0; i < loads.size(); ++i)
        points[i].injectionRate = loads[i];
    return runMany(points);
}

namespace {

/** Fold independent runs into the replication summary (input order). */
ReplicatedResult
foldReplications(const std::vector<RunResult>& runs)
{
    Accumulator lat, thr, kills;
    ReplicatedResult out;
    out.replications = static_cast<std::uint32_t>(runs.size());
    for (const RunResult& r : runs) {
        lat.add(r.avgLatency);
        thr.add(r.acceptedThroughput);
        kills.add(r.killsPerMessage);
        out.allDrained = out.allDrained && r.drained;
        out.anyDeadlock = out.anyDeadlock || r.deadlocked;
        out.flitEvents += r.flitEvents;
        out.profile.merge(r.profile);
    }
    const double root_n =
        std::sqrt(static_cast<double>(runs.size()));
    out.meanLatency = lat.mean();
    out.meanThroughput = thr.mean();
    out.meanKillsPerMessage = kills.mean();
    // A single replication has no spread to estimate: the interval is
    // exactly 0, not a degenerate one-sample stddev.
    if (runs.size() > 1) {
        out.latencyCi95 = 1.96 * lat.stddev() / root_n;
        out.throughputCi95 = 1.96 * thr.stddev() / root_n;
    }
    return out;
}

} // namespace

ReplicatedResult
runReplicated(SimConfig cfg, std::uint32_t replications)
{
    if (replications == 0)
        fatal("runReplicated needs at least one replication");
    const WallTimer timer;
    std::vector<SimConfig> points(replications, cfg);
    for (std::uint32_t i = 0; i < replications; ++i)
        points[i].seed = cfg.seed + i;
    const std::vector<RunResult> runs = runMany(points);
    ReplicatedResult out = foldReplications(runs);
    out.wallSeconds = timer.seconds();
    return out;
}

ReplicatedResult
runReplicatedWarm(SimConfig cfg, std::uint32_t replications)
{
    if (replications == 0)
        fatal("runReplicatedWarm needs at least one replication");
    const WallTimer timer;

    // Shared warmup: drain one network to steady state and snapshot
    // it in memory. Every replication forks from these bytes.
    Snapshot warm;
    {
        Network net(cfg);
        net.setMeasuring(false);
        net.run(cfg.warmupCycles);
        warm = captureSnapshot(net);
    }

    std::vector<RunResult> runs(replications);
    parallelFor(replications, resolveJobs(cfg.jobs),
                [&](std::size_t i) {
                    // Per-fork trace sink, mirroring runMany: jobs=N
                    // writes N distinct files.
                    SimConfig forked = cfg;
                    if (replications > 1) {
                        const std::string prefix =
                            Tracer::resolvePrefix(forked);
                        if (!prefix.empty())
                            forked.traceFile =
                                prefix + "_run" + std::to_string(i);
                    }
                    Network net(forked);
                    // Per-fork profiler; the shared warmup is not
                    // attributed (it ran once, before the forks).
                    TickProfiler prof;
                    if (forked.profileEnabled)
                        net.attachProfiler(&prof);
                    const std::string err =
                        restoreSnapshot(net, warm);
                    if (!err.empty())
                        fatal("warm-start restore failed: ", err);
                    net.reseedStreams(cfg.seed + i);
                    runs[i] = measureAndDrain(
                        net, forked,
                        forked.profileEnabled ? &prof : nullptr);
                });
    ReplicatedResult out = foldReplications(runs);
    out.wallSeconds = timer.seconds();
    return out;
}

SaturationResult
findSaturation(SimConfig cfg, double lo, double hi, double tolerance,
               double latency_cap)
{
    if (lo >= hi)
        fatal("findSaturation: lo must be < hi");
    const WallTimer timer;
    SaturationResult res;
    auto healthy = [&](double load) {
        cfg.injectionRate = load;
        const RunResult r = runExperiment(cfg);
        ++res.probes;
        res.flitEvents += r.flitEvents;
        res.profile.merge(r.profile);
        return r.drained && !r.deadlocked &&
               r.avgLatency < latency_cap;
    };
    if (!healthy(lo)) {
        res.load = lo;
        res.belowRange = true;
        res.wallSeconds = timer.seconds();
        return res;
    }
    while (hi - lo > tolerance) {
        const double mid = (lo + hi) / 2.0;
        if (healthy(mid))
            lo = mid;
        else
            hi = mid;
    }
    res.load = lo;
    res.wallSeconds = timer.seconds();
    return res;
}

double
findSaturationLoad(SimConfig cfg, double lo, double hi,
                   double tolerance, double latency_cap)
{
    const SaturationResult res =
        findSaturation(std::move(cfg), lo, hi, tolerance, latency_cap);
    return res.belowRange ? -1.0 : res.load;
}

} // namespace crnet
