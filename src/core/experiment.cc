#include "src/core/experiment.hh"

#include <cmath>

#include "src/sim/log.hh"

namespace crnet {

RunResult
summarize(const Network& net, bool drained, Cycle cycles)
{
    const NetworkStats& s = net.stats();
    const SimConfig& cfg = net.config();
    RunResult r;
    r.offeredLoad = cfg.injectionRate;
    r.measuredMessages = net.measuredCreated();
    r.deliveredMeasured = s.measuredDelivered.value();
    r.avgLatency = s.totalLatency.mean();
    r.netLatency = s.netLatency.mean();
    r.latencyStddev = s.totalLatency.stddev();
    r.maxLatency = s.totalLatency.max();
    r.p50Latency = s.latencyHist.percentile(0.50);
    r.p95Latency = s.latencyHist.percentile(0.95);
    r.p99Latency = s.latencyHist.percentile(0.99);
    r.avgAttempts = s.attempts.mean();
    r.totalKills = s.sourceKills.value() +
                   s.router.pathWideKills.value();
    r.pathWideKills = s.router.pathWideKills.value();
    r.killsPerMessage = r.deliveredMeasured
        ? static_cast<double>(r.totalKills) /
              static_cast<double>(s.messagesDelivered.value() + 1)
        : 0.0;
    r.padOverhead = s.padOverhead.mean();
    r.escapeAllocations = s.router.escapeAllocations.value();
    r.misrouteHops = s.router.misrouteHops.value();
    r.corruptions = net.config().transientFaultRate > 0.0
        ? s.refusals.value() + s.corruptedDeliveries.value()
        : 0;
    r.corruptedDeliveries = s.corruptedDeliveries.value();
    r.orderViolations = s.orderViolations.value();
    r.duplicateDeliveries = s.duplicateDeliveries.value();
    r.refusals = s.refusals.value();
    r.deadlocked = net.deadlocked();
    r.drained = drained;
    r.cyclesRun = cycles;
    if (cfg.measureCycles > 0) {
        r.acceptedThroughput =
            static_cast<double>(s.measuredPayloadFlits.value()) /
            (static_cast<double>(net.topology().numNodes()) *
             static_cast<double>(cfg.measureCycles));
    }
    return r;
}

RunResult
runExperiment(const SimConfig& cfg)
{
    Network net(cfg);

    // Warmup: traffic flows, nothing is tagged.
    net.setMeasuring(false);
    net.run(cfg.warmupCycles);

    // Measurement window.
    net.setMeasuring(true);
    net.run(cfg.measureCycles);
    net.setMeasuring(false);

    // Drain: keep offered load applied; wait for tagged messages.
    bool drained = net.measuredDrained();
    Cycle spent = 0;
    while (!drained && spent < cfg.drainCycles && !net.deadlocked()) {
        net.run(256);
        spent += 256;
        drained = net.measuredDrained();
    }
    return summarize(net, drained, net.now());
}

std::vector<RunResult>
sweepLoads(SimConfig cfg, const std::vector<double>& loads)
{
    std::vector<RunResult> out;
    out.reserve(loads.size());
    for (double load : loads) {
        cfg.injectionRate = load;
        out.push_back(runExperiment(cfg));
    }
    return out;
}

ReplicatedResult
runReplicated(SimConfig cfg, std::uint32_t replications)
{
    if (replications == 0)
        fatal("runReplicated needs at least one replication");
    Accumulator lat, thr, kills;
    ReplicatedResult out;
    out.replications = replications;
    for (std::uint32_t i = 0; i < replications; ++i) {
        cfg.seed = cfg.seed + (i == 0 ? 0 : 1);
        const RunResult r = runExperiment(cfg);
        lat.add(r.avgLatency);
        thr.add(r.acceptedThroughput);
        kills.add(r.killsPerMessage);
        out.allDrained = out.allDrained && r.drained;
        out.anyDeadlock = out.anyDeadlock || r.deadlocked;
    }
    const double root_n = std::sqrt(static_cast<double>(replications));
    out.meanLatency = lat.mean();
    out.latencyCi95 = 1.96 * lat.stddev() / root_n;
    out.meanThroughput = thr.mean();
    out.throughputCi95 = 1.96 * thr.stddev() / root_n;
    out.meanKillsPerMessage = kills.mean();
    return out;
}

double
findSaturationLoad(SimConfig cfg, double lo, double hi,
                   double tolerance, double latency_cap)
{
    if (lo >= hi)
        fatal("findSaturationLoad: lo must be < hi");
    auto healthy = [&](double load) {
        cfg.injectionRate = load;
        const RunResult r = runExperiment(cfg);
        return r.drained && !r.deadlocked &&
               r.avgLatency < latency_cap;
    };
    if (!healthy(lo))
        return lo;
    while (hi - lo > tolerance) {
        const double mid = (lo + hi) / 2.0;
        if (healthy(mid))
            lo = mid;
        else
            hi = mid;
    }
    return lo;
}

} // namespace crnet
