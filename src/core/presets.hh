/**
 * @file
 * Named configuration presets: one per paper experiment, plus the
 * common baselines. `presetConfig("fig14a_cr")` gives exactly the
 * setup the corresponding bench uses, so examples, tests and user
 * code can reference experiments by name.
 */

#ifndef CRNET_CORE_PRESETS_HH
#define CRNET_CORE_PRESETS_HH

#include <string>
#include <vector>

#include "src/sim/config.hh"

namespace crnet {

/** A named preset with a one-line description. */
struct Preset
{
    std::string name;
    std::string description;
    SimConfig config;
};

/** All registered presets. */
const std::vector<Preset>& allPresets();

/** Look up one preset by name; fatal() on unknown names. */
SimConfig presetConfig(const std::string& name);

/** True when `name` names a preset. */
bool presetExists(const std::string& name);

/**
 * CLI front door used by the examples: like SimConfig::applyArgs, but
 * a leading `preset=<name>` argument replaces the whole base
 * configuration first and later `key=value` arguments refine it.
 * Returns the resulting config.
 */
SimConfig configFromArgs(SimConfig base, int argc, char** argv);

} // namespace crnet

#endif // CRNET_CORE_PRESETS_HH
