/**
 * @file
 * Per-run telemetry: interval-sampled time series and per-router /
 * per-channel heat counters.
 *
 * The time series turns end-of-run aggregates into recovery curves:
 * every `sample_interval` cycles the network appends one sample with
 * the interval's deliveries, throughput, mean latency, kills and
 * fault events plus instantaneous in-flight/buffered gauges. The
 * transient-fault benches print them as `timeseries:` CSV blocks.
 *
 * The heatmap rolls each router's switch activity up into one row per
 * node: buffer-occupancy integral, per-input-port blocked cycles and
 * per-output-port forwarded flits, exported as a `heatmap:` CSV block
 * (one column pair per network port).
 */

#ifndef CRNET_CORE_TIMESERIES_HH
#define CRNET_CORE_TIMESERIES_HH

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "src/sim/types.hh"

namespace crnet {

struct NetworkStats;
class StateWriter;
class StateReader;

/** One sampling interval's deltas plus end-of-interval gauges. */
struct TimeSeriesSample
{
    Cycle at = 0;                     //!< Cycle the sample was taken.
    std::uint64_t delivered = 0;      //!< Messages delivered.
    std::uint64_t payloadFlits = 0;   //!< Measured payload flits.
    double meanLatency = 0.0;         //!< Mean total latency of the
                                      //!< interval's measured
                                      //!< deliveries (0 if none).
    std::uint64_t kills = 0;          //!< Source + path-wide kills.
    std::uint64_t retransmits = 0;    //!< Aborts folded in (bkills).
    std::uint64_t faultEvents = 0;    //!< FaultSchedule events fired.
    std::uint64_t inFlightWorms = 0;  //!< Gauge: active injector slots.
    std::uint64_t bufferedFlits = 0;  //!< Gauge: flits in all buffers.

    bool operator==(const TimeSeriesSample&) const = default;
};

/** Accumulates interval samples by differencing cumulative counters. */
class TimeSeries
{
  public:
    /** @param interval Sampling period in cycles (>= 1). */
    explicit TimeSeries(Cycle interval);

    Cycle interval() const { return interval_; }

    /**
     * Append one sample at cycle `now`: interval deltas against the
     * previous sample's cumulative counters, plus the gauge values
     * the caller measured this cycle.
     */
    void sample(Cycle now, const NetworkStats& stats,
                std::uint64_t in_flight_worms,
                std::uint64_t buffered_flits);

    /**
     * The partial-interval sample a run ending at cycle `now` would
     * flush: deltas since the last boundary sample, without touching
     * the differencing baselines (the run may still be continued, e.g.
     * after a snapshot restore).
     */
    TimeSeriesSample peekTail(Cycle now, const NetworkStats& stats,
                              std::uint64_t in_flight_worms,
                              std::uint64_t buffered_flits) const;

    const std::vector<TimeSeriesSample>& samples() const
    {
        return samples_;
    }

    /** Checkpoint support: samples plus the differencing baseline. */
    void saveState(StateWriter& w) const;
    void loadState(StateReader& r);

  private:
    /** Deltas against the baselines, shared by sample()/peekTail(). */
    TimeSeriesSample build(Cycle now, const NetworkStats& stats,
                           std::uint64_t in_flight_worms,
                           std::uint64_t buffered_flits) const;

    Cycle interval_;
    std::vector<TimeSeriesSample> samples_;

    // Cumulative counter values at the previous sample.
    std::uint64_t lastDelivered_ = 0;
    std::uint64_t lastPayload_ = 0;
    std::uint64_t lastKills_ = 0;
    std::uint64_t lastRetrans_ = 0;
    std::uint64_t lastFaults_ = 0;
    double lastLatencySum_ = 0.0;
    std::uint64_t lastLatencyCount_ = 0;
};

/** CSV block (header + one row per sample), Table style. */
void writeTimeSeriesCsv(std::ostream& os,
                        const std::vector<TimeSeriesSample>& samples);

/** Per-node heat counters collected over one run. */
struct HeatmapData
{
    std::uint32_t radixK = 0;
    std::uint32_t dims = 0;
    PortId netPorts = 0;
    Cycle cycles = 0;  //!< Cycles the counters cover.

    /** Sum over cycles of buffered flits per router. [node] */
    std::vector<std::uint64_t> occupancyIntegral;
    /** Cycles each network input port held a blocked worm.
     *  [node * netPorts + port] */
    std::vector<std::uint64_t> blockedCycles;
    /** Data flits forwarded out of each network port.
     *  [node * netPorts + port] */
    std::vector<std::uint64_t> forwarded;
};

/**
 * CSV block: one row per node with coordinates (x = node % k,
 * y = node / k % k), the occupancy integral, total blocked cycles,
 * and per-network-port fwd_<p> / blk_<p> columns.
 */
void writeHeatmapCsv(std::ostream& os, const HeatmapData& heat);

} // namespace crnet

#endif // CRNET_CORE_TIMESERIES_HH
