/**
 * @file
 * Experiment harness: warmup / measure / drain phases over a Network,
 * producing one RunResult per configuration point.
 *
 * Methodology (standard interconnect practice, matching the paper's
 * simulation setup): the generator runs open loop; messages created
 * during the measurement window are tagged; after the window the
 * simulation keeps running (load still applied) until every tagged
 * message is delivered, the drain budget runs out (saturated), or the
 * deadlock watchdog fires.
 */

#ifndef CRNET_CORE_EXPERIMENT_HH
#define CRNET_CORE_EXPERIMENT_HH

#include <vector>

#include "src/core/annotations.hh"
#include "src/core/metrics.hh"
#include "src/core/network.hh"
#include "src/sim/config.hh"

namespace crnet {

/** Run one configuration to completion and summarize it. */
RunResult runExperiment(const SimConfig& cfg);

/**
 * Run a batch of independent configurations, fanned out across
 * `points.front().jobs` worker threads (resolved via resolveJobs:
 * explicit > CRNET_JOBS > 1). Results are returned in input order and
 * are bit-identical to running each point sequentially — every run
 * owns its Network and seeded Rng. This is the engine under
 * sweepLoads, runReplicated, runCampaign and bench::sweep.
 */
std::vector<RunResult> runMany(const std::vector<SimConfig>& points);

/** Run the same configuration at several offered loads (runMany). */
std::vector<RunResult> sweepLoads(SimConfig cfg,
                                  const std::vector<double>& loads);

/** Outcome of a saturation-load bisection. */
struct SaturationResult
{
    double load = 0.0;       //!< Highest healthy load found (>= lo).
    /**
     * True when even `lo` was unhealthy: the network saturates
     * somewhere below the search range, and `load` (== lo) is only
     * the range floor, not a measured saturation point.
     */
    bool belowRange = false;
    std::uint32_t probes = 0;      //!< Experiments run.
    std::uint64_t flitEvents = 0;  //!< Work across all probes.
    double wallSeconds = 0.0;      //!< Wall-clock for the search.
    ProfileData profile;           //!< Merged probe profiles
                                   //!< (`profile=1`; else disabled).
};

/**
 * Binary-search the saturation load: the highest offered load (within
 * `tolerance`) at which the network still drains and average latency
 * stays below `latency_cap`. Check `belowRange` before trusting
 * `load`: it distinguishes "saturates exactly at lo" from "already
 * saturated below lo".
 */
SaturationResult findSaturation(SimConfig cfg, double lo, double hi,
                                double tolerance = 0.01,
                                double latency_cap = 2000.0);

/**
 * Scalar convenience wrapper over findSaturation. Returns the
 * saturation load, or -1.0 (sentinel) when even `lo` was unhealthy —
 * callers that need the distinction without magic numbers should use
 * findSaturation directly.
 */
double findSaturationLoad(SimConfig cfg, double lo, double hi,
                          double tolerance = 0.01,
                          double latency_cap = 2000.0);

/** Extract a RunResult from a finished network (shared summarizer). */
CRNET_RESULT_AFFECTING
RunResult summarize(const Network& net, bool drained, Cycle cycles);

/** Mean and spread over independent replications of one config. */
struct ReplicatedResult
{
    std::uint32_t replications = 0;
    double meanLatency = 0.0;
    double latencyCi95 = 0.0;     //!< Half-width, normal approx.
    double meanThroughput = 0.0;
    double throughputCi95 = 0.0;
    double meanKillsPerMessage = 0.0;
    bool allDrained = true;
    bool anyDeadlock = false;
    std::uint64_t flitEvents = 0;  //!< Work across all replications.
    double wallSeconds = 0.0;      //!< Wall-clock for the batch.
    ProfileData profile;           //!< Merged run profiles
                                   //!< (`profile=1`; else disabled).
};

/**
 * Run `replications` independent runs (seeds seed, seed+1, ...) in
 * parallel (cfg.jobs) and aggregate. The 95% intervals use the normal
 * approximation 1.96 * s / sqrt(n); with the default n=5 they are
 * indicative, not exact, and with n=1 they are reported as exactly 0
 * (a single sample has no spread to estimate).
 */
ReplicatedResult runReplicated(SimConfig cfg,
                               std::uint32_t replications = 5);

/**
 * Warm-start variant of runReplicated: run the warmup phase *once*,
 * snapshot the steady-state network (src/sim/snapshot.hh), then fork
 * every replication from that snapshot with reseeded RNG streams
 * (Network::reseedStreams; seeds seed, seed+1, ...) and run only its
 * measure + drain phases. Statistically equivalent to runReplicated —
 * each replication still sees an independently-seeded steady-state
 * workload — while paying for the warmup once instead of n times;
 * bench_tab_saturation reports the measured speedup. Not bit-identical
 * to runReplicated (the cold variant re-randomizes the warmup too),
 * but deterministic for a fixed (cfg, replications) pair.
 */
ReplicatedResult runReplicatedWarm(SimConfig cfg,
                                   std::uint32_t replications = 5);

} // namespace crnet

#endif // CRNET_CORE_EXPERIMENT_HH
