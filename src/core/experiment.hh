/**
 * @file
 * Experiment harness: warmup / measure / drain phases over a Network,
 * producing one RunResult per configuration point.
 *
 * Methodology (standard interconnect practice, matching the paper's
 * simulation setup): the generator runs open loop; messages created
 * during the measurement window are tagged; after the window the
 * simulation keeps running (load still applied) until every tagged
 * message is delivered, the drain budget runs out (saturated), or the
 * deadlock watchdog fires.
 */

#ifndef CRNET_CORE_EXPERIMENT_HH
#define CRNET_CORE_EXPERIMENT_HH

#include <vector>

#include "src/core/metrics.hh"
#include "src/core/network.hh"
#include "src/sim/config.hh"

namespace crnet {

/** Run one configuration to completion and summarize it. */
RunResult runExperiment(const SimConfig& cfg);

/** Run the same configuration at several offered loads. */
std::vector<RunResult> sweepLoads(SimConfig cfg,
                                  const std::vector<double>& loads);

/**
 * Binary-search the saturation load: the highest offered load (within
 * `tolerance`) at which the network still drains and average latency
 * stays below `latency_cap`.
 */
double findSaturationLoad(SimConfig cfg, double lo, double hi,
                          double tolerance = 0.01,
                          double latency_cap = 2000.0);

/** Extract a RunResult from a finished network (shared summarizer). */
RunResult summarize(const Network& net, bool drained, Cycle cycles);

/** Mean and spread over independent replications of one config. */
struct ReplicatedResult
{
    std::uint32_t replications = 0;
    double meanLatency = 0.0;
    double latencyCi95 = 0.0;     //!< Half-width, normal approx.
    double meanThroughput = 0.0;
    double throughputCi95 = 0.0;
    double meanKillsPerMessage = 0.0;
    bool allDrained = true;
    bool anyDeadlock = false;
};

/**
 * Run `replications` independent runs (seeds seed, seed+1, ...) and
 * aggregate. The 95% intervals use the normal approximation
 * 1.96 * s / sqrt(n); with the default n=5 they are indicative, not
 * exact.
 */
ReplicatedResult runReplicated(SimConfig cfg,
                               std::uint32_t replications = 5);

} // namespace crnet

#endif // CRNET_CORE_EXPERIMENT_HH
