#include "src/core/timeseries.hh"

#include <ostream>

#include "src/core/metrics.hh"
#include "src/sim/log.hh"
#include "src/sim/table.hh"

namespace crnet {

TimeSeries::TimeSeries(Cycle interval) : interval_(interval)
{
    if (interval_ < 1)
        panic("TimeSeries interval must be >= 1");
}

void
TimeSeries::sample(Cycle now, const NetworkStats& stats,
                   std::uint64_t in_flight_worms,
                   std::uint64_t buffered_flits)
{
    const std::uint64_t delivered = stats.messagesDelivered.value();
    const std::uint64_t payload = stats.measuredPayloadFlits.value();
    const std::uint64_t kills = stats.sourceKills.value() +
                                stats.router.pathWideKills.value();
    const std::uint64_t retrans = stats.abortedByBkill.value();
    const std::uint64_t faults = stats.faultEventsApplied.value();
    const double lat_sum = stats.totalLatency.sum();
    const std::uint64_t lat_count = stats.totalLatency.count();

    TimeSeriesSample s;
    s.at = now;
    s.delivered = delivered - lastDelivered_;
    s.payloadFlits = payload - lastPayload_;
    s.kills = kills - lastKills_;
    s.retransmits = retrans - lastRetrans_;
    s.faultEvents = faults - lastFaults_;
    if (lat_count > lastLatencyCount_) {
        s.meanLatency = (lat_sum - lastLatencySum_) /
                        static_cast<double>(lat_count -
                                            lastLatencyCount_);
    }
    s.inFlightWorms = in_flight_worms;
    s.bufferedFlits = buffered_flits;
    samples_.push_back(s);

    lastDelivered_ = delivered;
    lastPayload_ = payload;
    lastKills_ = kills;
    lastRetrans_ = retrans;
    lastFaults_ = faults;
    lastLatencySum_ = lat_sum;
    lastLatencyCount_ = lat_count;
}

void
writeTimeSeriesCsv(std::ostream& os,
                   const std::vector<TimeSeriesSample>& samples)
{
    Table t("timeseries");
    t.setHeader({"cycle", "delivered", "payload_flits", "mean_latency",
                 "kills", "retransmits", "fault_events",
                 "inflight_worms", "buffered_flits"});
    for (const TimeSeriesSample& s : samples) {
        t.addRow({Table::cell(s.at), Table::cell(s.delivered),
                  Table::cell(s.payloadFlits),
                  Table::cell(s.meanLatency, 2), Table::cell(s.kills),
                  Table::cell(s.retransmits), Table::cell(s.faultEvents),
                  Table::cell(s.inFlightWorms),
                  Table::cell(s.bufferedFlits)});
    }
    t.printCsv(os);
}

void
writeHeatmapCsv(std::ostream& os, const HeatmapData& heat)
{
    const auto nodes =
        static_cast<NodeId>(heat.occupancyIntegral.size());
    Table t("heatmap");
    std::vector<std::string> header{"node", "x", "y", "occ_integral",
                                    "blocked_cycles"};
    for (PortId p = 0; p < heat.netPorts; ++p) {
        header.push_back("fwd_p" + std::to_string(p));
        header.push_back("blk_p" + std::to_string(p));
    }
    t.setHeader(std::move(header));
    for (NodeId n = 0; n < nodes; ++n) {
        std::vector<std::string> row;
        row.push_back(Table::cell(static_cast<std::uint64_t>(n)));
        row.push_back(Table::cell(
            static_cast<std::uint64_t>(n % heat.radixK)));
        row.push_back(Table::cell(
            static_cast<std::uint64_t>(n / heat.radixK % heat.radixK)));
        row.push_back(Table::cell(heat.occupancyIntegral[n]));
        std::uint64_t blocked = 0;
        for (PortId p = 0; p < heat.netPorts; ++p)
            blocked += heat.blockedCycles[
                static_cast<std::size_t>(n) * heat.netPorts + p];
        row.push_back(Table::cell(blocked));
        for (PortId p = 0; p < heat.netPorts; ++p) {
            const std::size_t i =
                static_cast<std::size_t>(n) * heat.netPorts + p;
            row.push_back(Table::cell(heat.forwarded[i]));
            row.push_back(Table::cell(heat.blockedCycles[i]));
        }
        t.addRow(std::move(row));
    }
    t.printCsv(os);
}

} // namespace crnet
