#include "src/core/timeseries.hh"

#include <ostream>

#include "src/core/metrics.hh"
#include "src/sim/log.hh"
#include "src/sim/snapshot.hh"
#include "src/sim/table.hh"

namespace crnet {

TimeSeries::TimeSeries(Cycle interval) : interval_(interval)
{
    if (interval_ < 1)
        panic("TimeSeries interval must be >= 1");
}

TimeSeriesSample
TimeSeries::build(Cycle now, const NetworkStats& stats,
                  std::uint64_t in_flight_worms,
                  std::uint64_t buffered_flits) const
{
    const double lat_sum = stats.totalLatency.sum();
    const std::uint64_t lat_count = stats.totalLatency.count();

    TimeSeriesSample s;
    s.at = now;
    s.delivered = stats.messagesDelivered.value() - lastDelivered_;
    s.payloadFlits =
        stats.measuredPayloadFlits.value() - lastPayload_;
    s.kills = stats.sourceKills.value() +
              stats.router.pathWideKills.value() - lastKills_;
    s.retransmits = stats.abortedByBkill.value() - lastRetrans_;
    s.faultEvents = stats.faultEventsApplied.value() - lastFaults_;
    if (lat_count > lastLatencyCount_) {
        s.meanLatency = (lat_sum - lastLatencySum_) /
                        static_cast<double>(lat_count -
                                            lastLatencyCount_);
    }
    s.inFlightWorms = in_flight_worms;
    s.bufferedFlits = buffered_flits;
    return s;
}

void
TimeSeries::sample(Cycle now, const NetworkStats& stats,
                   std::uint64_t in_flight_worms,
                   std::uint64_t buffered_flits)
{
    samples_.push_back(
        build(now, stats, in_flight_worms, buffered_flits));

    lastDelivered_ = stats.messagesDelivered.value();
    lastPayload_ = stats.measuredPayloadFlits.value();
    lastKills_ = stats.sourceKills.value() +
                 stats.router.pathWideKills.value();
    lastRetrans_ = stats.abortedByBkill.value();
    lastFaults_ = stats.faultEventsApplied.value();
    lastLatencySum_ = stats.totalLatency.sum();
    lastLatencyCount_ = stats.totalLatency.count();
}

TimeSeriesSample
TimeSeries::peekTail(Cycle now, const NetworkStats& stats,
                     std::uint64_t in_flight_worms,
                     std::uint64_t buffered_flits) const
{
    return build(now, stats, in_flight_worms, buffered_flits);
}

void
TimeSeries::saveState(StateWriter& w) const
{
    w.u64(samples_.size());
    for (const TimeSeriesSample& s : samples_) {
        w.u64(s.at);
        w.u64(s.delivered);
        w.u64(s.payloadFlits);
        w.f64(s.meanLatency);
        w.u64(s.kills);
        w.u64(s.retransmits);
        w.u64(s.faultEvents);
        w.u64(s.inFlightWorms);
        w.u64(s.bufferedFlits);
    }
    w.u64(lastDelivered_);
    w.u64(lastPayload_);
    w.u64(lastKills_);
    w.u64(lastRetrans_);
    w.u64(lastFaults_);
    w.f64(lastLatencySum_);
    w.u64(lastLatencyCount_);
}

void
TimeSeries::loadState(StateReader& r)
{
    samples_.clear();
    const std::uint64_t n = r.u64();
    samples_.reserve(n);
    for (std::uint64_t i = 0; i < n; ++i) {
        TimeSeriesSample s;
        s.at = r.u64();
        s.delivered = r.u64();
        s.payloadFlits = r.u64();
        s.meanLatency = r.f64();
        s.kills = r.u64();
        s.retransmits = r.u64();
        s.faultEvents = r.u64();
        s.inFlightWorms = r.u64();
        s.bufferedFlits = r.u64();
        samples_.push_back(s);
    }
    lastDelivered_ = r.u64();
    lastPayload_ = r.u64();
    lastKills_ = r.u64();
    lastRetrans_ = r.u64();
    lastFaults_ = r.u64();
    lastLatencySum_ = r.f64();
    lastLatencyCount_ = r.u64();
}

void
writeTimeSeriesCsv(std::ostream& os,
                   const std::vector<TimeSeriesSample>& samples)
{
    Table t("timeseries");
    t.setHeader({"cycle", "delivered", "payload_flits", "mean_latency",
                 "kills", "retransmits", "fault_events",
                 "inflight_worms", "buffered_flits"});
    for (const TimeSeriesSample& s : samples) {
        t.addRow({Table::cell(s.at), Table::cell(s.delivered),
                  Table::cell(s.payloadFlits),
                  Table::cell(s.meanLatency, 2), Table::cell(s.kills),
                  Table::cell(s.retransmits), Table::cell(s.faultEvents),
                  Table::cell(s.inFlightWorms),
                  Table::cell(s.bufferedFlits)});
    }
    t.printCsv(os);
}

void
writeHeatmapCsv(std::ostream& os, const HeatmapData& heat)
{
    const auto nodes =
        static_cast<NodeId>(heat.occupancyIntegral.size());
    Table t("heatmap");
    std::vector<std::string> header{"node", "x", "y", "occ_integral",
                                    "blocked_cycles"};
    for (PortId p = 0; p < heat.netPorts; ++p) {
        header.push_back("fwd_p" + std::to_string(p));
        header.push_back("blk_p" + std::to_string(p));
    }
    t.setHeader(std::move(header));
    for (NodeId n = 0; n < nodes; ++n) {
        std::vector<std::string> row;
        row.push_back(Table::cell(static_cast<std::uint64_t>(n)));
        row.push_back(Table::cell(
            static_cast<std::uint64_t>(n % heat.radixK)));
        row.push_back(Table::cell(
            static_cast<std::uint64_t>(n / heat.radixK % heat.radixK)));
        row.push_back(Table::cell(heat.occupancyIntegral[n]));
        std::uint64_t blocked = 0;
        for (PortId p = 0; p < heat.netPorts; ++p)
            blocked += heat.blockedCycles[
                static_cast<std::size_t>(n) * heat.netPorts + p];
        row.push_back(Table::cell(blocked));
        for (PortId p = 0; p < heat.netPorts; ++p) {
            const std::size_t i =
                static_cast<std::size_t>(n) * heat.netPorts + p;
            row.push_back(Table::cell(heat.forwarded[i]));
            row.push_back(Table::cell(heat.blockedCycles[i]));
        }
        t.addRow(std::move(row));
    }
    t.printCsv(os);
}

} // namespace crnet
