#include "src/core/presets.hh"

#include "src/sim/log.hh"

namespace crnet {

namespace {

SimConfig
evalBase()
{
    SimConfig cfg;
    cfg.topology = TopologyKind::Torus;
    cfg.radixK = 8;
    cfg.dimensionsN = 2;
    cfg.numVcs = 2;
    cfg.bufferDepth = 2;
    cfg.routing = RoutingKind::MinimalAdaptive;
    cfg.protocol = ProtocolKind::Cr;
    cfg.messageLength = 16;
    cfg.timeout = 8;
    cfg.warmupCycles = 1000;
    cfg.measureCycles = 5000;
    cfg.drainCycles = 60000;
    cfg.seed = 20260706;
    return cfg;
}

std::vector<Preset>
buildPresets()
{
    std::vector<Preset> out;

    {
        SimConfig cfg = evalBase();
        out.push_back({"eval_base",
                       "8-ary 2-cube CR evaluation baseline "
                       "(2 VCs, 16-flit messages)",
                       cfg});
    }
    {
        SimConfig cfg = evalBase();
        cfg.numVcs = 1;
        cfg.timeout = 16;
        out.push_back({"cr_headline",
                       "CR's headline config: adaptive torus routing "
                       "with a single VC",
                       cfg});
    }
    {
        SimConfig cfg = evalBase();
        cfg.routing = RoutingKind::DimensionOrder;
        cfg.protocol = ProtocolKind::None;
        out.push_back({"dor_baseline",
                       "dimension-order torus baseline "
                       "(2 dateline VCs)",
                       cfg});
    }
    {
        SimConfig cfg = evalBase();
        cfg.routing = RoutingKind::DimensionOrder;
        cfg.protocol = ProtocolKind::None;
        cfg.bufferDepth = 16;
        out.push_back({"fig14a_dor16",
                       "Fig. 14(a) rich-buffer DOR comparator "
                       "(16-flit FIFOs)",
                       cfg});
    }
    {
        SimConfig cfg = evalBase();
        out.push_back({"fig14a_cr",
                       "Fig. 14(a) CR side: 2-flit buffers, "
                       "timeout = len/VCs",
                       cfg});
    }
    {
        SimConfig cfg = evalBase();
        cfg.routing = RoutingKind::Duato;
        cfg.protocol = ProtocolKind::None;
        cfg.numVcs = 3;
        out.push_back({"duato_baseline",
                       "Duato adaptive baseline: 2 escape + 1 "
                       "adaptive VC (PDS methodology)",
                       cfg});
    }
    {
        SimConfig cfg = evalBase();
        cfg.protocol = ProtocolKind::Fcr;
        cfg.injectionRate = 0.15;
        cfg.timeout = 32;
        cfg.transientFaultRate = 1e-3;
        out.push_back({"fcr_noisy",
                       "FCR under aggressive transient faults "
                       "(1e-3 per flit-hop)",
                       cfg});
    }
    {
        SimConfig cfg = evalBase();
        cfg.protocol = ProtocolKind::Fcr;
        cfg.injectionRate = 0.10;
        cfg.timeout = 32;
        cfg.permanentLinkFaults = 4;
        cfg.misrouteAfterRetries = 2;
        out.push_back({"fcr_broken_links",
                       "FCR with 4 dead physical links and bounded "
                       "misrouting",
                       cfg});
    }
    {
        SimConfig cfg = evalBase();
        cfg.numVcs = 1;
        cfg.protocol = ProtocolKind::None;
        cfg.injectionRate = 0.8;
        cfg.messageLength = 32;
        cfg.deadlockThreshold = 2000;
        out.push_back({"deadlock_demo",
                       "the motivating failure: adaptive torus "
                       "wormhole with no VCs and no recovery",
                       cfg});
    }
    {
        SimConfig cfg = evalBase();
        cfg.topology = TopologyKind::Mesh;
        cfg.routing = RoutingKind::PlanarAdaptive;
        cfg.protocol = ProtocolKind::None;
        cfg.numVcs = 3;
        out.push_back({"par_mesh",
                       "planar-adaptive routing on a 2D mesh "
                       "(the authors' earlier scheme)",
                       cfg});
    }
    {
        SimConfig cfg = evalBase();
        cfg.channelLatency = 4;
        cfg.bufferDepth = 9;
        cfg.timeout = 64;
        out.push_back({"deep_network",
                       "long-wire network (4-cycle channels): the "
                       "regime the paper flags as CR-unfriendly",
                       cfg});
    }
    return out;
}

} // namespace

const std::vector<Preset>&
allPresets()
{
    static const std::vector<Preset> presets = buildPresets();
    return presets;
}

SimConfig
presetConfig(const std::string& name)
{
    for (const Preset& p : allPresets())
        if (p.name == name)
            return p.config;
    std::string known;
    for (const Preset& p : allPresets())
        known += " " + p.name;
    fatal("unknown preset '", name, "'; known presets:", known);
}

bool
presetExists(const std::string& name)
{
    for (const Preset& p : allPresets())
        if (p.name == name)
            return true;
    return false;
}

SimConfig
configFromArgs(SimConfig base, int argc, char** argv)
{
    SimConfig cfg = base;
    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        const auto eq = arg.find('=');
        if (eq == std::string::npos)
            fatal("expected key=value argument, got '", arg, "'");
        const std::string key = arg.substr(0, eq);
        const std::string value = arg.substr(eq + 1);
        if (key == "preset")
            cfg = presetConfig(value);
        else
            cfg.set(key, value);
    }
    return cfg;
}

} // namespace crnet
