/**
 * @file
 * Source annotations driving the crnet-analyze static-analysis pass
 * (tools/crnet_analyze.py, registered as the `analyze` ctest).
 *
 * The runtime checks — the sched=active/sweep goldens, the jobs=N
 * bit-identity diffs, tests/test_alloc_steady.cc — only cover the
 * paths a test happens to execute. These annotations let the analyzer
 * enforce the same properties on *every* path, per translation unit
 * and across the whole call graph:
 *
 *   CRNET_HOT_PATH
 *       No heap allocation may be reachable from this function
 *       (rule `alloc`): no `new`, `malloc`-family calls, or
 *       allocating standard-container methods anywhere in its
 *       transitive callees. Applied to Network::tick and the
 *       router/NIC per-cycle functions.
 *
 *   CRNET_RESULT_AFFECTING
 *       Everything reachable from this function feeds a result the
 *       simulator reports (RunResult, campaign ledger summaries,
 *       trace files, audit/forensics reports). No iteration over
 *       std::unordered_map/std::unordered_set (rule `unordered-iter`)
 *       — hash-order is not part of the simulation's deterministic
 *       contract — and no address-dependent ordering.
 *
 *   CRNET_ALLOW(rule, reason)
 *       Scoped suppression: the named rule is not enforced inside the
 *       annotated function (or variable), and propagation of that
 *       rule stops at it. The reason string is mandatory and must be
 *       non-empty; the analyzer rejects bare suppressions. Rules:
 *       "alloc", "unordered-iter", "wallclock", "global-state".
 *
 * Two whole-tree rules need no root annotation:
 *
 *   `wallclock`     — any wall-clock/time source (time(),
 *                     gettimeofday(), std::chrono::*_clock) outside
 *                     the bench timing shim (src/sim/walltime.hh).
 *                     Simulation results must be functions of the
 *                     seed and the cycle counter alone.
 *   `global-state`  — mutable namespace-scope (or function-local
 *                     static) state in src/ outside registered
 *                     singletons. Hidden globals break run isolation
 *                     under the jobs=N engine and the upcoming
 *                     intra-run sharding.
 *
 * Under clang the macros expand to [[clang::annotate]] attributes, so
 * the analyzer's clang frontend reads them straight out of the AST;
 * under other compilers they compile to nothing and the analyzer's
 * internal frontend recognizes the macro tokens textually. Either
 * way they cost nothing at runtime.
 */

#ifndef CRNET_CORE_ANNOTATIONS_HH
#define CRNET_CORE_ANNOTATIONS_HH

#if defined(__clang__)
#define CRNET_HOT_PATH [[clang::annotate("crnet::hot_path")]]
#define CRNET_RESULT_AFFECTING [[clang::annotate("crnet::result_affecting")]]
#define CRNET_ALLOW(rule, reason) \
    [[clang::annotate("crnet::allow:" rule ":" reason)]]
#else
#define CRNET_HOT_PATH
#define CRNET_RESULT_AFFECTING
#define CRNET_ALLOW(rule, reason)
#endif

#endif // CRNET_CORE_ANNOTATIONS_HH
