#include "src/routing/routing.hh"

#include "src/sim/log.hh"

namespace crnet {

void
RoutingAlgorithm::onTraverse(NodeId, PortId, Flit&) const
{
}

void
RoutingAlgorithm::onInject(NodeId, Flit& head) const
{
    head.vcClass = 0;
}

bool
RoutingAlgorithm::isEscapeVc(VcId) const
{
    return false;
}

void
RoutingAlgorithm::appendVcRange(std::vector<Candidate>& out, PortId port,
                                VcId first, VcId last, bool escape,
                                bool misroute) const
{
    for (VcId vc = first; vc < last; ++vc)
        out.push_back(Candidate{port, vc, escape, misroute});
}

std::unique_ptr<RoutingAlgorithm>
makeRouting(const SimConfig& cfg, const Topology& topo,
            const FaultModel& faults)
{
    switch (cfg.routing) {
      case RoutingKind::DimensionOrder:
        return std::make_unique<DorRouting>(topo, faults, cfg.numVcs);
      case RoutingKind::MinimalAdaptive:
        return std::make_unique<MinimalAdaptiveRouting>(topo, faults,
                                                        cfg.numVcs);
      case RoutingKind::Duato:
        return std::make_unique<DuatoRouting>(topo, faults, cfg.numVcs);
      case RoutingKind::WestFirst:
        return std::make_unique<TurnModelRouting>(
            topo, faults, cfg.numVcs,
            TurnModelRouting::Variant::WestFirst);
      case RoutingKind::NegativeFirst:
        return std::make_unique<TurnModelRouting>(
            topo, faults, cfg.numVcs,
            TurnModelRouting::Variant::NegativeFirst);
      case RoutingKind::PlanarAdaptive:
        return std::make_unique<PlanarAdaptiveRouting>(topo, faults,
                                                       cfg.numVcs);
    }
    panic("bad RoutingKind in makeRouting");
}

} // namespace crnet
