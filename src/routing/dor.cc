#include "src/routing/routing.hh"

#include "src/sim/log.hh"

namespace crnet {

/**
 * Dateline VC class for one hop of a minimal path in one dimension.
 *
 * Each torus dimension is a ring whose "dateline" is the wraparound
 * link (k-1 -> 0 in Plus direction, 0 -> k-1 in Minus). VCs are split
 * into class 0 and class 1. The rule, computable statelessly at every
 * hop, is:
 *
 *   class 0  while the remaining path still crosses the dateline
 *            *after* this hop;
 *   class 1  from the crossing hop onward (and for paths that never
 *            cross at all).
 *
 * Why this is deadlock-free: class-0 VCs are never used on the
 * dateline link (a crossing hop is class 1), so class-0 dependencies
 * cannot close the ring. A worm in class 1 never crosses the dateline
 * again (minimal paths wrap at most once), so no class-1 dependency
 * enters the dateline link from its ring predecessor, and the class-1
 * subgraph cannot close the ring either. Routing never moves a worm
 * from class 1 back to class 0 within a dimension, so there are no
 * mixed-class cycles.
 */
std::uint8_t
datelineClass(const Topology& topo, NodeId node, NodeId dst, PortId port)
{
    if (topo.kind() != TopologyKind::Torus)
        return 0;
    const std::uint32_t d = portDim(port);
    const std::uint32_t k = topo.radix();
    const std::uint32_t a = topo.coords(node)[d];
    const std::uint32_t b = topo.coords(dst)[d];
    bool cross_later = false;
    if (portDir(port) == Direction::Plus) {
        const std::uint32_t after = (a + 1) % k;
        cross_later = after != b && b < after;
    } else {
        const std::uint32_t after = (a + k - 1) % k;
        cross_later = after != b && b > after;
    }
    return cross_later ? 0 : 1;
}

DorRouting::DorRouting(const Topology& topo, const FaultModel& faults,
                       std::uint32_t num_vcs)
    : RoutingAlgorithm(topo, faults, num_vcs)
{
    if (topo.kind() == TopologyKind::Torus) {
        // Two dateline classes; VCs split evenly between them (an odd
        // extra VC joins class 1, which carries never-crossing paths
        // too and so sees more load).
        lanesPerClass_ = num_vcs >= 2 ? num_vcs / 2 : 0;
    } else {
        lanesPerClass_ = num_vcs;
    }
}

PortId
DorRouting::dorPort(NodeId node, const Flit& head) const
{
    for (std::uint32_t d = 0; d < topo_.dims(); ++d) {
        const DimRoute r = topo_.dimRoute(node, head.dst, d);
        if (r.done())
            continue;
        // Shorter way around; ties go Plus. The choice depends only on
        // (node, dst) in this dimension, so it is consistent along the
        // path.
        if (r.plusMinimal)
            return makePort(d, Direction::Plus);
        return makePort(d, Direction::Minus);
    }
    panic("DorRouting::dorPort called with head at destination");
}

void
DorRouting::candidates(NodeId node, const Flit& head,
                       std::vector<Candidate>& out, Rng& rng) const
{
    const PortId port = dorPort(node, head);
    if (!faults_.linkOk(node, port))
        return;  // DOR has no alternative; the worm waits (or CR kills).

    VcId first = 0;
    VcId lanes = static_cast<VcId>(numVcs_);
    if (topo_.kind() == TopologyKind::Torus) {
        if (lanesPerClass_ == 0) {
            // Single VC on a torus: only legal under CR, which
            // provides deadlock recovery; dateline classes are moot.
            first = 0;
            lanes = 1;
        } else {
            const std::uint8_t cls =
                datelineClass(topo_, node, head.dst, port);
            first = static_cast<VcId>(cls == 0 ? 0 : lanesPerClass_);
            lanes = static_cast<VcId>(
                cls == 0 ? lanesPerClass_ : numVcs_ - lanesPerClass_);
        }
    }
    // Lanes within a class are equivalent; rotate the starting lane to
    // spread worms across them.
    const VcId start = static_cast<VcId>(rng.below(lanes));
    for (VcId i = 0; i < lanes; ++i) {
        out.push_back(Candidate{
            port, static_cast<VcId>(first + (start + i) % lanes),
            false, false});
    }
}

void
DorRouting::onTraverse(NodeId, PortId, Flit&) const
{
    // Dateline classes are computed statelessly per hop; the header
    // carries no DOR routing state.
}

bool
DorRouting::selfDeadlockFree() const
{
    if (topo_.kind() == TopologyKind::Torus)
        return lanesPerClass_ > 0;  // Needs both dateline classes.
    return true;
}

} // namespace crnet
