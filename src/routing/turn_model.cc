#include "src/routing/routing.hh"

#include "src/sim/log.hh"

namespace crnet {

namespace {

void
shuffleTail(std::vector<Candidate>& out, std::size_t first, Rng& rng)
{
    for (std::size_t i = out.size(); i > first + 1; --i) {
        const std::size_t j =
            first + static_cast<std::size_t>(rng.below(i - first));
        std::swap(out[i - 1], out[j]);
    }
}

} // namespace

TurnModelRouting::TurnModelRouting(const Topology& topo,
                                   const FaultModel& faults,
                                   std::uint32_t num_vcs,
                                   Variant variant)
    : RoutingAlgorithm(topo, faults, num_vcs), variant_(variant)
{
    if (topo.kind() != TopologyKind::Mesh)
        fatal("turn-model routing is deadlock-free only on meshes");
    if (topo.dims() != 2)
        fatal("turn-model routing is implemented for 2D meshes");
}

void
TurnModelRouting::candidates(NodeId node, const Flit& head,
                             std::vector<Candidate>& out, Rng& rng) const
{
    const DimRoute x = topo_.dimRoute(node, head.dst, 0);
    const DimRoute y = topo_.dimRoute(node, head.dst, 1);
    const std::size_t base = out.size();

    auto add = [&](PortId p) {
        if (faults_.linkOk(node, p))
            appendVcRange(out, p, 0, static_cast<VcId>(numVcs_));
    };

    if (variant_ == Variant::WestFirst) {
        // All West (x-) hops first, deterministically; afterwards the
        // worm may turn adaptively among {x+, y+, y-} (the prohibited
        // turns are exactly those into West).
        if (x.minusMinimal) {
            add(makePort(0, Direction::Minus));
            return;
        }
        if (x.plusMinimal)
            add(makePort(0, Direction::Plus));
        if (y.plusMinimal)
            add(makePort(1, Direction::Plus));
        if (y.minusMinimal)
            add(makePort(1, Direction::Minus));
        shuffleTail(out, base, rng);
        return;
    }

    // NegativeFirst: all negative hops first (adaptively among x-,
    // y-), then all positive hops (adaptively among x+, y+). Turns
    // from a positive direction into a negative one never occur.
    const bool negative_remaining = x.minusMinimal || y.minusMinimal;
    if (negative_remaining) {
        if (x.minusMinimal)
            add(makePort(0, Direction::Minus));
        if (y.minusMinimal)
            add(makePort(1, Direction::Minus));
    } else {
        if (x.plusMinimal)
            add(makePort(0, Direction::Plus));
        if (y.plusMinimal)
            add(makePort(1, Direction::Plus));
    }
    shuffleTail(out, base, rng);
}

} // namespace crnet
