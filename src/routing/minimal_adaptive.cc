#include "src/routing/routing.hh"

#include "src/sim/log.hh"

namespace crnet {

namespace {

/** Fisher-Yates shuffle of candidates in [first, out.size()). */
void
shuffleTail(std::vector<Candidate>& out, std::size_t first, Rng& rng)
{
    for (std::size_t i = out.size(); i > first + 1; --i) {
        const std::size_t j =
            first + static_cast<std::size_t>(rng.below(i - first));
        std::swap(out[i - 1], out[j]);
    }
}

} // namespace

MinimalAdaptiveRouting::MinimalAdaptiveRouting(const Topology& topo,
                                               const FaultModel& faults,
                                               std::uint32_t num_vcs)
    : RoutingAlgorithm(topo, faults, num_vcs)
{
}

void
MinimalAdaptiveRouting::candidates(NodeId node, const Flit& head,
                                   std::vector<Candidate>& out,
                                   Rng& rng) const
{
    const std::size_t base = out.size();
    bool minimal_port[2 * kMaxDims] = {};

    // Every minimal direction in every unfinished dimension, on every
    // VC, is a candidate. Order is randomized so worms spread across
    // the productive channels (the router takes the first free one).
    for (std::uint32_t d = 0; d < topo_.dims(); ++d) {
        const DimRoute r = topo_.dimRoute(node, head.dst, d);
        if (r.plusMinimal) {
            const PortId p = makePort(d, Direction::Plus);
            minimal_port[p] = true;
            if (faults_.linkOk(node, p))
                appendVcRange(out, p, 0, static_cast<VcId>(numVcs_));
        }
        if (r.minusMinimal) {
            const PortId p = makePort(d, Direction::Minus);
            minimal_port[p] = true;
            if (faults_.linkOk(node, p))
                appendVcRange(out, p, 0, static_cast<VcId>(numVcs_));
        }
    }
    shuffleTail(out, base, rng);

    // Non-minimal options, appended after all minimal ones, are only
    // offered while the header still has misroute budget (granted by
    // the injector on FCR retries around permanent faults). CR's kill
    // mechanism keeps this deadlock-free; the budget bounds livelock.
    if (head.misrouteBudget > 0) {
        const std::size_t mis_base = out.size();
        for (PortId p = 0; p < topo_.numPorts(); ++p) {
            if (minimal_port[p])
                continue;
            if (topo_.neighbor(node, p) == kInvalidNode)
                continue;
            if (!faults_.linkOk(node, p))
                continue;
            for (VcId vc = 0; vc < numVcs_; ++vc)
                out.push_back(Candidate{p, vc, false, true});
        }
        shuffleTail(out, mis_base, rng);
    }
}

} // namespace crnet
