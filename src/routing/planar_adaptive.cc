#include "src/routing/routing.hh"

#include "src/sim/log.hh"

namespace crnet {

namespace {

void
shuffleTail(std::vector<Candidate>& out, std::size_t first, Rng& rng)
{
    for (std::size_t i = out.size(); i > first + 1; --i) {
        const std::size_t j =
            first + static_cast<std::size_t>(rng.below(i - first));
        std::swap(out[i - 1], out[j]);
    }
}

} // namespace

PlanarAdaptiveRouting::PlanarAdaptiveRouting(const Topology& topo,
                                             const FaultModel& faults,
                                             std::uint32_t num_vcs)
    : RoutingAlgorithm(topo, faults, num_vcs)
{
    if (topo.kind() != TopologyKind::Mesh || topo.dims() != 2)
        fatal("planar-adaptive routing is implemented for 2D meshes");
    if (num_vcs < 3)
        fatal("planar-adaptive routing needs >= 3 VCs "
              "(2 x-classes + y channels)");
}

void
PlanarAdaptiveRouting::candidates(NodeId node, const Flit& head,
                                  std::vector<Candidate>& out,
                                  Rng& rng) const
{
    // 2D planar-adaptive routing (Chien & Kim), specialized to the
    // single plane A0 a 2D mesh has. Traffic is split into two
    // virtual subnetworks by the sign of the remaining y offset:
    //
    //   increasing network (dy >= 0): x channels on VC 0, y+ channels
    //   decreasing network (dy < 0):  x channels on VC 1, y- channels
    //
    // y channels use VCs [2, numVcs) as lanes. Within one subnetwork
    // a packet moves monotonically (one x direction on a mesh, one y
    // direction), so channel dependencies cannot cycle; the two
    // subnetworks use disjoint VC classes on x and disjoint physical
    // channels on y.
    const DimRoute x = topo_.dimRoute(node, head.dst, 0);
    const DimRoute y = topo_.dimRoute(node, head.dst, 1);
    const bool increasing = !y.minusMinimal;  // dy >= 0.
    const VcId x_vc = increasing ? 0 : 1;
    const std::size_t base = out.size();

    PortId x_port = kInvalidPort;
    if (x.plusMinimal)
        x_port = makePort(0, Direction::Plus);
    else if (x.minusMinimal)
        x_port = makePort(0, Direction::Minus);
    if (x_port != kInvalidPort && faults_.linkOk(node, x_port))
        out.push_back(Candidate{x_port, x_vc, false, false});

    PortId y_port = kInvalidPort;
    if (y.plusMinimal)
        y_port = makePort(1, Direction::Plus);
    else if (y.minusMinimal)
        y_port = makePort(1, Direction::Minus);
    if (y_port != kInvalidPort && faults_.linkOk(node, y_port))
        appendVcRange(out, y_port, 2, static_cast<VcId>(numVcs_));

    shuffleTail(out, base, rng);
}

} // namespace crnet
