#include "src/routing/routing.hh"

#include "src/sim/log.hh"

namespace crnet {

namespace {

void
shuffleTail(std::vector<Candidate>& out, std::size_t first, Rng& rng)
{
    for (std::size_t i = out.size(); i > first + 1; --i) {
        const std::size_t j =
            first + static_cast<std::size_t>(rng.below(i - first));
        std::swap(out[i - 1], out[j]);
    }
}

} // namespace

DuatoRouting::DuatoRouting(const Topology& topo, const FaultModel& faults,
                           std::uint32_t num_vcs)
    : RoutingAlgorithm(topo, faults, num_vcs),
      dor_(topo, faults,
           topo.kind() == TopologyKind::Torus ? 2u : 1u),
      escapeVcs_(topo.kind() == TopologyKind::Torus ? 2 : 1)
{
    if (num_vcs <= escapeVcs_)
        fatal("Duato routing needs more than ", escapeVcs_,
              " VCs on this topology (escape channels + >=1 adaptive)");
}

void
DuatoRouting::candidates(NodeId node, const Flit& head,
                         std::vector<Candidate>& out, Rng& rng) const
{
    // Adaptive class first: fully adaptive minimal on VCs
    // [escapeVcs_, numVcs).
    const std::size_t base = out.size();
    for (std::uint32_t d = 0; d < topo_.dims(); ++d) {
        const DimRoute r = topo_.dimRoute(node, head.dst, d);
        if (r.plusMinimal) {
            const PortId p = makePort(d, Direction::Plus);
            if (faults_.linkOk(node, p))
                appendVcRange(out, p, escapeVcs_,
                              static_cast<VcId>(numVcs_));
        }
        if (r.minusMinimal) {
            const PortId p = makePort(d, Direction::Minus);
            if (faults_.linkOk(node, p))
                appendVcRange(out, p, escapeVcs_,
                              static_cast<VcId>(numVcs_));
        }
    }
    shuffleTail(out, base, rng);

    // Escape class last: dimension-order routed; on tori the escape
    // VC is picked by the dateline class. Always available (Duato's
    // condition), so a blocked adaptive worm can drain deadlock-free.
    const PortId escape_port = dor_.dorPort(node, head);
    if (faults_.linkOk(node, escape_port)) {
        const VcId vc = topo_.kind() == TopologyKind::Torus
            ? static_cast<VcId>(
                  datelineClass(topo_, node, head.dst, escape_port))
            : static_cast<VcId>(0);
        out.push_back(Candidate{escape_port, vc, true, false});
    }
}

void
DuatoRouting::onTraverse(NodeId, PortId, Flit&) const
{
    // Escape VC classes are computed statelessly per hop.
}

bool
DuatoRouting::isEscapeVc(VcId vc) const
{
    return vc < escapeVcs_;
}

} // namespace crnet
