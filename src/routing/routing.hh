/**
 * @file
 * Routing-algorithm interface and factory.
 *
 * A routing algorithm maps (current node, header flit) to an ordered
 * list of candidate (output port, output VC) pairs. The router tries
 * candidates in order and takes the first whose output VC is free, so
 * list order expresses preference (adaptive algorithms emit several
 * equally-productive candidates; escape paths come last).
 *
 * Ejection is not the algorithm's business: the router ejects any
 * header whose destination is the local node before consulting the
 * algorithm.
 */

#ifndef CRNET_ROUTING_ROUTING_HH
#define CRNET_ROUTING_ROUTING_HH

#include <memory>
#include <vector>

#include "src/fault/fault_model.hh"
#include "src/router/flit.hh"
#include "src/sim/config.hh"
#include "src/sim/rng.hh"
#include "src/sim/types.hh"
#include "src/topology/topology.hh"

namespace crnet {

/** One routing option for a header. */
struct Candidate
{
    PortId port = kInvalidPort;
    VcId vc = kInvalidVc;
    /** True when this option is a deadlock-escape resource (Duato). */
    bool escape = false;
    /** True when this option moves away from the destination. */
    bool misroute = false;
};

/**
 * Abstract routing relation. Implementations are stateless with
 * respect to individual worms: any per-worm routing state (dateline
 * class, misroute budget) lives in the header flit and is updated via
 * onTraverse().
 */
class RoutingAlgorithm
{
  public:
    /**
     * @param topo   Network graph.
     * @param faults Link health oracle (never null).
     * @param num_vcs VCs per physical channel.
     */
    RoutingAlgorithm(const Topology& topo, const FaultModel& faults,
                     std::uint32_t num_vcs)
        : topo_(topo), faults_(faults), numVcs_(num_vcs)
    {
    }

    virtual ~RoutingAlgorithm() = default;

    /**
     * Produce candidates, most preferred first, for `head` sitting at
     * `node`. `rng` may be used to randomize ties (adaptive spread).
     * Dead links must not be emitted.
     */
    virtual void candidates(NodeId node, const Flit& head,
                            std::vector<Candidate>& out,
                            Rng& rng) const = 0;

    /**
     * Update per-worm routing state carried in the header when it is
     * forwarded from `node` over `port` (e.g. dateline class flips).
     */
    virtual void onTraverse(NodeId node, PortId port, Flit& head) const;

    /**
     * Initialize header routing state at injection time (e.g. reset
     * the dateline class).
     */
    virtual void onInject(NodeId src, Flit& head) const;

    /** True when `vc` is reserved as an escape resource. */
    virtual bool isEscapeVc(VcId vc) const;

    /**
     * True when the relation alone guarantees deadlock freedom (i.e.
     * it can run under ProtocolKind::None). CR-style relations return
     * false and rely on the CR recovery protocol.
     */
    virtual bool selfDeadlockFree() const = 0;

    std::uint32_t numVcs() const { return numVcs_; }

  protected:
    /** Append candidates for every VC in [first, last) on `port`. */
    void appendVcRange(std::vector<Candidate>& out, PortId port,
                       VcId first, VcId last, bool escape = false,
                       bool misroute = false) const;

    const Topology& topo_;
    const FaultModel& faults_;
    std::uint32_t numVcs_;
};

/**
 * Dimension-order routing. Deterministic: corrects dimension 0 first,
 * then 1, ... On tori the shorter way around is chosen (ties go to
 * Plus) and deadlock freedom comes from dateline VC classes: VCs are
 * split into two classes; a worm starts in class 0 and moves to class
 * 1 after crossing the dateline of the dimension it is traveling in.
 * With 2v VCs each class holds v adaptive lanes. On meshes all VCs
 * are lanes of class 0.
 */
class DorRouting : public RoutingAlgorithm
{
  public:
    DorRouting(const Topology& topo, const FaultModel& faults,
               std::uint32_t num_vcs);

    void candidates(NodeId node, const Flit& head,
                    std::vector<Candidate>& out, Rng& rng) const override;
    void onTraverse(NodeId node, PortId port, Flit& head) const override;
    bool selfDeadlockFree() const override;

    /** The single productive DOR port for `head` at `node`. */
    PortId dorPort(NodeId node, const Flit& head) const;

  private:
    std::uint32_t lanesPerClass_ = 1;
};

/**
 * Fully adaptive minimal routing — CR's routing relation. Every
 * minimal direction in every unfinished dimension is a candidate, on
 * every VC; candidate order is randomized each call so the worm
 * spreads over the options. Not deadlock-free by itself: it must run
 * under the CR/FCR protocol (or be used to demonstrate deadlock).
 *
 * When the header carries misroute budget (FCR retries around
 * permanent faults), healthy non-minimal directions are appended after
 * the minimal ones.
 */
class MinimalAdaptiveRouting : public RoutingAlgorithm
{
  public:
    MinimalAdaptiveRouting(const Topology& topo,
                           const FaultModel& faults,
                           std::uint32_t num_vcs);

    void candidates(NodeId node, const Flit& head,
                    std::vector<Candidate>& out, Rng& rng) const override;
    bool selfDeadlockFree() const override { return false; }
};

/**
 * Duato's deadlock-free adaptive routing (the paper's PDS-estimation
 * baseline). VC layout: the first E VCs are escape channels routed by
 * DOR with dateline classes (E = 2 on tori, 1 on meshes); remaining
 * VCs are fully adaptive minimal. A header may always fall back to
 * its escape channel, so the network never deadlocks; each escape
 * allocation is counted as one potential deadlock situation.
 */
class DuatoRouting : public RoutingAlgorithm
{
  public:
    DuatoRouting(const Topology& topo, const FaultModel& faults,
                 std::uint32_t num_vcs);

    void candidates(NodeId node, const Flit& head,
                    std::vector<Candidate>& out, Rng& rng) const override;
    void onTraverse(NodeId node, PortId port, Flit& head) const override;
    bool isEscapeVc(VcId vc) const override;
    bool selfDeadlockFree() const override { return true; }

    VcId numEscapeVcs() const { return escapeVcs_; }

  private:
    DorRouting dor_;
    VcId escapeVcs_;
};

/**
 * Turn-model routing on 2D meshes (Glass & Ni). Two variants:
 *
 *  - WestFirst: all West (x-) hops are taken first, deterministically;
 *    afterwards the worm routes adaptively among {x+, y+, y-}.
 *  - NegativeFirst: all negative hops (x-, y-) are taken first,
 *    adaptively among themselves; then positive hops adaptively.
 *
 * Deadlock-free on meshes with no virtual channels (extra VCs act as
 * lanes).
 */
class TurnModelRouting : public RoutingAlgorithm
{
  public:
    enum class Variant { WestFirst, NegativeFirst };

    TurnModelRouting(const Topology& topo, const FaultModel& faults,
                     std::uint32_t num_vcs, Variant variant);

    void candidates(NodeId node, const Flit& head,
                    std::vector<Candidate>& out, Rng& rng) const override;
    bool selfDeadlockFree() const override { return true; }

  private:
    Variant variant_;
};

/**
 * Planar-adaptive routing (Chien & Kim — the paper authors' earlier
 * VC-based adaptive scheme), specialized to 2D meshes: traffic splits
 * into an increasing and a decreasing subnetwork by the sign of the
 * remaining y offset; x channels carry one VC class per subnetwork, y
 * channels use the remaining VCs as lanes. Deadlock-free with a
 * constant 3 VCs, adaptive between the x and y minimal directions.
 */
class PlanarAdaptiveRouting : public RoutingAlgorithm
{
  public:
    PlanarAdaptiveRouting(const Topology& topo,
                          const FaultModel& faults,
                          std::uint32_t num_vcs);

    void candidates(NodeId node, const Flit& head,
                    std::vector<Candidate>& out, Rng& rng) const override;
    bool selfDeadlockFree() const override { return true; }
};

/** Build the configured routing algorithm. */
std::unique_ptr<RoutingAlgorithm>
makeRouting(const SimConfig& cfg, const Topology& topo,
            const FaultModel& faults);

/**
 * Dateline VC class (0 or 1) for one hop of a minimal path. Shared by
 * DOR and Duato's escape channels; see dor.cc for the deadlock-freedom
 * argument. Always 0 on meshes.
 */
std::uint8_t datelineClass(const Topology& topo, NodeId node, NodeId dst,
                           PortId port);

} // namespace crnet

#endif // CRNET_ROUTING_ROUTING_HH
