#include "src/nic/receiver.hh"

#include <algorithm>

#include "src/sim/audit.hh"
#include "src/sim/log.hh"
#include "src/sim/snapshot.hh"
#include "src/sim/trace.hh"

namespace crnet {

Receiver::Receiver(NodeId node, const SimConfig& cfg,
                   NetworkStats* stats, DeliverySink* sink)
    : node_(node), cfg_(cfg), stats_(stats), sink_(sink),
      rrVc_(cfg.ejectionChannels, 0)
{
    if (stats == nullptr)
        panic("Receiver requires a NetworkStats block");
    if (cfg.numNodes() <= kDenseSeqNodeLimit)
        lastSeqDense_.assign(cfg.numNodes(), -1);
    // Far beyond any stall the source timeout resolves on its own
    // (timeout scales with VC sharing, plus kill/retry round trips).
    const Cycle legit = 16 * (cfg.timeout + 1) * cfg.numVcs;
    starvationThreshold_ = legit < 512 ? 512 : legit;
    bufs_.reserve(static_cast<std::size_t>(cfg.ejectionChannels) *
                  cfg.numVcs);
    for (std::size_t i = 0;
         i < static_cast<std::size_t>(cfg.ejectionChannels) *
                 cfg.numVcs;
         ++i) {
        bufs_.emplace_back(cfg.bufferDepth);
    }
}

Receiver::VcBuffer&
Receiver::vcBuf(std::uint32_t ch, VcId vc)
{
    return bufs_[static_cast<std::size_t>(ch) * cfg_.numVcs + vc];
}

const Receiver::VcBuffer&
Receiver::vcBuf(std::uint32_t ch, VcId vc) const
{
    return bufs_[static_cast<std::size_t>(ch) * cfg_.numVcs + vc];
}

std::uint32_t
Receiver::occupancy(std::uint32_t ch, VcId vc) const
{
    return static_cast<std::uint32_t>(vcBuf(ch, vc).buf.size());
}

std::uint64_t
Receiver::bufferedFlits() const
{
    std::uint64_t n = 0;
    for (const auto& b : bufs_)
        n += b.buf.size();
    return n;
}

void
Receiver::acceptFlit(std::uint32_t ej_channel, VcId vc,
                     const Flit& flit)
{
    VcBuffer& b = vcBuf(ej_channel, vc);
    CRNET_AUDIT_HOOK(audit_, onEjectionFlit(node_, ej_channel, vc,
                                            flit));

    if (flit.isKill()) {
        // Forward kill: terminate the partial message (unless the
        // token is stale — a newer attempt already started
        // assembling). Under dynamic faults the buffered remainder of
        // the killed attempt is first folded into the assembly, so a
        // worm cut *after* its payload fully arrived can still be
        // finalized instead of thrown away (tick resolves it).
        if (dynamicFaults_)
            drainIntoAssembly(ej_channel, vc, flit.msg);
        const std::size_t purged = b.buf.purge();
        stats_->router.flitsPurged.inc(purged);
        CRNET_AUDIT_HOOK(audit_, onFlitsPurged(purged));
        auto it = assemblies_.find(flit.msg);
        if (it != assemblies_.end() &&
            it->second.attempt <= flit.attempt) {
            if (dynamicFaults_) {
                it->second.terminated = true;
            } else {
                if (trace_ != nullptr) {
                    trace_->record(TraceEventKind::Discard, flit.msg,
                                   node_, it->second.src, node_,
                                   it->second.attempt);
                }
                assemblies_.erase(it);
            }
        }
        b.refusing = false;
        b.refusedMsg = kInvalidMsg;
        return;
    }
    b.buf.push(flit);
}

void
Receiver::consume(std::uint32_t ch, VcId vc, Cycle now)
{
    VcBuffer& b = vcBuf(ch, vc);
    const Flit& front = b.buf.front();

    // FCR integrity check at the buffer head: payload flits (head and
    // body) must pass their CRC and actually belong here. On failure
    // the receiver refuses to consume; the stalled worm triggers the
    // source timeout and the message is killed and retransmitted.
    if (cfg_.protocol == ProtocolKind::Fcr &&
        (front.type == FlitType::Head ||
         front.type == FlitType::Body)) {
        const bool bad = front.corrupted || !front.checksumOk() ||
                         front.dst != node_;
        if (bad) {
            if (!b.refusing || b.refusedMsg != front.msg) {
                b.refusing = true;
                b.refusedMsg = front.msg;
                stats_->refusals.inc();
            }
            return;
        }
    }
    b.refusing = false;

    const Flit flit = b.buf.pop();
    credits.push_back(ReceiverCredit{ch, vc});
    stats_->flitsConsumed.inc();
    CRNET_AUDIT_HOOK(audit_, onFlitConsumed(node_, flit));
    if (flit.type == FlitType::Pad)
        stats_->padFlitsConsumed.inc();

    // Stale-attempt handling: a kill token chasing a congested path
    // can lose the race against the retransmission, which may arrive
    // over a different ejection VC. Flits of an older attempt are
    // therefore discarded on sight; the assembly only ever tracks the
    // newest attempt observed. (A tail can never be stale: CR kills
    // only happen before tail injection.)
    Assembly& a = assemblies_[flit.msg];
    if (flit.isHead()) {
        if (a.src != kInvalidNode) {
            if (a.attempt == flit.attempt) {
                panic("duplicate head for msg ", flit.msg,
                      " attempt ", flit.attempt, " at node ", node_);
            }
            if (a.attempt > flit.attempt) {
                stats_->staleAttemptFlits.inc();
                return;
            }
        }
        // A brand new message, or a retry superseding a partial
        // older attempt.
        a.src = flit.src;
        a.attempt = flit.attempt;
        a.nextSeq = 0;
        a.corrupted = false;
        a.terminated = false;
    } else if (a.src == kInvalidNode) {
        // Continuation of an attempt whose assembly is already gone
        // (superseded and then delivered/killed): discard.
        assemblies_.erase(flit.msg);
        stats_->staleAttemptFlits.inc();
        return;
    } else if (flit.attempt < a.attempt) {
        stats_->staleAttemptFlits.inc();
        return;
    } else if (flit.attempt > a.attempt) {
        panic("continuation of attempt ", flit.attempt,
              " before its head for msg ", flit.msg);
    }

    noteFlit(a, flit);
    a.lastFlitAt = now;
    a.ejChannel = ch;
    a.vc = vc;

    if (flit.seq != a.nextSeq)
        panic("out-of-order flit within worm: msg ", flit.msg,
              " seq ", flit.seq, " expected ", a.nextSeq);
    ++a.nextSeq;

    if ((flit.type == FlitType::Head || flit.type == FlitType::Body) &&
        (flit.corrupted || !flit.checksumOk())) {
        a.corrupted = true;
    }

    if (flit.isTail())
        deliver(flit, a, now);
}

void
Receiver::commitDelivery(const DeliveredMessage& d)
{
    stats_->messagesDelivered.inc();
    ++delivered_;
    if (d.corrupted)
        stats_->corruptedDeliveries.inc();

    checkDeliveryOrder(d.src, d.pairSeq);

    if (trace_ != nullptr) {
        trace_->record(TraceEventKind::Deliver, d.id, node_, d.src,
                       d.dst,
                       static_cast<std::uint16_t>(d.attempts - 1),
                       d.deliveredAt - d.createdAt);
    }
    if (d.measured) {
        stats_->measuredDelivered.inc();
        stats_->measuredPayloadFlits.inc(d.payloadLen);
        if (!deferStats_) {
            const auto total =
                static_cast<double>(d.deliveredAt - d.createdAt);
            stats_->totalLatency.add(total);
            stats_->latencyHist.add(total);
            stats_->netLatency.add(
                static_cast<double>(d.deliveredAt -
                                    d.headInjectedAt));
        }
    }
    if (deferStats_)
        deliveries.push_back(d);
    else if (sink_ != nullptr)
        sink_->onDelivered(d);
}

void
Receiver::deliver(const Flit& tail, const Assembly& a, Cycle now)
{
    // A retransmission can complete after a kill-cut copy of the same
    // message was already finalized; deliver that pairSeq only once.
    if (dynamicFaults_) {
        const std::uint64_t key =
            (static_cast<std::uint64_t>(a.src) << 32) | tail.pairSeq;
        if (seenSeq_.count(key) != 0) {
            stats_->retryDuplicatesSuppressed.inc();
            assemblies_.erase(tail.msg);
            return;
        }
    }

    DeliveredMessage d;
    d.id = tail.msg;
    d.src = a.src;
    d.dst = node_;
    d.payloadLen = tail.payloadLen;
    d.pairSeq = tail.pairSeq;
    d.createdAt = tail.createdAt;
    d.headInjectedAt = tail.headInjectedAt;
    d.deliveredAt = now;
    d.attempts = static_cast<std::uint16_t>(a.attempt + 1);
    d.measured = tail.measured;
    d.corrupted = a.corrupted;

    commitDelivery(d);
    assemblies_.erase(tail.msg);
}

void
Receiver::noteFlit(Assembly& a, const Flit& flit)
{
    a.payloadLen = flit.payloadLen;
    a.pairSeq = flit.pairSeq;
    a.createdAt = flit.createdAt;
    a.headInjectedAt = flit.headInjectedAt;
    a.measured = flit.measured;
}

void
Receiver::drainIntoAssembly(std::uint32_t ch, VcId vc, MsgId msg)
{
    auto it = assemblies_.find(msg);
    if (it == assemblies_.end())
        return;
    Assembly& a = it->second;
    VcBuffer& b = vcBuf(ch, vc);
    while (!b.buf.empty()) {
        const Flit& front = b.buf.front();
        if (front.msg != msg || front.attempt != a.attempt ||
            front.seq != a.nextSeq) {
            break;  // The caller purges whatever remains.
        }
        const Flit f = b.buf.pop();
        // Folded flits count as purged, not consumed: they return no
        // credits (the ejection ledger resets with the teardown) and
        // leave every flit-conservation invariant untouched.
        stats_->router.flitsPurged.inc();
        CRNET_AUDIT_HOOK(audit_, onFlitsPurged(1));
        noteFlit(a, f);
        ++a.nextSeq;
        if ((f.type == FlitType::Head || f.type == FlitType::Body) &&
            (f.corrupted || !f.checksumOk())) {
            a.corrupted = true;
        }
    }
}

void
Receiver::resolveTerminated(MsgId msg, Assembly& a, Cycle now)
{
    const bool complete =
        a.payloadLen > 0 && a.nextSeq >= a.payloadLen;
    // CR delivers whatever arrived (corruption is CR's known blind
    // spot and is counted at delivery); FCR never finalizes a
    // corrupted payload — the retransmission carries the clean copy.
    bool finalize = complete;
    if (cfg_.protocol == ProtocolKind::Fcr && a.corrupted)
        finalize = false;

    const std::uint64_t key =
        (static_cast<std::uint64_t>(a.src) << 32) | a.pairSeq;
    if (finalize && seenSeq_.count(key) != 0) {
        stats_->retryDuplicatesSuppressed.inc();
        finalize = false;
    } else if (finalize) {
        stats_->assembliesFinalized.inc();
        DeliveredMessage d;
        d.id = msg;
        d.src = a.src;
        d.dst = node_;
        d.payloadLen = a.payloadLen;
        d.pairSeq = a.pairSeq;
        d.createdAt = a.createdAt;
        d.headInjectedAt = a.headInjectedAt;
        d.deliveredAt = now;
        d.attempts = static_cast<std::uint16_t>(a.attempt + 1);
        d.measured = a.measured;
        d.corrupted = a.corrupted;
        commitDelivery(d);
    } else {
        stats_->assembliesDiscarded.inc();
        if (trace_ != nullptr) {
            trace_->record(TraceEventKind::Discard, msg, node_, a.src,
                           node_, a.attempt);
        }
    }
    assemblies_.erase(msg);
}

void
Receiver::checkStarvation(Cycle now)
{
    std::vector<MsgId>& starved = starvedScratch_;
    starved.clear();
    for (const auto& entry : assemblies_) {
        if (!entry.second.terminated &&
            now - entry.second.lastFlitAt > starvationThreshold_) {
            starved.push_back(entry.first);
        }
    }
    // Salvage in MsgId order, not hash order: the loop below emits
    // trace events, folds latencies into stats and queues bkills, so
    // its order is part of the deterministic contract.
    std::sort(starved.begin(), starved.end());
    for (const MsgId id : starved) {
        auto it = assemblies_.find(id);
        Assembly& a = it->second;
        stats_->receiverTimeouts.inc();
        // Salvage what the buffer still holds, then drop the rest
        // (e.g. a refused corrupt flit at the head).
        drainIntoAssembly(a.ejChannel, a.vc, id);
        VcBuffer& b = vcBuf(a.ejChannel, a.vc);
        if (!b.buf.empty() && b.buf.front().msg == id) {
            const std::size_t purged = b.buf.purge();
            stats_->router.flitsPurged.inc(purged);
            CRNET_AUDIT_HOOK(audit_, onFlitsPurged(purged));
        }
        if (b.refusedMsg == id) {
            b.refusing = false;
            b.refusedMsg = kInvalidMsg;
        }
        // Tear the stranded ejection reservation down toward the
        // source; the router treats this like any backward kill.
        bkills.push_back(ReceiverCredit{a.ejChannel, a.vc});
        resolveTerminated(id, a, now);
    }
}

void
Receiver::checkDeliveryOrder(NodeId src, std::uint32_t pair_seq)
{
    const std::uint64_t key =
        (static_cast<std::uint64_t>(src) << 32) | pair_seq;
    if (!seenSeq_.insert(key).second) {
        stats_->duplicateDeliveries.inc();
        return;
    }
    std::int64_t& last =
        !lastSeqDense_.empty()
            ? lastSeqDense_[src]
            : lastSeqSparse_.try_emplace(src, -1).first->second;
    if (static_cast<std::int64_t>(pair_seq) < last)
        stats_->orderViolations.inc();
    else
        last = pair_seq;
}

void
Receiver::resolveAllTerminated(Cycle now)
{
    // Resolve kill-terminated assemblies (collected first: the
    // resolution erases map entries). MsgId order, not hash order:
    // resolution emits trace events and accumulates stats, so its
    // order is part of the deterministic contract.
    std::vector<MsgId>& done = doneScratch_;
    done.clear();
    for (const auto& entry : assemblies_)
        if (entry.second.terminated)
            done.push_back(entry.first);
    std::sort(done.begin(), done.end());
    for (const MsgId id : done) {
        auto it = assemblies_.find(id);
        if (it != assemblies_.end())
            resolveTerminated(id, it->second, now);
    }
}

void
Receiver::tick(Cycle now)
{
    credits.clear();
    bkills.clear();
    deliveries.clear();
    if (dynamicFaults_) {
        resolveAllTerminated(now);
        if (now % kStarvationCheckPeriod == 0)
            checkStarvation(now);
    }
    for (std::uint32_t ch = 0; ch < cfg_.ejectionChannels; ++ch) {
        for (std::uint32_t i = 0; i < cfg_.numVcs; ++i) {
            const VcId vc = static_cast<VcId>(
                (rrVc_[ch] + i) % cfg_.numVcs);
            VcBuffer& b = vcBuf(ch, vc);
            if (b.buf.empty())
                continue;
            if (b.refusing && b.refusedMsg == b.buf.front().msg)
                continue;  // Withholding flow control on purpose.
            const std::size_t before = credits.size();
            consume(ch, vc, now);
            if (credits.size() != before) {
                // Consumed: one flit per ejection channel per cycle.
                rrVc_[ch] = static_cast<VcId>((vc + 1) % cfg_.numVcs);
                break;
            }
            // Refused at the head: try another VC this cycle.
        }
    }
}

std::vector<Receiver::AssemblyProbe>
Receiver::openAssemblies() const
{
    std::vector<AssemblyProbe> out;
    out.reserve(assemblies_.size());
    for (const auto& entry : assemblies_) {
        AssemblyProbe p;
        p.msg = entry.first;
        p.src = entry.second.src;
        p.attempt = entry.second.attempt;
        p.nextSeq = entry.second.nextSeq;
        p.payloadLen = entry.second.payloadLen;
        p.lastFlitAt = entry.second.lastFlitAt;
        out.push_back(p);
    }
    // MsgId order: probes feed forensics dumps, whose text must not
    // depend on the assembly map's bucket layout.
    std::sort(out.begin(), out.end(),
              [](const AssemblyProbe& a, const AssemblyProbe& b) {
                  return a.msg < b.msg;
              });
    return out;
}

bool
Receiver::idle() const
{
    for (const auto& b : bufs_)
        if (!b.buf.empty())
            return false;
    return assemblies_.empty();
}

Cycle
Receiver::nextEventCycle(Cycle now) const
{
    for (const auto& b : bufs_)
        if (!b.buf.empty())
            return now + 1;
    if (!dynamicFaults_ || assemblies_.empty())
        return kNeverCycle;
    Cycle next = kNeverCycle;
    for (const auto& entry : assemblies_) {
        if (entry.second.terminated)
            return now + 1;
        // The starvation condition (now - lastFlitAt > threshold)
        // first holds at lastFlitAt + threshold + 1, but tick only
        // scans on period boundaries — round up to the one that fires.
        Cycle at =
            entry.second.lastFlitAt + starvationThreshold_ + 1;
        if (at < now + 1)
            at = now + 1;
        at = (at + kStarvationCheckPeriod - 1) /
             kStarvationCheckPeriod * kStarvationCheckPeriod;
        next = std::min(next, at);
    }
    return next;
}

CRNET_ALLOW("unordered-iter",
            "assembly map, seen-set and last-seq table are sorted "
            "before serialization so the snapshot bytes never depend "
            "on hash order")
void
Receiver::saveState(StateWriter& w) const
{
    for (const VcBuffer& vb : bufs_) {
        w.u64(vb.buf.size());
        for (std::size_t i = 0; i < vb.buf.size(); ++i)
            saveFlit(w, vb.buf.peek(i));
        w.b(vb.refusing);
        w.u64(vb.refusedMsg);
    }
    for (VcId vc : rrVc_)
        w.u16(vc);

    std::vector<MsgId> ids;
    ids.reserve(assemblies_.size());
    for (const auto& entry : assemblies_)
        ids.push_back(entry.first);
    std::sort(ids.begin(), ids.end());
    w.u64(ids.size());
    for (MsgId id : ids) {
        const Assembly& a = assemblies_.at(id);
        w.u64(id);
        w.u32(a.src);
        w.u16(a.attempt);
        w.u32(a.nextSeq);
        w.b(a.corrupted);
        w.u32(a.payloadLen);
        w.u32(a.pairSeq);
        w.u64(a.createdAt);
        w.u64(a.headInjectedAt);
        w.b(a.measured);
        w.u32(a.ejChannel);
        w.u16(a.vc);
        w.u64(a.lastFlitAt);
        w.b(a.terminated);
    }

    // Same bytes from either storage mode: sorted, and only sources
    // that delivered something (the dense vector's -1 entries are the
    // sparse map's absent keys).
    std::vector<std::pair<NodeId, std::int64_t>> seqs;
    if (!lastSeqDense_.empty()) {
        for (NodeId src = 0; src < lastSeqDense_.size(); ++src)
            if (lastSeqDense_[src] != -1)
                seqs.emplace_back(src, lastSeqDense_[src]);
    } else {
        seqs.assign(lastSeqSparse_.begin(), lastSeqSparse_.end());
        std::sort(seqs.begin(), seqs.end());
    }
    w.u64(seqs.size());
    for (const auto& [src, seq] : seqs) {
        w.u32(src);
        w.i64(seq);
    }
    std::vector<std::uint64_t> seen(seenSeq_.begin(), seenSeq_.end());
    std::sort(seen.begin(), seen.end());
    w.u64(seen.size());
    for (std::uint64_t key : seen)
        w.u64(key);
    w.u64(delivered_);
    w.b(dynamicFaults_);
}

void
Receiver::loadState(StateReader& r)
{
    for (VcBuffer& vb : bufs_) {
        vb.buf.purge();
        const std::uint64_t buffered = r.u64();
        for (std::uint64_t i = 0; i < buffered; ++i) {
            Flit f;
            loadFlit(r, f);
            vb.buf.push(f);
        }
        vb.refusing = r.b();
        vb.refusedMsg = r.u64();
    }
    for (VcId& vc : rrVc_)
        vc = r.u16();

    assemblies_.clear();
    const std::uint64_t numAssemblies = r.u64();
    for (std::uint64_t i = 0; i < numAssemblies; ++i) {
        const MsgId id = r.u64();
        Assembly a;
        a.src = r.u32();
        a.attempt = r.u16();
        a.nextSeq = r.u32();
        a.corrupted = r.b();
        a.payloadLen = r.u32();
        a.pairSeq = r.u32();
        a.createdAt = r.u64();
        a.headInjectedAt = r.u64();
        a.measured = r.b();
        a.ejChannel = r.u32();
        a.vc = r.u16();
        a.lastFlitAt = r.u64();
        a.terminated = r.b();
        assemblies_.emplace(id, a);
    }

    if (!lastSeqDense_.empty())
        std::fill(lastSeqDense_.begin(), lastSeqDense_.end(), -1);
    lastSeqSparse_.clear();
    const std::uint64_t numSeq = r.u64();
    for (std::uint64_t i = 0; i < numSeq; ++i) {
        const NodeId src = r.u32();
        const std::int64_t seq = r.i64();
        if (!lastSeqDense_.empty())
            lastSeqDense_[src] = seq;
        else
            lastSeqSparse_.emplace(src, seq);
    }
    seenSeq_.clear();
    const std::uint64_t numSeen = r.u64();
    for (std::uint64_t i = 0; i < numSeen; ++i)
        seenSeq_.insert(r.u64());
    delivered_ = r.u64();
    dynamicFaults_ = r.b();
    credits.clear();
    bkills.clear();
    deliveries.clear();
}

} // namespace crnet
