/**
 * @file
 * Message injection interface — the paper's Fig. 7 hardware in
 * software.
 *
 * The injector implements the source half of the CR/FCR protocol:
 *
 *  - pads messages to the CR (path depth) or FCR (payload + round
 *    trip) wire length,
 *  - watches injection progress per worm (stall counter, or the
 *    paper's I_min lower bound),
 *  - kills worms whose progress signals a potential deadlock
 *    situation, and
 *  - retransmits killed messages, front-of-queue (order preserving),
 *    after a static or binary-exponential gap.
 *
 * One worm may be in flight per (injection channel, VC) pair; worms on
 * one channel share its single flit/cycle of bandwidth (which is why
 * the paper scales the timeout by the VC count). A message to
 * destination d never starts while an earlier message to d is still
 * unfinished, which preserves per-(src,dst) order even with several
 * worms in flight.
 */

#ifndef CRNET_NIC_INJECTOR_HH
#define CRNET_NIC_INJECTOR_HH

#include <cstdint>
#include <deque>
#include <unordered_set>
#include <vector>

#include "src/core/annotations.hh"
#include "src/core/metrics.hh"
#include "src/router/flit.hh"
#include "src/routing/routing.hh"
#include "src/sim/config.hh"
#include "src/sim/rng.hh"
#include "src/sim/types.hh"
#include "src/topology/topology.hh"
#include "src/traffic/message.hh"

namespace crnet {

class Auditor;
class Tracer;
class StateWriter;
class StateReader;

/** A flit the injector puts on an injection channel this cycle. */
struct InjectedFlit
{
    std::uint32_t injChannel = 0;
    VcId vc = kInvalidVc;
    Flit flit;
};

/** A give-up staged for the failure sink (deferred-stats mode). */
struct FailedMessage
{
    PendingMessage msg;
    Cycle at = 0;
};

/** Measured-commit accumulator samples staged (deferred-stats mode). */
struct CommittedSample
{
    double attempts = 0.0;  //!< Attempts the commit took (>= 1).
    double padFrac = 0.0;   //!< Pad flits / wire length.
};

/**
 * Observer of messages the source gives up on (maxRetries exhausted).
 * The delivery ledger uses this to account every refused message.
 */
class MessageFailureSink
{
  public:
    virtual ~MessageFailureSink() = default;
    virtual void onMessageFailed(const PendingMessage& msg,
                                 Cycle now) = 0;
};

/** Per-node source interface. */
class Injector
{
  public:
    Injector(NodeId node, const SimConfig& cfg, const Topology& topo,
             const RoutingAlgorithm& algo, NetworkStats* stats,
             Rng rng);

    /**
     * Queue a message for transmission. Returns false (and counts a
     * drop) when the source queue is full.
     */
    CRNET_ALLOW("alloc",
                "per-message source-queue bookkeeping: deque block "
                "growth is amortized and recycled in steady state "
                "(tests/test_alloc_steady.cc)")
    bool enqueue(const PendingMessage& msg);

    // --- Delivery phase ----------------------------------------------

    /** Credit back from the local router's injection input VC. */
    void acceptCredit(std::uint32_t inj_channel, VcId vc);

    /** Backward kill reached the source: abort and schedule a retry. */
    CRNET_ALLOW("alloc",
                "per-abort retry bookkeeping: requeue/retry-list "
                "growth is amortized and recycled in steady state "
                "(tests/test_alloc_steady.cc)")
    void acceptAbort(std::uint32_t inj_channel, VcId vc, MsgId msg);

    // --- Compute phase -------------------------------------------------

    /** Advance one cycle; fills the `sent` outbox. */
    CRNET_HOT_PATH
    void tick(Cycle now);

    /** Flits entering injection channels this cycle. */
    std::vector<InjectedFlit> sent;

    // --- Deferred-stats mode (sharded ticks) --------------------------

    /**
     * When on, tick() never touches shared accumulators or calls the
     * failure sink directly: measured-commit samples and give-ups are
     * staged in the outboxes below instead, and the Network drains
     * them serially in node order after the shard barrier — so the
     * global Welford/ledger update sequence is byte-identical to an
     * unsharded run. Off (the default), behavior is unchanged.
     */
    void setDeferStats(bool on) { deferStats_ = on; }

    /** Give-ups staged this tick (valid after tick; drained by owner). */
    std::vector<FailedMessage> failed;

    /** Measured commits staged this tick (same lifecycle as `failed`). */
    std::vector<CommittedSample> committedStats;

    // --- Introspection ---------------------------------------------------

    /** Worms currently transmitting. */
    std::uint32_t activeWorms() const;

    /** Messages waiting (or backing off) in the source queue. */
    std::size_t queueLength() const { return queue_.size(); }

    /** True when enqueue() would drop. */
    bool queueFull() const;

    /** True when nothing is queued or in flight at this source. */
    bool idle() const;

    /**
     * Earliest future cycle at which tick() could change any state
     * (active-set scheduler contract, see docs/PERFORMANCE.md):
     * `now + 1` while a worm is active or a retry is pending, the
     * nearest cooldown-exit or backoff expiry otherwise, kNeverCycle
     * when the injector is fully idle. May be conservative (early) —
     * a tick before the returned cycle is a state no-op — but never
     * late.
     */
    Cycle nextEventCycle(Cycle now) const;

    /** Attach an observer for given-up messages (null to detach). */
    void setFailureSink(MessageFailureSink* sink)
    {
        failureSink_ = sink;
    }

    /** Forensic snapshot of one injection slot (watchdog dump). */
    struct SlotProbe
    {
        bool active = false;
        MsgId msg = kInvalidMsg;
        NodeId dst = kInvalidNode;
        std::uint16_t attempt = 0;
        std::uint32_t nextSeq = 0;
        std::uint32_t wireLen = 0;
        std::uint32_t credits = 0;
        Cycle stallCycles = 0;
    };
    SlotProbe slotProbe(std::uint32_t ch, VcId vc) const;

    // --- Audit probes (see src/sim/audit.hh) --------------------------

    /** Attach the invariant auditor (null to detach). */
    void setAuditor(Auditor* audit) { audit_ = audit; }

    /** Attach the event tracer (null to detach; the default). */
    void setTracer(Tracer* trace) { trace_ = trace; }

    /** Credit counter of one (channel, VC) slot. */
    std::uint32_t slotCredits(std::uint32_t ch, VcId vc) const;

    /** True while a slot sits in its post-kill cooldown window. */
    bool slotInCooldown(std::uint32_t ch, VcId vc) const;

    // --- Checkpoint support (snapshot.hh) -----------------------------

    /**
     * Source queue, pending retries, per-slot worm state, busy-
     * destination set (sorted) and the RNG stream. The `sent` outbox
     * and channelUsed_ are cleared at tick entry and need not
     * round-trip.
     */
    void saveState(StateWriter& w) const;
    void loadState(StateReader& r);

    /** Replace the RNG stream (warm-start reseeding). */
    void setRng(const Rng& rng) { rng_ = rng; }

  private:
    struct Slot
    {
        enum class State { Free, Active, Cooldown };

        State state = State::Free;
        std::uint32_t credits = 0;
        Cycle cooldownUntil = 0;

        // Valid while Active:
        PendingMessage msg;
        std::uint32_t wireLen = 0;
        std::uint32_t nextSeq = 0;
        std::uint32_t hops = 0;
        Cycle startCycle = 0;
        Cycle stallCycles = 0;
        Cycle headInjectedAt = 0;
    };

    Slot& slot(std::uint32_t ch, VcId vc);
    const Slot& slot(std::uint32_t ch, VcId vc) const;
    CRNET_ALLOW("alloc",
                "seenScratch_/busyDests_ reuse: amortized growth "
                "only, steady-state-free (tests/test_alloc_steady.cc)")
    void startWorms(Cycle now);
    void checkTimeouts(Cycle now);
    void injectFlits(Cycle now);
    void killWorm(std::uint32_t ch, VcId vc, Cycle now);
    CRNET_ALLOW("alloc",
                "per-retry queue bookkeeping: deque block growth is "
                "amortized and recycled in steady state "
                "(tests/test_alloc_steady.cc)")
    void requeueForRetry(PendingMessage msg, Cycle now);
    Flit buildFlit(const Slot& s, std::uint32_t seq, Cycle now) const;
    bool timeoutExpired(const Slot& s, Cycle now) const;
    /** Rescan queue_ for the exact min notBefore (erase-of-min). */
    void recomputeQueueMin();

    NodeId node_;
    const SimConfig& cfg_;
    const Topology& topo_;
    const RoutingAlgorithm& algo_;
    NetworkStats* stats_;
    Auditor* audit_ = nullptr;
    Tracer* trace_ = nullptr;
    MessageFailureSink* failureSink_ = nullptr;
    bool deferStats_ = false;
    Rng rng_;

    std::deque<PendingMessage> queue_;
    /**
     * Exact minimum notBefore over queue_ (kNeverCycle when empty),
     * maintained incrementally so nextEventCycle() never rescans a
     * deep backoff queue. Pushes min-update in O(1); erasing the
     * minimum (a worm start) triggers the one O(queue) rescan.
     * Derived state: recomputed, not serialized, on restore.
     */
    Cycle queueMinNotBefore_ = kNeverCycle;
    /** Aborts accepted during delivery, requeued at the next tick. */
    std::vector<PendingMessage> pendingRetries_;
    std::vector<Slot> slots_;  //!< [channel][vc] flattened.
    std::unordered_set<NodeId> busyDests_;
    std::vector<VcId> rrVc_;   //!< Injection arbitration per channel.
    std::vector<bool> channelUsed_;  //!< One flit/channel/cycle.
    std::vector<NodeId> seenScratch_;  //!< startWorms queue-scan reuse.
};

} // namespace crnet

#endif // CRNET_NIC_INJECTOR_HH
